// Fleet monitoring: 100 concurrent TRNG streams share one sharded pool of
// recycled monitors (internal/fleet). One tenant's source storms with hard
// faults until its per-stream circuit breaker trips — and the point of the
// example is what does NOT happen: the other 99 tenants' verdicts are
// byte-identical to what each would have produced in a serial
// single-stream run, proven here by replaying every healthy tenant's exact
// word stream through the serial reference path and comparing reports.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"reflect"
	"sync"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hwblock"
)

const (
	streams = 100
	faulty  = 37 // the unlucky tenant
	words   = 32 // 16 sequences of n=128 per tenant
)

func opsFor(idx int) []fleet.Op {
	rng := rand.New(rand.NewSource(int64(1000 + idx)))
	ops := make([]fleet.Op, 0, words+2*core.DefaultQuarantineLimit)
	hard := errors.New("sensor ripped out mid-read")
	for i := 0; i < words; i++ {
		ops = append(ops, fleet.Op{Kind: fleet.OpWord, W: rng.Uint64(), N: 64})
		if idx == faulty && i >= 8 && i < 8+core.DefaultQuarantineLimit {
			// Mid-sequence hard faults, sequence after sequence: the
			// breaker trips after DefaultQuarantineLimit consecutive
			// quarantines and takes (only) this stream out of service.
			ops = append(ops, fleet.Op{Kind: fleet.OpFault, Err: hard})
		}
	}
	return ops
}

func main() {
	design, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		log.Fatal(err)
	}
	cfg := fleet.Config{Design: design, Alpha: 0.01, Shards: 4, QueueDepth: 32}
	pool, err := fleet.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	reports := make([]fleet.StreamReport, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			s, err := pool.Register(fmt.Sprintf("tenant-%03d", idx))
			if err != nil {
				log.Fatal(err)
			}
			for _, op := range opsFor(idx) {
				if err := op.Apply(s); err != nil {
					log.Fatal(err)
				}
			}
			reports[idx] = s.Detach()
		}(i)
	}
	wg.Wait()
	pool.Shutdown()

	f := reports[faulty]
	fmt.Printf("tenant-%03d: condition=%s breaker=%v quarantined=%d sequences=%d\n",
		faulty, f.Condition, f.BreakerTripped, f.Quarantined, f.Sequences)
	for _, e := range f.Events[:3] {
		fmt.Printf("  %s\n", e)
	}
	fmt.Printf("  ... (%d incidents total)\n\n", len(f.Events))

	// The isolation proof: every other tenant's report is identical to its
	// serial single-stream replay.
	intact, pass := 0, 0
	for i := 0; i < streams; i++ {
		if i == faulty {
			continue
		}
		serial, err := fleet.ReplaySerial(cfg, reports[i].Tenant, opsFor(i))
		if err != nil {
			log.Fatal(err)
		}
		if !reflect.DeepEqual(reports[i], serial) {
			log.Fatalf("%s diverged from its serial run", reports[i].Tenant)
		}
		intact++
		pass += reports[i].Passed
	}
	fmt.Printf("other %d tenants: all byte-identical to their serial runs (%d sequences passed)\n",
		intact, pass)
	fmt.Printf("one tenant's meltdown cost the fleet exactly one stream — nothing leaked across the shard.\n")
}
