// Quickstart: monitor a healthy TRNG with the 65536-bit medium design and
// print the per-sequence verdicts — the minimal end-to-end use of the
// platform.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// One of the paper's eight design points: n = 65536, medium feature
	// level (tests 1, 2, 3, 4, 7, 13).
	design, err := repro.NewDesign(65536, repro.Medium)
	if err != nil {
		log.Fatal(err)
	}

	// A monitor at the NIST-recommended level of significance. The
	// hardware half runs continuously; the software half checks the
	// counters whenever a sequence completes.
	monitor, err := repro.NewMonitor(design, repro.DefaultAlpha)
	if err != nil {
		log.Fatal(err)
	}

	// A healthy elementary ring-oscillator TRNG model.
	source := repro.NewRingOscillatorSource(100.37, 1.0, 43)

	reports, err := monitor.Watch(source, 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		status := "PASS"
		if !r.Report.Pass() {
			status = fmt.Sprintf("FAIL %v", r.Report.Failed())
		}
		fmt.Printf("sequence %d: %s (software cost: %d instructions)\n",
			r.Index, status, r.Report.Cost.Total())
	}
	fmt.Printf("monitored %d bits through design %s\n", monitor.BitsSeen(), design.Name)
}
