// Fault-tolerant deployment: the supervision layer around the on-the-fly
// monitor. The paper's platform assumes the TRNG and the counter readout
// are infallible; a deployed monitor cannot. This demo walks the three
// operational failure classes the supervisor absorbs — all reproducible
// from fixed seeds:
//
//  1. a flaky source whose reads fail transiently (retried, run completes)
//  2. a source that stalls mid-sequence (watchdog trips, the in-flight
//     sequence is quarantined, the monitor fails over to a standby)
//  3. corrupted register-file readouts (the doubled evaluation pass
//     disagrees and the sequence is quarantined instead of being judged
//     on corrupt counters)
//
// Throughout, statistical failures stay distinct from operational ones:
// the final act fails over onto a standby that turns out to be stuck, and
// the alarm policy — not the supervisor's fault handling — takes it out of
// service.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/trng"
)

func newMonitor() *repro.Monitor {
	design, err := repro.NewDesign(128, repro.Light)
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := repro.NewMonitor(design, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	return monitor
}

func show(rep *core.SupervisorReport, err error) {
	if err != nil {
		fmt.Printf("  run ended early: %v\n", err)
	}
	fmt.Printf("  condition=%s accepted=%d quarantined=%d retries=%d active=%s\n",
		rep.Condition, len(rep.Reports), rep.Quarantined, rep.Retries, rep.ActiveSource)
	for _, e := range rep.Events {
		fmt.Printf("  %s\n", e)
	}
}

func main() {
	fmt.Println("1. transient read faults: retry-with-backoff absorbs them")
	flaky := faultinject.NewFlaky(trng.NewIdeal(1), 0.02, 2, 42)
	sup := repro.NewSupervisor(newMonitor(), flaky, nil, repro.SupervisorConfig{
		Backoff: time.Microsecond,
	})
	show(sup.Run(6))
	fmt.Printf("  (%d faults injected)\n\n", flaky.Injected())

	fmt.Println("2. stall mid-sequence: watchdog -> quarantine -> failover")
	stalling := faultinject.NewStall(trng.NewIdeal(2), 300)
	defer stalling.Release()
	sup = repro.NewSupervisor(newMonitor(), stalling, trng.NewIdeal(3), repro.SupervisorConfig{
		BitDeadline: 20 * time.Millisecond,
	})
	show(sup.Run(6))
	fmt.Println()

	fmt.Println("3. corrupted counter readout: doubled evaluation quarantines it")
	monitor := newMonitor()
	corr := faultinject.CorruptRegFile(monitor.Block().RegFile(), 0.05, 7)
	sup = repro.NewSupervisor(monitor, trng.NewIdeal(4), nil, repro.SupervisorConfig{
		VerifyReadout: true,
	})
	show(sup.Run(6))
	fmt.Printf("  (%d bus reads corrupted)\n\n", corr.Injected())

	fmt.Println("4. failover onto a bad standby: the statistical alarm, not the")
	fmt.Println("   fault handler, takes the TRNG out of service")
	stalling2 := faultinject.NewStall(trng.NewIdeal(5), 300)
	defer stalling2.Release()
	policy, err := core.NewAlarmPolicy(2)
	if err != nil {
		log.Fatal(err)
	}
	sup = repro.NewSupervisor(newMonitor(), stalling2, trng.NewStuckAt(1), repro.SupervisorConfig{
		BitDeadline: 20 * time.Millisecond,
		Policy:      policy,
	})
	show(sup.Run(10))
}
