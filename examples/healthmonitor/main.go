// Health monitor: a long-running embedded deployment. The TRNG ages — its
// bias drifts slowly — while the hardware block stays on and the software
// checks every completed sequence. The same counters are also evaluated by
// real firmware executing on the simulated openMSP430 core, demonstrating
// the full embedded path (Fig. 1) including the memory-mapped bus and the
// measured evaluation latency in CPU cycles.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/bitstream"
	"repro/internal/firmware"
	"repro/internal/hwblock"
	"repro/internal/sweval"
	"repro/internal/trng"
)

func main() {
	design, err := repro.NewDesign(65536, repro.Light)
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := repro.NewMonitor(design, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	// Aging source: bias drifts from a healthy 0.5 to 0.56 over 1.5M bits.
	source := trng.NewDrift(0.5, 0.56, 1_500_000, 3)

	fmt.Println("long-term health monitoring of an aging TRNG (bias 0.50 -> 0.56):")
	firstFailure := -1
	for seq := 0; seq < 30; seq++ {
		reports, err := monitor.Watch(source, 1)
		if err != nil {
			log.Fatal(err)
		}
		r := reports[0]
		if !r.Report.Pass() && firstFailure < 0 {
			firstFailure = r.Index
		}
		marker := ""
		if !r.Report.Pass() {
			marker = fmt.Sprintf("  <-- FAILED %v", r.Report.Failed())
		}
		if seq%5 == 0 || marker != "" {
			fmt.Printf("  sequence %2d (bits %7d..%7d)%s\n",
				r.Index, r.StartBit, r.StartBit+65536, marker)
		}
		if firstFailure >= 0 && seq > firstFailure+2 {
			break
		}
	}
	if firstFailure < 0 {
		fmt.Println("  no failure within 30 sequences")
	} else {
		fmt.Printf("aging first detected in sequence %d\n", firstFailure)
	}

	// Now the genuine embedded path: feed one more sequence into a fresh
	// block and let MSP430 firmware (assembled on the fly, with the
	// critical values baked in) evaluate the counters over the bus.
	fmt.Println("\nfirmware evaluation on the openMSP430 core:")
	block, err := hwblock.New(design)
	if err != nil {
		log.Fatal(err)
	}
	seq := trng.Read(source, design.N)
	if err := block.Run(bitstream.NewReader(seq)); err != nil {
		log.Fatal(err)
	}
	cv, err := sweval.NewCriticalValues(design, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := firmware.Run(block, cv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict bitmap: %#06b (0 = all pass)\n", res.FailBitmap)
	fmt.Printf("  latency: %d cycles, %d instructions\n", res.Cycles, res.Instructions)
	fmt.Printf("  (vs %d cycles to produce the next 65536-bit sequence at 1 bit/cycle)\n", design.N)
}
