// Health monitor: a long-running embedded deployment. The TRNG ages — its
// bias drifts slowly — while the hardware block stays on and the software
// checks every completed sequence. The run is instrumented through the
// observability layer (internal/obs), so the same program doubles as a
// worked example of the metrics registry and event trace. A second phase
// shows the Monitor.Watch partial-result contract: when the source dies
// mid-sequence, the verdicts of every completed sequence are still
// returned and folded into the summary — the monitor loses only the
// unfinished sequence, never the history. Finally the same counters are
// evaluated by real firmware executing on the simulated openMSP430 core,
// demonstrating the full embedded path (Fig. 1) including the
// memory-mapped bus and the measured evaluation latency in CPU cycles.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/firmware"
	"repro/internal/hwblock"
	"repro/internal/obs"
	"repro/internal/sweval"
	"repro/internal/trng"
)

// finiteSource adapts a recorded sequence to the Source interface; reads
// past the end fail — the model of a TRNG whose supply dies mid-stream.
type finiteSource struct{ r *bitstream.Reader }

func (s *finiteSource) Name() string           { return "recorded" }
func (s *finiteSource) ReadBit() (byte, error) { return s.r.ReadBit() }

func main() {
	design, err := repro.NewDesign(65536, repro.Light)
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := repro.NewMonitor(design, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	// Instrument the monitor. Every verdict, ingested bit and bus read now
	// lands in the registry; operational incidents land in its event trace.
	reg := obs.NewRegistry()
	monitor.SetObs(reg)

	// Aging source: bias drifts from a healthy 0.5 to 0.56 over 1.5M bits.
	source := trng.NewDrift(0.5, 0.56, 1_500_000, 3)

	fmt.Println("long-term health monitoring of an aging TRNG (bias 0.50 -> 0.56):")
	firstFailure := -1
	watch := func(src repro.Source, sequences int) bool {
		reports, err := monitor.Watch(src, sequences)
		// Partial-result contract: on a source failure, Watch still
		// returns the reports of every sequence that completed before the
		// failing bit. Fold them in before deciding anything — the old
		// version of this example log.Fatal'd here and lost them.
		for _, r := range reports {
			if !r.Report.Pass() && firstFailure < 0 {
				firstFailure = r.Index
			}
			marker := ""
			if !r.Report.Pass() {
				marker = fmt.Sprintf("  <-- FAILED %v", r.Report.Failed())
			}
			if r.Index%5 == 0 || marker != "" {
				fmt.Printf("  sequence %2d (bits %7d..%7d)%s\n",
					r.Index, r.StartBit, r.StartBit+int64(design.N), marker)
			}
		}
		if err != nil {
			var se *core.SourceError
			if errors.As(err, &se) {
				// Route the incident through the trace alongside the
				// instrumentation's own events, then carry on with the
				// verdicts already in hand.
				reg.Emit("example.source-dead", se.Bit,
					fmt.Sprintf("source failed mid-sequence: %v", se.Err))
				fmt.Printf("  source died at bit %d (mid-sequence %d); %d completed verdicts retained\n",
					se.Bit, int(se.Bit)/design.N, len(reports))
				return false
			}
			log.Fatal(err)
		}
		return true
	}

	for seq := 0; seq < 30; seq++ {
		if !watch(source, 1) {
			break
		}
		if firstFailure >= 0 && seq > firstFailure+2 {
			break
		}
	}
	if firstFailure < 0 {
		fmt.Println("  no failure within 30 sequences")
	} else {
		fmt.Printf("aging first detected in sequence %d\n", firstFailure)
	}

	// The partial-result contract in action: a recording that holds one
	// full sequence plus half of the next. The half sequence's bits are
	// consumed, the source dies, and the one completed verdict survives.
	fmt.Println("\nsource failure mid-sequence (partial-result contract):")
	recorded := trng.Read(source, design.N+design.N/2)
	watch(&finiteSource{r: bitstream.NewReader(recorded)}, 2)

	// Now the genuine embedded path: feed one more sequence into a fresh
	// block and let MSP430 firmware (assembled on the fly, with the
	// critical values baked in) evaluate the counters over the bus.
	fmt.Println("\nfirmware evaluation on the openMSP430 core:")
	block, err := hwblock.New(design)
	if err != nil {
		log.Fatal(err)
	}
	seq := trng.Read(source, design.N)
	if err := block.Run(bitstream.NewReader(seq)); err != nil {
		log.Fatal(err)
	}
	cv, err := sweval.NewCriticalValues(design, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := firmware.Run(block, cv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict bitmap: %#06b (0 = all pass)\n", res.FailBitmap)
	fmt.Printf("  latency: %d cycles, %d instructions\n", res.Cycles, res.Instructions)
	fmt.Printf("  (vs %d cycles to produce the next 65536-bit sequence at 1 bit/cycle)\n", design.N)

	// What the observability layer collected along the way — the same
	// numbers a scrape of the /metrics endpoint would show.
	fmt.Println("\nobservability summary:")
	pass := reg.Counter("trng_monitor_sequences_total", "", "result", "pass").Value()
	fail := reg.Counter("trng_monitor_sequences_total", "", "result", "fail").Value()
	fmt.Printf("  sequences evaluated: %d pass, %d fail\n", pass, fail)
	fmt.Printf("  bits ingested:       %.0f\n", reg.Gauge("trng_monitor_bits_seen", "").Value())
	fmt.Printf("  bus reads:           %d\n",
		reg.Counter("trng_monitor_bus_read_words_total", "").Value())
	fmt.Printf("  trace events:        %d\n", reg.Trace().Len())
	for _, e := range reg.Trace().Snapshot() {
		fmt.Printf("    [seq %d, bit %d] %s: %s\n", e.Seq, e.Bit, e.Kind, e.Detail)
	}
}
