// Second-level evaluation: SP800-22 §4 prescribes how to judge a generator
// from a *batch* of sequences — the proportion of passing sequences must
// sit in a confidence interval around 1−α and the P-values must be uniform.
// This example runs the reference suite's frequency and serial tests over
// 80 sequences from two generators (one healthy, one with a subtle
// correlation defect below the single-sequence detection threshold) and
// shows the batch-level analysis separating them.
package main

import (
	"fmt"
	"log"

	"repro/internal/nist"
	"repro/internal/trng"
)

func evaluate(name string, make func(seed int64) trng.Source) {
	const (
		sequences = 80
		bits      = 16384
		alpha     = 0.01
	)
	var freqPass, serialPass []bool
	var freqP, serialP []float64
	for i := 0; i < sequences; i++ {
		s := trng.Read(make(int64(i)), bits)
		fr, err := nist.Frequency(s)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := nist.Serial(s, 4)
		if err != nil {
			log.Fatal(err)
		}
		freqPass = append(freqPass, fr.Pass(alpha))
		serialPass = append(serialPass, sr.Pass(alpha))
		freqP = append(freqP, fr.MinP())
		serialP = append(serialP, sr.MinP())
	}
	fmt.Printf("\n%s (%d sequences x %d bits):\n", name, sequences, bits)
	for _, row := range []struct {
		test   string
		passes []bool
		ps     []float64
	}{
		{"frequency", freqPass, freqP},
		{"serial", serialPass, serialP},
	} {
		prop, err := nist.Proportion(row.passes, alpha)
		if err != nil {
			log.Fatal(err)
		}
		unif, err := nist.Uniformity(row.ps)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ACCEPT"
		if !prop.OK || !unif.OK {
			verdict = "REJECT"
		}
		fmt.Printf("  %-10s proportion %.3f (need [%.3f, %.3f]) uniformity PT=%.4f -> %s\n",
			row.test, prop.Proportion, prop.Low, prop.High, unif.PT, verdict)
	}
}

func main() {
	evaluate("healthy ring oscillator", func(seed int64) trng.Source {
		return trng.NewRingOscillator(100.37, 1.0, 1000+seed)
	})
	// Stickiness 0.52: each single 16384-bit sequence usually passes the
	// serial test (the defect is ~1.3σ per sequence), but across 80
	// sequences the P-value distribution is visibly skewed — the
	// "long term statistical weakness" case for slow tests.
	evaluate("weakly correlated source (stick=0.52)", func(seed int64) trng.Source {
		return trng.NewMarkov(0.52, 2000+seed)
	})
}
