// Attack detection: a frequency-injection attack (Markettos & Moore, CHES
// 2009) locks a ring-oscillator TRNG mid-stream; the on-the-fly monitor
// detects the entropy collapse within a few sequences. This is the paper's
// core motivation — AIS-31 and SP800-90B demand exactly this kind of
// on-line defect detection.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/trng"
)

func main() {
	design, err := repro.NewDesign(65536, repro.High)
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := repro.NewMonitor(design, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	// Healthy oscillator for three full sequences, then the injected
	// signal locks it: accumulated jitter collapses and the output turns
	// near-periodic.
	const onset = 3 * 65536
	healthy := trng.NewRingOscillator(100.37, 1.0, 7)
	locked := trng.NewRingOscillator(100.37, 0.0005, 8)
	source := trng.NewSwitchAt(healthy, locked, onset)

	fmt.Println("monitoring; attack begins at bit", onset)
	for seq := 0; seq < 16; seq++ {
		reports, err := monitor.Watch(source, 1)
		if err != nil {
			log.Fatal(err)
		}
		r := reports[0]
		if r.Report.Pass() {
			fmt.Printf("sequence %d: pass\n", r.Index)
			continue
		}
		if monitor.BitsSeen() <= onset {
			// A failure before the attack began is a chance false alarm
			// (each test fires with probability alpha on ideal input); a
			// deployment would require persistence before raising it.
			fmt.Printf("sequence %d: failed tests %v — before the attack, a false alarm\n",
				r.Index, r.Report.Failed())
			continue
		}
		fmt.Printf("sequence %d: FAILED tests %v\n", r.Index, r.Report.Failed())
		for _, v := range r.Report.Verdicts {
			if !v.Pass {
				fmt.Printf("  test %-2d statistic %d vs threshold %d %s\n",
					v.TestID, v.Statistic, v.Threshold, v.Note)
			}
		}
		latency := monitor.BitsSeen() - onset
		fmt.Printf("detection latency: %d bits after attack onset (%.1f sequences)\n",
			latency, float64(latency)/65536)
		return
	}
	fmt.Println("attack was NOT detected within 16 sequences")
}
