// Area sweep: enumerate the paper's eight design points, print their
// resource/feature trade-off (Table III's engineering content), and pick
// the richest design that fits a slice budget — the selection a designer
// integrating the monitor into an FPGA system would make.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/hwblock"
	"repro/internal/hwsim"
)

func testList(tests []int) string {
	parts := make([]string, len(tests))
	for i, t := range tests {
		parts[i] = fmt.Sprint(t)
	}
	return strings.Join(parts, ",")
}

func main() {
	const sliceBudget = 250

	fmt.Printf("%-18s %-22s %7s %6s %6s %7s %8s\n",
		"design", "tests", "slices", "FF", "LUT", "GE", "fmax")
	var best *hwblock.Config
	var bestTests int
	for _, design := range repro.Designs() {
		design := design
		block, err := hwblock.New(design)
		if err != nil {
			log.Fatal(err)
		}
		fpga := hwsim.EstimateFPGA(block.Netlist())
		asic := hwsim.EstimateASIC(block.Netlist())
		fmt.Printf("%-18s %-22s %7d %6d %6d %7d %5.0fMHz\n",
			design.Name, testList(design.Tests), fpga.Slices, fpga.FFs, fpga.LUTs, asic.GE, fpga.FmaxMHz)
		if fpga.Slices <= sliceBudget && len(design.Tests) >= bestTests {
			best = &design
			bestTests = len(design.Tests)
		}
	}
	if best == nil {
		fmt.Printf("\nno design fits %d slices\n", sliceBudget)
		return
	}
	fmt.Printf("\nunder a %d-slice budget, pick %s (%d tests)\n",
		sliceBudget, best.Name, len(best.Tests))

	// The future-work extension: a custom design point between the
	// published ones.
	custom, err := repro.NewCustomDesign("custom-16k", 16384, []int{1, 2, 3, 4, 11, 12, 13})
	if err != nil {
		log.Fatal(err)
	}
	block, err := hwblock.New(custom)
	if err != nil {
		log.Fatal(err)
	}
	fpga := hwsim.EstimateFPGA(block.Netlist())
	fmt.Printf("custom 16384-bit design with serial/ApEn: %d slices, %d FF, %.0f MHz\n",
		fpga.Slices, fpga.FFs, fpga.FmaxMHz)
}
