package repro

// This file is the benchmark harness of deliverable (d): one benchmark per
// table and figure of the paper's evaluation section, plus throughput
// benchmarks for the platform itself. `go test -bench=. -benchmem`
// regenerates every experiment; cmd/tablegen prints the same results as
// human-readable tables. Custom metrics attach the reproduced headline
// numbers to the benchmark output.

import (
	"testing"

	"repro/internal/area"
	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/firmware"
	"repro/internal/hwblock"
	"repro/internal/hwsim"
	"repro/internal/msp430"
	"repro/internal/nist"
	"repro/internal/sp80090b"
	"repro/internal/sweval"
	"repro/internal/tables"
	"repro/internal/trng"
)

// BenchmarkTableI regenerates Table I: the suitability classification of
// all 15 NIST tests. The metric counts the HW-suitable tests (paper: 9).
func BenchmarkTableI(b *testing.B) {
	suitable := 0
	for i := 0; i < b.N; i++ {
		suitable = 0
		for _, tc := range nist.Suite() {
			if tc.HWSuitable {
				suitable++
			}
		}
		_ = tables.TableI()
	}
	b.ReportMetric(float64(suitable), "suitable-tests")
}

// BenchmarkTableII regenerates Table II: the HW/SW split, verified by
// running the full split pipeline (hardware counters → software decision)
// and confirming it agrees with the reference suite on an ideal sequence.
func BenchmarkTableII(b *testing.B) {
	cfg, err := hwblock.NewConfig(65536, hwblock.High)
	if err != nil {
		b.Fatal(err)
	}
	cv, err := sweval.NewCriticalValues(cfg, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	s := trng.Read(trng.NewIdeal(1), cfg.N)
	agreements := 0
	for i := 0; i < b.N; i++ {
		blk, err := hwblock.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := blk.Run(bitstream.NewReader(s)); err != nil {
			b.Fatal(err)
		}
		rep, err := sweval.NewEvaluator(cv).Evaluate(blk)
		if err != nil {
			b.Fatal(err)
		}
		agreements = len(rep.Verdicts)
	}
	b.ReportMetric(float64(agreements), "tests-evaluated")
}

// BenchmarkTableIII regenerates Table III: the eight design points with
// their resource estimates and software instruction counts. Metrics carry
// the headline corners (the paper's "52 slices (5 tests) to 552 slices
// (9 tests)" span).
func BenchmarkTableIII(b *testing.B) {
	var rows []tables.TableIIIRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = tables.TableIIIData()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Model.Slices), "slices-smallest")
	b.ReportMetric(float64(rows[len(rows)-1].Model.Slices), "slices-largest")
	b.ReportMetric(rows[len(rows)-1].Model.FmaxMHz, "fmax-largest-MHz")
}

// BenchmarkTableIV regenerates Table IV: unified vs individual
// implementations and the software latency on the MSP430 core.
func BenchmarkTableIV(b *testing.B) {
	var d *tables.TableIVData
	var err error
	for i := 0; i < b.N; i++ {
		d, err = tables.TableIVCompute()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*d.Comparison.Saving, "slice-saving-%")
	b.ReportMetric(float64(d.SWCycles), "sw-latency-cycles")
}

// BenchmarkFig3 regenerates Fig. 3: the 32-segment PWL approximation of
// x·log(x) and its error bound (paper: < 3 %).
func BenchmarkFig3(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		tbl := sweval.NewXLogXTable()
		rel = tbl.MaxRelativeError(1.0/32, 10000)
	}
	b.ReportMetric(100*rel, "max-rel-error-%")
}

// BenchmarkFig2 regenerates the Fig. 2 structural dump of the largest
// design.
func BenchmarkFig2(b *testing.B) {
	var words int
	for i := 0; i < b.N; i++ {
		cfg, err := hwblock.NewConfig(1<<20, hwblock.High)
		if err != nil {
			b.Fatal(err)
		}
		blk, err := hwblock.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		words = blk.RegFile().Words()
	}
	b.ReportMetric(float64(words), "regfile-words")
}

// --- platform throughput benchmarks -----------------------------------------

// BenchmarkHWBlockClock measures the cycle-accurate structural
// simulation's ingest rate — one simulated clock per op. The real hardware
// takes one cycle per bit; this rate bounds golden-reference experiment
// turnaround. The path is pinned explicitly because the word-level fast
// path (BenchmarkHWFastIngest) is the default.
func BenchmarkHWBlockClock(b *testing.B) {
	for _, name := range []string{"light", "high"} {
		v := hwblock.Light
		if name == "high" {
			v = hwblock.High
		}
		b.Run("n65536-"+name, func(b *testing.B) {
			cfg, err := hwblock.NewConfig(65536, v)
			if err != nil {
				b.Fatal(err)
			}
			blk, err := hwblock.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := blk.SetPath(hwblock.CycleAccurate); err != nil {
				b.Fatal(err)
			}
			src := trng.NewIdeal(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bit, _ := src.ReadBit()
				if blk.Done() {
					blk.Reset()
				}
				if err := blk.Clock(bit); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "bits/s")
		})
	}
}

// BenchmarkHWFastIngest measures the word-level fast path on the same
// designs, normalized to one bit per op so the ns/op is directly
// comparable with BenchmarkHWBlockClock (acceptance target: ≥ 10×).
func BenchmarkHWFastIngest(b *testing.B) {
	for _, name := range []string{"light", "high"} {
		v := hwblock.Light
		if name == "high" {
			v = hwblock.High
		}
		b.Run("n65536-"+name, func(b *testing.B) {
			cfg, err := hwblock.NewConfig(65536, v)
			if err != nil {
				b.Fatal(err)
			}
			blk, err := hwblock.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			r := bitstream.NewReader(trng.Read(trng.NewIdeal(1), cfg.N))
			b.ResetTimer()
			fed := 0
			for fed < b.N {
				if blk.Done() {
					blk.Reset()
					r.Reset()
				}
				take := cfg.N - blk.BitsSeen()
				if take > 64 {
					take = 64
				}
				w, got, err := r.ReadWord64(take)
				if err != nil {
					b.Fatal(err)
				}
				if err := blk.ClockWord(w, got); err != nil {
					b.Fatal(err)
				}
				fed += got
			}
			b.ReportMetric(float64(fed)/b.Elapsed().Seconds(), "bits/s")
		})
	}
}

// BenchmarkMonitorSteadyState measures one full monitored sequence per op
// with the block and history reused across boundaries — the steady-state
// allocation profile (run with -benchmem).
func BenchmarkMonitorSteadyState(b *testing.B) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMonitor(cfg, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	m.KeepHistory = 4
	r := bitstream.NewReader(trng.Read(trng.NewIdeal(7), cfg.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset()
		for {
			bit, err := r.ReadBit()
			if err != nil {
				b.Fatal(err)
			}
			rep, err := m.Feed(bit)
			if err != nil {
				b.Fatal(err)
			}
			if rep != nil {
				break
			}
		}
	}
}

// BenchmarkSWEvaluation measures one software evaluation pass per design
// variant — the work the embedded CPU performs once per sequence.
func BenchmarkSWEvaluation(b *testing.B) {
	for _, v := range []hwblock.Variant{hwblock.Light, hwblock.Medium, hwblock.High} {
		cfg, err := hwblock.NewConfig(65536, v)
		if err != nil {
			b.Fatal(err)
		}
		blk, err := hwblock.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := blk.Run(bitstream.NewReader(trng.Read(trng.NewIdeal(1), cfg.N))); err != nil {
			b.Fatal(err)
		}
		cv, err := sweval.NewCriticalValues(cfg, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		ev := sweval.NewEvaluator(cv)
		b.Run(cfg.Name, func(b *testing.B) {
			var cost int
			for i := 0; i < b.N; i++ {
				rep, err := ev.Evaluate(blk)
				if err != nil {
					b.Fatal(err)
				}
				cost = rep.Cost.Total()
			}
			b.ReportMetric(float64(cost), "16bit-instructions")
		})
	}
}

// BenchmarkFirmware measures the MSP430 firmware evaluation — the genuine
// cycle-level latency of Table IV.
func BenchmarkFirmware(b *testing.B) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		b.Fatal(err)
	}
	blk, err := hwblock.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := blk.Run(bitstream.NewReader(trng.Read(trng.NewIdeal(2), cfg.N))); err != nil {
		b.Fatal(err)
	}
	cv, err := sweval.NewCriticalValues(cfg, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, _, err := firmware.Run(blk, cv)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "msp430-cycles")
}

// BenchmarkReferenceSuite measures the full-precision reference tests the
// platform is validated against.
func BenchmarkReferenceSuite(b *testing.B) {
	s := trng.Read(trng.NewIdeal(3), 65536)
	for _, tc := range nist.Suite() {
		tc := tc
		if tc.ID == 9 || tc.ID == 14 || tc.ID == 15 {
			continue // not applicable at this length
		}
		b.Run(tc.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tc.Run(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonitor measures end-to-end monitored throughput (hardware
// ingest + software check at each boundary).
func BenchmarkMonitor(b *testing.B) {
	design, err := NewDesign(65536, Medium)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMonitor(design, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	src := NewIdealSource(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bit, _ := src.ReadBit()
		if _, err := m.Feed(bit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAreaEstimate measures the structural area model itself.
func BenchmarkAreaEstimate(b *testing.B) {
	cfg, err := hwblock.NewConfig(1<<20, hwblock.High)
	if err != nil {
		b.Fatal(err)
	}
	blk, err := hwblock.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = hwsim.EstimateFPGA(blk.Netlist())
		_ = hwsim.EstimateASIC(blk.Netlist())
	}
}

// --- extension experiments ----------------------------------------------------

// BenchmarkDetectionPower sweeps bias severity and reports the
// single-sequence detection rate at the extremes — the quick-test
// (total failure) vs slow-test (subtle weakness) distinction the paper's
// introduction draws.
func BenchmarkDetectionPower(b *testing.B) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		b.Fatal(err)
	}
	var pts []core.PowerPoint
	for i := 0; i < b.N; i++ {
		pts, err = core.PowerSweep(cfg, 0.01, []float64{0.502, 0.506, 0.51}, 6,
			func(sev float64, seed int64) trng.Source {
				return trng.NewBiased(sev, seed*101+int64(sev*1e4))
			})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].DetectionRate, "rate-at-0.502")
	b.ReportMetric(pts[len(pts)-1].DetectionRate, "rate-at-0.510")
}

// BenchmarkPowerSweepWorkers measures the detection-power sweep serially
// and across the GOMAXPROCS worker pool; results are byte-identical, only
// the wall clock changes.
func BenchmarkPowerSweepWorkers(b *testing.B) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		b.Fatal(err)
	}
	makeSource := func(sev float64, seed int64) trng.Source {
		return trng.NewBiased(sev, seed*101+int64(sev*1e4))
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"gomaxprocs", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PowerSweepWorkers(cfg, 0.01, []float64{0.52}, 16,
					bc.workers, makeSource); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblations quantifies each of the paper's §III-C sharing tricks
// on the n=65536 high design.
func BenchmarkAblations(b *testing.B) {
	cfg, err := hwblock.NewConfig(65536, hwblock.High)
	if err != nil {
		b.Fatal(err)
	}
	var abls []area.Ablation
	for i := 0; i < b.N; i++ {
		abls, err = area.Ablations(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, a := range abls {
		b.ReportMetric(float64(a.DeltaSlices), a.Trick+"-slices")
	}
}

// BenchmarkHealthTestContrast contrasts the SP800-90B continuous health
// tests with the statistical monitor on a 52%-biased source: the health
// tests stay quiet while the monitor detects from one sequence. The
// metrics carry both outcomes.
func BenchmarkHealthTestContrast(b *testing.B) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		b.Fatal(err)
	}
	var healthAlarms int
	var monitorDetects float64
	for i := 0; i < b.N; i++ {
		hb, err := sp80090b.NewHealthBlock(1, sp80090b.DefaultAlpha, sp80090b.DefaultWindow)
		if err != nil {
			b.Fatal(err)
		}
		src := trng.NewBiased(0.52, 3)
		m, err := core.NewMonitor(cfg, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 65536; j++ {
			bit, _ := src.ReadBit()
			hb.Feed(bit)
			if _, err := m.Feed(bit); err != nil {
				b.Fatal(err)
			}
		}
		r, a := hb.Alarms()
		healthAlarms = r + a
		monitorDetects = 0
		if len(m.History()) > 0 && !m.History()[0].Report.Pass() {
			monitorDetects = 1
		}
	}
	b.ReportMetric(float64(healthAlarms), "sp80090b-alarms")
	b.ReportMetric(monitorDetects, "monitor-detected")
}

// BenchmarkMSP430 measures the CPU simulator's instruction throughput.
func BenchmarkMSP430(b *testing.B) {
	prog, err := msp430.Assemble(`
 clr r4
 mov #1000, r5
loop:
 add r5, r4
 dec r5
 jnz loop
 bis #0x10, sr
`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cpu := msp430.New()
		cpu.LoadImage(prog.Origin, prog.Words)
		cpu.SetReg(msp430.PC, prog.Origin)
		if err := cpu.Run(10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSecondLevel measures the suite-level interpretation (pass
// proportion + P-value uniformity) over a 50-sequence batch.
func BenchmarkSecondLevel(b *testing.B) {
	var pvalues []float64
	var passes []bool
	for i := 0; i < 50; i++ {
		s := trng.Read(trng.NewIdeal(int64(300+i)), 4096)
		r, err := nist.Frequency(s)
		if err != nil {
			b.Fatal(err)
		}
		pvalues = append(pvalues, r.MinP())
		passes = append(passes, r.Pass(0.01))
	}
	b.ResetTimer()
	var ok float64
	for i := 0; i < b.N; i++ {
		pr, err := nist.Proportion(passes, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		ur, err := nist.Uniformity(pvalues)
		if err != nil {
			b.Fatal(err)
		}
		ok = 0
		if pr.OK && ur.OK {
			ok = 1
		}
	}
	b.ReportMetric(ok, "suite-accepted")
}

// BenchmarkTwoCoreLatency compares the evaluation routine's latency on the
// two simulated open cores (the paper's future-work experiment): the
// 16-bit openMSP430-style core vs a 32-bit RV32IM core, on identical
// hardware counters.
func BenchmarkTwoCoreLatency(b *testing.B) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		b.Fatal(err)
	}
	blk, err := hwblock.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := blk.Run(bitstream.NewReader(trng.Read(trng.NewIdeal(5), cfg.N))); err != nil {
		b.Fatal(err)
	}
	cv, err := sweval.NewCriticalValues(cfg, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	var mspCycles, rvCycles int64
	for i := 0; i < b.N; i++ {
		msp, _, err := firmware.Run(blk, cv)
		if err != nil {
			b.Fatal(err)
		}
		rv, _, err := firmware.RunRV32(blk, cv)
		if err != nil {
			b.Fatal(err)
		}
		mspCycles, rvCycles = msp.Cycles, rv.Cycles
	}
	b.ReportMetric(float64(mspCycles), "msp430-cycles")
	b.ReportMetric(float64(rvCycles), "rv32-cycles")
}

// BenchmarkRV32FullSet measures the complete nine-test evaluation latency
// on the RV32 core (the high design) — the all-software half of the
// paper's split at its largest.
func BenchmarkRV32FullSet(b *testing.B) {
	cfg, err := hwblock.NewConfig(65536, hwblock.High)
	if err != nil {
		b.Fatal(err)
	}
	blk, err := hwblock.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := blk.Run(bitstream.NewReader(trng.Read(trng.NewIdeal(6), cfg.N))); err != nil {
		b.Fatal(err)
	}
	cv, err := sweval.NewCriticalValues(cfg, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	var cycles, instrs int64
	for i := 0; i < b.N; i++ {
		res, _, err := firmware.RunRV32(blk, cv)
		if err != nil {
			b.Fatal(err)
		}
		cycles, instrs = res.Cycles, res.Instructions
	}
	b.ReportMetric(float64(cycles), "rv32-cycles")
	b.ReportMetric(float64(instrs), "rv32-instructions")
}
