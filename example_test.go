package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleNewMonitor shows the basic monitoring loop: a design point, a
// source, and per-sequence verdicts.
func ExampleNewMonitor() {
	design, err := repro.NewDesign(128, repro.Light)
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := repro.NewMonitor(design, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	reports, err := monitor.Watch(repro.NewIdealSource(7), 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("sequence %d pass=%v\n", r.Index, r.Report.Pass())
	}
	// Output:
	// sequence 0 pass=true
	// sequence 1 pass=true
	// sequence 2 pass=true
}

// ExampleNewCustomDesign shows the future-work extension: a caller-chosen
// sequence length and test subset.
func ExampleNewCustomDesign() {
	design, err := repro.NewCustomDesign("compact", 2048, []int{1, 3, 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(design.Name, design.N, design.Tests)
	// Output:
	// compact 2048 [1 3 13]
}

// ExampleDesigns enumerates the paper's Table III design points.
func ExampleDesigns() {
	for _, d := range repro.Designs() {
		fmt.Println(d.Name, len(d.Tests))
	}
	// Output:
	// n128-light 5
	// n128-medium 7
	// n65536-light 5
	// n65536-medium 6
	// n65536-high 9
	// n1048576-light 5
	// n1048576-medium 6
	// n1048576-high 9
}

// ExampleReferenceSuite runs one reference test directly.
func ExampleReferenceSuite() {
	suite := repro.ReferenceSuite()
	s := repro.ReadBits(repro.NewIdealSource(1), 4096)
	r, err := suite[0].Run(s) // test 1: Frequency (Monobit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.TestID, r.Name, r.Pass(0.01))
	// Output:
	// 1 Frequency (Monobit) true
}
