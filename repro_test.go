package repro

import "testing"

func TestFacadeDesigns(t *testing.T) {
	if got := len(Designs()); got != 8 {
		t.Fatalf("Designs() = %d entries, want 8", got)
	}
	d, err := NewDesign(65536, High)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 65536 || len(d.Tests) != 9 {
		t.Errorf("unexpected design: %+v", d)
	}
}

func TestFacadeMonitorEndToEnd(t *testing.T) {
	d, err := NewDesign(128, Light)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(d, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := m.Watch(NewIdealSource(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
}

func TestFacadeCustomDesign(t *testing.T) {
	d, err := NewCustomDesign("mini", 1024, []int{1, 3, 13})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(d, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Watch(NewIdealSource(2), 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeReferenceSuite(t *testing.T) {
	suite := ReferenceSuite()
	if len(suite) != 15 {
		t.Fatalf("ReferenceSuite() = %d tests, want 15", len(suite))
	}
	s := ReadBits(NewIdealSource(3), 2048)
	r, err := suite[0].Run(s) // frequency test
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("frequency test rejected ideal source (P=%g)", r.MinP())
	}
}

func TestFacadeRingOscillator(t *testing.T) {
	ro := NewRingOscillatorSource(100.37, 1.0, 4)
	s := ReadBits(ro, 4096)
	if s.Len() != 4096 {
		t.Fatalf("read %d bits", s.Len())
	}
	ones := s.Ones()
	if ones < 1700 || ones > 2400 {
		t.Errorf("oscillator badly biased: %d ones of 4096", ones)
	}
}
