package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"strconv"
)

// This file is the value-range half of the flow-sensitive dataflow engine
// (flow.go walks the statements): a small interval domain over int64 with
// saturating endpoints. MinInt64/MaxInt64 double as -inf/+inf — any
// computation that reaches them stays there, which conflates "exactly
// MaxInt64" with "unbounded", a deliberately one-sided loss: an interval
// can only ever be wider than the true value set, never narrower, so a
// Fits16 verdict is trustworthy and a non-verdict is merely conservative.

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

// Interval is an inclusive signed value range. The zero value is [0, 0].
type Interval struct {
	Lo, Hi int64
}

// Top is the unbounded interval.
var Top = Interval{negInf, posInf}

// String renders the interval with explicit infinities, e.g. "[0, 65535]"
// or "[-inf, 131071]".
func (iv Interval) String() string {
	lo, hi := "-inf", "+inf"
	if iv.Lo != negInf {
		lo = strconv.FormatInt(iv.Lo, 10)
	}
	if iv.Hi != posInf {
		hi = strconv.FormatInt(iv.Hi, 10)
	}
	return "[" + lo + ", " + hi + "]"
}

// Join is the smallest interval containing both operands.
func (iv Interval) Join(o Interval) Interval {
	if o.Lo < iv.Lo {
		iv.Lo = o.Lo
	}
	if o.Hi > iv.Hi {
		iv.Hi = o.Hi
	}
	return iv
}

// Fits16 reports whether every value of the interval is representable in
// one 16-bit bus word, unsigned ([0, 0xFFFF]) or signed ([-0x8000,
// 0x7FFF]) — the truncation guarantee the regwidth invariant asks for.
func (iv Interval) Fits16() bool {
	if iv.Lo >= 0 && iv.Hi <= 0xFFFF {
		return true
	}
	return iv.Lo >= -0x8000 && iv.Hi <= 0x7FFF
}

// contains reports whether o lies entirely within iv.
func (iv Interval) contains(o Interval) bool {
	return iv.Lo <= o.Lo && o.Hi <= iv.Hi
}

// nonNeg reports a provably non-negative interval.
func (iv Interval) nonNeg() bool { return iv.Lo >= 0 }

// ---------------------------------------------------------------------------
// Saturating scalar arithmetic. Endpoint infinities are sticky.

func isInfinity(a int64) bool { return a == negInf || a == posInf }

func satAdd(a, b int64) int64 {
	if isInfinity(a) {
		return a
	}
	if isInfinity(b) {
		return b
	}
	s := a + b
	switch {
	case a > 0 && b > 0 && s <= 0:
		return posInf
	case a < 0 && b < 0 && s >= 0:
		return negInf
	}
	return s
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if isInfinity(a) || isInfinity(b) {
		if (a > 0) == (b > 0) {
			return posInf
		}
		return negInf
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return posInf
		}
		return negInf
	}
	return p
}

func satShl(a int64, s uint) int64 {
	if a == 0 {
		return 0
	}
	if isInfinity(a) || s >= 63 {
		if a > 0 {
			return posInf
		}
		return negInf
	}
	r := a << s
	if r>>s != a {
		if a > 0 {
			return posInf
		}
		return negInf
	}
	return r
}

func satNeg(a int64) int64 {
	switch a {
	case negInf:
		return posInf
	case posInf:
		return negInf
	}
	return -a
}

// ---------------------------------------------------------------------------
// Interval arithmetic.

func addIv(a, b Interval) Interval { return Interval{satAdd(a.Lo, b.Lo), satAdd(a.Hi, b.Hi)} }

func subIv(a, b Interval) Interval {
	return Interval{satAdd(a.Lo, satNeg(b.Hi)), satAdd(a.Hi, satNeg(b.Lo))}
}

func negIv(a Interval) Interval { return Interval{satNeg(a.Hi), satNeg(a.Lo)} }

func mulIv(a, b Interval) Interval {
	c := [4]int64{
		satMul(a.Lo, b.Lo), satMul(a.Lo, b.Hi),
		satMul(a.Hi, b.Lo), satMul(a.Hi, b.Hi),
	}
	out := Interval{c[0], c[0]}
	for _, v := range c[1:] {
		if v < out.Lo {
			out.Lo = v
		}
		if v > out.Hi {
			out.Hi = v
		}
	}
	return out
}

// andIv models x & y. A non-negative operand bounds the result above and
// the result of AND on non-negatives is never negative.
func andIv(a, b Interval) Interval {
	switch {
	case a.nonNeg() && b.nonNeg():
		hi := a.Hi
		if b.Hi < hi {
			hi = b.Hi
		}
		return Interval{0, hi}
	case a.nonNeg():
		return Interval{0, a.Hi}
	case b.nonNeg():
		return Interval{0, b.Hi}
	}
	return Top
}

// andNotIv models x &^ y: clearing bits of a non-negative x only shrinks
// it.
func andNotIv(a, b Interval) Interval {
	if a.nonNeg() {
		return Interval{0, a.Hi}
	}
	return Top
}

// orXorIv models x | y and x ^ y on non-negative operands: the result
// cannot exceed the next all-ones value covering both.
func orXorIv(a, b Interval) Interval {
	if !a.nonNeg() || !b.nonNeg() {
		return Top
	}
	hi := a.Hi
	if b.Hi > hi {
		hi = b.Hi
	}
	if hi == posInf {
		return Interval{0, posInf}
	}
	// Round up to 2^k-1 >= hi.
	mask := int64(1)
	for mask-1 < hi && mask > 0 {
		mask <<= 1
	}
	if mask <= 0 {
		return Interval{0, posInf}
	}
	return Interval{0, mask - 1}
}

func shlIv(a, s Interval) Interval {
	if !a.nonNeg() || !s.nonNeg() || s.Hi >= 64 || isInfinity(s.Hi) {
		return Top
	}
	return Interval{satShl(a.Lo, uint(s.Lo)), satShl(a.Hi, uint(s.Hi))}
}

func shrIv(a, s Interval) Interval {
	if !a.nonNeg() || !s.nonNeg() || isInfinity(s.Hi) {
		return Top
	}
	hi := a.Hi
	if !isInfinity(hi) && s.Lo < 64 {
		hi = hi >> uint(s.Lo)
	}
	lo := int64(0)
	if !isInfinity(a.Lo) && s.Hi < 64 {
		lo = a.Lo >> uint(s.Hi)
	}
	return Interval{lo, hi}
}

// remIv models x % y for a provably positive (or negative) divisor: the
// remainder takes the dividend's sign and its magnitude stays below the
// divisor's.
func remIv(a, b Interval) Interval {
	var dmax int64
	switch {
	case b.Lo > 0:
		dmax = b.Hi
	case b.Hi < 0:
		dmax = satNeg(b.Lo)
	default:
		return Top // divisor range spans 0: could panic, no bound claimed
	}
	if isInfinity(dmax) {
		dmax = posInf
	}
	hi := satAdd(dmax, -1)
	// The remainder's magnitude is also bounded by the dividend's.
	if a.nonNeg() {
		if !isInfinity(a.Hi) && a.Hi < hi {
			hi = a.Hi
		}
		return Interval{0, hi}
	}
	return Interval{satNeg(hi), hi}
}

// quoIv models x / y for a divisor interval that excludes zero.
func quoIv(a, b Interval) Interval {
	if b.Lo <= 0 && b.Hi >= 0 {
		return Top
	}
	if isInfinity(a.Lo) || isInfinity(a.Hi) || isInfinity(b.Lo) || isInfinity(b.Hi) {
		// Corner arithmetic on infinities: only the easy, common case of
		// a non-negative dividend and positive divisor is kept precise.
		if a.nonNeg() && b.Lo > 0 {
			return Interval{0, a.Hi} // |x/y| <= |x| for y >= 1
		}
		return Top
	}
	c := [4]int64{a.Lo / b.Lo, a.Lo / b.Hi, a.Hi / b.Lo, a.Hi / b.Hi}
	out := Interval{c[0], c[0]}
	for _, v := range c[1:] {
		if v < out.Lo {
			out.Lo = v
		}
		if v > out.Hi {
			out.Hi = v
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Types.

// typeInterval is the full value range of an integer type — the fallback
// when nothing better is known. int/uint and the 64-bit types saturate.
func typeInterval(t types.Type) Interval {
	if t == nil {
		return Top
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return Top
	}
	switch b.Kind() {
	case types.Bool, types.UntypedBool:
		return Interval{0, 1}
	case types.Int8:
		return Interval{math.MinInt8, math.MaxInt8}
	case types.Int16:
		return Interval{math.MinInt16, math.MaxInt16}
	case types.Int32:
		return Interval{math.MinInt32, math.MaxInt32}
	case types.Uint8:
		return Interval{0, math.MaxUint8}
	case types.Uint16:
		return Interval{0, math.MaxUint16}
	case types.Uint32:
		return Interval{0, math.MaxUint32}
	case types.Uint, types.Uint64, types.Uintptr:
		return Interval{0, posInf}
	default:
		return Top
	}
}

// fitToType wraps an interval into a type's range: a value set that fits
// is preserved, anything else wraps in ways the domain cannot follow, so
// the whole type range is the honest answer.
func fitToType(iv Interval, t types.Type) Interval {
	r := typeInterval(t)
	if r.contains(iv) {
		return iv
	}
	return r
}

// intLike reports whether t is a type the integer interval domain models
// soundly: an integer or boolean basic type. Float, complex and string
// expressions follow different arithmetic (1.0/2.0 is 0.5, not 0), so
// they get no interval beyond Top.
func intLike(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// ---------------------------------------------------------------------------
// Expression evaluation.

// Evaluator computes value intervals for expressions under an
// environment of per-variable refinements maintained by the flow walker
// (flow.go). A zero environment — NewEvaluator — still folds constants,
// type ranges and arithmetic; the flow walker adds what assignments and
// branches prove. Every answer is conservative: the true value set of the
// expression is contained in the returned interval.
type Evaluator struct {
	info *types.Info
	env  map[types.Object]Interval
}

// NewEvaluator returns an evaluator with no variable refinements, for
// contexts without statement flow (package-level initializers).
func NewEvaluator(info *types.Info) *Evaluator {
	return &Evaluator{info: info}
}

// Eval returns a conservative interval for e.
func (ev *Evaluator) Eval(e ast.Expr) Interval {
	// The type checker already folded constants — including untyped
	// constant arithmetic — so trust it first.
	if tv, ok := ev.info.Types[e]; ok && tv.Value != nil {
		if c := constant.ToInt(tv.Value); c.Kind() == constant.Int {
			if v, exact := constant.Int64Val(c); exact {
				return Interval{v, v}
			}
			if constant.Sign(c) >= 0 {
				return Interval{posInf, posInf} // >= MaxInt64
			}
			return Interval{negInf, negInf} // <= MinInt64
		}
	}

	// Structural evaluation applies integer semantics; a float expression
	// walked that way would get unsound answers (quoIv says 1/2 = 0, not
	// 0.5), so anything that isn't integer- or boolean-valued stops here.
	if !intLike(ev.info.TypeOf(e)) {
		return Top
	}

	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.Eval(e.X)

	case *ast.Ident:
		if obj := ev.info.ObjectOf(e); obj != nil {
			if iv, ok := ev.env[obj]; ok {
				return iv
			}
			return typeInterval(obj.Type())
		}

	case *ast.CallExpr:
		// A conversion preserves a fitting value and wraps otherwise;
		// any other call yields no more than its result type's range.
		if tv, ok := ev.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return fitToType(ev.Eval(e.Args[0]), tv.Type)
		}

	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD:
			return ev.Eval(e.X)
		case token.SUB:
			return fitToType(negIv(ev.Eval(e.X)), ev.info.TypeOf(e))
		case token.NOT:
			return Interval{0, 1}
		}

	case *ast.BinaryExpr:
		return ev.evalBinary(e.Op, ev.Eval(e.X), ev.Eval(e.Y), ev.info.TypeOf(e))
	}
	return typeInterval(ev.info.TypeOf(e))
}

// evalBinary combines operand intervals under op, wrapped to the result
// type rt (Go arithmetic wraps; saturation is only the domain's internal
// representation).
func (ev *Evaluator) evalBinary(op token.Token, x, y Interval, rt types.Type) Interval {
	if !intLike(rt) {
		return typeInterval(rt)
	}
	switch op {
	case token.ADD:
		return fitToType(addIv(x, y), rt)
	case token.SUB:
		return fitToType(subIv(x, y), rt)
	case token.MUL:
		return fitToType(mulIv(x, y), rt)
	case token.QUO:
		return fitToType(quoIv(x, y), rt)
	case token.REM:
		return fitToType(remIv(x, y), rt)
	case token.AND:
		return fitToType(andIv(x, y), rt)
	case token.AND_NOT:
		return fitToType(andNotIv(x, y), rt)
	case token.OR, token.XOR:
		return fitToType(orXorIv(x, y), rt)
	case token.SHL:
		return fitToType(shlIv(x, y), rt)
	case token.SHR:
		return fitToType(shrIv(x, y), rt)
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.LAND, token.LOR:
		return Interval{0, 1}
	}
	return typeInterval(rt)
}
