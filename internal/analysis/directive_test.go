package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `// Package p is a directive-parsing fixture.
//
//trnglint:bus16
//trnglint:deterministic
package p

func a() {
	x := 1 //trnglint:widen reason on the same line
	_ = x

	//trnglint:allow errdrop a documented reason
	y := 2
	_ = y

	//trnglint:widen
	z := 3 // bare widen: no reason, no waiver
	_ = z

	//trnglint:allow determinism
	w := 4 // allow without a reason: no waiver
	_ = w
}
`

func TestDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	d := ParseDirectives(fset, []*ast.File{f})

	if !d.HasMarker("bus16") || !d.HasMarker("deterministic") {
		t.Error("package markers not parsed")
	}
	if d.HasMarker("widen") {
		t.Error("widen must not register as a marker")
	}

	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	// Line 8 carries a trailing widen waiver with a reason.
	if !d.Waived(fset, pos(8), "regwidth") {
		t.Error("same-line widen waiver not honoured")
	}
	// Line 12 sits under a line-above allow waiver for errdrop only.
	if !d.Waived(fset, pos(12), "errdrop") {
		t.Error("line-above allow waiver not honoured")
	}
	if d.Waived(fset, pos(12), "regwidth") {
		t.Error("allow waiver leaked to another analyzer")
	}
	if d.Waived(fset, pos(13), "errdrop") {
		t.Error("waiver must not reach two lines below the comment")
	}
	// Bare //trnglint:widen (line 15) must not waive line 16.
	if d.Waived(fset, pos(16), "regwidth") {
		t.Error("reason-less widen waiver must be ignored")
	}
	// //trnglint:allow with no reason (line 19) must not waive line 20.
	if d.Waived(fset, pos(20), "determinism") {
		t.Error("reason-less allow waiver must be ignored")
	}
}
