// Package nodefer keeps latency-unpredictable control constructs out of
// //trnglint:hotpath code: defer (work scheduled at function exit, paid on
// every return), recover (implies a deferred handler), map iteration
// (randomized order, rehash-dependent cost), goroutine launches, and
// channel operations (sends, receives, range-over-channel, close, select)
// — each one a scheduling point where the ingest path can block or yield.
// Where a hot function's contract deliberately includes a handoff — the
// fleet producer's bounded-queue send is the backpressure policy itself —
// the construct is waived in place with //trnglint:alloc <reason>, so
// every concession is documented at the line that makes it.
//
// A select statement is reported once, at the select keyword, rather than
// once per communication clause: the scheduling concession is the select
// itself, and one waiver should document it.
package nodefer

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags defer, recover, map iteration, goroutine launches and
// channel operations in hot-path code.
var Analyzer = &analysis.Analyzer{
	Name: "nodefer",
	Doc:  "hot-path code must not defer, recover, iterate maps, start goroutines, or touch channels",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for fn, decl := range pass.HotFuncs() {
		checkBody(pass, analysis.FuncLabel(fn), decl)
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, label string, decl *ast.FuncDecl) {
	// Communication clauses of a reported select are not re-reported.
	inSelect := make(map[ast.Stmt]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // the literal itself is noalloc's finding
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "hot path %s: defer schedules work at function exit", label)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hot path %s: go statement hands work to the scheduler", label)
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "hot path %s: select is a scheduling point", label)
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					inSelect[cc.Comm] = true
				}
			}
		case *ast.SendStmt:
			if !inSelect[n] {
				pass.Reportf(n.Pos(), "hot path %s: channel send can block", label)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !receiveInSelect(inSelect, n) {
				pass.Reportf(n.Pos(), "hot path %s: channel receive can block", label)
			}
		case *ast.RangeStmt:
			t := pass.TypeOf(n.X)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "hot path %s: map iteration has randomized order and rehash-dependent cost", label)
			case *types.Chan:
				pass.Reportf(n.Pos(), "hot path %s: range over channel blocks per element", label)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
					switch b.Name() {
					case "recover":
						pass.Reportf(n.Pos(), "hot path %s: recover implies a deferred handler", label)
					case "close":
						pass.Reportf(n.Pos(), "hot path %s: channel close is a lifecycle operation", label)
					}
				}
			}
		}
		return true
	})
}

// receiveInSelect reports whether the receive expression recv is the
// communication operation of an already-reported select clause (either
// bare `<-ch` or the right-hand side of `v := <-ch`).
func receiveInSelect(inSelect map[ast.Stmt]bool, recv *ast.UnaryExpr) bool {
	for stmt := range inSelect {
		switch stmt := stmt.(type) {
		case *ast.ExprStmt:
			if ast.Unparen(stmt.X) == recv {
				return true
			}
		case *ast.AssignStmt:
			if len(stmt.Rhs) == 1 && ast.Unparen(stmt.Rhs[0]) == recv {
				return true
			}
		}
	}
	return false
}
