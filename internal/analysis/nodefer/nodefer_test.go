package nodefer_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nodefer"
)

func TestNodefer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), nodefer.Analyzer, "deferdemo")
}
