// Package deferdemo is the golden suite for the nodefer analyzer: the
// latency-unpredictable constructs it must flag in hotpath code, the
// single-report select behaviour, and the waiver placement.
package deferdemo

type stats struct{ m map[int]int }

//trnglint:hotpath
func constructs(ch chan uint64, st stats) {
	defer cleanup()     // want `hot path constructs: defer schedules work at function exit`
	ch <- 1             // want `hot path constructs: channel send can block`
	<-ch                // want `hot path constructs: channel receive can block`
	for w := range ch { // want `hot path constructs: range over channel blocks per element`
		_ = w
	}
	for k := range st.m { // want `hot path constructs: map iteration has randomized order and rehash-dependent cost`
		_ = k
	}
	close(ch)             // want `hot path constructs: channel close is a lifecycle operation`
	if recover() != nil { // want `hot path constructs: recover implies a deferred handler`
		return
	}
	go cleanup() // want `hot path constructs: go statement hands work to the scheduler`
}

// A select is one finding at the keyword; its communication clauses are
// not re-reported, so one waiverable line documents the whole concession.

//trnglint:hotpath
func selector(ch chan uint64) {
	select { // want `hot path selector: select is a scheduling point`
	case ch <- 2:
	case v := <-ch:
		_ = v
	default:
	}
}

// Receives in clause bodies (not the comm op itself) are still findings.

//trnglint:hotpath
func selectBody(ch chan uint64) {
	select { // want `hot path selectBody: select is a scheduling point`
	case ch <- 2:
		<-ch // want `hot path selectBody: channel receive can block`
	}
}

// waived documents the deliberate handoff in place: clean.

//trnglint:hotpath
func waived(ch chan uint64) {
	ch <- 3  //trnglint:alloc bounded-queue handoff is the backpressure policy
	select { //trnglint:alloc shed policy decides between enqueue and drop
	case ch <- 4:
	default:
	}
}

// absorbed is in the closure through the hot caller.

//trnglint:hotpath
func caller(ch chan uint64) { absorbed(ch) }

func absorbed(ch chan uint64) {
	ch <- 5 // want `hot path absorbed: channel send can block`
}

// cold is outside the closure: nothing is flagged.
func cold(ch chan uint64) {
	defer cleanup()
	ch <- 6
}

func cleanup() {}
