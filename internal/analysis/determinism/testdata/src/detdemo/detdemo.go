// Package detdemo exercises the determinism analyzer; the marker below
// declares it bit-reproducible.
//
//trnglint:deterministic
package detdemo

import (
	"math/rand"
	"time"
)

func clocks() {
	_ = time.Now()              // want `time.Now`
	_ = time.Since(time.Time{}) // want `time.Since`
	time.Sleep(1)               // want `time.Sleep`
	_ = time.NewTimer(1)        // want `time.NewTimer`
	_ = time.Unix(0, 0)         // pure conversion, no clock read
}

func waivedClock() time.Time {
	//trnglint:allow determinism throughput reporting wants the wall clock
	return time.Now()
}

func globalRand() {
	_ = rand.Int()                     // want `process-global`
	_ = rand.Float64()                 // want `process-global`
	rand.Shuffle(1, func(i, j int) {}) // want `process-global`
}

func seededRand() int {
	r := rand.New(rand.NewSource(7))
	return r.Int() // methods on a seeded generator are deterministic
}

func mapOrder(m map[int]int, s []int) int {
	sum := 0
	for k := range m { // want `range over a map`
		sum += k
	}
	for _, v := range s { // slices iterate in order
		sum += v
	}
	//trnglint:allow determinism the loop only accumulates a commutative sum
	for _, v := range m {
		sum += v
	}
	return sum
}

func fanout(n int) []int {
	var out []int
	results := make([]int, n)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			out = append(out, i) // want `captured by a go-statement literal`
			results[i] = i       // per-index writes are the deterministic idiom
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	return results
}

func localAppend(n int) []int {
	done := make(chan []int)
	go func() {
		var local []int // declared inside the literal: scheduling cannot reorder it
		for i := 0; i < n; i++ {
			local = append(local, i)
		}
		done <- local
	}()
	return <-done
}
