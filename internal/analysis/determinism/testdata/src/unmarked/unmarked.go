// Package unmarked has no //trnglint:deterministic marker, so the
// determinism analyzer must stay silent here.
package unmarked

import (
	"math/rand"
	"time"
)

func free() int {
	_ = time.Now()
	for k := range map[int]int{1: 1} {
		return k
	}
	return rand.Int()
}
