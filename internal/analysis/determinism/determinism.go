// Package determinism enforces bit-reproducibility in packages marked
// //trnglint:deterministic: every result there must be a pure function of
// the inputs and seeds, because the repository's differential suites
// compare such packages byte-for-byte against golden models (and against
// their own serial runs at other worker counts). Four leak classes are
// flagged:
//
//   - wall-clock reads (time.Now/Since/Until/After/Tick/NewTimer/...)
//   - the process-global math/rand generators (seeded rand.New(...) and
//     friends stay allowed — they are deterministic functions of the seed)
//   - ranging over a map, whose iteration order is deliberately random
//   - appends to variables captured by a `go func(){...}()` literal,
//     whose completion order the scheduler owns
//
// Intentional wall-clock dependence (a watchdog, a benchmark clock) is
// waived in place with //trnglint:allow determinism <reason>.
package determinism

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags nondeterminism sources inside //trnglint:deterministic
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock reads, global math/rand use, map-order iteration " +
		"and unsynchronized goroutine appends in bit-reproducible packages",
	Run: run,
}

// wallClock lists the time package functions whose results (or firing
// order) depend on the wall clock.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
	"Sleep": true,
}

// seededRand lists the math/rand constructors that are pure functions of
// their seed and therefore allowed; every other package-level function of
// math/rand draws from the shared global generator.
var seededRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.Directives.HasMarker("deterministic") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			case *ast.GoStmt:
				checkGo(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to time.%s in a deterministic package: results must not depend on the wall clock; "+
					"inject the clock or waive with //trnglint:allow determinism <reason>", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededRand[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to the process-global %s.%s in a deterministic package: "+
					"use a seeded rand.New(rand.NewSource(seed)) so every run reproduces",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); isMap {
		pass.Reportf(rs.Pos(),
			"range over a map in a deterministic package: iteration order is randomized; "+
				"iterate sorted keys or waive with //trnglint:allow determinism <reason>")
	}
}

// checkGo flags `shared = append(shared, ...)` inside a `go func(){...}`
// literal when shared is captured from the enclosing function: the
// goroutine completion order decides the element order. Index-addressed
// writes (results[i] = r) stay allowed — that is the deterministic
// fan-out idiom the core runner uses.
func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 || i >= len(as.Lhs) {
				continue
			}
			dst, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.ObjectOf(dst)
			if obj == nil {
				continue
			}
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				pass.Reportf(as.Pos(),
					"append to %q captured by a go-statement literal: element order depends on goroutine "+
						"scheduling; write to a per-index slot or collect through a channel", dst.Name)
			}
		}
		return true
	})
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// calleeFunc resolves the called function object, if it is a plain
// function or method (not a builtin or a function-typed variable).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
