// Package errdrop enforces the platform's partial-result error contract:
// source reads and monitor runs return data *and* a typed error, and the
// error is load-bearing — a trng.Source read can fail transiently
// (trng.ErrTransient, no bit consumed) and Monitor.Watch returns the
// already-completed reports alongside a *core.SourceError. Discarding
// such an error with `_` or an expression statement silently converts an
// operational fault into corrupt statistics, which is precisely the
// implementation defect an on-line tester must not have. The analyzer
// flags discards of errors from:
//
//   - ReadBit() (byte, error) methods — the bitstream.BitReader contract
//     every trng.Source implements
//   - bitstream.ReadAll
//   - Watch/Feed on a Monitor, Run on a Supervisor or SequenceRunner
//
// A documented intentional discard is waived in place with
// //trnglint:allow errdrop <reason>.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags discarded errors from source reads and monitor runs.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flag discarded errors from trng.Source reads and Monitor/Supervisor " +
		"runs, whose partial-result contract makes dismissal a correctness bug",
	Run: run,
}

// monitorMethods maps receiver type name to the error-bearing methods of
// the monitoring contract.
var monitorMethods = map[string]map[string]bool{
	"Monitor":        {"Watch": true, "Feed": true},
	"Supervisor":     {"Run": true},
	"SequenceRunner": {"Run": true},
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name := contractCall(pass, call); name != "" {
						pass.Reportf(call.Pos(),
							"result of %s dropped entirely: its error reports a failed or partial read — "+
								"handle it or waive with //trnglint:allow errdrop <reason>", name)
					}
				}
			case *ast.GoStmt:
				reportSpawn(pass, n.Call, "go")
			case *ast.DeferStmt:
				reportSpawn(pass, n.Call, "defer")
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func reportSpawn(pass *analysis.Pass, call *ast.CallExpr, kw string) {
	if name := contractCall(pass, call); name != "" {
		pass.Reportf(call.Pos(),
			"%s %s discards the call's error — handle it inside a wrapper or waive with "+
				"//trnglint:allow errdrop <reason>", kw, name)
	}
}

// checkAssign flags `x, _ := contractCall(...)` — a blank identifier in
// the error position of a tracked call.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(as.Lhs) < 2 {
		return
	}
	name := contractCall(pass, call)
	if name == "" {
		return
	}
	errIdx := errResultIndex(pass, call)
	if errIdx < 0 || errIdx >= len(as.Lhs) {
		return
	}
	if id, ok := as.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(),
			"error from %s discarded with _: the call returns partial results plus a typed error — "+
				"handle it or waive with //trnglint:allow errdrop <reason>", name)
	}
}

// contractCall classifies the callee; the returned display name is empty
// when the call is outside the enforced contract.
func contractCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		recvName := namedTypeName(recv.Type())
		switch {
		case fn.Name() == "ReadBit" && isReadBitSig(sig):
			return recvName + ".ReadBit"
		case monitorMethods[recvName][fn.Name()]:
			return recvName + "." + fn.Name()
		}
		return ""
	}
	if fn.Name() == "ReadAll" && fn.Pkg() != nil && pkgBase(fn.Pkg().Path()) == "bitstream" {
		return "bitstream.ReadAll"
	}
	return ""
}

// isReadBitSig matches the BitReader contract: func() (byte, error).
func isReadBitSig(sig *types.Signature) bool {
	if sig.Params().Len() != 0 || sig.Results().Len() != 2 {
		return false
	}
	first, ok := sig.Results().At(0).Type().(*types.Basic)
	if !ok || first.Kind() != types.Byte {
		return false
	}
	return isErrorType(sig.Results().At(1).Type())
}

// errResultIndex returns the position of the trailing error result.
func errResultIndex(pass *analysis.Pass, call *ast.CallExpr) int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		last := t.Len() - 1
		if last >= 0 && isErrorType(t.At(last).Type()) {
			return last
		}
	default:
		if isErrorType(tv.Type) {
			return 0
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}
