// Package bitstream is a golden-test stub of the real
// repro/internal/bitstream surface the errdrop analyzer tracks: the
// analyzer matches ReadAll by function name plus package base name, so
// this overlay package stands in for the module one.
package bitstream

// Sequence stands in for the real bit sequence.
type Sequence struct{ Bits []byte }

// BitReader is the read contract every source implements.
type BitReader interface {
	ReadBit() (byte, error)
}

// ReadAll drains n bits, returning the partial sequence plus the error.
func ReadAll(r BitReader, n int) (*Sequence, error) {
	s := &Sequence{}
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return s, err
		}
		s.Bits = append(s.Bits, b)
	}
	return s, nil
}
