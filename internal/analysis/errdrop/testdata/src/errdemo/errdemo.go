// Package errdemo exercises the errdrop analyzer. The tracked contracts
// are structural (ReadBit signature, Monitor/Supervisor method names), so
// local model types stand in for the real core package.
package errdemo

import "bitstream"

type source struct{}

// ReadBit matches the BitReader contract the analyzer tracks.
func (source) ReadBit() (byte, error) { return 0, nil }

type loud struct{}

// ReadBit with the wrong shape (a parameter) is outside the contract.
func (loud) ReadBit(noise int) (byte, error) { return 0, nil }

type Monitor struct{}

func (*Monitor) Watch(r bitstream.BitReader, n int) ([]int, error) { return nil, nil }
func (*Monitor) Feed(bit byte) (*int, error)                       { return nil, nil }
func (*Monitor) Reset()                                            {}

type Supervisor struct{}

func (*Supervisor) Run(sequences int) (*int, error) { return nil, nil }

func drops(m *Monitor, sup *Supervisor, s source) {
	b, _ := s.ReadBit() // want `error from source.ReadBit discarded with _`
	_ = b
	s.ReadBit()              // want `result of source.ReadBit dropped entirely`
	reps, _ := m.Watch(s, 1) // want `error from Monitor.Watch discarded with _`
	_ = reps
	m.Feed(0)          // want `result of Monitor.Feed dropped entirely`
	r, _ := sup.Run(1) // want `error from Supervisor.Run discarded with _`
	_ = r
	seq, _ := bitstream.ReadAll(s, 8) // want `error from bitstream.ReadAll discarded with _`
	_ = seq
}

func spawns(m *Monitor, sup *Supervisor) {
	go sup.Run(1)   // want `go Supervisor.Run discards`
	defer m.Feed(1) // want `defer Monitor.Feed discards`
}

func handled(m *Monitor, s source) error {
	b, err := s.ReadBit()
	if err != nil {
		return err
	}
	_ = b
	if _, err := m.Watch(s, 1); err != nil {
		return err
	}
	m.Reset() // no error to drop
	return nil
}

func outsideContract(l loud) {
	b, _ := l.ReadBit(3) // wrong ReadBit shape: not tracked
	_ = b
}

func waived(s source) byte {
	//trnglint:allow errdrop the demo source is infallible by construction
	b, _ := s.ReadBit()
	return b
}
