// Package analysistest runs an analyzer over golden packages stored under
// testdata/src/<importpath>/ and checks its diagnostics against // want
// comments in the sources, mirroring the x/tools harness of the same
// name. A want comment holds one quoted regular expression per expected
// diagnostic on that line:
//
//	bit, _ := src.ReadBit() // want `discarded error`
//	x := int(v) + 1         // want "widened" "second finding on the line"
//
// Lines without a want comment must produce no diagnostics. Waivers are
// applied before matching (via analysis.Run), so golden files also pin
// down the waiver behaviour.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// TestData returns the absolute path of the calling package's testdata
// directory (go test always runs with the package directory as cwd).
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each package from <dir>/src/<pkgpath> and checks analyzer a
// against the // want expectations in its files.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := load.NewTestdataLoader(dir + "/src")
	var targets []*load.Target
	for _, pkgpath := range pkgpaths {
		ts, err := l.Load(pkgpath)
		if err != nil {
			t.Errorf("loading %s: %v", pkgpath, err)
			continue
		}
		targets = append(targets, ts...)
	}
	// Build the //trnglint:hotpath index over every loaded package —
	// overlay dependencies included — so cross-package hot callees
	// resolve in the goldens exactly as they do under cmd/trnglint.
	idx := analysis.NewHotIndex()
	for _, c := range l.Cached() {
		idx.AddPackage(c.Files, c.Info)
	}
	for _, tgt := range targets {
		for _, terr := range tgt.TypeErrors {
			t.Errorf("%s: type error: %v", tgt.ImportPath, terr)
		}
		checkPackage(t, tgt, a, idx)
	}
}

type key struct {
	file string
	line int
}

func checkPackage(t *testing.T, tgt *load.Target, a *analysis.Analyzer, idx *analysis.HotIndex) {
	t.Helper()
	diags, err := analysis.Run(&analysis.Unit{
		Fset: tgt.Fset, Files: tgt.Files, Pkg: tgt.Pkg, Info: tgt.Info, Hot: idx,
	}, a)
	if err != nil {
		t.Errorf("%s: %v", tgt.ImportPath, err)
		return
	}

	wants := make(map[key][]*regexp.Regexp)
	for _, f := range tgt.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res, ok, err := parseWant(c.Text)
				if err != nil {
					t.Errorf("%s: %v", tgt.Fset.Position(c.Pos()), err)
					continue
				}
				if !ok {
					continue
				}
				p := tgt.Fset.Position(c.Pos())
				k := key{p.Filename, p.Line}
				wants[k] = append(wants[k], res...)
			}
		}
	}

	got := make(map[key][]string)
	for _, d := range diags {
		p := tgt.Fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		got[k] = append(got[k], d.Message)
	}

	for k, res := range wants {
		msgs := got[k]
		if len(msgs) != len(res) {
			t.Errorf("%s:%d: want %d diagnostic(s), got %d: %q",
				k.file, k.line, len(res), len(msgs), msgs)
			continue
		}
		// Greedy bipartite match: each expectation must claim a distinct
		// message.
		used := make([]bool, len(msgs))
		for _, re := range res {
			found := false
			for i, m := range msgs {
				if !used[i] && re.MatchString(m) {
					used[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s:%d: no diagnostic matching %q among %q",
					k.file, k.line, re, msgs)
			}
		}
	}
	for k, msgs := range got {
		if _, expected := wants[k]; !expected {
			t.Errorf("%s:%d: unexpected diagnostic(s): %q", k.file, k.line, msgs)
		}
	}
}

// parseWant extracts the regexps from a `// want "re" ...` comment; ok is
// false for ordinary comments.
func parseWant(text string) ([]*regexp.Regexp, bool, error) {
	body, found := strings.CutPrefix(text, "// want ")
	if !found {
		body, found = strings.CutPrefix(text, "//want ")
	}
	if !found {
		return nil, false, nil
	}
	var out []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			return nil, false, fmt.Errorf("malformed want comment %q", text)
		}
		lit, remainder, err := cutString(rest)
		if err != nil {
			return nil, false, fmt.Errorf("want comment %q: %w", text, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, false, fmt.Errorf("want comment %q: %w", text, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(remainder)
	}
	if len(out) == 0 {
		return nil, false, fmt.Errorf("want comment %q has no expectations", text)
	}
	return out, true, nil
}

// cutString splits a leading Go string literal off s.
func cutString(s string) (lit, rest string, err error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if quote == '"' {
				i++
			}
		case quote:
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return unq, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string literal")
}
