// Package hotedgedep provides the embedded engine whose hot method is
// reached through struct promotion from another package.
package hotedgedep

type Engine struct{ n uint64 }

//trnglint:hotpath
func (e *Engine) Absorb(w uint64) { e.n += w }

func (e *Engine) Teardown() { e.n = 0 }
