// Package hotedge exercises the two hard hotpath-resolution cases: a hot
// method called through embedded-struct promotion, and a hot generic
// function called through an instantiation.
package hotedge

import "hotedgedep"

type Driver struct {
	hotedgedep.Engine
}

//trnglint:hotpath
func Ingest(d *Driver, w uint64) {
	d.Absorb(w)
}

//trnglint:hotpath
func identity[T any](v T) T { return v }

//trnglint:hotpath
func Generic(w uint64) uint64 {
	return identity(w)
}

func cold(d *Driver) { d.Teardown() }
