// Package generics exercises the loader's type-checking of type
// parameters: go/types must parse, constrain and instantiate generic
// declarations from source (the loader deliberately omits the optional
// Instances map, so inference has to resolve through Types/Defs alone),
// and the instantiated results must surface as concrete types for the
// analyzers downstream.
package generics

// Number is a union constraint with approximation terms.
type Number interface {
	~int | ~int64 | ~float64
}

// Sum is a constrained generic function, instantiated by inference below.
func Sum[T Number](xs []T) T {
	var s T
	for _, x := range xs {
		s += x
	}
	return s
}

// Ring is a generic type with a pointer method — the method set of an
// instantiated generic is where early go/types versions had sharp edges.
type Ring[T any] struct {
	buf  []T
	next int
}

// NewRing is instantiated explicitly below.
func NewRing[T any](n int) *Ring[T] { return &Ring[T]{buf: make([]T, n)} }

// Put exercises the instantiated method set.
func (r *Ring[T]) Put(v T) {
	r.buf[r.next%len(r.buf)] = v
	r.next++
}

// Total pins inferred instantiation: Sum[int64].
var Total = Sum([]int64{1, 2, 3})

// Words pins explicit instantiation: NewRing[uint64].
var Words = NewRing[uint64](4)

func init() {
	Words.Put(uint64(Total))
}
