//go:build never_tag

package constrained

// Excluded must never be seen by the loader. If the never_tag constraint
// were ignored, this file would both redeclare Kept (a hard type error)
// and leak Excluded into the package scope — the edge test checks both.
const Kept = 99

const Excluded = UndefinedSymbol
