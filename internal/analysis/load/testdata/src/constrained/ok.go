// Package constrained has one buildable file and one excluded by a build
// constraint; the loader must honour the constraint and never parse the
// excluded file.
package constrained

// Kept is declared in the buildable file.
const Kept = 1
