// Package prefixed sits next to an underscore-prefixed and a dot-prefixed
// file, both of which go/build ignores entirely; only this file builds.
package prefixed

// Visible is declared in the only buildable file.
var Visible = 2
