// Underscore-prefixed files are invisible to go/build. If this one were
// included anyway, its clashing package clause would make ImportDir fail
// with a multiple-package error.
package wrongpackage

var Visible = "shadow"
