dot-prefixed files are invisible to go/build; this is not Go at all.
