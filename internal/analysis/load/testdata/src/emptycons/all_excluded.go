//go:build never_tag

// Package emptycons has no buildable files at all: its only file is
// excluded by a constraint, so importing it must fail cleanly.
package emptycons

const Nothing = 0
