// Package withskipped imports a package whose files are all excluded by
// build constraints; the loader must report that import cleanly instead of
// crashing or silently typing the import as valid.
package withskipped

import "emptycons"

var X = emptycons.Nothing
