package load

import (
	"strings"
	"testing"
)

// edgeLoader resolves the committed edge-case packages under
// testdata/src, the same overlay layout the golden-file tests use.
func edgeLoader() *Loader {
	return NewTestdataLoader("testdata/src")
}

// TestBuildConstrainedFileExcluded proves the loader honours build
// constraints: constrained/excluded.go carries //go:build never_tag and a
// body that does not even parse, so any attempt to read it would fail
// loudly.
func TestBuildConstrainedFileExcluded(t *testing.T) {
	targets, err := edgeLoader().Load("constrained")
	if err != nil {
		t.Fatal(err)
	}
	tgt := targets[0]
	if len(tgt.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (constraint not honoured)", len(tgt.Files))
	}
	if len(tgt.TypeErrors) != 0 {
		t.Errorf("type errors: %v", tgt.TypeErrors)
	}
	if tgt.Pkg.Scope().Lookup("Kept") == nil {
		t.Error("Kept missing from the buildable file")
	}
	if tgt.Pkg.Scope().Lookup("Excluded") != nil {
		t.Error("Excluded leaked in from the constrained-out file")
	}
}

// TestPrefixedFilesIgnored proves dot- and underscore-prefixed files are
// invisible: both neighbours of prefixed/good.go hold text that is not Go.
func TestPrefixedFilesIgnored(t *testing.T) {
	targets, err := edgeLoader().Load("prefixed")
	if err != nil {
		t.Fatal(err)
	}
	tgt := targets[0]
	if len(tgt.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (prefixed files not skipped)", len(tgt.Files))
	}
	if len(tgt.TypeErrors) != 0 {
		t.Errorf("type errors: %v", tgt.TypeErrors)
	}
	if tgt.Pkg.Scope().Lookup("Visible") == nil {
		t.Error("Visible missing from the buildable file")
	}
}

// TestLoadFullyConstrainedPackage: a package whose every file is excluded
// by constraints must fail with a clear error, not a panic or an empty
// package.
func TestLoadFullyConstrainedPackage(t *testing.T) {
	_, err := edgeLoader().Load("emptycons")
	if err == nil {
		t.Fatal("loading a fully constrained-out package must fail")
	}
	if !strings.Contains(err.Error(), "no buildable Go files") {
		t.Errorf("error %q does not name the cause", err)
	}
}

// TestGenericsTypeCheck proves the loader type-checks type parameters
// from source: constrained generic functions, generic types with pointer
// methods, and both inferred and explicit instantiation must resolve to
// concrete types without the optional go/types Instances map.
func TestGenericsTypeCheck(t *testing.T) {
	targets, err := edgeLoader().Load("generics")
	if err != nil {
		t.Fatal(err)
	}
	tgt := targets[0]
	if len(tgt.TypeErrors) != 0 {
		t.Fatalf("generics package has type errors: %v", tgt.TypeErrors)
	}
	total := tgt.Pkg.Scope().Lookup("Total")
	if total == nil {
		t.Fatal("Total missing")
	}
	if got := total.Type().String(); got != "int64" {
		t.Errorf("inferred Sum instantiation: Total is %s, want int64", got)
	}
	words := tgt.Pkg.Scope().Lookup("Words")
	if words == nil {
		t.Fatal("Words missing")
	}
	if got := words.Type().String(); !strings.Contains(got, "Ring[uint64]") {
		t.Errorf("explicit NewRing instantiation: Words is %s, want *Ring[uint64]", got)
	}
}

// TestImportOfSkippedPackage: a buildable package importing a fully
// constrained-out one still yields best-effort syntax and types, with the
// broken import surfaced as a soft type error naming the import.
func TestImportOfSkippedPackage(t *testing.T) {
	targets, err := edgeLoader().Load("withskipped")
	if err != nil {
		t.Fatalf("importing a skipped package must degrade softly, got hard error: %v", err)
	}
	tgt := targets[0]
	if tgt.Pkg == nil {
		t.Fatal("no best-effort package")
	}
	if len(tgt.TypeErrors) == 0 {
		t.Fatal("the broken import must surface as a type error")
	}
	var named bool
	for _, te := range tgt.TypeErrors {
		if strings.Contains(te.Error(), "emptycons") {
			named = true
		}
	}
	if !named {
		t.Errorf("type errors do not name the skipped import: %v", tgt.TypeErrors)
	}
}
