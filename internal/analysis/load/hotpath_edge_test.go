package load_test

import (
	"go/ast"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// The hotpath-resolution edge cases the fleet sources lean on: a
// //trnglint:hotpath method reached through embedded-struct promotion
// (fleet's getter calls through embedded engine state) and a hot generic
// function reached through an instantiation (Origin() must map the
// instantiated *types.Func back to the annotated declaration). Both are
// loaded cross-package so the module-wide index built from Loader.Cached
// is what resolves them, exactly as the trnglint and escapecheck drivers
// do it.

func loadHotEdge(t *testing.T) (*load.Loader, []*load.Target, *analysis.HotIndex) {
	t.Helper()
	l := load.NewTestdataLoader("testdata/src")
	targets, err := l.Load("hotedge", "hotedgedep")
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range targets {
		if len(tgt.TypeErrors) > 0 {
			t.Fatalf("%s does not type-check: %v", tgt.ImportPath, tgt.TypeErrors)
		}
	}
	idx := analysis.NewHotIndex()
	for _, c := range l.Cached() {
		idx.AddPackage(c.Files, c.Info)
	}
	return l, targets, idx
}

// closureLabels runs HotClosure over one target and returns the labels.
func closureLabels(tgt *load.Target, idx *analysis.HotIndex) map[string]bool {
	u := &analysis.Unit{Fset: tgt.Fset, Files: tgt.Files, Pkg: tgt.Pkg, Info: tgt.Info, Hot: idx}
	dirs := analysis.ParseDirectives(tgt.Fset, tgt.Files)
	labels := make(map[string]bool)
	for fn := range analysis.HotClosure(u, dirs, idx) {
		labels[analysis.FuncLabel(fn)] = true
	}
	return labels
}

func TestHotIndexEmbeddedPromotion(t *testing.T) {
	_, targets, idx := loadHotEdge(t)
	var hotedge *load.Target
	for _, tgt := range targets {
		if tgt.ImportPath == "hotedge" {
			hotedge = tgt
		}
	}
	if hotedge == nil {
		t.Fatal("hotedge target not loaded")
	}

	// The promoted call d.Absorb(w) must resolve through the selection to
	// the embedded type's method, and that method must be hot in the
	// module-wide index even though it is declared in another package.
	var resolved bool
	for _, f := range hotedge.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Absorb" {
				return true
			}
			fn := analysis.CalleeFunc(hotedge.Info, call)
			if fn == nil {
				t.Fatal("promoted call did not resolve to a *types.Func")
			}
			if !idx.IsHot(fn) {
				t.Errorf("promoted callee %s not hot in the module index", analysis.FuncLabel(fn))
			}
			if got := analysis.FuncLabel(fn.Origin()); got != "Engine.Absorb" {
				t.Errorf("promoted callee resolved to %q, want Engine.Absorb", got)
			}
			resolved = true
			return true
		})
	}
	if !resolved {
		t.Fatal("no promoted Absorb call found in the fixture")
	}

	labels := closureLabels(hotedge, idx)
	if !labels["Ingest"] {
		t.Errorf("Ingest missing from the hot closure: %v", labels)
	}
	if labels["cold"] {
		t.Errorf("cold leaked into the hot closure: %v", labels)
	}
}

func TestHotIndexGenericInstantiation(t *testing.T) {
	_, targets, idx := loadHotEdge(t)
	var hotedge, dep *load.Target
	for _, tgt := range targets {
		switch tgt.ImportPath {
		case "hotedge":
			hotedge = tgt
		case "hotedgedep":
			dep = tgt
		}
	}

	// The instantiated identity[uint64] call inside Generic: CalleeFunc
	// returns the instantiation, Origin maps it to the annotated generic.
	var checked bool
	for _, f := range hotedge.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "identity" {
				return true
			}
			fn := analysis.CalleeFunc(hotedge.Info, call)
			if fn == nil {
				t.Fatal("generic call did not resolve")
			}
			if !idx.IsHot(fn) {
				t.Error("instantiated generic callee not hot via Origin")
			}
			checked = true
			return true
		})
	}
	if !checked {
		t.Fatal("no identity instantiation found in the fixture")
	}

	labels := closureLabels(hotedge, idx)
	for _, want := range []string{"Generic", "identity"} {
		if !labels[want] {
			t.Errorf("%s missing from the hot closure: %v", want, labels)
		}
	}

	// The dep package's own closure: the annotated method is hot, its
	// cold sibling is not.
	depLabels := closureLabels(dep, idx)
	if !depLabels["Engine.Absorb"] || depLabels["Engine.Teardown"] {
		t.Errorf("dep closure wrong: %v", depLabels)
	}
}
