package load

import (
	"strings"
	"testing"
)

// TestModuleLoad type-checks a real module package, its module imports
// resolving through the loader cache and stdlib imports through the
// source importer.
func TestModuleLoad(t *testing.T) {
	l, err := NewModuleLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	targets, err := l.Load("repro/internal/bitstream")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 {
		t.Fatalf("got %d targets, want 1", len(targets))
	}
	tgt := targets[0]
	if tgt.Pkg.Name() != "bitstream" {
		t.Errorf("package name = %q", tgt.Pkg.Name())
	}
	if len(tgt.TypeErrors) != 0 {
		t.Errorf("type errors: %v", tgt.TypeErrors)
	}
	if len(tgt.Files) == 0 {
		t.Error("no files loaded")
	}

	// Loading the same package again must hit the cache (same pointer).
	again, err := l.Load("repro/internal/bitstream")
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != tgt {
		t.Error("second load did not come from the cache")
	}
}

// TestWildcardSkipsTestdata ensures ./... never descends into golden
// testdata packages, which are deliberately full of violations.
func TestWildcardSkipsTestdata(t *testing.T) {
	l, err := NewModuleLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("wildcard expanded to nothing")
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("wildcard leaked testdata package %s", p)
		}
	}
}

// TestDirPatterns pins the non-wildcard pattern forms.
func TestDirPatterns(t *testing.T) {
	l, err := NewModuleLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.expand([]string{"internal/trng"})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != "repro/internal/trng" {
		t.Errorf("dir pattern expanded to %v", paths)
	}
	if _, err := l.expand([]string{"no/such/dir"}); err == nil {
		t.Error("bogus pattern must fail")
	}
}
