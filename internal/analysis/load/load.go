// Package load turns Go packages into type-checked analysis units without
// golang.org/x/tools: packages of the enclosing module (and, for the
// golden-file tests, packages under a testdata/src overlay) are parsed and
// type-checked from source with go/parser and go/types, while standard
// library imports are resolved by the stdlib source importer
// (go/importer, compiler "source"). Everything works offline — no module
// downloads, no export data, no go subprocesses.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Target is one loaded, type-checked package.
type Target struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	// TypeErrors holds soft type-checking problems. A package with type
	// errors still yields best-effort syntax and type information, but
	// drivers should surface the errors rather than trust findings.
	TypeErrors []error
}

// Loader loads and caches packages. A Loader is not safe for concurrent
// use.
type Loader struct {
	fset *token.FileSet
	std  types.ImporterFrom

	// Module resolution: importPath modPath/x/y -> modRoot/x/y.
	modPath string
	modRoot string

	// Overlay resolution (analysistest): importPath p -> overlayRoot/p.
	overlayRoot string

	cache   map[string]*Target
	loading map[string]bool
}

func newLoader() *Loader {
	// The repository never builds with cgo, and the source importer
	// cannot type-check cgo-generated code anyway; forcing it off keeps
	// stdlib packages on their pure-Go fallbacks.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:   make(map[string]*Target),
		loading: make(map[string]bool),
	}
}

// NewModuleLoader returns a loader rooted at the module containing dir
// (found by walking up to go.mod).
func NewModuleLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader()
	l.modRoot = root
	l.modPath = modPath
	return l, nil
}

// NewTestdataLoader returns a loader that resolves import paths under
// srcRoot (conventionally <analyzer>/testdata/src) before consulting the
// standard library, mirroring the x/tools analysistest layout.
func NewTestdataLoader(srcRoot string) *Loader {
	l := newLoader()
	l.overlayRoot = srcRoot
	return l
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModRoot returns the module root directory for module loaders ("" for
// testdata loaders). Drivers that shell out to the go tool (escapecheck)
// run it here so the compiler's relative diagnostic paths correlate with
// the loader's absolute ones.
func (l *Loader) ModRoot() string { return l.modRoot }

// Cached returns every module/overlay package this loader has loaded so
// far — the named targets and the dependencies pulled in through the
// importer — sorted by import path. Drivers use it to build module-wide
// annotation indexes (the //trnglint:hotpath index) that must also cover
// packages reached only as dependencies of the named patterns.
func (l *Loader) Cached() []*Target {
	out := make([]*Target, 0, len(l.cache))
	for _, t := range l.cache {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("load: no go.mod found above %s", abs)
		}
	}
}

// Load resolves patterns to import paths and loads each one. Module
// loaders accept "./...", "dir/...", directory paths and module import
// paths; testdata loaders accept overlay import paths verbatim.
func (l *Loader) Load(patterns ...string) ([]*Target, error) {
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	targets := make([]*Target, 0, len(paths))
	for _, p := range paths {
		t, err := l.load(p)
		if err != nil {
			return nil, err
		}
		targets = append(targets, t)
	}
	return targets, nil
}

func (l *Loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if l.modRoot == "" {
				return nil, fmt.Errorf("load: pattern %q needs a module loader", pat)
			}
			paths, err := l.walkModule(l.modRoot)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir, err := l.patternDir(base)
			if err != nil {
				return nil, err
			}
			paths, err := l.walkModule(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		default:
			if l.overlayRoot != "" {
				add(pat)
				continue
			}
			dir, err := l.patternDir(pat)
			if err != nil {
				return nil, err
			}
			ip, err := l.dirImportPath(dir)
			if err != nil {
				return nil, err
			}
			add(ip)
		}
	}
	sort.Strings(out)
	return out, nil
}

// patternDir maps a non-wildcard pattern (directory or import path) to a
// directory on disk.
func (l *Loader) patternDir(pat string) (string, error) {
	if l.modPath != "" && (pat == l.modPath || strings.HasPrefix(pat, l.modPath+"/")) {
		return filepath.Join(l.modRoot, strings.TrimPrefix(pat, l.modPath)), nil
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.modRoot, dir)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return "", fmt.Errorf("load: cannot resolve pattern %q", pat)
	}
	return dir, nil
}

func (l *Loader) dirImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("load: %s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// walkModule finds every directory under root holding a buildable
// non-testdata package.
func (l *Loader) walkModule(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if _, err := build.Default.ImportDir(path, 0); err != nil {
			return nil // no buildable Go files here; keep walking
		}
		ip, err := l.dirImportPath(path)
		if err != nil {
			return err
		}
		out = append(out, ip)
		return nil
	})
	return out, err
}

// load type-checks one package (cached).
func (l *Loader) load(importPath string) (*Target, error) {
	if t, ok := l.cache[importPath]; ok {
		return t, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("load: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir, ok := l.resolveDir(importPath)
	if !ok {
		return nil, fmt.Errorf("load: cannot resolve %s", importPath)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no buildable Go files in %s", dir)
	}

	t := &Target{ImportPath: importPath, Dir: dir, Fset: l.fset, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { t.TypeErrors = append(t.TypeErrors, err) },
	}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if pkg == nil {
		return nil, fmt.Errorf("load: %s: %v", importPath, err)
	}
	t.Pkg = pkg
	t.Info = info
	l.cache[importPath] = t
	return t, nil
}

// resolveDir maps an import path to a directory: overlay first, then the
// module. Standard-library paths are not resolved here — they go through
// the stdlib source importer.
func (l *Loader) resolveDir(importPath string) (string, bool) {
	if l.overlayRoot != "" {
		dir := filepath.Join(l.overlayRoot, filepath.FromSlash(importPath))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	if l.modPath != "" && (importPath == l.modPath || strings.HasPrefix(importPath, l.modPath+"/")) {
		return filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(importPath, l.modPath))), true
	}
	return "", false
}

// parseDir parses the buildable non-test Go files of dir, honouring build
// constraints via go/build.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, nil
		}
		return nil, fmt.Errorf("load: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts the Loader to types.ImporterFrom: module and
// overlay packages resolve through the loader's own cache (so every
// analyzed package shares one type identity per dependency), everything
// else falls through to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, (*Loader)(li).modRoot, 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.resolveDir(path); ok {
		t, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return t.Pkg, nil
	}
	if srcDir == "" {
		srcDir = l.modRoot
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
