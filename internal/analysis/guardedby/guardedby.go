// Package guardedby enforces //trnglint:guardedby field contracts: a
// field annotated
//
//	//trnglint:guardedby mu
//	closed bool
//
// may only be read or written while the named mutex is provably held on
// EVERY path reaching the access. The proof is flow-sensitive (the
// lockflow engine): deferred unlocks keep the lock held through early
// returns, branch joins intersect, a goroutine or stored closure starts
// with no locks, and a loop body is never credited with a lock some
// iteration may have released. //trnglint:holds <mu> on a function states
// a caller-side precondition — assumed inside the body, checked at every
// call site — which is how helpers like Stream.flushStaged (documented
// "callers hold pushMu") participate in the proof.
//
// This is exactly the contract whose violation shipped as the PR 6 detach
// TOCTOU: a producer checked a detach flag, then enqueued, while Detach
// finalized the stream in between. With drained/idx annotated, removing
// the pushMu ordering makes the unlocked access a lint finding instead of
// a race-detector lottery ticket.
//
// Known precision limits, by design: lock identity is the mutex FIELD
// (p.mu and s.pool.mu are one lock; distinct Pool instances are
// conflated), RLock counts as a full hold, TryLock never counts, and a
// function containing goto is skipped entirely rather than guessed at.
// Constructor writes through composite literals (&Pool{closed: true}) are
// naturally exempt — literal keys are not field selector expressions.
// Intentional unguarded accesses are waived in place with
// //trnglint:allow guardedby <reason>.
package guardedby

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer proves annotated fields are accessed only under their mutex.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "prove //trnglint:guardedby fields are only accessed with the named " +
		"mutex held and //trnglint:holds call preconditions are met",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// guardedby owns annotation-error reporting: a typo'd contract is a
	// finding here (and only here, so the suite doesn't triple-report).
	ann := analysis.CollectConcAnnotations(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo, pass.Reportf)
	if len(ann.Guards) == 0 && len(ann.Holds) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			checkBody(pass, ann, fd.Body, ann.AssumedLocks(fn))
		}
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, ann *analysis.ConcAnnotations, body *ast.BlockStmt, assumed []types.Object) {
	analysis.LockWalk(pass.TypesInfo, body, assumed, func(n ast.Node, held *analysis.LockSet, provable bool) bool {
		if !provable {
			// goto froze the walk: no lock set is trustworthy, so stay
			// silent rather than report on guesses.
			return true
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			field := analysis.FieldObjectOf(pass.TypesInfo, n)
			spec := ann.GuardOf(field)
			if spec == nil || held.Holds(spec.Mutex) {
				return true
			}
			pass.Reportf(n.Sel.Pos(),
				"%s is guarded by %s (//trnglint:guardedby) but accessed without it provably held — "+
					"lock it, or waive with //trnglint:allow guardedby <reason>",
				field.Name(), spec.Path)
		case *ast.CallExpr:
			callee := analysis.CalleeFunc(pass.TypesInfo, n)
			for _, spec := range ann.HoldsOf(callee) {
				if held.Holds(spec.Mutex) {
					continue
				}
				pass.Reportf(n.Pos(),
					"call to %s requires %s held (//trnglint:holds) but it is not provably held here — "+
						"lock it, or waive with //trnglint:allow guardedby <reason>",
					callee.Name(), spec.Path)
			}
		}
		return true
	})
}
