// Package guarddemo is the golden suite for the guardedby analyzer: a
// miniature pool/stream hierarchy exercising every rule — straight-line
// locking, deferred unlocks over early returns, branch joins, goroutine
// and stored-closure isolation, loop conservatism, //trnglint:holds
// preconditions, dotted mutex paths, annotation errors, and waivers.
package guarddemo

import "sync"

type Pool struct {
	mu sync.Mutex
	//trnglint:guardedby mu
	closed bool
	//trnglint:guardedby mu
	streams []*Stream
}

type Stream struct {
	pool   *Pool
	pushMu sync.Mutex
	//trnglint:guardedby pushMu
	drained int32
	// idx is maintained by the pool: dotted path through the pool field.
	idx int //trnglint:guardedby pool.mu
}

func newPool() *Pool {
	// Composite-literal construction is naturally exempt: keys are not
	// selector expressions.
	return &Pool{closed: false, streams: nil}
}

func (p *Pool) goodStraightLine() bool {
	p.mu.Lock()
	c := p.closed
	p.mu.Unlock()
	return c
}

func (p *Pool) goodDeferEarlyReturn(fail bool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fail {
		p.closed = true
		return 0
	}
	return len(p.streams)
}

func (p *Pool) badUnlocked() bool {
	return p.closed // want `closed is guarded by mu .* accessed without it provably held`
}

func (p *Pool) badAfterUnlock() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.streams = nil // want `streams is guarded by mu`
}

func (p *Pool) badOneBranchOnly(cond bool) {
	if cond {
		p.mu.Lock()
	}
	p.closed = true // want `closed is guarded by mu`
	if cond {
		p.mu.Unlock()
	}
}

func (p *Pool) goodBothBranches(cond bool) {
	if cond {
		p.mu.Lock()
	} else {
		p.mu.Lock()
	}
	p.closed = true
	p.mu.Unlock()
}

func (p *Pool) goodUnlockAndBail(cond bool) {
	p.mu.Lock()
	if cond {
		p.mu.Unlock()
		return
	}
	p.closed = true // the returning branch dropped out of the join
	p.mu.Unlock()
}

func (p *Pool) badGoroutineCapture() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.closed = true // want `closed is guarded by mu`
	}()
}

func (p *Pool) goodGoroutineLocksItself() {
	go func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
	}()
}

func (p *Pool) badStoredClosure() func() {
	p.mu.Lock()
	defer p.mu.Unlock()
	return func() {
		p.closed = false // want `closed is guarded by mu`
	}
}

func (p *Pool) badLoopRelock(n int) {
	p.mu.Lock()
	for i := 0; i < n; i++ {
		p.closed = true // want `closed is guarded by mu`
		p.mu.Unlock()
		p.mu.Lock()
	}
	p.mu.Unlock()
	// The walker can no longer prove mu held after a loop that released
	// it, so the tail access is a finding too:
	_ = p.closed // want `closed is guarded by mu`
}

// flushStaged documents its precondition: callers hold pushMu.
//
//trnglint:holds pushMu
func (s *Stream) flushStaged() {
	s.drained++ // assumed held inside the body
}

func (s *Stream) goodCaller() {
	s.pushMu.Lock()
	s.flushStaged()
	s.pushMu.Unlock()
}

func (s *Stream) badCaller() {
	s.flushStaged() // want `call to flushStaged requires pushMu held`
}

func (s *Stream) goodDottedPath() {
	s.pool.mu.Lock()
	s.idx = 3 // pool.mu and s.pool.mu are the same lock identity
	s.pool.mu.Unlock()
}

func (s *Stream) badDottedPath() {
	s.pushMu.Lock()
	s.idx = 4 // want `idx is guarded by pool.mu`
	s.pushMu.Unlock()
}

func (s *Stream) waivedAccess() int32 {
	//trnglint:allow guardedby read-only snapshot for metrics, staleness is fine
	return s.drained
}

type badAnnotations struct {
	//trnglint:guardedby nosuchmutex
	a int // want `guardedby nosuchmutex: cannot resolve`
	//trnglint:guardedby b
	b int // want `guardedby b: cannot resolve`
}
