// Package hotcall enforces the call discipline of //trnglint:hotpath
// code: a hot body may only call functions that are themselves hot
// (annotated in their own package, or absorbed into this package's
// closure), allowlisted allocation-free stdlib primitives (math,
// math/bits, sync/atomic, the sync mutex operations, errors.Is), or calls
// waived in place with //trnglint:alloc <reason>. This is the check that
// catches a cold helper silently entering the ingest path: noalloc proves
// the hot bodies themselves clean, hotcall proves the hot set is closed —
// nothing outside it is reachable from inside without a documented waiver.
//
// Dynamically-dispatched calls — interface methods and function-typed
// values — cannot be resolved statically and are findings too: the hot
// contract cannot follow them, so the call site must either be waived or
// restructured onto a concrete callee.
package hotcall

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer enforces that hot code only calls hot, waived, or allowlisted
// functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotcall",
	Doc:  "hot-path code may only call hot-annotated, waived, or allocation-free stdlib functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	hot := pass.HotFuncs()
	for fn, decl := range hot {
		checkBody(pass, analysis.FuncLabel(fn), decl, hot)
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, label string, decl *ast.FuncDecl, hot map[*types.Func]*ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // the literal itself is noalloc's finding
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion, not a call; noalloc owns the allocating ones
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		if callee == nil {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, ok := pass.ObjectOf(id).(*types.Builtin); ok {
					return true // builtins are intrinsic; noalloc/nodefer own the relevant ones
				}
			}
			pass.Reportf(call.Pos(), "hot path %s: call target is not statically resolvable (function value)", label)
			return true
		}
		callee = callee.Origin()
		if _, inClosure := hot[callee]; inClosure || pass.Hot.IsHot(callee) {
			return true
		}
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type().Underlying()) {
				pass.Reportf(call.Pos(), "hot path %s: dynamic interface call %s", label, callee.Name())
				return true
			}
		}
		if allowedStdlib(callee) {
			return true
		}
		pass.Reportf(call.Pos(), "hot path %s: calls non-hot %s (annotate it //trnglint:hotpath or waive the call //trnglint:alloc <reason>)",
			label, calleeLabel(callee))
		return true
	})
}

// allowedStdlib reports whether fn is a standard-library function the hot
// contract trusts to be allocation-free and latency-bounded: pure
// arithmetic (math, math/bits), the atomics, the sync mutex operations
// (bounded by the guardedby/lockorder contracts elsewhere), and errors.Is
// (pointer walk, no wrapping).
func allowedStdlib(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "math", "math/bits", "sync/atomic":
		return true
	case "errors":
		return fn.Name() == "Is"
	case "sync":
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			return false
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		switch named.Obj().Name() {
		case "Mutex", "RWMutex":
			switch fn.Name() {
			case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
				return true
			}
		}
	}
	return false
}

func calleeLabel(fn *types.Func) string {
	label := analysis.FuncLabel(fn)
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + label
	}
	return label
}
