// Package hotdep is the dependency side of the hotcall golden suite: one
// annotated hot kernel and one cold helper, imported by hotdemo.
package hotdep

//trnglint:hotpath
func Kernel(w uint64) uint64 { return w ^ (w >> 1) }

// Cold is deliberately unannotated.
func Cold() {}
