// Package hotdemo is the golden suite for the hotcall analyzer: which
// callees hot code may reach (same-package closure, cross-package
// annotated, allowlisted stdlib), which it may not (cold cross-package
// functions, dynamic dispatch, function values), and the waiver behaviour.
package hotdemo

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"hotdep"
)

var errSentinel = errors.New("sentinel")

type counter struct {
	n  atomic.Uint64
	mu sync.Mutex
}

type writer interface{ WriteWord(uint64) }

//trnglint:hotpath
func hot(c *counter, w writer, f func(), err error) {
	helper()                // same-package: absorbed into the closure, clean
	_ = hotdep.Kernel(1)    // cross-package hot-annotated: clean
	hotdep.Cold()           // want `hot path hot: calls non-hot hotdep.Cold`
	_ = bits.OnesCount64(7) // math/bits allowlisted: clean
	c.n.Add(1)              // sync/atomic allowlisted: clean
	c.mu.Lock()             // sync mutex ops allowlisted: clean
	c.mu.Unlock()
	_ = errors.Is(err, errSentinel) // errors.Is allowlisted: clean
	fmt.Println("x")                // want `hot path hot: calls non-hot fmt.Println`
	w.WriteWord(1)                  // want `hot path hot: dynamic interface call WriteWord`
	f()                             // want `hot path hot: call target is not statically resolvable`
	coldTeardown()                  //trnglint:alloc deliberate hand-back to the cold path
	_ = uint64(len("x"))            // conversion and builtin: not calls, clean
}

func helper() { _ = bits.TrailingZeros64(8) }

func coldTeardown() { fmt.Println("bye") }
