package hotcall_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotcall"
)

func TestHotcall(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotcall.Analyzer, "hotdemo")
}
