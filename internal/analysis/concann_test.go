package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func parseConc(t *testing.T, src string) (*ConcAnnotations, *types.Package, []string) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "conc.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v\n%s", err, src)
	}
	var reports []string
	ann := CollectConcAnnotations(fset, []*ast.File{file}, pkg, info,
		func(pos token.Pos, format string, args ...any) {
			reports = append(reports, fmt.Sprintf(format, args...))
		})
	return ann, pkg, reports
}

const concSrc = `package p

import "sync"

type Pool struct {
	mu sync.Mutex
	// closed latches shutdown.
	//trnglint:guardedby mu
	closed bool
	//trnglint:guardedby mu
	list, count int
}

type Stream struct {
	pool   *Pool
	pushMu sync.Mutex
	idx    int //trnglint:guardedby pool.mu
	//trnglint:guardedby pushMu
	drained int32
}

var gmu sync.Mutex

//trnglint:guardedby gmu
type ignored struct{} // guardedby on a type (not a field) is inert

type G struct {
	//trnglint:guardedby gmu
	hits int
}

//trnglint:holds pushMu
func (s *Stream) flushStaged() {}

//trnglint:holds pool.mu
func (s *Stream) relink() {}

//trnglint:holds gmu
func bump() {}

func plain() {}
`

func TestCollectGuards(t *testing.T) {
	ann, pkg, reports := parseConc(t, concSrc)
	if len(reports) != 0 {
		t.Fatalf("unexpected annotation errors: %v", reports)
	}

	field := func(typeName, fieldName string) types.Object {
		st := pkg.Scope().Lookup(typeName).(*types.TypeName).Type().Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == fieldName {
				return st.Field(i)
			}
		}
		t.Fatalf("no field %s.%s", typeName, fieldName)
		return nil
	}

	cases := []struct {
		typ, fld, wantMu string
	}{
		{"Pool", "closed", "mu"},
		{"Pool", "list", "mu"},
		{"Pool", "count", "mu"}, // multi-name field: both names guarded
		{"Stream", "idx", "mu"}, // dotted path pool.mu → Pool.mu field
		{"Stream", "drained", "pushMu"},
		{"G", "hits", "gmu"}, // package-level mutex
	}
	for _, c := range cases {
		spec := ann.GuardOf(field(c.typ, c.fld))
		if spec == nil {
			t.Errorf("%s.%s: no guard spec", c.typ, c.fld)
			continue
		}
		if spec.Mutex.Name() != c.wantMu {
			t.Errorf("%s.%s guarded by %q, want %q", c.typ, c.fld, spec.Mutex.Name(), c.wantMu)
		}
	}
	if spec := ann.GuardOf(field("Stream", "pool")); spec != nil {
		t.Errorf("Stream.pool unexpectedly guarded")
	}
	// Stream.idx must resolve to the same object identity a lock walk of
	// p.mu.Lock() would record: the Pool.mu field var.
	if got, want := ann.GuardOf(field("Stream", "idx")).Mutex, field("Pool", "mu"); got != want {
		t.Errorf("Stream.idx mutex identity = %v, want Pool.mu field object", got)
	}
}

func TestCollectHolds(t *testing.T) {
	ann, pkg, reports := parseConc(t, concSrc)
	if len(reports) != 0 {
		t.Fatalf("unexpected annotation errors: %v", reports)
	}
	fnByName := make(map[string]*types.Func)
	for fn := range ann.Holds {
		fnByName[fn.Name()] = fn
	}
	for name, wantMu := range map[string]string{
		"flushStaged": "pushMu",
		"relink":      "mu",
		"bump":        "gmu",
	} {
		fn := fnByName[name]
		if fn == nil {
			t.Errorf("%s: no holds spec", name)
			continue
		}
		seeds := ann.AssumedLocks(fn)
		if len(seeds) != 1 || seeds[0].Name() != wantMu {
			t.Errorf("%s assumed locks = %v, want [%s]", name, seeds, wantMu)
		}
	}
	plain, _ := pkg.Scope().Lookup("plain").(*types.Func)
	if specs := ann.HoldsOf(plain); specs != nil {
		t.Errorf("plain unexpectedly has holds specs: %v", specs)
	}
}

func TestCollectConcAnnotationErrors(t *testing.T) {
	src := `package p

import "sync"

type T struct {
	mu sync.Mutex
	//trnglint:guardedby
	a int
	//trnglint:guardedby nosuch
	b int
	//trnglint:guardedby c
	c int
}

//trnglint:holds nosuch
func (t *T) f() {}

//trnglint:holds
func (t *T) g() {}
`
	_, _, reports := parseConc(t, src)
	wants := []string{
		"guardedby needs a mutex path",
		"guardedby nosuch: cannot resolve",
		"guardedby c: cannot resolve", // c is an int, not a mutex
		"holds nosuch: cannot resolve",
		"holds needs a mutex path",
	}
	if len(reports) != len(wants) {
		t.Fatalf("got %d reports %v, want %d", len(reports), reports, len(wants))
	}
	for i, want := range wants {
		if !strings.Contains(reports[i], want) {
			t.Errorf("report %d = %q, want substring %q", i, reports[i], want)
		}
	}
}
