package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// lockProbe type-checks a method body on a struct with several mutexes
// and returns, for each sink() call in source order, the comma-joined
// names of the mutexes provably held there ("!unprovable" when the walk
// was frozen by goto). assumed seeds the walk with the named receiver
// fields, modelling a //trnglint:holds precondition.
func lockProbe(t *testing.T, body string, assumed ...string) []string {
	t.Helper()
	src := fmt.Sprintf(`package p

import "sync"

type Inner struct{ imu sync.Mutex }

type T struct {
	sync.Mutex
	mu sync.Mutex
	rw sync.RWMutex
	in *Inner
	n  int
}

var gmu sync.Mutex

func sink() {}

func (t *T) f(cond, cond2 bool, k int, ch chan int, items []int) {
%s
}`, body)
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "lockflow.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v\n%s", err, src)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	tObj := pkg.Scope().Lookup("T").(*types.TypeName)
	st := tObj.Type().Underlying().(*types.Struct)
	var seeds []types.Object
	for _, name := range assumed {
		found := false
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == name {
				seeds = append(seeds, st.Field(i))
				found = true
			}
		}
		if !found {
			t.Fatalf("assumed mutex %q is not a field of T", name)
		}
	}
	var out []string
	LockWalk(info, fn.Body, seeds, func(n ast.Node, held *LockSet, provable bool) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "sink" {
			return true
		}
		if !provable {
			out = append(out, "!unprovable")
			return true
		}
		var names []string
		for _, obj := range held.Held() {
			names = append(names, obj.Name())
		}
		out = append(out, strings.Join(names, ","))
		return true
	})
	return out
}

func checkProbes(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d sinks %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sink %d: held = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLockWalkStraightLine(t *testing.T) {
	got := lockProbe(t, `
	sink()
	t.mu.Lock()
	sink()
	t.rw.Lock()
	sink()
	t.rw.Unlock()
	t.mu.Unlock()
	sink()
	gmu.Lock()
	sink()
	gmu.Unlock()
`)
	checkProbes(t, got, []string{"", "mu", "mu,rw", "", "gmu"})
}

func TestLockWalkDeferKeepsHeld(t *testing.T) {
	got := lockProbe(t, `
	t.mu.Lock()
	defer t.mu.Unlock()
	sink()
	if cond {
		sink()
		return
	}
	sink()
`)
	checkProbes(t, got, []string{"mu", "mu", "mu"})
}

func TestLockWalkBranchJoin(t *testing.T) {
	got := lockProbe(t, `
	if cond {
		t.mu.Lock()
	}
	sink() // held on one path only: not provable

	if cond {
		t.rw.Lock()
	} else {
		t.rw.Lock()
	}
	sink() // held on both paths
`)
	checkProbes(t, got, []string{"", "rw"})
}

func TestLockWalkTerminatingBranchDropsFromJoin(t *testing.T) {
	got := lockProbe(t, `
	t.mu.Lock()
	if cond {
		t.mu.Unlock()
		return
	}
	sink() // the returning branch doesn't reach here

	if cond2 {
		t.mu.Unlock()
		panic("bail")
	}
	sink()
`)
	checkProbes(t, got, []string{"mu", "mu"})
}

func TestLockWalkRLockCountsAsHold(t *testing.T) {
	got := lockProbe(t, `
	t.rw.RLock()
	sink()
	t.rw.RUnlock()
	sink()
`)
	checkProbes(t, got, []string{"rw", ""})
}

func TestLockWalkTryLockIsNotAnAcquire(t *testing.T) {
	got := lockProbe(t, `
	if t.mu.TryLock() {
		_ = t.n
	}
	sink()
`)
	checkProbes(t, got, []string{""})
}

func TestLockWalkLoops(t *testing.T) {
	got := lockProbe(t, `
	t.mu.Lock()
	sink() // held before the loop
	for i := 0; i < k; i++ {
		sink() // body may start after a previous iteration unlocked
		t.mu.Unlock()
		t.mu.Lock()
	}
	sink() // and may end unlocked from the walker's view

	t.rw.Lock()
	for range items {
		sink() // rw never released in body: still held
	}
	sink()
	t.rw.Unlock()

	for range items {
		gmu.Lock()
		sink()
		gmu.Unlock()
	}
	sink() // lock acquired inside the loop doesn't survive it
`)
	checkProbes(t, got, []string{"mu", "", "", "rw", "rw", "gmu", ""})
}

func TestLockWalkClosures(t *testing.T) {
	got := lockProbe(t, `
	t.mu.Lock()
	go func() {
		sink() // other goroutine: spawner's locks are not held
	}()
	f := func() {
		sink() // runs at an unknown time: empty set
	}
	f()
	defer func() {
		sink() // deferred: inherits the current set
	}()
	func() {
		sink() // immediately invoked: inherits
	}()
	sink()
	t.mu.Unlock()
`)
	checkProbes(t, got, []string{"", "", "mu", "mu", "mu"})
}

func TestLockWalkSwitchSelect(t *testing.T) {
	got := lockProbe(t, `
	switch {
	case cond:
		t.mu.Lock()
	default:
		t.mu.Lock()
	}
	sink() // locked in every case incl. default
	t.mu.Unlock()

	switch k {
	case 1:
		t.rw.Lock()
	case 2:
		t.rw.Lock()
	}
	sink() // no default: the tag may match nothing
	select {
	case <-ch:
		gmu.Lock()
	case ch <- 1:
		gmu.Lock()
	}
	sink() // select always runs exactly one case

	select {
	case <-ch:
		gmu.Unlock()
	default:
	}
	sink()
`)
	checkProbes(t, got, []string{"mu", "", "gmu", ""})
}

func TestLockWalkSwitchTerminatingCases(t *testing.T) {
	got := lockProbe(t, `
	t.mu.Lock()
	switch {
	case cond:
		t.mu.Unlock()
		return
	case cond2:
		t.mu.Unlock()
		panic("no")
	}
	sink() // every unlocking case terminates; fallthrough path still holds
`)
	checkProbes(t, got, []string{"mu"})
}

func TestLockWalkBreakLeavesLoopJoin(t *testing.T) {
	got := lockProbe(t, `
	for i := 0; i < k; i++ {
		if cond {
			break
		}
		t.mu.Lock()
		sink()
		t.mu.Unlock()
	}
	sink()
`)
	checkProbes(t, got, []string{"mu", ""})
}

func TestLockWalkEmbeddedMutex(t *testing.T) {
	got := lockProbe(t, `
	t.Lock()
	sink()
	t.Unlock()
	sink()
`)
	checkProbes(t, got, []string{"Mutex", ""})
}

func TestLockWalkDottedPathIdentity(t *testing.T) {
	// t.in.imu and a local alias both resolve to the Inner.imu field
	// object: identity is the field, not the instance.
	got := lockProbe(t, `
	t.in.imu.Lock()
	sink()
	in2 := t.in
	in2.imu.Unlock()
	sink()
`)
	checkProbes(t, got, []string{"imu", ""})
}

func TestLockWalkGotoFreezesFunction(t *testing.T) {
	got := lockProbe(t, `
	t.mu.Lock()
	sink()
	if cond {
		goto done
	}
done:
	t.mu.Unlock()
`)
	checkProbes(t, got, []string{"!unprovable"})
}

func TestLockWalkAssumedSeeds(t *testing.T) {
	got := lockProbe(t, `
	sink()
	t.mu.Unlock()
	sink()
`, "mu")
	checkProbes(t, got, []string{"mu", ""})
}

func TestLockWalkAcquirePositionOrdering(t *testing.T) {
	src := `
	t.rw.Lock()
	t.mu.Lock()
	sink()
`
	got := lockProbe(t, src)
	// Held() orders by acquisition position: rw first.
	checkProbes(t, got, []string{"rw,mu"})
}
