package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"math"
	"strings"
	"testing"
)

func TestIntervalString(t *testing.T) {
	cases := []struct {
		iv   Interval
		want string
	}{
		{Interval{0, 65535}, "[0, 65535]"},
		{Interval{-5, 5}, "[-5, 5]"},
		{Top, "[-inf, +inf]"},
		{Interval{0, posInf}, "[0, +inf]"},
		{Interval{negInf, 7}, "[-inf, 7]"},
	}
	for _, c := range cases {
		if got := c.iv.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.iv, got, c.want)
		}
	}
}

func TestFits16(t *testing.T) {
	cases := []struct {
		iv   Interval
		want bool
	}{
		{Interval{0, 0xFFFF}, true},
		{Interval{0, 0x10000}, false},
		{Interval{-0x8000, 0x7FFF}, true},
		{Interval{-0x8000, 0x8000}, false},
		{Interval{-0x8001, 0}, false},
		{Interval{-1, 0xFFFF}, false}, // needs 17 bits: sign and 16 magnitude
		{Interval{42, 42}, true},
		{Top, false},
	}
	for _, c := range cases {
		if got := c.iv.Fits16(); got != c.want {
			t.Errorf("%v.Fits16() = %v, want %v", c.iv, got, c.want)
		}
	}
}

func TestSaturatingScalars(t *testing.T) {
	if got := satAdd(math.MaxInt64-1, 10); got != posInf {
		t.Errorf("satAdd overflow = %d", got)
	}
	if got := satAdd(math.MinInt64+1, -10); got != negInf {
		t.Errorf("satAdd underflow = %d", got)
	}
	if got := satAdd(posInf, -5); got != posInf {
		t.Errorf("sticky +inf lost: %d", got)
	}
	if got := satMul(1<<40, 1<<40); got != posInf {
		t.Errorf("satMul overflow = %d", got)
	}
	if got := satMul(1<<40, -(1 << 40)); got != negInf {
		t.Errorf("satMul underflow = %d", got)
	}
	if got := satMul(negInf, -1); got != posInf {
		t.Errorf("satMul(-inf, -1) = %d", got)
	}
	if got := satShl(3, 62); got != posInf {
		t.Errorf("satShl overflow = %d", got)
	}
	if got := satShl(1, 4); got != 16 {
		t.Errorf("satShl(1,4) = %d", got)
	}
	if got := satNeg(negInf); got != posInf {
		t.Errorf("satNeg(-inf) = %d", got)
	}
}

func TestIntervalAlgebra(t *testing.T) {
	cases := []struct {
		name string
		got  Interval
		want Interval
	}{
		{"add", addIv(Interval{1, 2}, Interval{10, 20}), Interval{11, 22}},
		{"sub", subIv(Interval{1, 2}, Interval{10, 20}), Interval{-19, -8}},
		{"mul-signs", mulIv(Interval{-3, 2}, Interval{4, 5}), Interval{-15, 10}},
		{"mul-negneg", mulIv(Interval{-3, -2}, Interval{-4, -1}), Interval{2, 12}},
		{"and-const", andIv(Interval{negInf, posInf}, Interval{0xFF, 0xFF}), Interval{0, 0xFF}},
		{"and-nonneg", andIv(Interval{0, 100}, Interval{0, 7}), Interval{0, 7}},
		{"andnot", andNotIv(Interval{0, 100}, Top), Interval{0, 100}},
		{"or-pow2", orXorIv(Interval{0, 5}, Interval{0, 9}), Interval{0, 15}},
		{"shl", shlIv(Interval{1, 3}, Interval{2, 4}), Interval{4, 48}},
		{"shr", shrIv(Interval{16, 64}, Interval{2, 3}), Interval{2, 16}},
		{"rem-nonneg", remIv(Interval{0, posInf}, Interval{16, 16}), Interval{0, 15}},
		{"rem-signed", remIv(Interval{negInf, posInf}, Interval{16, 16}), Interval{-15, 15}},
		{"rem-dividend-bound", remIv(Interval{0, 7}, Interval{100, 100}), Interval{0, 7}},
		{"rem-div-zero-span", remIv(Interval{0, 7}, Interval{-1, 1}), Top},
		{"quo", quoIv(Interval{10, 21}, Interval{2, 5}), Interval{2, 10}},
		{"quo-zero-span", quoIv(Interval{10, 21}, Interval{0, 5}), Top},
		{"join", Interval{1, 5}.Join(Interval{-2, 3}), Interval{-2, 5}},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestFitToType(t *testing.T) {
	u16 := types.Typ[types.Uint16]
	if got := fitToType(Interval{0, 100}, u16); got != (Interval{0, 100}) {
		t.Errorf("fitting value widened: %v", got)
	}
	if got := fitToType(Interval{0, 0x10000}, u16); got != (Interval{0, 0xFFFF}) {
		t.Errorf("overflow should wrap to type range: %v", got)
	}
	if got := fitToType(Interval{-1, 5}, u16); got != (Interval{0, 0xFFFF}) {
		t.Errorf("negative into unsigned should wrap to type range: %v", got)
	}
}

// sinkIntervals type-checks a function body (with uint16 parameters a, b
// and plain-int parameters k, cond available), flow-walks it, and returns
// the interval of each sink(...) argument in source order.
func sinkIntervals(t *testing.T, body string) []Interval {
	t.Helper()
	src := fmt.Sprintf(`package p
func sink(x int64) {}
func helper() int { return 3 }
type mint int
func (m *mint) widen() { *m = 0x1FFFF }
func (m mint) peek() int { return int(m) }
func f(a, b uint16, k int, cond bool) {
%s
}`, body)
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v\n%s", err, src)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	var out []Interval
	FlowWalk(pkg, info, fn.Body, func(n ast.Node, _ []ast.Node, ev *Evaluator) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
				out = append(out, ev.Eval(call.Args[0]))
			}
		}
		return true
	})
	return out
}

func TestFlowStraightLine(t *testing.T) {
	got := sinkIntervals(t, `
	x := 10
	sink(int64(x))
	x = x * 3
	sink(int64(x))
	x += 2
	sink(int64(x))
	x++
	sink(int64(x))
	var y int
	sink(int64(y))
	sink(int64(int(a) + 1))
	sink(int64(int(a) & 0xFF))
`)
	want := []Interval{
		{10, 10}, {30, 30}, {32, 32}, {33, 33}, {0, 0}, {1, 65536}, {0, 255},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d sinks, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sink %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFlowBranchesAndLoops(t *testing.T) {
	got := sinkIntervals(t, `
	m := 0xFF
	if cond {
		m = 0xFFF
	}
	sink(int64(m)) // join of both branches

	n := 1
	if cond {
		n = 2
	} else {
		n = -4
	}
	sink(int64(n))

	p := 7
	for i := 0; i < k; i++ {
		p = k
	}
	sink(int64(p)) // assigned in loop: unknown

	q := 9
	for i := 0; i < k; i++ {
		_ = i
	}
	sink(int64(q)) // untouched by loop: still known

	r := 3
	switch k {
	case 0:
		r = k
	}
	sink(int64(r)) // assigned in a case: unknown
`)
	intRange := typeInterval(types.Typ[types.Int])
	want := []Interval{
		{0xFF, 0xFFF}, {-4, 2}, intRange, {9, 9}, intRange,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d sinks, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sink %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFlowInvalidation(t *testing.T) {
	got := sinkIntervals(t, `
	x := 5
	f := func() { x = k }
	f()
	sink(int64(x)) // closure-assigned: never refined

	y := 6
	ptr := &y
	_ = ptr
	sink(int64(y)) // address-taken: never refined

	z := 7
	z = helper()
	sink(int64(z)) // opaque call result: type range
`)
	intRange := typeInterval(types.Typ[types.Int])
	want := []Interval{intRange, intRange, intRange}
	if len(got) != len(want) {
		t.Fatalf("got %d sinks, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sink %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFlowPointerReceiverInvalidates(t *testing.T) {
	// A pointer-receiver method call (or method value) takes the
	// receiver's address implicitly; the receiver must be treated like an
	// explicitly address-taken variable, or a mutation such as *m=0x1FFFF
	// inside widen() would leave a stale [255,255] refinement behind.
	got := sinkIntervals(t, `
	m := mint(255)
	m.widen()
	sink(int64(m)) // mutated through the implicit &m: never refined

	g := mint(255)
	w := g.widen
	w()
	sink(int64(g)) // method value captures &g: never refined

	v := mint(255)
	_ = v.peek()
	sink(int64(v)) // value receiver copies v: refinement survives
`)
	intRange := typeInterval(types.Typ[types.Int])
	want := []Interval{intRange, intRange, {255, 255}}
	if len(got) != len(want) {
		t.Fatalf("got %d sinks, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sink %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEvaluatorFloatExpressionsUnrefined(t *testing.T) {
	// Integer interval arithmetic must never touch a float expression:
	// quoIv would claim 1.0/2.0 = [0,0], and a mask derived from that
	// float would falsely discharge a 16-bit escape.
	got := sinkIntervals(t, `
	f := 1.0 / 2.0
	m := int(f * (1 << 18)) // really 131072: must not be refined to [0,0]
	sink(int64(m))
	sink(int64(int(a) * 17 & m))
`)
	intRange := typeInterval(types.Typ[types.Int])
	if len(got) != 2 {
		t.Fatalf("got %d sinks: %v", len(got), got)
	}
	if got[0] != intRange {
		t.Errorf("float-derived value should stay at the type range, got %v", got[0])
	}
	if got[1].Fits16() {
		t.Errorf("float-derived mask must not discharge a 16-bit escape: %v", got[1])
	}
}

func TestFlowGotoFreezes(t *testing.T) {
	got := sinkIntervals(t, `
	x := 5
	if cond {
		goto done
	}
	x = 6
done:
	sink(int64(x))
`)
	intRange := typeInterval(types.Typ[types.Int])
	if len(got) != 1 || got[0] != intRange {
		t.Errorf("goto should disable refinement: %v", got)
	}
}

func TestFlowFuncLitBodyWalked(t *testing.T) {
	// Sinks inside function literals are visited with their own flow.
	got := sinkIntervals(t, `
	g := func() {
		inner := 11
		sink(int64(inner))
	}
	g()
`)
	if len(got) != 1 || got[0] != (Interval{11, 11}) {
		t.Errorf("funclit body: %v", got)
	}
}

func TestEvaluatorHugeConstants(t *testing.T) {
	got := sinkIntervals(t, `
	const huge = 1 << 62
	sink(int64(huge))
	sink(int64(uint64(a) << 50))
`)
	if len(got) != 2 {
		t.Fatalf("got %d sinks: %v", len(got), got)
	}
	if got[0] != (Interval{1 << 62, 1 << 62}) {
		t.Errorf("const: %v", got[0])
	}
	// 65535 << 50 overflows int64's positive range: saturates unbounded.
	if got[1].Hi != posInf {
		t.Errorf("shift overflow should saturate: %v", got[1])
	}
}

func TestEvaluatorMessageInterval(t *testing.T) {
	// The interval that lands in regwidth's message for the canonical
	// masked/unmasked pair.
	got := sinkIntervals(t, `
	sink(int64((int(a) + 1) & 0xFFFF))
	sink(int64(int(a) + 1))
`)
	if len(got) != 2 {
		t.Fatalf("got %d sinks: %v", len(got), got)
	}
	if !got[0].Fits16() {
		t.Errorf("masked escape should fit: %v", got[0])
	}
	if got[1].Fits16() {
		t.Errorf("unmasked escape should not fit: %v", got[1])
	}
	if s := got[1].String(); !strings.Contains(s, "65536") {
		t.Errorf("interval text: %s", s)
	}
}
