package resetcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/resetcheck"
)

func TestResetcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), resetcheck.Analyzer,
		"resetdemo", "monlib")
}
