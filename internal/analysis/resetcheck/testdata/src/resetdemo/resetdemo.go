// Package resetdemo exercises the resetcheck analyzer against the
// monitor-reuse contract.
package resetdemo

import "monlib"

func secondSource(m *monlib.Monitor, a, b *monlib.Source) {
	_ = m.Watch(a, 1)
	_ = m.Watch(a, 1) // continuation of the same stream: allowed
	_ = m.Watch(b, 1) // want `without Reset`
}

func secondSourceReset(m *monlib.Monitor, a, b *monlib.Source) {
	_ = m.Watch(a, 1)
	m.Reset()
	_ = m.Watch(b, 1) // reset in between: allowed
}

func loopFresh(m *monlib.Monitor) {
	for i := 0; i < 4; i++ {
		_ = m.Watch(monlib.NewSource(i), 1) // want `fresh source every loop iteration`
	}
}

func loopFreshReset(m *monlib.Monitor) {
	for i := 0; i < 4; i++ {
		m.Reset()
		_ = m.Watch(monlib.NewSource(i), 1) // reset per trial: the runner idiom
	}
}

func loopContinuous(m *monlib.Monitor, s *monlib.Source) {
	for i := 0; i < 4; i++ {
		_ = m.Watch(s, 1) // always-on monitoring of one stream: allowed
	}
}

func escapes(m *monlib.Monitor, a, b *monlib.Source) {
	_ = m.Watch(a, 1)
	handOff(m)
	_ = m.Watch(b, 1) // m escaped: conservatively allowed
}

func handOff(m *monlib.Monitor) { m.Reset() }

func fieldMonitor() {
	var box struct{ mon monlib.Monitor }
	a, b := monlib.NewSource(1), monlib.NewSource(2)
	_ = box.mon.Watch(a, 1)
	_ = box.mon.Watch(b, 1) // want `without Reset`
}

func waived(m *monlib.Monitor, a, b *monlib.Source) {
	_ = m.Watch(a, 1)
	//trnglint:allow resetcheck the second stream deliberately continues the first trial's history
	_ = m.Watch(b, 1)
}
