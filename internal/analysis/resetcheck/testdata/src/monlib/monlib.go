// Package monlib is the cross-package half of the resetcheck golden
// tests: a Monitor type defined away from the use sites.
package monlib

// Source stands in for a trng source.
type Source struct{ seed int }

// NewSource builds a fresh source.
func NewSource(seed int) *Source { return &Source{seed: seed} }

// Monitor is tracked by name, like the real core.Monitor.
type Monitor struct{ seq int }

// Watch monitors n sequences from src.
func (m *Monitor) Watch(src *Source, n int) error {
	m.seq += n
	return nil
}

// Reset returns the monitor to its just-built state.
func (m *Monitor) Reset() { m.seq = 0 }
