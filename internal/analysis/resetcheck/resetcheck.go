// Package resetcheck enforces the monitor-reuse contract that the
// deterministic fan-out machinery (core.SequenceRunner, PowerSweep) is
// built on: a Monitor carries state across sequences — sequence counter,
// bit offset, history — so pointing an already-used monitor at a *new*
// source without calling Reset leaks one trial's state into the next and
// the run stops being a pure function of the per-trial seeds. Continuous
// monitoring of one stream (Watch in a loop over the same source — the
// paper's always-on mode) is exactly the allowed case and is not flagged.
//
// Two patterns are reported, per function body:
//
//   - a second Watch on the same monitor with a syntactically different
//     source expression, with no Reset (and no escape of the monitor)
//     in between
//   - Watch inside a loop whose source argument is built afresh each
//     iteration (a call expression), with no Reset on that monitor
//     anywhere in the loop body
//
// The check is a linear, intra-procedural heuristic: passing the monitor
// to another function or reassigning it conservatively clears its state.
// A deliberate continuation is waived with
// //trnglint:allow resetcheck <reason>.
package resetcheck

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer flags Monitor reuse across sources without an intervening
// Reset.
var Analyzer = &analysis.Analyzer{
	Name: "resetcheck",
	Doc: "flag Monitor reuse paths that reach a second, different source " +
		"without an intervening Reset",
	Run: run,
}

// monitorTypeName is the tracked stateful type. The contract is keyed by
// type name so the golden packages can model it without importing the
// real core package.
const monitorTypeName = "Monitor"

type eventKind int

const (
	evWatch eventKind = iota
	evReset
	evEscape
)

type event struct {
	kind eventKind
	pos  token.Pos
	call *ast.CallExpr
	// srcText is the printed source argument of a Watch.
	srcText string
	// freshSource marks a Watch whose source argument is a call
	// expression — a source constructed at the call site.
	freshSource bool
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				checkBody(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil, nil
}

// checkBody analyzes one function body. Nested function literals are
// analyzed independently (their events do not interleave predictably
// with the enclosing body's).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	events := collect(pass, body)
	linearScan(pass, events)

	// Loop rule: fresh-source Watch inside a loop needs a Reset in that
	// same loop body.
	inspectSameFunc(body, func(n ast.Node) {
		var loopBody *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			loopBody = n.Body
		case *ast.RangeStmt:
			loopBody = n.Body
		}
		if loopBody == nil {
			return
		}
		evs := collect(pass, loopBody)
		resets := make(map[string]bool)
		for _, e := range evs {
			if e.kind == evReset || e.kind == evEscape {
				resets[e.keyText()] = true
			}
		}
		for _, e := range evs {
			if e.kind == evWatch && e.freshSource && !resets[e.keyText()] {
				pass.Reportf(e.pos,
					"Watch on monitor %q builds a fresh source every loop iteration but the loop never "+
						"calls Reset: trial state leaks across sequences — Reset before Watch or waive "+
						"with //trnglint:allow resetcheck <reason>", e.srcText)
			}
		}
	})
}

// linearScan applies the second-source rule over the position-ordered
// events of the whole body.
func linearScan(pass *analysis.Pass, events []event) {
	type state struct {
		watched bool
		srcText string
	}
	byKey := make(map[string][]event)
	for _, e := range events {
		byKey[e.keyText()] = append(byKey[e.keyText()], e)
	}
	for _, evs := range byKey {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		st := &state{}
		for _, e := range evs {
			switch e.kind {
			case evReset, evEscape:
				st.watched = false
			case evWatch:
				if st.watched && st.srcText != e.srcText {
					pass.Reportf(e.pos,
						"monitor already monitored source %s; feeding it %s without Reset carries the "+
							"sequence counter and history into an unrelated stream — Reset first or waive "+
							"with //trnglint:allow resetcheck <reason>", st.srcText, e.srcText)
				}
				st.watched = true
				st.srcText = e.srcText
			}
		}
	}
}

// keyText returns the receiver key an event applies to. For Watch/Reset
// the receiver text is stored in call; escapes store it in srcText.
func (e event) keyText() string {
	if e.kind == evEscape {
		return e.srcText
	}
	var buf bytes.Buffer
	sel := e.call.Fun.(*ast.SelectorExpr)
	printer.Fprint(&buf, token.NewFileSet(), sel.X)
	return buf.String()
}

// collect gathers monitor events in the subtree. Nested function
// literals are always skipped — they are checked on their own.
func collect(pass *analysis.Pass, body *ast.BlockStmt) []event {
	var out []event
	inspectSameFunc(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			// A monitor passed to another function or reassigned escapes
			// the linear analysis.
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, rhs := range as.Rhs {
					if isMonitorExpr(pass, rhs) {
						out = append(out, event{kind: evEscape, pos: as.Pos(), srcText: exprText(rhs)})
					}
				}
			}
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && isMonitorExpr(pass, sel.X) {
			switch sel.Sel.Name {
			case "Watch":
				if len(call.Args) >= 1 {
					_, fresh := ast.Unparen(call.Args[0]).(*ast.CallExpr)
					out = append(out, event{
						kind: evWatch, pos: call.Pos(), call: call,
						srcText: exprText(call.Args[0]), freshSource: fresh,
					})
				}
				return
			case "Reset":
				out = append(out, event{kind: evReset, pos: call.Pos(), call: call})
				return
			default:
				// Any other method keeps the monitor's state opaque but
				// does not feed it a source; ignore.
				return
			}
		}
		// Monitor used as an argument: escapes.
		for _, arg := range call.Args {
			if isMonitorExpr(pass, arg) {
				out = append(out, event{kind: evEscape, pos: call.Pos(), srcText: exprText(arg)})
			}
		}
	})
	return out
}

// inspectSameFunc walks the subtree without descending into nested
// function literals.
func inspectSameFunc(root ast.Node, fn func(n ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// isMonitorExpr reports whether e denotes a value of (pointer to) a named
// type called Monitor. Unary &x is unwrapped so `&m` as an argument
// counts as an escape of m.
func isMonitorExpr(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = ue.X
	}
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == monitorTypeName
}

func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
