// Package flowdemo exercises the flow-sensitive half of the regwidth
// analyzer: discharges and findings that depend on statement-level value
// tracking, not on syntactic mask patterns.
//
//trnglint:bus16
package flowdemo

// discharged: the interval engine proves the escape root fits 16 bits
// through variable refinements the old syntactic rule could not see.
func discharged(a, b uint16, cond bool) {
	mask := 0xFF
	_ = (int(a) + 1) & mask // [0, 255]: fits

	limit := 0x10000
	_ = (int(a) + 3) % limit // non-negative dividend: [0, 65535] fits

	m := 0xFF
	if cond {
		m = 0xFFF
	}
	_ = (int(a) * 3) & m // branch join m=[255, 4095]: result fits

	var acc int // zero value, provably [0, 0]
	_ = int(a) * acc

	shifted := (uint32(a) << 2) & 0xFFFF // mask above the shift: fits
	_ = shifted
}

// flagged: flow facts widen the interval past the bus and the finding
// stands, with the computed interval in the message.
func flagged(a, b uint16, k int, cond bool) {
	s := 2
	_ = uint32(a) << s // want `escapes without a 16-bit truncation \(value interval \[0, 262140\]\)`

	// The old syntactic rule trusted `% 0x10000` blindly; a signed
	// dividend makes the remainder negative, which a 16-bit unsigned bus
	// word cannot carry.
	_ = (int(a) - int(b)) % 0x10000 // want `escapes without a 16-bit truncation \(value interval \[-65535, 65535\]\)`

	m := 0xFF
	for i := 0; i < k; i++ {
		m = k // loop body invalidates the refinement
	}
	_ = (int(a) + 1) & m // want `escapes without a 16-bit truncation`

	n := 0xFF
	bump := func() { n = 1 << 20 } // closure assignment: never refined
	bump()
	_ = (int(a) + 1) & n // want `escapes without a 16-bit truncation`

	big := 0xFF
	if cond {
		big = 1 << 20
	}
	_ = (int(a) * int(a)) & big // want `escapes without a 16-bit truncation`
}
