// Package busdep is a helper dependency for the regwidth golden tests:
// it hands 16-bit bus words across a package boundary.
package busdep

// Word models a register read on the 16-bit bus.
func Word() uint16 { return 0xBEEF }

// Reg is a named 16-bit register type.
type Reg uint16

// Sample returns a named-type register value.
func Sample() Reg { return 0x1234 }
