// Package nomarker has no //trnglint:bus16 marker, so the regwidth
// analyzer must stay silent even over textbook violations.
package nomarker

func unflagged(a, b uint16) {
	_ = int(a) + 1
	_ = uint32(a) * uint32(b)
	var acc uint64
	acc += uint64(a)
	_ = acc
}
