// Package bus16demo exercises the regwidth analyzer: the bus16 marker
// below opts the package into the 16-bit datapath rules.
//
//trnglint:bus16
package bus16demo

import "busdep"

// Reg is a named register type; its underlying uint16 is what matters.
type Reg uint16

func flagged(a, b uint16, r Reg, c int16) {
	_ = int(a) + 1            // want `escapes without a 16-bit truncation`
	_ = uint32(a) * uint32(b) // want `escapes without a 16-bit truncation`
	_ = int64(a) - int64(b)   // want `escapes without a 16-bit truncation`
	_ = uint(a) << 3          // want `escapes without a 16-bit truncation`
	_ = uint32(r) + 1         // want `escapes without a 16-bit truncation`
	_ = int32(c) * 3          // want `escapes without a 16-bit truncation`
}

func flaggedCrossPackage() {
	_ = int(busdep.Word()) + 1      // want `escapes without a 16-bit truncation`
	_ = uint64(busdep.Sample()) * 5 // want `escapes without a 16-bit truncation`
}

func masked(a, b uint16) {
	_ = (int(a) + 1) & 0xFFFF
	_ = (uint32(a) * uint32(b)) % 0x10000
	_ = uint16(uint32(a) + uint32(b))
	_ = byte(int(a) + 1)
	_ = (uint32(a) + uint32(b) + 1) & 0x7FF
	_ = int(a) & 0xF // pure bit op, no arithmetic
	_ = int(a) / 2   // division cannot overflow the bus width
	_ = int(a) >> 4
}

func compound(a uint16) {
	var acc uint32
	acc += uint32(a) // want `compound \+= on uint32 accumulates`
	acc <<= 1
	var acc16 uint16
	acc16 += a // 16-bit accumulator stays on the bus
	_ = acc16
	_ = acc
}

func waived(a, b uint16) {
	//trnglint:widen word-lane reassembly demo
	_ = uint64(a)<<16 + uint64(b)

	_ = uint64(a)<<16 + uint64(b) //trnglint:widen same-line waiver demo
}

func bareWaiverDoesNotCount(a uint16) {
	//trnglint:widen
	_ = int(a) + 1 // want `escapes without a 16-bit truncation`
}
