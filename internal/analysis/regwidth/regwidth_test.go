package regwidth_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/regwidth"
)

func TestRegwidth(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), regwidth.Analyzer,
		"bus16demo", "flowdemo", "nomarker")
}
