// Package regwidth enforces the paper's 16-bit data-bus invariant: in
// packages marked //trnglint:bus16, a value widened out of a 16-bit
// register type (uint16/int16) may not flow through arithmetic unless the
// result is explicitly truncated back — masked with a constant of at most
// 0xFFFF, reduced mod 2^16, or converted to a ≤16-bit integer type. The
// hardware block the model mirrors has no wider datapath, so an unmasked
// widening computes a value the silicon cannot represent and silently
// breaks the bit-exact equivalence between the structural and fast-path
// models. Intentional wide arithmetic is waived in place with
// //trnglint:widen <reason>.
package regwidth

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags unmasked arithmetic on values widened from 16-bit
// register types inside //trnglint:bus16 packages.
var Analyzer = &analysis.Analyzer{
	Name: "regwidth",
	Doc: "flag arithmetic on values widened from 16-bit register types " +
		"that escapes without an explicit & 0xFFFF (or equivalent) truncation",
	Run: run,
}

// Arithmetic operators whose wide result can disagree with the 16-bit
// hardware result. Comparisons, divisions and pure bit ops are excluded:
// they cannot manufacture bits above the mask on their own.
var arithOps = map[token.Token]bool{
	token.ADD: true,
	token.SUB: true,
	token.MUL: true,
	token.SHL: true,
}

var assignOps = map[token.Token]token.Token{
	token.ADD_ASSIGN: token.ADD,
	token.SUB_ASSIGN: token.SUB,
	token.MUL_ASSIGN: token.MUL,
	token.SHL_ASSIGN: token.SHL,
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.Directives.HasMarker("bus16") {
		return nil, nil
	}
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n, stack)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkBinary flags `... wide(narrow16) op ...` whose result escapes the
// expression tree unmasked.
func checkBinary(pass *analysis.Pass, be *ast.BinaryExpr, stack []ast.Node) {
	if !arithOps[be.Op] || !isWideInt(pass.TypeOf(be)) {
		return
	}
	conv := wideningOperand(pass, be.X)
	if conv == nil {
		conv = wideningOperand(pass, be.Y)
	}
	if conv == nil {
		return
	}
	if maskedAbove(pass, stack) {
		return
	}
	pass.Reportf(conv.Pos(),
		"%s arithmetic on a value widened from %s escapes without a 16-bit truncation; "+
			"the paper's bus is 16 bits wide — mask with & 0xFFFF or waive with //trnglint:widen <reason>",
		pass.TypeOf(be), pass.TypeOf(conv.Args[0]))
}

// checkAssign flags `wide op= wide(narrow16)` compound assignments: the
// accumulator itself is wider than the bus, so no later mask can appear
// in the same expression.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	op, ok := assignOps[as.Tok]
	if !ok || !arithOps[op] || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	if !isWideInt(pass.TypeOf(as.Lhs[0])) {
		return
	}
	conv := wideningOperand(pass, as.Rhs[0])
	if conv == nil {
		return
	}
	pass.Reportf(conv.Pos(),
		"compound %s on %s accumulates a value widened from %s beyond the 16-bit bus; "+
			"mask before accumulating or waive with //trnglint:widen <reason>",
		as.Tok, pass.TypeOf(as.Lhs[0]), pass.TypeOf(conv.Args[0]))
}

// wideningOperand unwraps parens and reports e as a conversion
// wide-int(x) applied to a 16-bit value, or nil.
func wideningOperand(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	if !isWideInt(tv.Type) || !isNarrow16(pass.TypeOf(call.Args[0])) {
		return nil
	}
	return call
}

// maskedAbove reports whether some ancestor of the flagged expression —
// still within the same expression tree — truncates the result back to
// 16 bits: `expr & c` with c ≤ 0xFFFF, `expr % c` with c ≤ 0x10000, or a
// conversion to a ≤16-bit integer type. The climb stops at the first
// non-expression ancestor: once the wide value reaches a statement, call
// argument or index unmasked, it has escaped.
func maskedAbove(pass *analysis.Pass, stack []ast.Node) bool {
	// stack[len-1] is the flagged BinaryExpr itself.
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			continue
		case *ast.BinaryExpr:
			if truncatingBinary(pass, parent) {
				return true
			}
			// Any other binary op keeps the value inside the expression;
			// a mask further up still truncates everything below it.
			continue
		case *ast.CallExpr:
			// A conversion back to a narrow integer type truncates.
			if tv, ok := pass.TypesInfo.Types[parent.Fun]; ok && tv.IsType() {
				if isNarrowIntOrSmaller(tv.Type) {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

func truncatingBinary(pass *analysis.Pass, be *ast.BinaryExpr) bool {
	switch be.Op {
	case token.AND:
		return constAtMost(pass, be.X, 0xFFFF) || constAtMost(pass, be.Y, 0xFFFF)
	case token.REM:
		return constAtMost(pass, be.Y, 0x10000)
	}
	return false
}

func constAtMost(pass *analysis.Pass, e ast.Expr, max int64) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && v >= 0 && v <= max
}

func isNarrow16(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Uint16 || b.Kind() == types.Int16
}

func isNarrowIntOrSmaller(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint16, types.Int16, types.Uint8, types.Int8:
		return true
	}
	return false
}

func isWideInt(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Uint, types.Int32, types.Uint32,
		types.Int64, types.Uint64, types.Uintptr:
		return true
	}
	return false
}
