// Package regwidth enforces the paper's 16-bit data-bus invariant: in
// packages marked //trnglint:bus16, a value widened out of a 16-bit
// register type (uint16/int16) may not flow through arithmetic unless the
// computed result provably fits back on the bus. The hardware block the
// model mirrors has no wider datapath, so an unmasked widening computes a
// value the silicon cannot represent and silently breaks the bit-exact
// equivalence between the structural and fast-path models.
//
// The proof is a flow-sensitive interval analysis (internal/analysis
// FlowWalk/Evaluator), not a syntactic mask pattern: the analyzer climbs
// from the widening arithmetic to the root of the value's expression tree
// and evaluates the root's value interval under the variable refinements
// the surrounding statements establish. `x & mask` discharges the finding
// when mask's interval proves the result fits 16 bits — whether mask is a
// literal, a variable assigned a small constant, or a branch join of
// small constants — and fails to discharge when a loop, closure or
// possibly-negative remainder leaves the range wide. Intentional wide
// arithmetic is waived in place with //trnglint:widen <reason>; each
// surviving waiver records the interval the engine computed for it.
package regwidth

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags arithmetic on values widened from 16-bit register types
// whose result interval escapes the 16-bit bus range.
var Analyzer = &analysis.Analyzer{
	Name: "regwidth",
	Doc: "flag arithmetic on values widened from 16-bit register types " +
		"whose value interval escapes without a 16-bit truncation",
	Run: run,
}

// Arithmetic operators whose wide result can disagree with the 16-bit
// hardware result. Comparisons, divisions and pure bit ops are excluded:
// they cannot manufacture bits above the mask on their own.
var arithOps = map[token.Token]bool{
	token.ADD: true,
	token.SUB: true,
	token.MUL: true,
	token.SHL: true,
}

var assignOps = map[token.Token]token.Token{
	token.ADD_ASSIGN: token.ADD,
	token.SUB_ASSIGN: token.SUB,
	token.MUL_ASSIGN: token.MUL,
	token.SHL_ASSIGN: token.SHL,
}

// valueOps are the binary operators through which the wide value keeps
// flowing as a value — the climb toward the escape root passes them and
// lets the interval of the whole decide.
var valueOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.AND: true, token.OR: true, token.XOR: true,
	token.AND_NOT: true, token.SHL: true, token.SHR: true,
}

func run(pass *analysis.Pass) (any, error) {
	if !pass.Directives.HasMarker("bus16") {
		return nil, nil
	}
	visit := func(n ast.Node, stack []ast.Node, ev *analysis.Evaluator) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkBinary(pass, n, stack, ev)
		case *ast.AssignStmt:
			checkAssign(pass, n)
		}
		return true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					analysis.FlowWalk(pass.Pkg, pass.TypesInfo, d.Body, visit)
				}
			case *ast.GenDecl:
				// Package-level initializers carry no statement flow;
				// evaluate under the empty environment (constants and
				// type ranges still fold).
				ev := analysis.NewEvaluator(pass.TypesInfo)
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						analysis.WithStack(v, func(n ast.Node, stack []ast.Node) bool {
							visit(n, stack, ev)
							return true
						})
					}
				}
			}
		}
	}
	return nil, nil
}

// checkBinary flags `... wide(narrow16) op ...` whose escape-root value
// interval does not fit back into 16 bits.
func checkBinary(pass *analysis.Pass, be *ast.BinaryExpr, stack []ast.Node, ev *analysis.Evaluator) {
	if !arithOps[be.Op] || !isWideInt(pass.TypeOf(be)) {
		return
	}
	conv := wideningOperand(pass, be.X)
	if conv == nil {
		conv = wideningOperand(pass, be.Y)
	}
	if conv == nil {
		return
	}
	iv := ev.Eval(escapeRoot(pass, stack))
	if iv.Fits16() {
		return
	}
	pass.Reportf(conv.Pos(),
		"%s arithmetic on a value widened from %s escapes without a 16-bit truncation "+
			"(value interval %s); the paper's bus is 16 bits wide — mask with & 0xFFFF "+
			"or waive with //trnglint:widen <reason>",
		pass.TypeOf(be), pass.TypeOf(conv.Args[0]), iv)
}

// checkAssign flags `wide op= wide(narrow16)` compound assignments
// unconditionally: the accumulator is loop-carried state wider than the
// bus, so no straight-line interval can bound what it accumulates.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	op, ok := assignOps[as.Tok]
	if !ok || !arithOps[op] || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	if !isWideInt(pass.TypeOf(as.Lhs[0])) {
		return
	}
	conv := wideningOperand(pass, as.Rhs[0])
	if conv == nil {
		return
	}
	pass.Reportf(conv.Pos(),
		"compound %s on %s accumulates a value widened from %s beyond the 16-bit bus; "+
			"mask before accumulating or waive with //trnglint:widen <reason>",
		as.Tok, pass.TypeOf(as.Lhs[0]), pass.TypeOf(conv.Args[0]))
}

// wideningOperand unwraps parens and reports e as a conversion
// wide-int(x) applied to a 16-bit value, or nil.
func wideningOperand(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	if !isWideInt(tv.Type) || !isNarrow16(pass.TypeOf(call.Args[0])) {
		return nil
	}
	return call
}

// escapeRoot climbs from the flagged expression (stack's last node)
// through the ancestors that keep its result flowing as a value — parens,
// sign/complement unaries, value-op binaries and integer conversions —
// and returns the outermost such expression: the last point where a
// truncation could still act before the value escapes into a statement,
// call argument or index.
func escapeRoot(pass *analysis.Pass, stack []ast.Node) ast.Expr {
	root := stack[len(stack)-1].(ast.Expr)
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			root = parent
		case *ast.UnaryExpr:
			if parent.Op != token.ADD && parent.Op != token.SUB && parent.Op != token.XOR {
				return root
			}
			root = parent
		case *ast.BinaryExpr:
			if !valueOps[parent.Op] {
				return root
			}
			root = parent
		case *ast.CallExpr:
			tv, ok := pass.TypesInfo.Types[parent.Fun]
			if !ok || !tv.IsType() {
				return root
			}
			root = parent
		default:
			return root
		}
	}
	return root
}

func isNarrow16(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Uint16 || b.Kind() == types.Int16
}

func isWideInt(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Uint, types.Int32, types.Uint32,
		types.Int64, types.Uint64, types.Uintptr:
		return true
	}
	return false
}
