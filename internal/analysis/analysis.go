// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// sufficient to host the trnglint analyzers without pulling x/tools into
// the module. An Analyzer inspects one type-checked package at a time and
// reports diagnostics; drivers (cmd/trnglint, the analysistest harness)
// load packages with internal/analysis/load and run analyzers through
// Run, which also applies the //trnglint: waiver directives so that a
// documented waiver suppresses the finding identically everywhere.
//
// The analyzers in the subpackages prove invariants the paper's platform
// depends on (16-bit bus arithmetic, bit-reproducible evaluation,
// partial-result error contracts, monitor reuse hygiene); see each
// subpackage's Doc string and DESIGN.md for the mapping.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Run inspects a single package via
// the Pass and reports findings through pass.Report; the returned value is
// unused by the current drivers but kept for interface parity with
// x/tools.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //trnglint:allow waivers. It must be a valid identifier.
	Name string
	// Doc is the analyzer's documentation, shown by `trnglint -help`.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Directives holds the package's parsed //trnglint: comments
	// (markers such as deterministic/bus16 and per-line waivers).
	Directives *Directives
	// Hot is the //trnglint:hotpath annotation index the perflint
	// analyzers resolve cross-package callees against. Never nil when
	// the pass was built by Run: module-wide when the driver supplied
	// Unit.Hot, otherwise covering just this package.
	Hot *HotIndex

	Report func(Diagnostic)
}

// HotFuncs returns the hot-path closure of the pass's package: every
// function annotated //trnglint:hotpath plus the same-package functions
// transitively called from one at unwaived call sites (see HotClosure).
func (p *Pass) HotFuncs() map[*types.Func]*ast.FuncDecl {
	u := &Unit{Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.TypesInfo}
	return HotClosure(u, p.Directives, p.Hot)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// Unit is the loader-agnostic view of one loaded package that Run needs.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Hot optionally carries a module-wide //trnglint:hotpath index so
	// the perflint analyzers resolve cross-package hot callees. Drivers
	// that load whole modules populate it from every loaded package;
	// when nil, Run builds one covering this unit's files only.
	Hot *HotIndex
}

// Run executes one analyzer over one package and returns its diagnostics
// with waived findings already removed and the remainder sorted by
// position. Both cmd/trnglint and the analysistest harness go through
// this function, so a //trnglint:widen or //trnglint:allow directive
// behaves identically under the golden tests and in CI.
func Run(u *Unit, a *Analyzer) ([]Diagnostic, error) {
	dirs := ParseDirectives(u.Fset, u.Files)
	hot := u.Hot
	if hot == nil {
		hot = NewHotIndex()
		hot.AddPackage(u.Files, u.Info)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:   a,
		Fset:       u.Fset,
		Files:      u.Files,
		Pkg:        u.Pkg,
		TypesInfo:  u.Info,
		Directives: dirs,
		Hot:        hot,
		Report:     func(d Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	kept := diags[:0]
	for _, d := range diags {
		if !dirs.Waived(u.Fset, d.Pos, a.Name) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// WithStack walks the AST rooted at root in depth-first order, calling fn
// for every node with the stack of ancestors (outermost first, root
// included, n last). Returning false prunes the subtree below n.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// ast.Inspect delivers no pop event for pruned subtrees.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}
