package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //trnglint: comment grammar. Directives are ordinary line comments
// and therefore greppable:
//
//	//trnglint:bus16
//	    Package marker: the package models the paper's 16-bit data bus,
//	    so the regwidth analyzer enforces masked arithmetic in it.
//
//	//trnglint:deterministic
//	    Package marker: the package must be a bit-reproducible function
//	    of its inputs and seeds; the determinism analyzer enforces it.
//
//	//trnglint:widen <reason>
//	    Line waiver for regwidth. Placed on the flagged line or on the
//	    line immediately above it. The reason is mandatory — a bare
//	    //trnglint:widen does not waive anything.
//
//	//trnglint:allow <analyzer> <reason>
//	    Generic line waiver for any analyzer, same placement and
//	    mandatory-reason rule.
//
//	//trnglint:detached <reason>
//	    Line waiver for gorolife: the go statement on this line (or the
//	    line below) intentionally spawns a goroutine with no join/quit
//	    path. The reason is mandatory.
//
//	//trnglint:alloc <reason>
//	    Line waiver for the perflint family (noalloc, hotcall, nodefer)
//	    and the escapecheck compiler cross-check: the allocation, cold
//	    call, or scheduling construct on this line is a deliberate part
//	    of the hot path's contract. A waived call site also stops the
//	    hot-path closure (hotpath.go) from following the callee, so one
//	    waiver marks the boundary where hot code deliberately hands off
//	    to cold code. The reason is mandatory.
//
// Further verbs are annotations rather than waivers and are parsed from
// the declarations they document, not from this line-indexed table —
// guardedby/holds by CollectConcAnnotations (concann.go), hotpath by
// HotIndex.AddPackage (hotpath.go):
//
//	//trnglint:guardedby <mutex>
//	    On a struct field: the field may only be read or written while
//	    the named sibling mutex (dotted paths like pool.mu reach through
//	    struct-typed fields) is held. Enforced by the guardedby analyzer.
//
//	//trnglint:holds <mutex>
//	    On a function or method: callers must hold the named mutex of the
//	    receiver (or a package-level mutex). Assumed inside the body,
//	    checked at every call site.
//
//	//trnglint:hotpath
//	    On a function or method: the body is a line-rate hot path that
//	    must stay allocation-free and latency-predictable. The perflint
//	    analyzers (noalloc, hotcall, nodefer) check the annotated body
//	    and every same-package function it transitively calls; the
//	    escapecheck command cross-checks the compiler's escape analysis
//	    over the same set.
const directivePrefix = "//trnglint:"

// Directives is the parsed set of //trnglint: comments of one package.
type Directives struct {
	markers map[string]bool
	// waivers maps file name -> line -> waived analyzer names.
	waivers map[string]map[int][]string
}

// ParseDirectives scans every comment in files for //trnglint: directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		markers: make(map[string]bool),
		waivers: make(map[string]map[int][]string),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d.parseComment(fset, c)
			}
		}
	}
	return d
}

func (d *Directives) parseComment(fset *token.FileSet, c *ast.Comment) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return
	}
	body := strings.TrimPrefix(c.Text, directivePrefix)
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return
	}
	verb, rest := fields[0], fields[1:]
	switch verb {
	case "bus16", "deterministic":
		d.markers[verb] = true
	case "widen":
		// Shorthand for "allow regwidth <reason>"; the reason is
		// mandatory so every waiver documents itself.
		if len(rest) > 0 {
			d.addWaiver(fset, c.Pos(), "regwidth")
		}
	case "allow":
		if len(rest) >= 2 { // analyzer name plus a reason
			d.addWaiver(fset, c.Pos(), rest[0])
		}
	case "detached":
		// Shorthand for "allow gorolife <reason>"; the reason is
		// mandatory so every detached goroutine documents itself.
		if len(rest) > 0 {
			d.addWaiver(fset, c.Pos(), "gorolife")
		}
	case "alloc":
		// One waiver covers the whole perflint family plus the compiler
		// escape cross-check: whichever analyzer flags the line, the
		// deliberate allocation/handoff is documented exactly once.
		if len(rest) > 0 {
			for _, name := range []string{"noalloc", "hotcall", "nodefer", "escapecheck"} {
				d.addWaiver(fset, c.Pos(), name)
			}
		}
	}
}

func (d *Directives) addWaiver(fset *token.FileSet, pos token.Pos, analyzer string) {
	p := fset.Position(pos)
	byLine := d.waivers[p.Filename]
	if byLine == nil {
		byLine = make(map[int][]string)
		d.waivers[p.Filename] = byLine
	}
	byLine[p.Line] = append(byLine[p.Line], analyzer)
}

// HasMarker reports whether the package declares the named marker
// (e.g. "deterministic", "bus16") in any of its files.
func (d *Directives) HasMarker(name string) bool { return d.markers[name] }

// Waived reports whether a diagnostic from the named analyzer at pos is
// suppressed by a waiver on the same line or the line immediately above.
func (d *Directives) Waived(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	return d.WaivedLine(p.Filename, p.Line, analyzer)
}

// WaivedLine is Waived for callers that hold a file/line pair instead of a
// token.Pos — cmd/escapecheck correlates compiler diagnostics, which carry
// positions in go-build's own coordinates, against the waiver table.
func (d *Directives) WaivedLine(file string, line int, analyzer string) bool {
	byLine := d.waivers[file]
	if byLine == nil {
		return false
	}
	for _, l := range []int{line, line - 1} {
		for _, name := range byLine[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}
