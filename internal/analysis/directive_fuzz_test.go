package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzParseDirectives embeds arbitrary comment text into a minimal Go file
// and checks the directive parser's invariants: it is deterministic, it
// never recognises a marker or waiver unless the comment really starts with
// the //trnglint: prefix, markers come only from the two-marker vocabulary,
// and every waiver traces back to an analyzer name the source spelled out
// (with "widen" desugaring to "regwidth").
func FuzzParseDirectives(f *testing.F) {
	f.Add("//trnglint:bus16")
	f.Add("//trnglint:deterministic")
	f.Add("//trnglint:widen the hardware result register is 32 bits wide")
	f.Add("//trnglint:widen")
	f.Add("//trnglint:allow errdrop checked by the caller")
	f.Add("//trnglint:allow errdrop")
	f.Add("//trnglint: bus16")
	f.Add("// trnglint:bus16")
	f.Add("//trnglint:bus16 trailing words")
	f.Add("//trnglint:allow\tregwidth\treason")
	f.Add("//trnglint:widen\x00nul")
	f.Add("//not a directive at all")
	f.Add("//trnglint:")
	f.Add("//trnglint:unknownverb argument")
	f.Add("//trnglint:allow  doubled   spaces here")

	f.Fuzz(func(t *testing.T, comment string) {
		// Keep the comment a single line so it stays one *ast.Comment;
		// otherwise the fuzzer is just exploring the Go parser.
		if i := strings.IndexAny(comment, "\r\n"); i >= 0 {
			comment = comment[:i]
		}
		src := "package p\n\n" + comment + "\nvar X = 1\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip() // not valid Go once embedded; parser's problem, not ours
		}

		d := ParseDirectives(fset, []*ast.File{file})

		// Determinism: a second parse of the same input agrees exactly.
		d2 := ParseDirectives(fset, []*ast.File{file})
		for _, m := range []string{"bus16", "deterministic"} {
			if d.HasMarker(m) != d2.HasMarker(m) {
				t.Fatalf("marker %q nondeterministic", m)
			}
		}

		// Collect every comment the parser actually saw, post-parse: the
		// parser may normalise or split what we embedded.
		var comments []string
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				comments = append(comments, c.Text)
			}
		}
		anyDirective := false
		for _, c := range comments {
			if strings.HasPrefix(c, directivePrefix) {
				anyDirective = true
			}
		}

		// No marker without the prefix, and only the two known markers
		// can ever be set.
		if !anyDirective {
			if d.HasMarker("bus16") || d.HasMarker("deterministic") {
				t.Fatalf("marker set with no //trnglint: comment in %q", comment)
			}
		}
		for _, m := range []string{"widen", "allow", "trnglint", ""} {
			if d.HasMarker(m) {
				t.Fatalf("vocabulary leak: marker %q set by %q", m, comment)
			}
		}

		// Every waiver line must be justified by a directive comment that
		// names the analyzer: widen → regwidth, allow <name> <reason> → name.
		// Probe the whole file line range for both the spelled analyzers and
		// a canary analyzer no comment could have named.
		lineCount := strings.Count(src, "\n") + 1
		for line := 1; line <= lineCount; line++ {
			pos := posAtLine(fset, file, line)
			if pos == token.NoPos {
				continue
			}
			if d.Waived(fset, pos, "no-such-analyzer-canary") {
				t.Fatalf("waiver for unnamed analyzer at line %d from %q", line, comment)
			}
			for _, name := range []string{"regwidth", "errdrop", "determinism"} {
				if !d.Waived(fset, pos, name) {
					continue
				}
				// Waived matches the same line or the line above; the
				// directive must sit on one of those two lines.
				if !directiveNames(comments, fset, file, line, name) &&
					!directiveNames(comments, fset, file, line-1, name) {
					t.Fatalf("waiver for %q at line %d not traceable to a directive in %q",
						name, line, comment)
				}
			}
		}
	})
}

// posAtLine returns some token.Pos on the given 1-based line of the file,
// or NoPos when the line is out of range.
func posAtLine(fset *token.FileSet, file *ast.File, line int) token.Pos {
	tf := fset.File(file.Pos())
	if line < 1 || line > tf.LineCount() {
		return token.NoPos
	}
	return tf.LineStart(line)
}

// directiveNames reports whether a //trnglint: directive on the given line
// waives the named analyzer per the written grammar.
func directiveNames(comments []string, fset *token.FileSet, file *ast.File, line int, analyzer string) bool {
	tf := fset.File(file.Pos())
	if line < 1 || line > tf.LineCount() {
		return false
	}
	// Re-derive which comments sit on that line by re-walking the AST.
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if fset.Position(c.Pos()).Line != line {
				continue
			}
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(c.Text, directivePrefix))
			if len(fields) == 0 {
				continue
			}
			switch fields[0] {
			case "widen":
				if analyzer == "regwidth" && len(fields) > 1 {
					return true
				}
			case "allow":
				if len(fields) >= 3 && fields[1] == analyzer {
					return true
				}
			}
		}
	}
	return false
}
