package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the lock half of the flow-sensitive engine: where flow.go
// tracks per-variable value intervals, the lock walker tracks the set of
// mutexes provably held at each program point. The two walkers share the
// same precision philosophy — a fact is recorded only when it is true on
// EVERY path reaching the point:
//
//   - x.mu.Lock() / RLock() adds the mutex to the set; Unlock() / RUnlock()
//     removes it; defer x.mu.Unlock() keeps it held through every return
//     (including early ones);
//   - if/else forks the set and joins both exits by intersection; a branch
//     that provably terminates (return, panic, break/continue, Fatal-style
//     call) drops out of the join, which is what makes the
//     lock/check/unlock-and-return idiom prove clean;
//   - loops are entered and left with the entry set minus every mutex
//     released anywhere in the body (a later iteration may begin after that
//     release), and locks acquired inside a loop never survive it;
//   - switch/type-switch join the surviving case exits by intersection,
//     plus the entry set when there is no default (the tag may match no
//     case); select joins only case exits (one always runs);
//   - a function literal spawned by go or stored for later runs with an
//     EMPTY set (the spawner's locks are not its locks), while deferred and
//     immediately-invoked literals inherit the current set;
//   - goto makes the whole function unanalyzable: the walker visits every
//     node with an empty set and reports nothing through Provable, so
//     analyzers can choose silence over false findings.
//
// Lock identity is the *types.Var of the mutex — the struct field or the
// (package-level or local) variable — NOT the instance: p.mu and s.pool.mu
// are the same lock to this analysis. That deliberately conflates distinct
// instances of one type (two Pools "share" Pool.mu here), which is the
// standard static-analysis compromise: it keeps the guardedby proof
// independent of aliasing, at the cost of accepting a lock on the wrong
// instance. The fleet's locks are one-instance-per-owner, so nothing is
// lost there; code that locks sibling instances by rank needs a waiver.

// LockSet is the set of mutexes held at one program point.
type LockSet struct {
	held map[types.Object]token.Pos
}

// Holds reports whether the mutex identified by obj is in the set.
func (s *LockSet) Holds(obj types.Object) bool {
	if s == nil || obj == nil {
		return false
	}
	_, ok := s.held[obj]
	return ok
}

// Empty reports whether no mutex is held.
func (s *LockSet) Empty() bool { return s == nil || len(s.held) == 0 }

// Held returns the held mutexes ordered by acquisition position (ties by
// name), so diagnostics and lock-graph edges are deterministic.
func (s *LockSet) Held() []types.Object {
	if s == nil {
		return nil
	}
	out := make([]types.Object, 0, len(s.held))
	for obj := range s.held {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := s.held[out[i]], s.held[out[j]]
		if pi != pj {
			return pi < pj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// AcquiredAt returns the position of the acquisition that put obj in the
// set (token.NoPos for assumed locks).
func (s *LockSet) AcquiredAt(obj types.Object) token.Pos {
	if s == nil {
		return token.NoPos
	}
	return s.held[obj]
}

// LockVisitor receives every node of the walked body in source order with
// the lock set current at that point. The set it sees at a Lock() call is
// the PRE-acquire set (what lockorder needs for graph edges). provable is
// false when the enclosing function contains goto — the set is then always
// empty and analyzers should not report on it. Returning false prunes the
// subtree below n.
type LockVisitor func(n ast.Node, held *LockSet, provable bool) bool

// LockWalk walks one function body maintaining the flow-sensitive lock
// set. assumed seeds the set (the //trnglint:holds precondition); its
// members carry token.NoPos.
func LockWalk(info *types.Info, body *ast.BlockStmt, assumed []types.Object, visit LockVisitor) {
	w := &lockWalker{
		info:  info,
		visit: visit,
		held:  make(map[types.Object]token.Pos),
	}
	for _, obj := range assumed {
		if obj != nil {
			w.held[obj] = token.NoPos
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			w.frozen = true
		}
		return true
	})
	if w.frozen {
		w.held = make(map[types.Object]token.Pos)
	}
	w.walkStmt(body)
}

type lockWalker struct {
	info  *types.Info
	visit LockVisitor

	held       map[types.Object]token.Pos
	terminated bool
	frozen     bool // body contains goto: empty set, provable=false
}

func (w *lockWalker) set() *LockSet { return &LockSet{held: w.held} }

func (w *lockWalker) acquire(obj types.Object, pos token.Pos) {
	if obj != nil && !w.frozen {
		w.held[obj] = pos
	}
}

func (w *lockWalker) release(obj types.Object) {
	if obj != nil {
		delete(w.held, obj)
	}
}

func cloneLocks(m map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// joinLocks keeps only mutexes held on both paths.
func joinLocks(a, b map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	for obj, pos := range a {
		if _, ok := b[obj]; ok {
			out[obj] = pos
		}
	}
	return out
}

// visitTree delivers parent and the expression trees under it to the
// visitor with the set as it stands NOW (before the statement's own lock
// effects are applied).
func (w *lockWalker) visitTree(parent ast.Node, exprs ...ast.Expr) {
	if !w.visit(parent, w.set(), !w.frozen) {
		return
	}
	for _, e := range exprs {
		if e != nil {
			w.walkExpr(e, exprLater)
		}
	}
}

// How a function literal encountered in expression position will run,
// which decides the lock set its body is walked with.
type litMode int

const (
	exprLater litMode = iota // stored/passed: runs at an unknown time — empty set
	exprNow                  // immediately invoked or deferred: inherits the current set
	exprGo                   // spawned: a different goroutine — empty set
)

// walkExpr visits e and its subexpressions. Function literals are walked
// as independent bodies whose entry set depends on how they run.
func (w *lockWalker) walkExpr(e ast.Expr, mode litMode) {
	if lit, ok := e.(*ast.FuncLit); ok {
		inner := &lockWalker{info: w.info, visit: w.visit, frozen: w.frozen,
			held: make(map[types.Object]token.Pos)}
		if mode == exprNow {
			inner.held = cloneLocks(w.held)
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
				inner.frozen = true
			}
			return true
		})
		if inner.frozen {
			inner.held = make(map[types.Object]token.Pos)
		}
		if !w.visit(lit, w.set(), !w.frozen) {
			return
		}
		inner.walkStmt(lit.Body)
		return
	}
	if !w.visit(e, w.set(), !w.frozen) {
		return
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		w.walkExpr(e.X, mode)
	case *ast.UnaryExpr:
		w.walkExpr(e.X, exprLater)
	case *ast.StarExpr:
		w.walkExpr(e.X, exprLater)
	case *ast.BinaryExpr:
		w.walkExpr(e.X, exprLater)
		w.walkExpr(e.Y, exprLater)
	case *ast.CallExpr:
		// An immediately-invoked literal runs here and now, with the
		// caller's locks.
		w.walkExpr(e.Fun, exprNow)
		for _, a := range e.Args {
			w.walkExpr(a, exprLater)
		}
	case *ast.IndexExpr:
		w.walkExpr(e.X, exprLater)
		w.walkExpr(e.Index, exprLater)
	case *ast.IndexListExpr:
		w.walkExpr(e.X, exprLater)
		for _, ix := range e.Indices {
			w.walkExpr(ix, exprLater)
		}
	case *ast.SliceExpr:
		w.walkExpr(e.X, exprLater)
		for _, ix := range []ast.Expr{e.Low, e.High, e.Max} {
			if ix != nil {
				w.walkExpr(ix, exprLater)
			}
		}
	case *ast.SelectorExpr:
		w.walkExpr(e.X, exprLater)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, exprLater)
	case *ast.KeyValueExpr:
		w.walkExpr(e.Key, exprLater)
		w.walkExpr(e.Value, exprLater)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.walkExpr(el, exprLater)
		}
	}
}

// releasedIn collects every mutex released by a non-deferred Unlock
// anywhere in n, excluding nested function literals (their releases happen
// on their own activation, not the enclosing loop's iterations).
func (w *lockWalker) releasedIn(n ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if obj, acquire, ok := LockOpOf(w.info, n); ok && !acquire {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.walkStmt(st)
		}

	case *ast.ExprStmt:
		w.visitTree(s, s.X)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if obj, acquire, ok := LockOpOf(w.info, call); ok {
				if acquire {
					w.acquire(obj, call.Pos())
				} else {
					w.release(obj)
				}
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := w.info.ObjectOf(id).(*types.Builtin); isBuiltin {
					w.terminated = true
				}
			}
		}

	case *ast.DeferStmt:
		// A deferred literal runs at return time; on the paths that matter
		// to a deferred unlock the locks of this point are still held, so
		// it inherits the current set. A deferred Unlock itself is NOT a
		// release here — that is precisely what keeps the lock held through
		// early returns.
		if !w.visit(s, w.set(), !w.frozen) {
			return
		}
		w.walkExpr(s.Call.Fun, exprNow)
		for _, a := range s.Call.Args {
			w.walkExpr(a, exprLater)
		}

	case *ast.GoStmt:
		if !w.visit(s, w.set(), !w.frozen) {
			return
		}
		w.walkExpr(s.Call.Fun, exprGo)
		for _, a := range s.Call.Args {
			w.walkExpr(a, exprLater)
		}

	case *ast.SendStmt:
		w.visitTree(s, s.Chan, s.Value)

	case *ast.IncDecStmt:
		w.visitTree(s, s.X)

	case *ast.AssignStmt:
		exprs := append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
		w.visitTree(s, exprs...)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.visitTree(s, vs.Values...)
				}
			}
		}

	case *ast.ReturnStmt:
		w.visitTree(s, s.Results...)
		w.terminated = true

	case *ast.BranchStmt:
		// break/continue/goto leave this region: the path no longer reaches
		// the statements that follow, so it drops out of joins exactly like
		// a return. (goto additionally froze the whole walk up front.)
		if !w.visit(s, w.set(), !w.frozen) {
			return
		}
		if s.Tok != token.FALLTHROUGH {
			w.terminated = true
		}

	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.visitTree(s, s.Cond)
		base := w.held
		baseTerm := w.terminated
		w.held = cloneLocks(base)
		w.walkStmt(s.Body)
		thenHeld, thenTerm := w.held, w.terminated
		w.held, w.terminated = cloneLocks(base), baseTerm
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
		elseHeld, elseTerm := w.held, w.terminated
		switch {
		case thenTerm && elseTerm:
			w.held, w.terminated = elseHeld, true
		case thenTerm:
			w.held, w.terminated = elseHeld, baseTerm
		case elseTerm:
			w.held, w.terminated = thenHeld, baseTerm
		default:
			w.held, w.terminated = joinLocks(thenHeld, elseHeld), baseTerm
		}

	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.loopBody(s, s.Cond, nil, func() {
			w.walkStmt(s.Body)
			if s.Post != nil {
				w.walkStmt(s.Post)
			}
		})

	case *ast.RangeStmt:
		w.loopBody(s, s.X, []ast.Expr{s.Key, s.Value}, func() {
			w.walkStmt(s.Body)
		})

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.visitTree(s, s.Tag)
		} else {
			w.visitTree(s)
		}
		w.walkCases(s.Body, hasDefaultClause(s.Body), func(c ast.Stmt) []ast.Stmt {
			cc := c.(*ast.CaseClause)
			w.visitTree(cc, cc.List...)
			return cc.Body
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmt(s.Assign)
		w.walkCases(s.Body, hasDefaultClause(s.Body), func(c ast.Stmt) []ast.Stmt {
			cc := c.(*ast.CaseClause)
			w.visitTree(cc)
			return cc.Body
		})

	case *ast.SelectStmt:
		// A select always runs exactly one of its cases (an empty select
		// blocks forever), so the join covers only case exits.
		w.visitTree(s)
		if len(s.Body.List) == 0 {
			w.terminated = true
			return
		}
		w.walkCases(s.Body, true, func(c ast.Stmt) []ast.Stmt {
			cc := c.(*ast.CommClause)
			w.visitTree(cc)
			if cc.Comm != nil {
				w.walkStmt(cc.Comm)
			}
			return cc.Body
		})

	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

// loopBody walks one loop: entered and left with the entry set minus every
// mutex the body may release, so no iteration (including the zeroth and
// the post-release tail of a later one) is credited with a lock it might
// not hold.
func (w *lockWalker) loopBody(loop ast.Node, header ast.Expr, extra []ast.Expr, body func()) {
	for obj := range w.releasedIn(loop) {
		w.release(obj)
	}
	entry := cloneLocks(w.held)
	entryTerm := w.terminated
	exprs := append([]ast.Expr{header}, extra...)
	w.visitTree(loop, exprs...)
	body()
	w.held, w.terminated = entry, entryTerm
}

// walkCases walks each clause from the pre-switch set and joins the
// surviving exits; mayFallThrough ("no default") adds the entry set to the
// join because the construct may run no clause at all.
func (w *lockWalker) walkCases(body *ast.BlockStmt, exhaustive bool, clause func(ast.Stmt) []ast.Stmt) {
	base := cloneLocks(w.held)
	baseTerm := w.terminated
	var joined map[types.Object]token.Pos
	allTerm := true
	for _, c := range body.List {
		w.held, w.terminated = cloneLocks(base), baseTerm
		stmts := clause(c)
		for _, st := range stmts {
			w.walkStmt(st)
		}
		if !w.terminated {
			allTerm = false
			if joined == nil {
				joined = cloneLocks(w.held)
			} else {
				joined = joinLocks(joined, w.held)
			}
		}
	}
	if !exhaustive {
		allTerm = false
		if joined == nil {
			joined = cloneLocks(base)
		} else {
			joined = joinLocks(joined, base)
		}
	}
	switch {
	case len(body.List) == 0 && exhaustive:
		w.held, w.terminated = base, baseTerm
	case allTerm:
		w.held, w.terminated = make(map[types.Object]token.Pos), true
	default:
		w.held, w.terminated = joined, baseTerm
	}
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// ---- lock identity ----

// LockOpOf classifies call as a mutex acquire (Lock/RLock) or release
// (Unlock/RUnlock) on a sync.Mutex or sync.RWMutex and returns the lock's
// identity object. TryLock/TryRLock are deliberately NOT acquires — their
// success is conditional and this walker does not track booleans. RLock
// counts as a full hold: the engine does not yet distinguish read from
// write accesses, which is conservative for readers and documented as a
// limitation for writers under RLock.
func LockOpOf(info *types.Info, call *ast.CallExpr) (obj types.Object, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	fn, _ := info.ObjectOf(sel.Sel).(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return nil, false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isSyncMutexType(recv.Type()) {
		return nil, false, false
	}
	obj = MutexObject(info, sel)
	if obj == nil {
		return nil, false, false
	}
	return obj, acquire, true
}

// MutexObject resolves the identity object of the mutex a method selector
// (x.mu.Lock's x.mu, or t.Lock through an embedded Mutex) denotes: the
// innermost field *types.Var, or the variable itself for plain mutex
// variables. nil when the expression has no stable identity (map element,
// function result, ...).
func MutexObject(info *types.Info, methodSel *ast.SelectorExpr) types.Object {
	// Through an embedded mutex (t.Lock()) the selection's index path ends
	// with the method; the field step before it is the identity.
	if s, ok := info.Selections[methodSel]; ok && s.Kind() == types.MethodVal {
		if idx := s.Index(); len(idx) > 1 {
			return fieldByIndexPath(s.Recv(), idx[:len(idx)-1])
		}
	}
	return mutexExprObject(info, methodSel.X)
}

// mutexExprObject resolves the identity of a mutex-valued expression.
func mutexExprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return fieldByIndexPath(s.Recv(), s.Index())
		}
		// Package-qualified variable (pkg.Mu).
		if v, ok := info.ObjectOf(e.Sel).(*types.Var); ok {
			return v
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return mutexExprObject(info, e.X)
		}
	case *ast.StarExpr:
		return mutexExprObject(info, e.X)
	}
	return nil
}

// fieldByIndexPath walks a selection index path from a receiver type to
// the final field's object.
func fieldByIndexPath(t types.Type, idx []int) types.Object {
	var fld *types.Var
	for _, i := range idx {
		t = derefType(t)
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return nil
		}
		fld = st.Field(i)
		t = fld.Type()
	}
	if fld == nil {
		return nil
	}
	return fld
}

func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isSyncMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	t = derefType(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
