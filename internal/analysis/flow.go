package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the statement half of the flow-sensitive dataflow engine:
// a source-order walk over one function body that maintains per-variable
// value intervals (interval.go is the expression half) and hands every
// expression node to a visitor together with the environment current at
// that point. Precision policy, chosen so a refinement is NEVER narrower
// than the true value set:
//
//   - straight-line assignments, compound assignments, ++/-- and var
//     declarations refine;
//   - if/else forks the environment and joins both exits;
//   - loops (for/range) invalidate everything assigned anywhere in the
//     loop before the body is walked, and leave it invalidated after;
//   - switch/type-switch/select likewise invalidate everything assigned
//     in any case up front (a mid-case break could otherwise exit with a
//     state the per-case walk no longer remembers), then walk each case
//     on its own copy;
//   - variables captured and assigned by a closure, or address-taken, are
//     never refined (the mutation site is invisible to straight-line
//     flow); a function containing goto is walked with refinement
//     disabled entirely;
//   - package-level variables are never refined (any call may write
//     them).
type flowWalker struct {
	pkg   *types.Package
	info  *types.Info
	visit FlowVisitor

	env      map[types.Object]Interval
	noRefine map[types.Object]bool
	frozen   bool // body contains goto: no refinement at all
}

// FlowVisitor receives every statement and expression node of the walked
// body in source order. stack holds the ancestry within the current
// statement (statement first, n last); ev evaluates expressions under the
// environment at the statement's entry. Returning false prunes the
// subtree below n.
type FlowVisitor func(n ast.Node, stack []ast.Node, ev *Evaluator) bool

// FlowWalk walks one function body with flow-sensitive intervals.
// Function literals encountered inside are walked as independent bodies
// with fresh environments.
func FlowWalk(pkg *types.Package, info *types.Info, body *ast.BlockStmt, visit FlowVisitor) {
	w := &flowWalker{
		pkg:      pkg,
		info:     info,
		visit:    visit,
		env:      make(map[types.Object]Interval),
		noRefine: make(map[types.Object]bool),
	}
	w.prescan(body)
	w.walkStmt(body)
}

// prescan blacklists variables whose value can change behind the
// straight-line walk's back.
func (w *flowWalker) prescan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.GOTO {
				w.frozen = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := w.info.ObjectOf(id); obj != nil {
						w.noRefine[obj] = true
					}
				}
			}
		case *ast.SelectorExpr:
			// A pointer-receiver method call or method value takes the
			// receiver's address implicitly: m.widen() can mutate m
			// exactly like (&m).widen() would, so the receiver is as
			// untrustworthy as an explicitly address-taken variable.
			if sel, ok := w.info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				recv := sel.Obj().Type().(*types.Signature).Recv()
				_, ptrRecv := recv.Type().Underlying().(*types.Pointer)
				if ptrRecv || sel.Indirect() {
					if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
						if obj := w.info.ObjectOf(id); obj != nil {
							w.noRefine[obj] = true
						}
					}
				}
			}
		case *ast.FuncLit:
			for obj := range w.assignedIn(n) {
				w.noRefine[obj] = true
			}
		}
		return true
	})
}

// assignedIn collects every object assigned (in any form) within n.
func (w *flowWalker) assignedIn(n ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := w.info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.RangeStmt:
			if n.Key != nil {
				record(n.Key)
			}
			if n.Value != nil {
				record(n.Value)
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				record(name)
			}
		}
		return true
	})
	return out
}

func (w *flowWalker) evaluator() *Evaluator {
	return &Evaluator{info: w.info, env: w.env}
}

// set records a refinement for obj, provided obj is a local variable the
// walk can trust.
func (w *flowWalker) set(obj types.Object, iv Interval) {
	if obj == nil || w.frozen || w.noRefine[obj] {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Name() == "_" {
		return
	}
	if w.pkg != nil && obj.Parent() == w.pkg.Scope() {
		return // package-level: any call may rewrite it
	}
	if typeInterval(obj.Type()).contains(iv) && iv.contains(typeInterval(obj.Type())) {
		delete(w.env, obj) // no information beyond the type
		return
	}
	w.env[obj] = iv
}

func (w *flowWalker) clear(obj types.Object) {
	if obj != nil {
		delete(w.env, obj)
	}
}

func (w *flowWalker) invalidate(assigned map[types.Object]bool) {
	for obj := range assigned {
		delete(w.env, obj)
	}
}

func cloneEnv(env map[types.Object]Interval) map[types.Object]Interval {
	out := make(map[types.Object]Interval, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// joinEnv keeps only refinements present on both paths, joined. A
// variable refined on one path but not the other is typeRange there, so
// the join is typeRange: dropped.
func joinEnv(a, b map[types.Object]Interval) map[types.Object]Interval {
	out := make(map[types.Object]Interval)
	for obj, iva := range a {
		if ivb, ok := b[obj]; ok {
			out[obj] = iva.Join(ivb)
		}
	}
	return out
}

// lhsObject resolves a simple identifier assignment target.
func (w *flowWalker) lhsObject(e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return w.info.ObjectOf(id)
	}
	return nil
}

// visitTree delivers parent and the expression trees under it to the
// visitor, with the environment as it stands NOW (before the statement's
// own effects).
func (w *flowWalker) visitTree(parent ast.Node, exprs ...ast.Expr) {
	stack := []ast.Node{parent}
	if !w.visit(parent, stack, w.evaluator()) {
		return
	}
	for _, e := range exprs {
		if e != nil {
			w.walkExpr(e, stack)
		}
	}
}

// walkExpr visits e and its subexpressions. Function literals start an
// independent flow walk of their own body.
func (w *flowWalker) walkExpr(e ast.Expr, stack []ast.Node) {
	if lit, ok := e.(*ast.FuncLit); ok {
		FlowWalk(w.pkg, w.info, lit.Body, w.visit)
		return
	}
	stack = append(stack, e)
	if !w.visit(e, stack, w.evaluator()) {
		return
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		w.walkExpr(e.X, stack)
	case *ast.UnaryExpr:
		w.walkExpr(e.X, stack)
	case *ast.StarExpr:
		w.walkExpr(e.X, stack)
	case *ast.BinaryExpr:
		w.walkExpr(e.X, stack)
		w.walkExpr(e.Y, stack)
	case *ast.CallExpr:
		w.walkExpr(e.Fun, stack)
		for _, a := range e.Args {
			w.walkExpr(a, stack)
		}
	case *ast.IndexExpr:
		w.walkExpr(e.X, stack)
		w.walkExpr(e.Index, stack)
	case *ast.IndexListExpr:
		w.walkExpr(e.X, stack)
		for _, ix := range e.Indices {
			w.walkExpr(ix, stack)
		}
	case *ast.SliceExpr:
		w.walkExpr(e.X, stack)
		for _, ix := range []ast.Expr{e.Low, e.High, e.Max} {
			if ix != nil {
				w.walkExpr(ix, stack)
			}
		}
	case *ast.SelectorExpr:
		w.walkExpr(e.X, stack)
	case *ast.TypeAssertExpr:
		w.walkExpr(e.X, stack)
	case *ast.KeyValueExpr:
		w.walkExpr(e.Key, stack)
		w.walkExpr(e.Value, stack)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.walkExpr(el, stack)
		}
	}
}

func (w *flowWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.walkStmt(st)
		}

	case *ast.ExprStmt:
		w.visitTree(s, s.X)

	case *ast.SendStmt:
		w.visitTree(s, s.Chan, s.Value)

	case *ast.GoStmt:
		w.visitTree(s, s.Call)

	case *ast.DeferStmt:
		w.visitTree(s, s.Call)

	case *ast.ReturnStmt:
		w.visitTree(s, s.Results...)

	case *ast.IncDecStmt:
		w.visitTree(s, s.X)
		if obj := w.lhsObject(s.X); obj != nil {
			op := token.ADD
			if s.Tok == token.DEC {
				op = token.SUB
			}
			ev := w.evaluator()
			w.set(obj, ev.evalBinary(op, ev.Eval(s.X), Interval{1, 1}, obj.Type()))
		}

	case *ast.AssignStmt:
		exprs := append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
		w.visitTree(s, exprs...)
		ev := w.evaluator()
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			if len(s.Lhs) == len(s.Rhs) {
				// Evaluate every RHS under the pre-state, then commit —
				// parallel assignment semantics.
				vals := make([]Interval, len(s.Rhs))
				for i, r := range s.Rhs {
					vals[i] = ev.Eval(r)
				}
				for i, lhs := range s.Lhs {
					if obj := w.lhsObject(lhs); obj != nil {
						w.set(obj, fitToType(vals[i], obj.Type()))
					}
				}
			} else {
				for _, lhs := range s.Lhs {
					w.clear(w.lhsObject(lhs))
				}
			}
		default: // op=
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if obj := w.lhsObject(s.Lhs[0]); obj != nil {
					op := compoundOp(s.Tok)
					if op == token.ILLEGAL {
						w.clear(obj)
					} else {
						w.set(obj, ev.evalBinary(op, ev.Eval(s.Lhs[0]), ev.Eval(s.Rhs[0]), obj.Type()))
					}
				}
			}
		}

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			w.visitTree(s, vs.Values...)
			ev := w.evaluator()
			switch {
			case len(vs.Values) == len(vs.Names):
				for i, name := range vs.Names {
					if obj := w.info.ObjectOf(name); obj != nil {
						w.set(obj, fitToType(ev.Eval(vs.Values[i]), obj.Type()))
					}
				}
			case len(vs.Values) == 0:
				// Declared without initializer: the zero value.
				for _, name := range vs.Names {
					if obj := w.info.ObjectOf(name); obj != nil {
						if typeInterval(obj.Type()).contains(Interval{0, 0}) {
							w.set(obj, Interval{0, 0})
						}
					}
				}
			default:
				for _, name := range vs.Names {
					w.clear(w.info.ObjectOf(name))
				}
			}
		}

	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.visitTree(s, s.Cond)
		base := w.env
		w.env = cloneEnv(base)
		w.walkStmt(s.Body)
		thenOut := w.env
		w.env = cloneEnv(base)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
		w.env = joinEnv(thenOut, w.env)

	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		// Everything assigned anywhere in the loop is unknown on entry to
		// any iteration — and stays unknown after the loop, whose body may
		// have run zero or many times.
		w.invalidate(w.assignedIn(s))
		base := cloneEnv(w.env)
		if s.Cond != nil {
			w.visitTree(s, s.Cond)
		}
		w.walkStmt(s.Body)
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
		w.env = base

	case *ast.RangeStmt:
		w.visitTree(s, s.X, s.Key, s.Value)
		w.invalidate(w.assignedIn(s))
		base := cloneEnv(w.env)
		w.walkStmt(s.Body)
		w.env = base

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.visitTree(s, s.Tag)
		}
		w.invalidate(w.assignedIn(s.Body))
		base := w.env
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			w.env = cloneEnv(base)
			w.visitTree(cc, cc.List...)
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
		}
		w.env = base

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkStmt(s.Assign)
		w.invalidate(w.assignedIn(s.Body))
		base := w.env
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			w.env = cloneEnv(base)
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
		}
		w.env = base

	case *ast.SelectStmt:
		w.invalidate(w.assignedIn(s.Body))
		base := w.env
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			w.env = cloneEnv(base)
			if cc.Comm != nil {
				w.walkStmt(cc.Comm)
			}
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
		}
		w.env = base

	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

// compoundOp maps an op= token to its binary operator.
func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return token.ILLEGAL
}
