// Package atomicdemo is the golden suite for the atomicmix analyzer:
// typed-atomic fields (rule 1), plain/atomic mixing on ordinary fields
// (rule 2), and copies of atomic-bearing structs including the
// through-an-interface gap (rule 3).
package atomicdemo

import "sync/atomic"

type Stream struct {
	detached atomic.Bool
	offered  atomic.Int64
	// hits is accessed via atomic.AddInt64 in bump: an atomic location.
	hits int64
	// plainCount is never touched atomically: plain access is fine.
	plainCount int64
}

// ---- rule 1: atomic.* typed fields ----

func (s *Stream) goodMethodUse() bool {
	s.offered.Add(1)
	return s.detached.Load()
}

func goodAddressTake(s *Stream) *atomic.Int64 {
	return &s.offered // pointer hand-off keeps the protocol intact
}

func (s *Stream) badValueCopy() atomic.Bool {
	return s.detached // want `detached has atomic type atomic.Bool`
}

func (s *Stream) badOverwrite() {
	s.detached = atomic.Bool{} // want `detached has atomic type atomic.Bool`
}

func (s *Stream) badCopyIntoLocal() {
	d := s.offered // want `offered has atomic type atomic.Int64`
	_ = d.Load()
}

// ---- rule 2: plain access of an atomically-accessed field ----

func (s *Stream) bump() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *Stream) goodAtomicRead() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *Stream) badPlainRead() int64 {
	return s.hits // want `hits is accessed via sync/atomic elsewhere`
}

func (s *Stream) badPlainWrite() {
	s.hits = 0 // want `hits is accessed via sync/atomic elsewhere`
}

func (s *Stream) goodPlainField() int64 {
	s.plainCount++ // never atomic anywhere: no mixing
	return s.plainCount
}

func (s *Stream) waivedReset() {
	//trnglint:allow atomicmix pool recycle: no concurrent holders during reset
	s.hits = 0
}

// localCounterIdiom shows why locals are exempt: add-then-read-after-join
// is correct once the goroutines are joined.
func localCounterIdiom() int64 {
	var next int64
	done := make(chan struct{})
	go func() {
		atomic.AddInt64(&next, 1)
		close(done)
	}()
	<-done
	return next
}

// ---- rule 3: copies of atomic-bearing structs ----

type wrapper struct {
	inner Stream // nested: wrapper transitively contains atomics
}

func badDerefCopy(p *Stream) {
	v := *p // want `copy of atomicdemo.Stream, which contains atomic fields`
	v.plainCount++
}

func badStructAssign(a Stream) { // want `by-value parameter of atomicdemo.Stream`
	b := a // want `copy of atomicdemo.Stream`
	b.plainCount++
}

func badNestedCopy(w *wrapper) wrapper {
	return *w // want `copy of atomicdemo.wrapper, which contains atomic fields`
}

func sinkAny(v any) { _ = v }

func badInterfaceBoxing(p *Stream) {
	// vet -copylocks does not see this: the parameter is interface{}.
	sinkAny(*p) // want `copy of atomicdemo.Stream`
}

func goodPointerUses(p *Stream, w *wrapper) {
	sinkAny(p) // boxing the POINTER is fine
	q := p
	_ = q
	_ = &w.inner
}

func goodFreshValue() Stream {
	// Composite literals are construction, not copies.
	s := &Stream{plainCount: 1}
	s.plainCount++
	return Stream{}
}
