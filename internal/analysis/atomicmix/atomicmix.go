// Package atomicmix enforces the platform's atomic-publish discipline: a
// memory location either belongs to the atomic world or the plain world,
// never both. The fleet's lock-free paths (Stream.detached, the staging
// slot counter, per-stream accounting) are correct only because every
// access goes through sync/atomic — one plain load of a flag that is
// atomically stored elsewhere is exactly the unsynchronized fast-path
// read that made the PR 6 detach race. Three rules:
//
//  1. A field of an atomic.* type (atomic.Bool, atomic.Int64, ...) may
//     only be accessed by calling its methods or taking its address;
//     copying or overwriting the value bypasses the atomic protocol
//     (and smuggles the internal state across goroutines).
//
//  2. A struct field that is anywhere in the package accessed through a
//     sync/atomic function (atomic.LoadInt32(&s.n), atomic.AddInt64,
//     ...) is an atomic location: every plain read or write of the same
//     field is a finding. Locals are exempt — the
//     add-atomically-then-read-after-join worker-counter idiom is
//     correct and common.
//
//  3. A struct (transitively) containing atomic fields must not be
//     copied: dereference copies, value assignments from an existing
//     variable, by-value parameters, and by-value call arguments are
//     findings. Checking the argument rather than the parameter type is
//     what sees copies that enter through interface{} parameters, where
//     vet -copylocks goes blind.
//
// Intentional exceptions are waived in place with
// //trnglint:allow atomicmix <reason>.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags plain access to atomic locations and copies of
// atomic-bearing structs.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag plain loads/stores of fields accessed via sync/atomic (or of " +
		"atomic.* type) and copies of structs containing atomics",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	mixed := collectAtomicFields(pass)
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkFieldAccess(pass, mixed, n, stack)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopy(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopy(pass, v)
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					checkCopy(pass, arg)
				}
			case *ast.FuncDecl:
				checkParams(pass, n.Recv)
				checkParams(pass, n.Type.Params)
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkCopy(pass, r)
				}
			}
			return true
		})
	}
	return nil, nil
}

// collectAtomicFields finds every struct field the package accesses
// through a sync/atomic function, by scanning for atomic.XxxInt32(&s.f,
// ...) style calls.
func collectAtomicFields(pass *analysis.Pass) map[types.Object]bool {
	mixed := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods on atomic.* types are rule 1's turf
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := analysis.FieldObjectOf(pass.TypesInfo, sel); obj != nil {
					mixed[obj] = true
				}
			}
			return true
		})
	}
	return mixed
}

// checkFieldAccess applies rules 1 and 2 to one field selection.
func checkFieldAccess(pass *analysis.Pass, mixed map[types.Object]bool, sel *ast.SelectorExpr, stack []ast.Node) {
	field := analysis.FieldObjectOf(pass.TypesInfo, sel)
	if field == nil {
		return
	}
	isAtomicTyped := isAtomicType(field.Type())
	if !isAtomicTyped && !mixed[field] {
		return
	}
	// Allowed contexts: calling a method on the field (s.flag.Load() —
	// the parent selector resolves to a method with this selection as
	// receiver) and taking its address (&s.n for an atomic call or a
	// pointer hand-off).
	if len(stack) >= 2 {
		switch parent := stack[len(stack)-2].(type) {
		case *ast.SelectorExpr:
			if parent.X == sel {
				if _, ok := pass.ObjectOf(parent.Sel).(*types.Func); ok {
					return
				}
			}
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				return
			}
		}
	}
	if isAtomicTyped {
		pass.Reportf(sel.Sel.Pos(),
			"%s has atomic type %s: copying or overwriting the value bypasses the atomic protocol — "+
				"use its methods, or waive with //trnglint:allow atomicmix <reason>",
			field.Name(), typeShortName(field.Type()))
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"%s is accessed via sync/atomic elsewhere in this package: this plain access races with those — "+
			"use the atomic API here too, or waive with //trnglint:allow atomicmix <reason>",
		field.Name())
}

// checkCopy applies rule 3 to one value-context expression: an
// identifier, field selection, dereference, or index of an atomic-bearing
// struct type in copy position. Fresh values (composite literals, call
// results) and pointers are fine.
func checkCopy(pass *analysis.Pass, e ast.Expr) {
	switch un := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.StarExpr, *ast.IndexExpr:
	case *ast.SelectorExpr:
		// A copy of an atomic-typed FIELD is rule 1's finding; don't
		// report the same expression twice.
		if analysis.FieldObjectOf(pass.TypesInfo, un) != nil && isAtomicType(pass.TypeOf(e)) {
			return
		}
	default:
		return
	}
	t := pass.TypeOf(e)
	if t == nil || !structContainsAtomic(t, nil) {
		return
	}
	pass.Reportf(e.Pos(),
		"copy of %s, which contains atomic fields: the copy severs them from their publishers — "+
			"pass a pointer, or waive with //trnglint:allow atomicmix <reason>",
		typeShortName(t))
}

// checkParams flags by-value parameters and receivers of atomic-bearing
// struct types: every call would copy the atomics.
func checkParams(pass *analysis.Pass, fields *ast.FieldList) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		t := pass.TypeOf(f.Type)
		if t == nil || !structContainsAtomic(t, nil) {
			continue
		}
		pass.Reportf(f.Type.Pos(),
			"by-value parameter of %s, which contains atomic fields: every call copies them — "+
				"take a pointer, or waive with //trnglint:allow atomicmix <reason>",
			typeShortName(t))
	}
}

// isAtomicType reports whether t is one of the sync/atomic value types
// (Bool, Int32, Int64, Uint32, Uint64, Uintptr, Pointer[T], Value).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// structContainsAtomic reports whether t is an atomic.* type or a struct
// (or array of structs) transitively holding one. Pointers, slices, and
// maps stop the walk: copying a pointer to atomics is fine.
func structContainsAtomic(t types.Type, seen map[types.Type]bool) bool {
	if isAtomicType(t) {
		return true
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if structContainsAtomic(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return structContainsAtomic(u.Elem(), seen)
	}
	return false
}

func typeShortName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return t.String()
}
