// Package orderdemo is the golden suite for the lockorder analyzer: a
// pool → stream hierarchy with a consistent partial order, plus the
// inversions, direct and indirect self-deadlocks, and call-graph
// propagated cycles the analyzer must catch.
package orderdemo

import "sync"

type Pool struct {
	mu      sync.Mutex
	streams []*Stream
}

type Stream struct {
	pool   *Pool
	pushMu sync.Mutex
	evalMu sync.Mutex
	auxMu  sync.Mutex
	n      int
}

// ---- the blessed order: pool.mu, then pushMu, then evalMu ----

func (p *Pool) detachAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.streams {
		s.pushMu.Lock() // pool.mu → pushMu: consistent everywhere
		s.n = 0
		s.pushMu.Unlock()
	}
}

func (s *Stream) push() {
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	s.evalMu.Lock() // pushMu → evalMu
	s.n++
	s.evalMu.Unlock()
}

// ---- inversion: evalMu then pushMu somewhere else ----

func (s *Stream) badInverted() {
	s.evalMu.Lock()
	defer s.evalMu.Unlock()
	s.pushMu.Lock() // want `lock order inversion: evalMu is acquired before pushMu here, but the reverse order exists at .*orderdemo.go:\d+`
	s.n--
	s.pushMu.Unlock()
}

// ---- direct self-deadlock ----

func (p *Pool) badRelock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mu.Lock() // want `mu acquired while already held: self-deadlock`
	defer p.mu.Unlock()
}

// ---- call-graph propagation ----

// lockedLen acquires pool.mu itself.
func (p *Pool) lockedLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.streams)
}

func (s *Stream) badCallbackUnderPush() {
	s.pushMu.Lock()
	defer s.pushMu.Unlock()
	// pushMu → pool.mu through the call graph, inverting detachAll's
	// pool.mu → pushMu:
	_ = s.pool.lockedLen() // want `lock order inversion: pushMu is acquired before mu here`
}

func (p *Pool) badIndirectRelock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.lockedLen() // want `mu acquired while already held: self-deadlock`
}

// ---- //trnglint:holds participates instead of creating false edges ----

//trnglint:holds pushMu
func (s *Stream) flushLocked() {
	s.evalMu.Lock() // inherits pushMu → evalMu, the blessed order
	s.n++
	s.evalMu.Unlock()
}

func (s *Stream) goodHoldsCaller() {
	s.pushMu.Lock()
	s.flushLocked() // holds-assumed pushMu is not a fresh acquisition
	s.pushMu.Unlock()
}

// ---- goroutine bodies are separate lock stacks ----

func (p *Pool) goodSpawnerHandsOff(s *Stream) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		// Runs without the spawner's locks: evalMu → (nothing); no
		// pool.mu → evalMu edge and no inversion with push().
		s.evalMu.Lock()
		s.n++
		s.evalMu.Unlock()
	}()
}

// ---- waiver: the finding lands on the site contradicting the ----
// ---- earlier-established order, so that is where the waiver goes ----

func (s *Stream) auxAfterEval() {
	s.evalMu.Lock()
	defer s.evalMu.Unlock()
	s.auxMu.Lock() // establishes evalMu → auxMu
	s.auxMu.Unlock()
}

func (s *Stream) waivedInversion() {
	s.auxMu.Lock()
	defer s.auxMu.Unlock()
	//trnglint:allow lockorder shutdown path runs single-goroutine after drain
	s.evalMu.Lock()
	s.evalMu.Unlock()
}
