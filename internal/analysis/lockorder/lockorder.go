// Package lockorder proves the package's mutexes are acquired in one
// consistent partial order. It builds a static lock-acquisition graph —
// an edge A→B for every site that acquires B while A is provably held,
// both directly and through the intra-package call graph (calling a
// function that acquires B, transitively, while holding A) — and reports:
//
//   - self-edges: re-acquiring a mutex already held, which deadlocks a
//     non-reentrant sync.Mutex outright;
//   - inversions: an edge A→B whose reverse order B→…→A also exists
//     somewhere, i.e. a cycle in the graph — two goroutines walking the
//     two orders concurrently can deadlock.
//
// The fleet's pool → shard → stream hierarchy is the motivating order:
// with pool.mu and the per-stream pushMu annotated, a helper that takes
// pushMu and then calls back into a pool.mu-taking method while a pool
// method holds pool.mu and takes pushMu becomes a finding, not an outage.
//
// Scope and precision: lock identity is the mutex field/variable (all
// instances conflated — so sibling-instance rank-ordered locking needs a
// waiver), the call graph is intra-package and call-site based (function
// values and cross-package calls are not traversed), and acquisitions
// inside `go` literals are charged to the spawned goroutine, not the
// spawner. //trnglint:holds preconditions seed the held set, so helper
// chains participate. Waive an intended exception in place with
// //trnglint:allow lockorder <reason>.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer reports cycles in the static lock-acquisition order.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "build the static lock-acquisition graph (direct + intra-package " +
		"call graph) and report re-acquisition and lock-order inversions",
	Run: run,
}

// edge is one observed acquisition order: to was acquired at pos while
// from was held.
type edge struct {
	from, to types.Object
	pos      token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	ann := analysis.CollectConcAnnotations(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo, nil)

	// Pass 1: per function, the mutexes it acquires outside go-literals
	// and its intra-package callees (also outside go-literals: work a
	// spawned goroutine does is not on the caller's lock stack).
	direct := make(map[*types.Func]map[types.Object]bool)
	callees := make(map[*types.Func][]*types.Func)
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			decls[fn] = fd
			acq := make(map[types.Object]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					// Locks a spawned goroutine takes — literal or named —
					// are never on this function's lock stack.
					return false
				case *ast.CallExpr:
					if obj, acquire, ok := analysis.LockOpOf(pass.TypesInfo, n); ok && acquire {
						acq[obj] = true
					} else if callee := analysis.CalleeFunc(pass.TypesInfo, n); callee != nil && callee.Pkg() == pass.Pkg {
						callees[fn] = append(callees[fn], callee)
					}
				}
				return true
			})
			direct[fn] = acq
		}
	}

	// Transitive closure: every mutex a call to fn may end up acquiring.
	trans := make(map[*types.Func]map[types.Object]bool, len(direct))
	for fn, acq := range direct {
		t := make(map[types.Object]bool, len(acq))
		for obj := range acq {
			t[obj] = true
		}
		trans[fn] = t
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			for _, callee := range cs {
				for obj := range trans[callee] {
					if !trans[fn][obj] {
						trans[fn][obj] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: flow-sensitive edge collection. The lock walker delivers
	// the set held BEFORE each call, so an acquire site yields from→to
	// edges and a call site yields from→(transitive acquires of callee).
	var edges []edge
	addEdge := func(from, to types.Object, pos token.Pos) {
		edges = append(edges, edge{from, to, pos})
	}
	for fn, fd := range decls {
		analysis.LockWalk(pass.TypesInfo, fd.Body, ann.AssumedLocks(fn), func(n ast.Node, held *analysis.LockSet, provable bool) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !provable || held.Empty() {
				return true
			}
			if obj, acquire, ok := analysis.LockOpOf(pass.TypesInfo, call); ok {
				if acquire {
					for _, from := range held.Held() {
						addEdge(from, obj, call.Pos())
					}
				}
				return true
			}
			if callee := analysis.CalleeFunc(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
				// Locks the callee assumes via //trnglint:holds are the
				// caller's own held set, not new acquisitions.
				assumed := make(map[types.Object]bool)
				for _, spec := range ann.HoldsOf(callee) {
					assumed[spec.Mutex] = true
				}
				// from == to is kept: calling a function that (re)acquires
				// a lock you hold is the indirect self-deadlock.
				for to := range trans[callee] {
					if assumed[to] {
						continue
					}
					for _, from := range held.Held() {
						addEdge(from, to, call.Pos())
					}
				}
			}
			return true
		})
	}

	report(pass, edges)
	return nil, nil
}

func report(pass *analysis.Pass, edges []edge) {
	// Deterministic order: by position, then names.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].pos != edges[j].pos {
			return edges[i].pos < edges[j].pos
		}
		if edges[i].from != edges[j].from {
			return edges[i].from.Name() < edges[j].from.Name()
		}
		return edges[i].to.Name() < edges[j].to.Name()
	})

	adj := make(map[types.Object]map[types.Object]token.Pos)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[types.Object]token.Pos)
		}
		if _, seen := adj[e.from][e.to]; !seen {
			adj[e.from][e.to] = e.pos
		}
	}

	type pair struct{ a, b types.Object }
	type selfKey struct {
		obj types.Object
		pos token.Pos
	}
	reported := make(map[pair]bool)
	selfReported := make(map[selfKey]bool)
	for _, e := range edges {
		if e.from == e.to {
			// Every re-acquisition site is its own bug; dedup per site,
			// not per mutex.
			k := selfKey{e.from, e.pos}
			if !selfReported[k] {
				selfReported[k] = true
				pass.Reportf(e.pos,
					"%s acquired while already held: self-deadlock for a non-reentrant mutex — "+
						"restructure, or waive with //trnglint:allow lockorder <reason>",
					e.from.Name())
			}
			continue
		}
		if reported[pair{e.from, e.to}] || reported[pair{e.to, e.from}] {
			continue
		}
		// Edges iterate in ascending position, so e is the pair's
		// earliest edge: its direction is the established order, and the
		// finding lands on the site that contradicts it — which is where
		// a waiver belongs.
		if backPos, ok := adj[e.to][e.from]; ok {
			reported[pair{e.from, e.to}] = true
			pass.Reportf(backPos,
				"lock order inversion: %s is acquired before %s here, but the reverse order exists at %s — "+
					"pick one order, or waive with //trnglint:allow lockorder <reason>",
				e.to.Name(), e.from.Name(), pass.Fset.Position(e.pos))
		} else if backPos, cyclic := reaches(adj, e.to, e.from); cyclic {
			reported[pair{e.from, e.to}] = true
			pass.Reportf(e.pos,
				"lock order cycle: %s is acquired before %s here, closing a cycle back through %s — "+
					"pick one order, or waive with //trnglint:allow lockorder <reason>",
				e.from.Name(), e.to.Name(), pass.Fset.Position(backPos))
		}
	}
}

// reaches reports whether target is reachable from start in the edge
// graph, returning the position of the first edge on a path.
func reaches(adj map[types.Object]map[types.Object]token.Pos, start, target types.Object) (token.Pos, bool) {
	type item struct {
		node     types.Object
		firstPos token.Pos
	}
	seen := map[types.Object]bool{start: true}
	var queue []item
	for _, to := range sortedKeys(adj[start]) {
		if to == target {
			return adj[start][to], true
		}
		seen[to] = true
		queue = append(queue, item{to, adj[start][to]})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, to := range sortedKeys(adj[cur.node]) {
			if to == target {
				return cur.firstPos, true
			}
			if !seen[to] {
				seen[to] = true
				queue = append(queue, item{to, cur.firstPos})
			}
		}
	}
	return token.NoPos, false
}

func sortedKeys(m map[types.Object]token.Pos) []types.Object {
	out := make([]types.Object, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if m[out[i]] != m[out[j]] {
			return m[out[i]] < m[out[j]]
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}
