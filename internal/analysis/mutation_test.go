package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/gorolife"
	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/hotcall"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/nodefer"
)

// The concurrency mutation-kill suite: each analyzer must catch the seeded
// race it was written for. Every mutation starts from a clean program that
// the analyzer accepts, re-introduces one deliberate concurrency defect —
// the same class of bug the annotations in internal/fleet and internal/obs
// guard against — and asserts the analyzer fires. An analyzer that stays
// silent on its mutation is dead weight, so these tests are the conclint
// family's own regression gate. The final test replays the repository's
// own history: it strips the pushMu ordering out of Stream.Detach (the
// detach TOCTOU fixed in the fleet ingest path) in a scratch copy of the
// real module and demands guardedby flag it.

// runAnalyzer writes src as the single file of package pkg under a scratch
// testdata overlay, loads and type-checks it, and returns the analyzer's
// diagnostic messages.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, pkg, src string) []string {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "src", pkg)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, pkg+".go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := load.NewTestdataLoader(filepath.Join(root, "src"))
	targets, err := l.Load(pkg)
	if err != nil {
		t.Fatal(err)
	}
	tgt := targets[0]
	if len(tgt.TypeErrors) > 0 {
		t.Fatalf("source does not type-check: %v", tgt.TypeErrors)
	}
	unit := &analysis.Unit{Fset: tgt.Fset, Files: tgt.Files, Pkg: tgt.Pkg, Info: tgt.Info}
	diags, err := analysis.Run(unit, a)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]string, len(diags))
	for i, d := range diags {
		msgs[i] = d.Message
	}
	return msgs
}

// assertClean demands the clean baseline really is clean — a mutation kill
// proves nothing if the analyzer also fires on the healthy program.
func assertClean(t *testing.T, msgs []string) {
	t.Helper()
	if len(msgs) != 0 {
		t.Fatalf("clean baseline has findings: %v", msgs)
	}
}

// assertKilled demands at least one finding containing want.
func assertKilled(t *testing.T, msgs []string, want string) {
	t.Helper()
	for _, m := range msgs {
		if strings.Contains(m, want) {
			return
		}
	}
	t.Errorf("mutation survived: no finding containing %q; got %v", want, msgs)
}

// mustReplace is strings.Replace that fails the test when the needle is
// absent, so a refactor of the baseline cannot silently defuse a mutation.
func mustReplace(t *testing.T, src, old, new string) string {
	t.Helper()
	if !strings.Contains(src, old) {
		t.Fatalf("mutation site %q not found in source", old)
	}
	return strings.Replace(src, old, new, 1)
}

func TestMutationGuardedFieldUnlockedAccess(t *testing.T) {
	const clean = `package mut

import "sync"

type S struct {
	mu sync.Mutex
	//trnglint:guardedby mu
	n int
}

func (s *S) bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
`
	assertClean(t, runAnalyzer(t, guardedby.Analyzer, "mut", clean))
	mutant := mustReplace(t, clean, "\ts.mu.Lock()\n\ts.n++\n\ts.mu.Unlock()\n", "\ts.n++\n")
	assertKilled(t, runAnalyzer(t, guardedby.Analyzer, "mut", mutant),
		"n is guarded by mu")
}

func TestMutationGuardedFieldLockReleasedTooEarly(t *testing.T) {
	// The subtler seed: the lock is still taken, but released before the
	// last guarded access — a plain remove-the-lock grep would miss it,
	// the flow-sensitive walk must not.
	const clean = `package mut

import "sync"

type S struct {
	mu sync.Mutex
	//trnglint:guardedby mu
	n int
}

func (s *S) drain() int {
	s.mu.Lock()
	v := s.n
	s.n = 0
	s.mu.Unlock()
	return v
}
`
	assertClean(t, runAnalyzer(t, guardedby.Analyzer, "mut", clean))
	mutant := mustReplace(t, clean, "\ts.n = 0\n\ts.mu.Unlock()\n", "\ts.mu.Unlock()\n\ts.n = 0\n")
	assertKilled(t, runAnalyzer(t, guardedby.Analyzer, "mut", mutant),
		"n is guarded by mu")
}

func TestMutationAtomicPlainRead(t *testing.T) {
	const clean = `package mut

import "sync/atomic"

type S struct{ hits int64 }

func (s *S) bump() { atomic.AddInt64(&s.hits, 1) }

func (s *S) read() int64 { return atomic.LoadInt64(&s.hits) }
`
	assertClean(t, runAnalyzer(t, atomicmix.Analyzer, "mut", clean))
	mutant := mustReplace(t, clean, "return atomic.LoadInt64(&s.hits)", "return s.hits")
	assertKilled(t, runAnalyzer(t, atomicmix.Analyzer, "mut", mutant),
		"accessed via sync/atomic elsewhere in this package")
}

func TestMutationAtomicStructCopied(t *testing.T) {
	const clean = `package mut

import "sync/atomic"

type S struct{ flag atomic.Bool }

func snapshot(s *S) bool { return s.flag.Load() }
`
	assertClean(t, runAnalyzer(t, atomicmix.Analyzer, "mut", clean))
	mutant := mustReplace(t, clean,
		"func snapshot(s *S) bool { return s.flag.Load() }",
		"func snapshot(s *S) bool { c := *s; return c.flag.Load() }")
	assertKilled(t, runAnalyzer(t, atomicmix.Analyzer, "mut", mutant),
		"contains atomic fields")
}

func TestMutationLockOrderInverted(t *testing.T) {
	const clean = `package mut

import "sync"

var a, b sync.Mutex

func first() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

func second() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}
`
	assertClean(t, runAnalyzer(t, lockorder.Analyzer, "mut", clean))
	mutant := mustReplace(t, clean,
		"func second() {\n\ta.Lock()\n\tb.Lock()\n\tb.Unlock()\n\ta.Unlock()\n}",
		"func second() {\n\tb.Lock()\n\ta.Lock()\n\ta.Unlock()\n\tb.Unlock()\n}")
	assertKilled(t, runAnalyzer(t, lockorder.Analyzer, "mut", mutant),
		"lock order inversion")
}

func TestMutationLockOrderIndirectSelfDeadlock(t *testing.T) {
	const clean = `package mut

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) length() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return 0
}

func (s *S) report() int {
	return s.length()
}
`
	assertClean(t, runAnalyzer(t, lockorder.Analyzer, "mut", clean))
	mutant := mustReplace(t, clean,
		"func (s *S) report() int {\n\treturn s.length()\n}",
		"func (s *S) report() int {\n\ts.mu.Lock()\n\tdefer s.mu.Unlock()\n\treturn s.length()\n}")
	assertKilled(t, runAnalyzer(t, lockorder.Analyzer, "mut", mutant),
		"self-deadlock")
}

func TestMutationGoroutineJoinRemoved(t *testing.T) {
	const clean = `package mut

import "sync"

func work() {}

func spawn(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
`
	assertClean(t, runAnalyzer(t, gorolife.Analyzer, "mut", clean))
	mutant := mustReplace(t, clean, "\t\tdefer wg.Done()\n", "")
	assertKilled(t, runAnalyzer(t, gorolife.Analyzer, "mut", mutant),
		"no provable join or quit path")
}

// ---- the real-module replay: the fleet detach TOCTOU ----

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// copyModule clones go.mod plus every non-test Go file under internal/
// into a scratch module, skipping testdata trees, so a mutation can be
// seeded into real sources without touching the checkout.
func copyModule(t *testing.T) string {
	t.Helper()
	src := moduleRoot(t)
	dst := t.TempDir()
	mod, err := os.ReadFile(filepath.Join(src, "go.mod"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, "go.mod"), mod, 0o644); err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(filepath.Join(src, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestMutationFleetDetachTOCTOU re-introduces the exact race the fleet
// ingest path once shipped with: Stream.Detach setting detached and
// enqueueing the detach item without holding pushMu, so a producer's
// check-then-enqueue could land a word item behind the detach item. The
// //trnglint:holds annotation on flushStaged must make guardedby flag the
// now-unordered flush call in the mutated copy of the real module.
func TestMutationFleetDetachTOCTOU(t *testing.T) {
	root := copyModule(t)
	streamGo := filepath.Join(root, "internal", "fleet", "stream.go")
	data, err := os.ReadFile(streamGo)
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	mutant := mustReplace(t, src,
		"s.detachOnce.Do(func() {\n\t\ts.pushMu.Lock()\n",
		"s.detachOnce.Do(func() {\n")
	mutant = mustReplace(t, mutant,
		"\t\ts.sh.queue <- item{s: s, kind: itemDetach}\n\t\ts.pushMu.Unlock()\n",
		"\t\ts.sh.queue <- item{s: s, kind: itemDetach}\n")
	if err := os.WriteFile(streamGo, []byte(mutant), 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := load.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := l.Load("repro/internal/fleet")
	if err != nil {
		t.Fatal(err)
	}
	tgt := targets[0]
	if len(tgt.TypeErrors) > 0 {
		t.Fatalf("mutated fleet does not type-check: %v", tgt.TypeErrors)
	}
	unit := &analysis.Unit{Fset: tgt.Fset, Files: tgt.Files, Pkg: tgt.Pkg, Info: tgt.Info}
	diags, err := analysis.Run(unit, guardedby.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	assertKilled(t, msgs, "flushStaged requires pushMu held")
}

// ---- the perflint mutation kills ----

func TestMutationHotPathAllocation(t *testing.T) {
	const clean = `package mut

//trnglint:hotpath
func kernel(buf *[8]uint64, w uint64) {
	buf[0] = w
}
`
	assertClean(t, runAnalyzer(t, noalloc.Analyzer, "mut", clean))
	mutant := mustReplace(t, clean, "\tbuf[0] = w\n",
		"\ttmp := make([]uint64, 1)\n\ttmp[0] = w\n\tbuf[0] = tmp[0]\n")
	assertKilled(t, runAnalyzer(t, noalloc.Analyzer, "mut", mutant),
		"make allocates")
}

func TestMutationHotPathColdCall(t *testing.T) {
	const clean = `package mut

import (
	"math/bits"
	"os"
)

var home = os.Getenv("HOME")

//trnglint:hotpath
func kernel(w uint64) int {
	return bits.OnesCount64(w)
}
`
	assertClean(t, runAnalyzer(t, hotcall.Analyzer, "mut", clean))
	mutant := mustReplace(t, clean, "\treturn bits.OnesCount64(w)\n",
		"\t_ = os.Getenv(\"HOME\")\n\treturn bits.OnesCount64(w)\n")
	assertKilled(t, runAnalyzer(t, hotcall.Analyzer, "mut", mutant),
		"calls non-hot os.Getenv")
}

func TestMutationHotPathDefer(t *testing.T) {
	const clean = `package mut

import "sync"

type S struct {
	mu sync.Mutex
	n  uint64
}

//trnglint:hotpath
func (s *S) bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
`
	assertClean(t, runAnalyzer(t, nodefer.Analyzer, "mut", clean))
	mutant := mustReplace(t, clean, "\ts.mu.Lock()\n\ts.n++\n\ts.mu.Unlock()\n",
		"\ts.mu.Lock()\n\tdefer s.mu.Unlock()\n\ts.n++\n")
	assertKilled(t, runAnalyzer(t, nodefer.Analyzer, "mut", mutant),
		"defer schedules work at function exit")
}

// TestMutationFleetStagingAllocation replays a perflint regression against
// the real module: a heap allocation planted into the lock-free staging
// fast path of Stream.Push — the exact code the FleetBitSliced 0 allocs/op
// benchmark gate measures — must be re-flagged by noalloc in a scratch
// copy of the repository.
func TestMutationFleetStagingAllocation(t *testing.T) {
	root := copyModule(t)
	streamGo := filepath.Join(root, "internal", "fleet", "stream.go")
	data, err := os.ReadFile(streamGo)
	if err != nil {
		t.Fatal(err)
	}
	mutant := mustReplace(t, string(data),
		"\t\ts.stg.words[idx][n] = w\n",
		"\t\tstaged := make([]uint64, 1)\n\t\tstaged[0] = w\n\t\ts.stg.words[idx][n] = staged[0]\n")
	if err := os.WriteFile(streamGo, []byte(mutant), 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := load.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := l.Load("repro/internal/fleet")
	if err != nil {
		t.Fatal(err)
	}
	tgt := targets[0]
	if len(tgt.TypeErrors) > 0 {
		t.Fatalf("mutated fleet does not type-check: %v", tgt.TypeErrors)
	}
	unit := &analysis.Unit{Fset: tgt.Fset, Files: tgt.Files, Pkg: tgt.Pkg, Info: tgt.Info}
	diags, err := analysis.Run(unit, noalloc.Analyzer)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	assertKilled(t, msgs, "hot path Stream.Push: make allocates")
}
