package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The //trnglint:hotpath annotation and its call-graph closure. The
// paper's platform only works because the on-the-fly test engine keeps up
// with the generator at line rate; the repository encodes that dynamically
// as 0 allocs/op benchmark gates, and statically through this annotation:
// a function marked hotpath — the fleet ingest Push/PushWords and shard
// loop, the hwslice absorb/extract kernels, the hwfast word ingest, the
// online tracker Push, the obs counter/gauge fast paths — promises to stay
// allocation-free and latency-predictable on every execution path, and the
// perflint analyzers (noalloc, hotcall, nodefer) plus cmd/escapecheck hold
// it to that.
//
// The promise is closed over the call graph in two steps:
//
//   - Within a package, every function transitively called from a hot body
//     at an unwaived call site is itself hot (HotClosure) — a cold helper
//     cannot silently enter the ingest path just because nobody annotated
//     it.
//   - Across packages, the callee must carry its own //trnglint:hotpath
//     annotation (checked by hotcall against the module-wide HotIndex),
//     be an allowlisted allocation-free stdlib function, or the call site
//     must be waived with //trnglint:alloc <reason> — which documents the
//     hot/cold boundary and stops the closure there.

// HotIndex is the module-wide set of //trnglint:hotpath-annotated
// functions. Drivers that load several packages through one loader
// (cmd/trnglint, cmd/escapecheck, the analysistest harness) populate a
// single index from every loaded package, so a cross-package call from hot
// code resolves the callee's annotation through the shared type
// identities the loader guarantees.
type HotIndex struct {
	hot map[*types.Func]token.Pos
}

// NewHotIndex returns an empty index.
func NewHotIndex() *HotIndex { return &HotIndex{hot: make(map[*types.Func]token.Pos)} }

// AddPackage records every //trnglint:hotpath annotation found on the
// function and method declarations of one package's files.
func (ix *HotIndex) AddPackage(files []*ast.File, info *types.Info) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			_, pos, ok := directiveArg(fd.Doc, "hotpath")
			if !ok {
				continue
			}
			if fn, _ := info.Defs[fd.Name].(*types.Func); fn != nil {
				ix.hot[fn] = pos
			}
		}
	}
}

// IsHot reports whether fn carries a //trnglint:hotpath annotation.
// Generic instantiations resolve through their origin, so a call to
// Map[uint64] is hot exactly when Map's declaration is annotated.
func (ix *HotIndex) IsHot(fn *types.Func) bool {
	if ix == nil || fn == nil {
		return false
	}
	_, ok := ix.hot[fn.Origin()]
	return ok
}

// Len returns the number of annotated functions in the index.
func (ix *HotIndex) Len() int {
	if ix == nil {
		return 0
	}
	return len(ix.hot)
}

// HotClosure returns the hot functions declared in the unit's package:
// those annotated //trnglint:hotpath plus every same-package function
// transitively called from a hot body at an unwaived call site. A call
// site waived with //trnglint:alloc (or //trnglint:allow hotcall) marks a
// deliberate hot/cold boundary and is not followed; cross-package and
// dynamically-dispatched callees are never absorbed — the hotcall analyzer
// checks those against the module-wide index instead. Function literals
// are not descended into: the literal itself is a noalloc finding, and its
// body runs on whatever schedule captures it.
func HotClosure(u *Unit, dirs *Directives, ix *HotIndex) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, _ := u.Info.Defs[fd.Name].(*types.Func); fn != nil {
				decls[fn] = fd
			}
		}
	}
	hot := make(map[*types.Func]*ast.FuncDecl)
	var work []*types.Func
	for fn, fd := range decls {
		if ix.IsHot(fn) {
			hot[fn] = fd
			work = append(work, fn)
		}
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		ast.Inspect(hot[fn].Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if dirs.Waived(u.Fset, call.Pos(), "hotcall") {
				return true
			}
			callee := CalleeFunc(u.Info, call)
			if callee == nil {
				return true
			}
			callee = callee.Origin()
			fd, ok := decls[callee]
			if !ok {
				return true
			}
			if _, seen := hot[callee]; !seen {
				hot[callee] = fd
				work = append(work, callee)
			}
			return true
		})
	}
	return hot
}

// FuncLabel renders a hot function's name for diagnostics: Method for
// receiver-less functions, Type.Method for methods (pointer receivers
// included), matching how the annotation sites read in the source.
func FuncLabel(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}
