// Package gorolife enforces goroutine lifecycle discipline: every `go`
// statement must have a provable join or quit path, so a million-stream
// deployment can actually drain on shutdown instead of leaking workers.
// A spawned body passes if it shows any of:
//
//   - a top-level `defer wg.Done()` on a sync.WaitGroup — the spawner
//     joins via Wait;
//   - a top-level `defer close(ch)` — completion is signalled on a
//     channel someone receives from (the shard-loop `done` idiom);
//   - a top-level `for … range ch` over a channel — the goroutine quits
//     when its feed channel is closed (the request-pump idiom);
//   - a select case receiving from a channel whose body returns — the
//     quit-channel / context.Done idiom;
//   - a final top-level send on a channel — the result hand-off idiom,
//     joined by the receiver.
//
// `go expr()` on a named function or method applies the same rules to
// that function's body when it is declared in the same package; a callee
// the analyzer cannot see (cross-package, function values, interface
// methods) is a finding, because nothing local proves the goroutine ever
// stops. Deliberately detached goroutines are waived in place with
// //trnglint:detached <reason> (equivalently //trnglint:allow gorolife
// <reason>), which keeps every intentionally-leaked goroutine documented
// and greppable.
//
// The check is shape-based, not flow-sensitive: a `defer wg.Done()`
// buried behind a conditional early-return still counts. That keeps
// false positives near zero at the cost of trusting the body's first
// screenful — the golden and mutation suites pin the exact shapes.
package gorolife

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags go statements with no provable join/quit path.
var Analyzer = &analysis.Analyzer{
	Name: "gorolife",
	Doc: "require every go statement to have a provable join/quit path " +
		"(defer wg.Done, defer close, range-over-channel, quit-select, final send) " +
		"or a //trnglint:detached waiver",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Named declarations in this package, for resolving `go m.loop()`.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); fn != nil {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				if !bodyHasJoinOrQuit(pass, lit.Body) {
					pass.Reportf(gs.Pos(),
						"goroutine has no provable join or quit path (defer wg.Done, defer close, "+
							"range over a channel, quit-channel select, or final send) — "+
							"add one or waive with //trnglint:detached <reason>")
				}
				return true
			}
			callee := analysis.CalleeFunc(pass.TypesInfo, gs.Call)
			if callee != nil {
				if fd, here := decls[callee]; here {
					if !bodyHasJoinOrQuit(pass, fd.Body) {
						pass.Reportf(gs.Pos(),
							"goroutine %s has no provable join or quit path in its body — "+
								"add one or waive with //trnglint:detached <reason>", callee.Name())
					}
					return true
				}
			}
			pass.Reportf(gs.Pos(),
				"goroutine target is not analyzable here (function value, cross-package, or interface method), "+
					"so no join/quit path is provable — spawn a local wrapper with one, "+
					"or waive with //trnglint:detached <reason>")
			return true
		})
	}
	return nil, nil
}

// bodyHasJoinOrQuit applies the lifecycle shapes to one goroutine body.
func bodyHasJoinOrQuit(pass *analysis.Pass, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if isWaitGroupDone(pass, s.Call) || isClose(pass, s.Call) {
				return true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					return true
				}
			}
		}
	}
	// The result hand-off idiom: the last thing the goroutine does is
	// send its result; the spawner (or a collector) receives it.
	if len(body.List) > 0 {
		if _, ok := body.List[len(body.List)-1].(*ast.SendStmt); ok {
			return true
		}
	}
	// The quit-channel idiom, anywhere in the body: a select case that
	// receives from a channel and leaves.
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		cc, ok := n.(*ast.CommClause)
		if !ok {
			return true
		}
		if !isChannelReceive(cc.Comm) {
			return true
		}
		for _, st := range cc.Body {
			if ret, ok := st.(*ast.ReturnStmt); ok && ret != nil {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isWaitGroupDone matches wg.Done() on a sync.WaitGroup.
func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Done" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// isClose matches the close(ch) builtin.
func isClose(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isBuiltin := pass.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// isChannelReceive matches the comm statement of a receive case:
// `case <-ch:` or `case v, ok := <-ch:`.
func isChannelReceive(comm ast.Stmt) bool {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			u, ok := s.Rhs[0].(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		}
	}
	return false
}
