// Package lifedemo is the golden suite for the gorolife analyzer: every
// accepted join/quit shape, the leaked-goroutine findings, named-function
// targets, unanalyzable targets, and the //trnglint:detached waiver.
package lifedemo

import "sync"

type pump struct {
	req  chan int
	quit chan struct{}
	done chan struct{}
}

// ---- accepted shapes ----

func goodWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func goodValueWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func goodDeferClose(p *pump) {
	go func() {
		defer close(p.done)
		work()
	}()
}

func goodRangeOverChannel(p *pump) {
	go func() {
		for r := range p.req {
			_ = r
		}
	}()
}

func goodQuitSelect(p *pump) {
	go func() {
		for {
			select {
			case r := <-p.req:
				_ = r
			case <-p.quit:
				return
			}
		}
	}()
}

func goodFinalSend(results chan int) {
	go func() {
		v := compute()
		results <- v
	}()
	<-results
}

// ---- leaks ----

func badLeakedLoop() {
	go func() { // want `goroutine has no provable join or quit path`
		for {
			work()
		}
	}()
}

func badFireAndForget() {
	go func() { // want `goroutine has no provable join or quit path`
		work()
	}()
}

func badSelectWithoutQuit(p *pump) {
	go func() { // want `goroutine has no provable join or quit path`
		for {
			select {
			case r := <-p.req:
				_ = r // receives but never leaves: not a quit path
			}
		}
	}()
}

// ---- named targets resolve to their bodies ----

func (p *pump) loop() {
	defer close(p.done)
	for r := range p.req {
		_ = r
	}
}

func (p *pump) spin() {
	for {
		work()
	}
}

func goodNamedTarget(p *pump) {
	go p.loop()
}

func badNamedTarget(p *pump) {
	go p.spin() // want `goroutine spin has no provable join or quit path in its body`
}

func badUnanalyzableTarget(fn func()) {
	go fn() // want `goroutine target is not analyzable here`
}

// ---- waivers ----

func waivedDetached() {
	//trnglint:detached metrics listener lives for the process lifetime
	go func() {
		for {
			work()
		}
	}()
}

func waivedViaAllow() {
	//trnglint:allow gorolife best-effort cache warmer, process-lifetime
	go func() {
		work()
	}()
}

func work()        {}
func compute() int { return 1 }
