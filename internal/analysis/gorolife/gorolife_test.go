package gorolife_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/gorolife"
)

func TestGorolife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), gorolife.Analyzer, "lifedemo")
}
