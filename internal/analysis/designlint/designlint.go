// Package designlint statically verifies the hardware design space of the
// testing block: it walks the extracted structure model (internal/design)
// of each design point — primitive inventory, register map, declared
// resources — and proves the paper's construction constraints without
// clocking a single bit through the simulator.
//
// The rules, each tied to a constraint of the source paper (DESIGN.md
// §5.9 maps them one to one):
//
//   - counterwidth: every counter-like primitive is exactly as wide as its
//     worst-case count at the design's sequence length demands — narrower
//     wraps silently, wider burns flip-flops the resource budget counts.
//   - regmap: the register file tiles the 7-bit address space densely with
//     no collisions, no value crosses the 16-bit bus without a declared
//     multi-word split, and every entry traces to a live statistic (and
//     every readable statistic to an entry).
//   - sharing: the paper's resource-sharing tricks hold — no redundant
//     ones counter (n1 derives from S_final), one shared pattern shift
//     register, approximate entropy reuses the serial counters, and no
//     shared primitive is mapped as two simultaneously-live statistics.
//   - resources: the FF/LUT accounting each primitive declares agrees
//     with its declared geometry, and the output multiplexer is sized for
//     exactly the words the register file assigned.
//   - reset: every stateful primitive of the live netlist actually clears
//     on Reset (state is planted through the parallel-load ports, never by
//     streaming bits).
//
// The expected structure is derived in spec.go from (n, tests, params)
// alone, independently of the construction code, so construction bugs
// cannot justify themselves.
package designlint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/design"
	"repro/internal/hwsim"
)

// Finding is one rule violation in one design point.
type Finding struct {
	// Design is the design point name (e.g. "n65536-medium").
	Design string
	// Rule is the name of the rule that fired.
	Rule string
	// Msg describes the violation.
	Msg string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Design, f.Rule, f.Msg)
}

// Rule is one verification pass over a design model.
type Rule struct {
	// Name identifies the rule (for -only selection).
	Name string
	// Doc is a one-line description.
	Doc string
	// check returns violation messages for d. The derived spec s is nil
	// only if derivation failed (reported separately by Check).
	check func(d *design.Design, s *designSpec) []string
}

// Rules returns all rules in execution order.
func Rules() []*Rule {
	return []*Rule{ruleCounterWidth, ruleRegMap, ruleSharing, ruleResources, ruleReset}
}

// RuleByName resolves a rule name, for -only selection.
func RuleByName(name string) (*Rule, error) {
	for _, r := range Rules() {
		if r.Name == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("designlint: unknown rule %q", name)
}

// Check runs the given rules (all of them when none are given) over one
// design model.
func Check(d *design.Design, rules ...*Rule) []Finding {
	if len(rules) == 0 {
		rules = Rules()
	}
	s, err := specFor(d)
	if err != nil {
		return []Finding{{Design: d.Name, Rule: "spec", Msg: err.Error()}}
	}
	var out []Finding
	for _, r := range rules {
		for _, msg := range r.check(d, s) {
			out = append(out, Finding{Design: d.Name, Rule: r.Name, Msg: msg})
		}
	}
	return out
}

// CheckShipped extracts and checks the paper's eight shipped design
// points.
func CheckShipped(rules ...*Rule) ([]Finding, error) {
	designs, err := design.All()
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, d := range designs {
		out = append(out, Check(d, rules...)...)
	}
	return out, nil
}

// sortedKeys returns the keys of a string-keyed map in stable order, so
// findings are deterministic run to run.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------------------
// counterwidth: width sufficiency and budget.

var ruleCounterWidth = &Rule{
	Name: "counterwidth",
	Doc:  "every primitive exactly as wide as its worst-case count demands",
	check: func(d *design.Design, s *designSpec) []string {
		var msgs []string
		byName := make(map[string]design.Prim, len(d.Prims))
		for _, p := range d.Prims {
			if prev, dup := byName[p.Name]; dup {
				msgs = append(msgs, fmt.Sprintf(
					"primitive name %s constructed twice (%s and %s)",
					p.Name, prev.Kind, p.Kind))
				continue
			}
			byName[p.Name] = p
		}
		for _, name := range sortedKeys(s.prims) {
			want := s.prims[name]
			got, ok := byName[name]
			if !ok {
				msgs = append(msgs, fmt.Sprintf(
					"primitive %s (%s, %d bits) missing from the netlist",
					name, want.kind, want.width))
				continue
			}
			if got.Kind != want.kind {
				msgs = append(msgs, fmt.Sprintf(
					"primitive %s is a %s, the design calls for a %s",
					name, got.Kind, want.kind))
				continue
			}
			if got.Width < want.width {
				msgs = append(msgs, fmt.Sprintf(
					"%s %s is %d bits, too narrow for its worst-case count at n=%d (needs %d): it would wrap silently",
					got.Kind, name, got.Width, d.N, want.width))
			}
			if got.Width > want.width {
				msgs = append(msgs, fmt.Sprintf(
					"%s %s is %d bits, wider than its %d-bit worst case: %d flip-flop(s) over the resource budget",
					got.Kind, name, got.Width, want.width, got.Lanes*(got.Width-want.width)))
			}
			if got.Lanes != want.lanes {
				msgs = append(msgs, fmt.Sprintf(
					"%s %s has %d lanes, the design calls for %d",
					got.Kind, name, got.Lanes, want.lanes))
			}
		}
		for _, p := range d.Prims {
			if _, ok := s.prims[p.Name]; !ok {
				msgs = append(msgs, fmt.Sprintf(
					"unexpected primitive %s (%s, %d bits): not derivable from (n, tests, params)",
					p.Name, p.Kind, p.Width))
			}
		}
		return msgs
	},
}

// ---------------------------------------------------------------------------
// regmap: collisions, bus splits, dangling and unread registers.

var ruleRegMap = &Rule{
	Name: "regmap",
	Doc:  "register map collision-free, bus-split-correct, fully traced",
	check: func(d *design.Design, s *designSpec) []string {
		var msgs []string
		seen := make(map[string]bool, len(d.Regs))
		for _, r := range d.Regs {
			if seen[r.Name] {
				msgs = append(msgs, fmt.Sprintf("register %s mapped twice", r.Name))
			}
			seen[r.Name] = true
		}

		// The register file assigns addresses sequentially from 0: the
		// map must tile the address space densely — an overlap corrupts
		// readout, a hole wastes multiplexer words the area model pays
		// for.
		ordered := append([]design.Reg(nil), d.Regs...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].Addr < ordered[j].Addr })
		next := 0
		for _, r := range ordered {
			if r.Addr < next {
				msgs = append(msgs, fmt.Sprintf(
					"address collision: %s at word %d overlaps the previous register (first free word %d)",
					r.Name, r.Addr, next))
			} else if r.Addr > next {
				msgs = append(msgs, fmt.Sprintf(
					"hole in the address map before %s: words %d..%d unassigned but counted",
					r.Name, next, r.Addr-1))
			}
			if end := r.Addr + r.Words; end > next {
				next = end
			}
		}
		if next > 1<<design.AddressBits {
			msgs = append(msgs, fmt.Sprintf(
				"register map needs %d words, exceeding the %d-word (%d-bit) address space",
				next, 1<<design.AddressBits, design.AddressBits))
		}
		if d.Words != next {
			msgs = append(msgs, fmt.Sprintf(
				"register file declares %d words but the entries span %d", d.Words, next))
		}

		for _, r := range d.Regs {
			needWords := (r.Width + design.WordBits - 1) / design.WordBits
			if r.Words < needWords {
				msgs = append(msgs, fmt.Sprintf(
					"%s is %d bits wide but declares only %d word(s): the lane exceeds the %d-bit bus without a declared multi-word split",
					r.Name, r.Width, r.Words, design.WordBits))
			} else if r.Words > needWords {
				msgs = append(msgs, fmt.Sprintf(
					"%s declares %d words but its %d bits fit in %d",
					r.Name, r.Words, r.Width, needWords))
			}

			want, ok := s.regs[r.Name]
			if !ok {
				msgs = append(msgs, fmt.Sprintf(
					"dangling register %s: traces to no live statistic of the design",
					r.Name))
				continue
			}
			if r.Width != want.width {
				msgs = append(msgs, fmt.Sprintf(
					"%s is mapped %d bits wide but its source statistic (%s) is %d bits",
					r.Name, r.Width, want.prim, want.width))
			}
			if r.TestID != want.testID {
				msgs = append(msgs, fmt.Sprintf(
					"%s carries test ID %d, want %d", r.Name, r.TestID, want.testID))
			}
		}

		for _, name := range sortedKeys(s.regs) {
			if !seen[name] {
				msgs = append(msgs, fmt.Sprintf(
					"statistic %s (from %s) has no register-map entry: unreadable by software",
					name, s.regs[name].prim))
			}
		}
		return msgs
	},
}

// ---------------------------------------------------------------------------
// sharing: the paper's resource-sharing tricks.

var ruleSharing = &Rule{
	Name: "sharing",
	Doc:  "resource-sharing tricks hold; no statistic mapped twice",
	check: func(d *design.Design, s *designSpec) []string {
		var msgs []string

		// n1 derives from S_final in software: a dedicated ones counter
		// (or a register exposing one) is the redundancy the paper's
		// shared up/down counter eliminates.
		for _, p := range d.Prims {
			if strings.Contains(strings.ToLower(p.Name), "ones") {
				msgs = append(msgs, fmt.Sprintf(
					"redundant ones counter %s: n1 derives from S_FINAL via the shared up/down counter",
					p.Name))
			}
		}
		for _, r := range d.Regs {
			if strings.Contains(strings.ToUpper(r.Name), "ONES") {
				msgs = append(msgs, fmt.Sprintf(
					"register %s exposes a ones count: n1 derives from S_FINAL in software",
					r.Name))
			}
		}

		// One shared pattern shift register, if and only if a pattern
		// test is implemented.
		var shifts []string
		for _, p := range d.Prims {
			if p.Kind == "shiftreg" {
				shifts = append(shifts, p.Name)
			}
		}
		wantShift := d.Has(7) || d.Has(8) || d.Has(11) || d.Has(12)
		switch {
		case wantShift && len(shifts) == 0:
			msgs = append(msgs, "pattern tests implemented but no shared pattern shift register exists")
		case wantShift && len(shifts) > 1:
			msgs = append(msgs, fmt.Sprintf(
				"%d shift registers (%s): a private shift register defeats the shared-pattern trick",
				len(shifts), strings.Join(shifts, ", ")))
		case !wantShift && len(shifts) > 0:
			msgs = append(msgs, fmt.Sprintf(
				"shift register %s constructed but no pattern test is implemented", shifts[0]))
		}

		// Approximate entropy is the unified implementation: it reads the
		// serial banks and contributes no hardware of its own.
		if d.Has(12) {
			hasSerialBank := false
			for _, p := range d.Prims {
				if strings.HasPrefix(p.Name, "serial_nu") {
					hasSerialBank = true
				}
				if strings.HasPrefix(strings.ToLower(p.Name), "apen") ||
					strings.HasPrefix(strings.ToLower(p.Name), "ae_") {
					msgs = append(msgs, fmt.Sprintf(
						"dedicated approximate-entropy hardware %s: test 12 must reuse the serial counters",
						p.Name))
				}
			}
			for _, r := range d.Regs {
				if strings.HasPrefix(strings.ToUpper(r.Name), "APEN") {
					msgs = append(msgs, fmt.Sprintf(
						"dedicated approximate-entropy register %s: test 12 reads the SERIAL_NU* map",
						r.Name))
				}
			}
			if !hasSerialBank {
				msgs = append(msgs, "test 12 implemented but the serial pattern banks it reads are missing")
			}
		}

		// No shared primitive mapped as two simultaneously-live
		// statistics: every (primitive, facet, lane) is exposed by at
		// most one register.
		owner := make(map[string]string, len(d.Regs))
		for _, r := range d.Regs {
			want, ok := s.regs[r.Name]
			if !ok {
				continue // dangling; regmap reports it
			}
			key := fmt.Sprintf("%s/%s/%d", want.prim, want.facet, want.lane)
			if prev, dup := owner[key]; dup {
				msgs = append(msgs, fmt.Sprintf(
					"registers %s and %s alias the same statistic (%s): one shared primitive mapped as two live values",
					prev, r.Name, want.prim))
				continue
			}
			owner[key] = r.Name
		}

		// A register carrying the ID of a test the design point does not
		// implement claims a statistic that is never computed.
		for _, r := range d.Regs {
			if r.TestID == 0 || d.Has(r.TestID) {
				continue
			}
			// The serial map carries test 11 even when only the
			// approximate-entropy half of the unified pair is selected.
			if r.TestID == 11 && d.Has(12) {
				continue
			}
			msgs = append(msgs, fmt.Sprintf(
				"%s carries test ID %d, which this design point does not implement",
				r.Name, r.TestID))
		}
		return msgs
	},
}

// ---------------------------------------------------------------------------
// resources: declared accounting consistent with declared geometry.

var ruleResources = &Rule{
	Name: "resources",
	Doc:  "FF/LUT accounting consistent with declared widths",
	check: func(d *design.Design, _ *designSpec) []string {
		var msgs []string
		for _, p := range d.Prims {
			ffs, luts, err := expectedResources(p)
			if err != nil {
				msgs = append(msgs, fmt.Sprintf("%s: %v", p.Name, err))
				continue
			}
			if p.FFs != ffs || p.LUTs != luts {
				msgs = append(msgs, fmt.Sprintf(
					"%s %s declares %d FF / %d LUT, but a %d-bit×%d %s costs %d FF / %d LUT: accounting drifted from geometry",
					p.Kind, p.Name, p.FFs, p.LUTs, p.Width, p.Lanes, p.Kind, ffs, luts))
			}
		}
		if d.MuxWords != d.Words {
			msgs = append(msgs, fmt.Sprintf(
				"output multiplexer sized for %d words but the register file assigned %d",
				d.MuxWords, d.Words))
		}
		return msgs
	},
}

// ---------------------------------------------------------------------------
// reset: every stateful primitive clears.

var ruleReset = &Rule{
	Name: "reset",
	Doc:  "every stateful primitive clears on Reset",
	check: func(d *design.Design, _ *designSpec) []string {
		if d.Netlist == nil {
			return nil // model-only design (clone); nothing to exercise
		}
		var msgs []string
		report := func(p hwsim.Primitive, left string) {
			msgs = append(msgs, fmt.Sprintf(
				"%s: Reset left nonzero state (%s)", p.PrimName(), left))
		}
		for _, p := range d.Netlist.Primitives() {
			// State is planted through the parallel-load ports — the
			// block's data path is never clocked.
			switch v := p.(type) {
			case *hwsim.Counter:
				v.Load(^uint64(0))
				v.Reset()
				if got := v.Value(); got != 0 {
					report(p, fmt.Sprintf("value %#x", got))
				}
			case *hwsim.UpDownCounter:
				v.Load(-3)
				v.Reset()
				if got := v.Value(); got != 0 {
					report(p, fmt.Sprintf("value %d", got))
				}
			case *hwsim.Register:
				v.Load(^uint64(0))
				v.Reset()
				if got := v.Value(); got != 0 {
					report(p, fmt.Sprintf("value %#x", got))
				}
			case *hwsim.MinMaxTracker:
				v.Load(-5, 7)
				v.Reset()
				if v.Min() != 0 || v.Max() != 0 {
					report(p, fmt.Sprintf("min %d max %d", v.Min(), v.Max()))
				}
			case *hwsim.MaxTracker:
				v.Update(1)
				v.Reset()
				if got := v.Max(); got != 0 {
					report(p, fmt.Sprintf("max %#x", got))
				}
			case *hwsim.ShiftReg:
				v.Shift(1)
				v.Reset()
				if v.Fill() != 0 || v.Window(1) != 0 {
					report(p, fmt.Sprintf("fill %d window %#x", v.Fill(), v.Window(1)))
				}
			case *hwsim.CounterBank:
				for i := 0; i < v.Len(); i++ {
					v.Load(i, ^uint64(0))
				}
				v.Reset()
				for i := 0; i < v.Len(); i++ {
					if got := v.Value(i); got != 0 {
						report(p, fmt.Sprintf("lane %d value %#x", i, got))
						break
					}
				}
			case *hwsim.EqComparator:
				// Stateless by construction.
			default:
				// An externally added primitive: probe it through the
				// generic load/value ports if it has them.
				l, okL := p.(interface{ Load(uint64) })
				r, okR := p.(interface{ Value() uint64 })
				if !okL || !okR {
					msgs = append(msgs, fmt.Sprintf(
						"%s: unknown primitive type %T, reset behaviour unverifiable", p.PrimName(), p))
					continue
				}
				l.Load(^uint64(0))
				p.Reset()
				if got := r.Value(); got != 0 {
					report(p, fmt.Sprintf("value %#x", got))
				}
			}
		}
		return msgs
	},
}
