package designlint

import (
	"fmt"

	"repro/internal/design"
)

// This file derives, from first principles — sequence length n, the
// implemented test set and the NIST parameters — what the hardware of a
// design point MUST look like: which primitives exist, how wide each one
// must be for its worst-case count (and no wider, since every extra
// flip-flop is resource budget the paper's Table III accounts for), and
// which register of the memory map exposes which statistic.
//
// The derivation deliberately does NOT call into internal/hwblock: it
// re-implements the width arithmetic (bitsFor, the longest-run class
// bounds, the offset-binary encoding width) so that a bug in the
// construction code cannot silently justify itself. The checker and the
// construction meet only at the extracted design.Design model.

// primSpec is the expected structural identity of one primitive.
type primSpec struct {
	kind  string
	width int // per-lane bits (stage count for the shift register)
	lanes int // bank counter count; 1 otherwise
}

// regSpec ties one register-map entry to the statistic it exposes: the
// source primitive, which facet of it (the extremes tracker holds two
// values), the exposed width and the owning test.
type regSpec struct {
	prim   string // instance name of the source primitive
	facet  string // "" for a scalar value; "max"/"min" for the tracker
	lane   int    // bank lane index (0 for non-banks)
	width  int
	testID int
}

// designSpec is the full expectation for one design point.
type designSpec struct {
	prims map[string]primSpec
	regs  map[string]regSpec
}

// bitsFor is the number of bits needed to count 0..max. Independent
// re-derivation of the construction's width rule (ceil(log2(max+1)),
// minimum 1).
func bitsFor(max uint64) int {
	w := 1
	for max>>uint(w) != 0 {
		w++
	}
	return w
}

// runClassBounds are the SP800-22 longest-run class boundaries for block
// length m (Table 2-4 of the test suite specification).
func runClassBounds(m int) (lo, hi int, err error) {
	switch {
	case m < 8:
		return 0, 0, fmt.Errorf("longest-run block length %d too small", m)
	case m < 128:
		return 1, 4, nil
	case m < 6272:
		return 4, 9, nil
	default:
		return 10, 16, nil
	}
}

// specFor derives the expected structure of d from (N, Tests, Params)
// alone. Model fields beyond those three inputs are never consulted.
func specFor(d *design.Design) (*designSpec, error) {
	n := d.N
	p := d.Params
	s := &designSpec{
		prims: make(map[string]primSpec),
		regs:  make(map[string]regSpec),
	}
	addPrim := func(name, kind string, width, lanes int) {
		s.prims[name] = primSpec{kind: kind, width: width, lanes: lanes}
	}
	addReg := func(name, prim, facet string, lane, width, testID int) {
		s.regs[name] = regSpec{prim: prim, facet: facet, lane: lane, width: width, testID: testID}
	}

	// Infrastructure: the global bit counter counts every ingested bit,
	// worst case n.
	addPrim("global_bits", "counter", bitsFor(uint64(n)), 1)
	addReg("GLOBAL_BITS", "global_bits", "", 0, bitsFor(uint64(n)), 0)

	// The random walk serves test 13 directly and tests 1/3 through
	// S_final (the paper's omitted redundant ones counter). The walk value
	// spans [-n, n]: bitsFor(n) magnitude bits plus a sign bit. Readout is
	// offset-binary (value + n), worst case 2n.
	walkW := bitsFor(uint64(n)) + 1
	offW := bitsFor(uint64(2 * n))
	addPrim("cusum_s", "updown", walkW, 1)
	addPrim("cusum_ext", "minmax", walkW, 1)
	addReg("S_MAX", "cusum_ext", "max", 0, offW, 13)
	addReg("S_MIN", "cusum_ext", "min", 0, offW, 13)
	addReg("S_FINAL", "cusum_s", "", 0, offW, 13)

	// Test 3 (Runs): at most n runs; the one-bit previous-bit register is
	// block-internal scratch with no register-map entry.
	if d.Has(3) {
		addPrim("runs", "counter", bitsFor(uint64(n)), 1)
		addPrim("runs_prev", "register", 1, 1)
		addReg("N_RUNS", "runs", "", 0, bitsFor(uint64(n)), 3)
	}

	// Test 2 (Block Frequency): per-block ones count, worst case M per
	// block, one holding register per block. The running in-block counter
	// is scratch.
	if d.Has(2) {
		m := p.BlockFrequencyM
		nBlocks := n / m
		w := bitsFor(uint64(m))
		addPrim("bf_eps", "counter", w, 1)
		for i := 0; i < nBlocks; i++ {
			prim := fmt.Sprintf("bf_eps_%d", i)
			addPrim(prim, "register", w, 1)
			addReg(fmt.Sprintf("BF_EPS_%d", i), prim, "", 0, w, 2)
		}
	}

	// Test 4 (Longest Run): run lengths saturate at the top class bound
	// hi; the class histogram has hi-lo+1 bins, each counting at most
	// n/M blocks. Run counter and per-block max tracker are scratch.
	if d.Has(4) {
		lo, hi, err := runClassBounds(p.LongestRunM)
		if err != nil {
			return nil, err
		}
		nBlocks := n / p.LongestRunM
		addPrim("lr_run", "counter", bitsFor(uint64(hi)), 1)
		addPrim("lr_max", "max", bitsFor(uint64(hi)), 1)
		addPrim("lr_class", "bank", bitsFor(uint64(nBlocks)), hi-lo+1)
		for i := 0; i <= hi-lo; i++ {
			addReg(fmt.Sprintf("LR_NU_%d", i), "lr_class", "", i, bitsFor(uint64(nBlocks)), 4)
		}
	}

	// The pattern tests share ONE shift register, sized for the widest
	// implemented consumer: the template tests (7/8) need TemplateM
	// stages, the serial/ApEn pair SerialM — whichever is larger wins,
	// since a register narrower than any consumer's window cannot serve
	// it.
	if d.Has(7) || d.Has(8) || d.Has(11) || d.Has(12) {
		width := 0
		if d.Has(11) || d.Has(12) {
			width = p.SerialM
		}
		if (d.Has(7) || d.Has(8)) && p.TemplateM > width {
			width = p.TemplateM
		}
		addPrim("shared_pattern", "shiftreg", width, 1)
	}

	// Test 7 (Non-overlapping Template): per-block hit count W, worst
	// case blockLen/m+1 occurrences of an m-bit template with the
	// m-bit holdoff. Comparator, holdoff and fill counters are scratch.
	if d.Has(7) {
		m := p.TemplateM
		nBlocks := p.NonOverlappingN
		blockLen := n / nBlocks
		wMax := bitsFor(uint64(blockLen/m + 1))
		addPrim("no_cmp", "cmp", m, 1)
		addPrim("no_w", "counter", wMax, 1)
		addPrim("no_hold", "counter", bitsFor(uint64(m)), 1)
		addPrim("no_fill", "counter", bitsFor(uint64(m)), 1)
		for i := 0; i < nBlocks; i++ {
			prim := fmt.Sprintf("no_w_%d", i)
			addPrim(prim, "register", wMax, 1)
			addReg(fmt.Sprintf("NO_W_%d", i), prim, "", 0, wMax, 7)
		}
	}

	// Test 8 (Overlapping Template): the occurrence count saturates at
	// K=5, the class histogram has K+1 bins each counting at most
	// n/OverlappingM blocks.
	if d.Has(8) {
		const k = 5
		m := p.TemplateM
		nBlocks := n / p.OverlappingM
		addPrim("ov_cmp", "cmp", m, 1)
		addPrim("ov_occ", "counter", bitsFor(uint64(k)), 1)
		addPrim("ov_fill", "counter", bitsFor(uint64(m)), 1)
		addPrim("ov_class", "bank", bitsFor(uint64(nBlocks)), k+1)
		for i := 0; i <= k; i++ {
			addReg(fmt.Sprintf("OV_NU_%d", i), "ov_class", "", i, bitsFor(uint64(nBlocks)), 8)
		}
	}

	// Tests 11/12 (Serial / Approximate Entropy): pattern histograms for
	// window widths m, m-1, m-2, each lane counting at most n cyclic
	// occurrences. ApEn reads the SAME counters — it must contribute no
	// hardware and no registers of its own (the unified implementation),
	// so every serial register carries test ID 11 even when only test 12
	// selected the engine. The head register stores the first m-1 bits
	// for the cyclic wrap-around.
	if d.Has(11) || d.Has(12) {
		m := p.SerialM
		for _, w := range []int{m, m - 1, m - 2} {
			prim := fmt.Sprintf("serial_nu%d", w)
			addPrim(prim, "bank", bitsFor(uint64(n)), 1<<uint(w))
			for pat := 0; pat < 1<<uint(w); pat++ {
				addReg(fmt.Sprintf("SERIAL_NU%d_%0*b", w, w, pat),
					prim, "", pat, bitsFor(uint64(n)), 11)
			}
		}
		addPrim("serial_head", "register", m-1, 1)
	}

	return s, nil
}

// expectedResources recomputes the FF/LUT cost of a primitive from its
// kind and geometry — the same per-kind formulas the simulator's area
// model declares, re-stated here so drift between a primitive's declared
// width and its accounted resources is caught.
func expectedResources(p design.Prim) (ffs, luts int, err error) {
	w := p.Width
	switch p.Kind {
	case "counter":
		return w, w, nil
	case "updown":
		return w, w + 2, nil
	case "register":
		return w, w / 4, nil
	case "minmax":
		return 2 * w, 2 * (w/3 + w/2), nil
	case "max":
		return w, w/3 + w/2, nil
	case "shiftreg":
		return w, 0, nil
	case "cmp":
		return 0, w/6 + 1, nil
	case "bank":
		return p.Lanes * w, p.Lanes*w/2 + p.Lanes/4 + 1, nil
	default:
		return 0, 0, fmt.Errorf("unknown primitive kind %q", p.Kind)
	}
}
