package designlint

import (
	"strings"
	"testing"

	"repro/internal/design"
)

// TestShippedDesignsClean is the headline property: the eight shipped
// design points carry zero findings — every width, address, trace and
// sharing trick checks out against the independently derived spec.
func TestShippedDesignsClean(t *testing.T) {
	findings, err := CheckShipped()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestRulesResolvable: every rule is selectable by name, names are
// unique, and unknown names error.
func TestRulesResolvable(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range Rules() {
		if r.Name == "" || r.Doc == "" {
			t.Errorf("rule %+v missing name or doc", r)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %s", r.Name)
		}
		seen[r.Name] = true
		got, err := RuleByName(r.Name)
		if err != nil || got != r {
			t.Errorf("RuleByName(%s) = %v, %v", r.Name, got, err)
		}
	}
	if _, err := RuleByName("nope"); err == nil {
		t.Error("RuleByName(nope) succeeded")
	}
}

// TestSpecCoversEveryPrimitive: the derivation names every constructed
// primitive and every register of every shipped design — no statistic is
// outside the checker's model.
func TestSpecCoversEveryPrimitive(t *testing.T) {
	designs, err := design.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range designs {
		s, err := specFor(d)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if len(s.prims) != len(d.Prims) {
			t.Errorf("%s: spec derives %d primitives, netlist has %d",
				d.Name, len(s.prims), len(d.Prims))
		}
		if len(s.regs) != len(d.Regs) {
			t.Errorf("%s: spec derives %d registers, map has %d",
				d.Name, len(s.regs), len(d.Regs))
		}
	}
}

// TestFindingString pins the report format the CLI prints.
func TestFindingString(t *testing.T) {
	f := Finding{Design: "n128-light", Rule: "regmap", Msg: "boom"}
	if got, want := f.String(), "n128-light: [regmap] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestCheckSubset: Check with an explicit rule runs only that rule.
func TestCheckSubset(t *testing.T) {
	designs, err := design.All()
	if err != nil {
		t.Fatal(err)
	}
	d := designs[0].Clone()
	d.MuxWords++ // resources violation only
	all := Check(d)
	if len(all) == 0 {
		t.Fatal("mux mutation produced no findings")
	}
	onlyRegmap := Check(d, ruleRegMap)
	for _, f := range onlyRegmap {
		if f.Rule != "regmap" {
			t.Errorf("Check(d, regmap) produced foreign finding %s", f)
		}
	}
	onlyRes := Check(d, ruleResources)
	found := false
	for _, f := range onlyRes {
		if strings.Contains(f.Msg, "multiplexer") {
			found = true
		}
	}
	if !found {
		t.Error("Check(d, resources) missed the mux mutation")
	}
}
