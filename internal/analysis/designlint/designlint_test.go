package designlint

import (
	"strings"
	"testing"

	"repro/internal/design"
	"repro/internal/hwblock"
	"repro/internal/nist"
)

// TestShippedDesignsClean is the headline property: the eight shipped
// design points carry zero findings — every width, address, trace and
// sharing trick checks out against the independently derived spec.
func TestShippedDesignsClean(t *testing.T) {
	findings, err := CheckShipped()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestRulesResolvable: every rule is selectable by name, names are
// unique, and unknown names error.
func TestRulesResolvable(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range Rules() {
		if r.Name == "" || r.Doc == "" {
			t.Errorf("rule %+v missing name or doc", r)
		}
		if seen[r.Name] {
			t.Errorf("duplicate rule name %s", r.Name)
		}
		seen[r.Name] = true
		got, err := RuleByName(r.Name)
		if err != nil || got != r {
			t.Errorf("RuleByName(%s) = %v, %v", r.Name, got, err)
		}
	}
	if _, err := RuleByName("nope"); err == nil {
		t.Error("RuleByName(nope) succeeded")
	}
}

// TestSpecCoversEveryPrimitive: the derivation names every constructed
// primitive and every register of every shipped design — no statistic is
// outside the checker's model.
func TestSpecCoversEveryPrimitive(t *testing.T) {
	designs, err := design.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range designs {
		s, err := specFor(d)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if len(s.prims) != len(d.Prims) {
			t.Errorf("%s: spec derives %d primitives, netlist has %d",
				d.Name, len(s.prims), len(d.Prims))
		}
		if len(s.regs) != len(d.Regs) {
			t.Errorf("%s: spec derives %d registers, map has %d",
				d.Name, len(s.regs), len(d.Regs))
		}
	}
}

// TestSharedShiftRegWidestConsumer: with a serial window wider than the
// template window, both the construction and the derived spec size the
// shared pattern shift register for the serial consumer (it used to be
// TemplateM unconditionally whenever tests 7/8 were present, leaving the
// serial engine a window wider than the register).
func TestSharedShiftRegWidestConsumer(t *testing.T) {
	p := nist.RecommendedParams(128)
	p.TemplateM = 4
	p.TemplateB = 0b0001
	p.SerialM = 5
	cfg := hwblock.Config{Name: "n128-serialwide", N: 128, Tests: []int{7, 11, 12, 13}, Params: p}
	b, err := hwblock.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Clock a full sequence through the structural path: the serial
	// engine reads Window(SerialM), which panics if the register was
	// sized for the narrower template consumer.
	if err := b.SetPath(hwblock.CycleAccurate); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.N; i++ {
		if err := b.Clock(byte(i & 1)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := design.FromBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, prim := range d.Prims {
		if prim.Name == "shared_pattern" {
			found = true
			if prim.Width != p.SerialM {
				t.Errorf("shared_pattern is %d bits, want %d (the wider serial window)",
					prim.Width, p.SerialM)
			}
		}
	}
	if !found {
		t.Fatal("no shared_pattern primitive constructed")
	}
	for _, f := range Check(d) {
		t.Errorf("%s", f)
	}
}

// TestFindingString pins the report format the CLI prints.
func TestFindingString(t *testing.T) {
	f := Finding{Design: "n128-light", Rule: "regmap", Msg: "boom"}
	if got, want := f.String(), "n128-light: [regmap] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestCheckSubset: Check with an explicit rule runs only that rule.
func TestCheckSubset(t *testing.T) {
	designs, err := design.All()
	if err != nil {
		t.Fatal(err)
	}
	d := designs[0].Clone()
	d.MuxWords++ // resources violation only
	all := Check(d)
	if len(all) == 0 {
		t.Fatal("mux mutation produced no findings")
	}
	onlyRegmap := Check(d, ruleRegMap)
	for _, f := range onlyRegmap {
		if f.Rule != "regmap" {
			t.Errorf("Check(d, regmap) produced foreign finding %s", f)
		}
	}
	onlyRes := Check(d, ruleResources)
	found := false
	for _, f := range onlyRes {
		if strings.Contains(f.Msg, "multiplexer") {
			found = true
		}
	}
	if !found {
		t.Error("Check(d, resources) missed the mux mutation")
	}
}
