package designlint

import (
	"strings"
	"testing"

	"repro/internal/design"
	"repro/internal/hwsim"
)

// The mutation-kill suite: each rule must catch the seeded break it was
// written for. Every mutation starts from a clean clone of the richest
// shipped design point (n=65536, high variant — all nine tests), applies
// one deliberate defect, and asserts the expected rule fires with the
// expected diagnosis. A rule that stays silent on its mutation is dead
// weight, so these tests are the checker's own regression gate.

// baseDesign returns a clean, detached clone of the n65536-high model.
func baseDesign(t *testing.T) *design.Design {
	t.Helper()
	designs, err := design.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range designs {
		if d.Name == "n65536-high" {
			c := d.Clone()
			if fs := Check(c); len(fs) != 0 {
				t.Fatalf("clean clone has findings: %v", fs)
			}
			return c
		}
	}
	t.Fatal("n65536-high not among shipped designs")
	return nil
}

// mutate locates a primitive by name and hands it to f for editing. The
// resource declaration is re-derived afterwards so only the intended
// defect is seeded (width mutations should trip counterwidth, not the
// accounting rule).
func mutatePrim(t *testing.T, d *design.Design, name string, f func(*design.Prim)) {
	t.Helper()
	for i := range d.Prims {
		if d.Prims[i].Name == name {
			f(&d.Prims[i])
			ffs, luts, err := expectedResources(d.Prims[i])
			if err != nil {
				t.Fatal(err)
			}
			d.Prims[i].FFs, d.Prims[i].LUTs = ffs, luts
			return
		}
	}
	t.Fatalf("primitive %s not in model", name)
}

func findReg(t *testing.T, d *design.Design, name string) *design.Reg {
	t.Helper()
	for i := range d.Regs {
		if d.Regs[i].Name == name {
			return &d.Regs[i]
		}
	}
	t.Fatalf("register %s not in model", name)
	return nil
}

// assertKilled runs all rules over the mutant and demands a finding from
// the named rule whose message contains want.
func assertKilled(t *testing.T, d *design.Design, rule, want string) {
	t.Helper()
	findings := Check(d)
	for _, f := range findings {
		if f.Rule == rule && strings.Contains(f.Msg, want) {
			return
		}
	}
	t.Errorf("mutation survived: no [%s] finding containing %q; got %v", rule, want, findings)
}

func TestMutationNarrowedCounter(t *testing.T) {
	d := baseDesign(t)
	mutatePrim(t, d, "runs", func(p *design.Prim) { p.Width-- })
	assertKilled(t, d, "counterwidth", "too narrow")
}

func TestMutationWidenedCounter(t *testing.T) {
	d := baseDesign(t)
	mutatePrim(t, d, "global_bits", func(p *design.Prim) { p.Width++ })
	assertKilled(t, d, "counterwidth", "over the resource budget")
}

func TestMutationWrongKind(t *testing.T) {
	d := baseDesign(t)
	mutatePrim(t, d, "runs", func(p *design.Prim) { p.Kind = "register" })
	assertKilled(t, d, "counterwidth", "the design calls for a counter")
}

func TestMutationMissingPrimitive(t *testing.T) {
	d := baseDesign(t)
	kept := d.Prims[:0]
	for _, p := range d.Prims {
		if p.Name != "lr_max" {
			kept = append(kept, p)
		}
	}
	d.Prims = kept
	assertKilled(t, d, "counterwidth", "missing from the netlist")
}

func TestMutationForeignPrimitive(t *testing.T) {
	d := baseDesign(t)
	d.Prims = append(d.Prims, design.Prim{
		Kind: "counter", Name: "mystery", Width: 4, Lanes: 1, FFs: 4, LUTs: 4,
	})
	assertKilled(t, d, "counterwidth", "not derivable")
}

func TestMutationWrongLaneCount(t *testing.T) {
	d := baseDesign(t)
	mutatePrim(t, d, "ov_class", func(p *design.Prim) { p.Lanes-- })
	assertKilled(t, d, "counterwidth", "lanes")
}

func TestMutationCollidingAddress(t *testing.T) {
	d := baseDesign(t)
	findReg(t, d, "N_RUNS").Addr = findReg(t, d, "GLOBAL_BITS").Addr
	assertKilled(t, d, "regmap", "address collision")
}

func TestMutationAddressHole(t *testing.T) {
	d := baseDesign(t)
	// Push the last register past the dense tiling.
	d.Regs[len(d.Regs)-1].Addr += 2
	assertKilled(t, d, "regmap", "hole in the address map")
}

func TestMutationMissingBusSplit(t *testing.T) {
	d := baseDesign(t)
	r := findReg(t, d, "S_FINAL") // 18 bits at n=65536: needs two words
	if r.Words < 2 {
		t.Fatalf("S_FINAL occupies %d word(s); expected a multi-word register", r.Words)
	}
	r.Words = 1
	assertKilled(t, d, "regmap", "exceeds the 16-bit bus")
}

func TestMutationOversizedSplit(t *testing.T) {
	d := baseDesign(t)
	findReg(t, d, "N_RUNS").Words = 3
	assertKilled(t, d, "regmap", "fit in")
}

func TestMutationAddressSpaceOverflow(t *testing.T) {
	d := baseDesign(t)
	d.Regs[len(d.Regs)-1].Words = 200
	assertKilled(t, d, "regmap", "exceeding")
}

func TestMutationDanglingRegister(t *testing.T) {
	d := baseDesign(t)
	d.Regs = append(d.Regs, design.Reg{
		Name: "GHOST_REG", TestID: 0, Addr: d.Words, Width: 8, Words: 1,
	})
	d.Words++
	d.MuxWords++
	assertKilled(t, d, "regmap", "dangling register GHOST_REG")
}

func TestMutationUnreadStatistic(t *testing.T) {
	d := baseDesign(t)
	kept := d.Regs[:0]
	for _, r := range d.Regs {
		if r.Name != "N_RUNS" {
			kept = append(kept, r)
		}
	}
	d.Regs = kept
	assertKilled(t, d, "regmap", "unreadable by software")
}

func TestMutationWrongRegisterWidth(t *testing.T) {
	d := baseDesign(t)
	findReg(t, d, "N_RUNS").Width--
	assertKilled(t, d, "regmap", "source statistic")
}

func TestMutationAliasedStatistic(t *testing.T) {
	d := baseDesign(t)
	dup := *findReg(t, d, "S_FINAL")
	dup.Addr = d.Words
	d.Regs = append(d.Regs, dup)
	d.Words += dup.Words
	d.MuxWords += dup.Words
	assertKilled(t, d, "sharing", "alias the same statistic")
}

func TestMutationRedundantOnesCounter(t *testing.T) {
	d := baseDesign(t)
	d.Prims = append(d.Prims, design.Prim{
		Kind: "counter", Name: "ones_cnt", Width: 17, Lanes: 1, FFs: 17, LUTs: 17,
	})
	assertKilled(t, d, "sharing", "redundant ones counter")
}

func TestMutationOnesRegister(t *testing.T) {
	d := baseDesign(t)
	d.Regs = append(d.Regs, design.Reg{
		Name: "N_ONES", TestID: 1, Addr: d.Words, Width: 17, Words: 2,
	})
	d.Words += 2
	d.MuxWords += 2
	assertKilled(t, d, "sharing", "ones count")
}

func TestMutationPrivateShiftRegister(t *testing.T) {
	d := baseDesign(t)
	d.Prims = append(d.Prims, design.Prim{
		Kind: "shiftreg", Name: "my_shift", Width: 9, Lanes: 1, FFs: 9, LUTs: 0,
	})
	assertKilled(t, d, "sharing", "defeats the shared-pattern trick")
}

func TestMutationDedicatedApEnHardware(t *testing.T) {
	d := baseDesign(t)
	if !d.Has(12) {
		t.Fatal("base design lacks test 12")
	}
	d.Prims = append(d.Prims, design.Prim{
		Kind: "counter", Name: "apen_acc", Width: 8, Lanes: 1, FFs: 8, LUTs: 8,
	})
	assertKilled(t, d, "sharing", "must reuse the serial counters")
}

func TestMutationUnimplementedTestID(t *testing.T) {
	d := baseDesign(t)
	findReg(t, d, "N_RUNS").TestID = 5
	assertKilled(t, d, "sharing", "does not implement")
}

func TestMutationResourceDrift(t *testing.T) {
	d := baseDesign(t)
	d.Prims[0].FFs++
	assertKilled(t, d, "resources", "accounting drifted")
}

func TestMutationMuxMismatch(t *testing.T) {
	d := baseDesign(t)
	d.MuxWords++
	assertKilled(t, d, "resources", "multiplexer")
}

// stickyPrim is the dropped-reset mutation: a stateful primitive whose
// Reset forgets to clear the loaded value.
type stickyPrim struct{ v uint64 }

func (s *stickyPrim) PrimName() string           { return "sticky" }
func (s *stickyPrim) Resources() hwsim.Resources { return hwsim.Resources{} }
func (s *stickyPrim) Reset()                     {} // the defect
func (s *stickyPrim) Load(v uint64)              { s.v = v }
func (s *stickyPrim) Value() uint64              { return s.v }

// opaquePrim has state the checker cannot reach — it must be reported as
// unverifiable rather than silently passed.
type opaquePrim struct{}

func (opaquePrim) PrimName() string           { return "opaque" }
func (opaquePrim) Resources() hwsim.Resources { return hwsim.Resources{} }
func (opaquePrim) Reset()                     {}

func TestMutationDroppedReset(t *testing.T) {
	nl := hwsim.NewNetlist("mutant")
	hwsim.NewCounter(nl, "good", 255)
	nl.AddPrimitive(&stickyPrim{})
	d := &design.Design{Name: "reset-mutant", N: 8, Netlist: nl}
	findings := Check(d, ruleReset)
	killed := false
	for _, f := range findings {
		if strings.Contains(f.Msg, "sticky") && strings.Contains(f.Msg, "Reset left nonzero state") {
			killed = true
		}
		if strings.Contains(f.Msg, "good") {
			t.Errorf("healthy counter flagged: %s", f)
		}
	}
	if !killed {
		t.Errorf("dropped reset survived; findings: %v", findings)
	}
}

func TestResetRuleFlagsUnverifiablePrimitive(t *testing.T) {
	nl := hwsim.NewNetlist("opaque")
	nl.AddPrimitive(opaquePrim{})
	d := &design.Design{Name: "opaque", N: 8, Netlist: nl}
	findings := Check(d, ruleReset)
	if len(findings) != 1 || !strings.Contains(findings[0].Msg, "unverifiable") {
		t.Errorf("opaque primitive not reported: %v", findings)
	}
}
