// Package allocdemo is the golden suite for the noalloc analyzer: every
// heap-allocating construct it must flag inside the hotpath closure, the
// by-value shapes it must stay silent on, and the waiver behaviour.
package allocdemo

import "fmt"

type point struct{ x, y int }

//trnglint:hotpath
func builtins(buf []byte, n int) []byte {
	s := make([]byte, n) // want `hot path builtins: make allocates`
	_ = s
	p := new(int) // want `hot path builtins: new allocates`
	_ = p
	buf = append(buf, 1) // want `hot path builtins: append may grow its backing array`
	return buf
}

//trnglint:hotpath
func literals() {
	_ = []int{1, 2}       // want `hot path literals: slice literal allocates`
	_ = map[int]int{1: 2} // want `hot path literals: map literal allocates`
	v := point{1, 2}      // by-value struct literal: stack-resident, clean
	_ = v
	q := &point{3, 4} // want `hot path literals: address of composite literal may escape to the heap`
	_ = q
	var a [4]uint64 // by-value array: clean
	_ = a
}

//trnglint:hotpath
func conversions(s string, b []byte) {
	_ = []byte(s)      // want `hot path conversions: string conversion allocates`
	_ = string(b)      // want `hot path conversions: string conversion allocates`
	_ = []rune(s)      // want `hot path conversions: string conversion allocates`
	_ = uint64(len(s)) // numeric conversion: free, clean
}

//trnglint:hotpath
func concat(a, b string) string {
	c := a
	c += b       // want `hot path concat: string concatenation allocates`
	return a + b // want `hot path concat: string concatenation allocates`
}

func sink(v any)      { _ = v }
func vsink(vs ...int) { _ = vs }
func esink(err error) { _ = err }

//trnglint:hotpath
func boxing(n int, e error) {
	sink(n)    // want `hot path boxing: interface conversion boxes int`
	sink(e)    // interface-to-interface: carries the existing box, clean
	esink(nil) // untyped nil: no box, clean
	_ = any(n) // want `hot path boxing: interface conversion boxes int`
}

//trnglint:hotpath
func variadic(vals []int) {
	vsink(1, 2)    // want `hot path variadic: variadic call allocates its argument slice`
	vsink()        // empty variadic slot: no slice built, clean
	vsink(vals...) // explicit spread reuses the caller's slice, clean
}

//trnglint:hotpath
func wrap(err error) error {
	return fmt.Errorf("ingest: %w", err) // want `hot path wrap: variadic call allocates its argument slice`
}

//trnglint:hotpath
func boom(code int) {
	panic(code) // want `hot path boom: interface conversion boxes the panic argument`
}

//trnglint:hotpath
func retBox(n int) any {
	return n // want `hot path retBox: interface conversion boxes int`
}

//trnglint:hotpath
func closure() func() {
	f := func() {} // want `hot path closure: function literal allocates a closure`
	return f
}

// helper is unannotated but called from a hot body, so the closure
// absorbs it and its allocation is a finding.

//trnglint:hotpath
func caller() { helper() }

func helper() {
	_ = make([]int, 4) // want `hot path helper: make allocates`
}

// waivedCall's callee is deliberately cold: the //trnglint:alloc on the
// call line stops the closure, so coldFinalize's allocations are clean.

//trnglint:hotpath
func waivedCall() {
	coldFinalize() //trnglint:alloc sequence-boundary teardown, amortized over n bits
}

func coldFinalize() {
	_ = make([]int, 64)
	_ = fmt.Sprintf("report")
}

// waivedLine documents a deliberate allocation in place.

//trnglint:hotpath
func waivedLine() {
	_ = make([]int, 8) //trnglint:alloc recycled scratch, capacity amortizes to zero
}

// generic hot functions: the instantiated call resolves through Origin,
// so the generic body is in the closure.

//trnglint:hotpath
func genericCaller() {
	_ = identity(3)
}

func identity[T any](v T) T {
	_ = make([]T, 1) // want `hot path identity: make allocates`
	return v         // type-parameter result: instantiation decides layout, clean
}

// coldFree is outside the closure entirely: never flagged.
func coldFree() {
	_ = make([]int, 2)
	_ = fmt.Sprintf("%d", 1)
}
