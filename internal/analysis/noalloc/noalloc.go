// Package noalloc flags flow-reachable heap-allocating constructs inside
// hot-path code. The platform's on-the-fly requirement — testing keeps up
// with the generator at line rate — is pinned dynamically by the
// 0 allocs/op benchmark gates (BenchmarkFleetSteadyState,
// BenchmarkFleetBitSliced); noalloc proves the same discipline statically,
// over every execution path of every function in the //trnglint:hotpath
// closure, not just the paths a benchmark happens to drive.
//
// Flagged constructs: make and new; append (the growth path allocates);
// slice, map and address-taken composite literals; interface boxing
// (concrete arguments to interface parameters, interface conversions and
// returns, panic arguments — the shape behind fmt and error wrapping);
// string↔[]byte/[]rune conversions; non-empty variadic calls (the
// argument slice); string concatenation; and function literals (the
// closure cell). A deliberate allocation is waived in place with
// //trnglint:alloc <reason>.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags heap-allocating constructs in //trnglint:hotpath code.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "hot-path code (//trnglint:hotpath closure) must not contain heap-allocating constructs",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for fn, decl := range pass.HotFuncs() {
		checkBody(pass, fn, decl)
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, fn *types.Func, decl *ast.FuncDecl) {
	label := analysis.FuncLabel(fn)
	sig, _ := fn.Type().(*types.Signature)
	analysis.WithStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path %s: function literal allocates a closure", label)
			return false // its body runs on whatever schedule captures it
		case *ast.CallExpr:
			checkCall(pass, label, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, label, n, stack)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypeOf(n.X)) {
				pass.Reportf(n.Pos(), "hot path %s: string concatenation allocates", label)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "hot path %s: string concatenation allocates", label)
			}
		case *ast.ReturnStmt:
			checkReturn(pass, label, sig, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, label string, call *ast.CallExpr) {
	// Conversions: only the string↔[]byte/[]rune pairs copy their operand
	// to the heap; numeric and named-type conversions are free.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			if allocatingConversion(tv.Type, pass.TypeOf(call.Args[0])) {
				pass.Reportf(call.Pos(), "hot path %s: string conversion allocates", label)
			} else if boxes(tv.Type, pass.TypeOf(call.Args[0])) {
				pass.Reportf(call.Pos(), "hot path %s: interface conversion boxes %s", label, pass.TypeOf(call.Args[0]))
			}
		}
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "hot path %s: make allocates", label)
			case "new":
				pass.Reportf(call.Pos(), "hot path %s: new allocates", label)
			case "append":
				pass.Reportf(call.Pos(), "hot path %s: append may grow its backing array", label)
			case "panic":
				// panic's parameter is any; a concrete argument is boxed.
				if len(call.Args) == 1 && boxes(types.NewInterfaceType(nil, nil), pass.TypeOf(call.Args[0])) {
					pass.Reportf(call.Pos(), "hot path %s: interface conversion boxes the panic argument", label)
				}
			}
			return
		}
	}

	sig, _ := pass.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
		// A non-empty variadic slot without an explicit ...spread builds a
		// fresh []T per call — the allocation behind fmt-style wrapping.
		if call.Ellipsis == token.NoPos && len(call.Args) > fixed {
			pass.Reportf(call.Pos(), "hot path %s: variadic call allocates its argument slice", label)
		}
	}
	// Fixed interface parameters box concrete arguments. The variadic part
	// is already covered by the slice report above (boxing is part of
	// building the []any), so only the fixed slots are checked here.
	for i, arg := range call.Args {
		if i >= fixed {
			break
		}
		if boxes(sig.Params().At(i).Type(), pass.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "hot path %s: interface conversion boxes %s", label, pass.TypeOf(arg))
		}
	}
}

func checkCompositeLit(pass *analysis.Pass, label string, lit *ast.CompositeLit, stack []ast.Node) {
	// A composite literal nested inside another literal is part of the
	// enclosing allocation (or by-value layout); flag the outermost only.
	if len(stack) >= 2 {
		switch parent := stack[len(stack)-2].(type) {
		case *ast.CompositeLit:
			return
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				pass.Reportf(parent.Pos(), "hot path %s: address of composite literal may escape to the heap", label)
				return
			}
		}
	}
	switch pass.TypeOf(lit).Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "hot path %s: slice literal allocates", label)
	case *types.Map:
		pass.Reportf(lit.Pos(), "hot path %s: map literal allocates", label)
	}
	// By-value struct and array literals stay on the stack (the fleet's
	// item{...} values travel whole through the shard channels) — clean.
}

func checkReturn(pass *analysis.Pass, label string, sig *types.Signature, ret *ast.ReturnStmt) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return // naked return or multi-value forwarding: no conversion here
	}
	for i, res := range ret.Results {
		if boxes(sig.Results().At(i).Type(), pass.TypeOf(res)) {
			pass.Reportf(res.Pos(), "hot path %s: interface conversion boxes %s", label, pass.TypeOf(res))
		}
	}
}

// boxes reports whether assigning a value of type src to a destination of
// type dst wraps it in a fresh interface allocation: dst is a concrete
// interface, src a concrete non-interface type. Type parameters are
// excluded on both sides — a generic T's interface underlying is a
// constraint, not a box, and instantiation decides the real layout.
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if _, ok := dst.(*types.TypeParam); ok {
		return false
	}
	if _, ok := src.(*types.TypeParam); ok {
		return false
	}
	if !types.IsInterface(dst.Underlying()) {
		return false
	}
	if types.IsInterface(src.Underlying()) {
		return false // interface-to-interface carries the existing box
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// allocatingConversion reports whether a conversion dst(src) copies its
// operand: the string↔[]byte and string↔[]rune pairs.
func allocatingConversion(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	return (isString(dst) && isCharSlice(src)) || (isCharSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isCharSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
