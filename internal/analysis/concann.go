package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Concurrency-contract annotations. Unlike the line waivers in
// directive.go, these attach to declarations and carry meaning for the
// conclint analyzers (guardedby, lockorder):
//
//	type Pool struct {
//		mu sync.Mutex
//		//trnglint:guardedby mu
//		closed bool
//	}
//
//	//trnglint:holds pushMu
//	func (s *Stream) flushStaged() { ... }
//
// The mutex path is resolved relative to the annotated declaration: for a
// field, relative to its enclosing struct (dotted paths such as pool.mu
// reach through struct- or pointer-to-struct-typed fields); for a method,
// relative to the receiver type; package-level variables are the fallback
// for the first path element. The resolved identity is the mutex field's
// *types.Var — the same object LockWalk keys its lock sets on.

// GuardSpec records one //trnglint:guardedby annotation.
type GuardSpec struct {
	Field types.Object // the guarded field
	Mutex types.Object // resolved lock identity
	Path  string       // the annotation's spelling, for diagnostics
	Pos   token.Pos    // the annotated declaration's position
}

// HoldsSpec records one //trnglint:holds annotation.
type HoldsSpec struct {
	Fn    *types.Func
	Mutex types.Object
	Path  string
	Pos   token.Pos
}

// ConcAnnotations is the parsed set of concurrency annotations of one
// package.
type ConcAnnotations struct {
	// Guards maps a guarded field's object to its spec.
	Guards map[types.Object]*GuardSpec
	// Holds maps a function's object to its lock preconditions.
	Holds map[*types.Func][]*HoldsSpec
}

// GuardOf returns the guard spec for the field object, or nil.
func (c *ConcAnnotations) GuardOf(field types.Object) *GuardSpec {
	if c == nil || field == nil {
		return nil
	}
	return c.Guards[field]
}

// HoldsOf returns the lock preconditions of fn (nil when unannotated).
func (c *ConcAnnotations) HoldsOf(fn *types.Func) []*HoldsSpec {
	if c == nil || fn == nil {
		return nil
	}
	return c.Holds[fn]
}

// AssumedLocks returns the mutex identities fn's //trnglint:holds
// annotations declare, for seeding LockWalk.
func (c *ConcAnnotations) AssumedLocks(fn *types.Func) []types.Object {
	specs := c.HoldsOf(fn)
	if len(specs) == 0 {
		return nil
	}
	out := make([]types.Object, 0, len(specs))
	for _, s := range specs {
		out = append(out, s.Mutex)
	}
	return out
}

// CollectConcAnnotations parses every guardedby/holds annotation in the
// pass's files. Malformed annotations (unknown path, target not a mutex,
// missing argument) are themselves reported through report, so a typo in
// a contract is a finding rather than a silently vacuous proof; pass nil
// to skip reporting (the non-owning analyzers do, so each bad annotation
// is diagnosed exactly once, by guardedby).
func CollectConcAnnotations(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(pos token.Pos, format string, args ...any)) *ConcAnnotations {
	if report == nil {
		report = func(token.Pos, string, ...any) {}
	}
	c := &ConcAnnotations{
		Guards: make(map[types.Object]*GuardSpec),
		Holds:  make(map[*types.Func][]*HoldsSpec),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				if decl.Tok != token.TYPE {
					continue
				}
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					c.collectStruct(pkg, info, st, report)
				}
			case *ast.FuncDecl:
				c.collectFunc(pkg, info, decl, report)
			}
		}
	}
	return c
}

// directiveArg extracts the argument of "//trnglint:<verb> <arg...>" from
// a comment group, returning the directive comment's position.
func directiveArg(cg *ast.CommentGroup, verb string) (arg string, pos token.Pos, ok bool) {
	if cg == nil {
		return "", token.NoPos, false
	}
	want := directivePrefix + verb
	for _, cm := range cg.List {
		if cm.Text != want && !strings.HasPrefix(cm.Text, want+" ") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(cm.Text, want))
		return rest, cm.Pos(), true
	}
	return "", token.NoPos, false
}

func (c *ConcAnnotations) collectStruct(pkg *types.Package, info *types.Info, st *ast.StructType, report func(token.Pos, string, ...any)) {
	for _, field := range st.Fields.List {
		path, pos, ok := directiveArg(field.Doc, "guardedby")
		if !ok {
			path, pos, ok = directiveArg(field.Comment, "guardedby")
		}
		if !ok {
			continue
		}
		// Report malformed annotations at the field, not the comment, so
		// the finding lands on the declaration it fails to protect.
		pos = field.Pos()
		if path == "" {
			report(pos, "guardedby needs a mutex path (e.g. //trnglint:guardedby mu)")
			continue
		}
		if len(field.Names) == 0 {
			report(pos, "guardedby on an embedded field is not supported; name the field")
			continue
		}
		for _, name := range field.Names {
			fieldObj := info.Defs[name]
			if fieldObj == nil {
				continue
			}
			// The enclosing struct is the field's parent type; resolve the
			// path against it so sibling fields (mu) and dotted reaches
			// (pool.mu) both work.
			owner := fieldOwnerType(fieldObj)
			mu := resolveMutexPath(pkg, owner, path)
			if mu == nil {
				report(pos, "guardedby %s: cannot resolve to a sync.Mutex/RWMutex (sibling field, dotted field path, or package-level mutex)", path)
				continue
			}
			c.Guards[fieldObj] = &GuardSpec{Field: fieldObj, Mutex: mu, Path: path, Pos: pos}
		}
	}
}

func (c *ConcAnnotations) collectFunc(pkg *types.Package, info *types.Info, decl *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	path, pos, ok := directiveArg(decl.Doc, "holds")
	if !ok {
		return
	}
	pos = decl.Name.Pos()
	fn, _ := info.Defs[decl.Name].(*types.Func)
	if fn == nil {
		return
	}
	if path == "" {
		report(pos, "holds needs a mutex path (e.g. //trnglint:holds mu)")
		return
	}
	var recvType types.Type
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		recvType = recv.Type()
	}
	for _, one := range strings.Fields(path) {
		mu := resolveMutexPath(pkg, recvType, one)
		if mu == nil {
			report(pos, "holds %s: cannot resolve to a sync.Mutex/RWMutex (receiver field, dotted field path, or package-level mutex)", one)
			continue
		}
		c.Holds[fn] = append(c.Holds[fn], &HoldsSpec{Fn: fn, Mutex: mu, Path: one, Pos: pos})
	}
}

// fieldOwnerType returns the struct type a field object belongs to, found
// via the type checker's recorded parent scope... fields have no scope, so
// instead we record the owner by searching the package for the named type
// whose underlying struct contains the object. Package-local structs only;
// anonymous structs fall back to nil (path then resolves against package
// scope only).
func fieldOwnerType(field types.Object) types.Type {
	pkg := field.Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return tn.Type()
			}
		}
	}
	return nil
}

// resolveMutexPath resolves a dotted annotation path to a mutex identity:
// the first element is a field of base (embedding included) or a
// package-level variable; each later element is a field of the previous
// one's struct type. The final object must be (a pointer to) sync.Mutex
// or sync.RWMutex.
func resolveMutexPath(pkg *types.Package, base types.Type, path string) types.Object {
	parts := strings.Split(path, ".")
	var cur types.Object
	var curType types.Type
	// First element: field of base, else package-level var.
	if base != nil {
		if obj, _, _ := types.LookupFieldOrMethod(base, true, pkg, parts[0]); obj != nil {
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				cur, curType = v, v.Type()
			}
		}
	}
	if cur == nil {
		if v, ok := pkg.Scope().Lookup(parts[0]).(*types.Var); ok {
			cur, curType = v, v.Type()
		}
	}
	if cur == nil {
		return nil
	}
	for _, part := range parts[1:] {
		obj, _, _ := types.LookupFieldOrMethod(curType, true, pkg, part)
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			return nil
		}
		cur, curType = v, v.Type()
	}
	if !isSyncMutexType(curType) {
		return nil
	}
	return cur
}

// CalleeFunc resolves the *types.Func a call expression invokes (methods
// and plain functions; nil for builtins, conversions, and calls through
// function-typed values).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// FieldObjectOf resolves the struct-field object a selector expression
// reads or writes (s.drained → Stream.drained), reaching through pointers
// and embedded fields; nil when e is not a field selection.
func FieldObjectOf(info *types.Info, e *ast.SelectorExpr) types.Object {
	if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
		return fieldByIndexPath(s.Recv(), s.Index())
	}
	return nil
}
