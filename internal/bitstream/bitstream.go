// Package bitstream provides packed binary sequences and streaming access
// to them. It is the common currency between the TRNG models, the hardware
// testing block and the reference NIST test suite: sources produce a
// Sequence (or a Reader), consumers walk it bit by bit.
package bitstream

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
	"strings"
)

// Sequence is a packed sequence of bits. Bit i of the sequence is stored in
// word i/64 at position i%64 (LSB-first), so appending is cheap and the
// packed form round-trips through binary encodings without reordering.
type Sequence struct {
	words []uint64
	n     int
}

// New returns an empty sequence with capacity for n bits.
func New(n int) *Sequence {
	if n < 0 {
		n = 0
	}
	return &Sequence{words: make([]uint64, 0, (n+63)/64)}
}

// FromBits builds a sequence from a slice of 0/1 values. Any non-zero byte
// counts as a one, matching the convention of the NIST reference code.
func FromBits(vals []byte) *Sequence {
	s := New(len(vals))
	s.words = s.words[:(len(vals)+63)/64]
	for i, b := range vals {
		if b&1 != 0 {
			s.words[i/64] |= 1 << uint(i%64)
		}
	}
	s.n = len(vals)
	return s
}

// FromBytes builds a sequence of 8*len(data) bits, consuming each byte
// MSB-first (the order used by the SP800-22 reference data files). Each
// byte is bit-reversed into the sequence's LSB-first packing, one byte per
// step rather than one bit.
func FromBytes(data []byte) *Sequence {
	s := New(8 * len(data))
	s.words = s.words[:(8*len(data)+63)/64]
	for i, b := range data {
		s.words[i/8] |= uint64(bits.Reverse8(b)) << uint(8*(i%8))
	}
	s.n = 8 * len(data)
	return s
}

// ParseASCII builds a sequence from a string of '0' and '1' characters.
// Whitespace is ignored; any other character is an error.
func ParseASCII(text string) (*Sequence, error) {
	s := New(len(text))
	for i, r := range text {
		switch r {
		case '0':
			s.AppendBit(0)
		case '1':
			s.AppendBit(1)
		case ' ', '\t', '\n', '\r':
		default:
			return nil, fmt.Errorf("bitstream: invalid character %q at offset %d", r, i)
		}
	}
	return s, nil
}

// Len reports the number of bits in the sequence.
func (s *Sequence) Len() int { return s.n }

// AppendBit appends a single bit (only the least significant bit of b is
// used).
func (s *Sequence) AppendBit(b byte) {
	if s.n%64 == 0 {
		s.words = append(s.words, 0)
	}
	if b&1 != 0 {
		s.words[s.n/64] |= 1 << uint(s.n%64)
	}
	s.n++
}

// Bit returns bit i as 0 or 1. It panics if i is out of range, mirroring
// slice indexing.
func (s *Sequence) Bit(i int) byte {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitstream: index %d out of range [0,%d)", i, s.n))
	}
	return byte(s.words[i/64]>>uint(i%64)) & 1
}

// Bits expands the sequence into a fresh slice of 0/1 bytes.
func (s *Sequence) Bits() []byte {
	out := make([]byte, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.Bit(i)
	}
	return out
}

// Slice returns the sub-sequence [from, to) as a new Sequence.
func (s *Sequence) Slice(from, to int) *Sequence {
	if from < 0 || to > s.n || from > to {
		panic(fmt.Sprintf("bitstream: slice bounds [%d:%d) out of range [0,%d)", from, to, s.n))
	}
	out := New(to - from)
	for i := from; i < to; i++ {
		out.AppendBit(s.Bit(i))
	}
	return out
}

// Ones counts the ones in the whole sequence.
func (s *Sequence) Ones() int {
	ones := 0
	for i, w := range s.words {
		if i == len(s.words)-1 && s.n%64 != 0 {
			w &= (1 << uint(s.n%64)) - 1
		}
		ones += bits.OnesCount64(w)
	}
	return ones
}

// String renders the sequence as a '0'/'1' string. Intended for tests and
// small sequences; it allocates n bytes.
func (s *Sequence) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		b.WriteByte('0' + s.Bit(i))
	}
	return b.String()
}

// Reader yields the bits of a sequence in order. It implements BitReader.
type Reader struct {
	s   *Sequence
	pos int
}

// NewReader returns a Reader positioned at the first bit of s.
func NewReader(s *Sequence) *Reader { return &Reader{s: s} }

// ErrEndOfStream is returned by ReadBit when the underlying source is
// exhausted.
var ErrEndOfStream = errors.New("bitstream: end of stream")

// ReadBit returns the next bit, or ErrEndOfStream past the end.
func (r *Reader) ReadBit() (byte, error) {
	if r.pos >= r.s.Len() {
		return 0, ErrEndOfStream
	}
	b := r.s.Bit(r.pos)
	r.pos++
	return b, nil
}

// ReadWord64 reads up to nbits bits (1..64) in one call, packed LSB-first
// in chronological order: bit i of the returned word is the i-th unread bit
// of the sequence. At the end of the stream it returns however many bits
// remain (got < nbits) without error; only a read with nothing left
// returns ErrEndOfStream. The assembly is two shifts even when the read
// straddles a storage-word boundary.
func (r *Reader) ReadWord64(nbits int) (w uint64, got int, err error) {
	if nbits < 1 || nbits > 64 {
		return 0, 0, fmt.Errorf("bitstream: word size %d out of range [1,64]", nbits)
	}
	got = r.s.Len() - r.pos
	if got == 0 {
		return 0, 0, ErrEndOfStream
	}
	if got > nbits {
		got = nbits
	}
	wi, off := r.pos>>6, uint(r.pos&63)
	w = r.s.words[wi] >> off
	if off+uint(got) > 64 {
		w |= r.s.words[wi+1] << (64 - off)
	}
	if got < 64 {
		w &= 1<<uint(got) - 1
	}
	r.pos += got
	return w, got, nil
}

// Reset repositions the reader at the first bit, so one reader can replay
// its sequence without reallocating.
func (r *Reader) Reset() { r.pos = 0 }

// Remaining reports how many bits are left to read.
func (r *Reader) Remaining() int { return r.s.Len() - r.pos }

// BitReader is the minimal interface the platform consumes bits through.
// TRNG models and sequence readers both implement it.
type BitReader interface {
	// ReadBit returns the next bit (0 or 1). It returns ErrEndOfStream
	// when the source can produce no more bits.
	ReadBit() (byte, error)
}

// WordReader is implemented by bit sources that can deliver up to 64 bits
// per call; word-level consumers (the testing block's fast ingest path)
// detect it to skip the per-bit interface.
type WordReader interface {
	// ReadWord64 returns up to nbits bits packed LSB-first in
	// chronological order, with the count actually read. It returns
	// ErrEndOfStream only when no bits at all are available.
	ReadWord64(nbits int) (w uint64, got int, err error)
}

// ReadAll drains up to n bits from r into a Sequence. It stops early at end
// of stream without error; other errors are propagated.
func ReadAll(r BitReader, n int) (*Sequence, error) {
	s := New(n)
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err == ErrEndOfStream {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		s.AppendBit(b)
	}
	return s, nil
}

// WriteASCII writes the sequence as '0'/'1' characters with a newline every
// lineWidth bits (0 disables wrapping).
func (s *Sequence) WriteASCII(w io.Writer, lineWidth int) error {
	buf := make([]byte, 0, 4096)
	for i := 0; i < s.n; i++ {
		buf = append(buf, '0'+s.Bit(i))
		if lineWidth > 0 && (i+1)%lineWidth == 0 {
			buf = append(buf, '\n')
		}
		if len(buf) >= 4096 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// PackBytes packs the sequence MSB-first into bytes, the inverse of
// FromBytes. The final partial byte, if any, is zero-padded on the right.
func (s *Sequence) PackBytes() []byte {
	out := make([]byte, (s.n+7)/8)
	for i := 0; i < s.n; i++ {
		if s.Bit(i) != 0 {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}
