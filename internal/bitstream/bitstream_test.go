package bitstream

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppendAndBit(t *testing.T) {
	s := New(0)
	pattern := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0}
	for _, b := range pattern {
		s.AppendBit(b)
	}
	if s.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(pattern))
	}
	for i, want := range pattern {
		if got := s.Bit(i); got != want {
			t.Errorf("Bit(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestAppendCrossesWordBoundary(t *testing.T) {
	s := New(0)
	for i := 0; i < 200; i++ {
		s.AppendBit(byte(i % 2))
	}
	for i := 0; i < 200; i++ {
		if got := s.Bit(i); got != byte(i%2) {
			t.Fatalf("Bit(%d) = %d, want %d", i, got, i%2)
		}
	}
}

func TestFromBitsRoundTrip(t *testing.T) {
	bits := []byte{0, 1, 1, 0, 1}
	s := FromBits(bits)
	if got := s.Bits(); !bytes.Equal(got, bits) {
		t.Errorf("Bits() = %v, want %v", got, bits)
	}
}

func TestFromBitsTreatsNonZeroAsOne(t *testing.T) {
	s := FromBits([]byte{0, 2, 3, 4, 1})
	// Only the LSB counts: 2&1=0, 3&1=1, 4&1=0.
	want := []byte{0, 0, 1, 0, 1}
	if got := s.Bits(); !bytes.Equal(got, want) {
		t.Errorf("Bits() = %v, want %v", got, want)
	}
}

func TestFromBytesMSBFirst(t *testing.T) {
	s := FromBytes([]byte{0xA5}) // 10100101
	want := "10100101"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestPackBytesInverseOfFromBytes(t *testing.T) {
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01}
	s := FromBytes(data)
	if got := s.PackBytes(); !bytes.Equal(got, data) {
		t.Errorf("PackBytes() = %x, want %x", got, data)
	}
}

func TestPackBytesPadsPartialByte(t *testing.T) {
	s := FromBits([]byte{1, 1, 1})
	if got := s.PackBytes(); !bytes.Equal(got, []byte{0xE0}) {
		t.Errorf("PackBytes() = %x, want e0", got)
	}
}

func TestParseASCII(t *testing.T) {
	s, err := ParseASCII("1100 1010\n01")
	if err != nil {
		t.Fatalf("ParseASCII: %v", err)
	}
	if got := s.String(); got != "1100101001" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseASCIIRejectsGarbage(t *testing.T) {
	if _, err := ParseASCII("10102"); err == nil {
		t.Error("ParseASCII accepted invalid character")
	}
}

func TestOnes(t *testing.T) {
	cases := []struct {
		bits string
		want int
	}{
		{"", 0},
		{"0", 0},
		{"1", 1},
		{"1111", 4},
		{"10101", 3},
	}
	for _, c := range cases {
		s, err := ParseASCII(c.bits)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Ones(); got != c.want {
			t.Errorf("Ones(%q) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestOnesLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := New(0)
	want := 0
	for i := 0; i < 10_000; i++ {
		b := byte(rng.Intn(2))
		want += int(b)
		s.AppendBit(b)
	}
	if got := s.Ones(); got != want {
		t.Errorf("Ones = %d, want %d", got, want)
	}
}

func TestSlice(t *testing.T) {
	s, _ := ParseASCII("0110100110010110")
	sub := s.Slice(4, 12)
	if got := sub.String(); got != "10011001" {
		t.Errorf("Slice(4,12) = %q", got)
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Slice out of range did not panic")
		}
	}()
	s := FromBits([]byte{1, 0})
	s.Slice(1, 3)
}

func TestBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bit out of range did not panic")
		}
	}()
	FromBits([]byte{1}).Bit(1)
}

func TestReader(t *testing.T) {
	s, _ := ParseASCII("101")
	r := NewReader(s)
	var got []byte
	for {
		b, err := r.ReadBit()
		if err == ErrEndOfStream {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if !bytes.Equal(got, []byte{1, 0, 1}) {
		t.Errorf("read %v", got)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d after drain", r.Remaining())
	}
}

func TestReadAllStopsAtEndOfStream(t *testing.T) {
	s, _ := ParseASCII("1010")
	got, err := ReadAll(NewReader(s), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Errorf("ReadAll length = %d, want 4", got.Len())
	}
}

func TestReadAllHonoursLimit(t *testing.T) {
	s, _ := ParseASCII("111111")
	got, err := ReadAll(NewReader(s), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("ReadAll length = %d, want 3", got.Len())
	}
}

func TestWriteASCII(t *testing.T) {
	s, _ := ParseASCII("11110000")
	var buf bytes.Buffer
	if err := s.WriteASCII(&buf, 4); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "1111\n0000\n" {
		t.Errorf("WriteASCII = %q", got)
	}
}

func TestWriteASCIINoWrap(t *testing.T) {
	s, _ := ParseASCII("1010")
	var buf bytes.Buffer
	if err := s.WriteASCII(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "1010" {
		t.Errorf("WriteASCII = %q", buf.String())
	}
}

func TestRuns(t *testing.T) {
	cases := []struct {
		bits string
		want int
	}{
		{"", 0},
		{"0", 1},
		{"1", 1},
		{"01", 2},
		{"0011", 2},
		{"1001101011", 7}, // SP800-22 runs-test example (V_n = 7)
	}
	for _, c := range cases {
		s, _ := ParseASCII(c.bits)
		if got := s.Runs(); got != c.want {
			t.Errorf("Runs(%q) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestLongestRunOfOnes(t *testing.T) {
	cases := []struct {
		bits string
		want int
	}{
		{"", 0},
		{"000", 0},
		{"010", 1},
		{"0110111", 3},
		{"1111", 4},
	}
	for _, c := range cases {
		s, _ := ParseASCII(c.bits)
		if got := s.LongestRunOfOnes(); got != c.want {
			t.Errorf("LongestRunOfOnes(%q) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestBlockOnes(t *testing.T) {
	s, _ := ParseASCII("0110011010") // SP800-22 block-frequency example, M=3
	got := s.BlockOnes(3)
	want := []int{2, 1, 2} // blocks 011, 001, 101; trailing "0" dropped
	if len(got) != len(want) {
		t.Fatalf("BlockOnes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("block %d: %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBlockLongestRuns(t *testing.T) {
	s, _ := ParseASCII("11011010") // blocks of 4: 1101 -> 2, 1010 -> 1
	got := s.BlockLongestRuns(4)
	if got[0] != 2 || got[1] != 1 {
		t.Errorf("BlockLongestRuns = %v", got)
	}
}

func TestPatternCountsOverlappingWrapAround(t *testing.T) {
	// SP800-22 serial-test example: 0011011101, n=10, m=3.
	// ν_000=0 ν_001=1 ν_010=1 ν_011=2 ν_100=1 ν_101=2 ν_110=2 ν_111=1.
	s, _ := ParseASCII("0011011101")
	got := s.PatternCountsOverlapping(3)
	want := []int{0, 1, 1, 2, 1, 2, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("count[%03b] = %d, want %d", i, got[i], want[i])
		}
	}
	total := 0
	for _, c := range got {
		total += c
	}
	if total != s.Len() {
		t.Errorf("pattern counts sum to %d, want n=%d", total, s.Len())
	}
}

func TestCountTemplateNonOverlapping(t *testing.T) {
	// SP800-22 test-7 example: block 1010010010, template 001 -> W = 2.
	s, _ := ParseASCII("1010010010")
	if got := s.CountTemplateNonOverlapping(0b001, 3, 0, s.Len()); got != 2 {
		t.Errorf("W = %d, want 2", got)
	}
}

func TestCountTemplateNonOverlappingSkipsAfterHit(t *testing.T) {
	// 111111: non-overlapping 11 occurs 3 times, overlapping 5 times.
	s, _ := ParseASCII("111111")
	if got := s.CountTemplateNonOverlapping(0b11, 2, 0, s.Len()); got != 3 {
		t.Errorf("non-overlapping = %d, want 3", got)
	}
	if got := s.CountTemplateOverlapping(0b11, 2, 0, s.Len()); got != 5 {
		t.Errorf("overlapping = %d, want 5", got)
	}
}

func TestRandomWalk(t *testing.T) {
	// SP800-22 cusum example: 1011010111 -> S runs 1,0,1,2,1,2,1,2,3,4.
	s, _ := ParseASCII("1011010111")
	sMax, sMin, sFinal := s.RandomWalk()
	if sMax != 4 || sMin != 0 || sFinal != 4 {
		t.Errorf("RandomWalk = (%d,%d,%d), want (4,0,4)", sMax, sMin, sFinal)
	}
}

func TestRandomWalkNegative(t *testing.T) {
	s, _ := ParseASCII("0001")
	sMax, sMin, sFinal := s.RandomWalk()
	if sMax != 0 || sMin != -3 || sFinal != -2 {
		t.Errorf("RandomWalk = (%d,%d,%d), want (0,-3,-2)", sMax, sMin, sFinal)
	}
}

// Property: Ones + number of zeros = n, and walk final = 2*ones - n.
func TestWalkConsistentWithOnes(t *testing.T) {
	f := func(raw []byte) bool {
		s := FromBits(raw)
		_, _, final := s.RandomWalk()
		return final == 2*s.Ones()-s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: pattern counts for m sum to n (wrap-around makes every position
// contribute exactly one pattern).
func TestPatternCountsSumProperty(t *testing.T) {
	f := func(raw []byte, mRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		m := int(mRaw)%4 + 1
		s := FromBits(raw)
		total := 0
		for _, c := range s.PatternCountsOverlapping(m) {
			total += c
		}
		return total == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String round-trips through ParseASCII.
func TestStringParseRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		s := FromBits(raw)
		back, err := ParseASCII(s.String())
		if err != nil {
			return false
		}
		return back.String() == s.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: runs count equals 1 + number of adjacent unequal pairs.
func TestRunsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		s := FromBits(raw)
		if s.Len() == 0 {
			return s.Runs() == 0
		}
		transitions := 0
		for i := 1; i < s.Len(); i++ {
			if s.Bit(i) != s.Bit(i-1) {
				transitions++
			}
		}
		return s.Runs() == transitions+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockOnesPanicsOnZeroM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BlockOnes(0) did not panic")
		}
	}()
	FromBits([]byte{1}).BlockOnes(0)
}

func TestStringLarge(t *testing.T) {
	s := New(0)
	for i := 0; i < 1000; i++ {
		s.AppendBit(1)
	}
	if got := s.String(); got != strings.Repeat("1", 1000) {
		t.Error("String() of all-ones sequence is wrong")
	}
}

// TestReadWord64 checks word reads against per-bit reads at every
// position, word size and stream length near the storage-word boundary.
func TestReadWord64(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 200} {
		s := New(n)
		for i := 0; i < n; i++ {
			s.AppendBit(byte(rng.Intn(2)))
		}
		for _, chunk := range []int{1, 7, 13, 63, 64} {
			r := NewReader(s)
			pos := 0
			for pos < n {
				w, got, err := r.ReadWord64(chunk)
				if err != nil {
					t.Fatalf("n=%d chunk=%d pos=%d: %v", n, chunk, pos, err)
				}
				want := chunk
				if rem := n - pos; want > rem {
					want = rem
				}
				if got != want {
					t.Fatalf("n=%d chunk=%d pos=%d: got %d bits, want %d", n, chunk, pos, got, want)
				}
				for j := 0; j < got; j++ {
					if byte(w>>uint(j))&1 != s.Bit(pos+j) {
						t.Fatalf("n=%d chunk=%d: bit %d differs", n, chunk, pos+j)
					}
				}
				if got < 64 && w>>uint(got) != 0 {
					t.Fatalf("n=%d chunk=%d pos=%d: bits above %d not zero", n, chunk, pos, got)
				}
				pos += got
			}
			if _, _, err := r.ReadWord64(1); err != ErrEndOfStream {
				t.Fatalf("n=%d chunk=%d: read past end: err = %v, want ErrEndOfStream", n, chunk, err)
			}
		}
	}
	r := NewReader(FromBits([]byte{1}))
	if _, _, err := r.ReadWord64(0); err == nil {
		t.Error("ReadWord64(0) did not fail")
	}
	if _, _, err := r.ReadWord64(65); err == nil {
		t.Error("ReadWord64(65) did not fail")
	}
}

// TestReaderReset checks that a reset reader replays the same bits.
func TestReaderReset(t *testing.T) {
	s := FromBits([]byte{1, 0, 1, 1, 0})
	r := NewReader(s)
	first, err := ReadAll(r, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	r.Reset()
	second, err := ReadAll(r, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("replay differs: %q vs %q", first.String(), second.String())
	}
}

func BenchmarkReadBit(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < 1<<16; i++ {
		s.AppendBit(byte(i) & 1)
	}
	r := NewReader(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() == 0 {
			r.Reset()
		}
		if _, err := r.ReadBit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadWord64 is normalized to one bit per op for comparison with
// BenchmarkReadBit.
func BenchmarkReadWord64(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < 1<<16; i++ {
		s.AppendBit(byte(i) & 1)
	}
	r := NewReader(s)
	b.ResetTimer()
	for fed := 0; fed < b.N; {
		if r.Remaining() == 0 {
			r.Reset()
		}
		_, got, err := r.ReadWord64(64)
		if err != nil {
			b.Fatal(err)
		}
		fed += got
	}
}

func BenchmarkFromBytes(b *testing.B) {
	data := make([]byte, 8192)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromBytes(data)
	}
}
