package bitstream

import (
	"math/rand"
	"testing"
)

// naiveTranspose64 is the bit-by-bit reference definition: out[i] bit j =
// in[j] bit i, with bit k = (w >> k) & 1.
func naiveTranspose64(in *[64]uint64) [64]uint64 {
	var out [64]uint64
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			out[i] |= (in[j] >> uint(i) & 1) << uint(j)
		}
	}
	return out
}

func TestTranspose64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][64]uint64{
		{},                       // all zeros
		{0: ^uint64(0)},          // one full row
		{63: 1},                  // one corner bit
		{0: 1 << 63, 63: 1},      // both corners
		{7: 0xAAAAAAAAAAAAAAAA},  // alternating row
		{31: 0x00000000FFFFFFFF}, // half row on a stage boundary
	}
	var all [64]uint64
	for i := range all {
		all[i] = ^uint64(0)
	}
	cases = append(cases, all)
	for c := 0; c < 32; c++ {
		var m [64]uint64
		for i := range m {
			m[i] = rng.Uint64()
		}
		cases = append(cases, m)
	}
	for ci, m := range cases {
		want := naiveTranspose64(&m)
		got := m
		Transpose64(&got)
		if got != want {
			t.Fatalf("case %d: Transpose64 disagrees with the naive reference", ci)
		}
	}
}

func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for c := 0; c < 64; c++ {
		var m [64]uint64
		for i := range m {
			m[i] = rng.Uint64()
		}
		got := m
		Transpose64(&got)
		Transpose64(&got)
		if got != m {
			t.Fatalf("case %d: transpose twice is not the identity", c)
		}
	}
}

// TestTranspose64LaneConvention pins the convention the bit-sliced ingest
// engine relies on: with m[lane] holding a lane's 64 chronological bits,
// the transposed m[t] holds step t of every lane, bit l = lane l.
func TestTranspose64LaneConvention(t *testing.T) {
	var m [64]uint64
	// Lane 5 all ones; lane 17 has only bit (step) 3 set.
	m[5] = ^uint64(0)
	m[17] = 1 << 3
	Transpose64(&m)
	for step := 0; step < 64; step++ {
		wantLane17 := uint64(0)
		if step == 3 {
			wantLane17 = 1
		}
		if got := m[step] >> 5 & 1; got != 1 {
			t.Fatalf("step %d: lane 5 bit = %d, want 1", step, got)
		}
		if got := m[step] >> 17 & 1; got != wantLane17 {
			t.Fatalf("step %d: lane 17 bit = %d, want %d", step, got, wantLane17)
		}
	}
}

// FuzzTransposeRoundTrip proves transpose → de-transpose is the identity
// for ragged lane groups: 1–64 occupied lanes, lane lengths that are not a
// multiple of 64 (the unfilled tail bits and the vacant lanes stay zero, as
// they do in a partially attached fleet lane group).
func FuzzTransposeRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(1), []byte{0xFF})
	f.Add(uint8(64), uint8(63), []byte{0xAA, 0x55, 0x00, 0x01})
	f.Add(uint8(17), uint8(40), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, lanesRaw, lenRaw uint8, data []byte) {
		lanes := int(lanesRaw)%64 + 1 // 1..64 occupied lanes
		nbits := int(lenRaw)%64 + 1   // 1..64 bits per lane (ragged tail)
		var m [64]uint64
		bi := 0
		next := func() uint64 {
			if len(data) == 0 {
				return 0
			}
			b := uint64(data[bi%len(data)] >> uint(bi%8) & 1)
			bi++
			return b
		}
		for l := 0; l < lanes; l++ {
			for t := 0; t < nbits; t++ {
				m[l] |= next() << uint(t)
			}
		}
		orig := m
		Transpose64(&m)
		// The transposed matrix must agree with the naive definition...
		if want := naiveTranspose64(&orig); m != want {
			t.Fatalf("transpose disagrees with the naive reference")
		}
		// ...steps past the ragged tail must not invent bits in any lane...
		for step := nbits; step < 64; step++ {
			if m[step] != 0 {
				t.Fatalf("step %d past the %d-bit tail is nonzero: %#x", step, nbits, m[step])
			}
		}
		// ...vacant lanes must stay vacant...
		for step := 0; step < 64; step++ {
			if lanes < 64 && m[step]>>uint(lanes) != 0 {
				t.Fatalf("step %d has bits above lane %d: %#x", step, lanes-1, m[step])
			}
		}
		// ...and de-transposing (the same involution) must round-trip.
		Transpose64(&m)
		if m != orig {
			t.Fatalf("transpose round trip is not the identity")
		}
	})
}
