package bitstream

// Transpose64 transposes a 64×64 bit matrix in place: bit j of m[i] moves
// to bit i of m[j]. The matrix convention used by the bit-sliced ingest
// engine (internal/hwslice) is lane-major in, time-major out — m[lane]
// holds lane's next 64 chronological bits (bit t = step t), and after the
// transpose m[t] holds step t of every lane (bit l = lane l). Because
// transposition is an involution, the same call de-transposes: there is no
// separate Detranspose64.
//
// The kernel is the classic recursive block swap (Hacker's Delight §7-3):
// six stages, each exchanging off-diagonal sub-blocks of half the previous
// size with shift/mask/XOR — 64 words are transposed in ~6·64 word
// operations, no tables, no allocation.
//
//trnglint:hotpath
func Transpose64(m *[64]uint64) {
	// Stage k swaps the two off-diagonal j×j sub-blocks of every 2j×2j
	// block, j = 32, 16, 8, 4, 2, 1.
	for j, mask := 32, uint64(0x00000000FFFFFFFF); j != 0; j, mask = j>>1, mask^(mask<<uint(j>>1)) {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (m[k] ^ (m[k+j] << uint(j))) & ^mask
			m[k] ^= t
			m[k+j] ^= t >> uint(j)
		}
	}
}
