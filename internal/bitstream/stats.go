package bitstream

// This file holds whole-sequence statistics helpers. They are the "batch"
// counterparts of the bit-serial hardware engines in internal/hwblock and
// are used by tests to cross-check that serial and batch computation agree.

// Runs counts the total number of runs in the sequence: maximal blocks of
// consecutive equal bits. The empty sequence has zero runs.
func (s *Sequence) Runs() int {
	if s.n == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < s.n; i++ {
		if s.Bit(i) != s.Bit(i-1) {
			runs++
		}
	}
	return runs
}

// LongestRunOfOnes returns the length of the longest run of ones in the
// sequence (0 if there are none).
func (s *Sequence) LongestRunOfOnes() int {
	longest, cur := 0, 0
	for i := 0; i < s.n; i++ {
		if s.Bit(i) == 1 {
			cur++
			if cur > longest {
				longest = cur
			}
		} else {
			cur = 0
		}
	}
	return longest
}

// BlockOnes returns the number of ones in each consecutive block of m bits.
// Trailing bits that do not fill a block are discarded, as in SP800-22.
func (s *Sequence) BlockOnes(m int) []int {
	if m <= 0 {
		panic("bitstream: block length must be positive")
	}
	nBlocks := s.n / m
	out := make([]int, nBlocks)
	for b := 0; b < nBlocks; b++ {
		ones := 0
		for i := b * m; i < (b+1)*m; i++ {
			ones += int(s.Bit(i))
		}
		out[b] = ones
	}
	return out
}

// BlockLongestRuns returns the longest run of ones within each consecutive
// block of m bits.
func (s *Sequence) BlockLongestRuns(m int) []int {
	if m <= 0 {
		panic("bitstream: block length must be positive")
	}
	nBlocks := s.n / m
	out := make([]int, nBlocks)
	for b := 0; b < nBlocks; b++ {
		longest, cur := 0, 0
		for i := b * m; i < (b+1)*m; i++ {
			if s.Bit(i) == 1 {
				cur++
				if cur > longest {
					longest = cur
				}
			} else {
				cur = 0
			}
		}
		out[b] = longest
	}
	return out
}

// PatternCountsOverlapping counts every overlapping m-bit pattern with
// cyclic wrap-around (the sequence is extended by its own first m-1 bits),
// exactly as the serial and approximate-entropy tests require. The returned
// slice has 2^m entries indexed by the pattern value read MSB-first.
func (s *Sequence) PatternCountsOverlapping(m int) []int {
	if m <= 0 || m > 16 {
		panic("bitstream: pattern length out of range")
	}
	counts := make([]int, 1<<uint(m))
	if s.n == 0 {
		return counts
	}
	for i := 0; i < s.n; i++ {
		v := 0
		for j := 0; j < m; j++ {
			v = v<<1 | int(s.Bit((i+j)%s.n))
		}
		counts[v]++
	}
	return counts
}

// CountTemplateNonOverlapping counts non-overlapping occurrences of the
// m-bit template tpl (given MSB-first) in the window [from, to): the scan
// advances by m after a hit and by 1 otherwise, per NIST test 7.
func (s *Sequence) CountTemplateNonOverlapping(tpl uint32, m, from, to int) int {
	count := 0
	i := from
	for i <= to-m {
		match := true
		for j := 0; j < m; j++ {
			want := byte(tpl>>uint(m-1-j)) & 1
			if s.Bit(i+j) != want {
				match = false
				break
			}
		}
		if match {
			count++
			i += m
		} else {
			i++
		}
	}
	return count
}

// CountTemplateOverlapping counts overlapping occurrences of the m-bit
// template tpl in the window [from, to): the scan always advances by 1,
// per NIST test 8.
func (s *Sequence) CountTemplateOverlapping(tpl uint32, m, from, to int) int {
	count := 0
	for i := from; i <= to-m; i++ {
		match := true
		for j := 0; j < m; j++ {
			want := byte(tpl>>uint(m-1-j)) & 1
			if s.Bit(i+j) != want {
				match = false
				break
			}
		}
		if match {
			count++
		}
	}
	return count
}

// RandomWalk returns the extrema and final value of the ±1 random walk
// S_k = Σ (2·bit_i − 1), the values the cumulative-sums hardware tracks.
// For the empty sequence all three are zero.
func (s *Sequence) RandomWalk() (sMax, sMin, sFinal int) {
	sum := 0
	for i := 0; i < s.n; i++ {
		if s.Bit(i) == 1 {
			sum++
		} else {
			sum--
		}
		if sum > sMax {
			sMax = sum
		}
		if sum < sMin {
			sMin = sum
		}
	}
	return sMax, sMin, sum
}
