package nist

import (
	"fmt"

	"repro/internal/bitstream"
)

// BatchResult aggregates one test's outcomes over a batch of sequences and
// its §4 suite-level verdicts.
type BatchResult struct {
	// TestID and Name identify the test.
	TestID int
	Name   string
	// Sequences is the number of sequences the test ran on (inapplicable
	// sequences are excluded).
	Sequences int
	// Proportion is the pass-proportion analysis (nil if fewer than two
	// applicable sequences).
	Proportion *ProportionResult
	// Uniformity is the P-value uniformity analysis (nil if fewer than
	// ten applicable sequences).
	Uniformity *UniformityResult
}

// OK reports whether the generator is accepted for this test: both
// available suite-level criteria pass.
func (b *BatchResult) OK() bool {
	if b.Proportion != nil && !b.Proportion.OK {
		return false
	}
	if b.Uniformity != nil && !b.Uniformity.OK {
		return false
	}
	return true
}

// RunBatch executes the given tests over every sequence and applies the
// SP800-22 §4 suite-level criteria per test. Tests returning
// ErrNotApplicable on a sequence skip that sequence; other errors abort.
func RunBatch(tests []Test, sequences []*bitstream.Sequence, alpha float64) ([]BatchResult, error) {
	if len(sequences) < 2 {
		return nil, fmt.Errorf("nist: batch needs at least 2 sequences")
	}
	var out []BatchResult
	for _, tc := range tests {
		br := BatchResult{TestID: tc.ID, Name: tc.Name}
		var passes []bool
		var ps []float64
		for _, s := range sequences {
			r, err := tc.Run(s)
			if err == ErrNotApplicable {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("nist: batch test %d: %w", tc.ID, err)
			}
			passes = append(passes, r.Pass(alpha))
			ps = append(ps, r.MinP())
		}
		br.Sequences = len(passes)
		if len(passes) >= 2 {
			pr, err := Proportion(passes, alpha)
			if err != nil {
				return nil, err
			}
			br.Proportion = pr
		}
		if len(ps) >= 10 {
			ur, err := Uniformity(ps)
			if err != nil {
				return nil, err
			}
			br.Uniformity = ur
		}
		out = append(out, br)
	}
	return out, nil
}
