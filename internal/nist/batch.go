package nist

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitstream"
	"repro/internal/obs"
)

// BatchResult aggregates one test's outcomes over a batch of sequences and
// its §4 suite-level verdicts.
type BatchResult struct {
	// TestID and Name identify the test.
	TestID int
	Name   string
	// Sequences is the number of sequences the test ran on (inapplicable
	// sequences are excluded).
	Sequences int
	// Proportion is the pass-proportion analysis (nil if fewer than two
	// applicable sequences).
	Proportion *ProportionResult
	// Uniformity is the P-value uniformity analysis (nil if fewer than
	// ten applicable sequences).
	Uniformity *UniformityResult
}

// OK reports whether the generator is accepted for this test: both
// available suite-level criteria pass.
func (b *BatchResult) OK() bool {
	if b.Proportion != nil && !b.Proportion.OK {
		return false
	}
	if b.Uniformity != nil && !b.Uniformity.OK {
		return false
	}
	return true
}

// RunBatch executes the given tests over every sequence and applies the
// SP800-22 §4 suite-level criteria per test. Tests returning
// ErrNotApplicable on a sequence skip that sequence; other errors abort.
// The per-(test, sequence) runs are independent pure functions, so they
// are sharded across a GOMAXPROCS worker pool; results are merged in input
// order, making the output identical to a serial run.
func RunBatch(tests []Test, sequences []*bitstream.Sequence, alpha float64) ([]BatchResult, error) {
	return RunBatchWorkers(tests, sequences, alpha, 0)
}

// RunBatchWorkers is RunBatch with an explicit worker-pool size (≤ 0 means
// GOMAXPROCS, 1 forces a serial run). The output — including which error
// aborts, the first in (test, sequence) order — does not depend on the
// worker count.
func RunBatchWorkers(tests []Test, sequences []*bitstream.Sequence, alpha float64, workers int) ([]BatchResult, error) {
	return RunBatchObserved(tests, sequences, alpha, workers, nil)
}

// RunBatchObserved is RunBatchWorkers with an observability registry: the
// pool size and each worker's completed-job count are exposed
// (trng_batch_workers, trng_batch_jobs_total by worker), so a long batch
// shows live per-worker utilization on the metrics endpoint. A nil
// registry is a no-op, and the results are identical either way — the
// per-(test, sequence) runs stay pure and index-addressed.
func RunBatchObserved(tests []Test, sequences []*bitstream.Sequence, alpha float64, workers int, reg *obs.Registry) ([]BatchResult, error) {
	if len(sequences) < 2 {
		return nil, fmt.Errorf("nist: batch needs at least 2 sequences")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := len(tests) * len(sequences)
	if workers > jobs {
		workers = jobs
	}
	reg.Gauge("trng_batch_workers", "worker-pool size of the reference-suite batch").
		Set(float64(workers))
	results := make([]*Result, jobs)
	errs := make([]error, jobs)
	if workers <= 1 {
		jobsDone := reg.Counter("trng_batch_jobs_total",
			"reference-suite (test, sequence) runs completed per worker", "worker", "0")
		for j := 0; j < jobs; j++ {
			results[j], errs[j] = tests[j/len(sequences)].Run(sequences[j%len(sequences)])
			jobsDone.Inc()
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			jobsDone := reg.Counter("trng_batch_jobs_total",
				"reference-suite (test, sequence) runs completed per worker", "worker", fmt.Sprintf("%d", w))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(atomic.AddInt64(&next, 1)) - 1
					if j >= jobs {
						return
					}
					results[j], errs[j] = tests[j/len(sequences)].Run(sequences[j%len(sequences)])
					jobsDone.Inc()
				}
			}()
		}
		wg.Wait()
	}

	var out []BatchResult
	for ti, tc := range tests {
		br := BatchResult{TestID: tc.ID, Name: tc.Name}
		var passes []bool
		var ps []float64
		for si := range sequences {
			j := ti*len(sequences) + si
			r, err := results[j], errs[j]
			if err == ErrNotApplicable {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("nist: batch test %d: %w", tc.ID, err)
			}
			passes = append(passes, r.Pass(alpha))
			ps = append(ps, r.MinP())
		}
		br.Sequences = len(passes)
		if len(passes) >= 2 {
			pr, err := Proportion(passes, alpha)
			if err != nil {
				return nil, err
			}
			br.Proportion = pr
		}
		if len(ps) >= 10 {
			ur, err := Uniformity(ps)
			if err != nil {
				return nil, err
			}
			br.Uniformity = ur
		}
		out = append(out, br)
	}
	return out, nil
}
