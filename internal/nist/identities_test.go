package nist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
)

// This file property-tests the algebraic identities the HW/SW split relies
// on — if any of them broke, the shared-counter tricks would silently
// compute the wrong statistics.

// Cyclic pattern counts telescope: ν_{m−1}[y] = ν_m[y·2] + ν_m[y·2+1]
// (every (m−1)-bit window is the prefix of exactly one m-bit cyclic
// window). This identity is why the ApEn test can reuse the serial
// counters and why the hardware only decodes one shift register.
func TestPatternCountTelescoping(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 8 {
			return true
		}
		s := bitstream.FromBits(raw)
		for m := 2; m <= 4; m++ {
			wide := s.PatternCountsOverlapping(m)
			narrow := s.PatternCountsOverlapping(m - 1)
			for y := 0; y < 1<<uint(m-1); y++ {
				if narrow[y] != wide[2*y]+wide[2*y+1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// N_ones = (S_final + n)/2 — the omitted-counter identity.
func TestOnesFromWalkIdentity(t *testing.T) {
	f := func(raw []byte) bool {
		s := bitstream.FromBits(raw)
		_, _, fin := s.RandomWalk()
		return (fin+s.Len())%2 == 0 && (fin+s.Len())/2 == s.Ones()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The per-block ones counts sum to the global count over the covered
// prefix — the block-frequency registers carry no information loss.
func TestBlockOnesSumIdentity(t *testing.T) {
	f := func(raw []byte, mRaw uint8) bool {
		if len(raw) < 4 {
			return true
		}
		m := int(mRaw)%7 + 2
		s := bitstream.FromBits(raw)
		blocks := s.BlockOnes(m)
		sum := 0
		for _, b := range blocks {
			sum += b
		}
		covered := len(blocks) * m
		return sum == s.Slice(0, covered).Ones()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ψ²_m is non-negative and ∇ψ² = ψ²_m − ψ²_{m−1} is non-negative (a
// standard property of the serial statistics; the embedded integer
// statistic n·∇ψ² relies on it to stay unsigned-comparable).
func TestPsiSquaredMonotone(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 16 {
			return true
		}
		s := bitstream.FromBits(raw)
		psi2 := psiSquared(s, 2)
		psi3 := psiSquared(s, 3)
		psi4 := psiSquared(s, 4)
		const eps = 1e-9
		return psi2 >= -eps && psi3 >= psi2-eps && psi4 >= psi3-eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The serial test's integer statistics match the floating-point ψ² path:
// n·∇ψ² = 2^m·Σν_m² − 2^{m−1}·Σν_{m−1}².
func TestSerialIntegerFormIdentity(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 16 {
			return true
		}
		s := bitstream.FromBits(raw)
		n := float64(s.Len())
		m := 4
		sum := func(w int) (q int64) {
			for _, c := range s.PatternCountsOverlapping(w) {
				q += int64(c) * int64(c)
			}
			return q
		}
		x1 := int64(1<<uint(m))*sum(m) - int64(1<<uint(m-1))*sum(m-1)
		del := psiSquared(s, m) - psiSquared(s, m-1)
		return math.Abs(float64(x1)-n*del) < 1e-6*(1+math.Abs(float64(x1)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Cusum backward statistic from recorded extrema equals the direct
// reversed-walk maximum — the identity that saves the hardware a second
// pass.
func TestCusumBackwardIdentity(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		s := bitstream.FromBits(raw)
		sMax, sMin, sFin := s.RandomWalk()
		zb := sFin - sMin
		if sMax-sFin > zb {
			zb = sMax - sFin
		}
		// Direct computation on the reversed sequence.
		rev := bitstream.New(s.Len())
		for i := s.Len() - 1; i >= 0; i-- {
			rev.AppendBit(s.Bit(i))
		}
		rMax, rMin, _ := rev.RandomWalk()
		zDirect := rMax
		if -rMin > zDirect {
			zDirect = -rMin
		}
		return zb == zDirect
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Longest-run classification is invariant under counter saturation at the
// top class bound — the hardware's narrow saturating counter trick.
func TestLongestRunSaturationInvariance(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 16 {
			return true
		}
		s := bitstream.FromBits(raw)
		const m, lo, hi = 8, 1, 4
		for _, longest := range s.BlockLongestRuns(m) {
			saturated := longest
			if saturated > hi {
				saturated = hi
			}
			classify := func(v int) int {
				switch {
				case v <= lo:
					return 0
				case v >= hi:
					return hi - lo
				default:
					return v - lo
				}
			}
			if classify(longest) != classify(saturated) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
