package nist

import (
	"fmt"

	"repro/internal/bitstream"
)

// This file adds the full-template-set form of the non-overlapping template
// test. SP800-22 runs test 7 once per *aperiodic* (non-periodic) template —
// 148 templates for m = 9; the hardware monitor checks a single fixed
// template, so the full sweep is the software reference the platform's
// choice is validated against.

// NonPeriodicTemplates enumerates the aperiodic templates of length m in
// ascending numeric order (MSB-first encoding). A template B is aperiodic
// if no proper prefix of B is also a suffix (no self-overlap): shifted
// copies of B cannot overlap each other.
func NonPeriodicTemplates(m int) ([]uint32, error) {
	if m < 2 || m > 21 {
		return nil, fmt.Errorf("nist: template length %d out of range", m)
	}
	var out []uint32
	for b := uint32(0); b < 1<<uint(m); b++ {
		if isAperiodic(b, m) {
			out = append(out, b)
		}
	}
	return out, nil
}

// isAperiodic reports whether the m-bit template has no nontrivial border
// (prefix that equals a suffix).
func isAperiodic(b uint32, m int) bool {
	for k := 1; k < m; k++ {
		// Compare the (m−k)-bit prefix with the (m−k)-bit suffix.
		prefix := b >> uint(k)
		suffix := b & (1<<uint(m-k) - 1)
		if prefix == suffix {
			return false
		}
	}
	return true
}

// NonOverlappingTemplateAll runs test 7 for every aperiodic template of
// length m, returning one result whose P-values are indexed by template.
// This is the publication's full form of the test; it is far too large for
// the on-the-fly monitor (148 engines for m = 9) — quantifying that is part
// of the Table I evidence.
func NonOverlappingTemplateAll(s *bitstream.Sequence, m, nBlocks int) (*Result, error) {
	tpls, err := NonPeriodicTemplates(m)
	if err != nil {
		return nil, err
	}
	n := s.Len()
	r := newResult(7, "Non-overlapping Template Matching (all templates)", n)
	for _, tpl := range tpls {
		one, err := NonOverlappingTemplate(s, tpl, m, nBlocks)
		if err != nil {
			return nil, err
		}
		r.addP(fmt.Sprintf("B=%0*b", m, tpl), one.MinP())
	}
	r.Stats["templates"] = float64(len(tpls))
	return r, nil
}
