package nist

import (
	"fmt"
	"math"

	"repro/internal/bitstream"
	"repro/internal/specfunc"
)

// psiSquared computes ψ²_m = (2^m/n) Σ ν² − n over the overlapping m-bit
// pattern counts (with wrap-around). ψ²_0 and ψ²_{-1} are defined as 0.
func psiSquared(s *bitstream.Sequence, m int) float64 {
	if m <= 0 {
		return 0
	}
	n := float64(s.Len())
	sum := 0.0
	for _, c := range s.PatternCountsOverlapping(m) {
		sum += float64(c) * float64(c)
	}
	return math.Pow(2, float64(m))/n*sum - n
}

// Serial runs test 11, the Serial test (SP800-22 §2.11), with pattern
// length m. It computes ∇ψ²_m = ψ²_m − ψ²_{m−1} and
// ∇²ψ²_m = ψ²_m − 2ψ²_{m−1} + ψ²_{m−2}, giving two P-values:
// P1 = igamc(2^{m−2}, ∇ψ²/2) and P2 = igamc(2^{m−3}, ∇²ψ²/2).
//
// HW/SW split (paper Table II): hardware supplies the 2^m + 2^{m−1} + 2^{m−2}
// pattern counters (ν for m-, (m−1)- and (m−2)-bit patterns); software does
// the squaring/summing. This is the paper's second contribution — the first
// hardware implementation of this test suitable for on-the-fly use.
func Serial(s *bitstream.Sequence, m int) (*Result, error) {
	n := s.Len()
	if m < 2 {
		return nil, fmt.Errorf("nist: serial: pattern length %d too small", m)
	}
	if n <= m+2 {
		return nil, ErrTooShort
	}
	r := newResult(11, "Serial", n)
	psiM := psiSquared(s, m)
	psiM1 := psiSquared(s, m-1)
	psiM2 := psiSquared(s, m-2)
	del1 := psiM - psiM1
	del2 := psiM - 2*psiM1 + psiM2
	p1, err := specfunc.Igamc(math.Pow(2, float64(m-2)), del1/2)
	if err != nil {
		return nil, err
	}
	p2, err := specfunc.Igamc(math.Pow(2, float64(m-3)), del2/2)
	if err != nil {
		return nil, err
	}
	r.Stats["psi2_m"] = psiM
	r.Stats["psi2_m1"] = psiM1
	r.Stats["psi2_m2"] = psiM2
	r.Stats["del1"] = del1
	r.Stats["del2"] = del2
	r.addP("p1", p1)
	r.addP("p2", p2)
	return r, nil
}

// ApproximateEntropy runs test 12, the Approximate Entropy test (SP800-22
// §2.12), with block length m. φ_m = Σ (ν_i/n)·ln(ν_i/n) over overlapping
// m-bit patterns (with wrap-around); ApEn(m) = φ_m − φ_{m+1};
// χ² = 2n[ln 2 − ApEn(m)] and P = igamc(2^{m−1}, χ²/2).
//
// HW/SW split: the hardware counters are the same ν used by the serial test
// (the paper's "unified implementation" trick — test 12 adds no hardware);
// the software evaluates x·log(x) with a 32-segment piece-wise-linear
// approximation (Fig. 3), implemented in internal/sweval.
func ApproximateEntropy(s *bitstream.Sequence, m int) (*Result, error) {
	n := s.Len()
	if m < 1 {
		return nil, fmt.Errorf("nist: approximate entropy: block length %d too small", m)
	}
	if n <= m+2 {
		return nil, ErrTooShort
	}
	r := newResult(12, "Approximate Entropy", n)
	phi := func(mm int) float64 {
		sum := 0.0
		for _, c := range s.PatternCountsOverlapping(mm) {
			if c == 0 {
				continue
			}
			f := float64(c) / float64(n)
			sum += f * math.Log(f)
		}
		return sum
	}
	phiM := phi(m)
	phiM1 := phi(m + 1)
	apen := phiM - phiM1
	chi2 := 2 * float64(n) * (math.Ln2 - apen)
	if chi2 < 0 {
		// Guard against tiny negative round-off for degenerate inputs.
		chi2 = 0
	}
	p, err := specfunc.Igamc(math.Pow(2, float64(m-1)), chi2/2)
	if err != nil {
		return nil, err
	}
	r.Stats["phi_m"] = phiM
	r.Stats["phi_m1"] = phiM1
	r.Stats["apen"] = apen
	r.Stats["chi2"] = chi2
	r.addP("p", p)
	return r, nil
}
