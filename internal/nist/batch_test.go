package nist

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
)

// quickTests is a fast subset for batch testing.
func quickTests() []Test {
	var out []Test
	for _, tc := range Suite() {
		switch tc.ID {
		case 1, 3, 11, 13:
			out = append(out, tc)
		}
	}
	return out
}

func TestRunBatchAcceptsIdealGenerator(t *testing.T) {
	var seqs []*bitstream.Sequence
	for i := 0; i < 30; i++ {
		seqs = append(seqs, randomSeq(4096, int64(5000+i)))
	}
	results, err := RunBatch(quickTests(), seqs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d batch results", len(results))
	}
	for _, br := range results {
		if br.Sequences != 30 {
			t.Errorf("test %d ran on %d sequences", br.TestID, br.Sequences)
		}
		if !br.OK() {
			t.Errorf("test %d rejected the ideal generator (prop %.3f, PT %.4g)",
				br.TestID, br.Proportion.Proportion, br.Uniformity.PT)
		}
	}
}

func TestRunBatchRejectsCorrelatedGenerator(t *testing.T) {
	// A mildly sticky Markov generator (stick = 0.55): often passes a
	// single 4096-bit sequence, but the batch criteria reject it via the
	// serial/runs P-value distribution.
	var seqs []*bitstream.Sequence
	for i := 0; i < 30; i++ {
		rng := rand.New(rand.NewSource(int64(6000 + i)))
		s := bitstream.New(4096)
		b := byte(0)
		for s.Len() < 4096 {
			if rng.Float64() >= 0.55 {
				b ^= 1
			}
			s.AppendBit(b)
		}
		seqs = append(seqs, s)
	}
	results, err := RunBatch(quickTests(), seqs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rejected := false
	for _, br := range results {
		if !br.OK() {
			rejected = true
		}
	}
	if !rejected {
		t.Error("batch criteria accepted a structurally correlated generator")
	}
}

func TestRunBatchHandlesInapplicableTests(t *testing.T) {
	// Random excursions is inapplicable on short sequences: the batch
	// must skip them gracefully.
	var excursions []Test
	for _, tc := range Suite() {
		if tc.ID == 14 {
			excursions = append(excursions, tc)
		}
	}
	seqs := []*bitstream.Sequence{randomSeq(2048, 1), randomSeq(2048, 2)}
	results, err := RunBatch(excursions, seqs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Sequences != 0 {
		t.Errorf("excursions ran on %d short sequences, want 0", results[0].Sequences)
	}
	if !results[0].OK() {
		t.Error("no-data batch should be vacuously OK")
	}
}

func TestRunBatchValidation(t *testing.T) {
	if _, err := RunBatch(quickTests(), nil, 0.01); err == nil {
		t.Error("empty batch accepted")
	}
}
