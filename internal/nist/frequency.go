package nist

import (
	"fmt"
	"math"

	"repro/internal/bitstream"
	"repro/internal/specfunc"
)

// Frequency runs test 1, the Frequency (Monobit) test (SP800-22 §2.1).
// The statistic is s_obs = |Σ(2ε_i − 1)| / √n; under H₀ it is asymptotically
// half-normal, and P = erfc(s_obs/√2).
//
// Hardware/software split (paper Table II): hardware supplies N_ones (in the
// unified design derived from the cusum up/down counter's final value);
// software performs only comparison operations against a precomputed bound.
func Frequency(s *bitstream.Sequence) (*Result, error) {
	n := s.Len()
	if n < 1 {
		return nil, ErrTooShort
	}
	r := newResult(1, "Frequency (Monobit)", n)
	ones := s.Ones()
	sn := 2*ones - n
	sObs := math.Abs(float64(sn)) / math.Sqrt(float64(n))
	p := specfunc.Erfc(sObs / math.Sqrt2)
	r.Stats["n_ones"] = float64(ones)
	r.Stats["s_n"] = float64(sn)
	r.Stats["s_obs"] = sObs
	r.addP("p", p)
	return r, nil
}

// BlockFrequency runs test 2, the Frequency test within a Block (SP800-22
// §2.2) with block length m. χ² = 4m Σ (π_i − 1/2)² over the N = n/m
// blocks, and P = igamc(N/2, χ²/2).
//
// HW/SW split: hardware supplies the per-block ones counts ε_1..ε_N;
// software computes Σ (ε_i − m/2)², which equals m/4 · χ²/... — in integer
// form 4/m · Σ(ε_i − m/2)² = χ² (exact when m is even, in particular for
// the power-of-two block lengths the platform uses).
func BlockFrequency(s *bitstream.Sequence, m int) (*Result, error) {
	n := s.Len()
	if m < 2 {
		return nil, fmt.Errorf("nist: block frequency: invalid block length %d", m)
	}
	nBlocks := n / m
	if nBlocks < 1 {
		return nil, ErrTooShort
	}
	r := newResult(2, "Frequency within a Block", nBlocks*m)
	chi2 := 0.0
	for _, ones := range s.BlockOnes(m) {
		d := float64(ones)/float64(m) - 0.5
		chi2 += d * d
	}
	chi2 *= 4 * float64(m)
	p, err := specfunc.Igamc(float64(nBlocks)/2, chi2/2)
	if err != nil {
		return nil, err
	}
	r.Stats["chi2"] = chi2
	r.Stats["blocks"] = float64(nBlocks)
	r.Stats["m"] = float64(m)
	r.addP("p", p)
	return r, nil
}

// Runs runs test 3, the Runs test (SP800-22 §2.3). With π = N_ones/n, the
// test first requires |π − 1/2| < 2/√n (otherwise the monobit test has
// already failed and P is reported as 0); then with V_n the total number of
// runs, P = erfc(|V_n − 2nπ(1−π)| / (2√(2n) π(1−π))).
//
// HW/SW split: hardware supplies N_ones and N_runs; software performs only
// comparisons — the acceptance interval for N_runs is precomputed per
// N_ones interval (see internal/sweval).
func Runs(s *bitstream.Sequence) (*Result, error) {
	n := s.Len()
	if n < 2 {
		return nil, ErrTooShort
	}
	r := newResult(3, "Runs", n)
	ones := s.Ones()
	pi := float64(ones) / float64(n)
	runs := s.Runs()
	r.Stats["n_ones"] = float64(ones)
	r.Stats["v_n"] = float64(runs)
	r.Stats["pi"] = pi
	if math.Abs(pi-0.5) >= 2/math.Sqrt(float64(n)) {
		// Frequency precondition failed: the runs test is defined to
		// report non-randomness immediately.
		r.Stats["precondition"] = 0
		r.addP("p", 0)
		return r, nil
	}
	r.Stats["precondition"] = 1
	num := math.Abs(float64(runs) - 2*float64(n)*pi*(1-pi))
	den := 2 * math.Sqrt(2*float64(n)) * pi * (1 - pi)
	p := specfunc.Erfc(num / den)
	r.addP("p", p)
	return r, nil
}

// LongestRunOfOnes runs test 4, the test for the Longest Run of Ones in a
// Block (SP800-22 §2.4) with block length m. The longest run in each block
// is classified into K+1 classes; χ² compares the class counts ν_i against
// the exact class probabilities π_i (computed, not table-copied — see
// LongestRunClassProbs), and P = igamc(K/2, χ²/2).
//
// HW/SW split: hardware supplies the class counts ν_i; software computes
// Σ ν_i²/(Nπ_i) − N (an algebraically identical form needing one multiply
// and one reciprocal constant per class).
func LongestRunOfOnes(s *bitstream.Sequence, m int) (*Result, error) {
	n := s.Len()
	lo, hi, err := LongestRunClassBounds(m)
	if err != nil {
		return nil, err
	}
	nBlocks := n / m
	if nBlocks < 4 {
		return nil, ErrTooShort
	}
	r := newResult(4, "Longest Run of Ones in a Block", nBlocks*m)
	probs, err := LongestRunClassProbs(m, lo, hi)
	if err != nil {
		return nil, err
	}
	counts := make([]int, hi-lo+1)
	for _, longest := range s.BlockLongestRuns(m) {
		switch {
		case longest <= lo:
			counts[0]++
		case longest >= hi:
			counts[len(counts)-1]++
		default:
			counts[longest-lo]++
		}
	}
	chi2 := 0.0
	for i, c := range counts {
		e := float64(nBlocks) * probs[i]
		d := float64(c) - e
		chi2 += d * d / e
	}
	k := len(counts) - 1
	p, err := specfunc.Igamc(float64(k)/2, chi2/2)
	if err != nil {
		return nil, err
	}
	r.Stats["chi2"] = chi2
	r.Stats["blocks"] = float64(nBlocks)
	r.Stats["m"] = float64(m)
	for i, c := range counts {
		r.Stats[fmt.Sprintf("nu_%d", i)] = float64(c)
	}
	r.addP("p", p)
	return r, nil
}

// LongestRunClassBounds returns the class boundaries (lo = "≤lo" class,
// hi = "≥hi" class) SP800-22 prescribes for block length m, extended to the
// power-of-two block lengths the platform uses (8192 gets the same K=6
// classes as the standard's 10⁴).
func LongestRunClassBounds(m int) (lo, hi int, err error) {
	switch {
	case m < 8:
		return 0, 0, fmt.Errorf("nist: longest run: block length %d too small", m)
	case m < 128:
		return 1, 4, nil // classes ≤1, 2, 3, ≥4 (K=3)
	case m < 6272:
		return 4, 9, nil // classes ≤4 … ≥9 (K=5)
	default:
		return 10, 16, nil // classes ≤10 … ≥16 (K=6)
	}
}
