package nist

import (
	"fmt"
	"math"

	"repro/internal/bitstream"
	"repro/internal/specfunc"
)

// walkCycles derives the random-walk cycles of the sequence: the ±1 partial
// sums split at every return to zero (with a final implicit return). It
// returns the per-cycle visit counts for the states −4..−1, 1..4 (test 14)
// and the total visit counts for −9..9 (test 15), along with the number of
// cycles J.
func walkCycles(s *bitstream.Sequence) (perCycle [][]int, totals map[int]int, cycles int) {
	totals = make(map[int]int)
	cur := make([]int, 8) // visit counts for states -4..-1,1..4 in this cycle
	flush := func() {
		perCycle = append(perCycle, cur)
		cur = make([]int, 8)
		cycles++
	}
	sum := 0
	started := false
	for i := 0; i < s.Len(); i++ {
		if s.Bit(i) == 1 {
			sum++
		} else {
			sum--
		}
		started = true
		if sum == 0 {
			flush()
			continue
		}
		if sum >= -9 && sum <= 9 {
			totals[sum]++
		}
		if sum >= -4 && sum <= 4 {
			cur[stateIndex(sum)]++
		}
	}
	if started && sum != 0 {
		// The final partial cycle counts as one cycle per SP800-22.
		flush()
	}
	return perCycle, totals, cycles
}

// stateIndex maps a nonzero state in -4..4 to an index 0..7.
func stateIndex(x int) int {
	if x < 0 {
		return x + 4 // -4..-1 -> 0..3
	}
	return x + 3 // 1..4 -> 4..7
}

// excursionsPi returns π_k(x): the probability that state x is visited
// exactly k times in one cycle (k capped at 5 meaning "≥5" for k=5),
// from SP800-22 §3.14.
func excursionsPi(x, k int) float64 {
	ax := math.Abs(float64(x))
	switch {
	case k == 0:
		return 1 - 1/(2*ax)
	case k < 5:
		return 1 / (4 * ax * ax) * math.Pow(1-1/(2*ax), float64(k-1))
	default:
		return 1 / (2 * ax) * math.Pow(1-1/(2*ax), 4)
	}
}

// RandomExcursions runs test 14, the Random Excursions test (SP800-22
// §2.14). The walk is cut into J zero-to-zero cycles; for each state
// x ∈ {−4..−1, 1..4} the number of cycles visiting x exactly 0..4 or ≥5
// times is compared by χ² (5 degrees of freedom) against the exact cycle
// visit distribution. Requires J ≥ max(0.005√n, 500) to be applicable.
//
// Marked "No" in the paper's Table I: per-cycle, per-state class counters
// (48 of them) plus the applicability bookkeeping exceed the monitor's
// area budget, and the test is undefined until enough cycles are seen.
func RandomExcursions(s *bitstream.Sequence) (*Result, error) {
	n := s.Len()
	if n < 128 {
		return nil, ErrTooShort
	}
	perCycle, _, j := walkCycles(s)
	limit := math.Max(0.005*math.Sqrt(float64(n)), 500)
	r := newResult(14, "Random Excursions", n)
	r.Stats["J"] = float64(j)
	if float64(j) < limit {
		return r, ErrNotApplicable
	}
	for _, x := range []int{-4, -3, -2, -1, 1, 2, 3, 4} {
		// counts[k] = number of cycles in which x was visited exactly k
		// times (k=5 means ≥5).
		var counts [6]int
		for _, cyc := range perCycle {
			v := cyc[stateIndex(x)]
			if v > 5 {
				v = 5
			}
			counts[v]++
		}
		chi2 := 0.0
		for k, c := range counts {
			e := float64(j) * excursionsPi(x, k)
			chi2 += sq(float64(c)-e) / e
		}
		p, err := specfunc.Igamc(2.5, chi2/2)
		if err != nil {
			return nil, err
		}
		r.Stats[fmt.Sprintf("chi2_x%+d", x)] = chi2
		r.addP(fmt.Sprintf("x=%+d", x), p)
	}
	return r, nil
}

// RandomExcursionsVariant runs test 15, the Random Excursions Variant test
// (SP800-22 §2.15). For each state x ∈ {−9..−1, 1..9}, the total number of
// visits ξ(x) across the whole walk satisfies
// P = erfc(|ξ(x) − J| / √(2J(4|x| − 2))). Same applicability condition on J
// as test 14.
func RandomExcursionsVariant(s *bitstream.Sequence) (*Result, error) {
	n := s.Len()
	if n < 128 {
		return nil, ErrTooShort
	}
	_, totals, j := walkCycles(s)
	limit := math.Max(0.005*math.Sqrt(float64(n)), 500)
	r := newResult(15, "Random Excursions Variant", n)
	r.Stats["J"] = float64(j)
	if float64(j) < limit {
		return r, ErrNotApplicable
	}
	for x := -9; x <= 9; x++ {
		if x == 0 {
			continue
		}
		xi := float64(totals[x])
		den := math.Sqrt(2 * float64(j) * (4*math.Abs(float64(x)) - 2))
		p := specfunc.Erfc(math.Abs(xi-float64(j)) / den)
		r.Stats[fmt.Sprintf("xi_x%+d", x)] = xi
		r.addP(fmt.Sprintf("x=%+d", x), p)
	}
	return r, nil
}
