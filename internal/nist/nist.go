// Package nist implements the complete NIST SP800-22 statistical test suite
// (all 15 tests) as the full-precision software reference. The embedded
// HW/SW platform in internal/hwblock + internal/sweval is validated against
// this package: for every sequence, the decision derived from the hardware
// counters and the integer software routine must match the decision the
// reference test makes at the same level of significance.
//
// Unlike the NIST reference code, the class-probability vectors that tests 4
// (longest run of ones) and 8 (overlapping templates) need are not copied
// from the publication's tables but computed exactly for arbitrary block
// lengths (see distributions.go). This is what lets the platform use
// power-of-two block lengths — the paper's block-detection trick — without
// losing exactness.
package nist

import (
	"errors"
	"fmt"

	"repro/internal/bitstream"
)

// Common errors returned by the tests.
var (
	// ErrTooShort reports that the sequence does not meet the test's
	// minimum length recommendation and the result would be meaningless.
	ErrTooShort = errors.New("nist: sequence too short for this test")
	// ErrNotApplicable reports that the test's applicability conditions
	// (e.g. minimum number of cycles in the random excursions test) are
	// not met; the sequence is neither accepted nor rejected.
	ErrNotApplicable = errors.New("nist: test not applicable to this sequence")
)

// DefaultAlpha is the level of significance NIST recommends when nothing
// else is specified. The standard allows α ∈ [0.001, 0.01].
const DefaultAlpha = 0.01

// PValue is one named P-value produced by a test. Most tests produce one;
// the serial test produces two, the cumulative-sums test two (forward and
// backward), and the random-excursions tests one per state.
type PValue struct {
	Name  string
	Value float64
}

// Result is the outcome of one statistical test on one sequence.
type Result struct {
	// TestID is the test's number in SP800-22 (1–15), matching the
	// paper's Table I numbering.
	TestID int
	// Name is the test's human-readable name.
	Name string
	// N is the number of input bits the test consumed.
	N int
	// PValues holds the P-values; the hypothesis is rejected if any of
	// them falls below α.
	PValues []PValue
	// Stats carries test-specific intermediate statistics, keyed by the
	// symbol used in the publication (e.g. "chi2", "s_obs"). They exist
	// so the HW/SW equivalence tests can compare against the embedded
	// datapath, and for diagnostics.
	Stats map[string]float64
}

// Pass reports whether the randomness hypothesis is accepted at level
// alpha: every P-value must be at least alpha.
func (r *Result) Pass(alpha float64) bool {
	for _, p := range r.PValues {
		if p.Value < alpha {
			return false
		}
	}
	return true
}

// MinP returns the smallest P-value of the result (1 if there are none).
func (r *Result) MinP() float64 {
	min := 1.0
	for _, p := range r.PValues {
		if p.Value < min {
			min = p.Value
		}
	}
	return min
}

func (r *Result) String() string {
	return fmt.Sprintf("test %d (%s): n=%d minP=%.6f", r.TestID, r.Name, r.N, r.MinP())
}

func newResult(id int, name string, n int) *Result {
	return &Result{TestID: id, Name: name, N: n, Stats: make(map[string]float64)}
}

func (r *Result) addP(name string, v float64) {
	r.PValues = append(r.PValues, PValue{Name: name, Value: v})
}

// Test is a suite entry: a named statistical test with its SP800-22 number,
// runnable on a sequence with default parameters appropriate for its
// length.
type Test struct {
	ID   int
	Name string
	// HWSuitable mirrors the paper's Table I verdict: whether the test
	// admits a compact bit-serial hardware implementation with simple
	// software finishing arithmetic.
	HWSuitable bool
	// Run executes the test with default parameters for len(s) bits.
	Run func(s *bitstream.Sequence) (*Result, error)
}

// Suite returns all 15 tests in SP800-22 order. Tests whose default
// parameters depend on n pick them the way RecommendedParams does.
func Suite() []Test {
	return []Test{
		{1, "Frequency (Monobit)", true, Frequency},
		{2, "Frequency within a Block", true, func(s *bitstream.Sequence) (*Result, error) {
			return BlockFrequency(s, RecommendedParams(s.Len()).BlockFrequencyM)
		}},
		{3, "Runs", true, Runs},
		{4, "Longest Run of Ones in a Block", true, func(s *bitstream.Sequence) (*Result, error) {
			p := RecommendedParams(s.Len())
			return LongestRunOfOnes(s, p.LongestRunM)
		}},
		{5, "Binary Matrix Rank", false, func(s *bitstream.Sequence) (*Result, error) {
			return Rank(s, 32, 32)
		}},
		{6, "Discrete Fourier Transform (Spectral)", false, DFT},
		{7, "Non-overlapping Template Matching", true, func(s *bitstream.Sequence) (*Result, error) {
			p := RecommendedParams(s.Len())
			return NonOverlappingTemplate(s, p.TemplateB, p.TemplateM, p.NonOverlappingN)
		}},
		{8, "Overlapping Template Matching", true, func(s *bitstream.Sequence) (*Result, error) {
			p := RecommendedParams(s.Len())
			return OverlappingTemplate(s, p.TemplateM, p.OverlappingM)
		}},
		{9, "Maurer's Universal Statistical", false, Universal},
		{10, "Linear Complexity", false, func(s *bitstream.Sequence) (*Result, error) {
			return LinearComplexity(s, 500)
		}},
		{11, "Serial", true, func(s *bitstream.Sequence) (*Result, error) {
			return Serial(s, RecommendedParams(s.Len()).SerialM)
		}},
		{12, "Approximate Entropy", true, func(s *bitstream.Sequence) (*Result, error) {
			return ApproximateEntropy(s, RecommendedParams(s.Len()).SerialM-1)
		}},
		{13, "Cumulative Sums (Cusum)", true, CumulativeSums},
		{14, "Random Excursions", false, RandomExcursions},
		{15, "Random Excursions Variant", false, RandomExcursionsVariant},
	}
}

// Params bundles the default test parameters for a sequence length. The
// block lengths are powers of two, matching the paper's block-detection
// constraint (§III-C "Block detection").
type Params struct {
	BlockFrequencyM int    // test 2 block length
	LongestRunM     int    // test 4 block length
	TemplateM       int    // tests 7/8 template length
	TemplateB       uint32 // test 7 default template (MSB-first)
	NonOverlappingN int    // test 7 number of blocks
	OverlappingM    int    // test 8 block length
	SerialM         int    // test 11 pattern length (test 12 uses m-1)
}

// RecommendedParams returns the default parameters used for a sequence of n
// bits. The three rows correspond to the paper's three supported lengths;
// other lengths get the nearest sensible configuration.
func RecommendedParams(n int) Params {
	switch {
	case n <= 256:
		return Params{
			BlockFrequencyM: 16,
			LongestRunM:     8,
			TemplateM:       9,
			TemplateB:       0b000000001,
			NonOverlappingN: 8,
			OverlappingM:    1024,
			SerialM:         4,
		}
	case n <= 65536:
		return Params{
			BlockFrequencyM: 8192,
			LongestRunM:     128,
			TemplateM:       9,
			TemplateB:       0b000000001,
			NonOverlappingN: 8,
			OverlappingM:    1024,
			SerialM:         4,
		}
	default:
		return Params{
			BlockFrequencyM: 65536,
			LongestRunM:     8192,
			TemplateM:       9,
			TemplateB:       0b000000001,
			NonOverlappingN: 8,
			OverlappingM:    1024,
			SerialM:         4,
		}
	}
}
