package nist

import (
	"fmt"
	"math"
)

// This file computes, exactly, the null distributions that SP800-22 ships
// as tables. Computing them instead of copying them lets the platform use
// arbitrary (in particular power-of-two) block lengths, which is the
// foundation of the paper's block-detection trick and of its future-work
// item "allowing the software to select the test parameters".

// longestRunCDF returns P(longest run of ones in an m-bit ideal random
// block ≤ k), evaluated by dynamic programming over the length of the
// trailing run of ones (states 0..k, absorbing failure past k).
func longestRunCDF(m, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= m {
		return 1
	}
	// state[r] = probability the block so far is legal and ends in a run
	// of exactly r ones.
	state := make([]float64, k+1)
	next := make([]float64, k+1)
	state[0] = 1
	for i := 0; i < m; i++ {
		for r := range next {
			next[r] = 0
		}
		var total float64
		for r, p := range state {
			if p == 0 {
				continue
			}
			// Next bit is 0: run resets.
			next[0] += p / 2
			// Next bit is 1: run extends; exceeding k kills the path.
			if r+1 <= k {
				next[r+1] += p / 2
			}
			total += p
		}
		_ = total
		state, next = next, state
	}
	sum := 0.0
	for _, p := range state {
		sum += p
	}
	return sum
}

// LongestRunClassProbs returns the probabilities of the longest-run classes
// {≤lo, lo+1, …, hi−1, ≥hi} for an m-bit block. The returned slice has
// hi−lo+1 entries summing to 1.
func LongestRunClassProbs(m, lo, hi int) ([]float64, error) {
	if lo < 0 || hi <= lo || m <= 0 {
		return nil, fmt.Errorf("nist: invalid longest-run classes lo=%d hi=%d m=%d", lo, hi, m)
	}
	probs := make([]float64, hi-lo+1)
	prev := longestRunCDF(m, lo)
	probs[0] = prev
	for v := lo + 1; v < hi; v++ {
		cdf := longestRunCDF(m, v)
		probs[v-lo] = cdf - prev
		prev = cdf
	}
	probs[len(probs)-1] = 1 - prev
	return probs, nil
}

// kmpAutomaton builds the deterministic matching automaton for the m-bit
// template tpl (MSB-first): next[state][bit] is the new match length after
// consuming bit. Reaching state m is an occurrence; overlapping scanning
// continues from the failure state of m.
func kmpAutomaton(tpl uint32, m int) (next [][2]int) {
	pat := make([]byte, m)
	for i := 0; i < m; i++ {
		pat[i] = byte(tpl>>uint(m-1-i)) & 1
	}
	// Failure function.
	fail := make([]int, m+1)
	for i := 1; i < m; i++ {
		j := fail[i]
		for j > 0 && pat[i] != pat[j] {
			j = fail[j]
		}
		if pat[i] == pat[j] {
			j++
		}
		fail[i+1] = j
	}
	next = make([][2]int, m+1)
	for st := 0; st <= m; st++ {
		for b := 0; b <= 1; b++ {
			j := st
			if j == m {
				j = fail[m]
			}
			for j > 0 && byte(b) != pat[j] {
				j = fail[j]
			}
			if byte(b) == pat[j] {
				j++
			}
			next[st][b] = j
		}
	}
	return next
}

// OverlappingTemplateClassProbs returns the probabilities that an m-bit
// template occurs (with overlap) exactly 0, 1, …, K−1, or ≥K times in a
// blockLen-bit ideal random block, via dynamic programming over the KMP
// matching automaton. The returned slice has K+1 entries summing to 1.
func OverlappingTemplateClassProbs(tpl uint32, m, blockLen, k int) ([]float64, error) {
	if m <= 0 || m > 31 || blockLen < m || k < 1 {
		return nil, fmt.Errorf("nist: invalid overlapping-template parameters m=%d M=%d K=%d", m, blockLen, k)
	}
	auto := kmpAutomaton(tpl, m)
	nStates := m + 1
	// dp[state*(k+1) + count] with count capped at k.
	dp := make([]float64, nStates*(k+1))
	nxt := make([]float64, nStates*(k+1))
	dp[0] = 1
	for i := 0; i < blockLen; i++ {
		for j := range nxt {
			nxt[j] = 0
		}
		for st := 0; st < nStates; st++ {
			for c := 0; c <= k; c++ {
				p := dp[st*(k+1)+c]
				if p == 0 {
					continue
				}
				for b := 0; b <= 1; b++ {
					ns := auto[st][b]
					nc := c
					if ns == m && nc < k {
						nc++
					}
					nxt[ns*(k+1)+nc] += p / 2
				}
			}
		}
		dp, nxt = nxt, dp
	}
	probs := make([]float64, k+1)
	for st := 0; st < nStates; st++ {
		for c := 0; c <= k; c++ {
			probs[c] += dp[st*(k+1)+c]
		}
	}
	return probs, nil
}

// RankProbs returns P(rank = r) for a random rows×cols binary matrix over
// GF(2), using the standard product formula.
func RankProbs(rows, cols, r int) float64 {
	if r < 0 || r > rows || r > cols {
		return 0
	}
	// log2 of the probability to avoid underflow in intermediates.
	exp := float64(r*(cols+rows-r) - rows*cols)
	prod := 1.0
	for i := 0; i < r; i++ {
		prod *= (1 - math.Pow(2, float64(i-cols))) * (1 - math.Pow(2, float64(i-rows))) /
			(1 - math.Pow(2, float64(i-r)))
	}
	return math.Pow(2, exp) * prod
}
