package nist

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/specfunc"
)

// Rank runs test 5, the Binary Matrix Rank test (SP800-22 §2.5), with
// rows×cols matrices (the standard uses 32×32). The sequence is cut into
// N = n/(rows·cols) matrices filled row-major; each matrix's GF(2) rank is
// classified as full, full−1, or lower, and χ² (2 degrees of freedom)
// compares the class counts against the exact rank distribution.
//
// This test is marked "No" in the paper's Table I: the hardware would need
// to store a full rows×cols bit matrix and software would need Gaussian
// elimination — both incompatible with a compact on-the-fly monitor.
func Rank(s *bitstream.Sequence, rows, cols int) (*Result, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("nist: rank: invalid matrix size %dx%d", rows, cols)
	}
	n := s.Len()
	perMatrix := rows * cols
	nMatrices := n / perMatrix
	if nMatrices < 1 {
		return nil, ErrTooShort
	}
	r := newResult(5, "Binary Matrix Rank", nMatrices*perMatrix)
	full := rows
	if cols < full {
		full = cols
	}
	var cFull, cFull1, cLower int
	for i := 0; i < nMatrices; i++ {
		rank := gf2Rank(s, i*perMatrix, rows, cols)
		switch rank {
		case full:
			cFull++
		case full - 1:
			cFull1++
		default:
			cLower++
		}
	}
	pFull := RankProbs(rows, cols, full)
	pFull1 := RankProbs(rows, cols, full-1)
	pLower := 1 - pFull - pFull1
	nm := float64(nMatrices)
	chi2 := sq(float64(cFull)-nm*pFull)/(nm*pFull) +
		sq(float64(cFull1)-nm*pFull1)/(nm*pFull1) +
		sq(float64(cLower)-nm*pLower)/(nm*pLower)
	p, err := specfunc.Igamc(1, chi2/2)
	if err != nil {
		return nil, err
	}
	r.Stats["chi2"] = chi2
	r.Stats["full"] = float64(cFull)
	r.Stats["full_minus_1"] = float64(cFull1)
	r.Stats["lower"] = float64(cLower)
	r.Stats["matrices"] = float64(nMatrices)
	r.addP("p", p)
	return r, nil
}

func sq(x float64) float64 { return x * x }

// gf2Rank computes the rank over GF(2) of the rows×cols matrix whose bits
// start at offset in s, filled row-major. Rows are held as uint64 words
// (cols ≤ 64 is all the suite needs).
func gf2Rank(s *bitstream.Sequence, offset, rows, cols int) int {
	if cols > 64 {
		panic("nist: gf2Rank supports at most 64 columns")
	}
	m := make([]uint64, rows)
	for i := 0; i < rows; i++ {
		var row uint64
		for j := 0; j < cols; j++ {
			row = row<<1 | uint64(s.Bit(offset+i*cols+j))
		}
		m[i] = row
	}
	rank := 0
	for col := cols - 1; col >= 0 && rank < rows; col-- {
		mask := uint64(1) << uint(col)
		pivot := -1
		for i := rank; i < rows; i++ {
			if m[i]&mask != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[rank], m[pivot] = m[pivot], m[rank]
		for i := 0; i < rows; i++ {
			if i != rank && m[i]&mask != 0 {
				m[i] ^= m[rank]
			}
		}
		rank++
	}
	return rank
}
