package nist

import "math"

// This file implements the discrete Fourier transform used by test 6.
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey FFT; other
// lengths use Bluestein's chirp-z algorithm on top of it, so the test works
// for any sequence length (the SP800-22 worked examples use n=10 and n=100).

// fftRadix2 transforms re/im in place; len(re) must be a power of two.
func fftRadix2(re, im []float64) {
	n := len(re)
	if n&(n-1) != 0 {
		panic("nist: fftRadix2 requires power-of-two length")
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	for size := 2; size <= n; size <<= 1 {
		ang := -2 * math.Pi / float64(size)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += size {
			curRe, curIm := 1.0, 0.0
			for k := 0; k < size/2; k++ {
				a, b := start+k, start+k+size/2
				tRe := re[b]*curRe - im[b]*curIm
				tIm := re[b]*curIm + im[b]*curRe
				re[b] = re[a] - tRe
				im[b] = im[a] - tIm
				re[a] += tRe
				im[a] += tIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
}

// ifftRadix2 is the inverse transform (including the 1/n scaling).
func ifftRadix2(re, im []float64) {
	n := len(re)
	for i := range im {
		im[i] = -im[i]
	}
	fftRadix2(re, im)
	for i := range re {
		re[i] /= float64(n)
		im[i] = -im[i] / float64(n)
	}
}

// dft returns the complex DFT of the real input x, as parallel re/im
// slices of length len(x).
func dft(x []float64) (re, im []float64) {
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	if n&(n-1) == 0 {
		re = append([]float64(nil), x...)
		im = make([]float64, n)
		fftRadix2(re, im)
		return re, im
	}
	return bluestein(x)
}

// bluestein evaluates the length-n DFT via the chirp-z transform using a
// power-of-two FFT of length ≥ 2n−1.
func bluestein(x []float64) (re, im []float64) {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	// chirp[k] = exp(-iπk²/n)
	chRe := make([]float64, n)
	chIm := make([]float64, n)
	for k := 0; k < n; k++ {
		// k² mod 2n keeps the angle accurate for large k.
		kk := (k * k) % (2 * n)
		ang := -math.Pi * float64(kk) / float64(n)
		chRe[k], chIm[k] = math.Cos(ang), math.Sin(ang)
	}
	aRe := make([]float64, m)
	aIm := make([]float64, m)
	for k := 0; k < n; k++ {
		aRe[k] = x[k] * chRe[k]
		aIm[k] = x[k] * chIm[k]
	}
	bRe := make([]float64, m)
	bIm := make([]float64, m)
	bRe[0], bIm[0] = chRe[0], -chIm[0]
	for k := 1; k < n; k++ {
		bRe[k], bIm[k] = chRe[k], -chIm[k]
		bRe[m-k], bIm[m-k] = chRe[k], -chIm[k]
	}
	fftRadix2(aRe, aIm)
	fftRadix2(bRe, bIm)
	for i := 0; i < m; i++ {
		aRe[i], aIm[i] = aRe[i]*bRe[i]-aIm[i]*bIm[i], aRe[i]*bIm[i]+aIm[i]*bRe[i]
	}
	ifftRadix2(aRe, aIm)
	re = make([]float64, n)
	im = make([]float64, n)
	for k := 0; k < n; k++ {
		re[k] = aRe[k]*chRe[k] - aIm[k]*chIm[k]
		im[k] = aRe[k]*chIm[k] + aIm[k]*chRe[k]
	}
	return re, im
}
