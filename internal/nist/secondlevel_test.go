package nist

import (
	"math/rand"
	"testing"
)

func TestNonPeriodicTemplatesCountM9(t *testing.T) {
	// SP800-22 lists 148 aperiodic templates for m = 9.
	tpls, err := NonPeriodicTemplates(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpls) != 148 {
		t.Errorf("m=9: %d aperiodic templates, want 148", len(tpls))
	}
}

func TestNonPeriodicTemplatesCountSmall(t *testing.T) {
	// m=2: 01 and 10 are aperiodic; 00 and 11 are not. m=3: 001, 011,
	// 100, 110 (four). m=4: SP800-22 lists... the count doubles-ish; the
	// known sequence of aperiodic binary word counts is 2, 4, 6, 12, 20, 40, 74
	// for m = 2..8.
	want := map[int]int{2: 2, 3: 4, 4: 6, 5: 12, 6: 20, 7: 40, 8: 74}
	for m, k := range want {
		tpls, err := NonPeriodicTemplates(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(tpls) != k {
			t.Errorf("m=%d: %d templates, want %d", m, len(tpls), k)
		}
	}
}

func TestIsAperiodicExamples(t *testing.T) {
	cases := []struct {
		b    uint32
		m    int
		want bool
	}{
		{0b000000001, 9, true},  // the platform's default template
		{0b111111111, 9, false}, // all-ones overlaps itself everywhere
		{0b101010101, 9, false}, // period 2
		{0b01, 2, true},
		{0b11, 2, false},
		{0b011, 3, true},
		{0b010, 3, false}, // prefix 0 == suffix 0
	}
	for _, c := range cases {
		if got := isAperiodic(c.b, c.m); got != c.want {
			t.Errorf("isAperiodic(%0*b) = %v, want %v", c.m, c.b, got, c.want)
		}
	}
}

func TestNonOverlappingTemplateAllOnRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("148-template sweep is slow")
	}
	s := randomSeq(65536, 101)
	r, err := NonOverlappingTemplateAll(s, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PValues) != 148 {
		t.Fatalf("%d P-values, want 148", len(r.PValues))
	}
	// At alpha = 0.001, expect ~0.15 failures over 148 templates; more
	// than 3 indicates a defect in the test or the source.
	failures := 0
	for _, p := range r.PValues {
		if p.Value < 0.001 {
			failures++
		}
	}
	if failures > 3 {
		t.Errorf("%d of 148 templates rejected an ideal source", failures)
	}
}

func TestProportionIdealBatch(t *testing.T) {
	// 100 sequences, frequency test, ideal source: the pass proportion
	// must sit inside the §4.2.1 interval.
	const k = 100
	passes := make([]bool, k)
	var pvalues []float64
	for i := 0; i < k; i++ {
		s := randomSeq(4096, int64(1000+i))
		r, err := Frequency(s)
		if err != nil {
			t.Fatal(err)
		}
		passes[i] = r.Pass(0.01)
		pvalues = append(pvalues, r.MinP())
	}
	pr, err := Proportion(passes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.OK {
		t.Errorf("proportion %f outside [%f, %f]", pr.Proportion, pr.Low, pr.High)
	}
	ur, err := Uniformity(pvalues)
	if err != nil {
		t.Fatal(err)
	}
	if !ur.OK {
		t.Errorf("P-values not uniform: PT = %g, bins %v", ur.PT, ur.Bins)
	}
}

func TestProportionRejectsDefectiveBatch(t *testing.T) {
	const k = 100
	passes := make([]bool, k)
	for i := 0; i < k; i++ {
		s := biasedSeq(4096, 0.53, int64(2000+i))
		r, err := Frequency(s)
		if err != nil {
			t.Fatal(err)
		}
		passes[i] = r.Pass(0.01)
	}
	pr, err := Proportion(passes, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if pr.OK {
		t.Errorf("proportion analysis accepted a 53%% biased generator (%d/%d passed)", pr.Passed, k)
	}
}

func TestUniformityRejectsSkewedPValues(t *testing.T) {
	// All P-values clustered in one bin.
	ps := make([]float64, 100)
	for i := range ps {
		ps[i] = 0.05
	}
	r, err := Uniformity(ps)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Error("uniformity accepted fully clustered P-values")
	}
}

func TestUniformityBinEdges(t *testing.T) {
	// P-values exactly 1.0 must land in the top bin, 0.0 in the bottom.
	ps := make([]float64, 20)
	for i := range ps {
		if i%2 == 0 {
			ps[i] = 1.0
		}
	}
	r, err := Uniformity(ps)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bins[9] != 10 || r.Bins[0] != 10 {
		t.Errorf("bins = %v, want 10 in first and last", r.Bins)
	}
}

func TestProportionValidation(t *testing.T) {
	if _, err := Proportion([]bool{true}, 0.01); err == nil {
		t.Error("single-sequence batch accepted")
	}
	if _, err := Proportion([]bool{true, false}, 0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := Uniformity(make([]float64, 5)); err == nil {
		t.Error("tiny batch accepted")
	}
}

func TestNonPeriodicTemplatesRange(t *testing.T) {
	if _, err := NonPeriodicTemplates(1); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := NonPeriodicTemplates(22); err == nil {
		t.Error("m=22 accepted")
	}
}

// Property-ish check: aperiodic templates of length m, when placed at
// distance d < m from themselves, never match — verified by construction
// for a sample.
func TestAperiodicNoSelfOverlap(t *testing.T) {
	tpls, err := NonPeriodicTemplates(6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, tpl := range tpls {
		d := 1 + rng.Intn(5)
		// Check: the last (6-d) bits of tpl != the first (6-d) bits.
		prefix := tpl >> uint(d)
		suffix := tpl & (1<<uint(6-d) - 1)
		if prefix == suffix {
			t.Errorf("template %06b has a border at distance %d", tpl, d)
		}
	}
}
