package nist

import (
	"math"

	"repro/internal/bitstream"
	"repro/internal/specfunc"
)

// universalConstants holds Maurer's expectedValue and variance for block
// length L (SP800-22 §2.9 Table). Indexed by L = 6..16.
var universalConstants = map[int]struct{ expected, variance float64 }{
	6:  {5.2177052, 2.954},
	7:  {6.1962507, 3.125},
	8:  {7.1836656, 3.238},
	9:  {8.1764248, 3.311},
	10: {9.1723243, 3.356},
	11: {10.170032, 3.384},
	12: {11.168765, 3.401},
	13: {12.168070, 3.410},
	14: {13.167693, 3.416},
	15: {14.167488, 3.419},
	16: {15.167379, 3.421},
}

// universalL picks the block length SP800-22 prescribes for n bits.
func universalL(n int) int {
	thresholds := []struct{ n, l int }{
		{1059061760, 16}, {496435200, 15}, {231669760, 14},
		{107560960, 13}, {49643520, 12}, {22753280, 11},
		{10342400, 10}, {4654080, 9}, {2068480, 8},
		{904960, 7}, {387840, 6},
	}
	for _, t := range thresholds {
		if n >= t.n {
			return t.l
		}
	}
	return 0
}

// Universal runs test 9, Maurer's "Universal Statistical" test (SP800-22
// §2.9). The sequence is split into L-bit blocks: Q = 10·2^L initialization
// blocks prime a last-occurrence table, then the test sum accumulates
// log₂(distance since the current block's last occurrence) over the
// remaining K blocks. The statistic f_n is compared against Maurer's
// expected value with a finite-size corrected standard deviation.
//
// Marked "No" in the paper's Table I: the last-occurrence table alone is
// 2^L words of storage — orders of magnitude beyond the monitor's budget.
func Universal(s *bitstream.Sequence) (*Result, error) {
	n := s.Len()
	l := universalL(n)
	if l == 0 {
		return nil, ErrTooShort
	}
	return UniversalWithParams(s, l, 10*(1<<uint(l)))
}

// UniversalWithParams runs test 9 with explicit block length l and
// initialization block count q, for testing and for short-sequence
// experimentation (SP800-22 only defines constants for l in 6..16).
func UniversalWithParams(s *bitstream.Sequence, l, q int) (*Result, error) {
	n := s.Len()
	cst, ok := universalConstants[l]
	if !ok {
		return nil, ErrNotApplicable
	}
	nBlocks := n / l
	k := nBlocks - q
	if k < 1 {
		return nil, ErrTooShort
	}
	r := newResult(9, "Maurer's Universal Statistical", nBlocks*l)
	last := make([]int, 1<<uint(l))
	for i := range last {
		last[i] = -1
	}
	block := func(i int) int {
		v := 0
		for j := 0; j < l; j++ {
			v = v<<1 | int(s.Bit(i*l+j))
		}
		return v
	}
	for i := 0; i < q; i++ {
		last[block(i)] = i
	}
	sum := 0.0
	for i := q; i < nBlocks; i++ {
		b := block(i)
		if last[b] < 0 {
			// Block never seen during initialization: distance is the
			// full index + 1 by the convention of the reference code.
			sum += math.Log2(float64(i + 1))
		} else {
			sum += math.Log2(float64(i - last[b]))
		}
		last[b] = i
	}
	fn := sum / float64(k)
	c := 0.7 - 0.8/float64(l) + (4+32/float64(l))*math.Pow(float64(k), -3/float64(l))/15
	sigma := c * math.Sqrt(cst.variance/float64(k))
	p := specfunc.Erfc(math.Abs(fn-cst.expected) / (math.Sqrt2 * sigma))
	r.Stats["f_n"] = fn
	r.Stats["expected"] = cst.expected
	r.Stats["sigma"] = sigma
	r.Stats["L"] = float64(l)
	r.Stats["Q"] = float64(q)
	r.Stats["K"] = float64(k)
	r.addP("p", p)
	return r, nil
}
