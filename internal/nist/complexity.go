package nist

import (
	"fmt"
	"math"

	"repro/internal/bitstream"
	"repro/internal/specfunc"
)

// linearComplexityProbs are the class probabilities for the T statistic
// classes (≤−2.5, …, >2.5) from SP800-22 §3.10.
var linearComplexityProbs = []float64{0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833}

// LinearComplexity runs test 10, the Linear Complexity test (SP800-22
// §2.10), with block length m (the standard recommends 500 ≤ m ≤ 5000).
// Each block's linear complexity L_i is found with Berlekamp-Massey; the
// centered statistic T_i = (−1)^m (L_i − μ) + 2/9 is classified into seven
// classes and χ² (6 degrees of freedom) compares against the asymptotic
// class probabilities.
//
// Marked "No" in the paper's Table I: Berlekamp-Massey needs O(m) bit
// storage and O(m²) operations per block — not a counters-and-comparators
// workload.
func LinearComplexity(s *bitstream.Sequence, m int) (*Result, error) {
	if m < 8 {
		return nil, fmt.Errorf("nist: linear complexity: block length %d too small", m)
	}
	n := s.Len()
	nBlocks := n / m
	if nBlocks < 1 {
		return nil, ErrTooShort
	}
	r := newResult(10, "Linear Complexity", nBlocks*m)
	mf := float64(m)
	sign := 1.0
	if m%2 == 1 {
		sign = -1
	}
	mu := mf/2 + (9+(-sign))/36 - (mf/3+2.0/9)/math.Pow(2, mf)
	counts := make([]int, 7)
	block := make([]byte, m)
	for b := 0; b < nBlocks; b++ {
		for i := 0; i < m; i++ {
			block[i] = s.Bit(b*m + i)
		}
		l := berlekampMassey(block)
		t := sign*(float64(l)-mu) + 2.0/9
		switch {
		case t <= -2.5:
			counts[0]++
		case t <= -1.5:
			counts[1]++
		case t <= -0.5:
			counts[2]++
		case t <= 0.5:
			counts[3]++
		case t <= 1.5:
			counts[4]++
		case t <= 2.5:
			counts[5]++
		default:
			counts[6]++
		}
	}
	chi2 := 0.0
	for i, c := range counts {
		e := float64(nBlocks) * linearComplexityProbs[i]
		chi2 += sq(float64(c)-e) / e
	}
	p, err := specfunc.Igamc(3, chi2/2)
	if err != nil {
		return nil, err
	}
	r.Stats["chi2"] = chi2
	r.Stats["mu"] = mu
	r.Stats["blocks"] = float64(nBlocks)
	r.addP("p", p)
	return r, nil
}

// berlekampMassey returns the linear complexity (shortest LFSR length) of
// the bit sequence over GF(2).
func berlekampMassey(s []byte) int {
	n := len(s)
	c := make([]byte, n)
	b := make([]byte, n)
	t := make([]byte, n)
	c[0], b[0] = 1, 1
	l, m := 0, -1
	for i := 0; i < n; i++ {
		// Discrepancy d = s[i] + Σ_{j=1..l} c[j]·s[i−j].
		d := s[i]
		for j := 1; j <= l; j++ {
			d ^= c[j] & s[i-j]
		}
		if d == 1 {
			copy(t, c)
			for j := 0; j+i-m < n; j++ {
				c[j+i-m] ^= b[j]
			}
			if l <= i/2 {
				l = i + 1 - l
				m = i
				copy(b, t)
			}
		}
	}
	return l
}
