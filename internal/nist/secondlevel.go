package nist

import (
	"fmt"
	"math"

	"repro/internal/specfunc"
)

// This file implements the suite-level interpretation of SP800-22 §4:
// given many sequences from one generator, (1) the proportion of passing
// sequences must lie inside a confidence interval around 1−α, and (2) the
// P-values themselves must be uniform on [0,1), checked with a χ² test
// over ten bins. The repository uses it to validate the source models and
// to measure the platform's false-alarm behaviour.

// ProportionResult is the pass-proportion analysis of one test across a
// batch of sequences.
type ProportionResult struct {
	// Sequences is the batch size.
	Sequences int
	// Passed is the number of sequences the test accepted.
	Passed int
	// Proportion is Passed/Sequences.
	Proportion float64
	// Low and High bound the acceptable proportion:
	// (1−α) ± 3·√(α(1−α)/k).
	Low, High float64
	// OK reports whether the proportion is inside the interval.
	OK bool
}

// Proportion evaluates the §4.2.1 pass-proportion criterion for a batch of
// per-sequence pass verdicts at level alpha.
func Proportion(passes []bool, alpha float64) (*ProportionResult, error) {
	k := len(passes)
	if k < 2 {
		return nil, fmt.Errorf("nist: proportion analysis needs at least 2 sequences")
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("nist: invalid alpha %g", alpha)
	}
	passed := 0
	for _, p := range passes {
		if p {
			passed++
		}
	}
	phat := 1 - alpha
	margin := 3 * math.Sqrt(alpha*(1-alpha)/float64(k))
	r := &ProportionResult{
		Sequences:  k,
		Passed:     passed,
		Proportion: float64(passed) / float64(k),
		Low:        phat - margin,
		High:       phat + margin,
	}
	r.OK = r.Proportion >= r.Low && r.Proportion <= r.High
	return r, nil
}

// UniformityResult is the P-value uniformity analysis.
type UniformityResult struct {
	// Bins holds the P-value histogram over ten equal bins.
	Bins [10]int
	// Chi2 is the χ² statistic over the bins (9 degrees of freedom).
	Chi2 float64
	// PT is the uniformity P-value, igamc(9/2, χ²/2).
	PT float64
	// OK reports PT ≥ 0.0001, the §4.2.2 criterion.
	OK bool
}

// Uniformity evaluates the §4.2.2 P-value uniformity criterion.
func Uniformity(pvalues []float64) (*UniformityResult, error) {
	k := len(pvalues)
	if k < 10 {
		return nil, fmt.Errorf("nist: uniformity analysis needs at least 10 P-values")
	}
	r := &UniformityResult{}
	for _, p := range pvalues {
		bin := int(p * 10)
		if bin > 9 {
			bin = 9
		}
		if bin < 0 {
			bin = 0
		}
		r.Bins[bin]++
	}
	expect := float64(k) / 10
	for _, c := range r.Bins {
		d := float64(c) - expect
		r.Chi2 += d * d / expect
	}
	pt, err := specfunc.Igamc(4.5, r.Chi2/2)
	if err != nil {
		return nil, err
	}
	r.PT = pt
	r.OK = pt >= 0.0001
	return r, nil
}
