package nist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitstream"
)

// seq parses a 0/1 string, failing the test on malformed input.
func seq(t *testing.T, bits string) *bitstream.Sequence {
	t.Helper()
	s, err := bitstream.ParseASCII(bits)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomSeq returns n pseudorandom bits from a fixed seed. A good PRNG
// passes the suite at any reasonable α, making it a stand-in for the ideal
// source in correctness tests.
func randomSeq(n int, seedVal int64) *bitstream.Sequence {
	rng := rand.New(rand.NewSource(seedVal))
	s := bitstream.New(n)
	var word uint64
	for i := 0; i < n; i++ {
		if i%32 == 0 {
			word = uint64(rng.Uint32())
		}
		s.AppendBit(byte(word >> uint(i%32) & 1))
	}
	return s
}

// biasedSeq returns n bits that are 1 with probability p.
func biasedSeq(n int, p float64, seedVal int64) *bitstream.Sequence {
	rng := rand.New(rand.NewSource(seedVal))
	s := bitstream.New(n)
	for i := 0; i < n; i++ {
		b := byte(0)
		if rng.Float64() < p {
			b = 1
		}
		s.AppendBit(b)
	}
	return s
}

func wantP(t *testing.T, r *Result, name string, want, tol float64) {
	t.Helper()
	for _, p := range r.PValues {
		if p.Name == name {
			if math.Abs(p.Value-want) > tol {
				t.Errorf("%s: P[%s] = %.6f, want %.6f", r.Name, name, p.Value, want)
			}
			return
		}
	}
	t.Errorf("%s: no P-value named %q", r.Name, name)
}

// --- Test 1: Frequency -----------------------------------------------------

func TestFrequencyExample(t *testing.T) {
	// SP800-22 §2.1.8: ε = 1011010101, n = 10 → P = 0.527089.
	r, err := Frequency(seq(t, "1011010101"))
	if err != nil {
		t.Fatal(err)
	}
	wantP(t, r, "p", 0.527089, 1e-6)
	if r.Stats["s_n"] != 2 {
		t.Errorf("s_n = %g, want 2", r.Stats["s_n"])
	}
}

func TestFrequencyConstructedAnchor(t *testing.T) {
	// Any 100-bit sequence with 58 ones has |S| = 16, s_obs = 1.6 and
	// P = erfc(1.6/√2) = 0.109599 — the value SP800-22 §2.1.8 reports for
	// the first 100 digits of e (which also have |S| = 16).
	s := bitstream.New(100)
	for i := 0; i < 100; i++ {
		if i < 58 {
			s.AppendBit(1)
		} else {
			s.AppendBit(0)
		}
	}
	r, err := Frequency(s)
	if err != nil {
		t.Fatal(err)
	}
	wantP(t, r, "p", 0.109599, 1e-6)
}

func TestFrequencyRejectsBias(t *testing.T) {
	r, err := Frequency(biasedSeq(4096, 0.6, 7))
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Errorf("frequency test passed a 60%% biased source (P = %g)", r.MinP())
	}
}

func TestFrequencyEmpty(t *testing.T) {
	if _, err := Frequency(bitstream.New(0)); err != ErrTooShort {
		t.Errorf("err = %v, want ErrTooShort", err)
	}
}

// --- Test 2: Block frequency ------------------------------------------------

func TestBlockFrequencyExample(t *testing.T) {
	// SP800-22 §2.2.8: ε = 0110011010, M = 3 → χ² = 1, P = 0.801252.
	r, err := BlockFrequency(seq(t, "0110011010"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Stats["chi2"]-1) > 1e-12 {
		t.Errorf("chi2 = %g, want 1", r.Stats["chi2"])
	}
	wantP(t, r, "p", 0.801252, 1e-6)
}

func TestBlockFrequencyConstructedAnchor(t *testing.T) {
	// Blocks 1111100000 repeated 10 times with M = 10: every block has
	// π_i = 1/2 so χ² = 0 and P = igamc(5, 0) = 1.
	s := bitstream.New(100)
	for b := 0; b < 10; b++ {
		for i := 0; i < 10; i++ {
			if i < 5 {
				s.AppendBit(1)
			} else {
				s.AppendBit(0)
			}
		}
	}
	r, err := BlockFrequency(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats["chi2"] != 0 {
		t.Errorf("chi2 = %g, want 0", r.Stats["chi2"])
	}
	wantP(t, r, "p", 1, 1e-12)
}

func TestBlockFrequencyRejectsClusteredBias(t *testing.T) {
	// Alternating all-ones / all-zeros blocks: globally balanced but each
	// block is maximally biased.
	s := bitstream.New(4096)
	for i := 0; i < 4096; i++ {
		s.AppendBit(byte(i / 128 % 2))
	}
	r, err := BlockFrequency(s, 128)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("block frequency passed clustered bias")
	}
}

func TestBlockFrequencyInvalidM(t *testing.T) {
	if _, err := BlockFrequency(randomSeq(64, 1), 1); err == nil {
		t.Error("M=1 accepted")
	}
}

// --- Test 3: Runs ------------------------------------------------------------

func TestRunsExample(t *testing.T) {
	// SP800-22 §2.3.8: ε = 1001101011, n = 10 → V = 7, P = 0.147232.
	r, err := Runs(seq(t, "1001101011"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats["v_n"] != 7 {
		t.Errorf("v_n = %g, want 7", r.Stats["v_n"])
	}
	wantP(t, r, "p", 0.147232, 1e-6)
}

func TestRunsBalancedIdealRunCount(t *testing.T) {
	// A balanced sequence whose run count equals the expectation
	// 2nπ(1−π) = n/2 gets P = erfc(0) = 1.
	s := seq(t, "11001100110011001100") // n=20, ones=10, runs=10
	r, err := Runs(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats["v_n"] != 10 {
		t.Fatalf("v_n = %g, want 10", r.Stats["v_n"])
	}
	wantP(t, r, "p", 1, 1e-12)
}

func TestRunsPreconditionFailure(t *testing.T) {
	// Heavy bias: the frequency precondition fails, P must be 0.
	s := bitstream.New(100)
	for i := 0; i < 100; i++ {
		s.AppendBit(1)
	}
	r, err := Runs(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.MinP() != 0 {
		t.Errorf("P = %g, want 0 on precondition failure", r.MinP())
	}
}

func TestRunsRejectsAlternating(t *testing.T) {
	s := bitstream.New(1024)
	for i := 0; i < 1024; i++ {
		s.AppendBit(byte(i % 2))
	}
	r, err := Runs(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("runs test passed 0101... sequence")
	}
}

// --- Test 4: Longest run of ones ---------------------------------------------

func TestLongestRunClassProbsM8(t *testing.T) {
	// SP800-22 §3.4 table for M=8: π = {0.2148, 0.3672, 0.2305, 0.1875}.
	probs, err := LongestRunClassProbs(8, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2148, 0.3672, 0.2305, 0.1875}
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 5e-5 {
			t.Errorf("pi[%d] = %.6f, want %.4f", i, probs[i], want[i])
		}
	}
}

func TestLongestRunClassProbsM128(t *testing.T) {
	// SP800-22 §3.4 table for M=128: π = {0.1174, 0.2430, 0.2493, 0.1752,
	// 0.1027, 0.1124}.
	probs, err := LongestRunClassProbs(128, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance 1e-4: the publication's table is rounded to 4 digits and
	// itself carries ~1-in-the-4th-digit rounding slack.
	want := []float64{0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124}
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 1e-4 {
			t.Errorf("pi[%d] = %.6f, want %.4f", i, probs[i], want[i])
		}
	}
}

func TestLongestRunClassProbsSumToOne(t *testing.T) {
	for _, m := range []int{8, 128, 8192} {
		lo, hi, err := LongestRunClassBounds(m)
		if err != nil {
			t.Fatal(err)
		}
		probs, err := LongestRunClassProbs(m, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range probs {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("M=%d: class probabilities sum to %g", m, sum)
		}
	}
}

func TestLongestRunExample(t *testing.T) {
	// SP800-22 §2.4.8: the 128-bit example with M=8 → ν = {4,9,3,0},
	// χ² = 4.882457, P = 0.180609.
	r, err := LongestRunOfOnes(seq(t, longestRun128), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{4, 9, 3, 0} {
		got := r.Stats[keyNu(i)]
		if got != want {
			t.Errorf("nu_%d = %g, want %g", i, got, want)
		}
	}
	if math.Abs(r.Stats["chi2"]-4.882457) > 1e-3 {
		t.Errorf("chi2 = %g, want 4.882457", r.Stats["chi2"])
	}
	wantP(t, r, "p", 0.180609, 1e-4)
}

func TestLongestRunPassesRandom(t *testing.T) {
	r, err := LongestRunOfOnes(randomSeq(65536, 3), 128)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("longest-run rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestLongestRunRejectsNoLongRuns(t *testing.T) {
	// A source that never emits more than two consecutive ones.
	rng := rand.New(rand.NewSource(9))
	s := bitstream.New(65536)
	run := 0
	for i := 0; i < 65536; i++ {
		b := byte(rng.Intn(2))
		if b == 1 && run >= 2 {
			b = 0
		}
		if b == 1 {
			run++
		} else {
			run = 0
		}
		s.AppendBit(b)
	}
	r, err := LongestRunOfOnes(s, 128)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("longest-run passed run-limited source")
	}
}

func keyNu(i int) string { return "nu_" + string(rune('0'+i)) }

// --- Test 5: Rank -------------------------------------------------------------

func TestRankProbs32(t *testing.T) {
	// Known values for 32x32: P(full) ≈ 0.2888, P(31) ≈ 0.5776,
	// P(≤30) ≈ 0.1336.
	pFull := RankProbs(32, 32, 32)
	pM1 := RankProbs(32, 32, 31)
	if math.Abs(pFull-0.2888) > 1e-4 {
		t.Errorf("P(rank=32) = %.6f, want 0.2888", pFull)
	}
	if math.Abs(pM1-0.5776) > 1e-4 {
		t.Errorf("P(rank=31) = %.6f, want 0.5776", pM1)
	}
	if math.Abs(1-pFull-pM1-0.1336) > 1e-4 {
		t.Errorf("P(rank<=30) = %.6f, want 0.1336", 1-pFull-pM1)
	}
}

func TestGF2RankIdentity(t *testing.T) {
	// The 4x4 identity matrix, row-major: rank 4.
	s := seq(t, "1000010000100001")
	if got := gf2Rank(s, 0, 4, 4); got != 4 {
		t.Errorf("rank = %d, want 4", got)
	}
}

func TestGF2RankSingular(t *testing.T) {
	// Rows 1110, 1110, 0001, 0000: the duplicate row and zero row leave
	// rank 2.
	s := seq(t, "11101110"+"0001"+"0000")
	if got := gf2Rank(s, 0, 4, 4); got != 2 {
		t.Errorf("rank = %d, want 2", got)
	}
	// All zeros.
	z := bitstream.New(16)
	for i := 0; i < 16; i++ {
		z.AppendBit(0)
	}
	if got := gf2Rank(z, 0, 4, 4); got != 0 {
		t.Errorf("rank of zero matrix = %d, want 0", got)
	}
}

func TestRankPassesRandom(t *testing.T) {
	r, err := Rank(randomSeq(1024*128, 5), 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("rank test rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestRankRejectsLowRankSource(t *testing.T) {
	// Repeat each 32-bit row 32 times: every matrix has rank 1.
	rng := rand.New(rand.NewSource(11))
	s := bitstream.New(1024 * 64)
	for m := 0; m < 64; m++ {
		row := rng.Uint32()
		for i := 0; i < 32; i++ {
			for j := 31; j >= 0; j-- {
				s.AppendBit(byte(row >> uint(j) & 1))
			}
		}
	}
	r, err := Rank(s, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("rank test passed rank-1 matrices")
	}
}

// --- Test 6: DFT ----------------------------------------------------------------

func TestDFTPassesRandom(t *testing.T) {
	r, err := DFT(randomSeq(4096, 13))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("DFT rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestDFTRejectsPeriodic(t *testing.T) {
	// Strong periodic component: period-8 square wave.
	s := bitstream.New(4096)
	for i := 0; i < 4096; i++ {
		s.AppendBit(byte(i / 4 % 2))
	}
	r, err := DFT(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("DFT passed a square wave")
	}
}

func TestDFTNonPowerOfTwoLength(t *testing.T) {
	// Exercises the Bluestein path.
	r, err := DFT(randomSeq(1000, 17))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("DFT (Bluestein) rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{8, 16, 10, 12, 100} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		re, im := dft(x)
		for k := 0; k < n; k++ {
			var wr, wi float64
			for t2 := 0; t2 < n; t2++ {
				ang := -2 * math.Pi * float64(k) * float64(t2) / float64(n)
				wr += x[t2] * math.Cos(ang)
				wi += x[t2] * math.Sin(ang)
			}
			if math.Abs(re[k]-wr) > 1e-8 || math.Abs(im[k]-wi) > 1e-8 {
				t.Fatalf("n=%d k=%d: dft=(%g,%g), naive=(%g,%g)", n, k, re[k], im[k], wr, wi)
			}
		}
	}
}

// --- Test 7: Non-overlapping templates ---------------------------------------

func TestNonOverlappingTemplateExample(t *testing.T) {
	// SP800-22 §2.7.8: ε = 10100100101110010110, B = 001, m = 3, N = 2,
	// M = 10 → W1 = 2, W2 = 1, χ² = 2.133333, P = 0.344154.
	r, err := NonOverlappingTemplate(seq(t, "10100100101110010110"), 0b001, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats["W_1"] != 2 || r.Stats["W_2"] != 1 {
		t.Errorf("W = (%g, %g), want (2, 1)", r.Stats["W_1"], r.Stats["W_2"])
	}
	if math.Abs(r.Stats["chi2"]-2.133333) > 1e-5 {
		t.Errorf("chi2 = %g, want 2.133333", r.Stats["chi2"])
	}
	wantP(t, r, "p", 0.344154, 1e-5)
}

func TestNonOverlappingTemplatePassesRandom(t *testing.T) {
	r, err := NonOverlappingTemplate(randomSeq(65536, 29), 0b000000001, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("template test rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestNonOverlappingTemplateRejectsStuffedPattern(t *testing.T) {
	// Inject the template far more often than chance.
	rng := rand.New(rand.NewSource(31))
	s := bitstream.New(65536)
	for s.Len() < 65536-16 {
		if rng.Float64() < 0.05 {
			for _, b := range []byte{0, 0, 0, 0, 0, 0, 0, 0, 1} {
				s.AppendBit(b)
			}
		} else {
			s.AppendBit(byte(rng.Intn(2)))
		}
	}
	for s.Len() < 65536 {
		s.AppendBit(byte(rng.Intn(2)))
	}
	r, err := NonOverlappingTemplate(s, 0b000000001, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("template test passed pattern-stuffed source")
	}
}

// --- Test 8: Overlapping templates ---------------------------------------------

func TestOverlappingTemplateClassProbsM1032(t *testing.T) {
	// SP800-22 §3.8 (rev1a, corrected by Hamano): for m=9, M=1032, K=5 the
	// class probabilities are approximately
	// {0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865}.
	probs, err := OverlappingTemplateClassProbs(0x1FF, 9, 1032, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865}
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 2e-3 {
			t.Errorf("pi[%d] = %.6f, want %.6f", i, probs[i], want[i])
		}
	}
}

func TestOverlappingTemplateClassProbsSumToOne(t *testing.T) {
	probs, err := OverlappingTemplateClassProbs(0x1FF, 9, 1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
}

func TestOverlappingTemplatePassesRandom(t *testing.T) {
	r, err := OverlappingTemplate(randomSeq(65536, 37), 9, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("overlapping template rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestOverlappingTemplateRejectsLongOnes(t *testing.T) {
	// A source with frequent long runs of ones.
	rng := rand.New(rand.NewSource(41))
	s := bitstream.New(65536)
	for s.Len() < 65536-16 {
		if rng.Float64() < 0.03 {
			for i := 0; i < 12; i++ {
				s.AppendBit(1)
			}
		} else {
			s.AppendBit(byte(rng.Intn(2)))
		}
	}
	for s.Len() < 65536 {
		s.AppendBit(0)
	}
	r, err := OverlappingTemplate(s, 9, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("overlapping template passed long-run-rich source")
	}
}

// --- Test 9: Universal -----------------------------------------------------------

func TestUniversalWithParamsPassesRandom(t *testing.T) {
	// L=6, Q=640: needs n >= 6*(640+K) — use a modest K.
	r, err := UniversalWithParams(randomSeq(6*(640+2560), 43), 6, 640)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("universal rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestUniversalRejectsRepetition(t *testing.T) {
	// A short repeating pattern compresses perfectly.
	s := bitstream.New(6 * 3200)
	for i := 0; i < 6*3200; i++ {
		s.AppendBit(byte(i % 3 % 2))
	}
	r, err := UniversalWithParams(s, 6, 640)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("universal passed a repeating pattern")
	}
}

func TestUniversalLSelection(t *testing.T) {
	if l := universalL(387840); l != 6 {
		t.Errorf("universalL(387840) = %d, want 6", l)
	}
	if l := universalL(1048576); l != 7 {
		t.Errorf("universalL(2^20) = %d, want 7", l)
	}
	if l := universalL(1000); l != 0 {
		t.Errorf("universalL(1000) = %d, want 0", l)
	}
}

// --- Test 10: Linear complexity ----------------------------------------------------

func TestBerlekampMassey(t *testing.T) {
	cases := []struct {
		bits string
		want int
	}{
		{"0001", 4},          // 000...1 needs an LFSR as long as the prefix of zeros + 1
		{"1101011110001", 4}, // SP800-22 §2.10.8 example: L = 4
		{"0000", 0},
		{"1111", 1},
		{"101010", 2},
	}
	for _, c := range cases {
		s := seq(t, c.bits)
		if got := berlekampMassey(s.Bits()); got != c.want {
			t.Errorf("BM(%q) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestLinearComplexityPassesRandom(t *testing.T) {
	r, err := LinearComplexity(randomSeq(500*40, 47), 500)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("linear complexity rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestLinearComplexityRejectsLFSR(t *testing.T) {
	// Bits from a short LFSR have constant low complexity.
	var state uint16 = 0xACE1
	s := bitstream.New(500 * 40)
	for i := 0; i < 500*40; i++ {
		b := byte(state & 1)
		feedback := (state ^ state>>2 ^ state>>3 ^ state>>5) & 1
		state = state>>1 | feedback<<15
		s.AppendBit(b)
	}
	r, err := LinearComplexity(s, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("linear complexity passed an LFSR source")
	}
}

// --- Tests 11 & 12: Serial, Approximate entropy -------------------------------------

func TestSerialExample(t *testing.T) {
	// SP800-22 §2.11.8: ε = 0011011101, m = 3 → ψ²₃ = 2.8, ∇ψ² = 1.6,
	// ∇²ψ² = 0.8, P1 = 0.808792, P2 = 0.670320.
	r, err := Serial(seq(t, "0011011101"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Stats["psi2_m"]-2.8) > 1e-9 {
		t.Errorf("psi2_m = %g, want 2.8", r.Stats["psi2_m"])
	}
	if math.Abs(r.Stats["del1"]-1.6) > 1e-9 {
		t.Errorf("del1 = %g, want 1.6", r.Stats["del1"])
	}
	if math.Abs(r.Stats["del2"]-0.8) > 1e-9 {
		t.Errorf("del2 = %g, want 0.8", r.Stats["del2"])
	}
	wantP(t, r, "p1", 0.808792, 1e-6)
	wantP(t, r, "p2", 0.670320, 1e-6)
}

func TestSerialPassesRandom(t *testing.T) {
	r, err := Serial(randomSeq(65536, 53), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("serial rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestSerialRejectsMarkovSource(t *testing.T) {
	// Strongly sticky Markov chain: P(next == current) = 0.8.
	rng := rand.New(rand.NewSource(59))
	s := bitstream.New(65536)
	b := byte(0)
	for i := 0; i < 65536; i++ {
		if rng.Float64() > 0.8 {
			b ^= 1
		}
		s.AppendBit(b)
	}
	r, err := Serial(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("serial passed a sticky Markov source")
	}
}

func TestApproximateEntropyExample(t *testing.T) {
	// SP800-22 §2.12.8: ε = 0100110101, m = 3 → ApEn ≈ 0.502193 off the
	// χ² = 0.502193 track; the published P-value is 0.261961.
	r, err := ApproximateEntropy(seq(t, "0100110101"), 3)
	if err != nil {
		t.Fatal(err)
	}
	wantP(t, r, "p", 0.261961, 1e-4)
}

func TestApproximateEntropyPassesRandom(t *testing.T) {
	r, err := ApproximateEntropy(randomSeq(65536, 61), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("ApEn rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestApproximateEntropyRejectsPeriodic(t *testing.T) {
	s := bitstream.New(4096)
	for i := 0; i < 4096; i++ {
		s.AppendBit(byte(i % 2))
	}
	r, err := ApproximateEntropy(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("ApEn passed 0101... sequence")
	}
}

// --- Test 13: Cumulative sums ---------------------------------------------------------

func TestCusumExample(t *testing.T) {
	// SP800-22 §2.13.8: ε = 1011010111, n = 10 → z = 4 (forward),
	// P = 0.4116588.
	r, err := CumulativeSums(seq(t, "1011010111"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats["z_forward"] != 4 {
		t.Errorf("z_forward = %g, want 4", r.Stats["z_forward"])
	}
	wantP(t, r, "p_forward", 0.4116588, 1e-6)
}

func TestCusumForwardBackwardSymmetry(t *testing.T) {
	// Reversing the sequence swaps the forward and backward statistics.
	s := randomSeq(4096, 97)
	rev := bitstream.New(s.Len())
	for i := s.Len() - 1; i >= 0; i-- {
		rev.AppendBit(s.Bit(i))
	}
	rf, err := CumulativeSums(s)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := CumulativeSums(rev)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Stats["z_forward"] != rb.Stats["z_backward"] ||
		rf.Stats["z_backward"] != rb.Stats["z_forward"] {
		t.Errorf("z statistics not swapped under reversal: fwd=(%g,%g) rev=(%g,%g)",
			rf.Stats["z_forward"], rf.Stats["z_backward"],
			rb.Stats["z_forward"], rb.Stats["z_backward"])
	}
}

func TestCusumPassesRandom(t *testing.T) {
	r, err := CumulativeSums(randomSeq(65536, 67))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("cusum rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestCusumRejectsDrift(t *testing.T) {
	r, err := CumulativeSums(biasedSeq(65536, 0.52, 71))
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("cusum passed a drifting source")
	}
}

// --- Tests 14 & 15: Random excursions ---------------------------------------------------

func TestRandomExcursionsApplicability(t *testing.T) {
	// Too few cycles: all-ones sequence has no zero crossings.
	s := bitstream.New(2048)
	for i := 0; i < 2048; i++ {
		s.AppendBit(1)
	}
	if _, err := RandomExcursions(s); err != ErrNotApplicable {
		t.Errorf("err = %v, want ErrNotApplicable", err)
	}
	if _, err := RandomExcursionsVariant(s); err != ErrNotApplicable {
		t.Errorf("variant err = %v, want ErrNotApplicable", err)
	}
}

func TestRandomExcursionsPassesRandom(t *testing.T) {
	// Seed 79 yields J = 1093 cycles, comfortably above the 500-cycle
	// applicability bound (J has enormous variance across seeds).
	r, err := RandomExcursions(randomSeq(1<<20, 79))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PValues) != 8 {
		t.Fatalf("got %d P-values, want 8", len(r.PValues))
	}
	if !r.Pass(0.001) {
		t.Errorf("random excursions rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestRandomExcursionsVariantPassesRandom(t *testing.T) {
	r, err := RandomExcursionsVariant(randomSeq(1<<20, 79))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PValues) != 18 {
		t.Fatalf("got %d P-values, want 18", len(r.PValues))
	}
	if !r.Pass(0.001) {
		t.Errorf("variant rejected good PRNG (P = %g)", r.MinP())
	}
}

func TestExcursionsPiSumsToOne(t *testing.T) {
	for _, x := range []int{-4, -1, 1, 4} {
		sum := 0.0
		for k := 0; k <= 5; k++ {
			sum += excursionsPi(x, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("x=%d: pi sums to %g", x, sum)
		}
	}
}

// --- Suite-level --------------------------------------------------------------------------

func TestSuiteOrderAndSuitability(t *testing.T) {
	suite := Suite()
	if len(suite) != 15 {
		t.Fatalf("suite has %d tests, want 15", len(suite))
	}
	// Paper Table I: tests 1,2,3,4,7,8,11,12,13 are HW-suitable.
	suitable := map[int]bool{1: true, 2: true, 3: true, 4: true, 7: true,
		8: true, 11: true, 12: true, 13: true}
	for i, tc := range suite {
		if tc.ID != i+1 {
			t.Errorf("suite[%d].ID = %d, want %d", i, tc.ID, i+1)
		}
		if tc.HWSuitable != suitable[tc.ID] {
			t.Errorf("test %d HWSuitable = %v, want %v", tc.ID, tc.HWSuitable, suitable[tc.ID])
		}
	}
}

func TestSuiteRunsOnRandomInput(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run is slow")
	}
	s := randomSeq(1<<20, 83)
	for _, tc := range Suite() {
		r, err := tc.Run(s)
		if err == ErrNotApplicable {
			// Tests 14/15 are legitimately inapplicable when the walk
			// produces too few cycles.
			continue
		}
		if err != nil {
			t.Errorf("test %d (%s): %v", tc.ID, tc.Name, err)
			continue
		}
		if !r.Pass(0.0001) {
			t.Errorf("test %d (%s) rejected good PRNG: P = %g", tc.ID, tc.Name, r.MinP())
		}
	}
}

// longestRun128 is the 128-bit example sequence from SP800-22 §2.4.8.
const longestRun128 = "11001100000101010110110001001100" +
	"11100000000000100100110101010001" +
	"00010011110101101000000011010111" +
	"11001100111001101101100010110010"
