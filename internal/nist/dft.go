package nist

import (
	"math"

	"repro/internal/bitstream"
	"repro/internal/specfunc"
)

// DFT runs test 6, the Discrete Fourier Transform (Spectral) test
// (SP800-22 §2.6, rev1a formulation). The ±1-mapped sequence is Fourier
// transformed; under H₀, 95 % of the peak magnitudes |S_j| for
// j = 0..n/2−1 fall below T = √(n·ln(1/0.05)). The statistic
// d = (N₁ − N₀)/√(n·0.95·0.05/4) is asymptotically standard normal and
// P = erfc(|d|/√2).
//
// This test is marked "No" in the paper's Table I: the full transform needs
// O(n) storage and O(n log n) multiplications, far beyond the counters-and-
// comparators hardware budget.
func DFT(s *bitstream.Sequence) (*Result, error) {
	n := s.Len()
	if n < 16 {
		return nil, ErrTooShort
	}
	r := newResult(6, "Discrete Fourier Transform (Spectral)", n)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = 2*float64(s.Bit(i)) - 1
	}
	re, im := dft(x)
	threshold := math.Sqrt(float64(n) * math.Log(1/0.05))
	n0 := 0.95 * float64(n) / 2
	n1 := 0
	for j := 0; j < n/2; j++ {
		if math.Hypot(re[j], im[j]) < threshold {
			n1++
		}
	}
	d := (float64(n1) - n0) / math.Sqrt(float64(n)*0.95*0.05/4)
	p := specfunc.Erfc(math.Abs(d) / math.Sqrt2)
	r.Stats["threshold"] = threshold
	r.Stats["n0"] = n0
	r.Stats["n1"] = float64(n1)
	r.Stats["d"] = d
	r.addP("p", p)
	return r, nil
}
