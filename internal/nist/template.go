package nist

import (
	"fmt"
	"math"

	"repro/internal/bitstream"
	"repro/internal/specfunc"
)

// NonOverlappingTemplate runs test 7, the Non-overlapping Template Matching
// test (SP800-22 §2.7), for one m-bit template tpl (MSB-first) over nBlocks
// blocks of length M = n/nBlocks. W_i counts non-overlapping occurrences in
// block i; under H₀, W_i ≈ Normal(μ, σ²) with μ = (M−m+1)/2^m and
// σ² = M(1/2^m − (2m−1)/2^{2m}); χ² = Σ (W_i − μ)²/σ² and
// P = igamc(N/2, χ²/2).
//
// HW/SW split (paper Table II): hardware supplies W_1..W_N; software
// computes Σ (2^m W_i − μ·2^m)² — an all-integer form for the power-of-two
// parameters the platform uses.
func NonOverlappingTemplate(s *bitstream.Sequence, tpl uint32, m, nBlocks int) (*Result, error) {
	n := s.Len()
	if m < 2 || m > 21 {
		return nil, fmt.Errorf("nist: non-overlapping template: invalid template length %d", m)
	}
	if nBlocks < 1 {
		return nil, fmt.Errorf("nist: non-overlapping template: invalid block count %d", nBlocks)
	}
	blockLen := n / nBlocks
	if blockLen < m {
		return nil, ErrTooShort
	}
	r := newResult(7, "Non-overlapping Template Matching", blockLen*nBlocks)
	mu := float64(blockLen-m+1) / math.Pow(2, float64(m))
	sigma2 := float64(blockLen) * (1/math.Pow(2, float64(m)) - float64(2*m-1)/math.Pow(2, float64(2*m)))
	chi2 := 0.0
	for b := 0; b < nBlocks; b++ {
		w := s.CountTemplateNonOverlapping(tpl, m, b*blockLen, (b+1)*blockLen)
		d := float64(w) - mu
		chi2 += d * d / sigma2
		r.Stats[fmt.Sprintf("W_%d", b+1)] = float64(w)
	}
	p, err := specfunc.Igamc(float64(nBlocks)/2, chi2/2)
	if err != nil {
		return nil, err
	}
	r.Stats["chi2"] = chi2
	r.Stats["mu"] = mu
	r.Stats["sigma2"] = sigma2
	r.addP("p", p)
	return r, nil
}

// OverlappingTemplateK is the number of non-collapsed occurrence classes in
// test 8 (classes 0..K−1 and ≥K), as prescribed by SP800-22.
const OverlappingTemplateK = 5

// OverlappingTemplate runs test 8, the Overlapping Template Matching test
// (SP800-22 §2.8), with the all-ones m-bit template over blocks of length
// blockLen. Each block is classified by its overlapping occurrence count
// into classes 0,1,…,K−1,≥K; χ² compares class counts against exact class
// probabilities (computed by DP over the matching automaton rather than the
// publication's asymptotic series) and P = igamc(K/2, χ²/2).
//
// HW/SW split: hardware supplies the class counters ν_0..ν_K; software
// computes Σ ν_i²·(1/π_i)-style products with precomputed constants.
func OverlappingTemplate(s *bitstream.Sequence, m, blockLen int) (*Result, error) {
	n := s.Len()
	if m < 2 || m > 31 {
		return nil, fmt.Errorf("nist: overlapping template: invalid template length %d", m)
	}
	nBlocks := n / blockLen
	if nBlocks < 1 || blockLen < m {
		return nil, ErrTooShort
	}
	tpl := uint32(1<<uint(m)) - 1 // all ones
	r := newResult(8, "Overlapping Template Matching", nBlocks*blockLen)
	k := OverlappingTemplateK
	probs, err := OverlappingTemplateClassProbs(tpl, m, blockLen, k)
	if err != nil {
		return nil, err
	}
	counts := make([]int, k+1)
	for b := 0; b < nBlocks; b++ {
		c := s.CountTemplateOverlapping(tpl, m, b*blockLen, (b+1)*blockLen)
		if c > k {
			c = k
		}
		counts[c]++
	}
	chi2 := 0.0
	for i, c := range counts {
		e := float64(nBlocks) * probs[i]
		d := float64(c) - e
		chi2 += d * d / e
		r.Stats[fmt.Sprintf("nu_%d", i)] = float64(c)
	}
	p, err := specfunc.Igamc(float64(k)/2, chi2/2)
	if err != nil {
		return nil, err
	}
	r.Stats["chi2"] = chi2
	r.Stats["blocks"] = float64(nBlocks)
	r.addP("p", p)
	return r, nil
}
