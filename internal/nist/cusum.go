package nist

import (
	"math"

	"repro/internal/bitstream"
	"repro/internal/specfunc"
)

// CumulativeSums runs test 13, the Cumulative Sums (Cusum) test (SP800-22
// §2.13), in both modes. Forward mode uses z = max_k |S_k| of the ±1 random
// walk; backward mode uses the walk over the reversed sequence, whose
// maximum equals max(S_final − S_min, S_max − S_final) — exactly the values
// the paper's hardware up/down counter records (Table II), so no second
// pass over the bits is needed.
func CumulativeSums(s *bitstream.Sequence) (*Result, error) {
	n := s.Len()
	if n < 2 {
		return nil, ErrTooShort
	}
	r := newResult(13, "Cumulative Sums", n)
	sMax, sMin, sFinal := s.RandomWalk()
	zF := sMax
	if -sMin > zF {
		zF = -sMin
	}
	zB := sFinal - sMin
	if sMax-sFinal > zB {
		zB = sMax - sFinal
	}
	r.Stats["s_max"] = float64(sMax)
	r.Stats["s_min"] = float64(sMin)
	r.Stats["s_final"] = float64(sFinal)
	r.Stats["z_forward"] = float64(zF)
	r.Stats["z_backward"] = float64(zB)
	r.addP("p_forward", CusumPValue(zF, n))
	r.addP("p_backward", CusumPValue(zB, n))
	return r, nil
}

// CusumPValue evaluates the SP800-22 §2.13 P-value for maximum excursion z
// over n steps. It is exported so the embedded software's critical-value
// precomputation (internal/sweval) can invert it.
func CusumPValue(z, n int) float64 {
	if z <= 0 {
		// A zero maximum excursion is impossible for n ≥ 1 except for
		// the degenerate all-balanced walk prefix; it means wildly
		// non-random input under this statistic's usage, report 0.
		return 0
	}
	zf := float64(z)
	nf := float64(n)
	sqrtN := math.Sqrt(nf)

	sum1 := 0.0
	lo := int(math.Ceil((-nf/zf + 1) / 4))
	hi := int(math.Floor((nf/zf - 1) / 4))
	for k := lo; k <= hi; k++ {
		kk := float64(k)
		sum1 += specfunc.NormalCDF((4*kk+1)*zf/sqrtN) - specfunc.NormalCDF((4*kk-1)*zf/sqrtN)
	}
	sum2 := 0.0
	lo = int(math.Ceil((-nf/zf - 3) / 4))
	hi = int(math.Floor((nf/zf - 1) / 4))
	for k := lo; k <= hi; k++ {
		kk := float64(k)
		sum2 += specfunc.NormalCDF((4*kk+3)*zf/sqrtN) - specfunc.NormalCDF((4*kk+1)*zf/sqrtN)
	}
	p := 1 - sum1 + sum2
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}
