// Package hwsim is a structural register-transfer-level simulation
// substrate: the primitives the paper's hardware testing block is built
// from (counters, up/down counters, registers, shift registers,
// comparators, max-trackers) with bit-exact per-clock behaviour and a
// structural inventory.
//
// Every primitive registers itself in a Netlist when constructed. The
// netlist is both the simulation container and the input to the area and
// timing model (area.go), which maps the same inventory a synthesis tool
// would see onto Spartan-6 slice/FF/LUT counts, a maximum clock frequency
// estimate, and an ASIC gate-equivalent count — reproducing the resource
// rows of the paper's Table III at the level of shape and trend.
//
//trnglint:bus16
//trnglint:deterministic
package hwsim

import (
	"fmt"
	"sort"
)

// Resources is the structural footprint of one primitive.
type Resources struct {
	// FFs is the number of flip-flops (storage bits).
	FFs int
	// LUTs is the estimated number of 6-input LUTs for the primitive's
	// combinational logic (increment/compare/mux structures).
	LUTs int
}

// Add accumulates r2 into r.
func (r *Resources) Add(r2 Resources) {
	r.FFs += r2.FFs
	r.LUTs += r2.LUTs
}

// PrimInfo is the structural identity of one primitive: what kind of
// element it is, its instance name, and its declared geometry. The
// designlint checker consumes this inventory to prove the paper's width
// and sharing constraints statically, without clocking the netlist.
type PrimInfo struct {
	// Kind is the primitive family: "counter", "updown", "register",
	// "minmax", "max", "shiftreg", "cmp" or "bank".
	Kind string
	// Name is the instance name passed at construction.
	Name string
	// Width is the storage/compare width in bits per lane (the stage
	// count for a shift register).
	Width int
	// Lanes is the number of parallel storage elements: the counter
	// count of a bank, 1 for everything else.
	Lanes int
}

// Described is implemented by every primitive in this package; it exposes
// the structural identity designlint checks against the paper's tables.
type Described interface {
	Info() PrimInfo
}

// Primitive is anything that occupies hardware resources.
type Primitive interface {
	// PrimName identifies the primitive instance within its netlist.
	PrimName() string
	// Resources reports the primitive's structural footprint.
	Resources() Resources
	// Reset returns the primitive to its power-on state.
	Reset()
}

// Netlist is an inventory of primitives plus interconnect-level metadata
// the area model needs (output mux width).
type Netlist struct {
	name  string
	prims []Primitive
	// muxWords is the number of 16-bit words selectable through the
	// memory-mapped output multiplexer; the paper notes this interface
	// "contributes significantly to the overall area".
	muxWords int
}

// NewNetlist returns an empty netlist with the given design name.
func NewNetlist(name string) *Netlist {
	return &Netlist{name: name}
}

// Name returns the design name.
func (nl *Netlist) Name() string { return nl.name }

// add registers a primitive; construction helpers call it.
func (nl *Netlist) add(p Primitive) {
	nl.prims = append(nl.prims, p)
}

// AddPrimitive registers an externally defined primitive (e.g. the
// structural decision units of the individual-implementation baselines).
func (nl *Netlist) AddPrimitive(p Primitive) { nl.add(p) }

// SetMuxWords declares how many 16-bit words the output multiplexer
// exposes.
func (nl *Netlist) SetMuxWords(n int) { nl.muxWords = n }

// MuxWords reports the declared output multiplexer width.
func (nl *Netlist) MuxWords() int { return nl.muxWords }

// Reset resets every primitive in the netlist.
func (nl *Netlist) Reset() {
	for _, p := range nl.prims {
		p.Reset()
	}
}

// Total sums the resources of all primitives (excluding the output mux,
// which the area model accounts separately from MuxWords).
func (nl *Netlist) Total() Resources {
	var t Resources
	for _, p := range nl.prims {
		t.Add(p.Resources())
	}
	return t
}

// Primitives returns the registered primitives in construction order.
func (nl *Netlist) Primitives() []Primitive { return nl.prims }

// MaxCounterWidth returns the widest counter-like primitive in the
// netlist; the carry chain of that counter dominates the sequential
// critical path in the timing model.
func (nl *Netlist) MaxCounterWidth() int {
	w := 0
	for _, p := range nl.prims {
		if c, ok := p.(interface{ CounterWidth() int }); ok {
			if cw := c.CounterWidth(); cw > w {
				w = cw
			}
		}
	}
	return w
}

// Describe renders a per-primitive resource table, grouped by instance
// name, for the Fig. 2 structural dump.
func (nl *Netlist) Describe() string {
	type row struct {
		name string
		res  Resources
	}
	rows := make([]row, 0, len(nl.prims))
	for _, p := range nl.prims {
		rows = append(rows, row{p.PrimName(), p.Resources()})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	out := fmt.Sprintf("design %s (%d primitives, %d mux words)\n", nl.name, len(nl.prims), nl.muxWords)
	for _, r := range rows {
		out += fmt.Sprintf("  %-40s FF=%-4d LUT=%-4d\n", r.name, r.res.FFs, r.res.LUTs)
	}
	t := nl.Total()
	out += fmt.Sprintf("  %-40s FF=%-4d LUT=%-4d\n", "TOTAL (pre-mux)", t.FFs, t.LUTs)
	return out
}
