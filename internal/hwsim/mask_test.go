package hwsim

import "testing"

// These tests pin the mask-on-load contract at the width boundaries the
// shipped designs actually use: 1 bit (runs_prev), 15/16 bits (either side
// of the bus width) and 22 bits (the widest counter-like primitive of the
// n=2^20 designs, the cusum up/down counter). designlint's reset rule
// plants state through Load and asserts Reset clears it; that is only a
// valid probe if Load itself observes the declared width, which is exactly
// what is pinned here.

// maskWidths are the boundary widths under test. 22 is the widest counter
// width any shipped variant constructs (widthFor(2^20)+1 for the signed
// walk; the unsigned global counter reaches 21).
var maskWidths = []int{1, 15, 16, 22}

// counterOfWidth builds a counter whose declared width is exactly w by
// asking for the largest count that still fits.
func counterOfWidth(t *testing.T, nl *Netlist, w int) *Counter {
	t.Helper()
	c := NewCounter(nl, "c", 1<<uint(w)-1)
	if c.Width() != w {
		t.Fatalf("NewCounter(max=2^%d-1) built width %d, want %d", w, c.Width(), w)
	}
	return c
}

// TestCounterWidthBoundary pins widthFor at the power-of-two boundary:
// counting to 2^w-1 needs w bits, counting to exactly 2^w needs w+1.
func TestCounterWidthBoundary(t *testing.T) {
	nl := NewNetlist("t")
	for _, w := range maskWidths {
		if got := NewCounter(nl, "a", 1<<uint(w)-1).Width(); got != w {
			t.Errorf("max=2^%d-1: width %d, want %d", w, got, w)
		}
		if got := NewCounter(nl, "b", 1<<uint(w)).Width(); got != w+1 {
			t.Errorf("max=2^%d: width %d, want %d", w, got, w+1)
		}
	}
}

// TestCounterLoadMasks: Load truncates to the declared width — every bit
// above it is dropped, exactly as a parallel load port into w flip-flops
// would behave.
func TestCounterLoadMasks(t *testing.T) {
	for _, w := range maskWidths {
		nl := NewNetlist("t")
		c := counterOfWidth(t, nl, w)
		mask := uint64(1)<<uint(w) - 1
		loads := []uint64{0, 1, mask - 1, mask, mask + 1, mask + 5,
			1 << uint(w), 1<<uint(w) | 3, ^uint64(0)}
		for _, v := range loads {
			c.Load(v)
			if got, want := c.Value(), v&mask; got != want {
				t.Errorf("width %d: Load(%#x) = %#x, want %#x", w, v, got, want)
			}
		}
	}
}

// TestCounterIncWraps: incrementing past the all-ones value wraps to zero
// (mod 2^width), and every step below the top increments by exactly one.
func TestCounterIncWraps(t *testing.T) {
	for _, w := range maskWidths {
		nl := NewNetlist("t")
		c := counterOfWidth(t, nl, w)
		mask := uint64(1)<<uint(w) - 1
		c.Load(mask - 1)
		c.Inc()
		if c.Value() != mask {
			t.Errorf("width %d: Inc from max-1 = %#x, want %#x", w, c.Value(), mask)
		}
		c.Inc()
		if c.Value() != 0 {
			t.Errorf("width %d: Inc from all-ones = %#x, want 0", w, c.Value())
		}
		c.Inc()
		if c.Value() != 1 {
			t.Errorf("width %d: Inc after wrap = %#x, want 1", w, c.Value())
		}
	}
}

// TestCounterWidth1Exhaustive walks the full state space of a 1-bit
// counter: both load values at every bit position above and below the
// width, and the 0→1→0 increment cycle.
func TestCounterWidth1Exhaustive(t *testing.T) {
	nl := NewNetlist("t")
	c := counterOfWidth(t, nl, 1)
	for v := uint64(0); v < 8; v++ {
		c.Load(v)
		if got := c.Value(); got != v&1 {
			t.Errorf("Load(%d) = %d, want %d", v, got, v&1)
		}
		if got := c.Bit(0); got != byte(v&1) {
			t.Errorf("Bit(0) after Load(%d) = %d, want %d", v, got, v&1)
		}
	}
	c.Load(0)
	for i, want := range []uint64{1, 0, 1, 0} {
		c.Inc()
		if c.Value() != want {
			t.Errorf("step %d: value %d, want %d", i, c.Value(), want)
		}
	}
}

// TestRegisterLoadMasks pins the same truncation contract for the plain
// register primitive (the block-frequency bank and the serial head storage
// rely on it).
func TestRegisterLoadMasks(t *testing.T) {
	for _, w := range maskWidths {
		nl := NewNetlist("t")
		r := NewRegister(nl, "r", 1<<uint(w)-1)
		if r.Width() != w {
			t.Fatalf("NewRegister(max=2^%d-1) built width %d", w, r.Width())
		}
		mask := uint64(1)<<uint(w) - 1
		for _, v := range []uint64{0, 1, mask, mask + 1, 1 << uint(w), ^uint64(0)} {
			r.Load(v)
			if got, want := r.Value(), v&mask; got != want {
				t.Errorf("width %d: Load(%#x) = %#x, want %#x", w, v, got, want)
			}
		}
		r.Load(mask)
		r.Reset()
		if r.Value() != 0 {
			t.Errorf("width %d: Reset left %#x", w, r.Value())
		}
	}
}

// TestCounterBankLoadMasks: the banked load port applies the same
// per-lane mask, independently per counter.
func TestCounterBankLoadMasks(t *testing.T) {
	for _, w := range maskWidths {
		nl := NewNetlist("t")
		b := NewCounterBank(nl, "b", 4, 1<<uint(w)-1)
		mask := uint64(1)<<uint(w) - 1
		for i := 0; i < b.Len(); i++ {
			b.Load(i, ^uint64(0))
			if got := b.Value(i); got != mask {
				t.Errorf("width %d lane %d: Load(^0) = %#x, want %#x", w, i, got, mask)
			}
		}
		b.Load(2, mask+2)
		if got := b.Value(2); got != 1 {
			t.Errorf("width %d: Load(mask+2) = %#x, want 1", w, got)
		}
		if got := b.Value(1); got != mask {
			t.Errorf("width %d: neighbouring lane disturbed: %#x", w, got)
		}
		b.Inc(3) // wrap from all-ones
		if got := b.Value(3); got != 0 {
			t.Errorf("width %d: bank Inc from all-ones = %#x, want 0", w, got)
		}
	}
}

// TestInfoMatchesConstruction pins the Described inventory designlint
// reads: kind, name and geometry reflect what was constructed.
func TestInfoMatchesConstruction(t *testing.T) {
	nl := NewNetlist("t")
	cases := []struct {
		prim Described
		want PrimInfo
	}{
		{NewCounter(nl, "cnt", 1000), PrimInfo{"counter", "cnt", 10, 1}},
		{NewUpDownCounter(nl, "ud", 1000), PrimInfo{"updown", "ud", 11, 1}},
		{NewRegister(nl, "reg", 255), PrimInfo{"register", "reg", 8, 1}},
		{NewMinMaxTracker(nl, "mm", 128), PrimInfo{"minmax", "mm", 9, 1}},
		{NewMaxTracker(nl, "mx", 16), PrimInfo{"max", "mx", 5, 1}},
		{NewShiftReg(nl, "sr", 9), PrimInfo{"shiftreg", "sr", 9, 1}},
		{NewEqComparator(nl, "eq", 9), PrimInfo{"cmp", "eq", 9, 1}},
		{NewCounterBank(nl, "bk", 16, 127), PrimInfo{"bank", "bk", 7, 16}},
	}
	for _, c := range cases {
		if got := c.prim.Info(); got != c.want {
			t.Errorf("Info() = %+v, want %+v", got, c.want)
		}
	}
	// Every primitive the netlist accumulated must satisfy Described.
	for _, p := range nl.Primitives() {
		if _, ok := p.(Described); !ok {
			t.Errorf("primitive %s does not implement Described", p.PrimName())
		}
	}
}
