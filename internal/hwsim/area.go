package hwsim

import "math"

// This file maps a netlist's structural inventory to the resource metrics
// the paper's Table III reports: Spartan-6 slices, flip-flops, LUTs and
// maximum frequency for the FPGA flow, and gate equivalents (GE) for the
// UMC 0.13µm ASIC flow.
//
// The constants below are calibrated against the eight published design
// points. They are a model, not a synthesis tool: EXPERIMENTS.md reports
// model-vs-paper numbers side by side, and only trends (monotonicity in
// sequence length and feature level, the ~20 % saving from resource
// sharing) are claimed as reproduced.

const (
	// lutsPerSlice is the effective LUT capacity of one Spartan-6 slice
	// after packing losses; the published designs cluster near
	// LUT/slices ≈ 3.0 (a Spartan-6 slice has 4 LUT6s, ~75 % packing).
	lutsPerSlice = 3.0
	// ffsPerSlice is the effective FF capacity (8 FFs per slice, but FF
	// packing is rarely the binding constraint in these designs).
	ffsPerSlice = 7.0
	// muxLUTsPerWord is the output-multiplexer cost per 16-bit word
	// exposed through the memory-mapped interface: a W:1 mux of 16-bit
	// words costs ≈ 16·W/3 LUT6s (4:1 per LUT), ≈ 5.3 per word. The
	// paper notes the interface "contributes significantly to the
	// overall area".
	muxLUTsPerWord = 5.3
	// geometric timing model: clock period in ns =
	// periodBase + periodPerCounterBit·maxCounterWidth
	//            + periodPerMuxLevel·log2(muxWords+1).
	periodBase          = 4.9
	periodPerCounterBit = 0.08
	periodPerMuxLevel   = 0.25
	// ASIC gate-equivalent costs: a DFF ≈ 6 GE; one LUT6 worth of random
	// logic ≈ 3.2 GE in a 0.13µm standard-cell library.
	gePerFF  = 6.0
	gePerLUT = 3.2
)

// FPGAEstimate is the Spartan-6 resource estimate for one design.
type FPGAEstimate struct {
	Slices  int
	FFs     int
	LUTs    int
	FmaxMHz float64
}

// ASICEstimate is the standard-cell estimate for one design.
type ASICEstimate struct {
	GE int
}

// EstimateFPGA computes the FPGA resource estimate for the netlist,
// including the output multiplexer declared via SetMuxWords.
func EstimateFPGA(nl *Netlist) FPGAEstimate {
	t := nl.Total()
	luts := float64(t.LUTs) + muxLUTsPerWord*float64(nl.MuxWords())
	ffs := t.FFs
	slicesByLUT := luts / lutsPerSlice
	slicesByFF := float64(ffs) / ffsPerSlice
	slices := slicesByLUT
	if slicesByFF > slices {
		slices = slicesByFF
	}
	period := periodBase +
		periodPerCounterBit*float64(nl.MaxCounterWidth()) +
		periodPerMuxLevel*math.Log2(float64(nl.MuxWords())+1)
	return FPGAEstimate{
		Slices:  int(math.Ceil(slices)),
		FFs:     ffs,
		LUTs:    int(math.Ceil(luts)),
		FmaxMHz: 1000 / period,
	}
}

// EstimateASIC computes the gate-equivalent estimate for the netlist.
func EstimateASIC(nl *Netlist) ASICEstimate {
	t := nl.Total()
	luts := float64(t.LUTs) + muxLUTsPerWord*float64(nl.MuxWords())
	ge := gePerFF*float64(t.FFs) + gePerLUT*luts
	return ASICEstimate{GE: int(math.Round(ge))}
}
