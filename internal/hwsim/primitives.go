package hwsim

import "fmt"

// widthFor returns the number of bits needed to represent values 0..max.
func widthFor(max uint64) int {
	w := 1
	for max>>uint(w) != 0 {
		w++
	}
	return w
}

// Counter is an unsigned binary up-counter of a fixed width. Incrementing
// past the maximum wraps, as real hardware would; the testing-block designs
// size every counter so that wrap cannot occur within one test sequence.
type Counter struct {
	name  string
	width int
	value uint64
}

// NewCounter creates a counter wide enough to count to max and registers it
// in nl.
func NewCounter(nl *Netlist, name string, max uint64) *Counter {
	c := &Counter{name: name, width: widthFor(max)}
	nl.add(c)
	return c
}

// PrimName implements Primitive.
func (c *Counter) PrimName() string { return fmt.Sprintf("counter %s[%d]", c.name, c.width) }

// Info implements Described.
func (c *Counter) Info() PrimInfo {
	return PrimInfo{Kind: "counter", Name: c.name, Width: c.width, Lanes: 1}
}

// Resources implements Primitive: one FF per bit plus roughly one LUT per
// bit of increment logic (Spartan-6 packs the carry chain efficiently; the
// constant is calibrated in area.go's slice model, not here).
func (c *Counter) Resources() Resources { return Resources{FFs: c.width, LUTs: c.width} }

// Reset implements Primitive.
func (c *Counter) Reset() { c.value = 0 }

// CounterWidth reports the carry-chain width for the timing model.
func (c *Counter) CounterWidth() int { return c.width }

// Inc adds one (mod 2^width).
func (c *Counter) Inc() {
	c.value = (c.value + 1) & (1<<uint(c.width) - 1)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.value }

// Load sets the count directly (mod 2^width) — the parallel load port the
// word-level fast path uses to publish its state into the structural
// register image. It adds no per-clock logic.
func (c *Counter) Load(v uint64) { c.value = v & (1<<uint(c.width) - 1) }

// Width returns the counter width in bits.
func (c *Counter) Width() int { return c.width }

// Bit returns bit i of the counter value. The testing block derives block
// boundaries from specific bits of the global bit counter (the paper's
// "block detection" trick), so this is a structural output, not a debug
// accessor.
func (c *Counter) Bit(i int) byte { return byte(c.value>>uint(i)) & 1 }

// UpDownCounter is a signed counter (two's complement of the given width)
// used to track the cumulative-sums random walk.
type UpDownCounter struct {
	name  string
	width int
	value int64
}

// NewUpDownCounter creates an up/down counter able to hold ±maxAbs.
func NewUpDownCounter(nl *Netlist, name string, maxAbs uint64) *UpDownCounter {
	c := &UpDownCounter{name: name, width: widthFor(maxAbs) + 1} // +1 sign bit
	nl.add(c)
	return c
}

// PrimName implements Primitive.
func (c *UpDownCounter) PrimName() string {
	return fmt.Sprintf("updown %s[%d]", c.name, c.width)
}

// Info implements Described.
func (c *UpDownCounter) Info() PrimInfo {
	return PrimInfo{Kind: "updown", Name: c.name, Width: c.width, Lanes: 1}
}

// Resources implements Primitive: an up/down counter needs an adder that
// can add ±1, slightly more logic than a pure incrementer.
func (c *UpDownCounter) Resources() Resources {
	return Resources{FFs: c.width, LUTs: c.width + 2}
}

// Reset implements Primitive.
func (c *UpDownCounter) Reset() { c.value = 0 }

// CounterWidth reports the carry-chain width for the timing model.
func (c *UpDownCounter) CounterWidth() int { return c.width }

// Inc adds one.
func (c *UpDownCounter) Inc() { c.value++ }

// Dec subtracts one.
func (c *UpDownCounter) Dec() { c.value-- }

// Value returns the signed count.
func (c *UpDownCounter) Value() int64 { return c.value }

// Load sets the count directly — the parallel load port for the word-level
// fast path.
func (c *UpDownCounter) Load(v int64) { c.value = v }

// Register is a loadable register of a fixed width.
type Register struct {
	name  string
	width int
	value uint64
}

// NewRegister creates a register wide enough to hold max.
func NewRegister(nl *Netlist, name string, max uint64) *Register {
	r := &Register{name: name, width: widthFor(max)}
	nl.add(r)
	return r
}

// PrimName implements Primitive.
func (r *Register) PrimName() string { return fmt.Sprintf("reg %s[%d]", r.name, r.width) }

// Info implements Described.
func (r *Register) Info() PrimInfo {
	return PrimInfo{Kind: "register", Name: r.name, Width: r.width, Lanes: 1}
}

// Resources implements Primitive: mostly storage; the load-enable decode
// and input routing cost a fraction of a LUT per bit.
func (r *Register) Resources() Resources {
	return Resources{FFs: r.width, LUTs: r.width / 4}
}

// Reset implements Primitive.
func (r *Register) Reset() { r.value = 0 }

// Load stores v.
func (r *Register) Load(v uint64) { r.value = v & (1<<uint(r.width) - 1) }

// Width returns the register width in bits.
func (r *Register) Width() int { return r.width }

// Value returns the stored value.
func (r *Register) Value() uint64 { return r.value }

// MinMaxTracker records the running minimum and maximum of a signed value —
// the S_max/S_min registers of the cusum hardware: two registers plus two
// signed comparators.
type MinMaxTracker struct {
	name     string
	width    int
	min, max int64
}

// NewMinMaxTracker creates a tracker for values within ±maxAbs.
func NewMinMaxTracker(nl *Netlist, name string, maxAbs uint64) *MinMaxTracker {
	t := &MinMaxTracker{name: name, width: widthFor(maxAbs) + 1}
	nl.add(t)
	return t
}

// PrimName implements Primitive.
func (t *MinMaxTracker) PrimName() string {
	return fmt.Sprintf("minmax %s[%d]", t.name, t.width)
}

// Info implements Described.
func (t *MinMaxTracker) Info() PrimInfo {
	return PrimInfo{Kind: "minmax", Name: t.name, Width: t.width, Lanes: 1}
}

// Resources implements Primitive: two registers plus two comparators
// (≈ width/3 LUTs each on 6-input fabric, plus update muxing).
func (t *MinMaxTracker) Resources() Resources {
	return Resources{FFs: 2 * t.width, LUTs: 2 * (t.width/3 + t.width/2)}
}

// Reset implements Primitive.
func (t *MinMaxTracker) Reset() { t.min, t.max = 0, 0 }

// Update folds v into the running extrema.
func (t *MinMaxTracker) Update(v int64) {
	if v < t.min {
		t.min = v
	}
	if v > t.max {
		t.max = v
	}
}

// Load sets both extrema directly — the parallel load port for the
// word-level fast path.
func (t *MinMaxTracker) Load(min, max int64) { t.min, t.max = min, max }

// Min returns the running minimum (≤ 0 by initialization).
func (t *MinMaxTracker) Min() int64 { return t.min }

// Max returns the running maximum (≥ 0 by initialization).
func (t *MinMaxTracker) Max() int64 { return t.max }

// MaxTracker records the running maximum of an unsigned value — used for
// the longest-run-within-block detector.
type MaxTracker struct {
	name  string
	width int
	max   uint64
}

// NewMaxTracker creates a tracker for values 0..maxVal.
func NewMaxTracker(nl *Netlist, name string, maxVal uint64) *MaxTracker {
	t := &MaxTracker{name: name, width: widthFor(maxVal)}
	nl.add(t)
	return t
}

// PrimName implements Primitive.
func (t *MaxTracker) PrimName() string { return fmt.Sprintf("max %s[%d]", t.name, t.width) }

// Info implements Described.
func (t *MaxTracker) Info() PrimInfo {
	return PrimInfo{Kind: "max", Name: t.name, Width: t.width, Lanes: 1}
}

// Resources implements Primitive: register plus comparator.
func (t *MaxTracker) Resources() Resources {
	return Resources{FFs: t.width, LUTs: t.width/3 + t.width/2}
}

// Reset implements Primitive.
func (t *MaxTracker) Reset() { t.max = 0 }

// Update folds v into the running maximum.
func (t *MaxTracker) Update(v uint64) {
	if v > t.max {
		t.max = v
	}
}

// Clear zeroes the maximum (block boundary).
func (t *MaxTracker) Clear() { t.max = 0 }

// Max returns the running maximum.
func (t *MaxTracker) Max() uint64 { return t.max }

// ShiftReg is a serial-in shift register holding the most recent bits; the
// template-matching and serial-test engines read its parallel output. It is
// the resource the paper shares between the two template tests ("Shared
// shift register").
type ShiftReg struct {
	name  string
	len   int
	value uint64 // bit 0 = newest
	fill  int
}

// NewShiftReg creates a shift register of the given length (≤ 64).
func NewShiftReg(nl *Netlist, name string, length int) *ShiftReg {
	if length < 1 || length > 64 {
		panic("hwsim: shift register length out of range")
	}
	s := &ShiftReg{name: name, len: length}
	nl.add(s)
	return s
}

// PrimName implements Primitive.
func (s *ShiftReg) PrimName() string { return fmt.Sprintf("shiftreg %s[%d]", s.name, s.len) }

// Info implements Described.
func (s *ShiftReg) Info() PrimInfo {
	return PrimInfo{Kind: "shiftreg", Name: s.name, Width: s.len, Lanes: 1}
}

// Resources implements Primitive: one FF per stage; shifting is wiring.
func (s *ShiftReg) Resources() Resources { return Resources{FFs: s.len} }

// Reset implements Primitive.
func (s *ShiftReg) Reset() { s.value, s.fill = 0, 0 }

// Shift clocks a bit in (the new bit becomes the newest position).
func (s *ShiftReg) Shift(b byte) {
	s.value = (s.value<<1 | uint64(b&1)) & (1<<uint(s.len) - 1)
	if s.fill < s.len {
		s.fill++
	}
}

// Full reports whether length bits have been shifted in since reset.
func (s *ShiftReg) Full() bool { return s.fill == s.len }

// Window returns the newest w bits as an integer, oldest bit in the most
// significant position — the pattern value read MSB-first.
func (s *ShiftReg) Window(w int) uint64 {
	if w > s.len {
		panic("hwsim: window wider than shift register")
	}
	return s.value & (1<<uint(w) - 1)
}

// Fill reports how many bits have been shifted in since reset (saturating
// at the register length).
func (s *ShiftReg) Fill() int { return s.fill }

// EqComparator is a purely combinational equality comparator against a
// fixed pattern; it occupies LUTs but holds no state.
type EqComparator struct {
	name  string
	width int
}

// NewEqComparator registers a width-bit equality comparator.
func NewEqComparator(nl *Netlist, name string, width int) *EqComparator {
	c := &EqComparator{name: name, width: width}
	nl.add(c)
	return c
}

// PrimName implements Primitive.
func (c *EqComparator) PrimName() string { return fmt.Sprintf("cmp %s[%d]", c.name, c.width) }

// Info implements Described.
func (c *EqComparator) Info() PrimInfo {
	return PrimInfo{Kind: "cmp", Name: c.name, Width: c.width, Lanes: 1}
}

// Resources implements Primitive: a w-bit equality against a constant fits
// in ~w/6 LUT6s plus a small AND tree.
func (c *EqComparator) Resources() Resources { return Resources{LUTs: c.width/6 + 1} }

// Reset implements Primitive.
func (c *EqComparator) Reset() {}

// Matches reports whether v equals pattern (pure combinational function).
func (c *EqComparator) Matches(v, pattern uint64) bool {
	mask := uint64(1)<<uint(c.width) - 1
	return v&mask == pattern&mask
}

// CounterBank is an array of counters sharing one decoder — the serial
// test's 2^m pattern counters. Structurally it is cheaper than 2^m
// independent counters because only one counter's enable is active per
// clock; behaviourally it is an indexed increment.
type CounterBank struct {
	name   string
	n      int
	width  int
	values []uint64
}

// NewCounterBank creates n counters, each wide enough to count to max.
func NewCounterBank(nl *Netlist, name string, n int, max uint64) *CounterBank {
	b := &CounterBank{name: name, n: n, width: widthFor(max), values: make([]uint64, n)}
	nl.add(b)
	return b
}

// PrimName implements Primitive.
func (b *CounterBank) PrimName() string {
	return fmt.Sprintf("bank %s[%dx%d]", b.name, b.n, b.width)
}

// Info implements Described.
func (b *CounterBank) Info() PrimInfo {
	return PrimInfo{Kind: "bank", Name: b.name, Width: b.width, Lanes: b.n}
}

// Resources implements Primitive: n·width FFs. Synthesis tools implement
// each counter's increment as its own carry chain (sharing one incrementer
// across registers would need a full read mux, which costs more), so the
// LUT cost is ~width/2 per counter (carry-chain packing) plus the enable
// decoder.
func (b *CounterBank) Resources() Resources {
	return Resources{FFs: b.n * b.width, LUTs: b.n*b.width/2 + b.n/4 + 1}
}

// Reset implements Primitive.
func (b *CounterBank) Reset() {
	for i := range b.values {
		b.values[i] = 0
	}
}

// CounterWidth reports the carry-chain width for the timing model.
func (b *CounterBank) CounterWidth() int { return b.width }

// Inc increments counter i.
func (b *CounterBank) Inc(i int) {
	b.values[i] = (b.values[i] + 1) & (1<<uint(b.width) - 1)
}

// Value returns counter i.
func (b *CounterBank) Value(i int) uint64 { return b.values[i] }

// Load sets counter i directly (mod 2^width) — the parallel load port for
// the word-level fast path.
func (b *CounterBank) Load(i int, v uint64) {
	b.values[i] = v & (1<<uint(b.width) - 1)
}

// Len returns the number of counters in the bank.
func (b *CounterBank) Len() int { return b.n }
