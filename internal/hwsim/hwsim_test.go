package hwsim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestWidthFor(t *testing.T) {
	cases := []struct {
		max  uint64
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {127, 7}, {128, 8},
		{65535, 16}, {65536, 17}, {1048576, 21},
	}
	for _, c := range cases {
		if got := widthFor(c.max); got != c.want {
			t.Errorf("widthFor(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestCounterCountsAndWraps(t *testing.T) {
	nl := NewNetlist("t")
	c := NewCounter(nl, "c", 3) // 2 bits
	for i := 0; i < 3; i++ {
		c.Inc()
	}
	if c.Value() != 3 {
		t.Errorf("Value = %d, want 3", c.Value())
	}
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("counter did not wrap: %d", c.Value())
	}
}

func TestCounterBitForBlockDetection(t *testing.T) {
	nl := NewNetlist("t")
	c := NewCounter(nl, "global", 1<<20)
	// After 128 increments, bit 7 rises — a 128-bit block boundary.
	for i := 0; i < 128; i++ {
		if c.Bit(7) != 0 {
			t.Fatalf("bit 7 set after only %d increments", i)
		}
		c.Inc()
	}
	if c.Bit(7) != 1 {
		t.Error("bit 7 not set after 128 increments")
	}
}

func TestCounterReset(t *testing.T) {
	nl := NewNetlist("t")
	c := NewCounter(nl, "c", 100)
	c.Inc()
	c.Inc()
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("Value after reset = %d", c.Value())
	}
}

func TestUpDownCounter(t *testing.T) {
	nl := NewNetlist("t")
	c := NewUpDownCounter(nl, "walk", 128)
	c.Inc()
	c.Inc()
	c.Dec()
	c.Dec()
	c.Dec()
	if c.Value() != -1 {
		t.Errorf("Value = %d, want -1", c.Value())
	}
	if c.CounterWidth() != widthFor(128)+1 {
		t.Errorf("width = %d", c.CounterWidth())
	}
}

func TestRegister(t *testing.T) {
	nl := NewNetlist("t")
	r := NewRegister(nl, "r", 255)
	r.Load(0x1AB) // truncated to 8 bits
	if r.Value() != 0xAB {
		t.Errorf("Value = %#x, want 0xAB", r.Value())
	}
}

func TestMinMaxTracker(t *testing.T) {
	nl := NewNetlist("t")
	tr := NewMinMaxTracker(nl, "s", 1024)
	for _, v := range []int64{1, 5, -3, 2, -7, 4} {
		tr.Update(v)
	}
	if tr.Max() != 5 || tr.Min() != -7 {
		t.Errorf("minmax = (%d, %d), want (-7, 5)", tr.Min(), tr.Max())
	}
	tr.Reset()
	if tr.Max() != 0 || tr.Min() != 0 {
		t.Error("reset did not zero extrema")
	}
}

func TestMaxTracker(t *testing.T) {
	nl := NewNetlist("t")
	tr := NewMaxTracker(nl, "run", 128)
	tr.Update(3)
	tr.Update(7)
	tr.Update(5)
	if tr.Max() != 7 {
		t.Errorf("Max = %d, want 7", tr.Max())
	}
	tr.Clear()
	if tr.Max() != 0 {
		t.Error("Clear did not zero")
	}
}

func TestShiftRegWindow(t *testing.T) {
	nl := NewNetlist("t")
	sr := NewShiftReg(nl, "sr", 4)
	for _, b := range []byte{1, 0, 1, 1} {
		sr.Shift(b)
	}
	// Oldest bit (1) in MSB position: window = 1011.
	if got := sr.Window(4); got != 0b1011 {
		t.Errorf("Window(4) = %04b, want 1011", got)
	}
	if got := sr.Window(2); got != 0b11 {
		t.Errorf("Window(2) = %02b, want 11", got)
	}
	if !sr.Full() {
		t.Error("Full = false after len shifts")
	}
}

func TestShiftRegFill(t *testing.T) {
	nl := NewNetlist("t")
	sr := NewShiftReg(nl, "sr", 8)
	if sr.Full() {
		t.Error("fresh register reports full")
	}
	for i := 0; i < 5; i++ {
		sr.Shift(1)
	}
	if sr.Fill() != 5 || sr.Full() {
		t.Errorf("Fill = %d, Full = %v", sr.Fill(), sr.Full())
	}
}

func TestShiftRegPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for length 0")
		}
	}()
	NewShiftReg(NewNetlist("t"), "bad", 0)
}

func TestEqComparator(t *testing.T) {
	nl := NewNetlist("t")
	c := NewEqComparator(nl, "tpl", 9)
	if !c.Matches(0b000000001, 0b000000001) {
		t.Error("equal values did not match")
	}
	if c.Matches(0b000000011, 0b000000001) {
		t.Error("unequal values matched")
	}
	// Only the low 9 bits participate.
	if !c.Matches(0x200|0b1, 0b1) {
		t.Error("comparator looked beyond its width")
	}
}

func TestCounterBank(t *testing.T) {
	nl := NewNetlist("t")
	b := NewCounterBank(nl, "nu", 16, 65536)
	b.Inc(3)
	b.Inc(3)
	b.Inc(15)
	if b.Value(3) != 2 || b.Value(15) != 1 || b.Value(0) != 0 {
		t.Error("bank counts wrong")
	}
	b.Reset()
	if b.Value(3) != 0 {
		t.Error("bank reset failed")
	}
	if b.Len() != 16 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestNetlistTotalAndReset(t *testing.T) {
	nl := NewNetlist("design")
	c := NewCounter(nl, "a", 255)
	sr := NewShiftReg(nl, "b", 9)
	tot := nl.Total()
	wantFF := 8 + 9
	if tot.FFs != wantFF {
		t.Errorf("total FFs = %d, want %d", tot.FFs, wantFF)
	}
	c.Inc()
	sr.Shift(1)
	nl.Reset()
	if c.Value() != 0 || sr.Fill() != 0 {
		t.Error("netlist reset did not reach primitives")
	}
}

func TestNetlistMaxCounterWidth(t *testing.T) {
	nl := NewNetlist("t")
	NewCounter(nl, "small", 100)
	NewUpDownCounter(nl, "walk", 1<<20)
	NewCounterBank(nl, "bank", 4, 1000)
	if got := nl.MaxCounterWidth(); got != widthFor(1<<20)+1 {
		t.Errorf("MaxCounterWidth = %d, want %d", got, widthFor(1<<20)+1)
	}
}

func TestDescribeIncludesEveryPrimitive(t *testing.T) {
	nl := NewNetlist("demo")
	NewCounter(nl, "ones", 65536)
	NewShiftReg(nl, "pattern", 9)
	nl.SetMuxWords(10)
	d := nl.Describe()
	for _, want := range []string{"demo", "ones", "pattern", "TOTAL"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() missing %q:\n%s", want, d)
		}
	}
}

func TestEstimateFPGAMonotoneInResources(t *testing.T) {
	small := NewNetlist("small")
	NewCounter(small, "c", 255)
	small.SetMuxWords(2)

	big := NewNetlist("big")
	for i := 0; i < 20; i++ {
		NewCounter(big, "c", 1<<20)
	}
	big.SetMuxWords(64)

	es, eb := EstimateFPGA(small), EstimateFPGA(big)
	if eb.Slices <= es.Slices || eb.LUTs <= es.LUTs || eb.FFs <= es.FFs {
		t.Errorf("bigger design not bigger: small=%+v big=%+v", es, eb)
	}
	if eb.FmaxMHz >= es.FmaxMHz {
		t.Errorf("bigger design not slower: small=%.1f big=%.1f", es.FmaxMHz, eb.FmaxMHz)
	}
}

func TestEstimateFPGAAbove100MHz(t *testing.T) {
	// The paper reports all eight designs above 100 MHz; even a large
	// netlist in this model family must stay above that.
	nl := NewNetlist("big")
	for i := 0; i < 30; i++ {
		NewCounter(nl, "c", 1<<20)
	}
	nl.SetMuxWords(128)
	if f := EstimateFPGA(nl).FmaxMHz; f < 100 {
		t.Errorf("Fmax = %.1f MHz, model should stay above 100", f)
	}
}

func TestEstimateASICTracksFPGA(t *testing.T) {
	nl := NewNetlist("t")
	NewCounter(nl, "c", 65536)
	NewCounterBank(nl, "bank", 28, 1<<20)
	nl.SetMuxWords(40)
	ge := EstimateASIC(nl).GE
	if ge <= 0 {
		t.Fatalf("GE = %d", ge)
	}
	// GE must grow if resources grow.
	NewCounter(nl, "c2", 1<<20)
	if EstimateASIC(nl).GE <= ge {
		t.Error("ASIC estimate not monotone")
	}
}

// Property: counters faithfully count any number of increments below their
// capacity.
func TestCounterCountsProperty(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw) % 5000
		nl := NewNetlist("p")
		c := NewCounter(nl, "c", 5000)
		for i := 0; i < n; i++ {
			c.Inc()
		}
		return c.Value() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a shift register window equals the last w bits of the input,
// oldest in the MSB.
func TestShiftRegWindowProperty(t *testing.T) {
	f := func(bits []byte) bool {
		if len(bits) < 4 {
			return true
		}
		nl := NewNetlist("p")
		sr := NewShiftReg(nl, "sr", 4)
		for _, b := range bits {
			sr.Shift(b)
		}
		want := uint64(0)
		for _, b := range bits[len(bits)-4:] {
			want = want<<1 | uint64(b&1)
		}
		return sr.Window(4) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
