package sp80090b

import (
	"fmt"
	"math/bits"
)

// This file adds the continuous counterpart of the batch estimators: an
// OnlineEstimator maintains the most-common-value and Markov min-entropy
// estimates over a sliding window of the stream with O(1) amortized work
// per bit, so a supervisor can read a live entropy figure alongside the
// monitor's per-sequence verdicts instead of waiting for an offline pass.
// The estimates are EXACTLY the batch ones: at any 64-bit-aligned
// position, MCV and Markov return bit-identical results to
// MostCommonValue and Markov run on a Sequence holding the window's
// bits, because both paths share the same count-to-estimate arithmetic.

// onlineChunk is one committed 64-bit chunk's summary: the ones count,
// the interior transition-pair counts, and the boundary bits used to
// account for the seam pairs between adjacent chunks.
type onlineChunk struct {
	ones        uint8
	pairs       [2][2]uint8 // interior adjacent-pair counts
	first, last uint8
}

// OnlineEstimator is the sliding-window form of the binary min-entropy
// estimators. Feed bits with Push; once Primed, MCV and Markov return
// window estimates. Not safe for concurrent use.
type OnlineEstimator struct {
	window int

	cur     uint64
	curBits int
	bits    int64

	ring  []onlineChunk
	head  int
	count int

	ones  int64
	pairs [2][2]int64 // window adjacent-pair counts (seams included)
}

// NewOnlineEstimator builds an estimator over a window of the given
// length in bits, which must be a positive multiple of 64.
func NewOnlineEstimator(window int) (*OnlineEstimator, error) {
	if window < 64 || window%64 != 0 {
		return nil, fmt.Errorf("sp80090b: window %d is not a positive multiple of 64", window)
	}
	return &OnlineEstimator{
		window: window,
		ring:   make([]onlineChunk, window/64),
	}, nil
}

// Window returns the window length in bits.
func (e *OnlineEstimator) Window() int { return e.window }

// BitsSeen returns the total bits pushed since Reset.
func (e *OnlineEstimator) BitsSeen() int64 { return e.bits }

// Primed reports whether a full window has been ingested.
func (e *OnlineEstimator) Primed() bool { return e.count == len(e.ring) }

// Reset returns the estimator to its initial state, retaining the ring.
func (e *OnlineEstimator) Reset() {
	e.cur, e.curBits, e.bits = 0, 0, 0
	e.head, e.count = 0, 0
	e.ones = 0
	e.pairs = [2][2]int64{}
}

// Push ingests nbits bits (1..64), chronological LSB first — the same
// packing order as bitstream.Sequence words.
func (e *OnlineEstimator) Push(w uint64, nbits int) {
	if nbits < 1 || nbits > 64 {
		panic(fmt.Sprintf("sp80090b: word size %d out of range [1,64]", nbits))
	}
	v := w & onlineMask(nbits)
	off := 0
	for off < nbits {
		take := nbits - off
		if rem := 64 - e.curBits; take > rem {
			take = rem
		}
		e.cur |= v >> uint(off) & onlineMask(take) << uint(e.curBits)
		e.curBits += take
		e.bits += int64(take)
		if e.curBits == 64 {
			e.commit()
			e.cur, e.curBits = 0, 0
		}
		off += take
	}
}

// commit folds the completed chunk into the window.
func (e *OnlineEstimator) commit() {
	v := e.cur
	k := len(e.ring)
	if e.count == k {
		old := &e.ring[e.head]
		e.ones -= int64(old.ones)
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				e.pairs[a][b] -= int64(old.pairs[a][b])
			}
		}
		if e.count > 1 {
			next := &e.ring[(e.head+1)%k]
			e.pairs[old.last][next.first]--
		}
		e.head = (e.head + 1) % k
		e.count--
	}

	idx := (e.head + e.count) % k
	c := &e.ring[idx]
	*c = onlineChunk{
		ones:  uint8(bits.OnesCount64(v)),
		first: uint8(v & 1),
		last:  uint8(v >> 63),
	}
	// Interior pairs: for each of the four (a,b) combinations, count
	// positions i in [0,63) with bit i == a and bit i+1 == b.
	x, y := v, v>>1
	const m63 = 1<<63 - 1
	c.pairs[1][1] = uint8(bits.OnesCount64(x & y & m63))
	c.pairs[1][0] = uint8(bits.OnesCount64(x & ^y & m63))
	c.pairs[0][1] = uint8(bits.OnesCount64(^x & y & m63))
	c.pairs[0][0] = uint8(bits.OnesCount64(^x & ^y & m63))
	if e.count > 0 {
		prev := &e.ring[(idx+k-1)%k]
		e.pairs[prev.last][c.first]++
	}
	e.ones += int64(c.ones)
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			e.pairs[a][b] += int64(c.pairs[a][b])
		}
	}
	e.count++
}

// MCV returns the most-common-value estimate over the current window.
// It errors until the window first fills.
func (e *OnlineEstimator) MCV() (*MCVEstimate, error) {
	if !e.Primed() {
		return nil, fmt.Errorf("sp80090b: window not yet full (%d of %d bits)", e.bits, e.window)
	}
	count := e.ones
	if z := int64(e.window) - e.ones; z > count {
		count = z
	}
	return mcvFromCounts(int(count), e.window), nil
}

// Markov returns the first-order Markov estimate over the current
// window. It errors until the window first fills.
func (e *OnlineEstimator) Markov() (*MarkovEstimate, error) {
	if !e.Primed() {
		return nil, fmt.Errorf("sp80090b: window not yet full (%d of %d bits)", e.bits, e.window)
	}
	var trans [2][2]float64
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			trans[a][b] = float64(e.pairs[a][b])
		}
	}
	return markovFromCounts(trans, float64(e.ones), e.window), nil
}

// MinEntropy returns the conservative (minimum) of the two window
// estimates, or -1 until the window first fills.
func (e *OnlineEstimator) MinEntropy() float64 {
	mcv, err := e.MCV()
	if err != nil {
		return -1
	}
	mk, err := e.Markov()
	if err != nil {
		return -1
	}
	if mk.MinEntropy < mcv.MinEntropy {
		return mk.MinEntropy
	}
	return mcv.MinEntropy
}

// onlineMask returns a mask of the low n bits (n in [0, 64]).
func onlineMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}
