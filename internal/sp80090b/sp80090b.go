// Package sp80090b implements the two continuous health tests of NIST
// SP800-90B (the draft the paper cites as [2], which "also requires
// on-the-fly tests (health tests) for random number generators"): the
// Repetition Count Test and the Adaptive Proportion Test, for binary
// sources.
//
// These tests are the minimal health monitoring a standard-compliant
// entropy source must carry. They are dramatically cheaper than the
// paper's NIST-suite monitor — a handful of counters — but they only catch
// catastrophic failures (stuck outputs, extreme bias). The repository uses
// them as the contrast class: the detection-power experiments show which
// defects escape RCT/APT and are caught only by the statistical monitor.
//
// The package also implements the standard's initial-assessment side:
// the most-common-value (MCV) and first-order Markov min-entropy
// estimators over fixed samples (entropy.go), their structural-hardware
// cost model (hw.go), and OnlineEstimator (online.go) — the same
// estimators over a sliding window of the last Window bits, updated in
// O(1) amortized per 64-bit word by the chunk-ring construction
// internal/online uses, for continuous min-entropy alongside the online
// anomaly score.
//
// Every type here is a pure function of the bits pushed since its
// construction or Reset — no clocks, no randomness — which is what the
// //trnglint:deterministic annotation below asserts and the trnglint
// analyzer enforces.
//
//trnglint:deterministic
package sp80090b

import (
	"fmt"
	"math"
)

// DefaultAlpha is the false-positive probability SP800-90B recommends for
// the health tests (2^-20).
var DefaultAlpha = math.Pow(2, -20)

// RepetitionCountTest detects when the source emits the same value too many
// times in a row. For a source asserted to provide H bits of entropy per
// sample, the cutoff is C = 1 + ceil(-log2(alpha)/H); reaching a run of C
// identical samples is an alarm.
type RepetitionCountTest struct {
	cutoff int
	last   byte
	run    int
	primed bool
	alarms int
}

// NewRepetitionCountTest builds an RCT for entropy h bits/sample at
// false-positive probability alpha.
func NewRepetitionCountTest(h, alpha float64) (*RepetitionCountTest, error) {
	if h <= 0 || h > 1 {
		return nil, fmt.Errorf("sp80090b: entropy per bit %g out of (0,1]", h)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("sp80090b: alpha %g out of range", alpha)
	}
	return &RepetitionCountTest{
		cutoff: 1 + int(math.Ceil(-math.Log2(alpha)/h)),
	}, nil
}

// Cutoff returns the alarm run length.
func (t *RepetitionCountTest) Cutoff() int { return t.cutoff }

// Feed consumes one bit and reports whether it raised an alarm.
func (t *RepetitionCountTest) Feed(bit byte) bool {
	bit &= 1
	if !t.primed || bit != t.last {
		t.last = bit
		t.run = 1
		t.primed = true
		return false
	}
	t.run++
	if t.run >= t.cutoff {
		t.alarms++
		t.run = 1 // restart after alarm, per the continuous-test model
		return true
	}
	return false
}

// Alarms returns the number of alarms raised so far.
func (t *RepetitionCountTest) Alarms() int { return t.alarms }

// Reset returns the test to its initial state.
func (t *RepetitionCountTest) Reset() {
	t.run, t.alarms, t.primed = 0, 0, false
}

// AdaptiveProportionTest detects when one value dominates a window: it
// records the first sample of each W-sample window and counts its
// recurrences; an alarm is raised if the count reaches the cutoff, chosen
// as the smallest C with P(Binomial(W−1, p) ≥ C−1) ≤ alpha, where
// p = 2^−H for the asserted entropy.
type AdaptiveProportionTest struct {
	window  int
	cutoff  int
	first   byte
	count   int
	samples int
	alarms  int
}

// DefaultWindow is the SP800-90B window size for binary sources.
const DefaultWindow = 1024

// NewAdaptiveProportionTest builds an APT for entropy h bits/sample at
// false-positive probability alpha over the given window (use
// DefaultWindow for the standard's binary configuration).
func NewAdaptiveProportionTest(h, alpha float64, window int) (*AdaptiveProportionTest, error) {
	if h <= 0 || h > 1 {
		return nil, fmt.Errorf("sp80090b: entropy per bit %g out of (0,1]", h)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("sp80090b: alpha %g out of range", alpha)
	}
	if window < 16 {
		return nil, fmt.Errorf("sp80090b: window %d too small", window)
	}
	p := math.Pow(2, -h)
	cutoff, err := binomialCutoff(window-1, p, alpha)
	if err != nil {
		return nil, err
	}
	return &AdaptiveProportionTest{window: window, cutoff: cutoff + 1}, nil
}

// Cutoff returns the alarm count.
func (t *AdaptiveProportionTest) Cutoff() int { return t.cutoff }

// Window returns the window size.
func (t *AdaptiveProportionTest) Window() int { return t.window }

// Feed consumes one bit and reports whether it raised an alarm.
func (t *AdaptiveProportionTest) Feed(bit byte) bool {
	bit &= 1
	if t.samples == 0 {
		t.first = bit
		t.count = 1
		t.samples = 1
		return false
	}
	t.samples++
	if bit == t.first {
		t.count++
	}
	alarm := false
	if t.count >= t.cutoff {
		t.alarms++
		alarm = true
		t.samples = 0 // restart the window after an alarm
		return alarm
	}
	if t.samples == t.window {
		t.samples = 0
	}
	return false
}

// Alarms returns the number of alarms raised so far.
func (t *AdaptiveProportionTest) Alarms() int { return t.alarms }

// Reset returns the test to its initial state.
func (t *AdaptiveProportionTest) Reset() {
	t.samples, t.count, t.alarms = 0, 0, 0
}

// binomialCutoff returns the smallest c with P(Binomial(n, p) ≥ c) ≤ alpha,
// evaluated in log space to stay accurate at alpha = 2^-20.
func binomialCutoff(n int, p, alpha float64) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("sp80090b: invalid binomial n=%d", n)
	}
	// Work downward from c = n, accumulating the upper tail.
	logP := math.Log(p)
	logQ := math.Log(1 - p)
	tail := 0.0
	lgN, _ := math.Lgamma(float64(n + 1))
	for c := n; c >= 0; c-- {
		lgK, _ := math.Lgamma(float64(c + 1))
		lgNK, _ := math.Lgamma(float64(n - c + 1))
		logTerm := lgN - lgK - lgNK + float64(c)*logP + float64(n-c)*logQ
		tail += math.Exp(logTerm)
		if tail > alpha {
			if c == n {
				return 0, fmt.Errorf("sp80090b: no cutoff satisfies alpha=%g", alpha)
			}
			return c + 1, nil
		}
	}
	return 0, nil
}
