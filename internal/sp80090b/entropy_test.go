package sp80090b

import (
	"math"
	"testing"

	"repro/internal/trng"
)

func TestMCVIdealSourceNearOneBit(t *testing.T) {
	s := trng.Read(trng.NewIdeal(1), 1<<20)
	e, err := MostCommonValue(s)
	if err != nil {
		t.Fatal(err)
	}
	if e.MinEntropy < 0.98 {
		t.Errorf("ideal source MCV min-entropy %.4f, want ≈ 1", e.MinEntropy)
	}
}

func TestMCVBiasedSource(t *testing.T) {
	// p = 0.7: min-entropy ≈ −log2(0.7) = 0.5146 bits/bit.
	s := trng.Read(trng.NewBiased(0.7, 2), 1<<20)
	e, err := MostCommonValue(s)
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Log2(0.7)
	if math.Abs(e.MinEntropy-want) > 0.01 {
		t.Errorf("MCV min-entropy %.4f, want ≈ %.4f", e.MinEntropy, want)
	}
}

func TestMCVStuckSourceZeroEntropy(t *testing.T) {
	s := trng.Read(trng.NewStuckAt(1), 4096)
	e, err := MostCommonValue(s)
	if err != nil {
		t.Fatal(err)
	}
	if e.MinEntropy != 0 {
		t.Errorf("stuck source min-entropy %.4f, want 0", e.MinEntropy)
	}
}

func TestMarkovIdealSource(t *testing.T) {
	s := trng.Read(trng.NewIdeal(3), 1<<20)
	e, err := Markov(s)
	if err != nil {
		t.Fatal(err)
	}
	if e.MinEntropy < 0.98 {
		t.Errorf("ideal source Markov min-entropy %.4f, want ≈ 1", e.MinEntropy)
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if math.Abs(e.T[a][b]-0.5) > 0.01 {
				t.Errorf("T[%d][%d] = %.4f, want ≈ 0.5", a, b, e.T[a][b])
			}
		}
	}
}

func TestMarkovStickySource(t *testing.T) {
	// stick = 0.8: the most probable path repeats the same symbol, so the
	// per-step likelihood approaches 0.8 and the min-entropy
	// ≈ −log2(0.8) = 0.3219 — far below what the MCV estimate sees
	// (the source is balanced, so MCV says ≈ 1 bit).
	s := trng.Read(trng.NewMarkov(0.8, 4), 1<<20)
	me, err := Markov(s)
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Log2(0.8)
	if math.Abs(me.MinEntropy-want) > 0.02 {
		t.Errorf("Markov min-entropy %.4f, want ≈ %.4f", me.MinEntropy, want)
	}
	mcv, err := MostCommonValue(s)
	if err != nil {
		t.Fatal(err)
	}
	if mcv.MinEntropy < 0.95 {
		t.Errorf("MCV min-entropy %.4f — should be blind to correlation", mcv.MinEntropy)
	}
	if me.MinEntropy >= mcv.MinEntropy {
		t.Error("Markov estimate should be far below MCV for a sticky source")
	}
}

func TestMarkovLockedOscillator(t *testing.T) {
	// A locked oscillator emits a near-deterministic quasi-periodic
	// pattern (phase advances 0.37 per sample). Its true min-entropy is
	// ≈ 0, but a *first-order* Markov model cannot capture memory longer
	// than one bit, so the estimate only drops to ≈ 0.44 — a documented
	// limitation of the estimator (and a reason the statistical monitor's
	// serial/template tests matter: they see the longer structure and
	// reject the stream outright).
	ro := trng.NewRingOscillator(100.37, 0.001, 5)
	s := trng.Read(ro, 1<<18)
	e, err := Markov(s)
	if err != nil {
		t.Fatal(err)
	}
	if e.MinEntropy > 0.6 {
		t.Errorf("locked oscillator Markov min-entropy %.4f, want visibly reduced (< 0.6)", e.MinEntropy)
	}
	if e.MinEntropy < 0.2 {
		t.Errorf("Markov min-entropy %.4f unexpectedly low — the first-order model should not see the full structure", e.MinEntropy)
	}
}

func TestEntropyEstimatorsShortInput(t *testing.T) {
	s := trng.Read(trng.NewIdeal(6), 1)
	if _, err := MostCommonValue(s); err == nil {
		t.Error("MCV accepted a 1-bit sequence")
	}
	if _, err := Markov(s); err == nil {
		t.Error("Markov accepted a 1-bit sequence")
	}
}

func TestMarkovDegenerateAllOnes(t *testing.T) {
	s := trng.Read(trng.NewStuckAt(1), 1024)
	e, err := Markov(s)
	if err != nil {
		t.Fatal(err)
	}
	if e.MinEntropy > 0.01 {
		t.Errorf("all-ones Markov min-entropy %.4f, want ≈ 0", e.MinEntropy)
	}
}
