package sp80090b

import (
	"fmt"
	"math"

	"repro/internal/bitstream"
)

// This file implements two of SP800-90B's min-entropy estimators for binary
// sources: the most-common-value estimate and the Markov estimate. The
// repository uses them to validate the TRNG defect models (a p-biased
// source must estimate ≈ −log2(max(p,1−p)) bits/bit; a sticky Markov
// source ≈ −log2(stick)) and to relate the monitor's verdicts to the
// entropy the source actually delivers.

// MCVEstimate is the most-common-value min-entropy estimate (SP800-90B
// §6.3.1): a conservative bound from the frequency of the most common
// symbol, using the upper end of a 99 % confidence interval.
type MCVEstimate struct {
	// PHat is the observed frequency of the most common value.
	PHat float64
	// PUpper is the 99 % upper confidence bound on that frequency.
	PUpper float64
	// MinEntropy is −log2(PUpper) bits per bit.
	MinEntropy float64
}

// MostCommonValue computes the MCV estimate over a sequence.
func MostCommonValue(s *bitstream.Sequence) (*MCVEstimate, error) {
	n := s.Len()
	if n < 2 {
		return nil, fmt.Errorf("sp80090b: sequence too short for entropy estimation")
	}
	ones := s.Ones()
	count := ones
	if n-ones > count {
		count = n - ones
	}
	return mcvFromCounts(count, n), nil
}

// mcvFromCounts is the shared count-to-estimate arithmetic: count is the
// occurrence count of the most common value among n bits. Both the batch
// and the sliding-window paths call it, which is what makes the online
// estimate bit-identical to the batch one over the same bits.
func mcvFromCounts(count, n int) *MCVEstimate {
	pHat := float64(count) / float64(n)
	// z for a one-sided 99% bound.
	const z99 = 2.5758293035489004
	pUpper := pHat + z99*math.Sqrt(pHat*(1-pHat)/float64(n-1))
	if pUpper > 1 {
		pUpper = 1
	}
	minEnt := -math.Log2(pUpper)
	if minEnt < 0 {
		minEnt = 0
	}
	return &MCVEstimate{PHat: pHat, PUpper: pUpper, MinEntropy: minEnt}
}

// MarkovEstimate is the first-order Markov min-entropy estimate (SP800-90B
// §6.3.3, binary case): transition probabilities bound the likelihood of
// the most probable long output sequence.
type MarkovEstimate struct {
	// P0 and P1 are the stationary estimates P(0), P(1).
	P0, P1 float64
	// T holds the transition probabilities T[a][b] = P(next=b | cur=a).
	T [2][2]float64
	// MinEntropy is the per-bit min-entropy bound.
	MinEntropy float64
}

// Markov computes the Markov estimate over a sequence.
func Markov(s *bitstream.Sequence) (*MarkovEstimate, error) {
	n := s.Len()
	if n < 3 {
		return nil, fmt.Errorf("sp80090b: sequence too short for Markov estimation")
	}
	var trans [2][2]float64
	for i := 0; i+1 < n; i++ {
		trans[s.Bit(i)][s.Bit(i+1)]++
	}
	return markovFromCounts(trans, float64(s.Ones()), n), nil
}

// markovFromCounts is the shared count-to-estimate arithmetic: trans
// holds the adjacent-pair counts over n bits (n−1 pairs), ones the ones
// count. Shared by the batch and sliding-window paths for bit-identical
// estimates over the same bits.
func markovFromCounts(trans [2][2]float64, ones float64, n int) *MarkovEstimate {
	var from [2]float64
	for a := 0; a < 2; a++ {
		from[a] = trans[a][0] + trans[a][1]
	}
	e := &MarkovEstimate{}
	e.P1 = ones / float64(n)
	e.P0 = 1 - e.P1
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if from[a] == 0 {
				// Degenerate input: the symbol never occurs; assign the
				// worst case (deterministic transition).
				e.T[a][b] = 1
				continue
			}
			e.T[a][b] = trans[a][b] / from[a]
		}
	}
	// The most probable sequence of length L starts at the more probable
	// state and follows the highest-probability transitions. Following
	// SP800-90B's simplification for the binary case, evaluate the
	// likelihood of the most probable 128-step path and normalize.
	const steps = 128
	best := math.Inf(-1)
	for start := 0; start < 2; start++ {
		p0 := e.P0
		if start == 1 {
			p0 = e.P1
		}
		if p0 == 0 {
			continue
		}
		// Dynamic program over the two states for the max-likelihood
		// path in log space.
		var cur [2]float64
		cur[0], cur[1] = math.Inf(-1), math.Inf(-1)
		cur[start] = math.Log2(p0)
		for i := 1; i < steps; i++ {
			var next [2]float64
			for b := 0; b < 2; b++ {
				next[b] = math.Inf(-1)
				for a := 0; a < 2; a++ {
					if e.T[a][b] == 0 {
						continue
					}
					cand := cur[a] + math.Log2(e.T[a][b])
					if cand > next[b] {
						next[b] = cand
					}
				}
			}
			cur = next
		}
		for b := 0; b < 2; b++ {
			if cur[b] > best {
				best = cur[b]
			}
		}
	}
	e.MinEntropy = -best / steps
	if e.MinEntropy > 1 {
		e.MinEntropy = 1
	}
	return e
}
