package sp80090b

import (
	"math"
	"testing"

	"repro/internal/hwsim"
	"repro/internal/trng"
)

func TestRCTCutoffFullEntropy(t *testing.T) {
	// H = 1, alpha = 2^-20: C = 1 + 20 = 21 (the standard's worked
	// binary example).
	rct, err := NewRepetitionCountTest(1, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if rct.Cutoff() != 21 {
		t.Errorf("cutoff = %d, want 21", rct.Cutoff())
	}
}

func TestRCTCutoffHalfEntropy(t *testing.T) {
	// H = 0.5: C = 1 + ceil(20/0.5) = 41.
	rct, err := NewRepetitionCountTest(0.5, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if rct.Cutoff() != 41 {
		t.Errorf("cutoff = %d, want 41", rct.Cutoff())
	}
}

func TestRCTAlarmsOnStuckSource(t *testing.T) {
	rct, err := NewRepetitionCountTest(1, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	fired := -1
	for i := 0; i < 100; i++ {
		if rct.Feed(1) {
			fired = i
			break
		}
	}
	if fired != rct.Cutoff()-1 {
		t.Errorf("alarm at bit %d, want %d (cutoff-1)", fired, rct.Cutoff()-1)
	}
}

func TestRCTQuietOnIdealSource(t *testing.T) {
	rct, err := NewRepetitionCountTest(1, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	src := trng.NewIdeal(1)
	for i := 0; i < 1_000_000; i++ {
		b, _ := src.ReadBit()
		rct.Feed(b)
	}
	// Expected alarms ≈ 10^6 · 2^-20 ≈ 0.95; more than 5 is wrong.
	if rct.Alarms() > 5 {
		t.Errorf("%d alarms on 10^6 ideal bits", rct.Alarms())
	}
}

func TestRCTMissesMildBias(t *testing.T) {
	// A 60% biased source almost never produces 21-bit runs — the RCT is
	// blind to it (the statistical monitor is not; see the detection
	// comparison in bench_test.go).
	rct, err := NewRepetitionCountTest(1, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	src := trng.NewBiased(0.6, 2)
	for i := 0; i < 200_000; i++ {
		b, _ := src.ReadBit()
		rct.Feed(b)
	}
	if rct.Alarms() > 2 {
		t.Errorf("RCT unexpectedly alarmed %d times on 60%% bias", rct.Alarms())
	}
}

func TestAPTCutoffSane(t *testing.T) {
	apt, err := NewAdaptiveProportionTest(1, DefaultAlpha, DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	// For W=1024, H=1, alpha=2^-20 the standard's cutoff is in the low
	// 600s (binomial upper tail at 1023 trials).
	if apt.Cutoff() < 580 || apt.Cutoff() > 650 {
		t.Errorf("cutoff = %d, outside the plausible band", apt.Cutoff())
	}
}

func TestAPTAlarmsOnStuckSource(t *testing.T) {
	apt, err := NewAdaptiveProportionTest(1, DefaultAlpha, DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	fired := -1
	for i := 0; i < 2*DefaultWindow; i++ {
		if apt.Feed(0) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("APT never alarmed on a stuck source")
	}
	if fired != apt.Cutoff()-1 {
		t.Errorf("alarm at bit %d, want %d", fired, apt.Cutoff()-1)
	}
}

func TestAPTAlarmsOnHeavyBias(t *testing.T) {
	apt, err := NewAdaptiveProportionTest(1, DefaultAlpha, DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	src := trng.NewBiased(0.8, 3)
	alarmed := false
	for i := 0; i < 100_000 && !alarmed; i++ {
		b, _ := src.ReadBit()
		if apt.Feed(b) {
			alarmed = true
		}
	}
	if !alarmed {
		t.Error("APT never alarmed on 80% bias")
	}
}

func TestAPTQuietOnIdealSource(t *testing.T) {
	apt, err := NewAdaptiveProportionTest(1, DefaultAlpha, DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	src := trng.NewIdeal(4)
	for i := 0; i < 1_000_000; i++ {
		b, _ := src.ReadBit()
		apt.Feed(b)
	}
	if apt.Alarms() > 5 {
		t.Errorf("%d alarms on 10^6 ideal bits", apt.Alarms())
	}
}

func TestAPTMissesMildBias(t *testing.T) {
	// 52% bias: the window count centers at ~533, 3.5σ below the ~589
	// cutoff — the APT stays quiet, while the statistical monitor flags
	// the same source from a single 65536-bit sequence (|S| ≈ 2600 vs
	// the ~660 monobit bound). This is the quantitative gap between the
	// minimal SP800-90B health tests and the paper's monitor.
	apt, err := NewAdaptiveProportionTest(1, DefaultAlpha, DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	src := trng.NewBiased(0.52, 5)
	for i := 0; i < 500_000; i++ {
		b, _ := src.ReadBit()
		apt.Feed(b)
	}
	if apt.Alarms() > 2 {
		t.Errorf("APT alarmed %d times on 52%% bias", apt.Alarms())
	}
}

func TestBinomialCutoffAgainstDirectSum(t *testing.T) {
	// Small case checked by brute force: n=20, p=0.5, alpha=0.01.
	c, err := binomialCutoff(20, 0.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	tail := func(from int) float64 {
		sum := 0.0
		for k := from; k <= 20; k++ {
			sum += binom(20, k) * math.Pow(0.5, 20)
		}
		return sum
	}
	if tail(c) > 0.01 {
		t.Errorf("tail(%d) = %g > alpha", c, tail(c))
	}
	if tail(c-1) <= 0.01 {
		t.Errorf("cutoff %d not minimal", c)
	}
}

func binom(n, k int) float64 {
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(lgN - lgK - lgNK)
}

func TestParameterValidation(t *testing.T) {
	if _, err := NewRepetitionCountTest(0, DefaultAlpha); err == nil {
		t.Error("H=0 accepted")
	}
	if _, err := NewRepetitionCountTest(1, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewAdaptiveProportionTest(1.5, DefaultAlpha, 1024); err == nil {
		t.Error("H>1 accepted")
	}
	if _, err := NewAdaptiveProportionTest(1, DefaultAlpha, 4); err == nil {
		t.Error("tiny window accepted")
	}
}

func TestResetClearsState(t *testing.T) {
	rct, _ := NewRepetitionCountTest(1, DefaultAlpha)
	for i := 0; i < 30; i++ {
		rct.Feed(1)
	}
	rct.Reset()
	if rct.Alarms() != 0 {
		t.Error("RCT reset did not clear alarms")
	}
	if rct.Feed(1) {
		t.Error("RCT alarmed immediately after reset")
	}
}

func TestHealthBlockAreaIsTiny(t *testing.T) {
	hb, err := NewHealthBlock(1, DefaultAlpha, DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	est := hwsim.EstimateFPGA(hb.Netlist())
	if est.Slices > 30 {
		t.Errorf("health block needs %d slices — should be far under the 54-slice light monitor", est.Slices)
	}
	t.Logf("SP800-90B health block: %d slices, %d FF, %d LUT", est.Slices, est.FFs, est.LUTs)
}

func TestHealthBlockEndToEnd(t *testing.T) {
	hb, err := NewHealthBlock(1, DefaultAlpha, DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal stream: no alarms.
	src := trng.NewIdeal(6)
	for i := 0; i < 100_000; i++ {
		b, _ := src.ReadBit()
		hb.Feed(b)
	}
	r, a := hb.Alarms()
	if r > 1 || a > 1 {
		t.Errorf("alarms on ideal stream: rct=%d apt=%d", r, a)
	}
	// Stuck stream: both alarm quickly.
	hb.Reset()
	for i := 0; i < 2*DefaultWindow; i++ {
		hb.Feed(1)
	}
	r, a = hb.Alarms()
	if r == 0 || a == 0 {
		t.Errorf("stuck stream: rct=%d apt=%d alarms", r, a)
	}
}
