package sp80090b

import (
	"repro/internal/hwsim"
)

// HealthBlock is the bit-serial hardware realization of the two SP800-90B
// health tests: a run counter with a comparator (RCT) and a window counter
// pair with a comparator (APT). It exists to quantify the area contrast
// with the paper's NIST-suite monitor — the minimal standard-compliant
// health tests cost a few dozen LUTs, but catch only catastrophic defects.
type HealthBlock struct {
	nl  *hwsim.Netlist
	rct *RepetitionCountTest
	apt *AdaptiveProportionTest

	// structural primitives (behaviour runs through rct/apt; these carry
	// the netlist resources a synthesized version would occupy)
	runCounter *hwsim.Counter
	winCounter *hwsim.Counter
	occCounter *hwsim.Counter
}

// NewHealthBlock builds the hardware health-test block for the given
// entropy assertion and false-positive probability.
func NewHealthBlock(h, alpha float64, window int) (*HealthBlock, error) {
	rct, err := NewRepetitionCountTest(h, alpha)
	if err != nil {
		return nil, err
	}
	apt, err := NewAdaptiveProportionTest(h, alpha, window)
	if err != nil {
		return nil, err
	}
	b := &HealthBlock{
		nl:  hwsim.NewNetlist("sp80090b-health"),
		rct: rct,
		apt: apt,
	}
	b.runCounter = hwsim.NewCounter(b.nl, "rct_run", uint64(rct.Cutoff()))
	hwsim.NewRegister(b.nl, "rct_last", 1)
	hwsim.NewEqComparator(b.nl, "rct_cmp", widthOf(uint64(rct.Cutoff())))
	b.winCounter = hwsim.NewCounter(b.nl, "apt_window", uint64(window))
	b.occCounter = hwsim.NewCounter(b.nl, "apt_count", uint64(window))
	hwsim.NewRegister(b.nl, "apt_first", 1)
	hwsim.NewEqComparator(b.nl, "apt_cmp", widthOf(uint64(window)))
	b.nl.SetMuxWords(2) // alarm counters exposed as two words
	return b, nil
}

func widthOf(max uint64) int {
	w := 1
	for max>>uint(w) != 0 {
		w++
	}
	return w
}

// Netlist returns the structural inventory for area estimation.
func (b *HealthBlock) Netlist() *hwsim.Netlist { return b.nl }

// Feed clocks one bit through both tests; it reports whether either test
// alarmed on this bit.
func (b *HealthBlock) Feed(bit byte) (rctAlarm, aptAlarm bool) {
	return b.rct.Feed(bit), b.apt.Feed(bit)
}

// Alarms returns the cumulative alarm counts.
func (b *HealthBlock) Alarms() (rct, apt int) {
	return b.rct.Alarms(), b.apt.Alarms()
}

// Reset clears both tests.
func (b *HealthBlock) Reset() {
	b.rct.Reset()
	b.apt.Reset()
}
