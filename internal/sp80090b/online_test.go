package sp80090b

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/trng"
)

// windowSeq builds a Sequence holding the last window bits of the fed
// stream, for batch comparison.
func windowSeq(stream []byte, window int) *bitstream.Sequence {
	return bitstream.FromBits(stream[len(stream)-window:])
}

// TestOnlineMatchesBatch proves the sliding-window estimates are
// bit-identical to the batch estimators run over the window's bits, at
// every chunk-aligned position, over healthy and defective sources.
func TestOnlineMatchesBatch(t *testing.T) {
	const window = 1024
	srcs := map[string]trng.Source{
		"ideal":  trng.NewIdeal(31),
		"biased": trng.NewBiased(0.7, 32),
		"markov": trng.NewMarkov(0.8, 33),
		"stuck":  trng.NewStuckAt(1),
	}
	for name, src := range srcs {
		est, err := NewOnlineEstimator(window)
		if err != nil {
			t.Fatal(err)
		}
		var stream []byte
		rng := rand.New(rand.NewSource(int64(len(name))))
		for fed := 0; fed < 4*window; {
			// Ragged word widths exercise the chunk accumulator.
			nb := 64
			if rng.Intn(3) == 0 {
				nb = 1 + rng.Intn(64)
			}
			var w uint64
			for i := 0; i < nb; i++ {
				b, err := src.ReadBit()
				if err != nil {
					b = 0
				}
				w |= uint64(b) << uint(i)
				stream = append(stream, b)
			}
			est.Push(w, nb)
			fed += nb

			if !est.Primed() || est.BitsSeen()%64 != 0 {
				continue
			}
			seq := windowSeq(stream[:est.BitsSeen()-int64(est.BitsSeen()%64)], window)
			wantMCV, err := MostCommonValue(seq)
			if err != nil {
				t.Fatal(err)
			}
			gotMCV, err := est.MCV()
			if err != nil {
				t.Fatal(err)
			}
			if *gotMCV != *wantMCV {
				t.Fatalf("%s@%d: MCV online %+v != batch %+v", name, est.BitsSeen(), gotMCV, wantMCV)
			}
			wantMk, err := Markov(seq)
			if err != nil {
				t.Fatal(err)
			}
			gotMk, err := est.Markov()
			if err != nil {
				t.Fatal(err)
			}
			if *gotMk != *wantMk {
				t.Fatalf("%s@%d: Markov online %+v != batch %+v", name, est.BitsSeen(), gotMk, wantMk)
			}
			if want := min2(wantMCV.MinEntropy, wantMk.MinEntropy); est.MinEntropy() != want {
				t.Fatalf("%s@%d: MinEntropy %v != %v", name, est.BitsSeen(), est.MinEntropy(), want)
			}
		}
	}
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// TestOnlineUnprimed pins the before-window-full contract.
func TestOnlineUnprimed(t *testing.T) {
	est, err := NewOnlineEstimator(256)
	if err != nil {
		t.Fatal(err)
	}
	est.Push(^uint64(0), 64)
	if est.Primed() {
		t.Fatal("primed after 64 of 256 bits")
	}
	if _, err := est.MCV(); err == nil {
		t.Fatal("MCV before primed did not error")
	}
	if _, err := est.Markov(); err == nil {
		t.Fatal("Markov before primed did not error")
	}
	if est.MinEntropy() != -1 {
		t.Fatalf("MinEntropy before primed = %v, want -1", est.MinEntropy())
	}
}

// TestOnlineWindowSlides proves old bits really leave the estimate: a
// biased prefix followed by a window of stuck bits must estimate exactly
// like a pure stuck window (min-entropy 0).
func TestOnlineWindowSlides(t *testing.T) {
	est, err := NewOnlineEstimator(128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		est.Push(uint64(rng.Int63())&1, 1)
	}
	for i := 0; i < 200; i++ {
		est.Push(1, 1)
	}
	// 500 bits fed: not chunk-aligned yet — push 12 more stuck bits.
	est.Push(0xFFF, 12)
	mcv, err := est.MCV()
	if err != nil {
		t.Fatal(err)
	}
	if mcv.PHat != 1 || mcv.MinEntropy != 0 {
		t.Fatalf("stuck window: MCV %+v, want pHat=1 minEntropy=0", mcv)
	}
	mk, err := est.Markov()
	if err != nil {
		t.Fatal(err)
	}
	if mk.MinEntropy != 0 {
		t.Fatalf("stuck window: Markov %+v, want minEntropy=0", mk)
	}
}

// TestOnlineReset proves Reset restores a fresh estimator's behavior.
func TestOnlineReset(t *testing.T) {
	a, err := NewOnlineEstimator(128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOnlineEstimator(128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		a.Push(uint64(rng.Int63()), 64)
	}
	a.Reset()
	if a.BitsSeen() != 0 || a.Primed() {
		t.Fatal("reset did not clear state")
	}
	rng2 := rand.New(rand.NewSource(10))
	for i := 0; i < 10; i++ {
		w := uint64(rng2.Int63())
		a.Push(w, 57)
		b.Push(w, 57)
	}
	am := a.MinEntropy()
	bm := b.MinEntropy()
	if am != bm {
		t.Fatalf("reset estimator diverged: %v vs %v", am, bm)
	}
}
