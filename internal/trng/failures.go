package trng

import (
	"fmt"
	"math/rand"
)

// This file models total failures and slow degradations of an entropy
// source, the two classes the paper's introduction distinguishes: "quick
// tests for fast detection of the total failure of the entropy source, as
// well as slow tests for the detection of long term statistical
// weaknesses" — plus the operational failure class neither statistical
// test sees: reads that fail outright (Erratic).

// StuckAt models a total failure where the output is stuck at a constant
// level — e.g. the probing attack the paper describes, where the random
// signal wire is cut or grounded.
type StuckAt struct {
	Level byte
}

// NewStuckAt returns a source stuck at the given level (0 or 1).
func NewStuckAt(level byte) *StuckAt { return &StuckAt{Level: level & 1} }

// Name implements Source.
func (s *StuckAt) Name() string { return "stuck-at" }

// ReadBit implements Source.
func (s *StuckAt) ReadBit() (byte, error) { return s.Level, nil }

// Drift models aging: the bias of the source drifts linearly from its
// starting value toward EndP over LifetimeBits bits, then stays there.
type Drift struct {
	rng          *rand.Rand
	StartP       float64
	EndP         float64
	LifetimeBits int
	emitted      int
}

// NewDrift returns an aging source whose P(1) moves from startP to endP
// over lifetimeBits bits.
func NewDrift(startP, endP float64, lifetimeBits int, seed int64) *Drift {
	return &Drift{
		rng:          rand.New(rand.NewSource(seed)),
		StartP:       startP,
		EndP:         endP,
		LifetimeBits: lifetimeBits,
	}
}

// Name implements Source.
func (s *Drift) Name() string { return "aging-drift" }

// ReadBit implements Source.
func (s *Drift) ReadBit() (byte, error) {
	frac := 1.0
	if s.emitted < s.LifetimeBits {
		frac = float64(s.emitted) / float64(s.LifetimeBits)
	}
	p := s.StartP + (s.EndP-s.StartP)*frac
	s.emitted++
	if s.rng.Float64() < p {
		return 1, nil
	}
	return 0, nil
}

// Erratic delivers bits from Inner but fails every Period-th ReadBit call
// with an error wrapping ErrTransient — a fully deterministic model of a
// flaky readout path (loose probe, marginal sampling flip-flop). The
// failed call consumes no bit: a retry after the error returns exactly the
// bit the failed call would have, so the delivered stream is Inner's
// stream unchanged and a retrying caller sees no statistical difference.
type Erratic struct {
	Inner Source
	// Period is the call period of the fault: calls Period, 2·Period, …
	// (1-based) fail. Period ≤ 1 makes every call fail.
	Period int

	calls  int
	faults int
}

// NewErratic returns a source whose every period-th read fails transiently.
func NewErratic(inner Source, period int) *Erratic {
	return &Erratic{Inner: inner, Period: period}
}

// Name implements Source.
func (s *Erratic) Name() string { return "erratic(" + s.Inner.Name() + ")" }

// ReadBit implements Source.
func (s *Erratic) ReadBit() (byte, error) {
	s.calls++
	if s.Period <= 1 || s.calls%s.Period == 0 {
		s.faults++
		return 0, fmt.Errorf("erratic: dropped read %d: %w", s.calls, ErrTransient)
	}
	return s.Inner.ReadBit()
}

// Faults reports how many reads have failed so far.
func (s *Erratic) Faults() int { return s.faults }

// SwitchAt chains two sources: bits come from Before until switchBit bits
// have been produced, then from After. It models an attack or failure that
// begins at a known point in the stream, which is what the on-the-fly
// detection-latency experiments need.
type SwitchAt struct {
	Before    Source
	After     Source
	SwitchBit int
	emitted   int
}

// NewSwitchAt returns the chained source.
func NewSwitchAt(before, after Source, switchBit int) *SwitchAt {
	return &SwitchAt{Before: before, After: after, SwitchBit: switchBit}
}

// Name implements Source.
func (s *SwitchAt) Name() string {
	return s.Before.Name() + "->" + s.After.Name()
}

// ReadBit implements Source.
func (s *SwitchAt) ReadBit() (byte, error) {
	var b byte
	var err error
	if s.emitted < s.SwitchBit {
		b, err = s.Before.ReadBit()
	} else {
		b, err = s.After.ReadBit()
	}
	s.emitted++
	return b, err
}

// Burst models intermittent interference: windows of burstLen bits from the
// Bad source are injected into the Good stream with probability burstProb
// at each bit boundary.
type Burst struct {
	rng       *rand.Rand
	Good      Source
	Bad       Source
	BurstProb float64
	BurstLen  int
	remaining int
}

// NewBurst returns a bursty source.
func NewBurst(good, bad Source, burstProb float64, burstLen int, seed int64) *Burst {
	return &Burst{
		rng:       rand.New(rand.NewSource(seed)),
		Good:      good,
		Bad:       bad,
		BurstProb: burstProb,
		BurstLen:  burstLen,
	}
}

// Name implements Source.
func (s *Burst) Name() string { return "bursty(" + s.Good.Name() + "," + s.Bad.Name() + ")" }

// ReadBit implements Source.
func (s *Burst) ReadBit() (byte, error) {
	if s.remaining == 0 && s.rng.Float64() < s.BurstProb {
		s.remaining = s.BurstLen
	}
	if s.remaining > 0 {
		s.remaining--
		return s.Bad.ReadBit()
	}
	return s.Good.ReadBit()
}
