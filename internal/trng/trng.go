// Package trng models true random number generators and the failure and
// attack modes the on-the-fly tests must detect. The paper's evaluation
// platform monitors a physical TRNG on the same FPGA; here the physical
// entropy sources are replaced by parametric models that produce the same
// classes of bit-stream defects — bias, correlation, oscillator lock-in,
// total failure, slow aging drift — so the detection paths of the platform
// are exercised end to end. Operational faults (dropped reads, stalls) are
// part of the model too: see ErrTransient, Erratic, and the composable
// injectors in internal/faultinject.
//
// All sources are deterministic functions of their seed, so every
// experiment in the repository is reproducible.
package trng

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/bitstream"
)

// Source is a bit-producing entropy source. Statistical failures are
// modelled as *bad bits* — a defective source still delivers a stream, just
// a non-random one — but ReadBit may also fail operationally: a flaky
// readout path drops a read, a dying oscillator stops toggling. An error
// wrapping ErrTransient means the read failed but a retry may succeed and
// no bit was consumed; any other error means the source is gone for good.
// The purely statistical models in this package (Ideal, Biased, Markov,
// RingOscillator, StuckAt, Drift) never error; Erratic and the wrappers in
// internal/faultinject do.
type Source interface {
	bitstream.BitReader
	// Name identifies the source model for reports.
	Name() string
}

// ErrTransient marks a recoverable read failure: the bit was not delivered,
// no stream position was consumed, and retrying the read may succeed.
// Supervisory layers test for it with errors.Is.
var ErrTransient = errors.New("trng: transient read failure")

// Read drains n bits from a source into a sequence. It is a convenience
// for the infallible statistical models; read errors truncate the
// sequence silently, so fallible sources should be drained through
// bitstream.ReadAll (or a supervisor) instead.
func Read(src Source, n int) *bitstream.Sequence {
	//trnglint:allow errdrop silent truncation is this helper's documented contract; fallible sources must use bitstream.ReadAll or a Supervisor
	s, _ := bitstream.ReadAll(src, n)
	return s
}

// Ideal is an unbiased, independent bit source — the H₀ reference. It draws
// from a seeded PRNG, which is statistically ideal for every test in the
// suite.
type Ideal struct {
	rng *rand.Rand
}

// NewIdeal returns an ideal source with the given seed.
func NewIdeal(seed int64) *Ideal {
	return &Ideal{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Source.
func (s *Ideal) Name() string { return "ideal" }

// ReadBit implements Source.
func (s *Ideal) ReadBit() (byte, error) { return byte(s.rng.Int63() & 1), nil }

// Biased emits ones with a fixed probability p, modelling a TRNG whose
// comparator threshold or duty cycle has shifted.
type Biased struct {
	rng *rand.Rand
	p   float64
}

// NewBiased returns a source with P(1) = p.
func NewBiased(p float64, seed int64) *Biased {
	return &Biased{rng: rand.New(rand.NewSource(seed)), p: p}
}

// Name implements Source.
func (s *Biased) Name() string { return "biased" }

// ReadBit implements Source.
func (s *Biased) ReadBit() (byte, error) {
	if s.rng.Float64() < s.p {
		return 1, nil
	}
	return 0, nil
}

// Markov is a two-state Markov chain: the next bit equals the previous one
// with probability stick. stick = 0.5 is ideal; stick > 0.5 models
// bandwidth-limited sampling (correlated bits); stick < 0.5 models an
// oscillating artefact.
type Markov struct {
	rng   *rand.Rand
	stick float64
	last  byte
}

// NewMarkov returns a Markov source with the given persistence probability.
func NewMarkov(stick float64, seed int64) *Markov {
	return &Markov{rng: rand.New(rand.NewSource(seed)), stick: stick}
}

// Name implements Source.
func (s *Markov) Name() string { return "markov" }

// ReadBit implements Source.
func (s *Markov) ReadBit() (byte, error) {
	if s.rng.Float64() >= s.stick {
		s.last ^= 1
	}
	return s.last, nil
}

// RingOscillator models an elementary ring-oscillator TRNG: a free-running
// oscillator sampled at a fixed rate, with Gaussian phase jitter
// accumulating between samples. The output bit is the oscillator's level at
// the sampling instant.
//
// Ratio is the (irrational in practice) ratio of sampling period to
// oscillator period; JitterRMS is the standard deviation of the phase noise
// accumulated per sample, in oscillator periods. Large jitter gives full
// entropy; jitter near zero degenerates into a deterministic pattern — the
// condition a frequency-injection attack creates.
//
// The residual lag-1 correlation of the sampled bits scales like the mod-1
// discrepancy of the per-sample phase increment, ≈ exp(−2π²·JitterRMS²):
// at JitterRMS = 0.5 the ~0.7 % residual is reliably caught by the runs
// and serial tests on 2^20-bit sequences (a realistic weak-entropy
// condition), while JitterRMS ≥ 0.8 is statistically ideal at every length
// the platform supports.
type RingOscillator struct {
	rng       *rand.Rand
	phase     float64 // current phase in oscillator periods (mod 1)
	Ratio     float64
	JitterRMS float64
}

// NewRingOscillator returns a ring-oscillator source. Typical healthy
// values: ratio ≈ 100.37, jitterRMS ≥ 0.8.
func NewRingOscillator(ratio, jitterRMS float64, seed int64) *RingOscillator {
	return &RingOscillator{
		rng:       rand.New(rand.NewSource(seed)),
		Ratio:     ratio,
		JitterRMS: jitterRMS,
	}
}

// Name implements Source.
func (s *RingOscillator) Name() string { return "ring-oscillator" }

// ReadBit implements Source.
func (s *RingOscillator) ReadBit() (byte, error) {
	s.phase += s.Ratio + s.rng.NormFloat64()*s.JitterRMS
	s.phase -= math.Floor(s.phase)
	if s.phase < 0.5 {
		return 1, nil
	}
	return 0, nil
}

// Lock models a frequency-injection attack on the oscillator (Markettos &
// Moore, CHES 2009): the oscillator locks to the injected signal, the
// accumulated jitter collapses, and the output becomes (near-)periodic.
// residualJitter is the tiny jitter remaining under lock.
func (s *RingOscillator) Lock(residualJitter float64) {
	s.JitterRMS = residualJitter
}

// Unlock restores healthy jitter.
func (s *RingOscillator) Unlock(jitterRMS float64) {
	s.JitterRMS = jitterRMS
}
