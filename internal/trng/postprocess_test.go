package trng

import (
	"math"
	"testing"

	"repro/internal/nist"
)

func TestVonNeumannRemovesBias(t *testing.T) {
	// Raw: 70% ones — fails everything. Corrected: unbiased.
	corrected := NewVonNeumann(NewBiased(0.7, 1))
	s := Read(corrected, 65536)
	bias := float64(s.Ones()) / 65536
	if math.Abs(bias-0.5) > 0.01 {
		t.Errorf("corrected bias = %.4f, want 0.5", bias)
	}
	r, err := nist.Frequency(s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("frequency test rejected von-Neumann-corrected source (P=%g)", r.MinP())
	}
}

func TestVonNeumannMotivatesRawMonitoring(t *testing.T) {
	// The AIS-31 rationale: the same defective source passes the tests
	// after conditioning — so the monitor must tap the raw bits.
	raw := Read(NewBiased(0.7, 2), 65536)
	rRaw, err := nist.Frequency(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rRaw.Pass(0.01) {
		t.Fatal("raw 70% biased source unexpectedly passed")
	}
	cooked := Read(NewVonNeumann(NewBiased(0.7, 2)), 65536)
	rCooked, err := nist.Frequency(cooked)
	if err != nil {
		t.Fatal(err)
	}
	if !rCooked.Pass(0.01) {
		t.Errorf("conditioned source failed (P=%g) — corrector broken", rCooked.MinP())
	}
}

func TestVonNeumannOutputIndependent(t *testing.T) {
	s := Read(NewVonNeumann(NewBiased(0.65, 3)), 65536)
	r, err := nist.Serial(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("serial test rejected von Neumann output (P=%g)", r.MinP())
	}
}

func TestXORCompressorSuppressesBias(t *testing.T) {
	// For input P(1) = p, the XOR-k output satisfies
	// E[(−1)^out] = (1−2p)^k, i.e. P(out=1) = (1 − (1−2p)^k)/2.
	// p = 0.6: XOR-2 → 0.48, XOR-4 → 0.4992.
	for _, c := range []struct {
		k    int
		want float64
	}{
		{2, 0.48},
		{4, 0.4992},
	} {
		s := Read(NewXORCompressor(NewBiased(0.6, 4), c.k), 200_000)
		bias := float64(s.Ones()) / 200_000
		if math.Abs(bias-c.want) > 0.01 {
			t.Errorf("XOR-%d bias = %.4f, want ≈ %.4f", c.k, bias, c.want)
		}
	}
}

func TestXORCompressorMinimumFactor(t *testing.T) {
	x := NewXORCompressor(NewIdeal(5), 0)
	if x.Factor != 2 {
		t.Errorf("Factor = %d, want clamped to 2", x.Factor)
	}
}

func TestPostprocessorNames(t *testing.T) {
	if got := NewVonNeumann(NewBiased(0.6, 1)).Name(); got != "vonneumann(biased)" {
		t.Errorf("Name = %q", got)
	}
	if got := NewXORCompressor(NewIdeal(1), 2).Name(); got != "xor(ideal)" {
		t.Errorf("Name = %q", got)
	}
}

func TestVonNeumannStuckSourceNeverEmits(t *testing.T) {
	// A stuck source produces only 00/11 pairs: the corrector emits
	// nothing. Total failure upstream shows as a stalled corrector — the
	// monitor on the raw bits sees it immediately instead.
	v := NewVonNeumann(NewStuckAt(1))
	done := make(chan struct{})
	go func() {
		// Bound the experiment: a real implementation would time out.
		src := &boundedSource{inner: v, limit: 100000}
		_, err := src.ReadBit()
		if err == nil {
			t.Error("corrector emitted a bit from a stuck source")
		}
		close(done)
	}()
	<-done
}

// boundedSource errors after limit raw reads to make the stall observable.
type boundedSource struct {
	inner *VonNeumann
	limit int
}

func (b *boundedSource) ReadBit() (byte, error) {
	wrapped := &countingSource{inner: b.inner.Raw, limit: b.limit}
	v := &VonNeumann{Raw: wrapped}
	return v.ReadBit()
}

type countingSource struct {
	inner Source
	n     int
	limit int
}

func (c *countingSource) Name() string { return c.inner.Name() }

func (c *countingSource) ReadBit() (byte, error) {
	if c.n >= c.limit {
		return 0, errStalled
	}
	c.n++
	return c.inner.ReadBit()
}

var errStalled = &stallError{}

type stallError struct{}

func (*stallError) Error() string { return "trng: raw source stalled the corrector" }
