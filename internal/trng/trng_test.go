package trng

import (
	"errors"
	"math"
	"testing"

	"repro/internal/nist"
)

func TestIdealIsDeterministic(t *testing.T) {
	a := Read(NewIdeal(42), 1024)
	b := Read(NewIdeal(42), 1024)
	if a.String() != b.String() {
		t.Error("same seed produced different streams")
	}
	c := Read(NewIdeal(43), 1024)
	if a.String() == c.String() {
		t.Error("different seeds produced identical streams")
	}
}

func TestIdealPassesCoreTests(t *testing.T) {
	s := Read(NewIdeal(1), 65536)
	for _, run := range []func() (*nist.Result, error){
		func() (*nist.Result, error) { return nist.Frequency(s) },
		func() (*nist.Result, error) { return nist.Runs(s) },
		func() (*nist.Result, error) { return nist.Serial(s, 4) },
		func() (*nist.Result, error) { return nist.CumulativeSums(s) },
	} {
		r, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if !r.Pass(0.001) {
			t.Errorf("%s rejected the ideal source (P = %g)", r.Name, r.MinP())
		}
	}
}

func TestBiasedHasRequestedBias(t *testing.T) {
	s := Read(NewBiased(0.7, 2), 100_000)
	got := float64(s.Ones()) / float64(s.Len())
	if math.Abs(got-0.7) > 0.01 {
		t.Errorf("measured bias %.3f, want 0.7", got)
	}
}

func TestBiasedFailsFrequencyTest(t *testing.T) {
	s := Read(NewBiased(0.55, 3), 65536)
	r, err := nist.Frequency(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("frequency test passed a 55% biased source")
	}
}

func TestMarkovBalancedButCorrelated(t *testing.T) {
	s := Read(NewMarkov(0.8, 4), 65536)
	// Balanced on average...
	freq, err := nist.Frequency(s)
	if err != nil {
		t.Fatal(err)
	}
	_ = freq // bias may or may not trip; correlation must.
	// ...but the runs test must reject the stickiness.
	r, err := nist.Runs(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("runs test passed a sticky Markov source")
	}
}

func TestMarkovHalfIsIdeal(t *testing.T) {
	s := Read(NewMarkov(0.5, 5), 65536)
	r, err := nist.Serial(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass(0.001) {
		t.Errorf("serial test rejected stick=0.5 Markov source (P = %g)", r.MinP())
	}
}

func TestRingOscillatorWeakJitterDetectedAtLongLength(t *testing.T) {
	// At jitterRMS = 0.5 the residual lag-1 correlation (~0.7 %) is below
	// the noise floor of short sequences but reliably detected by the
	// serial test on 2^20 bits — the "slow tests for long term
	// statistical weaknesses" scenario of the paper's introduction.
	s := Read(NewRingOscillator(100.37, 0.5, 2), 1<<20)
	r, err := nist.Serial(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.05) {
		t.Errorf("serial test passed a weak-jitter oscillator at n=2^20 (P=%g)", r.MinP())
	}
}

func TestRingOscillatorHealthyPasses(t *testing.T) {
	s := Read(NewRingOscillator(100.37, 1.0, 6), 65536)
	for _, check := range []struct {
		name string
		run  func() (*nist.Result, error)
	}{
		{"frequency", func() (*nist.Result, error) { return nist.Frequency(s) }},
		{"runs", func() (*nist.Result, error) { return nist.Runs(s) }},
		{"serial", func() (*nist.Result, error) { return nist.Serial(s, 4) }},
	} {
		r, err := check.run()
		if err != nil {
			t.Fatal(err)
		}
		if !r.Pass(0.001) {
			t.Errorf("%s rejected healthy ring oscillator (P = %g)", check.name, r.MinP())
		}
	}
}

func TestRingOscillatorLockedFails(t *testing.T) {
	ro := NewRingOscillator(100.37, 0.5, 7)
	ro.Lock(0.001)
	s := Read(ro, 65536)
	r, err := nist.Serial(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("serial test passed a locked ring oscillator")
	}
}

func TestStuckAt(t *testing.T) {
	s := Read(NewStuckAt(1), 1000)
	if s.Ones() != 1000 {
		t.Errorf("stuck-at-1 produced %d ones of 1000", s.Ones())
	}
	z := Read(NewStuckAt(0), 1000)
	if z.Ones() != 0 {
		t.Errorf("stuck-at-0 produced %d ones", z.Ones())
	}
	r, err := nist.Frequency(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass(0.01) {
		t.Error("frequency test passed a stuck source")
	}
}

func TestDriftMovesBias(t *testing.T) {
	d := NewDrift(0.5, 0.8, 50_000, 8)
	early := Read(d, 10_000)
	// Skip the middle.
	Read(d, 35_000)
	late := Read(d, 10_000)
	earlyBias := float64(early.Ones()) / 10_000
	lateBias := float64(late.Ones()) / 10_000
	if earlyBias > 0.56 {
		t.Errorf("early bias %.3f already high", earlyBias)
	}
	if lateBias < 0.7 {
		t.Errorf("late bias %.3f has not drifted (want ≥ 0.7)", lateBias)
	}
}

func TestSwitchAtSwitches(t *testing.T) {
	src := NewSwitchAt(NewStuckAt(0), NewStuckAt(1), 100)
	s := Read(src, 200)
	if s.Slice(0, 100).Ones() != 0 {
		t.Error("bits before the switch are not from Before")
	}
	if s.Slice(100, 200).Ones() != 100 {
		t.Error("bits after the switch are not from After")
	}
	if src.Name() != "stuck-at->stuck-at" {
		t.Errorf("Name = %q", src.Name())
	}
}

func TestBurstInjectsBadBits(t *testing.T) {
	b := NewBurst(NewStuckAt(0), NewStuckAt(1), 0.01, 32, 9)
	s := Read(b, 100_000)
	ones := s.Ones()
	// Expected fraction of bad bits ≈ 0.01·32/(1+0.01·32) ≈ 24 %.
	if ones == 0 {
		t.Fatal("burst source never injected bad bits")
	}
	frac := float64(ones) / 100_000
	if frac < 0.05 || frac > 0.6 {
		t.Errorf("bad-bit fraction %.3f outside plausible band", frac)
	}
}

func TestSourceNames(t *testing.T) {
	cases := []struct {
		src  Source
		want string
	}{
		{NewIdeal(1), "ideal"},
		{NewBiased(0.6, 1), "biased"},
		{NewMarkov(0.6, 1), "markov"},
		{NewRingOscillator(100.37, 0.5, 1), "ring-oscillator"},
		{NewStuckAt(0), "stuck-at"},
		{NewDrift(0.5, 0.6, 1000, 1), "aging-drift"},
	}
	for _, c := range cases {
		if got := c.src.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestSourcesNeverError(t *testing.T) {
	sources := []Source{
		NewIdeal(1), NewBiased(0.6, 1), NewMarkov(0.6, 1),
		NewRingOscillator(100.37, 0.5, 1), NewStuckAt(1),
		NewDrift(0.5, 0.6, 100, 1),
		NewSwitchAt(NewIdeal(1), NewIdeal(2), 10),
		NewBurst(NewIdeal(1), NewStuckAt(1), 0.1, 8, 1),
	}
	for _, src := range sources {
		for i := 0; i < 100; i++ {
			if _, err := src.ReadBit(); err != nil {
				t.Errorf("%s: ReadBit error: %v", src.Name(), err)
				break
			}
		}
	}
}

func TestErraticFailsOnSchedule(t *testing.T) {
	src := NewErratic(NewIdeal(1), 4)
	for i := 1; i <= 100; i++ {
		_, err := src.ReadBit()
		if i%4 == 0 {
			if err == nil {
				t.Fatalf("call %d: no error on scheduled fault", i)
			}
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("call %d: error %v does not wrap ErrTransient", i, err)
			}
		} else if err != nil {
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	if src.Faults() != 25 {
		t.Errorf("Faults = %d, want 25", src.Faults())
	}
}

func TestErraticRetryPreservesStream(t *testing.T) {
	// A retrying reader must see exactly the inner stream: failed calls
	// consume nothing.
	want := Read(NewIdeal(7), 200)
	src := NewErratic(NewIdeal(7), 3)
	var got []byte
	for len(got) < 200 {
		b, err := src.ReadBit()
		if err != nil {
			continue // retry
		}
		got = append(got, b)
	}
	for i := range got {
		if got[i] != want.Bit(i) {
			t.Fatalf("bit %d: retried stream diverged from inner stream", i)
		}
	}
}
