package trng

// This file models the arithmetic post-processing (conditioning) stages
// real TRNGs place between the raw entropy source and the output. The
// on-the-fly tests of the paper monitor the *raw* source by design — after
// good conditioning, even a badly degraded source looks random, which is
// exactly why AIS-31 requires testing before the conditioning. The
// experiments use these models to demonstrate that: a biased source fails
// the monitor raw but passes it after von Neumann correction.

// VonNeumann is the classic de-biasing corrector: raw bits are consumed in
// pairs; 01 emits 0, 10 emits 1, 00 and 11 emit nothing. The output is
// exactly unbiased for any i.i.d. input, at the price of an input/output
// rate of at least 4:1.
type VonNeumann struct {
	Raw Source
}

// NewVonNeumann wraps a raw source with a von Neumann corrector.
func NewVonNeumann(raw Source) *VonNeumann { return &VonNeumann{Raw: raw} }

// Name implements Source.
func (v *VonNeumann) Name() string { return "vonneumann(" + v.Raw.Name() + ")" }

// ReadBit implements Source. It consumes raw pairs until one is unequal.
func (v *VonNeumann) ReadBit() (byte, error) {
	for {
		a, err := v.Raw.ReadBit()
		if err != nil {
			return 0, err
		}
		b, err := v.Raw.ReadBit()
		if err != nil {
			return 0, err
		}
		if a != b {
			return a, nil
		}
	}
}

// XORCompressor reduces bias by XOR-folding k consecutive raw bits into one
// output bit. For an input bias e = p − 1/2, the output bias has magnitude
// 2^{k−1}·|e|^k (P(out=1) = (1 − (1−2p)^k)/2) — quadratic suppression at
// k = 2. Unlike von Neumann it has a fixed rate but only reduces (never
// removes) bias, and it does nothing against correlation across fold
// boundaries.
type XORCompressor struct {
	Raw    Source
	Factor int
}

// NewXORCompressor wraps a raw source with a k-fold XOR compressor.
func NewXORCompressor(raw Source, k int) *XORCompressor {
	if k < 2 {
		k = 2
	}
	return &XORCompressor{Raw: raw, Factor: k}
}

// Name implements Source.
func (x *XORCompressor) Name() string { return "xor(" + x.Raw.Name() + ")" }

// ReadBit implements Source.
func (x *XORCompressor) ReadBit() (byte, error) {
	var out byte
	for i := 0; i < x.Factor; i++ {
		b, err := x.Raw.ReadBit()
		if err != nil {
			return 0, err
		}
		out ^= b
	}
	return out, nil
}
