package core

import (
	"testing"

	"repro/internal/hwblock"
	"repro/internal/sweval"
	"repro/internal/trng"
)

// feedWords drives one monitor with a deterministic word stream, including
// a mid-stream bus read (forcing the fast path's lazy publish) and a
// trailing partial word (leaving pending-word state in the hwfast ingest
// buffer). It returns the completed reports.
func feedWords(t *testing.T, m *Monitor, seed int64, words int) []SequenceReport {
	t.Helper()
	rng := trng.NewIdeal(seed)
	word := func() uint64 {
		var w uint64
		for b := 0; b < 64; b++ {
			bit, err := rng.ReadBit()
			if err != nil {
				t.Fatal(err)
			}
			w |= uint64(bit&1) << uint(b)
		}
		return w
	}
	var out []SequenceReport
	for i := 0; i < words; i++ {
		rep, err := m.FeedWord(word(), 64)
		if err != nil {
			t.Fatal(err)
		}
		if rep != nil {
			out = append(out, *rep)
		}
		if i == words/2 {
			// A mid-sequence bus read exercises the publish/dirty machinery
			// of the fast ingest path.
			m.Block().RegFile().ReadWord(0)
		}
	}
	// Leave 13 pending bits so per-run ingest state is non-trivial.
	if _, err := m.FeedWord(word(), 13); err != nil {
		t.Fatal(err)
	}
	return out
}

// regImage snapshots the full register file (publishing pending state
// first, as any bus master would).
func regImage(m *Monitor) []uint16 {
	rf := m.Block().RegFile()
	img := make([]uint16, rf.Words())
	for a := range img {
		img[a] = rf.ReadWord(a)
	}
	return img
}

// TestMonitorResetNoCrossTenantContamination is the pooled-reuse
// regression test: a monitor that digested one tenant's stream — pending
// hwfast word state, mid-sequence counters, retained history and all —
// must behave bit-identically to a factory-fresh monitor after Reset.
func TestMonitorResetNoCrossTenantContamination(t *testing.T) {
	dirty := newMonitor(t, 128, hwblock.Light, 0.01)

	// Tenant A leaves every kind of per-run state behind.
	aReports := feedWords(t, dirty, 41, 5)
	if len(aReports) == 0 {
		t.Fatal("tenant A completed no sequences")
	}
	held := dirty.History()
	if dirty.SequenceBits() == 0 {
		t.Fatal("tenant A should leave a partial sequence in flight")
	}

	dirty.Reset()

	if dirty.BitsSeen() != 0 || dirty.SequenceBits() != 0 || len(dirty.History()) != 0 {
		t.Fatalf("Reset left bits=%d seqbits=%d history=%d",
			dirty.BitsSeen(), dirty.SequenceBits(), len(dirty.History()))
	}
	// The vacated history backing array holds no stale reports: a recycled
	// monitor must not keep the previous tenant's verdicts reachable.
	for i := range held {
		if held[i] != (SequenceReport{}) {
			t.Fatalf("history entry %d not zeroed after Reset: %+v", i, held[i])
		}
	}

	// Tenant B on the recycled monitor vs. the same stream on a fresh one.
	fresh := newMonitor(t, 128, hwblock.Light, 0.01)
	bDirty := feedWords(t, dirty, 97, 5)
	bFresh := feedWords(t, fresh, 97, 5)
	if len(bDirty) != len(bFresh) {
		t.Fatalf("recycled monitor completed %d sequences, fresh %d", len(bDirty), len(bFresh))
	}
	for i := range bDirty {
		got, want := bDirty[i], bFresh[i]
		if got.Index != want.Index || got.StartBit != want.StartBit {
			t.Fatalf("sequence %d bookkeeping diverged: got (%d,%d) want (%d,%d)",
				i, got.Index, got.StartBit, want.Index, want.StartBit)
		}
		if !reportsAgree(got.Report, want.Report) {
			t.Fatalf("sequence %d verdicts diverged between recycled and fresh monitor", i)
		}
	}
	// The hardware state itself — down to the pending ingest bits — is
	// identical: the published register images agree word for word.
	gi, wi := regImage(dirty), regImage(fresh)
	for a := range wi {
		if gi[a] != wi[a] {
			t.Fatalf("register word %d: recycled %04x, fresh %04x (ingest state leaked)",
				a, gi[a], wi[a])
		}
	}
	if dirty.BitsSeen() != fresh.BitsSeen() {
		t.Fatalf("bits seen diverged: %d vs %d", dirty.BitsSeen(), fresh.BitsSeen())
	}
}

// TestMonitorResetSharedCriticalValues pins the fleet constructor: a
// monitor built around shared critical values must reject a mismatched
// design and evaluate identically to a self-derived one.
func TestMonitorResetSharedCriticalValues(t *testing.T) {
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := sweval.NewCriticalValues(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewMonitorWithValues(cfg, cv)
	if err != nil {
		t.Fatal(err)
	}
	own := newMonitor(t, 128, hwblock.Light, 0.01)
	a := feedWords(t, shared, 7, 4)
	b := feedWords(t, own, 7, 4)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("got %d vs %d sequences", len(a), len(b))
	}
	for i := range a {
		if !reportsAgree(a[i].Report, b[i].Report) {
			t.Fatalf("sequence %d: shared-CV verdicts diverge", i)
		}
	}
	if _, err := NewMonitorWithValues(cfg, nil); err == nil {
		t.Fatal("nil critical values accepted")
	}
	other, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMonitorWithValues(other, cv); err == nil {
		t.Fatal("critical values for a different design accepted")
	}
}

// TestSupervisorResetClearsRunState pins Supervisor.Reset for pooled
// reuse: after a degraded, failed-over run, Reset must restore the
// just-built state (primary source, no latch, no breaker progress, empty
// timeline) and a subsequent clean run must come out OK.
func TestSupervisorResetClearsRunState(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	primary := newFiniteSource(3, 200) // dies hard mid-second-sequence
	standby := trng.NewIdeal(4)
	sup := NewSupervisor(m, primary, standby, SupervisorConfig{})
	rep, err := sup.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Condition != FailedOver || len(rep.Events) == 0 {
		t.Fatalf("setup run: condition=%v events=%d, want failed-over with incidents",
			rep.Condition, len(rep.Events))
	}

	held := sup.Events()
	sup.Reset()
	if c := sup.Condition(); c != OK {
		t.Fatalf("condition after Reset = %v, want OK", c)
	}
	if len(sup.Events()) != 0 || sup.Quarantined() != 0 || sup.Retries() != 0 {
		t.Fatalf("Reset left events=%d quarantined=%d retries=%d",
			len(sup.Events()), sup.Quarantined(), sup.Retries())
	}
	for i := range held {
		if held[i] != (Event{}) {
			t.Fatalf("event backing entry %d not zeroed: %+v", i, held[i])
		}
	}
	if m.BitsSeen() != 0 || len(m.History()) != 0 {
		t.Fatal("Reset did not reset the supervised monitor")
	}

	// The recycled supervisor starts over on the (restored) primary: the
	// finite primary is exhausted, so the second run must fail over AGAIN
	// — if Reset had left src on the standby, this run would be a clean OK
	// with no failover event.
	rep2, err := sup.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Condition != FailedOver {
		t.Fatalf("second run condition = %v, want failed-over from the restored primary", rep2.Condition)
	}
	if rep2.FailoverBit != 0 {
		t.Fatalf("second failover at bit %d, want 0 (primary already exhausted)", rep2.FailoverBit)
	}
}
