// Package core is the platform of the paper's Fig. 1: it couples a TRNG
// (or any bit source) to a hardware testing block and the embedded
// software evaluator, and runs them the way the paper prescribes — the
// hardware always on, digesting every bit the TRNG produces, with the
// software checking the counters at each sequence boundary. There is no
// single alarm wire: the monitor's verdict is a set of per-test decisions
// derived from transmitted counter values, which is the paper's defense
// against probing attacks on an alarm signal.
//
// Monitors, supervisors and the sequence runner are optionally instrumented
// through internal/obs (SetObs / SequenceRunner.Obs). Instrumentation is
// strictly observational: a nil registry is a no-op, and the attached case
// changes no statistical output bit — the package's differential suite
// (obs_differential_test.go) compares instrumented against uninstrumented
// runs byte for byte, over both ingest paths, the supervised pipeline and
// the parallel fan-out.
//
//trnglint:deterministic
package core

import (
	"errors"
	"fmt"

	"repro/internal/hwblock"
	"repro/internal/hwfast"
	"repro/internal/obs"
	"repro/internal/sweval"
	"repro/internal/trng"
)

// SourceError reports a failed source read. Bit is the absolute offset of
// the bit that could not be read — equivalently, the number of bits the
// monitor had consumed when the read failed. It wraps the source's error,
// so errors.Is(err, trng.ErrTransient) distinguishes retryable faults.
type SourceError struct {
	Bit int64
	Err error
}

// Error implements error.
func (e *SourceError) Error() string {
	return fmt.Sprintf("core: source failed at bit %d: %v", e.Bit, e.Err)
}

// Unwrap exposes the source's error to errors.Is / errors.As.
func (e *SourceError) Unwrap() error { return e.Err }

// ErrReadoutMismatch is returned by a verified evaluation pass when two
// reads of the register file disagree — transmitted counter values were
// corrupted in flight, so no verdict can be trusted and the sequence must
// be quarantined.
var ErrReadoutMismatch = errors.New("core: register readout mismatch between verification passes")

// SequenceReport is the outcome of one completed test sequence.
type SequenceReport struct {
	// Index is the sequence number since the monitor started (0-based).
	Index int
	// StartBit is the absolute index of the sequence's first bit.
	StartBit int64
	// Report is the software evaluation of the hardware counters.
	Report *sweval.Report
}

// Monitor is an on-the-fly TRNG health monitor: one hardware testing block
// plus one software evaluator, fed bit by bit.
type Monitor struct {
	block *hwblock.Block
	eval  *sweval.Evaluator
	cv    *sweval.CriticalValues

	seq      int
	bitsSeen int64
	history  []SequenceReport
	// KeepHistory bounds the retained reports (0 = keep everything).
	KeepHistory int

	// Observability handles, cached once by SetObs. All of them are
	// nil-safe no-ops when no registry is attached, so the instrumented
	// monitor is bit-identical to an uninstrumented one (the differential
	// suite proves it).
	obs         *obs.Registry
	obsSeqPass  *obs.Counter
	obsSeqFail  *obs.Counter
	obsVerdicts map[int][2]*obs.Counter // per test: [pass, fail]
	obsEvalOps  *obs.Histogram
	obsBusReads *obs.Counter
	obsBitsSeen *obs.Gauge
}

// NewMonitor builds a monitor for the given design at level of
// significance alpha.
func NewMonitor(cfg hwblock.Config, alpha float64, opts ...sweval.Option) (*Monitor, error) {
	cv, err := sweval.NewCriticalValues(cfg, alpha, opts...)
	if err != nil {
		return nil, err
	}
	return NewMonitorWithValues(cfg, cv)
}

// NewMonitorWithValues builds a monitor around an already-derived set of
// critical values. Deriving critical values is the expensive part of
// monitor construction (special functions, PWL tables); a fleet that
// instantiates thousands of monitors for one design derives them once and
// shares the constants — they are read-only after construction, so sharing
// is race-free.
func NewMonitorWithValues(cfg hwblock.Config, cv *sweval.CriticalValues) (*Monitor, error) {
	if cv == nil {
		return nil, fmt.Errorf("core: nil critical values")
	}
	if got := cv.Config().Name; got != cfg.Name {
		return nil, fmt.Errorf("core: critical values are for design %s, monitor is %s", got, cfg.Name)
	}
	block, err := hwblock.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		block:   block,
		eval:    sweval.NewEvaluator(cv),
		cv:      cv,
		history: make([]SequenceReport, 0, 16),
	}, nil
}

// Reset returns the monitor to its just-built state — hardware block
// (including the fast ingest path's functional model and its pending-word
// buffer), sequence counter, bit counter and history — without
// reallocating the block or re-deriving the critical values. Worker pools
// and the fleet layer reuse one monitor across many independent streams
// this way, so Reset must restore *every* piece of per-run state: retained
// history entries are zeroed, not just truncated, so a recycled monitor
// holds no reference to a previous tenant's reports.
func (m *Monitor) Reset() {
	m.block.Reset()
	m.seq = 0
	m.bitsSeen = 0
	for i := range m.history {
		m.history[i] = SequenceReport{}
	}
	m.history = m.history[:0]
}

// SetObs attaches an observability registry: per-test verdict counters,
// sequence pass/fail counters, the software-evaluation cost histogram (in
// the paper's deterministic instruction-count units, not wall time — core
// is bit-reproducible, so no clock may enter here) and the ingest counters
// of the underlying hardware block. Handles are cached once; a nil
// registry detaches instrumentation and restores the zero-overhead path.
func (m *Monitor) SetObs(r *obs.Registry) {
	m.obs = r
	m.block.SetObs(r)
	if r == nil {
		m.obsSeqPass, m.obsSeqFail = nil, nil
		m.obsVerdicts = nil
		m.obsEvalOps, m.obsBusReads, m.obsBitsSeen = nil, nil, nil
		return
	}
	m.obsSeqPass = r.Counter("trng_monitor_sequences_total",
		"evaluated sequences by overall verdict", "result", "pass")
	m.obsSeqFail = r.Counter("trng_monitor_sequences_total",
		"evaluated sequences by overall verdict", "result", "fail")
	m.obsVerdicts = make(map[int][2]*obs.Counter, len(m.block.Config().Tests))
	for _, id := range m.block.Config().Tests {
		t := fmt.Sprintf("%d", id)
		m.obsVerdicts[id] = [2]*obs.Counter{
			r.Counter("trng_monitor_test_verdicts_total",
				"per-test software verdicts", "test", t, "verdict", "pass"),
			r.Counter("trng_monitor_test_verdicts_total",
				"per-test software verdicts", "test", t, "verdict", "fail"),
		}
	}
	m.obsEvalOps = r.Histogram("trng_monitor_eval_ops",
		"software evaluation cost per sequence, total metered instructions (Table III categories)",
		obs.Pow2Buckets(4, 20))
	m.obsBusReads = r.Counter("trng_monitor_bus_read_words_total",
		"16-bit register-file words transferred for software evaluation (the paper's READ count)")
	m.obsBitsSeen = r.Gauge("trng_monitor_bits_seen",
		"total bits the monitor has consumed, sampled at sequence boundaries")
}

// Config returns the monitored design.
func (m *Monitor) Config() hwblock.Config { return m.block.Config() }

// Block exposes the hardware testing block (for area reporting and
// register-file inspection).
func (m *Monitor) Block() *hwblock.Block { return m.block }

// LoadWordStats hands externally maintained sliceable-engine state back to
// the block (see hwblock.Block.LoadWordStats) and keeps the monitor's own
// bit count in step: a residual-free sliced stream feeds the monitor
// nothing between sequence boundaries, so the hand-back may fast-forward
// the position, and the skipped bits count as seen.
func (m *Monitor) LoadWordStats(ws *hwfast.WordStats) error {
	pre := m.block.BitsSeen()
	if err := m.block.LoadWordStats(ws); err != nil {
		return err
	}
	m.bitsSeen += int64(m.block.BitsSeen() - pre)
	return nil
}

// Alpha returns the configured level of significance.
func (m *Monitor) Alpha() float64 { return m.cv.Alpha }

// SetAlpha re-derives the critical values at a new level of significance —
// the flexibility the HW/SW split buys: the hardware is untouched.
func (m *Monitor) SetAlpha(alpha float64, opts ...sweval.Option) error {
	cv, err := sweval.NewCriticalValues(m.block.Config(), alpha, opts...)
	if err != nil {
		return err
	}
	m.cv = cv
	m.eval = sweval.NewEvaluator(cv)
	return nil
}

// Feed clocks one bit into the hardware. When the bit completes a
// sequence, the software evaluation runs and its report is returned;
// otherwise the report is nil. The hardware is immediately reset so the
// next sequence starts on the following bit — the tests stay active the
// whole time the TRNG runs, as [14] requires.
func (m *Monitor) Feed(bit byte) (*SequenceReport, error) {
	done, err := m.clockBit(bit)
	if err != nil {
		return nil, err
	}
	if !done {
		return nil, nil
	}
	return m.completeSequence(false)
}

// FeedWord clocks up to 64 bits into the hardware in one call — the
// fleet-scale ingest path. Bit i of w is the i-th bit chronologically
// (bitstream.Sequence packing). A word may straddle a sequence boundary:
// the completed sequence is evaluated mid-word and the remaining bits open
// the next one. When the word completes one or more sequences the report
// of the last completed sequence is returned (with the standard designs,
// N ≥ 128 ≥ nbits, at most one sequence can complete per call). The call
// is allocation-free except at sequence boundaries.
func (m *Monitor) FeedWord(w uint64, nbits int) (*SequenceReport, error) {
	return m.feedWord(w, nbits, false)
}

// FeedWordVerified is FeedWord with the double-readout defense: each
// completed sequence is evaluated twice and ErrReadoutMismatch is returned
// when the passes disagree. On a mismatch the sequence is left uncommitted
// and the hardware is NOT reset — the caller decides whether to quarantine
// (QuarantineInFlight) or abort; the remaining bits of the word are not
// consumed.
func (m *Monitor) FeedWordVerified(w uint64, nbits int) (*SequenceReport, error) {
	return m.feedWord(w, nbits, true)
}

func (m *Monitor) feedWord(w uint64, nbits int, verify bool) (*SequenceReport, error) {
	if nbits < 1 || nbits > 64 {
		return nil, fmt.Errorf("core: word size %d out of range [1,64]", nbits)
	}
	var last *SequenceReport
	for nbits > 0 {
		take := m.block.Config().N - m.block.BitsSeen()
		if take > nbits {
			take = nbits
		}
		if err := m.block.ClockWord(w, take); err != nil {
			return last, err
		}
		m.bitsSeen += int64(take)
		w >>= uint(take)
		nbits -= take
		if m.block.Done() {
			rep, err := m.completeSequence(verify)
			if err != nil {
				return last, err
			}
			last = rep
		}
	}
	return last, nil
}

// SequenceBits reports how many bits of the current (in-flight) sequence
// the hardware has absorbed — 0 exactly at a sequence boundary.
func (m *Monitor) SequenceBits() int { return m.block.BitsSeen() }

// QuarantineInFlight discards the in-flight (or completed-but-unevaluated)
// sequence: the hardware is reset without an evaluation and no report is
// committed. The bits remain counted in BitsSeen. It reports whether
// anything was actually at risk — false when the fault landed exactly on a
// sequence boundary. This is the exported seam the supervisory layers
// (Supervisor, internal/fleet) quarantine through.
func (m *Monitor) QuarantineInFlight() bool {
	if m.block.BitsSeen() == 0 {
		return false
	}
	m.quarantineSequence()
	return true
}

// clockBit feeds one bit to the hardware without evaluating, reporting
// whether the bit completed a sequence. It is the lower half of Feed; the
// Supervisor uses it directly so that a sequence touched by an operational
// fault can be quarantined before any evaluation runs.
func (m *Monitor) clockBit(bit byte) (done bool, err error) {
	if err := m.block.Clock(bit); err != nil {
		return false, err
	}
	m.bitsSeen++
	return m.block.Done(), nil
}

// completeSequence evaluates the completed sequence, commits it to the
// history, and resets the hardware. With verify set, the software pass
// runs twice over the register file and the two reports are compared
// field by field: the evaluation is a pure function of the transmitted
// counter values, so any disagreement means a counter was corrupted in
// transmission, and the sequence is left uncommitted with
// ErrReadoutMismatch (the caller quarantines it). This is the
// software-side defense the paper's distributed-verdict design enables:
// there is no single alarm wire to probe, and no single bus read to trust.
func (m *Monitor) completeSequence(verify bool) (*SequenceReport, error) {
	rep, err := m.eval.Evaluate(m.block)
	if err != nil {
		return nil, err
	}
	if verify {
		again, err := m.eval.Evaluate(m.block)
		if err != nil {
			return nil, err
		}
		if !reportsAgree(rep, again) {
			return nil, ErrReadoutMismatch
		}
	}
	if m.obs != nil {
		m.observeReport(rep)
	}
	sr := SequenceReport{
		Index:    m.seq,
		StartBit: m.bitsSeen - int64(m.block.Config().N),
		Report:   rep,
	}
	m.seq++
	m.history = append(m.history, sr)
	if m.KeepHistory > 0 && len(m.history) > m.KeepHistory {
		// Trim by copying to the front so the backing array is reused
		// instead of leaking a growing prefix behind a resliced view; the
		// vacated tail is zeroed so no stale report stays reachable.
		n := copy(m.history, m.history[len(m.history)-m.KeepHistory:])
		for i := n; i < len(m.history); i++ {
			m.history[i] = SequenceReport{}
		}
		m.history = m.history[:n]
	}
	m.block.Reset()
	return &sr, nil
}

// observeReport folds one accepted evaluation into the attached registry.
func (m *Monitor) observeReport(rep *sweval.Report) {
	if rep.Pass() {
		m.obsSeqPass.Inc()
	} else {
		m.obsSeqFail.Inc()
	}
	for _, v := range rep.Verdicts {
		h := m.obsVerdicts[v.TestID]
		if v.Pass {
			h[0].Inc()
		} else {
			h[1].Inc()
		}
	}
	m.obsEvalOps.Observe(float64(rep.Cost.Total()))
	m.obsBusReads.Add(uint64(rep.Cost.Get(sweval.OpRead)))
	m.obsBitsSeen.Set(float64(m.bitsSeen))
}

// quarantineSequence discards the in-flight (or completed-but-unevaluated)
// sequence: the hardware is reset without an evaluation and no report is
// committed. The bits remain counted in BitsSeen.
func (m *Monitor) quarantineSequence() { m.block.Reset() }

// reportsAgree compares two evaluation passes verdict by verdict.
func reportsAgree(a, b *sweval.Report) bool {
	if len(a.Verdicts) != len(b.Verdicts) {
		return false
	}
	for i := range a.Verdicts {
		va, vb := a.Verdicts[i], b.Verdicts[i]
		if va.TestID != vb.TestID || va.Pass != vb.Pass || va.Statistic != vb.Statistic {
			return false
		}
	}
	return true
}

// Watch drains bits from the source until the requested number of
// sequences have been evaluated, returning their reports. A failed source
// read aborts the watch with a *SourceError carrying the bit offset and
// the already-completed reports; callers that can recover (see
// Supervisor) inspect it with errors.As.
func (m *Monitor) Watch(src trng.Source, sequences int) ([]SequenceReport, error) {
	var out []SequenceReport
	for len(out) < sequences {
		bit, err := src.ReadBit()
		if err != nil {
			return out, &SourceError{Bit: m.bitsSeen, Err: err}
		}
		rep, err := m.Feed(bit)
		if err != nil {
			return out, err
		}
		if rep != nil {
			out = append(out, *rep)
		}
	}
	return out, nil
}

// History returns the retained sequence reports.
func (m *Monitor) History() []SequenceReport { return m.history }

// BitsSeen reports the total number of bits consumed.
func (m *Monitor) BitsSeen() int64 { return m.bitsSeen }

// DetectionResult describes when a monitor first flagged a defect.
type DetectionResult struct {
	// Detected reports whether any sequence failed.
	Detected bool
	// SequenceIndex is the first failing sequence (valid if Detected).
	SequenceIndex int
	// LatencyBits is the number of bits from the defect onset to the end
	// of the first failing sequence.
	LatencyBits int64
	// FailedTests are the tests that flagged in the first failing
	// sequence.
	FailedTests []int
}

// DetectionLatency measures how quickly the monitor detects a defect that
// begins at bit onsetBit of the source's stream: it runs the monitor for at
// most maxSequences and reports the first failure.
func (m *Monitor) DetectionLatency(src trng.Source, onsetBit int64, maxSequences int) (DetectionResult, error) {
	for i := 0; i < maxSequences; i++ {
		reps, err := m.Watch(src, 1)
		if err != nil {
			return DetectionResult{}, err
		}
		r := reps[0]
		if !r.Report.Pass() {
			return DetectionResult{
				Detected:      true,
				SequenceIndex: r.Index,
				LatencyBits:   m.bitsSeen - onsetBit,
				FailedTests:   r.Report.Failed(),
			}, nil
		}
	}
	return DetectionResult{}, nil
}
