package core

import (
	"strings"
	"testing"

	"repro/internal/hwblock"
	"repro/internal/online"
	"repro/internal/trng"
)

// TestSupervisorOnlineDetectsMidSequenceDrift proves the online tracker
// latches StatFail on a drifting source faster than the per-sequence
// alarm policy could, with the latch recorded in the standard event
// vocabulary and the detection bit in the report.
func TestSupervisorOnlineDetectsMidSequenceDrift(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Medium, 0.001)
	onset := 3 * 128
	src := trng.NewSwitchAt(trng.NewIdeal(41), trng.NewStuckAt(1), onset)
	sup := NewSupervisor(m, src, nil, SupervisorConfig{
		Online: &online.Config{},
	})
	rep, err := sup.Run(200)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Condition != StatFail {
		t.Fatalf("condition %v, want StatFail", rep.Condition)
	}
	if rep.OnlineDetectedAt <= int64(onset) {
		t.Fatalf("detection bit %d not after onset %d", rep.OnlineDetectedAt, onset)
	}
	// The whole point: detection well before the 200 sequences the
	// per-sequence path was asked for.
	if got := len(rep.Reports); got >= 200 {
		t.Fatalf("run did not stop early: %d sequences accepted", got)
	}
	var latch *Event
	for i := range rep.Events {
		if rep.Events[i].Kind == EventAlarmLatched {
			latch = &rep.Events[i]
		}
	}
	if latch == nil {
		t.Fatal("no EventAlarmLatched in the timeline")
	}
	if !strings.Contains(latch.Detail, "online anomaly score") {
		t.Fatalf("latch detail %q does not name the online score", latch.Detail)
	}
	if sup.OnlineTracker() == nil || !sup.OnlineTracker().Alarmed() {
		t.Fatal("tracker not exposed or not alarmed")
	}
}

// TestSupervisorOnlineHealthyRunStaysOK proves online tracking does not
// disturb a healthy run: same accepted sequences, OK condition, no alarm.
func TestSupervisorOnlineHealthyRunStaysOK(t *testing.T) {
	mOn := newMonitor(t, 128, hwblock.Medium, 0.001)
	mOff := newMonitor(t, 128, hwblock.Medium, 0.001)
	supOn := NewSupervisor(mOn, trng.NewIdeal(55), nil, SupervisorConfig{Online: &online.Config{}})
	supOff := NewSupervisor(mOff, trng.NewIdeal(55), nil, SupervisorConfig{})
	repOn, err := supOn.Run(16)
	if err != nil {
		t.Fatalf("Run(on): %v", err)
	}
	repOff, err := supOff.Run(16)
	if err != nil {
		t.Fatalf("Run(off): %v", err)
	}
	if repOn.Condition != OK {
		t.Fatalf("condition %v, want OK", repOn.Condition)
	}
	if repOn.OnlineDetectedAt != -1 {
		t.Fatalf("healthy run reports detection bit %d", repOn.OnlineDetectedAt)
	}
	if len(repOn.Reports) != len(repOff.Reports) {
		t.Fatalf("online tracking changed the run: %d vs %d sequences", len(repOn.Reports), len(repOff.Reports))
	}
	for i := range repOn.Reports {
		if repOn.Reports[i].Report.Pass() != repOff.Reports[i].Report.Pass() {
			t.Fatalf("sequence %d verdict changed under online tracking", i)
		}
	}
	if repOff.OnlineDetectedAt != -1 || repOff.OnlineScore != 0 {
		t.Fatalf("disabled tracking leaked score state: %+v", repOff)
	}
}

// TestSupervisorOnlineReset proves Reset clears the tracker with the rest
// of the supervisor state.
func TestSupervisorOnlineReset(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.001)
	sup := NewSupervisor(m, trng.NewStuckAt(0), nil, SupervisorConfig{Online: &online.Config{}})
	if _, err := sup.Run(50); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sup.OnlineTracker().Alarmed() {
		t.Fatal("stuck source did not latch")
	}
	sup.Reset()
	if sup.OnlineTracker().Alarmed() || sup.OnlineTracker().BitsSeen() != 0 {
		t.Fatal("Reset did not clear the tracker")
	}
	if sup.Condition() != OK {
		t.Fatalf("condition after Reset: %v", sup.Condition())
	}
}

// TestSupervisorOnlineBadConfig proves an invalid online configuration
// surfaces on the first Run instead of being silently ignored.
func TestSupervisorOnlineBadConfig(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.001)
	sup := NewSupervisor(m, trng.NewIdeal(1), nil, SupervisorConfig{
		Online: &online.Config{Window: 100}, // not a multiple of 64
	})
	if _, err := sup.Run(1); err == nil {
		t.Fatal("invalid online config did not error")
	}
}
