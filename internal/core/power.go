package core

import (
	"fmt"

	"repro/internal/hwblock"
	"repro/internal/trng"
)

// PowerPoint is the measured detection power of the monitor against one
// defect severity: the fraction of trials in which the first monitored
// sequence already fails, and which tests do the detecting.
type PowerPoint struct {
	// Severity is the defect parameter (bias, stickiness, jitter …).
	Severity float64
	// DetectionRate is the fraction of trials whose first sequence
	// failed.
	DetectionRate float64
	// MeanFailingTests is the mean number of failing tests per detected
	// trial.
	MeanFailingTests float64
	// TestHits counts, per test, in how many trials it fired.
	TestHits map[int]int
}

// PowerSweep measures single-sequence detection power across defect
// severities. makeSource builds the defective source for a severity and a
// trial seed; trials sequences are monitored per severity (each trial uses
// a fresh monitor, so trials are independent).
func PowerSweep(cfg hwblock.Config, alpha float64, severities []float64, trials int,
	makeSource func(severity float64, seed int64) trng.Source) ([]PowerPoint, error) {
	if trials < 1 {
		return nil, fmt.Errorf("core: need at least one trial")
	}
	var out []PowerPoint
	for _, sev := range severities {
		pt := PowerPoint{Severity: sev, TestHits: make(map[int]int)}
		detected := 0
		failSum := 0
		for trial := 0; trial < trials; trial++ {
			m, err := NewMonitor(cfg, alpha)
			if err != nil {
				return nil, err
			}
			reps, err := m.Watch(makeSource(sev, int64(trial)), 1)
			if err != nil {
				return nil, err
			}
			failed := reps[0].Report.Failed()
			if len(failed) > 0 {
				detected++
				failSum += len(failed)
				for _, id := range failed {
					pt.TestHits[id]++
				}
			}
		}
		pt.DetectionRate = float64(detected) / float64(trials)
		if detected > 0 {
			pt.MeanFailingTests = float64(failSum) / float64(detected)
		}
		out = append(out, pt)
	}
	return out, nil
}
