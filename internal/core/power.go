package core

import (
	"fmt"

	"repro/internal/hwblock"
	"repro/internal/trng"
)

// PowerPoint is the measured detection power of the monitor against one
// defect severity: the fraction of trials in which the first monitored
// sequence already fails, and which tests do the detecting.
type PowerPoint struct {
	// Severity is the defect parameter (bias, stickiness, jitter …).
	Severity float64
	// DetectionRate is the fraction of trials whose first sequence
	// failed.
	DetectionRate float64
	// MeanFailingTests is the mean number of failing tests per detected
	// trial.
	MeanFailingTests float64
	// TestHits counts, per test, in how many trials it fired.
	TestHits map[int]int
}

// PowerSweep measures single-sequence detection power across defect
// severities. makeSource builds the defective source for a severity and a
// trial seed; trials sequences are monitored per severity. Trials are
// independent — seeded per trial index — so they are sharded across a
// GOMAXPROCS worker pool; the aggregation is in trial order, making the
// result identical to a serial run (see PowerSweepWorkers).
func PowerSweep(cfg hwblock.Config, alpha float64, severities []float64, trials int,
	makeSource func(severity float64, seed int64) trng.Source) ([]PowerPoint, error) {
	return PowerSweepWorkers(cfg, alpha, severities, trials, 0, makeSource)
}

// PowerSweepWorkers is PowerSweep with an explicit worker-pool size
// (≤ 0 means GOMAXPROCS, 1 forces a serial run). Because trial i of a
// severity always monitors makeSource(sev, i) on a freshly reset monitor,
// the returned points are byte-identical for every worker count.
func PowerSweepWorkers(cfg hwblock.Config, alpha float64, severities []float64, trials, workers int,
	makeSource func(severity float64, seed int64) trng.Source) ([]PowerPoint, error) {
	if trials < 1 {
		return nil, fmt.Errorf("core: need at least one trial")
	}
	runner := &SequenceRunner{Cfg: cfg, Alpha: alpha, Workers: workers}
	var out []PowerPoint
	for _, sev := range severities {
		sev := sev
		reps, err := runner.Run(trials, func(trial int) trng.Source {
			return makeSource(sev, int64(trial))
		})
		if err != nil {
			return nil, err
		}
		pt := PowerPoint{Severity: sev, TestHits: make(map[int]int)}
		detected := 0
		failSum := 0
		for _, r := range reps {
			failed := r.Report.Failed()
			if len(failed) > 0 {
				detected++
				failSum += len(failed)
				for _, id := range failed {
					pt.TestHits[id]++
				}
			}
		}
		pt.DetectionRate = float64(detected) / float64(trials)
		if detected > 0 {
			pt.MeanFailingTests = float64(failSum) / float64(detected)
		}
		out = append(out, pt)
	}
	return out, nil
}
