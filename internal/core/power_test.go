package core

import (
	"testing"

	"repro/internal/hwblock"
	"repro/internal/trng"
)

func TestPowerSweepBiasMonotone(t *testing.T) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := PowerSweep(cfg, 0.01, []float64{0.50, 0.51, 0.53, 0.56}, 8,
		func(sev float64, seed int64) trng.Source {
			return trng.NewBiased(sev, seed*31+int64(sev*1000))
		})
	if err != nil {
		t.Fatal(err)
	}
	// Detection power must climb from ≈ α·tests at severity 0.50 to 1 at
	// 0.56 (|S| ≈ 2·0.06·65536/... = 7864 vs the ~660 bound).
	if pts[0].DetectionRate > 0.5 {
		t.Errorf("false-alarm rate %.2f at severity 0.50 is far above alpha", pts[0].DetectionRate)
	}
	if pts[len(pts)-1].DetectionRate != 1 {
		t.Errorf("detection rate %.2f at severity 0.56, want 1.0", pts[len(pts)-1].DetectionRate)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].DetectionRate < pts[i-1].DetectionRate-0.25 {
			t.Errorf("power not (weakly) monotone: %.2f after %.2f",
				pts[i].DetectionRate, pts[i-1].DetectionRate)
		}
	}
}

func TestPowerSweepAttributesTheRightTests(t *testing.T) {
	cfg, err := hwblock.NewConfig(65536, hwblock.High)
	if err != nil {
		t.Fatal(err)
	}
	// A strongly sticky Markov source: the runs and serial tests must be
	// among the detectors; the monobit test should mostly stay quiet
	// (the source is balanced).
	pts, err := PowerSweep(cfg, 0.01, []float64{0.65}, 6,
		func(sev float64, seed int64) trng.Source {
			return trng.NewMarkov(sev, seed*17+1)
		})
	if err != nil {
		t.Fatal(err)
	}
	pt := pts[0]
	if pt.DetectionRate != 1 {
		t.Fatalf("sticky source detected in %.0f%% of trials, want all", 100*pt.DetectionRate)
	}
	if pt.TestHits[3] == 0 {
		t.Error("runs test never fired on a sticky source")
	}
	if pt.TestHits[11] == 0 {
		t.Error("serial test never fired on a sticky source")
	}
	if pt.TestHits[1] > pt.TestHits[3] {
		t.Errorf("monobit fired more often (%d) than runs (%d) on a balanced defect",
			pt.TestHits[1], pt.TestHits[3])
	}
}

func TestPowerSweepValidation(t *testing.T) {
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PowerSweep(cfg, 0.01, []float64{0.5}, 0, nil); err == nil {
		t.Error("zero trials accepted")
	}
}
