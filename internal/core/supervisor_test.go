package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/bitstream"
	"repro/internal/faultinject"
	"repro/internal/hwblock"
	"repro/internal/trng"
)

// finiteSource adapts a finite bit sequence: it fails hard (non-transient)
// when exhausted.
type finiteSource struct {
	r *bitstream.Reader
}

func newFiniteSource(seed int64, n int) *finiteSource {
	return &finiteSource{r: bitstream.NewReader(trng.Read(trng.NewIdeal(seed), n))}
}

func (s *finiteSource) Name() string           { return "finite" }
func (s *finiteSource) ReadBit() (byte, error) { return s.r.ReadBit() }

func TestSupervisorRetriesTransientFaults(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.001)
	src := trng.NewErratic(trng.NewIdeal(21), 5)
	var slept []time.Duration
	sup := NewSupervisor(m, src, nil, SupervisorConfig{
		Backoff: time.Millisecond,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	})
	rep, err := sup.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reports) != 4 {
		t.Fatalf("accepted %d sequences, want 4", len(rep.Reports))
	}
	if rep.Condition != Degraded {
		t.Errorf("Condition = %v, want Degraded", rep.Condition)
	}
	if rep.Retries != src.Faults() || rep.Retries == 0 {
		t.Errorf("Retries = %d, source reports %d faults", rep.Retries, src.Faults())
	}
	if rep.Quarantined != 0 {
		t.Errorf("Quarantined = %d on a retryable-only source", rep.Quarantined)
	}
	if len(slept) != rep.Retries {
		t.Errorf("%d backoff sleeps for %d retries", len(slept), rep.Retries)
	}
	for _, d := range slept {
		if d != time.Millisecond {
			t.Errorf("backoff %v, want 1ms (every fault recovers on the first retry)", d)
		}
	}
	// A retried stream is the inner stream: same verdicts as unsupervised.
	clean := newMonitor(t, 128, hwblock.Light, 0.001)
	want, err := clean.Watch(trng.NewIdeal(21), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reportsAgree(rep.Reports[i].Report, want[i].Report) {
			t.Errorf("sequence %d: supervised verdicts diverge from clean run", i)
		}
	}
}

func TestSupervisorRetriesAreReproducible(t *testing.T) {
	run := func() *SupervisorReport {
		m := newMonitor(t, 128, hwblock.Light, 0.01)
		src := faultinject.NewFlaky(trng.NewIdeal(5), 0.02, 2, 77)
		sup := NewSupervisor(m, src, nil, SupervisorConfig{})
		rep, err := sup.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Retries != b.Retries || a.Quarantined != b.Quarantined || a.Condition != b.Condition {
		t.Fatalf("seeded runs diverged: %+v vs %+v", a, b)
	}
	if a.Retries == 0 {
		t.Error("flaky source produced no retries")
	}
	for i := range a.Reports {
		if !reportsAgree(a.Reports[i].Report, b.Reports[i].Report) {
			t.Errorf("sequence %d verdicts diverged between seeded runs", i)
		}
	}
}

func TestSupervisorWatchdogFailsOverOnStall(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	stall := faultinject.NewStall(trng.NewIdeal(31), 200) // dies mid-second-sequence
	defer stall.Release()
	standby := trng.NewIdeal(32)
	sup := NewSupervisor(m, stall, standby, SupervisorConfig{
		BitDeadline: 10 * time.Millisecond,
	})
	rep, err := sup.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Condition != FailedOver {
		t.Errorf("Condition = %v, want FailedOver", rep.Condition)
	}
	if len(rep.Reports) != 3 {
		t.Errorf("accepted %d sequences, want 3", len(rep.Reports))
	}
	if rep.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1 (the sequence in flight at the stall)", rep.Quarantined)
	}
	if rep.FailoverBit != 200 {
		t.Errorf("FailoverBit = %d, want 200", rep.FailoverBit)
	}
	if rep.ActiveSource != "ideal" {
		t.Errorf("ActiveSource = %q, want the standby", rep.ActiveSource)
	}
	var kinds []EventKind
	for _, e := range rep.Events {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{EventWatchdog, EventQuarantine, EventFailover}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want kinds %v", rep.Events, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestSupervisorSourceFaultWithoutStandby(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	sup := NewSupervisor(m, newFiniteSource(4, 200), nil, SupervisorConfig{})
	rep, err := sup.Run(3)
	if err == nil {
		t.Fatal("no error from an exhausted source with no standby")
	}
	var se *SourceError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *SourceError", err)
	}
	if se.Bit != 200 {
		t.Errorf("SourceError.Bit = %d, want 200", se.Bit)
	}
	if errors.Is(err, trng.ErrTransient) {
		t.Error("end-of-stream classified as transient")
	}
	if rep.Condition != SourceFault {
		t.Errorf("Condition = %v, want SourceFault", rep.Condition)
	}
	if len(rep.Reports) != 1 {
		t.Errorf("partial results: %d sequences, want 1", len(rep.Reports))
	}
	if rep.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", rep.Quarantined)
	}
}

func TestSupervisorQuarantinesCorruptReadout(t *testing.T) {
	run := func() (*SupervisorReport, int) {
		m := newMonitor(t, 128, hwblock.Light, 0.001)
		c := faultinject.CorruptRegFile(m.Block().RegFile(), 0.05, 1234)
		defer c.Detach()
		sup := NewSupervisor(m, trng.NewIdeal(8), nil, SupervisorConfig{
			VerifyReadout: true,
		})
		rep, err := sup.Run(5)
		if err != nil {
			t.Fatal(err)
		}
		return rep, c.Injected()
	}
	rep, injected := run()
	if injected == 0 {
		t.Fatal("corruptor never fired")
	}
	if rep.Quarantined == 0 {
		t.Error("no corrupted readout was quarantined")
	}
	if len(rep.Reports) != 5 {
		t.Errorf("accepted %d sequences, want 5", len(rep.Reports))
	}
	if rep.Condition != Degraded {
		t.Errorf("Condition = %v, want Degraded", rep.Condition)
	}
	// Nothing was silently evaluated on corrupt state: every accepted
	// verdict matches the clean evaluation of the same ideal stream. The
	// accepted sequences are those whose indices survived quarantine, so
	// compare by start bit against an unsupervised pass over more
	// sequences than could ever be consumed.
	clean := newMonitor(t, 128, hwblock.Light, 0.001)
	want, err := clean.Watch(trng.NewIdeal(8), 5+rep.Quarantined)
	if err != nil {
		t.Fatal(err)
	}
	byStart := map[int64]*SequenceReport{}
	for i := range want {
		byStart[want[i].StartBit] = &want[i]
	}
	for _, r := range rep.Reports {
		w, ok := byStart[r.StartBit]
		if !ok {
			t.Fatalf("accepted sequence at bit %d has no clean counterpart", r.StartBit)
		}
		if !reportsAgree(r.Report, w.Report) {
			t.Errorf("sequence at bit %d: accepted verdicts differ from clean evaluation", r.StartBit)
		}
	}
	// Reproducible from the fixed seeds.
	again, injectedAgain := run()
	if again.Quarantined != rep.Quarantined || injectedAgain != injected {
		t.Errorf("seeded corruption runs diverged: %d/%d vs %d/%d quarantines/injections",
			again.Quarantined, injectedAgain, rep.Quarantined, injected)
	}
}

func TestVerifiedEvaluationDetectsSingleCorruptRead(t *testing.T) {
	// Deterministic corruption: exactly one bus read (the third of the
	// first pass) is flipped. The doubled pass must disagree.
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	for i := 0; i < 128; i++ {
		done, err := m.clockBit(1)
		if err != nil {
			t.Fatal(err)
		}
		if done && i != 127 {
			t.Fatal("sequence completed early")
		}
	}
	reads := 0
	m.Block().RegFile().SetReadFault(func(addr int, w uint16) uint16 {
		reads++
		if reads == 3 {
			return w ^ 0x0010
		}
		return w
	})
	defer m.Block().RegFile().SetReadFault(nil)
	if _, err := m.completeSequence(true); !errors.Is(err, ErrReadoutMismatch) {
		t.Fatalf("verified evaluation returned %v, want ErrReadoutMismatch", err)
	}
}

func TestSupervisorQuarantineBreaker(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	c := faultinject.CorruptRegFile(m.Block().RegFile(), 0.5, 9)
	defer c.Detach()
	sup := NewSupervisor(m, trng.NewIdeal(10), nil, SupervisorConfig{
		VerifyReadout:   true,
		QuarantineLimit: 4,
	})
	rep, err := sup.Run(3)
	if err == nil {
		t.Fatal("permanently corrupt readout did not abort the run")
	}
	if !errors.Is(err, ErrReadoutMismatch) {
		t.Errorf("breaker error %v does not wrap ErrReadoutMismatch", err)
	}
	if rep.Condition != SourceFault {
		t.Errorf("Condition = %v, want SourceFault", rep.Condition)
	}
	if rep.Quarantined < 4 {
		t.Errorf("Quarantined = %d, want >= limit", rep.Quarantined)
	}
}

func TestSupervisorStatFailIsDistinct(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	policy, err := NewAlarmPolicy(2)
	if err != nil {
		t.Fatal(err)
	}
	// A statistically broken but operationally flawless source: the
	// verdict must be StatFail, not any operational condition.
	sup := NewSupervisor(m, trng.NewBiased(0.9, 13), nil, SupervisorConfig{Policy: policy})
	rep, err := sup.Run(10)
	if err != nil {
		t.Fatalf("a statistical latch is a detection, not an error: %v", err)
	}
	if rep.Condition != StatFail {
		t.Errorf("Condition = %v, want StatFail", rep.Condition)
	}
	if len(rep.Reports) != 2 {
		t.Errorf("run stopped after %d sequences, want 2 (threshold)", len(rep.Reports))
	}
	if !policy.Latched() {
		t.Error("policy not latched")
	}
	last := rep.Events[len(rep.Events)-1]
	if last.Kind != EventAlarmLatched {
		t.Errorf("final event = %v, want alarm-latched", last)
	}
	if rep.Quarantined != 0 || rep.Retries != 0 {
		t.Errorf("operational counters nonzero on a purely statistical failure: %+v", rep)
	}
}

func TestSupervisorHealthyRunIsOK(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.001)
	policy, err := NewAlarmPolicy(2)
	if err != nil {
		t.Fatal(err)
	}
	sup := NewSupervisor(m, trng.NewIdeal(15), trng.NewIdeal(16), SupervisorConfig{
		BitDeadline:   time.Second,
		VerifyReadout: true,
		Policy:        policy,
	})
	rep, err := sup.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Condition != OK {
		t.Errorf("Condition = %v, want OK", rep.Condition)
	}
	if len(rep.Reports) != 5 || rep.Quarantined != 0 || rep.Retries != 0 || len(rep.Events) != 0 {
		t.Errorf("healthy run report: %+v", rep)
	}
	if rep.FailoverBit != -1 {
		t.Errorf("FailoverBit = %d, want -1", rep.FailoverBit)
	}
}

func TestSupervisorFailoverThenStatisticalDetection(t *testing.T) {
	// End to end: the primary stalls, the supervisor fails over — onto a
	// standby that turns out to be statistically broken. The monitor must
	// both survive the operational fault and then catch the bad standby.
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	stall := faultinject.NewStall(trng.NewIdeal(41), 300)
	defer stall.Release()
	policy, err := NewAlarmPolicy(2)
	if err != nil {
		t.Fatal(err)
	}
	sup := NewSupervisor(m, stall, trng.NewStuckAt(1), SupervisorConfig{
		BitDeadline: 10 * time.Millisecond,
		Policy:      policy,
	})
	rep, err := sup.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Condition != StatFail {
		t.Errorf("Condition = %v, want StatFail (latch outranks failover)", rep.Condition)
	}
	if !policy.Latched() {
		t.Error("stuck standby never latched the alarm")
	}
	if rep.FailoverBit != 300 {
		t.Errorf("FailoverBit = %d, want 300", rep.FailoverBit)
	}
}
