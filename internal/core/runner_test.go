package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hwblock"
	"repro/internal/trng"
)

func runnerConfig(t *testing.T) hwblock.Config {
	t.Helper()
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestRunSequencesDeterministic runs the same trials serially and across
// pools of several sizes: every report must be identical, verdict by
// verdict, regardless of scheduling.
func TestRunSequencesDeterministic(t *testing.T) {
	cfg := runnerConfig(t)
	const trials = 12
	makeSource := func(trial int) trng.Source {
		return trng.NewBiased(0.55, int64(trial)*7+1)
	}
	serial, err := RunSequences(cfg, 0.01, trials, 1, makeSource)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := RunSequences(cfg, 0.01, trials, workers, makeSource)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i].Index != serial[i].Index || got[i].StartBit != serial[i].StartBit {
				t.Fatalf("workers=%d trial %d: header differs", workers, i)
			}
			if !reflect.DeepEqual(got[i].Report.Verdicts, serial[i].Report.Verdicts) {
				t.Fatalf("workers=%d trial %d: verdicts differ\n got: %+v\nwant: %+v",
					workers, i, got[i].Report.Verdicts, serial[i].Report.Verdicts)
			}
		}
	}
}

// TestPowerSweepWorkersIdentical checks the acceptance criterion directly:
// the parallel sweep must be byte-identical to the serial one.
func TestPowerSweepWorkersIdentical(t *testing.T) {
	cfg := runnerConfig(t)
	severities := []float64{0.52, 0.58, 0.65}
	makeSource := func(sev float64, seed int64) trng.Source {
		return trng.NewBiased(sev, seed*13+int64(sev*1000))
	}
	serial, err := PowerSweepWorkers(cfg, 0.01, severities, 8, 1, makeSource)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := PowerSweepWorkers(cfg, 0.01, severities, 8, 0, makeSource)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sweep results differ between worker counts:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	// PowerSweep itself routes through the pool and must agree too.
	viaDefault, err := PowerSweep(cfg, 0.01, severities, 8, makeSource)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, viaDefault) {
		t.Fatal("PowerSweep disagrees with explicit-worker sweep")
	}
}

// truncatedSource yields n bits then fails, for error-path coverage.
type truncatedSource struct {
	inner trng.Source
	left  int
}

func (s *truncatedSource) Name() string { return "truncated" }

func (s *truncatedSource) ReadBit() (byte, error) {
	if s.left <= 0 {
		return 0, errors.New("source exhausted")
	}
	s.left--
	return s.inner.ReadBit()
}

// TestRunSequencesFirstErrorByIndex checks that the reported failure is the
// lowest failing trial index, independent of completion order.
func TestRunSequencesFirstErrorByIndex(t *testing.T) {
	cfg := runnerConfig(t)
	_, err := RunSequences(cfg, 0.01, 8, 4, func(trial int) trng.Source {
		if trial == 3 || trial == 6 {
			return &truncatedSource{inner: trng.NewIdeal(int64(trial)), left: 10}
		}
		return trng.NewIdeal(int64(trial))
	})
	if err == nil {
		t.Fatal("expected an error from the truncated trials")
	}
	if !strings.Contains(err.Error(), "trial 3") {
		t.Fatalf("error %q does not name the first failing trial (3)", err)
	}
}
