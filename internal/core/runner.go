package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hwblock"
	"repro/internal/obs"
	"repro/internal/sweval"
	"repro/internal/trng"
)

// SequenceRunner shards independent test sequences across a pool of worker
// goroutines, one monitor per worker. Each trial gets its own source
// (built by the caller's factory from the trial index), so the work is
// embarrassingly parallel and the results are deterministic: results[i]
// depends only on makeSource(i), never on scheduling, and running with one
// worker or sixteen produces identical reports.
type SequenceRunner struct {
	// Cfg is the monitored design.
	Cfg hwblock.Config
	// Alpha is the level of significance.
	Alpha float64
	// Workers is the pool size; ≤ 0 means GOMAXPROCS.
	Workers int
	// Path selects the ingest path for every worker's block (the default,
	// hwblock.FastPath, is the word-level model).
	Path hwblock.IngestPath
	// Opts are passed to the software evaluator's critical-value
	// derivation.
	Opts []sweval.Option
	// Obs, if set, instruments every worker monitor through the shared
	// registry and exposes per-worker utilization
	// (trng_runner_trials_total by worker). The registry's counters are
	// atomic, so sharing them across workers is race-free, and because
	// results stay index-addressed the determinism guarantee is
	// unchanged: instrumented and uninstrumented runs produce identical
	// reports.
	Obs *obs.Registry
}

// Run evaluates one sequence per trial: trial i is monitored over the
// source makeSource(i), and its report lands at index i of the result.
// Worker monitors are reset — not reallocated — between trials. The first
// failing trial (by index, not by completion order) aborts the run with
// its error.
func (sr *SequenceRunner) Run(trials int, makeSource func(trial int) trng.Source) ([]SequenceReport, error) {
	if trials < 1 {
		return nil, fmt.Errorf("core: need at least one trial")
	}
	workers := sr.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	// Build the monitors up front so construction errors surface before
	// any goroutine starts.
	mons := make([]*Monitor, workers)
	for i := range mons {
		m, err := NewMonitor(sr.Cfg, sr.Alpha, sr.Opts...)
		if err != nil {
			return nil, err
		}
		if err := m.Block().SetPath(sr.Path); err != nil {
			return nil, err
		}
		m.SetObs(sr.Obs)
		mons[i] = m
	}
	sr.Obs.Gauge("trng_runner_workers", "worker-pool size of the sequence fan-out").
		Set(float64(workers))

	results := make([]SequenceReport, trials)
	errs := make([]error, trials)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		m := mons[w]
		trialsDone := sr.Obs.Counter("trng_runner_trials_total",
			"trials completed per fan-out worker", "worker", fmt.Sprintf("%d", w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= trials {
					return
				}
				m.Reset()
				reps, err := m.Watch(makeSource(i), 1)
				trialsDone.Inc()
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = reps[0]
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: trial %d: %w", i, err)
		}
	}
	return results, nil
}

// RunSequences monitors trials independent sequences in parallel with the
// default runner configuration; workers ≤ 0 uses GOMAXPROCS. See
// SequenceRunner for the determinism guarantee.
func RunSequences(cfg hwblock.Config, alpha float64, trials, workers int,
	makeSource func(trial int) trng.Source) ([]SequenceReport, error) {
	sr := &SequenceRunner{Cfg: cfg, Alpha: alpha, Workers: workers}
	return sr.Run(trials, makeSource)
}
