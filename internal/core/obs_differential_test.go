package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/hwblock"
	"repro/internal/obs"
	"repro/internal/trng"
)

// renderReports serializes every statistical field of a run byte for byte,
// so two runs compare at the level the paper's results are stated at.
func renderReports(reps []SequenceReport) []byte {
	var b bytes.Buffer
	for _, r := range reps {
		fmt.Fprintf(&b, "seq %d start %d pass %v\n", r.Index, r.StartBit, r.Report.Pass())
		for _, v := range r.Report.Verdicts {
			fmt.Fprintf(&b, "  test %d stat %d thr %d pass %v note %q\n",
				v.TestID, v.Statistic, v.Threshold, v.Pass, v.Note)
		}
		fmt.Fprintf(&b, "  cost %s\n", r.Report.Cost.String())
	}
	return b.Bytes()
}

// TestObsDifferentialWatch proves the tentpole invariant: attaching a
// registry to a monitor changes no statistical output bit. Two monitors
// consume the same seeded stream; one is instrumented, one is not. Reports
// and final register images must be byte-identical.
func TestObsDifferentialWatch(t *testing.T) {
	for _, path := range []hwblock.IngestPath{hwblock.FastPath, hwblock.CycleAccurate} {
		plain := newMonitor(t, 128, hwblock.Light, 0.01)
		instr := newMonitor(t, 128, hwblock.Light, 0.01)
		if err := plain.Block().SetPath(path); err != nil {
			t.Fatal(err)
		}
		if err := instr.Block().SetPath(path); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		instr.SetObs(reg)

		// A biased source fails some tests, so both pass and fail verdict
		// counters fire on the instrumented side.
		plainReps, err := plain.Watch(trng.NewBiased(0.6, 7), 6)
		if err != nil {
			t.Fatal(err)
		}
		instrReps, err := instr.Watch(trng.NewBiased(0.6, 7), 6)
		if err != nil {
			t.Fatal(err)
		}

		pr, ir := renderReports(plainReps), renderReports(instrReps)
		if !bytes.Equal(pr, ir) {
			t.Errorf("%v: instrumented run diverged:\nplain:\n%s\ninstrumented:\n%s", path, pr, ir)
		}
		pi := plain.Block().RegFile().Image()
		ii := instr.Block().RegFile().Image()
		if !reflect.DeepEqual(pi, ii) {
			t.Errorf("%v: register images diverged:\nplain: %v\ninstr: %v", path, pi, ii)
		}

		// Sanity on the instrumented side: the counters saw the run.
		if got := reg.Counter("trng_monitor_sequences_total", "", "result", "pass").Value() +
			reg.Counter("trng_monitor_sequences_total", "", "result", "fail").Value(); got != 6 {
			t.Errorf("%v: instrumented sequence count = %d, want 6", path, got)
		}
		if reg.Gauge("trng_monitor_bits_seen", "").Value() != 6*128 {
			t.Errorf("%v: bits-seen gauge = %v, want %d",
				path, reg.Gauge("trng_monitor_bits_seen", "").Value(), 6*128)
		}
	}
}

// TestObsDifferentialSupervisor repeats the proof for the supervised
// pipeline: fault injection, retries and quarantine behave identically
// with and without a registry attached to supervisor and injectors.
func TestObsDifferentialSupervisor(t *testing.T) {
	build := func(reg *obs.Registry) *SupervisorReport {
		t.Helper()
		m := newMonitor(t, 128, hwblock.Light, 0.01)
		flaky := faultinject.NewFlaky(trng.NewIdeal(11), 0.01, 2, 99)
		flaky.SetObs(reg)
		sup := NewSupervisor(m, flaky, nil, SupervisorConfig{})
		sup.SetObs(reg)
		rep, err := sup.Run(5)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := build(nil)
	reg := obs.NewRegistry()
	instr := build(reg)
	if !reflect.DeepEqual(plain, instr) {
		t.Errorf("supervised runs diverged:\nplain: %+v\ninstrumented: %+v", plain, instr)
	}
	if plain.Retries == 0 {
		t.Error("fault rate produced no retries; the differential scenario is degenerate")
	}
	if got := int(reg.Counter("trng_supervisor_retries_total", "").Value()); got != instr.Retries {
		t.Errorf("retry counter = %d, want %d", got, instr.Retries)
	}
	if got := reg.Counter("trng_fault_injected_total", "", "kind", "flaky").Value(); got == 0 {
		t.Error("instrumented injector counted no faults")
	}
}

// TestObsDifferentialRunner proves the fan-out path: a parallel
// instrumented run equals a serial uninstrumented one report for report.
func TestObsDifferentialRunner(t *testing.T) {
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(trial int) trng.Source { return trng.NewIdeal(100 + int64(trial)) }
	plain, err := RunSequences(cfg, 0.01, 8, 1, mk)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sr := &SequenceRunner{Cfg: cfg, Alpha: 0.01, Workers: 4, Obs: reg}
	instr, err := sr.Run(8, mk)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderReports(plain), renderReports(instr)) {
		t.Error("instrumented parallel run diverged from serial uninstrumented run")
	}
	var trials uint64
	for w := 0; w < 4; w++ {
		trials += reg.Counter("trng_runner_trials_total", "", "worker", fmt.Sprintf("%d", w)).Value()
	}
	if trials != 8 {
		t.Errorf("per-worker trial counters sum to %d, want 8", trials)
	}
}
