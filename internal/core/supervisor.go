package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/trng"
)

// ErrWatchdog is the hard fault the per-bit watchdog raises when a source
// misses its bit deadline: the bit never arrived, so no retry budget
// helps — the supervisor quarantines the sequence and fails over.
var ErrWatchdog = errors.New("core: watchdog: source missed its bit deadline")

// Condition classifies the supervisor's operational verdict. Statistical
// failure and operational failure are deliberately distinct: a latched
// alarm means the monitor *worked* (it caught a bad bit stream), while a
// source fault means the monitor could not do its job at all. Conflating
// the two is exactly the failure mode AIS-31-style retest semantics warn
// about.
type Condition int

const (
	// OK: the run completed with no operational faults and no latched
	// statistical alarm.
	OK Condition = iota
	// Degraded: the run completed, but only by absorbing operational
	// faults — retried reads and/or quarantined sequences.
	Degraded
	// FailedOver: the run completed on the standby source after the
	// primary was lost.
	FailedOver
	// StatFail: the alarm policy latched on consecutive statistical
	// failures; the TRNG was taken out of service.
	StatFail
	// SourceFault: an unrecoverable source failure with no standby left;
	// the run aborted early with partial results.
	SourceFault
)

// String returns the condition's report label.
func (c Condition) String() string {
	switch c {
	case OK:
		return "ok"
	case Degraded:
		return "degraded"
	case FailedOver:
		return "failed-over"
	case StatFail:
		return "stat-fail"
	case SourceFault:
		return "source-fault"
	}
	return fmt.Sprintf("condition(%d)", int(c))
}

// EventKind labels one entry of the supervisor's operational timeline.
type EventKind int

const (
	// EventQuarantine: an in-flight sequence was discarded and the
	// hardware reset instead of evaluating corrupt state.
	EventQuarantine EventKind = iota
	// EventWatchdog: a source read missed the bit deadline.
	EventWatchdog
	// EventFailover: the supervisor switched to the standby source.
	EventFailover
	// EventAlarmLatched: the alarm policy latched; the run stopped.
	EventAlarmLatched
)

// String returns the event kind's report label.
func (k EventKind) String() string {
	switch k {
	case EventQuarantine:
		return "quarantine"
	case EventWatchdog:
		return "watchdog"
	case EventFailover:
		return "failover"
	case EventAlarmLatched:
		return "alarm-latched"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one operational incident, stamped with the monitor's absolute
// bit position and sequence index at the time.
type Event struct {
	Kind   EventKind
	Bit    int64
	Seq    int
	Detail string
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("[bit %d, seq %d] %s: %s", e.Bit, e.Seq, e.Kind, e.Detail)
}

// DefaultMaxRetries is the per-bit transient retry budget when
// SupervisorConfig.MaxRetries is zero.
const DefaultMaxRetries = 3

// DefaultQuarantineLimit is the consecutive-quarantine circuit breaker
// when SupervisorConfig.QuarantineLimit is zero: a monitor that cannot
// accept a single sequence between quarantines is not degraded, it is
// down, and Run must return rather than spin.
const DefaultQuarantineLimit = 16

// SupervisorConfig tunes the supervision layer.
type SupervisorConfig struct {
	// MaxRetries is the per-bit retry budget for transient read faults
	// (errors wrapping trng.ErrTransient). 0 means DefaultMaxRetries;
	// negative disables retries.
	MaxRetries int
	// Backoff is the sleep before the first retry, doubling per attempt.
	// 0 retries immediately.
	Backoff time.Duration
	// BitDeadline arms the watchdog: a ReadBit that takes longer is
	// declared a stall (a hard fault — quarantine, then failover). 0
	// disables the watchdog and reads are performed inline.
	BitDeadline time.Duration
	// VerifyReadout runs the software evaluation twice per sequence and
	// quarantines the sequence when the passes disagree — the double-read
	// defense against corrupted counter transmission.
	VerifyReadout bool
	// QuarantineLimit aborts the run (Condition SourceFault) after this
	// many consecutive quarantines with no accepted sequence in between.
	// 0 means DefaultQuarantineLimit; negative disables the breaker.
	QuarantineLimit int
	// Policy, if set, folds every accepted report into the alarm policy;
	// a latch stops the run with Condition StatFail.
	Policy *AlarmPolicy
	// Online, if set, runs a streaming anomaly tracker (internal/online)
	// over every bit the monitor accepts and latches the statistical
	// alarm — same StatFail verdict, same EventAlarmLatched timeline
	// entry as a Policy latch — as soon as the score trajectory confirms
	// a drift, without waiting for the sequence boundary. Zero fields
	// select defaults derived from the monitored design (window = N).
	Online *online.Config
	// Sleep is the backoff clock, replaceable in tests. nil means
	// time.Sleep.
	Sleep func(time.Duration)
}

// SupervisorReport is the outcome of one supervised run: the accepted
// sequence reports plus the operational verdict and incident timeline.
type SupervisorReport struct {
	// Reports are the sequence reports that were accepted (evaluated on
	// trusted state). Quarantined sequences do not appear.
	Reports []SequenceReport
	// Condition is the overall verdict; see the Condition constants.
	Condition Condition
	// Quarantined counts sequences discarded without evaluation.
	Quarantined int
	// Retries counts transient read faults absorbed by retrying.
	Retries int
	// FailoverBit is the absolute bit position of the failover, or -1.
	FailoverBit int64
	// ActiveSource names the source that served the final bits.
	ActiveSource string
	// Events is the incident timeline (quarantines, watchdog trips,
	// failover, alarm latch). Retries are counted, not logged.
	Events []Event
	// OnlineScore is the streaming anomaly score at the end of the run
	// (0 when online tracking is disabled or the window never filled).
	OnlineScore float64
	// OnlineDetectedAt is the absolute bit position at which the online
	// tracker's alarm latched, or -1 (also -1 when tracking is disabled).
	OnlineDetectedAt int64
}

// Supervisor wraps a Monitor with the operational fault handling a
// deployed on-the-fly monitor needs: retry-with-backoff for transient
// source errors, a per-bit watchdog for stalls, quarantine of sequences
// touched by faults (the hardware is reset rather than evaluated on
// corrupt state), failover to a standby source, verified counter readout,
// and AIS-31-style alarm integration with distinct operational and
// statistical verdicts.
//
// A Supervisor is not safe for concurrent use; the watchdog's reader
// goroutine is an implementation detail and never touches the monitor.
type Supervisor struct {
	mon     *Monitor
	primary trng.Source
	standby trng.Source
	cfg     SupervisorConfig

	src           trng.Source     // source currently in use
	reader        *srcReader      // watchdog reader for src (nil until needed)
	tracker       *online.Tracker // streaming anomaly tracker (nil unless cfg.Online)
	trackerErr    error           // deferred cfg.Online validation failure
	usingStandby  bool
	latched       bool
	aborted       bool
	quarantined   int
	quarantineRun int // consecutive quarantines since the last accepted sequence
	retries       int
	failoverBit   int64
	events        []Event

	// Observability handles, cached by SetObs; nil-safe no-ops otherwise.
	obs          *obs.Registry
	obsRetries   *obs.Counter
	obsEvents    map[EventKind]*obs.Counter
	obsCondition *obs.Gauge
}

// NewSupervisor supervises mon over the primary source, failing over to
// standby (which may be nil) if the primary is lost.
func NewSupervisor(mon *Monitor, primary, standby trng.Source, cfg SupervisorConfig) *Supervisor {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.QuarantineLimit == 0 {
		cfg.QuarantineLimit = DefaultQuarantineLimit
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	s := &Supervisor{
		mon:         mon,
		primary:     primary,
		standby:     standby,
		cfg:         cfg,
		src:         primary,
		failoverBit: -1,
	}
	if cfg.Online != nil {
		// Validation is deferred to the first Run so this constructor
		// keeps its no-error signature.
		s.tracker, s.trackerErr = online.New(mon.Config(), *cfg.Online)
	}
	return s
}

// OnlineTracker returns the streaming anomaly tracker, or nil when
// SupervisorConfig.Online is unset.
func (s *Supervisor) OnlineTracker() *online.Tracker { return s.tracker }

// Monitor returns the supervised monitor.
func (s *Supervisor) Monitor() *Monitor { return s.mon }

// Reset returns the supervisor — and its monitor — to the just-built
// state so a pooled supervisor can be re-targeted at a fresh stream
// without leaking the previous run's verdicts, incident timeline, breaker
// progress or failover state into the next tenant. The configured sources
// are kept; an armed watchdog reader is abandoned (a fresh one is built on
// demand) and the alarm policy, if any, is cleared.
func (s *Supervisor) Reset() {
	s.mon.Reset()
	if s.cfg.Policy != nil {
		s.cfg.Policy.Reset()
	}
	if s.tracker != nil {
		s.tracker.Reset()
	}
	if s.reader != nil {
		s.reader.abandon()
		s.reader = nil
	}
	s.src = s.primary
	s.usingStandby = false
	s.latched = false
	s.aborted = false
	s.quarantined = 0
	s.quarantineRun = 0
	s.retries = 0
	s.failoverBit = -1
	for i := range s.events {
		s.events[i] = Event{}
	}
	s.events = s.events[:0]
}

// SetObs attaches an observability registry to the supervisor and to its
// monitor: retry and per-kind incident counters, an operational-condition
// gauge (the numeric Condition value), and the incident timeline mirrored
// into the registry's event trace as supervisor.* events. A nil registry
// detaches both layers.
func (s *Supervisor) SetObs(r *obs.Registry) {
	s.obs = r
	s.mon.SetObs(r)
	if r == nil {
		s.obsRetries, s.obsEvents, s.obsCondition = nil, nil, nil
		return
	}
	s.obsRetries = r.Counter("trng_supervisor_retries_total",
		"transient source-read faults absorbed by the retry budget")
	s.obsEvents = make(map[EventKind]*obs.Counter, 4)
	for _, k := range []EventKind{EventQuarantine, EventWatchdog, EventFailover, EventAlarmLatched} {
		s.obsEvents[k] = r.Counter("trng_supervisor_events_total",
			"operational incidents by kind (quarantine, watchdog, failover, alarm latch)",
			"kind", k.String())
	}
	s.obsCondition = r.Gauge("trng_supervisor_condition",
		"current operational verdict: 0 ok, 1 degraded, 2 failed-over, 3 stat-fail, 4 source-fault")
}

// Run supervises the monitor until the requested number of sequences have
// been accepted (quarantined sequences do not count), the alarm policy
// latches, or the source fails unrecoverably. The returned report is never
// nil; the error is non-nil only for an unrecoverable fault (a
// *SourceError, inspectable with errors.As) or an internal evaluation
// error. Run may be called again to continue the same supervised stream.
func (s *Supervisor) Run(sequences int) (*SupervisorReport, error) {
	if s.trackerErr != nil {
		return s.report(nil), fmt.Errorf("core: online tracker: %w", s.trackerErr)
	}
	var accepted []SequenceReport
	for len(accepted) < sequences {
		bit, err := s.readBit()
		if err != nil {
			s.aborted = true
			return s.report(accepted), &SourceError{Bit: s.mon.bitsSeen, Err: err}
		}
		done, err := s.mon.clockBit(bit)
		if err != nil {
			return s.report(accepted), err
		}
		// The online tracker sees every bit the monitor accepted, so a
		// confirmed score excursion latches the statistical alarm
		// mid-sequence — detection does not wait for the boundary. When
		// the latch lands exactly on a boundary bit the completed
		// sequence is still evaluated first, leaving the monitor clean.
		scoreLatched := false
		if s.tracker != nil && !s.latched {
			s.tracker.Push(uint64(bit), 1)
			if s.tracker.Alarmed() {
				s.latched = true
				scoreLatched = true
				s.event(EventAlarmLatched, fmt.Sprintf("online anomaly score %.2f confirmed at bit %d",
					s.tracker.Score(), s.tracker.DetectedAt()))
			}
		}
		if !done {
			if scoreLatched {
				break
			}
			continue
		}
		rep, err := s.mon.completeSequence(s.cfg.VerifyReadout)
		if err != nil {
			if errors.Is(err, ErrReadoutMismatch) {
				s.quarantine("register readout mismatch")
				if scoreLatched {
					break
				}
				if s.cfg.QuarantineLimit > 0 && s.quarantineRun >= s.cfg.QuarantineLimit {
					s.aborted = true
					return s.report(accepted), fmt.Errorf("core: %d consecutive quarantines — readout path unusable: %w",
						s.quarantineRun, ErrReadoutMismatch)
				}
				continue
			}
			return s.report(accepted), err
		}
		s.quarantineRun = 0
		accepted = append(accepted, *rep)
		if s.cfg.Policy != nil && s.cfg.Policy.Observe(rep) && !s.latched {
			s.latched = true
			s.event(EventAlarmLatched, fmt.Sprintf("after %d consecutive failures", s.cfg.Policy.Threshold))
			break
		}
		if scoreLatched {
			break
		}
	}
	return s.report(accepted), nil
}

// readBit obtains one bit from the active source, absorbing transient
// faults with the retry budget and surviving hard faults by failover.
// A hard fault (retry budget exhausted, watchdog trip, or non-transient
// error) quarantines the in-flight sequence first: its earlier bits may
// already be suspect, and the paper's always-on hardware makes a discarded
// sequence cheap — the next one starts on the very next bit.
func (s *Supervisor) readBit() (byte, error) {
	for {
		var lastErr error
		attempts := 0
		for {
			bit, err := s.readOnce()
			if err == nil {
				return bit, nil
			}
			lastErr = err
			if !errors.Is(err, trng.ErrTransient) || attempts >= s.cfg.MaxRetries {
				break
			}
			attempts++
			s.retries++
			s.obsRetries.Inc()
			if s.cfg.Backoff > 0 {
				s.cfg.Sleep(s.cfg.Backoff << uint(attempts-1))
			}
		}
		s.quarantine(fmt.Sprintf("source fault: %v", lastErr))
		if s.standby != nil && !s.usingStandby {
			s.failover(lastErr)
			continue
		}
		return 0, lastErr
	}
}

// readOnce performs a single read, under the watchdog when armed.
func (s *Supervisor) readOnce() (byte, error) {
	if s.cfg.BitDeadline <= 0 {
		return s.src.ReadBit()
	}
	if s.reader == nil {
		s.reader = newSrcReader(s.src)
	}
	s.reader.req <- struct{}{}
	//trnglint:allow determinism the per-bit watchdog is deliberately wall-clock: it exists to bound a stalled hardware read, and it only fires on the fault paths the differential suites never take
	timer := time.NewTimer(s.cfg.BitDeadline)
	defer timer.Stop()
	select {
	case r := <-s.reader.res:
		return r.bit, r.err
	case <-timer.C:
		// Abandon the hung reader; a failover gets a fresh one. The
		// goroutine parks on its buffered result channel and exits if the
		// blocked read ever returns.
		s.reader.abandon()
		s.reader = nil
		s.event(EventWatchdog, fmt.Sprintf("no bit within %v from %s", s.cfg.BitDeadline, s.src.Name()))
		return 0, ErrWatchdog
	}
}

// quarantine discards the in-flight sequence, if any bits are at risk.
func (s *Supervisor) quarantine(detail string) {
	if s.mon.block.BitsSeen() == 0 {
		return // fault landed exactly on a sequence boundary: nothing at risk
	}
	s.quarantined++
	s.quarantineRun++
	s.mon.quarantineSequence()
	s.event(EventQuarantine, detail)
}

// failover switches the supervised stream to the standby source.
func (s *Supervisor) failover(cause error) {
	s.usingStandby = true
	s.src = s.standby
	s.reader = nil
	s.failoverBit = s.mon.bitsSeen
	s.event(EventFailover, fmt.Sprintf("%s -> %s after %v", s.primary.Name(), s.standby.Name(), cause))
}

// event appends one incident, stamped with the monitor's position, and
// mirrors it into the attached registry (per-kind counter + trace event).
func (s *Supervisor) event(kind EventKind, detail string) {
	s.events = append(s.events, Event{Kind: kind, Bit: s.mon.bitsSeen, Seq: s.mon.seq, Detail: detail})
	if s.obs != nil {
		s.obsEvents[kind].Inc()
		s.obs.Emit("supervisor."+kind.String(), s.mon.bitsSeen, detail)
	}
}

// Condition reports the supervisor's current overall verdict.
func (s *Supervisor) Condition() Condition {
	switch {
	case s.aborted:
		return SourceFault
	case s.latched:
		return StatFail
	case s.usingStandby:
		return FailedOver
	case s.quarantined > 0 || s.retries > 0:
		return Degraded
	}
	return OK
}

// Quarantined reports how many sequences have been discarded.
func (s *Supervisor) Quarantined() int { return s.quarantined }

// Retries reports how many transient read faults have been absorbed.
func (s *Supervisor) Retries() int { return s.retries }

// Events returns the incident timeline so far.
func (s *Supervisor) Events() []Event { return s.events }

func (s *Supervisor) report(accepted []SequenceReport) *SupervisorReport {
	s.obsCondition.Set(float64(s.Condition()))
	rep := &SupervisorReport{
		Reports:          accepted,
		Condition:        s.Condition(),
		Quarantined:      s.quarantined,
		Retries:          s.retries,
		FailoverBit:      s.failoverBit,
		ActiveSource:     s.src.Name(),
		Events:           append([]Event(nil), s.events...),
		OnlineDetectedAt: -1,
	}
	if s.tracker != nil {
		rep.OnlineScore = s.tracker.Score()
		rep.OnlineDetectedAt = s.tracker.DetectedAt()
	}
	return rep
}

// srcReader runs a source's blocking ReadBit calls on a dedicated
// goroutine so the supervisor can time them out. One request is in flight
// at a time; the result channel is buffered so an abandoned reader whose
// read eventually completes can deliver, notice the closed request
// channel, and exit instead of leaking.
type srcReader struct {
	req chan struct{}
	res chan readResult
}

type readResult struct {
	bit byte
	err error
}

func newSrcReader(src trng.Source) *srcReader {
	r := &srcReader{req: make(chan struct{}, 1), res: make(chan readResult, 1)}
	go func() {
		for range r.req {
			b, err := src.ReadBit()
			r.res <- readResult{b, err}
		}
	}()
	return r
}

// abandon tells the reader no further requests are coming. If its current
// read is blocked forever (a true stall), the goroutine stays parked in
// ReadBit — indistinguishable from the hung hardware it models — and
// exits as soon as the read returns.
func (r *srcReader) abandon() { close(r.req) }
