package core

import "fmt"

// AlarmPolicy turns per-sequence verdicts into an operational alarm the way
// AIS-31-class evaluations prescribe: a single failing sequence is a
// "noise alarm" (expected to occur at rate ≈ α·tests on a healthy source)
// and triggers a retest; only Threshold consecutive failing sequences latch
// the failure alarm that takes the TRNG out of service. This keeps the
// false-alarm rate of the deployed monitor near α^Threshold per sequence
// while barely delaying the detection of genuine defects (which fail every
// sequence).
type AlarmPolicy struct {
	// Threshold is the number of consecutive failing sequences that latch
	// the alarm (AIS-31 uses retest-once semantics, Threshold = 2).
	Threshold int

	consecutive int
	latched     bool
	noiseAlarms int
	total       int
}

// NewAlarmPolicy returns a policy latching after threshold consecutive
// failures.
func NewAlarmPolicy(threshold int) (*AlarmPolicy, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("core: alarm threshold %d must be ≥ 1", threshold)
	}
	return &AlarmPolicy{Threshold: threshold}, nil
}

// Observe folds one sequence report into the policy and reports whether the
// failure alarm is (now) latched.
func (a *AlarmPolicy) Observe(r *SequenceReport) bool {
	a.total++
	if r.Report.Pass() {
		a.consecutive = 0
		return a.latched
	}
	a.consecutive++
	a.noiseAlarms++
	if a.consecutive >= a.Threshold {
		a.latched = true
	}
	return a.latched
}

// Latched reports whether the failure alarm has fired.
func (a *AlarmPolicy) Latched() bool { return a.latched }

// NoiseAlarms returns the number of failing sequences observed (including
// those that latched).
func (a *AlarmPolicy) NoiseAlarms() int { return a.noiseAlarms }

// Sequences returns the number of sequences observed.
func (a *AlarmPolicy) Sequences() int { return a.total }

// Reset clears the latch and counters (a serviced restart).
func (a *AlarmPolicy) Reset() {
	a.consecutive, a.noiseAlarms, a.total = 0, 0, 0
	a.latched = false
}
