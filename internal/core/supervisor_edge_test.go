package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/hwblock"
	"repro/internal/trng"
)

// TestSupervisorBreakerTripsDuringStandbyFailover exercises the
// interaction the fault paths only see one at a time elsewhere: the
// primary source dies hard mid-sequence (triggering failover to the
// standby) while the register readout path is corrupt, so the verified
// evaluation keeps mismatching AFTER the failover and the consecutive-
// quarantine breaker must trip on the standby — the failover does not
// reset breaker progress, because the readout path (not the source) is
// what is broken.
func TestSupervisorBreakerTripsDuringStandbyFailover(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	c := faultinject.CorruptRegFile(m.Block().RegFile(), 0.5, 9)
	defer c.Detach()

	primary := newFiniteSource(3, 200) // hard fault mid-second-sequence
	standby := trng.NewIdeal(7)
	sup := NewSupervisor(m, primary, standby, SupervisorConfig{
		VerifyReadout:   true,
		QuarantineLimit: 4,
	})
	rep, err := sup.Run(6)
	if err == nil {
		t.Fatal("corrupt readout survived the failover without tripping the breaker")
	}
	if !errors.Is(err, ErrReadoutMismatch) {
		t.Errorf("breaker error %v does not wrap ErrReadoutMismatch", err)
	}
	if rep.Condition != SourceFault {
		t.Errorf("Condition = %v, want SourceFault (breaker outranks failed-over)", rep.Condition)
	}
	if rep.FailoverBit != 200 {
		t.Errorf("FailoverBit = %d, want 200 (primary exhausted mid-sequence)", rep.FailoverBit)
	}
	if rep.ActiveSource != standby.Name() {
		t.Errorf("ActiveSource = %q, want the standby %q", rep.ActiveSource, standby.Name())
	}
	if rep.Quarantined < 4 {
		t.Errorf("Quarantined = %d, want >= limit 4", rep.Quarantined)
	}
	if len(rep.Reports) != 0 {
		t.Errorf("%d sequences accepted off a corrupt readout path", len(rep.Reports))
	}
	// The trip itself must postdate the failover: the last quarantine in
	// the timeline happened while the standby was serving bits.
	var sawFailover bool
	var lastQuarantine Event
	for _, e := range rep.Events {
		switch e.Kind {
		case EventFailover:
			sawFailover = true
		case EventQuarantine:
			lastQuarantine = e
		}
	}
	if !sawFailover {
		t.Fatal("no failover event in the timeline")
	}
	if lastQuarantine.Bit <= rep.FailoverBit {
		t.Errorf("final quarantine at bit %d, want after the failover at bit %d",
			lastQuarantine.Bit, rep.FailoverBit)
	}
}

// TestSupervisorReadoutMismatchThenWatchdogExpiry drives the two
// concurrent defense layers into the same run: a corrupt readout path
// quarantines the first sequence via ErrReadoutMismatch, then the source
// stalls mid-second-sequence and the watchdog's reader goroutine must
// time the blocked read out while the mismatch quarantine is still the
// latest incident. With no standby the run aborts as a SourceError
// wrapping ErrWatchdog; run under -race this also proves the reader
// goroutine and the timer shut down cleanly.
func TestSupervisorReadoutMismatchThenWatchdogExpiry(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	c := faultinject.CorruptRegFile(m.Block().RegFile(), 0.5, 11)
	defer c.Detach()

	stall := faultinject.NewStall(trng.NewIdeal(5), 200)
	defer stall.Release() // let the abandoned reader goroutine exit

	sup := NewSupervisor(m, stall, nil, SupervisorConfig{
		VerifyReadout: true,
		BitDeadline:   20 * time.Millisecond,
	})
	rep, err := sup.Run(3)
	if err == nil {
		t.Fatal("stalled source did not abort the run")
	}
	if !errors.Is(err, ErrWatchdog) {
		t.Errorf("error %v does not wrap ErrWatchdog", err)
	}
	var se *SourceError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a SourceError", err)
	} else if se.Bit != 200 {
		t.Errorf("stall detected at bit %d, want 200", se.Bit)
	}
	if rep.Condition != SourceFault {
		t.Errorf("Condition = %v, want SourceFault (no standby to fail over to)", rep.Condition)
	}
	// Both defense layers fired in order: a mismatch quarantine for the
	// first sequence, then the watchdog, then the quarantine of the
	// stall-truncated sequence.
	if rep.Quarantined != 2 {
		t.Errorf("Quarantined = %d, want 2 (mismatched seq 1 + stalled seq 2)", rep.Quarantined)
	}
	var kinds []EventKind
	for _, e := range rep.Events {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{EventQuarantine, EventWatchdog, EventQuarantine}
	if len(kinds) != len(want) {
		t.Fatalf("timeline %v, want kinds %v", rep.Events, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("timeline %v, want kinds %v", rep.Events, want)
		}
	}
	if wd := rep.Events[1]; wd.Bit != 200 {
		t.Errorf("watchdog event at bit %d, want 200", wd.Bit)
	}
}
