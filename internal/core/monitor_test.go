package core

import (
	"testing"

	"repro/internal/hwblock"
	"repro/internal/sweval"
	"repro/internal/trng"
)

func newMonitor(t *testing.T, n int, v hwblock.Variant, alpha float64) *Monitor {
	t.Helper()
	cfg, err := hwblock.NewConfig(n, v)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(cfg, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonitorPassesIdealSource(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.001)
	reps, err := m.Watch(trng.NewIdeal(1), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 20 {
		t.Fatalf("got %d reports, want 20", len(reps))
	}
	failures := 0
	for _, r := range reps {
		if !r.Report.Pass() {
			failures++
		}
	}
	// At alpha = 0.001 over 20 sequences × 5 tests, even one failure is
	// unusual but possible; two or more indicate a bug.
	if failures > 1 {
		t.Errorf("%d of 20 ideal sequences failed at alpha=0.001", failures)
	}
}

func TestMonitorSequenceBookkeeping(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	reps, err := m.Watch(trng.NewIdeal(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reps {
		if r.Index != i {
			t.Errorf("report %d has index %d", i, r.Index)
		}
		if r.StartBit != int64(i*128) {
			t.Errorf("report %d starts at bit %d, want %d", i, r.StartBit, i*128)
		}
	}
	if m.BitsSeen() != 3*128 {
		t.Errorf("BitsSeen = %d, want %d", m.BitsSeen(), 3*128)
	}
	if len(m.History()) != 3 {
		t.Errorf("history has %d entries", len(m.History()))
	}
}

func TestMonitorHistoryBound(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	m.KeepHistory = 2
	if _, err := m.Watch(trng.NewIdeal(3), 5); err != nil {
		t.Fatal(err)
	}
	if len(m.History()) != 2 {
		t.Errorf("history has %d entries, want 2", len(m.History()))
	}
	if m.History()[1].Index != 4 {
		t.Errorf("newest history entry is %d, want 4", m.History()[1].Index)
	}
}

func TestMonitorFeedReturnsNilMidSequence(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	for i := 0; i < 127; i++ {
		rep, err := m.Feed(1)
		if err != nil {
			t.Fatal(err)
		}
		if rep != nil {
			t.Fatalf("report produced after only %d bits", i+1)
		}
	}
	rep, err := m.Feed(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no report after full sequence")
	}
	if rep.Report.Pass() {
		t.Error("all-ones sequence passed")
	}
}

func TestMonitorDetectsOnsetAttack(t *testing.T) {
	// Healthy ring oscillator for 3 sequences, then frequency-injection
	// lock. The monitor must flag within a few sequences of the onset.
	cfg, err := hwblock.NewConfig(128, hwblock.Medium)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	onset := int64(3 * 128)
	healthy := trng.NewRingOscillator(100.37, 1.0, 4)
	locked := trng.NewRingOscillator(100.37, 0.0005, 5)
	src := trng.NewSwitchAt(healthy, locked, int(onset))

	res, err := m.DetectionLatency(src, onset, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("locked oscillator never detected")
	}
	if res.LatencyBits > 20*128 {
		t.Errorf("detection took %d bits (%d sequences)", res.LatencyBits, res.LatencyBits/128)
	}
	if len(res.FailedTests) == 0 {
		t.Error("no failed tests recorded")
	}
}

func TestMonitorStuckDetectionIsImmediate(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	res, err := m.DetectionLatency(trng.NewStuckAt(0), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || res.SequenceIndex != 0 {
		t.Errorf("stuck source not detected in the first sequence: %+v", res)
	}
	if res.LatencyBits != 128 {
		t.Errorf("latency = %d bits, want 128 (one sequence)", res.LatencyBits)
	}
}

func TestMonitorSetAlpha(t *testing.T) {
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	if m.Alpha() != 0.01 {
		t.Fatalf("Alpha = %g", m.Alpha())
	}
	if err := m.SetAlpha(0.001); err != nil {
		t.Fatal(err)
	}
	if m.Alpha() != 0.001 {
		t.Errorf("Alpha after SetAlpha = %g", m.Alpha())
	}
	if err := m.SetAlpha(0); err == nil {
		t.Error("invalid alpha accepted")
	}
	// The monitor must keep working after the change.
	if _, err := m.Watch(trng.NewIdeal(6), 1); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorWithCustomConfig(t *testing.T) {
	// The future-work extension: a 4096-bit sequence with a custom test
	// subset.
	cfg, err := hwblock.NewCustomConfig("custom-4096", 4096, []int{1, 2, 3, 13})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := m.Watch(trng.NewIdeal(7), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d reports", len(reps))
	}
	res, err := m.DetectionLatency(trng.NewBiased(0.8, 8), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Error("custom config failed to detect heavy bias")
	}
}

func TestCustomConfigValidation(t *testing.T) {
	if _, err := hwblock.NewCustomConfig("bad", 1000, []int{1}); err == nil {
		t.Error("non-power-of-two length accepted")
	}
	if _, err := hwblock.NewCustomConfig("bad", 4096, []int{5}); err == nil {
		t.Error("HW-unsuitable test accepted")
	}
}

func TestMonitorRunsTableOption(t *testing.T) {
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(cfg, 0.01, sweval.WithRunsMethod(sweval.RunsExact))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Watch(trng.NewIdeal(9), 1); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorSoak runs the platform the way a deployment would: fifty
// 65536-bit sequences from a healthy oscillator through the medium design
// with AIS-31 retest semantics. The failure alarm must never latch and the
// noise-alarm count must stay near alpha x tests x sequences.
func TestMonitorSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg, err := hwblock.NewConfig(65536, hwblock.Medium)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(cfg, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	m.KeepHistory = 10
	policy, err := NewAlarmPolicy(2)
	if err != nil {
		t.Fatal(err)
	}
	src := trng.NewRingOscillator(100.37, 1.0, 31)
	for seq := 0; seq < 50; seq++ {
		reps, err := m.Watch(src, 1)
		if err != nil {
			t.Fatal(err)
		}
		policy.Observe(&reps[0])
	}
	if policy.Latched() {
		t.Errorf("failure alarm latched on a healthy source (%d noise alarms)", policy.NoiseAlarms())
	}
	// Expected noise alarms ≈ 50 sequences × 6 tests × 0.001 = 0.3.
	if policy.NoiseAlarms() > 3 {
		t.Errorf("%d noise alarms in 50 sequences — false-alarm rate too high", policy.NoiseAlarms())
	}
	if len(m.History()) != 10 {
		t.Errorf("history kept %d entries, want 10", len(m.History()))
	}
	if m.BitsSeen() != 50*65536 {
		t.Errorf("BitsSeen = %d", m.BitsSeen())
	}
}
