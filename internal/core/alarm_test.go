package core

import (
	"testing"

	"repro/internal/hwblock"
	"repro/internal/sweval"
	"repro/internal/trng"
)

// fakeReport builds a SequenceReport whose Pass() is the given value.
func fakeReport(pass bool) *SequenceReport {
	rep := &sweval.Report{}
	if !pass {
		rep.Verdicts = append(rep.Verdicts, sweval.Verdict{TestID: 1, Pass: false})
	} else {
		rep.Verdicts = append(rep.Verdicts, sweval.Verdict{TestID: 1, Pass: true})
	}
	return &SequenceReport{Report: rep}
}

func TestAlarmPolicyLatchesOnConsecutiveFailures(t *testing.T) {
	a, err := NewAlarmPolicy(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Observe(fakeReport(false)) {
		t.Error("latched after a single failure with threshold 2")
	}
	if !a.Observe(fakeReport(false)) {
		t.Error("did not latch after two consecutive failures")
	}
	// The latch is sticky.
	if !a.Observe(fakeReport(true)) {
		t.Error("latch cleared by a passing sequence")
	}
}

func TestAlarmPolicyRetestClearsStreak(t *testing.T) {
	a, err := NewAlarmPolicy(2)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(fakeReport(false))
	a.Observe(fakeReport(true)) // successful retest
	a.Observe(fakeReport(false))
	if a.Latched() {
		t.Error("non-consecutive failures latched the alarm")
	}
	if a.NoiseAlarms() != 2 {
		t.Errorf("NoiseAlarms = %d, want 2", a.NoiseAlarms())
	}
	if a.Sequences() != 3 {
		t.Errorf("Sequences = %d, want 3", a.Sequences())
	}
}

func TestAlarmPolicyThresholdOne(t *testing.T) {
	a, err := NewAlarmPolicy(1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Observe(fakeReport(false)) {
		t.Error("threshold 1 did not latch on first failure")
	}
}

func TestAlarmPolicyLatchPersistsThroughPasses(t *testing.T) {
	// Once latched, no amount of subsequent passing sequences clears the
	// alarm — only an explicit Reset (a serviced restart) does. The
	// counters keep counting while latched.
	a, err := NewAlarmPolicy(2)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(fakeReport(false))
	a.Observe(fakeReport(false))
	if !a.Latched() {
		t.Fatal("did not latch")
	}
	for i := 0; i < 10; i++ {
		if !a.Observe(fakeReport(true)) {
			t.Fatalf("latch cleared by pass %d", i)
		}
	}
	if a.Sequences() != 12 {
		t.Errorf("Sequences = %d, want 12 (observation continues while latched)", a.Sequences())
	}
	if a.NoiseAlarms() != 2 {
		t.Errorf("NoiseAlarms = %d, want 2", a.NoiseAlarms())
	}
}

func TestAlarmPolicyResetMidStreak(t *testing.T) {
	// A Reset in the middle of a failure streak clears the consecutive
	// counter: the streak does not resume across a serviced restart.
	a, err := NewAlarmPolicy(3)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(fakeReport(false))
	a.Observe(fakeReport(false))
	a.Reset()
	a.Observe(fakeReport(false))
	a.Observe(fakeReport(false))
	if a.Latched() {
		t.Error("streak survived Reset: latched after 2+2 split failures with threshold 3")
	}
	if a.Observe(fakeReport(false)) != true {
		t.Error("did not latch after 3 consecutive post-Reset failures")
	}
}

func TestAlarmPolicyResetAfterLatchAllowsRelatch(t *testing.T) {
	a, err := NewAlarmPolicy(1)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 1: the very first failure latches immediately.
	if !a.Observe(fakeReport(false)) {
		t.Fatal("threshold 1 did not latch on the first failure")
	}
	a.Reset()
	if a.Latched() {
		t.Fatal("Reset did not clear the latch")
	}
	if a.Observe(fakeReport(true)) {
		t.Error("latched on a passing sequence after Reset")
	}
	if !a.Observe(fakeReport(false)) {
		t.Error("did not re-latch on the next failure after Reset")
	}
}

func TestAlarmPolicyValidation(t *testing.T) {
	if _, err := NewAlarmPolicy(0); err == nil {
		t.Error("threshold 0 accepted")
	}
}

func TestAlarmPolicyReset(t *testing.T) {
	a, _ := NewAlarmPolicy(1)
	a.Observe(fakeReport(false))
	a.Reset()
	if a.Latched() || a.NoiseAlarms() != 0 || a.Sequences() != 0 {
		t.Error("reset did not clear policy state")
	}
}

func TestAlarmPolicyEndToEndHealthySource(t *testing.T) {
	// A healthy source with retest-once semantics: over 40 sequences the
	// failure alarm must not latch even if a chance noise alarm occurs.
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	policy, err := NewAlarmPolicy(2)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := m.Watch(trng.NewIdeal(11), 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reps {
		policy.Observe(&reps[i])
	}
	if policy.Latched() {
		t.Errorf("failure alarm latched on a healthy source (%d noise alarms in %d sequences)",
			policy.NoiseAlarms(), policy.Sequences())
	}
}

func TestAlarmPolicyEndToEndDefectiveSource(t *testing.T) {
	// A genuinely defective source fails every sequence: the latch fires
	// on the second one.
	m := newMonitor(t, 128, hwblock.Light, 0.01)
	policy, err := NewAlarmPolicy(2)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := m.Watch(trng.NewBiased(0.8, 12), 5)
	if err != nil {
		t.Fatal(err)
	}
	latchedAt := -1
	for i := range reps {
		if policy.Observe(&reps[i]) && latchedAt < 0 {
			latchedAt = i
		}
	}
	if latchedAt != 1 {
		t.Errorf("latched at sequence %d, want 1", latchedAt)
	}
}
