// Package hwblock implements the paper's hardware testing block: a set of
// bit-serial test engines built from the internal/hwsim primitives,
// digesting the TRNG stream one bit per clock and exposing the accumulated
// raw statistics through a 7-bit-address, 16-bit-data memory-mapped
// register file.
//
// The package realizes the paper's four area tricks (§III-C):
//
//   - Omitting a redundant counter: there is no ones counter; tests 1 and 3
//     derive N_ones from the final value of the cusum up/down counter.
//   - Block detection: every block length is a power of two, so block
//     boundaries are specific bits of the global bit counter.
//   - Unified implementation: the approximate-entropy test reads the serial
//     test's pattern counters and adds no hardware of its own.
//   - Shared shift register: one 9-bit shift register feeds both template
//     tests and (through its low bits) the serial-test pattern decoder.
//
// Eight design variants (three sequence lengths × up to three feature
// levels) reproduce the configurations of the paper's Table III.
package hwblock

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/hwsim"
	"repro/internal/nist"
)

// Variant is a feature level of the testing block.
type Variant int

// The paper's three feature levels.
const (
	Light Variant = iota
	Medium
	High
)

// String returns the variant's Table III column label.
func (v Variant) String() string {
	switch v {
	case Light:
		return "light"
	case Medium:
		return "medium"
	case High:
		return "high"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Config describes one testing-block design: the sequence length, the
// subset of NIST tests implemented, and the per-test parameters (all block
// lengths are powers of two so block boundaries come from global-counter
// bits).
type Config struct {
	// Name labels the design, e.g. "n65536-medium".
	Name string
	// N is the test sequence length in bits.
	N int
	// Tests lists the implemented SP800-22 test numbers, ascending.
	Tests []int
	// Params carries the per-test parameters; they must match the
	// reference suite's parameters for the same length so the HW/SW
	// decision can be validated against the reference decision.
	Params nist.Params
}

// Has reports whether the configuration implements test id.
func (c Config) Has(id int) bool {
	for _, t := range c.Tests {
		if t == id {
			return true
		}
	}
	return false
}

// TestsFor returns the test subset of a variant at sequence length n,
// following the paper's Table III dot matrix (see DESIGN.md for the
// inference): light is the five quick-failure tests everywhere; medium adds
// the serial/ApEn pair at n=128 (where 9-bit templates are statistically
// meaningless) and the non-overlapping template test at the longer lengths;
// high implements all nine.
func TestsFor(n int, v Variant) ([]int, error) {
	light := []int{1, 2, 3, 4, 13}
	switch v {
	case Light:
		return light, nil
	case Medium:
		if n <= 256 {
			return []int{1, 2, 3, 4, 11, 12, 13}, nil
		}
		return []int{1, 2, 3, 4, 7, 13}, nil
	case High:
		if n <= 256 {
			return nil, fmt.Errorf("hwblock: no high variant at n=%d", n)
		}
		return []int{1, 2, 3, 4, 7, 8, 11, 12, 13}, nil
	}
	return nil, fmt.Errorf("hwblock: unknown variant %d", v)
}

// NewConfig builds the design configuration for one of the paper's design
// points.
func NewConfig(n int, v Variant) (Config, error) {
	switch n {
	case 128, 65536, 1 << 20:
	default:
		return Config{}, fmt.Errorf("hwblock: unsupported sequence length %d (want 128, 65536 or 1048576)", n)
	}
	tests, err := TestsFor(n, v)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Name:   fmt.Sprintf("n%d-%s", n, v),
		N:      n,
		Tests:  tests,
		Params: nist.RecommendedParams(n),
	}, nil
}

// NewCustomConfig implements the paper's future-work extension ("allowing
// the software to select the length of the test sequence, as well as the
// test parameters"): an arbitrary power-of-two sequence length with an
// arbitrary subset of the nine implementable tests. Parameters are derived
// from the closest standard configuration and re-scaled so every block
// length stays a power of two that divides n.
func NewCustomConfig(name string, n int, tests []int) (Config, error) {
	if n < 64 || n&(n-1) != 0 {
		return Config{}, fmt.Errorf("hwblock: custom length %d must be a power of two ≥ 64", n)
	}
	implementable := map[int]bool{1: true, 2: true, 3: true, 4: true, 7: true,
		8: true, 11: true, 12: true, 13: true}
	for _, id := range tests {
		if !implementable[id] {
			return Config{}, fmt.Errorf("hwblock: test %d has no on-the-fly hardware implementation (Table I)", id)
		}
	}
	p := nist.RecommendedParams(n)
	// Re-scale block lengths that no longer divide n.
	for p.BlockFrequencyM > n/4 {
		p.BlockFrequencyM /= 2
	}
	for p.LongestRunM > n/4 && p.LongestRunM > 8 {
		p.LongestRunM /= 2
	}
	if p.OverlappingM > n {
		p.OverlappingM = n
	}
	return Config{Name: name, N: n, Tests: tests, Params: p}, nil
}

// AllConfigs returns the paper's eight design points in Table III column
// order.
func AllConfigs() []Config {
	var out []Config
	for _, n := range []int{128, 65536, 1 << 20} {
		for _, v := range []Variant{Light, Medium, High} {
			cfg, err := NewConfig(n, v)
			if err != nil {
				continue // n=128 has no high variant
			}
			out = append(out, cfg)
		}
	}
	return out
}

// Block is one instantiated hardware testing block. Feed it exactly N bits
// with Clock (or Run); then read the raw statistics through the register
// file. The paper's usage is HW-always-on: call Reset and feed the next
// sequence while the software evaluates the previous counters (the register
// file snapshot survives until the next Reset via Snapshot).
type Block struct {
	cfg    Config
	nl     *hwsim.Netlist
	rf     *RegFile
	global *hwsim.Counter

	walk       *walkEngine
	runs       *runsEngine
	blockFreq  *blockFreqEngine
	longestRun *longestRunEngine
	shift      *hwsim.ShiftReg // shared by tests 7, 8, 11, 12
	nonOv      *nonOverlapEngine
	overlap    *overlapEngine
	serial     *serialEngine

	bits int
	done bool
}

// New instantiates the design described by cfg.
func New(cfg Config) (*Block, error) {
	if cfg.N < 8 {
		return nil, fmt.Errorf("hwblock: sequence length %d too small", cfg.N)
	}
	b := &Block{
		cfg: cfg,
		nl:  hwsim.NewNetlist(cfg.Name),
		rf:  NewRegFile(),
	}
	b.global = hwsim.NewCounter(b.nl, "global_bits", uint64(cfg.N))
	b.rf.Add("GLOBAL_BITS", 0, b.global.Width(), func() uint64 { return b.global.Value() })

	// The walk engine exists in every variant: it serves test 13 and, via
	// S_final, tests 1 and 3 (the "omitted redundant counter").
	b.walk = newWalkEngine(b, cfg.N)
	if cfg.Has(3) {
		b.runs = newRunsEngine(b, cfg.N)
	}
	if cfg.Has(2) {
		b.blockFreq = newBlockFreqEngine(b, cfg.Params.BlockFrequencyM, cfg.N/cfg.Params.BlockFrequencyM)
	}
	if cfg.Has(4) {
		e, err := newLongestRunEngine(b, cfg.Params.LongestRunM, cfg.N/cfg.Params.LongestRunM)
		if err != nil {
			return nil, err
		}
		b.longestRun = e
	}
	if cfg.Has(7) || cfg.Has(8) || cfg.Has(11) || cfg.Has(12) {
		// The shared shift register is sized for the widest consumer.
		width := cfg.Params.SerialM
		if cfg.Has(7) || cfg.Has(8) {
			width = cfg.Params.TemplateM
		}
		b.shift = hwsim.NewShiftReg(b.nl, "shared_pattern", width)
	}
	if cfg.Has(7) {
		b.nonOv = newNonOverlapEngine(b, cfg.Params.TemplateB, cfg.Params.TemplateM,
			cfg.Params.NonOverlappingN, cfg.N/cfg.Params.NonOverlappingN)
	}
	if cfg.Has(8) {
		b.overlap = newOverlapEngine(b, cfg.Params.TemplateM, cfg.Params.OverlappingM,
			cfg.N/cfg.Params.OverlappingM)
	}
	if cfg.Has(11) || cfg.Has(12) {
		b.serial = newSerialEngine(b, cfg.Params.SerialM, cfg.N)
	}
	b.nl.SetMuxWords(b.rf.Words())
	if err := b.rf.CheckAddressSpace(); err != nil {
		return nil, err
	}
	return b, nil
}

// Config returns the block's design configuration.
func (b *Block) Config() Config { return b.cfg }

// Netlist returns the structural inventory, the input to the area model.
func (b *Block) Netlist() *hwsim.Netlist { return b.nl }

// RegFile returns the memory-mapped register file.
func (b *Block) RegFile() *RegFile { return b.rf }

// BitsSeen reports how many bits have been clocked in since reset.
func (b *Block) BitsSeen() int { return b.bits }

// Done reports whether the block has absorbed a full N-bit sequence (and
// run its end-of-sequence finalization).
func (b *Block) Done() bool { return b.done }

// Clock feeds one bit into every engine — the operation the hardware
// performs in a single clock cycle ("after receiving each random bit from
// the generator, all update calculations finish within one clock cycle").
func (b *Block) Clock(bit byte) error {
	if b.done {
		return fmt.Errorf("hwblock: sequence complete; Reset before feeding more bits")
	}
	bit &= 1
	t := b.bits

	b.walk.clock(bit)
	if b.runs != nil {
		b.runs.clock(bit, t)
	}
	if b.blockFreq != nil {
		b.blockFreq.clock(bit, t)
	}
	if b.longestRun != nil {
		b.longestRun.clock(bit, t)
	}
	if b.shift != nil {
		b.shift.Shift(bit)
	}
	if b.nonOv != nil {
		b.nonOv.clock(t)
	}
	if b.overlap != nil {
		b.overlap.clock(t)
	}
	if b.serial != nil {
		b.serial.clock(bit)
	}

	b.global.Inc()
	b.bits++
	if b.bits == b.cfg.N {
		b.finalize()
	}
	return nil
}

// finalize runs the end-of-sequence fixups (the serial test's cyclic
// wrap-around feed).
func (b *Block) finalize() {
	if b.serial != nil {
		b.serial.finalize()
	}
	b.done = true
}

// Run drains exactly N bits from src into the block.
func (b *Block) Run(src bitstream.BitReader) error {
	for !b.done {
		bit, err := src.ReadBit()
		if err != nil {
			return fmt.Errorf("hwblock: source failed after %d bits: %w", b.bits, err)
		}
		if err := b.Clock(bit); err != nil {
			return err
		}
	}
	return nil
}

// Reset returns every engine to its power-on state so the next sequence can
// begin.
func (b *Block) Reset() {
	b.nl.Reset()
	if b.runs != nil {
		b.runs.resetLocal()
	}
	if b.blockFreq != nil {
		b.blockFreq.resetLocal()
	}
	if b.longestRun != nil {
		b.longestRun.resetLocal()
	}
	if b.nonOv != nil {
		b.nonOv.resetLocal()
	}
	if b.overlap != nil {
		b.overlap.resetLocal()
	}
	if b.serial != nil {
		b.serial.resetLocal()
	}
	b.bits = 0
	b.done = false
}
