// Package hwblock implements the paper's hardware testing block: a set of
// bit-serial test engines built from the internal/hwsim primitives,
// digesting the TRNG stream one bit per clock and exposing the accumulated
// raw statistics through a 7-bit-address, 16-bit-data memory-mapped
// register file.
//
// The package realizes the paper's four area tricks (§III-C):
//
//   - Omitting a redundant counter: there is no ones counter; tests 1 and 3
//     derive N_ones from the final value of the cusum up/down counter.
//   - Block detection: every block length is a power of two, so block
//     boundaries are specific bits of the global bit counter.
//   - Unified implementation: the approximate-entropy test reads the serial
//     test's pattern counters and adds no hardware of its own.
//   - Shared shift register: one 9-bit shift register feeds both template
//     tests and (through its low bits) the serial-test pattern decoder.
//
// Eight design variants (three sequence lengths × up to three feature
// levels) reproduce the configurations of the paper's Table III. The full
// memory map of every variant is generated into REGISTERS.md at the
// repository root (cmd/regmapdoc; `make docs` keeps it in sync).
//
// Blocks and register files accept an optional internal/obs registry
// (SetObs): ingested bits, completed sequences and bus transactions are
// then counted on the live exposition endpoint. The instrumentation is
// nil-safe and purely observational — the fast path pays one atomic add
// per 64-bit word, and the bit-exact equivalence between the two ingest
// paths is unaffected.
//
//trnglint:bus16
//trnglint:deterministic
package hwblock

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/hwfast"
	"repro/internal/hwsim"
	"repro/internal/nist"
	"repro/internal/obs"
)

// IngestPath selects how a Block digests the bit stream.
type IngestPath int

const (
	// FastPath (the default) runs the word-level functional model
	// (internal/hwfast) and publishes its state into the structural
	// register image lazily, on the first bus read. It is bit-exact with
	// the cycle-accurate path — the differential equivalence suite proves
	// register-file agreement on all eight design variants.
	FastPath IngestPath = iota
	// CycleAccurate clocks the structural hwsim netlist one bit at a time,
	// exactly as the hardware does — the golden reference.
	CycleAccurate
)

// String names the path for CLI/report output.
func (p IngestPath) String() string {
	switch p {
	case FastPath:
		return "fast"
	case CycleAccurate:
		return "cycle-accurate"
	}
	return fmt.Sprintf("path(%d)", int(p))
}

// Variant is a feature level of the testing block.
type Variant int

// The paper's three feature levels.
const (
	Light Variant = iota
	Medium
	High
)

// String returns the variant's Table III column label.
func (v Variant) String() string {
	switch v {
	case Light:
		return "light"
	case Medium:
		return "medium"
	case High:
		return "high"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Config describes one testing-block design: the sequence length, the
// subset of NIST tests implemented, and the per-test parameters (all block
// lengths are powers of two so block boundaries come from global-counter
// bits).
type Config struct {
	// Name labels the design, e.g. "n65536-medium".
	Name string
	// N is the test sequence length in bits.
	N int
	// Tests lists the implemented SP800-22 test numbers, ascending.
	Tests []int
	// Params carries the per-test parameters; they must match the
	// reference suite's parameters for the same length so the HW/SW
	// decision can be validated against the reference decision.
	Params nist.Params
}

// Has reports whether the configuration implements test id.
func (c Config) Has(id int) bool {
	for _, t := range c.Tests {
		if t == id {
			return true
		}
	}
	return false
}

// TestsFor returns the test subset of a variant at sequence length n,
// following the paper's Table III dot matrix (see DESIGN.md for the
// inference): light is the five quick-failure tests everywhere; medium adds
// the serial/ApEn pair at n=128 (where 9-bit templates are statistically
// meaningless) and the non-overlapping template test at the longer lengths;
// high implements all nine.
func TestsFor(n int, v Variant) ([]int, error) {
	light := []int{1, 2, 3, 4, 13}
	switch v {
	case Light:
		return light, nil
	case Medium:
		if n <= 256 {
			return []int{1, 2, 3, 4, 11, 12, 13}, nil
		}
		return []int{1, 2, 3, 4, 7, 13}, nil
	case High:
		if n <= 256 {
			return nil, fmt.Errorf("hwblock: no high variant at n=%d", n)
		}
		return []int{1, 2, 3, 4, 7, 8, 11, 12, 13}, nil
	}
	return nil, fmt.Errorf("hwblock: unknown variant %d", v)
}

// NewConfig builds the design configuration for one of the paper's design
// points.
func NewConfig(n int, v Variant) (Config, error) {
	switch n {
	case 128, 65536, 1 << 20:
	default:
		return Config{}, fmt.Errorf("hwblock: unsupported sequence length %d (want 128, 65536 or 1048576)", n)
	}
	tests, err := TestsFor(n, v)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Name:   fmt.Sprintf("n%d-%s", n, v),
		N:      n,
		Tests:  tests,
		Params: nist.RecommendedParams(n),
	}, nil
}

// NewCustomConfig implements the paper's future-work extension ("allowing
// the software to select the length of the test sequence, as well as the
// test parameters"): an arbitrary power-of-two sequence length with an
// arbitrary subset of the nine implementable tests. Parameters are derived
// from the closest standard configuration and re-scaled so every block
// length stays a power of two that divides n.
func NewCustomConfig(name string, n int, tests []int) (Config, error) {
	if n < 64 || n&(n-1) != 0 {
		return Config{}, fmt.Errorf("hwblock: custom length %d must be a power of two ≥ 64", n)
	}
	implementable := map[int]bool{1: true, 2: true, 3: true, 4: true, 7: true,
		8: true, 11: true, 12: true, 13: true}
	for _, id := range tests {
		if !implementable[id] {
			return Config{}, fmt.Errorf("hwblock: test %d has no on-the-fly hardware implementation (Table I)", id)
		}
	}
	p := nist.RecommendedParams(n)
	// Re-scale block lengths that no longer divide n.
	for p.BlockFrequencyM > n/4 {
		p.BlockFrequencyM /= 2
	}
	for p.LongestRunM > n/4 && p.LongestRunM > 8 {
		p.LongestRunM /= 2
	}
	if p.OverlappingM > n {
		p.OverlappingM = n
	}
	return Config{Name: name, N: n, Tests: tests, Params: p}, nil
}

// AllConfigs returns the paper's eight design points in Table III column
// order.
func AllConfigs() []Config {
	var out []Config
	for _, n := range []int{128, 65536, 1 << 20} {
		for _, v := range []Variant{Light, Medium, High} {
			cfg, err := NewConfig(n, v)
			if err != nil {
				continue // n=128 has no high variant
			}
			out = append(out, cfg)
		}
	}
	return out
}

// Block is one instantiated hardware testing block. Feed it exactly N bits
// with Clock (or Run); then read the raw statistics through the register
// file. The paper's usage is HW-always-on: call Reset and feed the next
// sequence while the software evaluates the previous counters (the register
// file snapshot survives until the next Reset via Snapshot).
type Block struct {
	cfg    Config
	nl     *hwsim.Netlist
	rf     *RegFile
	global *hwsim.Counter

	walk       *walkEngine
	runs       *runsEngine
	blockFreq  *blockFreqEngine
	longestRun *longestRunEngine
	shift      *hwsim.ShiftReg // shared by tests 7, 8, 11, 12
	nonOv      *nonOverlapEngine
	overlap    *overlapEngine
	serial     *serialEngine

	bits int
	done bool

	// Fast ingest path: the word-level functional model, a pending-bit
	// buffer batching per-bit Clock calls into word-level ingests, and a
	// dirty flag driving the lazy publish into the structural primitives.
	path  IngestPath
	fast  *hwfast.State
	pendW uint64
	pendN int
	dirty bool

	// Observability handles, cached by SetObs; nil-safe no-ops otherwise.
	// Fast-path bits are counted a word at a time (in flushPending and
	// ClockWord) so the instrumented hot path pays one atomic add per 64
	// bits, not per bit.
	obsBitsFast  *obs.Counter
	obsBitsCycle *obs.Counter
	obsWords     *obs.Counter
	obsSeqs      *obs.Counter
}

// New instantiates the design described by cfg.
func New(cfg Config) (*Block, error) {
	if cfg.N < 8 {
		return nil, fmt.Errorf("hwblock: sequence length %d too small", cfg.N)
	}
	b := &Block{
		cfg: cfg,
		nl:  hwsim.NewNetlist(cfg.Name),
		rf:  NewRegFile(),
	}
	b.global = hwsim.NewCounter(b.nl, "global_bits", uint64(cfg.N))
	b.rf.Add("GLOBAL_BITS", 0, b.global.Width(), func() uint64 { return b.global.Value() })

	// The walk engine exists in every variant: it serves test 13 and, via
	// S_final, tests 1 and 3 (the "omitted redundant counter").
	b.walk = newWalkEngine(b, cfg.N)
	if cfg.Has(3) {
		b.runs = newRunsEngine(b, cfg.N)
	}
	if cfg.Has(2) {
		b.blockFreq = newBlockFreqEngine(b, cfg.Params.BlockFrequencyM, cfg.N/cfg.Params.BlockFrequencyM)
	}
	if cfg.Has(4) {
		e, err := newLongestRunEngine(b, cfg.Params.LongestRunM, cfg.N/cfg.Params.LongestRunM)
		if err != nil {
			return nil, err
		}
		b.longestRun = e
	}
	if cfg.Has(7) || cfg.Has(8) || cfg.Has(11) || cfg.Has(12) {
		// The shared shift register is sized for the widest implemented
		// consumer: TemplateM stages for the template tests, SerialM for
		// the serial/ApEn window — either may be the larger one.
		width := 0
		if cfg.Has(11) || cfg.Has(12) {
			width = cfg.Params.SerialM
		}
		if (cfg.Has(7) || cfg.Has(8)) && cfg.Params.TemplateM > width {
			width = cfg.Params.TemplateM
		}
		b.shift = hwsim.NewShiftReg(b.nl, "shared_pattern", width)
	}
	if cfg.Has(7) {
		b.nonOv = newNonOverlapEngine(b, cfg.Params.TemplateB, cfg.Params.TemplateM,
			cfg.Params.NonOverlappingN, cfg.N/cfg.Params.NonOverlappingN)
	}
	if cfg.Has(8) {
		b.overlap = newOverlapEngine(b, cfg.Params.TemplateM, cfg.Params.OverlappingM,
			cfg.N/cfg.Params.OverlappingM)
	}
	if cfg.Has(11) || cfg.Has(12) {
		b.serial = newSerialEngine(b, cfg.Params.SerialM, cfg.N)
	}
	b.nl.SetMuxWords(b.rf.Words())
	if err := b.rf.CheckAddressSpace(); err != nil {
		return nil, err
	}
	// The word-level functional model is the default ingest path; designs
	// it cannot model (none of the standard or custom configurations today)
	// fall back to the cycle-accurate structural path.
	if fast, err := hwfast.New(cfg.N, cfg.Tests, cfg.Params); err == nil {
		b.fast = fast
		b.rf.SetPrepare(b.publish)
	} else {
		b.path = CycleAccurate
	}
	return b, nil
}

// SetObs attaches an observability registry: bits-ingested counters per
// path, a words counter for the fast path's 64-bit transfers, a completed-
// sequence counter, and the register file's bus-read counter. A nil
// registry detaches instrumentation. The counters never influence the
// digested statistics — the fast path stays bit-exact with the structural
// simulation either way.
func (b *Block) SetObs(r *obs.Registry) {
	b.rf.SetObs(r)
	if r == nil {
		b.obsBitsFast, b.obsBitsCycle, b.obsWords, b.obsSeqs = nil, nil, nil, nil
		return
	}
	const bitsHelp = "bits ingested by the hardware testing block, by ingest path"
	b.obsBitsFast = r.Counter("trng_ingest_bits_total", bitsHelp, "path", FastPath.String())
	b.obsBitsCycle = r.Counter("trng_ingest_bits_total", bitsHelp, "path", CycleAccurate.String())
	b.obsWords = r.Counter("trng_ingest_words_total",
		"word-level transfers into the fast-path functional model (up to 64 bits each)")
	b.obsSeqs = r.Counter("trng_ingest_sequences_total",
		"complete N-bit sequences absorbed by the testing block")
}

// Path reports the active ingest path.
func (b *Block) Path() IngestPath { return b.path }

// SetPath selects the ingest path. Switching is only allowed at a sequence
// boundary — before any bit of the next sequence has been clocked in.
func (b *Block) SetPath(p IngestPath) error {
	if p == b.path {
		return nil
	}
	if p == FastPath && b.fast == nil {
		return fmt.Errorf("hwblock: design %s has no fast-path model", b.cfg.Name)
	}
	if b.bits != 0 && !b.done {
		return fmt.Errorf("hwblock: cannot switch ingest path %d bits into a sequence", b.bits)
	}
	b.path = p
	return nil
}

// SetSliced selects bit-sliced assist mode for the fast path: the four
// word-parallelizable engines (walk/cusum, runs, block frequency, longest
// run) are maintained externally by a 64-stream lane group
// (internal/hwslice) and ClockWord advances only the bit position and the
// residual per-stream-order engines (templates, serial). Enabling it
// requires the fast path and a sequence boundary; the lane group hands the
// engine state back through LoadWordStats, which returns the block to
// normal ingest. Disabling is allowed any time (it is what LoadWordStats
// does implicitly). Like the ingest path, the mode survives Reset: it is a
// property of how the block is driven, not of the sequence in flight.
//
// While sliced, the register-file image of the four assisted engines is
// stale (the group holds their state); the fleet layer only evaluates
// after LoadWordStats, so a monitored stream never observes the staleness.
func (b *Block) SetSliced(on bool) error {
	if !on {
		if b.fast != nil {
			b.fast.SetExternal(false)
		}
		return nil
	}
	if b.path != FastPath || b.fast == nil {
		return fmt.Errorf("hwblock: bit-sliced assist requires the fast ingest path")
	}
	if b.bits != 0 && !b.done {
		return fmt.Errorf("hwblock: cannot enter bit-sliced assist %d bits into a sequence", b.bits)
	}
	b.flushPending()
	b.fast.SetExternal(true)
	return nil
}

// Sliced reports whether bit-sliced assist mode is active.
func (b *Block) Sliced() bool { return b.fast != nil && b.fast.External() }

// LoadWordStats hands the externally maintained sliceable-engine state back
// to the fast-path model (see hwfast.LoadWordStats) and marks the register
// image dirty so the next bus read republishes from the restored state.
// The block leaves assist mode: subsequent ClockWord calls ingest fully.
// Bits the hand-back fast-forwards over (a residual-free sliced stream
// skips ClockWord between boundaries) are accounted as fast-path ingest.
func (b *Block) LoadWordStats(ws *hwfast.WordStats) error {
	if b.path != FastPath || b.fast == nil {
		return fmt.Errorf("hwblock: word-stats hand-back requires the fast ingest path")
	}
	if b.pendN != 0 {
		return fmt.Errorf("hwblock: %d bits pending in the per-bit buffer", b.pendN)
	}
	pre := b.fast.BitsSeen()
	if err := b.fast.LoadWordStats(ws); err != nil {
		return err
	}
	if d := b.fast.BitsSeen() - pre; d > 0 {
		b.bits += d
		b.obsBitsFast.Add(uint64(d))
	}
	b.dirty = true
	return nil
}

// Config returns the block's design configuration.
func (b *Block) Config() Config { return b.cfg }

// Netlist returns the structural inventory, the input to the area model.
func (b *Block) Netlist() *hwsim.Netlist { return b.nl }

// RegFile returns the memory-mapped register file.
func (b *Block) RegFile() *RegFile { return b.rf }

// BitsSeen reports how many bits have been clocked in since reset.
func (b *Block) BitsSeen() int { return b.bits }

// Done reports whether the block has absorbed a full N-bit sequence (and
// run its end-of-sequence finalization).
func (b *Block) Done() bool { return b.done }

// Clock feeds one bit into the block — the operation the hardware performs
// in a single clock cycle ("after receiving each random bit from the
// generator, all update calculations finish within one clock cycle"). On
// the fast path the bit lands in a pending-word buffer that flushes into
// the functional model 64 bits at a time; on the cycle-accurate path it
// clocks the structural netlist directly.
func (b *Block) Clock(bit byte) error {
	if b.path != FastPath || b.fast == nil {
		return b.clockStructural(bit)
	}
	if b.done {
		return fmt.Errorf("hwblock: sequence complete; Reset before feeding more bits")
	}
	b.pendW |= uint64(bit&1) << uint(b.pendN)
	b.pendN++
	b.bits++
	b.dirty = true
	if b.pendN == 64 || b.bits == b.cfg.N {
		b.flushPending()
	}
	return nil
}

// ClockWord feeds nbits bits (1..64) in one call; bit i of w is the i-th
// bit chronologically, matching bitstream.Sequence packing. On the
// cycle-accurate path it decomposes into per-bit clocks.
func (b *Block) ClockWord(w uint64, nbits int) error {
	if b.done {
		return fmt.Errorf("hwblock: sequence complete; Reset before feeding more bits")
	}
	if nbits < 1 || nbits > 64 {
		return fmt.Errorf("hwblock: word size %d out of range [1,64]", nbits)
	}
	if b.path != FastPath || b.fast == nil {
		for i := 0; i < nbits; i++ {
			if err := b.clockStructural(byte(w >> uint(i))); err != nil {
				return err
			}
		}
		return nil
	}
	b.flushPending()
	if err := b.fast.ClockWord(w, nbits); err != nil {
		return err
	}
	b.bits += nbits
	b.dirty = true
	b.obsBitsFast.Add(uint64(nbits))
	b.obsWords.Inc()
	if b.fast.Done() {
		b.seqDone()
	}
	return nil
}

// flushPending drains the per-bit buffer into the functional model.
func (b *Block) flushPending() {
	if b.pendN == 0 {
		return
	}
	w, n := b.pendW, b.pendN
	b.pendW, b.pendN = 0, 0
	if err := b.fast.ClockWord(w, n); err != nil {
		// Unreachable: every pending bit was validated on acceptance.
		panic(err)
	}
	b.obsBitsFast.Add(uint64(n))
	b.obsWords.Inc()
	if b.fast.Done() {
		b.seqDone()
	}
}

// seqDone marks the sequence complete and counts it.
func (b *Block) seqDone() {
	b.done = true
	b.obsSeqs.Inc()
}

// publish loads the functional model's statistics into the structural
// primitives so the register file presents the exact image the bit-serial
// hardware would hold after the same stream prefix. It runs lazily, from
// the register file's prepare hook, and only when fast-path clocks have
// landed since the last publish.
func (b *Block) publish() {
	if !b.dirty {
		return
	}
	b.flushPending()
	b.dirty = false
	b.global.Load(uint64(b.bits))
	final, min, max := b.fast.Walk()
	b.walk.s.Load(final)
	b.walk.ext.Load(min, max)
	if b.runs != nil {
		b.runs.runs.Load(b.fast.Runs())
	}
	if b.blockFreq != nil {
		for i, v := range b.fast.BlockFreqBank() {
			b.blockFreq.bank[i].Load(v)
		}
	}
	if b.longestRun != nil {
		for i, v := range b.fast.LongestRunClasses() {
			b.longestRun.classes.Load(i, v)
		}
	}
	if b.nonOv != nil {
		for i, v := range b.fast.NonOverlapBank() {
			b.nonOv.bank[i].Load(v)
		}
	}
	if b.overlap != nil {
		for i, v := range b.fast.OverlapClasses() {
			b.overlap.classes.Load(i, v)
		}
	}
	if b.serial != nil {
		for i := 0; i < 3; i++ {
			for pat, v := range b.fast.SerialCounts(i) {
				b.serial.nu[i].Load(pat, v)
			}
		}
	}
}

// clockStructural feeds one bit into every structural engine — one clock
// cycle of the golden-reference netlist simulation.
func (b *Block) clockStructural(bit byte) error {
	if b.done {
		return fmt.Errorf("hwblock: sequence complete; Reset before feeding more bits")
	}
	bit &= 1
	t := b.bits

	b.walk.clock(bit)
	if b.runs != nil {
		b.runs.clock(bit, t)
	}
	if b.blockFreq != nil {
		b.blockFreq.clock(bit, t)
	}
	if b.longestRun != nil {
		b.longestRun.clock(bit, t)
	}
	if b.shift != nil {
		b.shift.Shift(bit)
	}
	if b.nonOv != nil {
		b.nonOv.clock(t)
	}
	if b.overlap != nil {
		b.overlap.clock(t)
	}
	if b.serial != nil {
		b.serial.clock(bit)
	}

	b.global.Inc()
	b.bits++
	b.obsBitsCycle.Inc()
	if b.bits == b.cfg.N {
		b.finalize()
	}
	return nil
}

// finalize runs the end-of-sequence fixups (the serial test's cyclic
// wrap-around feed).
func (b *Block) finalize() {
	if b.serial != nil {
		b.serial.finalize()
	}
	b.seqDone()
}

// Run drains exactly N bits from src into the block. When the fast path is
// active and the source supports word reads (bitstream.WordReader), the
// stream is ingested 64 bits per call; otherwise it falls back to per-bit
// reads.
func (b *Block) Run(src bitstream.BitReader) error {
	if b.path == FastPath && b.fast != nil {
		if wr, ok := src.(bitstream.WordReader); ok {
			return b.runWords(wr)
		}
	}
	for !b.done {
		bit, err := src.ReadBit()
		if err != nil {
			return fmt.Errorf("hwblock: source failed after %d bits: %w", b.bits, err)
		}
		if err := b.Clock(bit); err != nil {
			return err
		}
	}
	return nil
}

// runWords is the word-level ingest loop behind Run.
func (b *Block) runWords(wr bitstream.WordReader) error {
	b.flushPending()
	for !b.done {
		take := b.cfg.N - b.bits
		if take > 64 {
			take = 64
		}
		w, got, err := wr.ReadWord64(take)
		if got > 0 {
			if cerr := b.ClockWord(w, got); cerr != nil {
				return cerr
			}
		}
		if err != nil && !b.done {
			return fmt.Errorf("hwblock: source failed after %d bits: %w", b.bits, err)
		}
	}
	return nil
}

// Reset returns every engine to its power-on state so the next sequence can
// begin.
func (b *Block) Reset() {
	b.nl.Reset()
	if b.runs != nil {
		b.runs.resetLocal()
	}
	if b.blockFreq != nil {
		b.blockFreq.resetLocal()
	}
	if b.longestRun != nil {
		b.longestRun.resetLocal()
	}
	if b.nonOv != nil {
		b.nonOv.resetLocal()
	}
	if b.overlap != nil {
		b.overlap.resetLocal()
	}
	if b.serial != nil {
		b.serial.resetLocal()
	}
	if b.fast != nil {
		b.fast.Reset()
	}
	b.pendW, b.pendN = 0, 0
	b.dirty = false
	b.bits = 0
	b.done = false
}
