package hwblock

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/trng"
)

// feed clocks every bit of s into a fresh block built from cfg.
func feed(t *testing.T, cfg Config, s *bitstream.Sequence) *Block {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(bitstream.NewReader(s)); err != nil {
		t.Fatal(err)
	}
	if !b.Done() {
		t.Fatal("block not done after N bits")
	}
	return b
}

// cfg128 returns the n=128 medium configuration (tests 1,2,3,4,11,12,13).
func cfg128(t *testing.T) Config {
	t.Helper()
	cfg, err := NewConfig(128, Medium)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func readVal(t *testing.T, b *Block, name string) uint64 {
	t.Helper()
	v, _, err := b.RegFile().ReadValue(name)
	if err != nil {
		t.Fatalf("ReadValue(%s): %v", name, err)
	}
	return v
}

// readSigned reads an offset-binary walk value and recenters it.
func readSigned(t *testing.T, b *Block, name string) int {
	return int(readVal(t, b, name)) - b.Config().N
}

func TestAllConfigsCount(t *testing.T) {
	cfgs := AllConfigs()
	if len(cfgs) != 8 {
		t.Fatalf("got %d configs, want 8 (Table III)", len(cfgs))
	}
	wantTests := map[string]int{
		"n128-light":      5,
		"n128-medium":     7,
		"n65536-light":    5,
		"n65536-medium":   6,
		"n65536-high":     9,
		"n1048576-light":  5,
		"n1048576-medium": 6,
		"n1048576-high":   9,
	}
	for _, cfg := range cfgs {
		if got := len(cfg.Tests); got != wantTests[cfg.Name] {
			t.Errorf("%s: %d tests, want %d", cfg.Name, got, wantTests[cfg.Name])
		}
	}
}

func TestNoHighVariantAt128(t *testing.T) {
	if _, err := NewConfig(128, High); err == nil {
		t.Error("high variant at n=128 accepted")
	}
}

func TestUnsupportedLength(t *testing.T) {
	if _, err := NewConfig(4096, Light); err == nil {
		t.Error("unsupported length accepted")
	}
}

func TestRegisterFileFitsSevenBitAddress(t *testing.T) {
	for _, cfg := range AllConfigs() {
		b, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		words := b.RegFile().Words()
		if words > 128 {
			t.Errorf("%s: register file needs %d words, exceeds 7-bit address space", cfg.Name, words)
		}
		t.Logf("%s: %d register-file words", cfg.Name, words)
	}
}

func TestWalkMatchesBatch(t *testing.T) {
	s := trng.Read(trng.NewIdeal(1), 128)
	b := feed(t, cfg128(t), s)
	wMax, wMin, wFin := s.RandomWalk()
	if got := readSigned(t, b, "S_MAX"); got != wMax {
		t.Errorf("S_MAX = %d, want %d", got, wMax)
	}
	if got := readSigned(t, b, "S_MIN"); got != wMin {
		t.Errorf("S_MIN = %d, want %d", got, wMin)
	}
	if got := readSigned(t, b, "S_FINAL"); got != wFin {
		t.Errorf("S_FINAL = %d, want %d", got, wFin)
	}
}

func TestOnesDerivableFromWalk(t *testing.T) {
	s := trng.Read(trng.NewBiased(0.7, 2), 128)
	b := feed(t, cfg128(t), s)
	sFinal := readSigned(t, b, "S_FINAL")
	ones := (sFinal + 128) / 2
	if ones != s.Ones() {
		t.Errorf("derived ones = %d, want %d (the omitted-counter trick)", ones, s.Ones())
	}
}

func TestRunsMatchesBatch(t *testing.T) {
	s := trng.Read(trng.NewMarkov(0.7, 3), 128)
	b := feed(t, cfg128(t), s)
	if got := int(readVal(t, b, "N_RUNS")); got != s.Runs() {
		t.Errorf("N_RUNS = %d, want %d", got, s.Runs())
	}
}

func TestBlockFreqMatchesBatch(t *testing.T) {
	s := trng.Read(trng.NewIdeal(4), 128)
	b := feed(t, cfg128(t), s)
	want := s.BlockOnes(16)
	for i, w := range want {
		if got := int(readVal(t, b, fmt.Sprintf("BF_EPS_%d", i))); got != w {
			t.Errorf("BF_EPS_%d = %d, want %d", i, got, w)
		}
	}
}

func TestLongestRunClassesMatchBatch(t *testing.T) {
	s := trng.Read(trng.NewIdeal(5), 128)
	b := feed(t, cfg128(t), s)
	// Recompute classes from the batch per-block longest runs (M=8,
	// classes ≤1,2,3,≥4).
	want := make([]int, 4)
	for _, lr := range s.BlockLongestRuns(8) {
		switch {
		case lr <= 1:
			want[0]++
		case lr >= 4:
			want[3]++
		default:
			want[lr-1]++
		}
	}
	for i, w := range want {
		if got := int(readVal(t, b, fmt.Sprintf("LR_NU_%d", i))); got != w {
			t.Errorf("LR_NU_%d = %d, want %d", i, got, w)
		}
	}
}

func TestSerialCountersMatchBatch(t *testing.T) {
	s := trng.Read(trng.NewIdeal(6), 128)
	b := feed(t, cfg128(t), s)
	for _, m := range []int{4, 3, 2} {
		want := s.PatternCountsOverlapping(m)
		for pat := 0; pat < 1<<uint(m); pat++ {
			name := fmt.Sprintf("SERIAL_NU%d_%0*b", m, m, pat)
			if got := int(readVal(t, b, name)); got != want[pat] {
				t.Errorf("%s = %d, want %d", name, got, want[pat])
			}
		}
	}
}

func TestSerialCountersSumToN(t *testing.T) {
	s := trng.Read(trng.NewIdeal(7), 128)
	b := feed(t, cfg128(t), s)
	for _, m := range []int{4, 3, 2} {
		sum := 0
		for pat := 0; pat < 1<<uint(m); pat++ {
			sum += int(readVal(t, b, fmt.Sprintf("SERIAL_NU%d_%0*b", m, m, pat)))
		}
		if sum != 128 {
			t.Errorf("m=%d: pattern counts sum to %d, want 128", m, sum)
		}
	}
}

func TestTemplateEnginesMatchBatch(t *testing.T) {
	cfg, err := NewConfig(65536, High)
	if err != nil {
		t.Fatal(err)
	}
	s := trng.Read(trng.NewIdeal(8), 65536)
	b := feed(t, cfg, s)

	// Test 7: W_i per block of length 8192, template 000000001.
	blockLen := 65536 / cfg.Params.NonOverlappingN
	for i := 0; i < cfg.Params.NonOverlappingN; i++ {
		want := s.CountTemplateNonOverlapping(cfg.Params.TemplateB, 9, i*blockLen, (i+1)*blockLen)
		if got := int(readVal(t, b, fmt.Sprintf("NO_W_%d", i))); got != want {
			t.Errorf("NO_W_%d = %d, want %d", i, got, want)
		}
	}

	// Test 8: class counts over blocks of 1024 with the all-ones template.
	wantClass := make([]int, 6)
	allOnes := uint32(1<<9 - 1)
	for blk := 0; blk < 65536/1024; blk++ {
		c := s.CountTemplateOverlapping(allOnes, 9, blk*1024, (blk+1)*1024)
		if c > 5 {
			c = 5
		}
		wantClass[c]++
	}
	for i, w := range wantClass {
		if got := int(readVal(t, b, fmt.Sprintf("OV_NU_%d", i))); got != w {
			t.Errorf("OV_NU_%d = %d, want %d", i, got, w)
		}
	}
}

// Property: for random 128-bit sequences, every hardware statistic equals
// its batch counterpart. This is the bit-serial == batch equivalence the
// whole platform rests on.
func TestSerialEqualsBatchProperty(t *testing.T) {
	cfg := cfg128(t)
	f := func(seed int64) bool {
		s := trng.Read(trng.NewIdeal(seed), 128)
		b, err := New(cfg)
		if err != nil {
			return false
		}
		if err := b.Run(bitstream.NewReader(s)); err != nil {
			return false
		}
		wMax, wMin, wFin := s.RandomWalk()
		if int(mustRead(b, "S_MAX"))-128 != wMax ||
			int(mustRead(b, "S_MIN"))-128 != wMin ||
			int(mustRead(b, "S_FINAL"))-128 != wFin {
			return false
		}
		if int(mustRead(b, "N_RUNS")) != s.Runs() {
			return false
		}
		for pat := 0; pat < 16; pat++ {
			if int(mustRead(b, fmt.Sprintf("SERIAL_NU4_%04b", pat))) != s.PatternCountsOverlapping(4)[pat] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func mustRead(b *Block, name string) uint64 {
	v, _, err := b.RegFile().ReadValue(name)
	if err != nil {
		panic(err)
	}
	return v
}

func TestClockAfterDoneFails(t *testing.T) {
	b := feed(t, cfg128(t), trng.Read(trng.NewIdeal(9), 128))
	if err := b.Clock(1); err == nil {
		t.Error("Clock accepted a bit after the sequence completed")
	}
}

func TestResetAllowsReuse(t *testing.T) {
	cfg := cfg128(t)
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1 := trng.Read(trng.NewIdeal(10), 128)
	if err := b.Run(bitstream.NewReader(s1)); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if b.Done() || b.BitsSeen() != 0 {
		t.Fatal("reset did not clear sequence state")
	}
	s2 := trng.Read(trng.NewIdeal(11), 128)
	if err := b.Run(bitstream.NewReader(s2)); err != nil {
		t.Fatal(err)
	}
	if got := int(mustRead(b, "N_RUNS")); got != s2.Runs() {
		t.Errorf("after reset N_RUNS = %d, want %d (stale state?)", got, s2.Runs())
	}
	for pat := 0; pat < 16; pat++ {
		name := fmt.Sprintf("SERIAL_NU4_%04b", pat)
		if got := int(mustRead(b, name)); got != s2.PatternCountsOverlapping(4)[pat] {
			t.Errorf("after reset %s = %d, want %d", name, got, s2.PatternCountsOverlapping(4)[pat])
		}
	}
}

func TestRegFileReadWordUnmapped(t *testing.T) {
	b := feed(t, cfg128(t), trng.Read(trng.NewIdeal(12), 128))
	if got := b.RegFile().ReadWord(127); got != 0 {
		t.Errorf("unmapped read = %d, want 0", got)
	}
	if got := b.RegFile().ReadWord(-1); got != 0 {
		t.Errorf("negative read = %d, want 0", got)
	}
}

func TestRegFileDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate register name did not panic")
		}
	}()
	rf := NewRegFile()
	rf.Add("X", 1, 8, func() uint64 { return 0 })
	rf.Add("X", 1, 8, func() uint64 { return 0 })
}

func TestRegFileMultiWordValue(t *testing.T) {
	rf := NewRegFile()
	rf.Add("WIDE", 1, 21, func() uint64 { return 0x12345 })
	v, reads, err := rf.ReadValue("WIDE")
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x12345 {
		t.Errorf("value = %#x, want 0x12345", v)
	}
	if reads != 2 {
		t.Errorf("bus reads = %d, want 2", reads)
	}
}

func TestEntriesForTest(t *testing.T) {
	b, err := New(cfg128(t))
	if err != nil {
		t.Fatal(err)
	}
	serialEntries := b.RegFile().EntriesForTest(11)
	if len(serialEntries) != 28 { // 16 + 8 + 4 pattern counters
		t.Errorf("serial test exposes %d entries, want 28", len(serialEntries))
	}
	cusum := b.RegFile().EntriesForTest(13)
	if len(cusum) != 3 {
		t.Errorf("cusum exposes %d entries, want 3", len(cusum))
	}
}

func TestSourceFailurePropagates(t *testing.T) {
	b, err := New(cfg128(t))
	if err != nil {
		t.Fatal(err)
	}
	short, _ := bitstream.ParseASCII("1010")
	if err := b.Run(bitstream.NewReader(short)); err == nil {
		t.Error("Run succeeded with a source that ran dry")
	}
}

func TestLargeVariantEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("2^20-bit feed is slow")
	}
	cfg, err := NewConfig(1<<20, High)
	if err != nil {
		t.Fatal(err)
	}
	s := trng.Read(trng.NewIdeal(13), 1<<20)
	b := feed(t, cfg, s)
	// Spot-check a handful of statistics against batch.
	if got := int(mustRead(b, "N_RUNS")); got != s.Runs() {
		t.Errorf("N_RUNS = %d, want %d", got, s.Runs())
	}
	counts := s.PatternCountsOverlapping(4)
	rng := rand.New(rand.NewSource(0))
	for k := 0; k < 4; k++ {
		pat := rng.Intn(16)
		name := fmt.Sprintf("SERIAL_NU4_%04b", pat)
		if got := int(mustRead(b, name)); got != counts[pat] {
			t.Errorf("%s = %d, want %d", name, got, counts[pat])
		}
	}
	for i := 0; i < 16; i++ {
		want := s.BlockOnes(65536)[i]
		if got := int(mustRead(b, fmt.Sprintf("BF_EPS_%d", i))); got != want {
			t.Errorf("BF_EPS_%d = %d, want %d", i, got, want)
		}
	}
}

func TestNetlistGrowsWithVariant(t *testing.T) {
	var prevFF int
	for _, v := range []Variant{Light, Medium, High} {
		cfg, err := NewConfig(65536, v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ff := b.Netlist().Total().FFs
		if ff <= prevFF {
			t.Errorf("%s: FFs = %d, not larger than previous variant (%d)", cfg.Name, ff, prevFF)
		}
		prevFF = ff
	}
}

func TestVariantString(t *testing.T) {
	if Light.String() != "light" || Medium.String() != "medium" || High.String() != "high" {
		t.Error("variant labels wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant label empty")
	}
}
