package hwblock

import (
	"fmt"

	"repro/internal/hwsim"
)

// nonOverlapEngine implements the hardware half of test 7: the shared shift
// register's 9-bit window is compared against the fixed template; a hit
// increments the current block's occurrence counter and arms a hold-off
// counter that suppresses matching for the next m−1 bits (non-overlapping
// scan). Completed blocks' counts W_i sit in a register bank.
type nonOverlapEngine struct {
	tpl      uint32
	m        int
	blockLen int
	nBlocks  int

	shift   *hwsim.ShiftReg
	cmp     *hwsim.EqComparator
	w       *hwsim.Counter
	holdoff *hwsim.Counter // down-counter modelled as count-up-to-m−1
	inBlock *hwsim.Counter // bits seen in the current block (window validity)
	bank    []*hwsim.Register
	cur     int
	hold    int
}

func newNonOverlapEngine(b *Block, tpl uint32, m, nBlocks, blockLen int) *nonOverlapEngine {
	e := &nonOverlapEngine{
		tpl:      tpl,
		m:        m,
		blockLen: blockLen,
		nBlocks:  nBlocks,
		shift:    b.shift,
		cmp:      hwsim.NewEqComparator(b.nl, "no_cmp", m),
		w:        hwsim.NewCounter(b.nl, "no_w", uint64(blockLen/m+1)),
		holdoff:  hwsim.NewCounter(b.nl, "no_hold", uint64(m)),
		inBlock:  hwsim.NewCounter(b.nl, "no_fill", uint64(m)),
	}
	e.bank = make([]*hwsim.Register, nBlocks)
	for i := range e.bank {
		i := i
		e.bank[i] = hwsim.NewRegister(b.nl, fmt.Sprintf("no_w_%d", i), uint64(blockLen/m+1))
		b.rf.Add(fmt.Sprintf("NO_W_%d", i), 7, e.bank[i].Width(),
			func() uint64 { return e.bank[i].Value() })
	}
	return e
}

// clock runs after the shared shift register has absorbed the current bit.
func (e *nonOverlapEngine) clock(t int) {
	// Window validity: the whole m-bit window must lie inside the block.
	if e.inBlock.Value() < uint64(e.m) {
		e.inBlock.Inc()
	}
	windowValid := e.inBlock.Value() >= uint64(e.m)
	if e.hold > 0 {
		e.hold--
	} else if windowValid && e.cmp.Matches(e.shift.Window(e.m), uint64(e.tpl)) {
		e.w.Inc()
		e.hold = e.m - 1
	}
	if (t+1)%e.blockLen == 0 {
		if e.cur < e.nBlocks {
			e.bank[e.cur].Load(e.w.Value())
			e.cur++
		}
		e.w.Reset()
		e.inBlock.Reset()
		e.hold = 0
	}
}

func (e *nonOverlapEngine) resetLocal() { e.cur, e.hold = 0, 0 }

// overlapEngine implements the hardware half of test 8: the same shared
// shift register window is compared against the all-ones template every
// clock (overlapping scan); the per-block occurrence counter saturates at
// K = 5 because only the class "≥5" is distinguished, and at each block
// boundary one of the six class counters ν_0..ν_5 increments.
type overlapEngine struct {
	m        int
	blockLen int
	nBlocks  int
	k        int

	shift   *hwsim.ShiftReg
	cmp     *hwsim.EqComparator
	occ     *hwsim.Counter // saturating at k
	inBlock *hwsim.Counter
	classes *hwsim.CounterBank
}

func newOverlapEngine(b *Block, m, blockLen, nBlocks int) *overlapEngine {
	const k = 5
	e := &overlapEngine{
		m:        m,
		blockLen: blockLen,
		nBlocks:  nBlocks,
		k:        k,
		shift:    b.shift,
		cmp:      hwsim.NewEqComparator(b.nl, "ov_cmp", m),
		occ:      hwsim.NewCounter(b.nl, "ov_occ", uint64(k)),
		inBlock:  hwsim.NewCounter(b.nl, "ov_fill", uint64(m)),
		classes:  hwsim.NewCounterBank(b.nl, "ov_class", k+1, uint64(nBlocks)),
	}
	for i := 0; i <= k; i++ {
		i := i
		b.rf.Add(fmt.Sprintf("OV_NU_%d", i), 8, widthOf(uint64(nBlocks)),
			func() uint64 { return e.classes.Value(i) })
	}
	return e
}

func (e *overlapEngine) clock(t int) {
	if e.inBlock.Value() < uint64(e.m) {
		e.inBlock.Inc()
	}
	windowValid := e.inBlock.Value() >= uint64(e.m)
	allOnes := uint64(1)<<uint(e.m) - 1
	if windowValid && e.cmp.Matches(e.shift.Window(e.m), allOnes) {
		if e.occ.Value() < uint64(e.k) { // saturate at the top class
			e.occ.Inc()
		}
	}
	if (t+1)%e.blockLen == 0 {
		e.classes.Inc(int(e.occ.Value()))
		e.occ.Reset()
		e.inBlock.Reset()
	}
}

func (e *overlapEngine) resetLocal() {}

// serialEngine implements the hardware half of tests 11 and 12: counter
// banks for all m-, (m−1)- and (m−2)-bit overlapping patterns, decoded from
// the low bits of the shared shift register. A small register captures the
// first m−1 bits of the sequence so the cyclic wrap-around can be fed after
// the last bit (finalize). The approximate-entropy test reads the same
// counters — it adds no hardware (the paper's "unified implementation").
type serialEngine struct {
	m    int
	n    int
	fill int

	shift *hwsim.ShiftReg
	nu    []*hwsim.CounterBank // banks for widths m, m−1, m−2
	head  *hwsim.Register      // first m−1 bits, oldest in MSB
}

func newSerialEngine(b *Block, m, n int) *serialEngine {
	e := &serialEngine{
		m:     m,
		n:     n,
		shift: b.shift,
	}
	e.nu = make([]*hwsim.CounterBank, 3)
	for i, w := range []int{m, m - 1, m - 2} {
		e.nu[i] = hwsim.NewCounterBank(b.nl, fmt.Sprintf("serial_nu%d", w), 1<<uint(w), uint64(n))
		for pat := 0; pat < 1<<uint(w); pat++ {
			w, pat, i := w, pat, i
			b.rf.Add(fmt.Sprintf("SERIAL_NU%d_%0*b", w, w, pat), 11, widthOf(uint64(n)),
				func() uint64 { return e.nu[i].Value(pat) })
		}
	}
	e.head = hwsim.NewRegister(b.nl, "serial_head", uint64(1<<uint(m-1))-1)
	return e
}

// count increments the pattern counters whose windows are complete. widths
// gates how many of the three banks count (finalize narrows it as the
// wrap-around completes).
func (e *serialEngine) count(widths int) {
	for i, w := range []int{e.m, e.m - 1, e.m - 2} {
		if i >= widths {
			break
		}
		if e.fill >= w {
			e.nu[i].Inc(int(e.shift.Window(w)))
		}
	}
}

func (e *serialEngine) clock(bit byte) {
	if e.fill < e.m-1 {
		// Capture the sequence head for the cyclic wrap-around.
		e.head.Load(e.head.Value()<<1 | uint64(bit))
	}
	if e.fill < e.m {
		e.fill++
	}
	e.count(3)
}

// finalize feeds the stored first m−1 bits back through the pattern
// decoder, completing the cyclic counts: after extra bit j, the (m−j)-bit
// and wider windows have already reached their full n counts, so bank i
// only counts while j < m−1−i ... concretely, extra bit j completes the
// m-bit pattern count always, the (m−1)-bit count for j < m−2, and the
// (m−2)-bit count for j < m−3.
func (e *serialEngine) finalize() {
	for j := 0; j < e.m-1; j++ {
		bit := byte(e.head.Value()>>uint(e.m-2-j)) & 1
		e.shift.Shift(bit)
		widths := 1
		if j < e.m-2 {
			widths = 2
		}
		if j < e.m-3 {
			widths = 3
		}
		e.count(widths)
	}
}

func (e *serialEngine) resetLocal() { e.fill = 0 }
