package hwblock

import (
	"fmt"
	"testing"

	"repro/internal/bitstream"
)

// feedPattern runs a 128-bit sequence built by gen(i) through the medium
// design and cross-checks every serial counter against the batch
// computation — the degenerate inputs exercise the wrap-around finalize
// path hardest.
func feedPattern(t *testing.T, name string, gen func(i int) byte) {
	t.Helper()
	cfg, err := NewConfig(128, Medium)
	if err != nil {
		t.Fatal(err)
	}
	s := bitstream.New(128)
	for i := 0; i < 128; i++ {
		s.AppendBit(gen(i))
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(bitstream.NewReader(s)); err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{4, 3, 2} {
		want := s.PatternCountsOverlapping(m)
		for pat := 0; pat < 1<<uint(m); pat++ {
			nm := fmt.Sprintf("SERIAL_NU%d_%0*b", m, m, pat)
			got, _, err := b.RegFile().ReadValue(nm)
			if err != nil {
				t.Fatal(err)
			}
			if int(got) != want[pat] {
				t.Errorf("%s: %s = %d, want %d", name, nm, got, want[pat])
			}
		}
	}
	// Walk and runs cross-checks on the same degenerate input.
	wMax, wMin, wFin := s.RandomWalk()
	if got, _, _ := b.RegFile().ReadValue("S_MAX"); int(got)-128 != wMax {
		t.Errorf("%s: S_MAX = %d, want %d", name, int(got)-128, wMax)
	}
	if got, _, _ := b.RegFile().ReadValue("S_MIN"); int(got)-128 != wMin {
		t.Errorf("%s: S_MIN = %d, want %d", name, int(got)-128, wMin)
	}
	if got, _, _ := b.RegFile().ReadValue("S_FINAL"); int(got)-128 != wFin {
		t.Errorf("%s: S_FINAL = %d, want %d", name, int(got)-128, wFin)
	}
	if got, _, _ := b.RegFile().ReadValue("N_RUNS"); int(got) != s.Runs() {
		t.Errorf("%s: N_RUNS = %d, want %d", name, got, s.Runs())
	}
}

func TestDegenerateAllZeros(t *testing.T) {
	feedPattern(t, "all-zeros", func(i int) byte { return 0 })
}

func TestDegenerateAllOnes(t *testing.T) {
	feedPattern(t, "all-ones", func(i int) byte { return 1 })
}

func TestDegenerateAlternating(t *testing.T) {
	feedPattern(t, "alternating", func(i int) byte { return byte(i % 2) })
}

func TestDegeneratePeriodThree(t *testing.T) {
	// Period 3 does not divide the pattern widths — the cyclic counts are
	// nontrivial.
	feedPattern(t, "period-3", func(i int) byte { return byte(i % 3 % 2) })
}

func TestDegenerateSingleOne(t *testing.T) {
	feedPattern(t, "single-one", func(i int) byte {
		if i == 77 {
			return 1
		}
		return 0
	})
}

func TestDegenerateOneAtBoundaries(t *testing.T) {
	// Ones at the first and last position stress the wrap-around feed.
	feedPattern(t, "boundary-ones", func(i int) byte {
		if i == 0 || i == 127 {
			return 1
		}
		return 0
	})
}

func TestTemplateHitAcrossBlockBoundaryIgnored(t *testing.T) {
	// A template occurrence straddling a block boundary must not count:
	// place 000000001 so it crosses the boundary between blocks 0 and 1
	// of the non-overlapping engine (block length 8192 at n=65536).
	cfg, err := NewConfig(65536, Medium)
	if err != nil {
		t.Fatal(err)
	}
	s := bitstream.New(65536)
	for i := 0; i < 65536; i++ {
		// All ones except a window of zeros right before the boundary:
		// bits 8184..8191 are 0, bit 8192 is 1 → the 9-bit window
		// 000000001 ends at 8192, straddling the boundary.
		if i >= 8184 && i <= 8191 {
			s.AppendBit(0)
		} else {
			s.AppendBit(1)
		}
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(bitstream.NewReader(s)); err != nil {
		t.Fatal(err)
	}
	// Batch count within block 1 alone (the window must be inside the
	// block): the straddling occurrence is not counted by either side.
	for i := 0; i < 8; i++ {
		want := s.CountTemplateNonOverlapping(cfg.Params.TemplateB, 9, i*8192, (i+1)*8192)
		got, _, err := b.RegFile().ReadValue(fmt.Sprintf("NO_W_%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if int(got) != want {
			t.Errorf("NO_W_%d = %d, want %d", i, got, want)
		}
	}
}

func TestGlobalBitsCounterTracksProgress(t *testing.T) {
	cfg, err := NewConfig(128, Light)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := b.Clock(1); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := b.RegFile().ReadValue("GLOBAL_BITS")
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("GLOBAL_BITS = %d, want 100", got)
	}
}

func TestCustomConfigBlockLengthsDivideN(t *testing.T) {
	for _, n := range []int{64, 256, 1024, 4096, 32768} {
		cfg, err := NewCustomConfig(fmt.Sprintf("c%d", n), n, []int{1, 2, 3, 4, 13})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n%cfg.Params.BlockFrequencyM != 0 {
			t.Errorf("n=%d: block frequency M=%d does not divide n", n, cfg.Params.BlockFrequencyM)
		}
		if n%cfg.Params.LongestRunM != 0 {
			t.Errorf("n=%d: longest run M=%d does not divide n", n, cfg.Params.LongestRunM)
		}
		// The design must instantiate and absorb a sequence.
		b, err := New(cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if err := b.Clock(byte(i & 1)); err != nil {
				t.Fatal(err)
			}
		}
		if !b.Done() {
			t.Errorf("n=%d: block not done", n)
		}
	}
}
