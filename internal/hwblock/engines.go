package hwblock

import (
	"fmt"

	"repro/internal/hwsim"
)

// Signed walk values are exposed through the register file in offset-binary
// form (value + N), so every register read is unsigned; the software
// subtracts N after reassembly. offsetWidth is the width of such a field.
func offsetWidth(n int) int {
	w := 1
	for (uint64(2*n))>>uint(w) != 0 {
		w++
	}
	return w
}

// walkEngine implements the hardware half of test 13 (cumulative sums): an
// up/down counter tracking the ±1 random walk plus min/max registers. Its
// final value also yields N_ones = (S_final + N)/2, which is why no
// separate ones counter exists anywhere in the block (the paper's "omitting
// a redundant counter").
type walkEngine struct {
	n   int
	s   *hwsim.UpDownCounter
	ext *hwsim.MinMaxTracker
}

func newWalkEngine(b *Block, n int) *walkEngine {
	e := &walkEngine{
		n:   n,
		s:   hwsim.NewUpDownCounter(b.nl, "cusum_s", uint64(n)),
		ext: hwsim.NewMinMaxTracker(b.nl, "cusum_ext", uint64(n)),
	}
	w := offsetWidth(n)
	b.rf.Add("S_MAX", 13, w, func() uint64 { return uint64(e.ext.Max() + int64(n)) })
	b.rf.Add("S_MIN", 13, w, func() uint64 { return uint64(e.ext.Min() + int64(n)) })
	b.rf.Add("S_FINAL", 13, w, func() uint64 { return uint64(e.s.Value() + int64(n)) })
	return e
}

func (e *walkEngine) clock(bit byte) {
	if bit == 1 {
		e.s.Inc()
	} else {
		e.s.Dec()
	}
	e.ext.Update(e.s.Value())
}

// runsEngine implements the hardware half of test 3: a previous-bit
// register and a runs counter. N_ones comes from the walk engine.
type runsEngine struct {
	runs *hwsim.Counter
	prev *hwsim.Register
}

func newRunsEngine(b *Block, n int) *runsEngine {
	e := &runsEngine{
		runs: hwsim.NewCounter(b.nl, "runs", uint64(n)),
		prev: hwsim.NewRegister(b.nl, "runs_prev", 1),
	}
	b.rf.Add("N_RUNS", 3, e.runs.Width(), func() uint64 { return e.runs.Value() })
	return e
}

func (e *runsEngine) clock(bit byte, t int) {
	if t == 0 || byte(e.prev.Value()) != bit {
		e.runs.Inc()
	}
	e.prev.Load(uint64(bit))
}

func (e *runsEngine) resetLocal() {}

// blockFreqEngine implements the hardware half of test 2: one ones counter
// for the current block and a register bank holding the completed blocks'
// counts ε_1..ε_N. Block boundaries are bits of the global counter (M is a
// power of two).
type blockFreqEngine struct {
	m, nBlocks int
	eps        *hwsim.Counter
	bank       []*hwsim.Register
	cur        int
}

func newBlockFreqEngine(b *Block, m, nBlocks int) *blockFreqEngine {
	e := &blockFreqEngine{
		m:       m,
		nBlocks: nBlocks,
		eps:     hwsim.NewCounter(b.nl, "bf_eps", uint64(m)),
	}
	e.bank = make([]*hwsim.Register, nBlocks)
	for i := range e.bank {
		i := i
		e.bank[i] = hwsim.NewRegister(b.nl, fmt.Sprintf("bf_eps_%d", i), uint64(m))
		b.rf.Add(fmt.Sprintf("BF_EPS_%d", i), 2, e.bank[i].Width(),
			func() uint64 { return e.bank[i].Value() })
	}
	return e
}

func (e *blockFreqEngine) clock(bit byte, t int) {
	if bit == 1 {
		e.eps.Inc()
	}
	if (t+1)%e.m == 0 { // block boundary: a global-counter bit edge
		if e.cur < e.nBlocks {
			e.bank[e.cur].Load(e.eps.Value())
			e.cur++
		}
		e.eps.Reset()
	}
}

func (e *blockFreqEngine) resetLocal() { e.cur = 0 }

// longestRunEngine implements the hardware half of test 4: a saturating
// current-run counter, a per-block maximum tracker, and one class counter
// per longest-run class. Saturating at the top class bound keeps the run
// counter narrow regardless of M — runs longer than "≥hi" all land in the
// same class.
type longestRunEngine struct {
	m       int
	lo, hi  int
	run     *hwsim.Counter // saturating at hi
	blkMax  *hwsim.MaxTracker
	classes *hwsim.CounterBank
}

func newLongestRunEngine(b *Block, m, nBlocks int) (*longestRunEngine, error) {
	lo, hi, err := longestRunBounds(m)
	if err != nil {
		return nil, err
	}
	e := &longestRunEngine{
		m:       m,
		lo:      lo,
		hi:      hi,
		run:     hwsim.NewCounter(b.nl, "lr_run", uint64(hi)),
		blkMax:  hwsim.NewMaxTracker(b.nl, "lr_max", uint64(hi)),
		classes: hwsim.NewCounterBank(b.nl, "lr_class", hi-lo+1, uint64(nBlocks)),
	}
	for i := 0; i < e.classes.Len(); i++ {
		i := i
		b.rf.Add(fmt.Sprintf("LR_NU_%d", i), 4, widthOf(uint64(nBlocks)),
			func() uint64 { return e.classes.Value(i) })
	}
	return e, nil
}

// longestRunBounds mirrors nist.LongestRunClassBounds; duplicated here so
// the hardware package does not depend on the reference suite's internals
// beyond the shared parameter struct.
func longestRunBounds(m int) (lo, hi int, err error) {
	switch {
	case m < 8:
		return 0, 0, fmt.Errorf("hwblock: longest-run block length %d too small", m)
	case m < 128:
		return 1, 4, nil
	case m < 6272:
		return 4, 9, nil
	default:
		return 10, 16, nil
	}
}

func widthOf(max uint64) int {
	w := 1
	for max>>uint(w) != 0 {
		w++
	}
	return w
}

func (e *longestRunEngine) clock(bit byte, t int) {
	if bit == 1 {
		if e.run.Value() < uint64(e.hi) { // saturate
			e.run.Inc()
		}
	} else {
		e.run.Reset()
	}
	e.blkMax.Update(e.run.Value())
	if (t+1)%e.m == 0 {
		longest := int(e.blkMax.Max())
		class := 0
		switch {
		case longest <= e.lo:
			class = 0
		case longest >= e.hi:
			class = e.hi - e.lo
		default:
			class = longest - e.lo
		}
		e.classes.Inc(class)
		e.blkMax.Clear()
		e.run.Reset()
	}
}

func (e *longestRunEngine) resetLocal() {}
