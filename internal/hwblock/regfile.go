package hwblock

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// AddressBits is the width of the register-file address, fixed by the
// paper's memory-mapped interface ("a 7-bit address is used as a select
// signal").
const AddressBits = 7

// WordBits is the data-bus width; the software platform is a 16-bit
// architecture.
const WordBits = 16

// Entry is one named value exposed through the register file. Values wider
// than 16 bits occupy consecutive word addresses, least significant word
// first.
type Entry struct {
	// Name is the value's symbolic name (e.g. "S_MAX", "SERIAL_NU4_0011").
	Name string
	// TestID is the SP800-22 test the value belongs to (0 for
	// infrastructure such as the global bit counter).
	TestID int
	// Addr is the first word address.
	Addr int
	// Width is the value width in bits.
	Width int
	// Words is the number of 16-bit words the value occupies.
	Words int

	read func() uint64
}

// RegFile is the memory-mapped output interface: a big multiplexer over all
// counter values, addressed by word.
type RegFile struct {
	entries []Entry
	byName  map[string]int
	words   int

	prepare   func()
	readFault func(addr int, word uint16) uint16
	busReads  int64
	obsReads  *obs.Counter // nil-safe; cached by SetObs
}

// NewRegFile returns an empty register file.
func NewRegFile() *RegFile {
	return &RegFile{byName: make(map[string]int)}
}

// Add exposes a value through the register file, assigning it the next free
// word-aligned address range. The read callback samples the live hardware
// value.
func (rf *RegFile) Add(name string, testID, width int, read func() uint64) {
	if _, dup := rf.byName[name]; dup {
		panic(fmt.Sprintf("hwblock: duplicate register %q", name))
	}
	words := (width + WordBits - 1) / WordBits
	e := Entry{Name: name, TestID: testID, Addr: rf.words, Width: width, Words: words, read: read}
	rf.byName[name] = len(rf.entries)
	rf.entries = append(rf.entries, e)
	rf.words += words
}

// Words reports the total number of addressable words.
func (rf *RegFile) Words() int { return rf.words }

// CheckAddressSpace verifies the map fits the 7-bit address space.
func (rf *RegFile) CheckAddressSpace() error {
	if rf.words > 1<<AddressBits {
		return fmt.Errorf("hwblock: register file needs %d words, exceeds the %d-word (7-bit) address space",
			rf.words, 1<<AddressBits)
	}
	return nil
}

// SetPrepare installs a hook invoked before every bus transaction, ahead of
// the value sampling. The fast ingest path uses it to publish its word-level
// state into the structural primitives lazily, so a read issued at any bit
// boundary — even mid-sequence — observes exactly the image the bit-serial
// hardware would present. A nil hook disables preparation.
func (rf *RegFile) SetPrepare(f func()) { rf.prepare = f }

// SetReadFault installs a hook through which every ReadWord result passes
// before reaching the caller — the fault-injection seam modelling a
// corrupted bus transaction (the probing/tampering surface the paper's
// distributed-verdict design defends against). The hook sees the bus
// address and the true word and returns the word the "microcontroller"
// observes. A nil hook restores fault-free transmission.
func (rf *RegFile) SetReadFault(f func(addr int, word uint16) uint16) { rf.readFault = f }

// BusReads reports the total number of ReadWord transactions performed
// over the file's lifetime (it is not cleared by a block reset).
func (rf *RegFile) BusReads() int64 { return rf.busReads }

// SetObs attaches an observability registry; every ReadWord transaction is
// then counted in trng_regfile_bus_reads_total. A nil registry detaches
// the counter. The count mirrors BusReads but is visible on the live
// exposition endpoint while a run is in flight.
func (rf *RegFile) SetObs(r *obs.Registry) {
	if r == nil {
		rf.obsReads = nil
		return
	}
	rf.obsReads = r.Counter("trng_regfile_bus_reads_total",
		"16-bit bus transactions served by the memory-mapped register file")
}

// ReadWord returns the 16-bit word at the given address — the raw bus
// transaction the microcontroller performs. Reading an unmapped address
// returns 0, like a real bus with a default mux leg.
func (rf *RegFile) ReadWord(addr int) uint16 {
	if rf.prepare != nil {
		rf.prepare()
	}
	rf.busReads++
	rf.obsReads.Inc()
	var w uint16
	if addr >= 0 && addr < rf.words {
		// Binary search over entries by address.
		i := sort.Search(len(rf.entries), func(i int) bool {
			return rf.entries[i].Addr+rf.entries[i].Words > addr
		})
		e := rf.entries[i]
		shift := uint((addr - e.Addr) * WordBits)
		w = uint16(e.read() >> shift)
	}
	if rf.readFault != nil {
		w = rf.readFault(addr, w)
	}
	return w
}

// Lookup finds an entry by name.
func (rf *RegFile) Lookup(name string) (Entry, bool) {
	i, ok := rf.byName[name]
	if !ok {
		return Entry{}, false
	}
	return rf.entries[i], true
}

// ReadValue reads a full named value by issuing one bus read per word and
// reassembling, returning the value and the number of bus reads performed
// (the quantity the paper's READ instruction count measures).
func (rf *RegFile) ReadValue(name string) (value uint64, busReads int, err error) {
	e, ok := rf.Lookup(name)
	if !ok {
		return 0, 0, fmt.Errorf("hwblock: no register named %q", name)
	}
	for w := 0; w < e.Words; w++ {
		//trnglint:widen word-by-word readout reassembly: every operand is one 16-bit bus word, shifted to its word lane; interval [0, +inf] (the lane shift is loop-carried)
		value |= uint64(rf.ReadWord(e.Addr+w)) << uint(w*WordBits)
	}
	if e.Width < 64 {
		value &= 1<<uint(e.Width) - 1
	}
	return value, e.Words, nil
}

// Image dumps the full register file as one bus read per word — the
// complete memory-mapped state the microcontroller could observe. The
// differential equivalence suite compares images between the fast and the
// cycle-accurate ingest paths.
func (rf *RegFile) Image() []uint16 {
	out := make([]uint16, rf.words)
	for addr := range out {
		out[addr] = rf.ReadWord(addr)
	}
	return out
}

// Entries returns all entries in address order.
func (rf *RegFile) Entries() []Entry { return rf.entries }

// EntriesForTest returns the entries belonging to one test.
func (rf *RegFile) EntriesForTest(testID int) []Entry {
	var out []Entry
	for _, e := range rf.entries {
		if e.TestID == testID {
			out = append(out, e)
		}
	}
	return out
}
