package hwblock

import "testing"

func TestRegFileReadFaultHook(t *testing.T) {
	rf := NewRegFile()
	var v uint64 = 0xBEEF
	rf.Add("X", 0, 16, func() uint64 { return v })

	if got := rf.ReadWord(0); got != 0xBEEF {
		t.Fatalf("fault-free read = %#x", got)
	}

	var seenAddr int
	rf.SetReadFault(func(addr int, word uint16) uint16 {
		seenAddr = addr
		return word ^ 0x0001
	})
	if got := rf.ReadWord(0); got != 0xBEEE {
		t.Errorf("faulted read = %#x, want %#x", got, 0xBEEE)
	}
	if seenAddr != 0 {
		t.Errorf("hook saw address %d", seenAddr)
	}
	// The hook also covers the unmapped default leg.
	if got := rf.ReadWord(99); got != 0x0001 {
		t.Errorf("faulted unmapped read = %#x, want 1", got)
	}

	rf.SetReadFault(nil)
	if got := rf.ReadWord(0); got != 0xBEEF {
		t.Errorf("read after uninstall = %#x", got)
	}
}

func TestRegFileBusReadCounter(t *testing.T) {
	rf := NewRegFile()
	rf.Add("W", 0, 32, func() uint64 { return 0x12345678 })
	start := rf.BusReads()
	if _, busReads, err := rf.ReadValue("W"); err != nil || busReads != 2 {
		t.Fatalf("ReadValue = %d bus reads, err %v", busReads, err)
	}
	if got := rf.BusReads() - start; got != 2 {
		t.Errorf("BusReads advanced by %d, want 2", got)
	}
}
