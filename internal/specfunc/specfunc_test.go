package specfunc

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %.12g, want %.12g (tol %g)", name, got, want, tol)
	}
}

func TestIgamcKnownValues(t *testing.T) {
	// Q(1, x) = e^-x exactly; other anchors from chi-square tables.
	cases := []struct {
		a, x, want, tol float64
	}{
		{1.0, 1.0, math.Exp(-1), 1e-14},
		{1.0, 5.0, math.Exp(-5), 1e-14},
		{0.5, 0.5, 0.317310507862914, 1e-12}, // χ²(1) SF at x=1
		{2.5, 5.0, 0.075235246146512, 1e-12}, // χ²(5) SF at x=10
		{5.0, 5.0, 0.440493285065212, 1e-12}, // χ²(10) SF at x=10
	}
	for _, c := range cases {
		got, err := Igamc(c.a, c.x)
		if err != nil {
			t.Fatalf("Igamc(%g,%g): %v", c.a, c.x, err)
		}
		approx(t, "Igamc", got, c.want, c.tol)
	}
}

func TestIgamcNISTExamples(t *testing.T) {
	// SP800-22 worked examples that reduce to igamc:
	// Block frequency §2.2.4: igamc(3/2, 1/2) ≈ 0.801252.
	got, err := Igamc(1.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "block-frequency example", got, 0.801252, 1e-6)

	// Serial test §2.11.4 example (n=10, m=3): P-value1 = igamc(2, 0.8) and
	// P-value2 = igamc(1, 0.4). Closed forms: Q(2,x) = (1+x)e^-x,
	// Q(1,x) = e^-x.
	got, err = Igamc(2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "serial example P1", got, 1.8*math.Exp(-0.8), 1e-12)
	approx(t, "serial example P1 vs NIST", got, 0.808792, 1e-6)
	got, err = Igamc(1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "serial example P2", got, math.Exp(-0.4), 1e-12)

	// Closed forms for half-integer and integer a:
	// Q(1/2, x) = erfc(sqrt(x)); Q(3, x) = (1+x+x²/2)e^-x.
	got, err = Igamc(0.5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Q(1/2,0.7)", got, math.Erfc(math.Sqrt(0.7)), 1e-12)
	got, err = Igamc(3, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Q(3,2.5)", got, (1+2.5+2.5*2.5/2)*math.Exp(-2.5), 1e-12)
}

func TestIgamcBoundaries(t *testing.T) {
	if got, err := Igamc(2, 0); err != nil || got != 1 {
		t.Errorf("Igamc(2,0) = %v, %v; want 1, nil", got, err)
	}
	if got, err := Igamc(2, math.Inf(1)); err != nil || got != 0 {
		t.Errorf("Igamc(2,Inf) = %v, %v; want 0, nil", got, err)
	}
}

func TestIgamcDomainErrors(t *testing.T) {
	for _, c := range []struct{ a, x float64 }{{0, 1}, {-1, 1}, {1, -0.5}, {math.NaN(), 1}, {1, math.NaN()}} {
		if _, err := Igamc(c.a, c.x); err == nil {
			t.Errorf("Igamc(%g,%g) accepted invalid input", c.a, c.x)
		}
	}
}

func TestIgamComplement(t *testing.T) {
	f := func(aRaw, xRaw uint16) bool {
		a := 0.25 + float64(aRaw%800)/10
		x := float64(xRaw%2000) / 10
		p, err1 := Igam(a, x)
		q, err2 := Igamc(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p+q-1) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIgamcMonotoneInX(t *testing.T) {
	prev := 1.0
	for x := 0.0; x <= 50; x += 0.5 {
		q, err := Igamc(3, x)
		if err != nil {
			t.Fatal(err)
		}
		if q > prev+1e-12 {
			t.Fatalf("Igamc(3,%g) = %g > previous %g: not monotone", x, q, prev)
		}
		prev = q
	}
}

func TestNormalCDF(t *testing.T) {
	approx(t, "Phi(0)", NormalCDF(0), 0.5, 1e-15)
	approx(t, "Phi(1.96)", NormalCDF(1.959963984540054), 0.975, 1e-12)
	approx(t, "Phi(-1.96)", NormalCDF(-1.959963984540054), 0.025, 1e-12)
	approx(t, "Phi(3)", NormalCDF(3), 0.9986501019683699, 1e-12)
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.005, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999} {
		x, err := NormalQuantile(p)
		if err != nil {
			t.Fatalf("NormalQuantile(%g): %v", p, err)
		}
		approx(t, "Phi(Phi^-1(p))", NormalCDF(x), p, 1e-12)
	}
}

func TestNormalQuantileDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NormalQuantile(p); err == nil {
			t.Errorf("NormalQuantile(%g) accepted invalid input", p)
		}
	}
}

func TestChiSquareSFAgainstTable(t *testing.T) {
	// Classic chi-square critical values: SF(x, k) = alpha.
	cases := []struct {
		x     float64
		k     int
		alpha float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{16.266, 3, 0.001},
		{21.666, 9, 0.01},
	}
	for _, c := range cases {
		got, err := ChiSquareSF(c.x, c.k)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "ChiSquareSF", got, c.alpha, 5e-4)
	}
}

func TestChiSquareQuantileInvertsSF(t *testing.T) {
	for _, k := range []int{1, 2, 5, 9, 63} {
		for _, alpha := range []float64{0.001, 0.01, 0.05} {
			x, err := ChiSquareQuantile(alpha, k)
			if err != nil {
				t.Fatalf("ChiSquareQuantile(%g,%d): %v", alpha, k, err)
			}
			sf, err := ChiSquareSF(x, k)
			if err != nil {
				t.Fatal(err)
			}
			approx(t, "SF(quantile)", sf, alpha, 1e-9)
		}
	}
}

func TestChiSquareQuantileDomain(t *testing.T) {
	if _, err := ChiSquareQuantile(0.5, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ChiSquareQuantile(0, 3); err == nil {
		t.Error("alpha=0 accepted")
	}
}

func TestErfcMatchesStdlib(t *testing.T) {
	for _, x := range []float64{-2, -0.5, 0, 0.3, 1, 4} {
		if Erfc(x) != math.Erfc(x) {
			t.Errorf("Erfc(%g) diverges from math.Erfc", x)
		}
	}
}
