// Package specfunc implements the special functions the NIST SP800-22
// reference test suite needs: the regularized incomplete gamma functions,
// the complementary error function, and the standard normal CDF. Only the
// standard library is used; the incomplete gamma functions follow the
// classic series / continued-fraction split (Numerical Recipes §6.2), which
// is the same evaluation strategy as the cephes routines the NIST reference
// code links against.
package specfunc

import (
	"errors"
	"math"
)

// ErrDomain reports an argument outside a function's domain.
var ErrDomain = errors.New("specfunc: argument out of domain")

const (
	igamEpsilon = 1e-15
	igamMaxIter = 500
)

// Igamc returns the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a), for a > 0, x >= 0.
//
// The NIST suite expresses most of its P-values as igamc(k/2, χ²/2).
func Igamc(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN(), ErrDomain
	}
	if x == 0 {
		return 1, nil
	}
	if math.IsInf(x, 1) {
		return 0, nil
	}
	if x < a+1 {
		p, err := igamSeries(a, x)
		if err != nil {
			return math.NaN(), err
		}
		return 1 - p, nil
	}
	return igamcCF(a, x)
}

// Igam returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) = 1 − Igamc(a, x).
func Igam(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN(), ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return igamSeries(a, x)
	}
	q, err := igamcCF(a, x)
	if err != nil {
		return math.NaN(), err
	}
	return 1 - q, nil
}

// igamSeries evaluates P(a,x) by its power series, valid for x < a+1.
func igamSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < igamMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*igamEpsilon {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return math.NaN(), errors.New("specfunc: igam series did not converge")
}

// igamcCF evaluates Q(a,x) by a modified Lentz continued fraction, valid
// for x >= a+1.
func igamcCF(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= igamMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < igamEpsilon {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return math.NaN(), errors.New("specfunc: igamc continued fraction did not converge")
}

// Erfc returns the complementary error function. It simply re-exports
// math.Erfc so that all special functions used by the suite live in one
// place.
func Erfc(x float64) float64 { return math.Erfc(x) }

// NormalCDF returns Φ(x), the standard normal cumulative distribution
// function, via the complementary error function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ChiSquareSF returns the survival function (upper tail probability) of a
// chi-square distribution with k degrees of freedom at value x, which is
// exactly igamc(k/2, x/2).
func ChiSquareSF(x float64, k int) (float64, error) {
	if k <= 0 {
		return math.NaN(), ErrDomain
	}
	return Igamc(float64(k)/2, x/2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1). It is used to derive the
// precomputed critical values the embedded software compares against
// (e.g. the monobit bound on |N_ones − n/2|). The implementation is the
// Acklam rational approximation refined by one Halley step, giving close to
// full double precision.
func NormalQuantile(p float64) (float64, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return math.NaN(), ErrDomain
	}
	// Coefficients of the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x, nil
}

// ChiSquareQuantile returns the x such that ChiSquareSF(x, k) = alpha, the
// critical chi-square value at upper-tail probability alpha. It brackets
// the root and bisects; the suite only needs it offline (to precompute the
// embedded constants), so robustness beats speed.
func ChiSquareQuantile(alpha float64, k int) (float64, error) {
	if k <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN(), ErrDomain
	}
	lo, hi := 0.0, float64(k)
	for {
		sf, err := ChiSquareSF(hi, k)
		if err != nil {
			return math.NaN(), err
		}
		if sf < alpha {
			break
		}
		hi *= 2
		if hi > 1e9 {
			return math.NaN(), errors.New("specfunc: chi-square quantile bracket failed")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		sf, err := ChiSquareSF(mid, k)
		if err != nil {
			return math.NaN(), err
		}
		if sf > alpha {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}
