package tables

import (
	"strings"
	"testing"
)

func TestTableIContainsAllFifteenTests(t *testing.T) {
	out := TableI()
	for _, want := range []string{
		"Frequency (Monobit)", "Binary Matrix Rank", "Serial",
		"Random Excursions Variant", "Yes", "No",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	if strings.Count(out, "\n") < 16 {
		t.Error("Table I too short")
	}
}

func TestTableIIContainsAllNineTests(t *testing.T) {
	out := TableII()
	for _, want := range []string{
		"Frequency (Monobit)", "Cumulative Sums", "Approximate Entropy",
		"serial test's pattern counters", "READ=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestTableIIIHasEightRowsAndPaperValues(t *testing.T) {
	rows, err := TableIIIData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Table III has %d rows, want 8", len(rows))
	}
	// The paper's headline span: 52 to 552 slices.
	if rows[0].PaperSlices != 52 || rows[len(rows)-1].PaperSlices != 552 {
		t.Errorf("paper slice anchors wrong: %d..%d", rows[0].PaperSlices, rows[len(rows)-1].PaperSlices)
	}
	// Model monotonicity within each length: light < medium (< high).
	byName := map[string]TableIIIRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, n := range []string{"n65536", "n1048576"} {
		if !(byName[n+"-light"].Model.Slices < byName[n+"-medium"].Model.Slices &&
			byName[n+"-medium"].Model.Slices < byName[n+"-high"].Model.Slices) {
			t.Errorf("%s: model slices not monotone across variants", n)
		}
	}
	// All designs above 100 MHz, as the paper reports.
	for _, r := range rows {
		if r.Model.FmaxMHz < 100 {
			t.Errorf("%s: fmax %.0f below 100 MHz", r.Name, r.Model.FmaxMHz)
		}
	}
	out := TableIII()
	if !strings.Contains(out, "n1048576-high") || !strings.Contains(out, "ADD") {
		t.Error("rendered Table III missing expected content")
	}
}

func TestTableIVReproducesSavingDirection(t *testing.T) {
	d, err := TableIVCompute()
	if err != nil {
		t.Fatal(err)
	}
	if d.Comparison.UnifiedSlices >= d.Comparison.IndividualSlices {
		t.Error("unified design not smaller than individual sum")
	}
	if d.SWCycles < 100 || d.SWCycles > 20000 {
		t.Errorf("SW latency %d cycles implausible", d.SWCycles)
	}
	// The paper's conclusion: SW latency far below sequence generation
	// time.
	if d.SWCycles >= 65536 {
		t.Errorf("SW latency %d not below the 65536-cycle generation time", d.SWCycles)
	}
	out := TableIV()
	if !strings.Contains(out, "slice saving") {
		t.Error("rendered Table IV missing content")
	}
}

func TestFiguresRender(t *testing.T) {
	if f := Fig1(); !strings.Contains(f, "TRNG") || !strings.Contains(f, "HW testing block") {
		t.Error("Fig 1 missing blocks")
	}
	if f := Fig2(); !strings.Contains(f, "serial_nu4") || !strings.Contains(f, "TOTAL") {
		t.Error("Fig 2 missing netlist content")
	}
	f3 := Fig3()
	if !strings.Contains(f3, "max relative error") {
		t.Error("Fig 3 missing error bound")
	}
	// The <3 % claim should appear reproduced.
	if !strings.Contains(f3, "paper: <3%") {
		t.Error("Fig 3 missing paper reference")
	}
}

func TestExtensionTablesRender(t *testing.T) {
	a1 := TableA1()
	for _, want := range []string{"unified-apen", "omit-ones-counter", "block-detection"} {
		if !strings.Contains(a1, want) {
			t.Errorf("Table A1 missing %q", want)
		}
	}
	a2 := TableA2()
	for _, want := range []string{"RCT+APT", "slices", "52% bias"} {
		if !strings.Contains(a2, want) {
			t.Errorf("Table A2 missing %q", want)
		}
	}
}
