package tables

import (
	"fmt"
	"strings"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/hwblock"
	"repro/internal/hwsim"
	"repro/internal/sp80090b"
	"repro/internal/trng"
)

// TableA1 renders the sharing-trick ablation: the slice cost of undoing
// each §III-C technique on the n=65536 high design.
func TableA1() string {
	cfg, err := hwblock.NewConfig(65536, hwblock.High)
	if err != nil {
		return err.Error()
	}
	abls, err := area.Ablations(cfg)
	if err != nil {
		return err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table A1 (extension) — what each sharing trick saves (n=65536, high)\n")
	fmt.Fprintf(&b, "%-26s %10s %s\n", "trick", "slices", "without it, the design carries")
	for _, a := range abls {
		fmt.Fprintf(&b, "%-26s %+10d %s\n", a.Trick, a.DeltaSlices, a.Description)
	}
	fmt.Fprintf(&b, "%-26s %10d\n", "unified design total", abls[0].BaseSlices)
	return b.String()
}

// FigA1 renders the detection-power curve: single-sequence detection rate
// of the n=65536 light design versus source bias, with an ASCII bar per
// severity — the quantified version of the paper's quick-vs-slow test
// distinction.
func FigA1() string {
	cfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		return err.Error()
	}
	severities := []float64{0.500, 0.502, 0.504, 0.506, 0.508, 0.510, 0.515}
	pts, err := core.PowerSweep(cfg, 0.01, severities, 10,
		func(sev float64, seed int64) trng.Source {
			return trng.NewBiased(sev, seed*131+int64(sev*1e5))
		})
	if err != nil {
		return err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. A1 (extension) — single-sequence detection power vs bias (n=65536, light, alpha=0.01)\n")
	fmt.Fprintf(&b, "%8s %6s  %s\n", "bias", "rate", "")
	for _, pt := range pts {
		bar := strings.Repeat("#", int(pt.DetectionRate*40+0.5))
		fmt.Fprintf(&b, "%8.3f %5.0f%%  %s\n", pt.Severity, 100*pt.DetectionRate, bar)
	}
	b.WriteString("\n(rate at 0.500 is the false-alarm rate; the transition spans roughly\n" +
		"bias 0.502..0.510, where |S| crosses the monobit bound ~660 at n=65536)\n")
	return b.String()
}

// TableA2 renders the SP800-90B contrast: minimal continuous health tests
// versus the statistical monitor, by area and by what each detects.
func TableA2() string {
	hb, err := sp80090b.NewHealthBlock(1, sp80090b.DefaultAlpha, sp80090b.DefaultWindow)
	if err != nil {
		return err.Error()
	}
	healthArea := hwsim.EstimateFPGA(hb.Netlist())

	cfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		return err.Error()
	}
	blk, err := hwblock.New(cfg)
	if err != nil {
		return err.Error()
	}
	monArea := hwsim.EstimateFPGA(blk.Netlist())

	// Detection contrast on a 52 %-biased source over one sequence.
	hb.Reset()
	src := trng.NewBiased(0.52, 3)
	mon, err := core.NewMonitor(cfg, 0.01)
	if err != nil {
		return err.Error()
	}
	for i := 0; i < cfg.N; i++ {
		bit, err := src.ReadBit()
		if err != nil {
			return err.Error()
		}
		hb.Feed(bit)
		if _, err := mon.Feed(bit); err != nil {
			return err.Error()
		}
	}
	rctAlarms, aptAlarms := hb.Alarms()
	monDetected := len(mon.History()) > 0 && !mon.History()[0].Report.Pass()

	var b strings.Builder
	fmt.Fprintf(&b, "Table A2 (extension) — SP800-90B health tests vs the statistical monitor\n")
	fmt.Fprintf(&b, "%-34s %14s %20s\n", "", "RCT+APT", "monitor (light)")
	fmt.Fprintf(&b, "%-34s %14d %20d\n", "slices", healthArea.Slices, monArea.Slices)
	fmt.Fprintf(&b, "%-34s %14d %20d\n", "flip-flops", healthArea.FFs, monArea.FFs)
	fmt.Fprintf(&b, "%-34s %14s %20s\n", "catches stuck output", "yes (<21 bits)", "yes (1 sequence)")
	fmt.Fprintf(&b, "%-34s %6d alarms %20v\n", "catches 52% bias (one sequence)", rctAlarms+aptAlarms, monDetected)
	return b.String()
}
