package tables

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegisterMapMatchesCommitted pins the committed REGISTERS.md to the
// generator's output — the same drift check CI performs with `make docs`
// plus `git diff --exit-code`, but runnable locally as a plain test.
func TestRegisterMapMatchesCommitted(t *testing.T) {
	want, err := RegisterMap()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join("..", "..", "REGISTERS.md"))
	if err != nil {
		t.Fatalf("committed register map missing (run `make docs`): %v", err)
	}
	if string(got) != want {
		t.Error("REGISTERS.md is out of sync with the hardware definitions; run `make docs`")
	}
}

func TestRegisterMapContent(t *testing.T) {
	doc, err := RegisterMap()
	if err != nil {
		t.Fatal(err)
	}
	// One section per design point, every point's register table present.
	for _, design := range []string{
		"n128-light", "n128-medium",
		"n65536-light", "n65536-medium", "n65536-high",
		"n1048576-light", "n1048576-medium", "n1048576-high",
	} {
		if !strings.Contains(doc, "## "+design+"\n") {
			t.Errorf("register map missing section for %s", design)
		}
	}
	for _, want := range []string{
		"`GLOBAL_BITS`", "`S_MAX`", "— (infrastructure)",
		"## Bus contract", "## Register availability across design points",
		"DO NOT EDIT",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("register map missing %q", want)
		}
	}
	// Generation is deterministic: two renders are byte-identical.
	again, err := RegisterMap()
	if err != nil {
		t.Fatal(err)
	}
	if again != doc {
		t.Error("RegisterMap is not deterministic across calls")
	}
}
