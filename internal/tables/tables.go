// Package tables regenerates every table and figure of the paper's
// evaluation from the implemented system, printing the measured values next
// to the published ones. cmd/tablegen is its CLI; the root bench_test.go
// drives the same entry points so `go test -bench` reproduces the full
// evaluation.
package tables

import (
	"fmt"
	"strings"

	"repro/internal/area"
	"repro/internal/bitstream"
	"repro/internal/firmware"
	"repro/internal/hwblock"
	"repro/internal/hwsim"
	"repro/internal/nist"
	"repro/internal/sweval"
	"repro/internal/trng"
)

// paperTableIII holds the published Table III resource rows, indexed by
// design name, for side-by-side reporting.
var paperTableIII = map[string]struct {
	Slices, FF, LUTs, GE int
	FmaxMHz              float64
}{
	"n128-light":      {52, 110, 158, 1210, 156},
	"n128-medium":     {149, 329, 471, 3632, 147},
	"n65536-light":    {144, 307, 420, 3243, 143},
	"n65536-medium":   {168, 375, 454, 3850, 136},
	"n65536-high":     {377, 836, 1103, 8983, 133},
	"n1048576-light":  {173, 379, 546, 4013, 125},
	"n1048576-medium": {291, 585, 828, 5993, 122},
	"n1048576-high":   {552, 1156, 1699, 12416, 121},
}

// paperTableIIISW holds the published SW instruction counts for the same
// designs.
var paperTableIIISW = map[string]sweval.Cost{}

func init() {
	set := func(name string, add, sub, mul, sqr, shift, comp, lut, read int) {
		var c sweval.Cost
		c[sweval.OpAdd] = add
		c[sweval.OpSub] = sub
		c[sweval.OpMul] = mul
		c[sweval.OpSqr] = sqr
		c[sweval.OpShift] = shift
		c[sweval.OpComp] = comp
		c[sweval.OpLUT] = lut
		c[sweval.OpRead] = read
		paperTableIIISW[name] = c
	}
	set("n128-light", 9, 8, 4, 8, 0, 22, 0, 10)
	set("n128-medium", 153, 14, 28, 36, 3, 28, 24, 24)
	set("n65536-light", 108, 16, 24, 14, 0, 42, 0, 18)
	set("n65536-medium", 122, 24, 24, 22, 8, 44, 0, 22)
	set("n65536-high", 266, 30, 48, 50, 11, 50, 24, 50)
	set("n1048576-light", 130, 24, 15, 23, 0, 34, 0, 21)
	set("n1048576-medium", 358, 40, 47, 45, 8, 42, 0, 35)
	set("n1048576-high", 890, 50, 91, 101, 11, 48, 24, 91)
}

// unsuitableReasons gives Table I's implicit rationale for the six tests
// the paper excludes.
var unsuitableReasons = map[int]string{
	5:  "needs full 32x32 bit-matrix storage + GF(2) elimination",
	6:  "needs O(n) transform storage and O(n log n) multiplies",
	9:  "needs a 2^L-entry last-occurrence table (L >= 6)",
	10: "needs O(m) LFSR state and O(m^2) Berlekamp-Massey steps per block",
	14: "needs per-cycle, per-state class counters and cycle applicability",
	15: "needs per-state visit totals over +/-9 and cycle bookkeeping",
}

// TableI renders the test-suitability table: all 15 NIST tests, whether
// they admit an on-the-fly HW/SW implementation, and — for the nine that do
// — the measured hardware storage and transfer footprint of this
// repository's engines.
func TableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — The NIST test suite: suitability for on-the-fly HW/SW implementation\n")
	fmt.Fprintf(&b, "%-4s %-42s %-4s %s\n", "#", "Test", "HW", "evidence (n=65536 design)")
	cfg, _ := hwblock.NewConfig(65536, hwblock.High)
	block, _ := hwblock.New(cfg)
	for _, tc := range nist.Suite() {
		verdict := "No"
		detail := unsuitableReasons[tc.ID]
		if tc.HWSuitable {
			verdict = "Yes"
			entries := block.RegFile().EntriesForTest(tc.ID)
			bits, words := 0, 0
			for _, e := range entries {
				bits += e.Width
				words += e.Words
			}
			switch {
			case tc.ID == 1:
				detail = "derived from the cusum counter (no dedicated storage)"
			case tc.ID == 12:
				detail = "reuses the serial test's counters (no dedicated storage)"
			default:
				detail = fmt.Sprintf("%d exposed bits, %d transfer words", bits, words)
			}
		}
		fmt.Fprintf(&b, "%-4d %-42s %-4s %s\n", tc.ID, tc.Name, verdict, detail)
	}
	return b.String()
}

// TableII renders the HW/SW split: the values each engine exposes and the
// instruction mix the software routine spends on them (measured on an ideal
// sequence with the n=65536 high design).
func TableII() string {
	cfg, err := hwblock.NewConfig(65536, hwblock.High)
	if err != nil {
		return err.Error()
	}
	b, err := hwblock.New(cfg)
	if err != nil {
		return err.Error()
	}
	if err := b.Run(bitstream.NewReader(trng.Read(trng.NewIdeal(1), cfg.N))); err != nil {
		return err.Error()
	}
	cv, err := sweval.NewCriticalValues(cfg, 0.01)
	if err != nil {
		return err.Error()
	}
	rep, err := sweval.NewEvaluator(cv).Evaluate(b)
	if err != nil {
		return err.Error()
	}
	names := map[int]string{
		1: "Frequency (Monobit)", 2: "Frequency within a Block", 3: "Runs",
		4: "Longest Run of Ones", 7: "Non-overlapping Templates",
		8: "Overlapping Templates", 11: "Serial", 12: "Approximate Entropy",
		13: "Cumulative Sums",
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II — calculations split between hardware and software (n=65536, high)\n")
	fmt.Fprintf(&sb, "%-26s %-30s %s\n", "Test", "Hardware (exposed values)", "Software (measured instruction mix)")
	for _, id := range cfg.Tests {
		entries := b.RegFile().EntriesForTest(id)
		hw := fmt.Sprintf("%d values", len(entries))
		switch id {
		case 1:
			hw = "N_ones via S_final"
		case 12:
			hw = "serial test's pattern counters"
		case 13:
			hw = "S_max, S_min, S_final"
		}
		fmt.Fprintf(&sb, "%-26s %-30s %s\n", names[id], hw, rep.PerTest[id].String())
	}
	return sb.String()
}

// TableIIIRow is one design point of Table III with model and paper values.
type TableIIIRow struct {
	Name        string
	Tests       []int
	Model       hwsim.FPGAEstimate
	ModelGE     int
	ModelSW     sweval.Cost
	PaperSlices int
	PaperFF     int
	PaperLUTs   int
	PaperGE     int
	PaperFmax   float64
	PaperSW     sweval.Cost
}

// TableIIIData computes the Table III grid.
func TableIIIData() ([]TableIIIRow, error) {
	var rows []TableIIIRow
	for _, cfg := range hwblock.AllConfigs() {
		b, err := hwblock.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := b.Run(bitstream.NewReader(trng.Read(trng.NewIdeal(1), cfg.N))); err != nil {
			return nil, err
		}
		cv, err := sweval.NewCriticalValues(cfg, 0.01)
		if err != nil {
			return nil, err
		}
		rep, err := sweval.NewEvaluator(cv).Evaluate(b)
		if err != nil {
			return nil, err
		}
		p := paperTableIII[cfg.Name]
		rows = append(rows, TableIIIRow{
			Name:        cfg.Name,
			Tests:       cfg.Tests,
			Model:       hwsim.EstimateFPGA(b.Netlist()),
			ModelGE:     hwsim.EstimateASIC(b.Netlist()).GE,
			ModelSW:     rep.Cost,
			PaperSlices: p.Slices,
			PaperFF:     p.FF,
			PaperLUTs:   p.LUTs,
			PaperGE:     p.GE,
			PaperFmax:   p.FmaxMHz,
			PaperSW:     paperTableIIISW[cfg.Name],
		})
	}
	return rows, nil
}

// TableIII renders the implementation-results grid.
func TableIII() string {
	rows, err := TableIIIData()
	if err != nil {
		return err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — implementation results (model vs paper)\n")
	fmt.Fprintf(&b, "%-17s %-22s %14s %14s %14s %14s %16s\n",
		"design", "tests", "slices", "FF", "LUT", "GE", "fmax MHz")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-17s %-22s %6d /%6d %6d /%6d %6d /%6d %6d /%6d %7.0f /%7.0f\n",
			r.Name, intsToString(r.Tests),
			r.Model.Slices, r.PaperSlices,
			r.Model.FFs, r.PaperFF,
			r.Model.LUTs, r.PaperLUTs,
			r.ModelGE, r.PaperGE,
			r.Model.FmaxMHz, r.PaperFmax)
	}
	fmt.Fprintf(&b, "\nSW instruction counts (model / paper):\n")
	fmt.Fprintf(&b, "%-17s %s\n", "design", "ADD SUB MUL SQR SHIFT COMP LUT READ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-17s model: %s\n", r.Name, r.ModelSW.String())
		fmt.Fprintf(&b, "%-17s paper: %s\n", "", r.PaperSW.String())
	}
	b.WriteString("\n(cell format: model / paper; model values come from the structural area\n" +
		"estimator and the metered 16-bit routine — see EXPERIMENTS.md for the claim scope)\n")
	return b.String()
}

func intsToString(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

// TableIVData computes the unified-vs-individual comparison plus the
// software latency on the MSP430 core.
type TableIVData struct {
	Comparison         *area.Comparison
	PaperIndivSlices   int
	PaperUnifiedSlices int
	PaperHWLatency     int
	SWCycles           int64
	SWInstructions     int64
}

// TableIVCompute runs the Table IV experiment.
func TableIVCompute() (*TableIVData, error) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Medium)
	if err != nil {
		return nil, err
	}
	cmp, err := area.Compare(cfg)
	if err != nil {
		return nil, err
	}
	// Latency: the firmware covers the light test set; run it on the
	// light design (the paper's latency number likewise covers its SW
	// routine, vs 21 cycles for the slowest all-HW test of [13]).
	lcfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		return nil, err
	}
	b, err := hwblock.New(lcfg)
	if err != nil {
		return nil, err
	}
	if err := b.Run(bitstream.NewReader(trng.Read(trng.NewIdeal(2), lcfg.N))); err != nil {
		return nil, err
	}
	cv, err := sweval.NewCriticalValues(lcfg, 0.01)
	if err != nil {
		return nil, err
	}
	res, _, err := firmware.Run(b, cv)
	if err != nil {
		return nil, err
	}
	return &TableIVData{
		Comparison:         cmp,
		PaperIndivSlices:   256,
		PaperUnifiedSlices: 168,
		PaperHWLatency:     21,
		SWCycles:           res.Cycles,
		SWInstructions:     res.Instructions,
	}, nil
}

// TableIV renders the comparison with individual implementations.
func TableIV() string {
	d, err := TableIVCompute()
	if err != nil {
		return err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV — unified HW/SW design vs individual all-HW implementations (n=65536)\n")
	fmt.Fprintf(&b, "%-34s %10s %10s\n", "", "model", "paper")
	fmt.Fprintf(&b, "%-34s %10d %10d\n", "individual implementations, slices", d.Comparison.IndividualSlices, d.PaperIndivSlices)
	fmt.Fprintf(&b, "%-34s %10d %10d\n", "unified implementation, slices", d.Comparison.UnifiedSlices, d.PaperUnifiedSlices)
	fmt.Fprintf(&b, "%-34s %9.0f%% %9.0f%%\n", "slice saving", 100*d.Comparison.Saving, 100*(1-168.0/256))
	fmt.Fprintf(&b, "%-34s %10d %10d\n", "all-HW decision latency, cycles", 21, d.PaperHWLatency)
	fmt.Fprintf(&b, "%-34s %10d %10s\n", "SW routine latency, cycles", d.SWCycles, "~4909")
	fmt.Fprintf(&b, "%-34s %10d %10s\n", "SW routine instructions", d.SWInstructions, "-")
	fmt.Fprintf(&b, "\nThe SW latency exceeds the 21-cycle all-HW check but remains far below the\n"+
		"%d cycles needed to generate the next 65536-bit sequence at one bit per cycle,\n"+
		"matching the paper's conclusion.\n", 65536)
	return b.String()
}

// Fig1 renders the testing environment of the paper's Fig. 1.
func Fig1() string {
	return `Fig. 1 — Testing environment (realized by internal/core.Monitor)

  +-------------------------------------------------------------+
  |  embedded system (FPGA / ASIC)                              |
  |                                                             |
  |  +---------+  bit   +--------------------+   7-bit addr     |
  |  |  TRNG   |------->| HW testing block   |<---------------+ |
  |  | (trng)  |        | (hwblock: counters,|   16-bit data  | |
  |  +---------+        |  comparators, regs)|--------------+ | |
  |                     +--------------------+              | | |
  |                                                         v | |
  |  +----------+      +----------------+      +--------------+ |
  |  | embedded |      | crypto co-     |      | CPU (msp430) | |
  |  |   RAM    |      | processors ... |      | SW routine   | |
  |  +----------+      +----------------+      | (sweval)     | |
  |                                            +--------------+ |
  +-------------------------------------------------------------+

  No single alarm wire: the CPU reads raw counter values and decides.
`
}

// Fig2 renders the hardware module structure: the structural netlist of
// the largest design, which is what the paper's block diagram depicts.
func Fig2() string {
	cfg, err := hwblock.NewConfig(1<<20, hwblock.High)
	if err != nil {
		return err.Error()
	}
	b, err := hwblock.New(cfg)
	if err != nil {
		return err.Error()
	}
	est := hwsim.EstimateFPGA(b.Netlist())
	return "Fig. 2 — hardware module containing all tests (n=2^20, high)\n\n" +
		b.Netlist().Describe() +
		fmt.Sprintf("\nestimate: %d slices, %d FF, %d LUT, %.0f MHz; %d register-file words\n",
			est.Slices, est.FFs, est.LUTs, est.FmaxMHz, b.RegFile().Words())
}

// Fig3 renders the PWL approximation of x·log(x): the sampled series and
// the error bounds the paper plots.
func Fig3() string {
	tbl := sweval.NewXLogXTable()
	xs, approx, exact := tbl.Series(32)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — PWL approximation of x·log(x), %d segments\n", sweval.PWLSegments)
	fmt.Fprintf(&b, "%8s %12s %12s %12s\n", "x", "pwl", "exact", "error")
	for i := range xs {
		fmt.Fprintf(&b, "%8.4f %12.6f %12.6f %12.2e\n", xs[i], approx[i], exact[i], approx[i]-exact[i])
	}
	fmt.Fprintf(&b, "\nmax relative error over [1/32, 1]: %.3f%% (paper: <3%%)\n",
		100*tbl.MaxRelativeError(1.0/32, 10000))
	fmt.Fprintf(&b, "max absolute error over [0, 1]:    %.5f\n", tbl.MaxAbsoluteError(10000))
	return b.String()
}
