package msp430

import "fmt"

// Two-operand (format I) opcodes, [15:12].
const (
	opMOV  = 0x4
	opADD  = 0x5
	opADDC = 0x6
	opSUBC = 0x7
	opSUB  = 0x8
	opCMP  = 0x9
	opDADD = 0xA
	opBIT  = 0xB
	opBIC  = 0xC
	opBIS  = 0xD
	opXOR  = 0xE
	opAND  = 0xF
)

// execFormat1 executes a two-operand instruction.
func (c *CPU) execFormat1(op uint16) (int, error) {
	opcode := int(op >> 12)
	sreg := int(op>>8) & 0xF
	ad := int(op>>7) & 1
	byteOp := op&0x40 != 0
	as := int(op>>4) & 3
	dreg := int(op) & 0xF

	src, _, srcIsReg, srcExtra := c.srcOperand(as, sreg, byteOp)
	_ = srcIsReg

	// Destination resolution.
	var dst uint32
	var dstAddr uint16
	dstIsReg := ad == 0
	dstExtra := 0
	if dstIsReg {
		dst = uint32(c.regs[dreg])
		if byteOp {
			dst &= 0xFF
		}
	} else {
		x := c.fetch()
		if dreg == SR { // absolute
			dstAddr = x
		} else {
			dstAddr = c.regs[dreg] + x
		}
		dst = c.load(dstAddr, byteOp)
		dstExtra = 3
	}

	width := uint32(0x10000)
	signBit := uint32(0x8000)
	if byteOp {
		width = 0x100
		signBit = 0x80
	}

	var res uint32
	write := true
	switch opcode {
	case opMOV:
		res = src
	case opADD, opADDC:
		carry := uint32(0)
		if opcode == opADDC && c.flag(FlagC) {
			carry = 1
		}
		full := dst + src + carry
		res = full % width
		c.setNZ(res, byteOp)
		c.setFlag(FlagC, full >= width)
		c.setFlag(FlagV, (dst&signBit) == (src&signBit) && (res&signBit) != (dst&signBit))
	case opSUB, opSUBC, opCMP:
		carry := uint32(1)
		if opcode == opSUBC && !c.flag(FlagC) {
			carry = 0
		}
		full := dst + (src ^ (width - 1)) + carry
		res = full % width
		c.setNZ(res, byteOp)
		c.setFlag(FlagC, full >= width)
		c.setFlag(FlagV, (dst&signBit) != (src&signBit) && (res&signBit) == (src&signBit))
		if opcode == opCMP {
			write = false
		}
	case opDADD:
		// BCD addition, nibble by nibble.
		carry := uint32(0)
		if c.flag(FlagC) {
			carry = 1
		}
		nibbles := 4
		if byteOp {
			nibbles = 2
		}
		res = 0
		for i := 0; i < nibbles; i++ {
			d := (dst>>(4*i))&0xF + (src>>(4*i))&0xF + carry
			carry = 0
			if d > 9 {
				d -= 10
				carry = 1
			}
			res |= d << (4 * i)
		}
		c.setNZ(res, byteOp)
		c.setFlag(FlagC, carry != 0)
	case opBIT, opAND:
		res = dst & src
		c.setNZ(res, byteOp)
		c.setFlag(FlagC, res != 0)
		c.setFlag(FlagV, false)
		if opcode == opBIT {
			write = false
		}
	case opBIC:
		res = dst &^ src
	case opBIS:
		res = dst | src
	case opXOR:
		res = dst ^ src
		c.setNZ(res, byteOp)
		c.setFlag(FlagC, res != 0)
		c.setFlag(FlagV, dst&signBit != 0 && src&signBit != 0)
	default:
		return 0, fmt.Errorf("msp430: bad format-I opcode %#x", opcode)
	}

	if write {
		if dstIsReg {
			if byteOp {
				c.SetReg(dreg, uint16(res&0xFF))
			} else {
				c.SetReg(dreg, uint16(res))
			}
		} else {
			c.store(dstAddr, res, byteOp)
		}
	}

	cyc := 1 + srcExtra + dstExtra
	if write && dstIsReg && dreg == PC {
		cyc++ // branches through PC cost one extra cycle
	}
	return cyc, nil
}

// Single-operand (format II) opcodes, [9:7].
const (
	op2RRC  = 0
	op2SWPB = 1
	op2RRA  = 2
	op2SXT  = 3
	op2PUSH = 4
	op2CALL = 5
	op2RETI = 6
)

// execFormat2 executes a single-operand instruction.
func (c *CPU) execFormat2(op uint16) (int, error) {
	opcode := int(op>>7) & 7
	byteOp := op&0x40 != 0
	as := int(op>>4) & 3
	reg := int(op) & 0xF

	if opcode == op2RETI {
		sr := c.ReadWord(c.regs[SP])
		c.regs[SP] += 2
		pc := c.ReadWord(c.regs[SP])
		c.regs[SP] += 2
		c.regs[SR] = sr
		c.SetReg(PC, pc)
		return 5, nil
	}

	val, addr, isReg, extra := c.srcOperand(as, reg, byteOp)

	width := uint32(0x10000)
	signBit := uint32(0x8000)
	if byteOp {
		width = 0x100
		signBit = 0x80
	}

	writeBack := func(res uint32) {
		if isReg {
			if byteOp {
				c.SetReg(reg, uint16(res&0xFF))
			} else {
				c.SetReg(reg, uint16(res))
			}
		} else {
			c.store(addr, res, byteOp)
		}
	}

	switch opcode {
	case op2RRC:
		carryIn := uint32(0)
		if c.flag(FlagC) {
			carryIn = signBit
		}
		c.setFlag(FlagC, val&1 != 0)
		res := val>>1 | carryIn
		c.setNZ(res, byteOp)
		c.setFlag(FlagV, false)
		writeBack(res)
		return 1 + extra + memRMWExtra(isReg), nil
	case op2RRA:
		c.setFlag(FlagC, val&1 != 0)
		res := val >> 1
		if val&signBit != 0 {
			res |= signBit
		}
		c.setNZ(res, byteOp)
		c.setFlag(FlagV, false)
		writeBack(res)
		return 1 + extra + memRMWExtra(isReg), nil
	case op2SWPB:
		res := (val>>8 | val<<8) % width
		writeBack(res)
		return 1 + extra + memRMWExtra(isReg), nil
	case op2SXT:
		res := val & 0xFF
		if res&0x80 != 0 {
			res |= 0xFF00
		}
		c.setNZ(res, false)
		c.setFlag(FlagC, res != 0)
		c.setFlag(FlagV, false)
		writeBack(res)
		return 1 + extra + memRMWExtra(isReg), nil
	case op2PUSH:
		c.regs[SP] -= 2
		c.WriteWord(c.regs[SP], uint16(val))
		return 3 + extra, nil
	case op2CALL:
		c.regs[SP] -= 2
		c.WriteWord(c.regs[SP], c.regs[PC])
		c.SetReg(PC, uint16(val))
		return 4 + extra, nil
	}
	return 0, fmt.Errorf("msp430: bad format-II opcode %#x", opcode)
}

func memRMWExtra(isReg bool) int {
	if isReg {
		return 0
	}
	return 2 // read-modify-write to memory
}

// Jump conditions, [12:10].
const (
	jNE = 0
	jEQ = 1
	jNC = 2
	jC  = 3
	jN  = 4
	jGE = 5
	jL  = 6
	jMP = 7
)

// execJump executes a conditional jump. All jumps take 2 cycles.
func (c *CPU) execJump(op uint16) int {
	cond := int(op>>10) & 7
	off := int16(op<<6) >> 6 // sign-extend 10 bits
	take := false
	switch cond {
	case jNE:
		take = !c.flag(FlagZ)
	case jEQ:
		take = c.flag(FlagZ)
	case jNC:
		take = !c.flag(FlagC)
	case jC:
		take = c.flag(FlagC)
	case jN:
		take = c.flag(FlagN)
	case jGE:
		take = c.flag(FlagN) == c.flag(FlagV)
	case jL:
		take = c.flag(FlagN) != c.flag(FlagV)
	case jMP:
		take = true
	}
	if take {
		c.SetReg(PC, uint16(int32(c.regs[PC])+int32(off)*2))
	}
	return 2
}
