// Package msp430 implements an openMSP430-style 16-bit CPU: the three
// MSP430 instruction formats (two-operand, single-operand, jump), the seven
// addressing modes with the R2/R3 constant generators, byte/word operation,
// a cycle-count model following the family user's guide, and a peripheral
// bus. The paper evaluates its software routines on an openMSP430 soft
// core ("we utilize openMSP430 as the hardware platform to evaluate our
// design"); this package plays that role for the Table IV latency
// comparison, executing the evaluation firmware against the memory-mapped
// hardware testing block.
//
//trnglint:bus16
package msp430

import "fmt"

// Register aliases.
const (
	PC = 0 // program counter
	SP = 1 // stack pointer
	SR = 2 // status register / constant generator 1
	CG = 3 // constant generator 2
)

// Status-register flag bits.
const (
	FlagC      = 1 << 0 // carry
	FlagZ      = 1 << 1 // zero
	FlagN      = 1 << 2 // negative
	FlagCPUOff = 1 << 4 // CPUOFF: halts the core (used as "done")
	FlagV      = 1 << 8 // overflow
)

// Peripheral is a word-addressed device on the CPU bus.
type Peripheral interface {
	// ReadWord returns the word at the device-relative address.
	ReadWord(addr uint16) uint16
	// WriteWord stores a word at the device-relative address.
	WriteWord(addr uint16, v uint16)
}

type mapping struct {
	base, size uint16
	dev        Peripheral
}

// CPU is one MSP430 core with 64 KiB of unified memory.
type CPU struct {
	regs   [16]uint16
	mem    [65536]byte
	periph []mapping
	cycles int64
	halted bool
}

// New returns a CPU with zeroed memory, PC at 0 and SP at 0.
func New() *CPU { return &CPU{} }

// MapPeripheral attaches a device at [base, base+size) in the address
// space. Accesses there bypass RAM. Size and base must be even.
func (c *CPU) MapPeripheral(base, size uint16, dev Peripheral) error {
	if base%2 != 0 || size%2 != 0 || size == 0 {
		return fmt.Errorf("msp430: peripheral window %#x+%#x not word-aligned", base, size)
	}
	c.periph = append(c.periph, mapping{base: base, size: size, dev: dev})
	return nil
}

func (c *CPU) findPeriph(addr uint16) (Peripheral, uint16, bool) {
	for _, m := range c.periph {
		if addr >= m.base && addr < m.base+m.size {
			return m.dev, addr - m.base, true
		}
	}
	return nil, 0, false
}

// ReadWord reads a word from memory or a peripheral (even address).
func (c *CPU) ReadWord(addr uint16) uint16 {
	addr &^= 1
	if dev, off, ok := c.findPeriph(addr); ok {
		return dev.ReadWord(off)
	}
	return uint16(c.mem[addr]) | uint16(c.mem[addr+1])<<8
}

// WriteWord writes a word to memory or a peripheral.
func (c *CPU) WriteWord(addr uint16, v uint16) {
	addr &^= 1
	if dev, off, ok := c.findPeriph(addr); ok {
		dev.WriteWord(off, v)
		return
	}
	c.mem[addr] = byte(v)
	c.mem[addr+1] = byte(v >> 8)
}

// LoadByte reads a byte.
func (c *CPU) LoadByte(addr uint16) byte {
	if dev, off, ok := c.findPeriph(addr); ok {
		w := dev.ReadWord(off &^ 1)
		if addr%2 == 1 {
			return byte(w >> 8)
		}
		return byte(w)
	}
	return c.mem[addr]
}

// StoreByte writes a byte.
func (c *CPU) StoreByte(addr uint16, v byte) {
	if dev, off, ok := c.findPeriph(addr); ok {
		w := dev.ReadWord(off &^ 1)
		if addr%2 == 1 {
			w = w&0x00FF | uint16(v)<<8
		} else {
			w = w&0xFF00 | uint16(v)
		}
		dev.WriteWord(off&^1, w)
		return
	}
	c.mem[addr] = v
}

// LoadImage copies words into memory starting at addr.
func (c *CPU) LoadImage(addr uint16, words []uint16) {
	for i, w := range words {
		c.WriteWord(addr+uint16(2*i), w)
	}
}

// Reg returns register r.
func (c *CPU) Reg(r int) uint16 { return c.regs[r] }

// SetReg sets register r. Writing PC clears its LSB.
func (c *CPU) SetReg(r int, v uint16) {
	if r == PC {
		v &^= 1
	}
	c.regs[r] = v
}

// Cycles returns the cycles consumed so far.
func (c *CPU) Cycles() int64 { return c.cycles }

// Halted reports whether CPUOFF has been set.
func (c *CPU) Halted() bool { return c.halted }

// Reset clears cycles and the halted latch (registers and memory are left
// to the caller).
func (c *CPU) Reset() {
	c.cycles = 0
	c.halted = false
}

// flag helpers ---------------------------------------------------------------

func (c *CPU) setFlag(mask uint16, on bool) {
	if on {
		c.regs[SR] |= mask
	} else {
		c.regs[SR] &^= mask
	}
}

func (c *CPU) flag(mask uint16) bool { return c.regs[SR]&mask != 0 }

// setNZ sets N and Z from a result of the given width.
func (c *CPU) setNZ(res uint32, byteOp bool) {
	if byteOp {
		c.setFlag(FlagN, res&0x80 != 0)
		c.setFlag(FlagZ, res&0xFF == 0)
	} else {
		c.setFlag(FlagN, res&0x8000 != 0)
		c.setFlag(FlagZ, res&0xFFFF == 0)
	}
}

// Step executes one instruction and returns the cycles it took.
func (c *CPU) Step() (int, error) {
	if c.halted {
		return 0, fmt.Errorf("msp430: CPU halted")
	}
	op := c.fetch()
	var cyc int
	var err error
	switch {
	case op&0xE000 == 0x2000: // jump format
		cyc = c.execJump(op)
	case op&0xFC00 == 0x1000: // single-operand format
		cyc, err = c.execFormat2(op)
	case op >= 0x4000: // two-operand format
		cyc, err = c.execFormat1(op)
	default:
		err = fmt.Errorf("msp430: illegal opcode %#04x at %#04x", op, c.regs[PC]-2)
	}
	if err != nil {
		return 0, err
	}
	c.cycles += int64(cyc)
	if c.regs[SR]&FlagCPUOff != 0 {
		c.halted = true
	}
	return cyc, nil
}

// Run executes until the CPU halts (CPUOFF) or maxSteps instructions have
// retired.
func (c *CPU) Run(maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		if c.halted {
			return nil
		}
		if _, err := c.Step(); err != nil {
			return err
		}
	}
	if !c.halted {
		return fmt.Errorf("msp430: did not halt within %d steps", maxSteps)
	}
	return nil
}

func (c *CPU) fetch() uint16 {
	w := c.ReadWord(c.regs[PC])
	c.regs[PC] += 2
	return w
}

// operand resolution ----------------------------------------------------------

// srcOperand resolves a source operand; returns the value, a writeback
// address (for format II destinations), whether the operand is a register,
// and the extra cycles consumed.
func (c *CPU) srcOperand(as, reg int, byteOp bool) (val uint32, addr uint16, isReg bool, extra int) {
	switch as {
	case 0: // register direct / CG #0
		if reg == CG {
			return 0, 0, false, 0
		}
		v := uint32(c.regs[reg])
		if byteOp {
			v &= 0xFF
		}
		return v, 0, true, 0
	case 1: // indexed / symbolic / absolute / CG #1
		switch reg {
		case CG:
			return 1, 0, false, 0
		case SR: // absolute &ADDR
			a := c.fetch()
			return c.load(a, byteOp), a, false, 2
		default:
			x := c.fetch()
			a := c.regs[reg] + x
			return c.load(a, byteOp), a, false, 2
		}
	case 2: // indirect / CG
		switch reg {
		case SR:
			return 4, 0, false, 0
		case CG:
			return 2, 0, false, 0
		default:
			a := c.regs[reg]
			return c.load(a, byteOp), a, false, 1
		}
	default: // indirect autoincrement / immediate / CG
		switch reg {
		case SR:
			return 8, 0, false, 0
		case CG:
			if byteOp {
				return 0xFF, 0, false, 0
			}
			return 0xFFFF, 0, false, 0
		case PC: // immediate #N
			return uint32(c.fetch()), 0, false, 1
		default:
			a := c.regs[reg]
			v := c.load(a, byteOp)
			if byteOp {
				c.regs[reg] += 1
			} else {
				c.regs[reg] += 2
			}
			return v, a, false, 1
		}
	}
}

func (c *CPU) load(addr uint16, byteOp bool) uint32 {
	if byteOp {
		return uint32(c.LoadByte(addr))
	}
	return uint32(c.ReadWord(addr))
}

func (c *CPU) store(addr uint16, v uint32, byteOp bool) {
	if byteOp {
		c.StoreByte(addr, byte(v))
	} else {
		c.WriteWord(addr, uint16(v))
	}
}
