package msp430

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is a small two-pass assembler for the MSP430 instruction set,
// sufficient for the evaluation firmware: labels, the core mnemonics plus
// the common emulated ones, decimal/hex immediates, and the .org / .word
// directives.

// Program is an assembled firmware image.
type Program struct {
	// Origin is the load address of the image.
	Origin uint16
	// Words is the image contents.
	Words []uint16
	// Labels maps label names to addresses.
	Labels map[string]uint16
}

// Entry returns the address of the given label, or the origin if absent.
func (p *Program) Entry(label string) uint16 {
	if a, ok := p.Labels[label]; ok {
		return a
	}
	return p.Origin
}

type operand struct {
	mode int // matches As encoding; dst accepts 0 and 1 only
	reg  int
	ext  uint16 // extension word (index, immediate, absolute address)
	// hasExt reports whether ext occupies an extension word; immediates
	// via the constant generators do not.
	hasExt bool
}

type asmInst struct {
	line    int
	label   string
	mnem    string
	byteOp  bool
	ops     []string
	addr    uint16
	words   []uint16
	isWord  bool // .word directive
	wordVal uint16
}

var regNames = map[string]int{
	"r0": 0, "pc": 0, "r1": 1, "sp": 1, "r2": 2, "sr": 2, "r3": 3, "cg": 3,
	"r4": 4, "r5": 5, "r6": 6, "r7": 7, "r8": 8, "r9": 9, "r10": 10,
	"r11": 11, "r12": 12, "r13": 13, "r14": 14, "r15": 15,
}

var fmt1Opcodes = map[string]uint16{
	"mov": opMOV, "add": opADD, "addc": opADDC, "subc": opSUBC, "sub": opSUB,
	"cmp": opCMP, "dadd": opDADD, "bit": opBIT, "bic": opBIC, "bis": opBIS,
	"xor": opXOR, "and": opAND,
}

var fmt2Opcodes = map[string]uint16{
	"rrc": op2RRC, "swpb": op2SWPB, "rra": op2RRA, "sxt": op2SXT,
	"push": op2PUSH, "call": op2CALL,
}

var jumpConds = map[string]uint16{
	"jne": jNE, "jnz": jNE, "jeq": jEQ, "jz": jEQ, "jnc": jNC, "jlo": jNC,
	"jc": jC, "jhs": jC, "jn": jN, "jge": jGE, "jl": jL, "jmp": jMP,
}

// Assemble translates source text into a Program. Syntax:
//
//	; comment
//	label:  mov   #0x1234, r4     ; immediates: #dec, #0xhex, #label
//	        add.b @r5+, 2(r6)     ; indexed, indirect, autoincrement
//	        mov   &0x0180, r7     ; absolute
//	        jne   label
//	        .org  0x4400
//	        .word 0xBEEF
//
// Emulated mnemonics: nop, ret, pop, br, clr, inc, incd, dec, decd, tst,
// clrc, setc, rla, inv.
func Assemble(src string) (*Program, error) {
	insts, err := parse(src)
	if err != nil {
		return nil, err
	}

	labels := make(map[string]uint16)
	// Pass 1: assign addresses. Instruction size depends only on operand
	// syntax, not on label values, so one sizing pass suffices.
	origin := uint16(0x4400)
	addr := origin
	originSet := false
	for i := range insts {
		in := &insts[i]
		if in.mnem == ".org" {
			v, err := parseNum(in.ops[0], nil)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", in.line, err)
			}
			addr = uint16(v)
			if !originSet {
				origin = addr
				originSet = true
			}
		}
		if in.label != "" {
			if _, dup := labels[in.label]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", in.line, in.label)
			}
			labels[in.label] = addr
		}
		in.addr = addr
		size, err := instSize(in)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", in.line, err)
		}
		addr += uint16(2 * size)
	}

	// Pass 2: encode.
	var words []uint16
	cur := origin
	emit := func(in *asmInst, ws ...uint16) {
		for cur < in.addr {
			words = append(words, 0)
			cur += 2
		}
		words = append(words, ws...)
		cur += uint16(2 * len(ws))
	}
	for i := range insts {
		in := &insts[i]
		ws, err := encode(in, labels)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", in.line, err)
		}
		if len(ws) > 0 {
			emit(in, ws...)
		}
	}
	return &Program{Origin: origin, Words: words, Labels: labels}, nil
}

func parse(src string) ([]asmInst, error) {
	var out []asmInst
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		in := asmInst{line: lineNo + 1}
		if i := strings.IndexByte(line, ':'); i >= 0 && !strings.ContainsAny(line[:i], " \t(") {
			in.label = strings.ToLower(strings.TrimSpace(line[:i]))
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			out = append(out, in)
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnem := strings.ToLower(fields[0])
		if strings.HasSuffix(mnem, ".b") {
			in.byteOp = true
			mnem = strings.TrimSuffix(mnem, ".b")
		} else {
			mnem = strings.TrimSuffix(mnem, ".w")
		}
		in.mnem = mnem
		if len(fields) > 1 {
			for _, o := range strings.Split(fields[1], ",") {
				in.ops = append(in.ops, strings.TrimSpace(o))
			}
		}
		out = append(out, in)
	}
	return out, nil
}

// parseNum parses #-less numeric or label operands.
func parseNum(s string, labels map[string]uint16) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v int64
	var err error
	if strings.HasPrefix(strings.ToLower(s), "0x") {
		v, err = strconv.ParseInt(s[2:], 16, 64)
	} else if s != "" && s[0] >= '0' && s[0] <= '9' {
		v, err = strconv.ParseInt(s, 10, 64)
	} else {
		if labels == nil {
			return 0, fmt.Errorf("forward label %q not allowed here", s)
		}
		a, ok := labels[strings.ToLower(s)]
		if !ok {
			return 0, fmt.Errorf("undefined label %q", s)
		}
		v = int64(a)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseOperandSyntax classifies an operand string without resolving labels
// (for sizing): returns mode, reg, whether an extension word is needed.
func parseOperandSyntax(s string) (mode, reg int, hasExt bool, err error) {
	s = strings.TrimSpace(s)
	ls := strings.ToLower(s)
	if r, ok := regNames[ls]; ok {
		return 0, r, false, nil
	}
	switch {
	case strings.HasPrefix(s, "#"):
		// Constant-generator immediates take no extension word; decide
		// at encode time. For sizing, assume an extension word unless
		// the literal is one of the CG constants.
		body := s[1:]
		if v, err2 := parseNum(body, nil); err2 == nil {
			if isCGConst(v) {
				m, r := cgEncoding(v)
				return m, r, false, nil
			}
		}
		return 3, PC, true, nil // @PC+ immediate
	case strings.HasPrefix(s, "&"):
		return 1, SR, true, nil // absolute
	case strings.HasPrefix(s, "@"):
		body := ls[1:]
		if strings.HasSuffix(body, "+") {
			r, ok := regNames[strings.TrimSuffix(body, "+")]
			if !ok {
				return 0, 0, false, fmt.Errorf("bad register in %q", s)
			}
			return 3, r, false, nil
		}
		r, ok := regNames[body]
		if !ok {
			return 0, 0, false, fmt.Errorf("bad register in %q", s)
		}
		return 2, r, false, nil
	case strings.HasSuffix(ls, ")") && strings.Contains(ls, "("):
		i := strings.Index(ls, "(")
		r, ok := regNames[strings.TrimSuffix(ls[i+1:], ")")]
		if !ok {
			return 0, 0, false, fmt.Errorf("bad register in %q", s)
		}
		return 1, r, true, nil
	default:
		return 0, 0, false, fmt.Errorf("cannot parse operand %q", s)
	}
}

func isCGConst(v int64) bool {
	switch v {
	case 0, 1, 2, 4, 8, -1:
		return true
	}
	return false
}

// cgEncoding returns the As/reg pair generating the constant.
func cgEncoding(v int64) (mode, reg int) {
	switch v {
	case 4:
		return 2, SR
	case 8:
		return 3, SR
	case 0:
		return 0, CG
	case 1:
		return 1, CG
	case 2:
		return 2, CG
	default: // -1
		return 3, CG
	}
}

// resolveOperand fully resolves an operand, including labels.
func resolveOperand(s string, labels map[string]uint16) (operand, error) {
	mode, reg, hasExt, err := parseOperandSyntax(s)
	if err != nil {
		return operand{}, err
	}
	op := operand{mode: mode, reg: reg, hasExt: hasExt}
	if !hasExt {
		return op, nil
	}
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "#"):
		v, err := parseNum(s[1:], labels)
		if err != nil {
			return operand{}, err
		}
		op.ext = uint16(v)
	case strings.HasPrefix(s, "&"):
		v, err := parseNum(s[1:], labels)
		if err != nil {
			return operand{}, err
		}
		op.ext = uint16(v)
	default: // X(Rn)
		i := strings.Index(s, "(")
		v, err := parseNum(s[:i], labels)
		if err != nil {
			return operand{}, err
		}
		op.ext = uint16(v)
	}
	return op, nil
}

// expandEmulated rewrites emulated mnemonics into core ones.
func expandEmulated(in *asmInst) error {
	switch in.mnem {
	case "nop":
		in.mnem, in.ops = "mov", []string{"r3", "r3"}
	case "ret":
		in.mnem, in.ops = "mov", []string{"@sp+", "pc"}
	case "pop":
		if len(in.ops) != 1 {
			return fmt.Errorf("pop needs one operand")
		}
		in.mnem, in.ops = "mov", []string{"@sp+", in.ops[0]}
	case "br":
		if len(in.ops) != 1 {
			return fmt.Errorf("br needs one operand")
		}
		in.mnem, in.ops = "mov", []string{in.ops[0], "pc"}
	case "clr":
		in.mnem, in.ops = "mov", []string{"#0", in.ops[0]}
	case "inc":
		in.mnem, in.ops = "add", []string{"#1", in.ops[0]}
	case "incd":
		in.mnem, in.ops = "add", []string{"#2", in.ops[0]}
	case "dec":
		in.mnem, in.ops = "sub", []string{"#1", in.ops[0]}
	case "decd":
		in.mnem, in.ops = "sub", []string{"#2", in.ops[0]}
	case "tst":
		in.mnem, in.ops = "cmp", []string{"#0", in.ops[0]}
	case "clrc":
		in.mnem, in.ops = "bic", []string{"#1", "sr"}
	case "setc":
		in.mnem, in.ops = "bis", []string{"#1", "sr"}
	case "rla":
		in.mnem, in.ops = "add", []string{in.ops[0], in.ops[0]}
	case "rlc":
		in.mnem, in.ops = "addc", []string{in.ops[0], in.ops[0]}
	case "inv":
		in.mnem, in.ops = "xor", []string{"#-1", in.ops[0]}
	}
	return nil
}

// instSize returns the instruction's size in words.
func instSize(in *asmInst) (int, error) {
	if in.mnem == "" {
		return 0, nil
	}
	if in.mnem == ".org" {
		return 0, nil
	}
	if in.mnem == ".word" {
		return len(in.ops), nil
	}
	if err := expandEmulated(in); err != nil {
		return 0, err
	}
	if _, ok := jumpConds[in.mnem]; ok {
		return 1, nil
	}
	if in.mnem == "reti" {
		return 1, nil
	}
	size := 1
	for _, o := range in.ops {
		_, _, hasExt, err := parseOperandSyntax(o)
		if err != nil {
			return 0, err
		}
		if hasExt {
			size++
		}
	}
	return size, nil
}

// encode produces the instruction's words (labels resolved).
func encode(in *asmInst, labels map[string]uint16) ([]uint16, error) {
	switch in.mnem {
	case "", ".org":
		return nil, nil
	case ".word":
		var ws []uint16
		for _, o := range in.ops {
			v, err := parseNum(o, labels)
			if err != nil {
				return nil, err
			}
			ws = append(ws, uint16(v))
		}
		return ws, nil
	case "reti":
		return []uint16{0x1300}, nil
	}
	if cond, ok := jumpConds[in.mnem]; ok {
		if len(in.ops) != 1 {
			return nil, fmt.Errorf("%s needs one target", in.mnem)
		}
		target, err := parseNum(in.ops[0], labels)
		if err != nil {
			return nil, err
		}
		//trnglint:widen the assembler computes the signed jump offset host-side; interval [-inf, +inf] (label targets are int64), range-checked to the ±512-word encodable window immediately below
		off := (int(target) - int(in.addr) - 2) / 2
		if off < -512 || off > 511 {
			return nil, fmt.Errorf("jump target out of range (offset %d words)", off)
		}
		return []uint16{0x2000 | cond<<10 | uint16(off)&0x3FF}, nil
	}
	if code, ok := fmt1Opcodes[in.mnem]; ok {
		if len(in.ops) != 2 {
			return nil, fmt.Errorf("%s needs two operands", in.mnem)
		}
		src, err := resolveOperand(in.ops[0], labels)
		if err != nil {
			return nil, err
		}
		dst, err := resolveOperand(in.ops[1], labels)
		if err != nil {
			return nil, err
		}
		if dst.mode > 1 {
			return nil, fmt.Errorf("destination %q must be register or indexed", in.ops[1])
		}
		w := code<<12 | uint16(src.reg)<<8 | uint16(dst.mode)<<7 |
			uint16(src.mode)<<4 | uint16(dst.reg)
		if in.byteOp {
			w |= 0x40
		}
		ws := []uint16{w}
		if src.hasExt {
			ws = append(ws, src.ext)
		}
		if dst.hasExt {
			ws = append(ws, dst.ext)
		}
		return ws, nil
	}
	if code, ok := fmt2Opcodes[in.mnem]; ok {
		if len(in.ops) != 1 {
			return nil, fmt.Errorf("%s needs one operand", in.mnem)
		}
		op, err := resolveOperand(in.ops[0], labels)
		if err != nil {
			return nil, err
		}
		w := 0x1000 | code<<7 | uint16(op.mode)<<4 | uint16(op.reg)
		if in.byteOp {
			w |= 0x40
		}
		ws := []uint16{w}
		if op.hasExt {
			ws = append(ws, op.ext)
		}
		return ws, nil
	}
	return nil, fmt.Errorf("unknown mnemonic %q", in.mnem)
}
