package msp430

import "repro/internal/hwblock"

// Multiplier is the MSP430 hardware multiplier peripheral (the openMSP430's
// optional 16×16 multiplier): write the first operand to MPY (unsigned) or
// MPYS (signed), write the second to OP2 to trigger, read the 32-bit result
// from RESLO/RESHI. The evaluation firmware uses it for the squaring
// operations of the block-frequency and longest-run routines.
type Multiplier struct {
	op1    uint16
	signed bool
	resLo  uint16
	resHi  uint16
}

// Multiplier register offsets (relative to the mapping base; the standard
// part maps it at 0x0130).
const (
	MulMPY   = 0x0 // unsigned first operand
	MulMPYS  = 0x2 // signed first operand
	MulOP2   = 0x8 // second operand; writing triggers the multiply
	MulRESLO = 0xA // result bits 15..0
	MulRESHI = 0xC // result bits 31..16
)

// ReadWord implements Peripheral.
func (m *Multiplier) ReadWord(addr uint16) uint16 {
	switch addr {
	case MulMPY, MulMPYS:
		return m.op1
	case MulRESLO:
		return m.resLo
	case MulRESHI:
		return m.resHi
	}
	return 0
}

// WriteWord implements Peripheral.
func (m *Multiplier) WriteWord(addr uint16, v uint16) {
	switch addr {
	case MulMPY:
		m.op1 = v
		m.signed = false
	case MulMPYS:
		m.op1 = v
		m.signed = true
	case MulOP2:
		if m.signed {
			//trnglint:widen the MSP430 hardware multiplier's RESLO/RESHI result register pair is genuinely 32 bits wide in silicon; interval [-1073709056, 1073741824] cannot fit one bus word
			res := int32(int16(m.op1)) * int32(int16(v))
			m.resLo = uint16(res)
			m.resHi = uint16(uint32(res) >> 16)
		} else {
			//trnglint:widen the MSP430 hardware multiplier's RESLO/RESHI result register pair is genuinely 32 bits wide in silicon; interval [0, 4294836225] cannot fit one bus word
			res := uint32(m.op1) * uint32(v)
			m.resLo = uint16(res)
			m.resHi = uint16(res >> 16)
		}
	}
}

// TestingBlockPort adapts a hardware testing block's register file to the
// CPU bus: word address w of the peripheral window reads register-file word
// w — the memory-mapped interface of the paper's Fig. 2, with the CPU
// driving the 7-bit select address.
type TestingBlockPort struct {
	rf *hwblock.RegFile
}

// NewTestingBlockPort wraps a register file.
func NewTestingBlockPort(rf *hwblock.RegFile) *TestingBlockPort {
	return &TestingBlockPort{rf: rf}
}

// ReadWord implements Peripheral.
func (p *TestingBlockPort) ReadWord(addr uint16) uint16 {
	return p.rf.ReadWord(int(addr / 2))
}

// WriteWord implements Peripheral: the testing block is read-only; writes
// are dropped, as on the real bus.
func (p *TestingBlockPort) WriteWord(addr uint16, v uint16) {}

// WindowSize returns the number of bytes the port occupies.
func (p *TestingBlockPort) WindowSize() uint16 {
	return uint16(2 * p.rf.Words())
}
