package msp430

import (
	"strings"
	"testing"
)

// run assembles src, loads it, points PC at the origin and runs to halt.
func run(t *testing.T, src string) *CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New()
	c.LoadImage(prog.Origin, prog.Words)
	c.SetReg(PC, prog.Origin)
	c.SetReg(SP, 0x2400)
	if err := c.Run(100000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

const halt = "\n bis #0x10, sr\n" // set CPUOFF

func TestMovImmediate(t *testing.T) {
	c := run(t, "mov #0x1234, r4"+halt)
	if c.Reg(4) != 0x1234 {
		t.Errorf("r4 = %#x, want 0x1234", c.Reg(4))
	}
}

func TestAddSetsCarryAndOverflow(t *testing.T) {
	c := run(t, `
 mov #0xFFFF, r4
 add #1, r4
`+halt)
	if c.Reg(4) != 0 {
		t.Errorf("r4 = %#x, want 0", c.Reg(4))
	}
	if !c.flag(FlagC) || !c.flag(FlagZ) {
		t.Error("C/Z not set on 0xFFFF+1")
	}

	c = run(t, `
 mov #0x7FFF, r4
 add #1, r4
`+halt)
	if !c.flag(FlagV) || !c.flag(FlagN) {
		t.Error("V/N not set on 0x7FFF+1")
	}
}

func TestSubAndCmp(t *testing.T) {
	c := run(t, `
 mov #5, r4
 sub #3, r4
`+halt)
	if c.Reg(4) != 2 {
		t.Errorf("r4 = %d, want 2", c.Reg(4))
	}
	if !c.flag(FlagC) {
		t.Error("C clear after no-borrow subtract")
	}
	c = run(t, `
 mov #3, r4
 cmp #5, r4
`+halt)
	if c.Reg(4) != 3 {
		t.Error("cmp modified its destination")
	}
	if c.flag(FlagC) {
		t.Error("C set after borrowing compare")
	}
	if !c.flag(FlagN) {
		t.Error("N clear after negative compare result")
	}
}

func TestAddcChainsCarry(t *testing.T) {
	// 32-bit add: 0x0001FFFF + 1 = 0x00020000.
	c := run(t, `
 mov #0xFFFF, r4   ; low
 mov #1, r5        ; high
 add #1, r4
 addc #0, r5
`+halt)
	if c.Reg(4) != 0 || c.Reg(5) != 2 {
		t.Errorf("result = %#x:%#x, want 2:0", c.Reg(5), c.Reg(4))
	}
}

func TestLogicalOps(t *testing.T) {
	c := run(t, `
 mov #0xF0F0, r4
 and #0xFF00, r4
 mov #0x000F, r5
 bis #0xF000, r5
 mov #0xFFFF, r6
 bic #0x00FF, r6
 mov #0xAAAA, r7
 xor #0xFFFF, r7
`+halt)
	if c.Reg(4) != 0xF000 {
		t.Errorf("and: %#x", c.Reg(4))
	}
	if c.Reg(5) != 0xF00F {
		t.Errorf("bis: %#x", c.Reg(5))
	}
	if c.Reg(6) != 0xFF00 {
		t.Errorf("bic: %#x", c.Reg(6))
	}
	if c.Reg(7) != 0x5555 {
		t.Errorf("xor: %#x", c.Reg(7))
	}
}

func TestByteOperations(t *testing.T) {
	c := run(t, `
 mov #0x1234, r4
 mov.b #0xFF, r4   ; byte write clears the high byte
 mov #0x2200, r5
 mov.b #0xAB, 0(r5)
 mov.b 0(r5), r6
`+halt)
	if c.Reg(4) != 0x00FF {
		t.Errorf("byte mov to register: %#x, want 0x00FF", c.Reg(4))
	}
	if c.Reg(6) != 0xAB {
		t.Errorf("byte round-trip through memory: %#x", c.Reg(6))
	}
}

func TestIndexedAndIndirect(t *testing.T) {
	c := run(t, `
 mov #0x1111, &0x2200
 mov #0x2222, &0x2202
 mov #0x2200, r5
 mov @r5+, r6
 mov @r5, r7
 mov #0x2200, r9
 mov 2(r9), r8
`+halt)
	if c.Reg(6) != 0x1111 {
		t.Errorf("@r5+ = %#x", c.Reg(6))
	}
	if c.Reg(5) != 0x2202 {
		t.Errorf("autoincrement left r5 = %#x", c.Reg(5))
	}
	if c.Reg(7) != 0x2222 {
		t.Errorf("@r5 = %#x", c.Reg(7))
	}
	if c.Reg(8) != 0x2222 {
		t.Errorf("2(r9) = %#x", c.Reg(8))
	}
}

func TestJumpsAndLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	c := run(t, `
 clr r4
 mov #10, r5
loop:
 add r5, r4
 dec r5
 jnz loop
`+halt)
	if c.Reg(4) != 55 {
		t.Errorf("sum = %d, want 55", c.Reg(4))
	}
}

func TestConditionalJumps(t *testing.T) {
	c := run(t, `
 mov #5, r4
 cmp #5, r4
 jeq equal
 mov #0xBAD, r15
 jmp done
equal:
 mov #0x600D, r15
done:
`+halt)
	if c.Reg(15) != 0x600D {
		t.Errorf("r15 = %#x", c.Reg(15))
	}
}

func TestSignedJumps(t *testing.T) {
	c := run(t, `
 mov #0xFFFE, r4   ; -2
 cmp #1, r4        ; -2 - 1 -> negative
 jl less
 mov #1, r15
 jmp done
less:
 mov #2, r15
done:
`+halt)
	if c.Reg(15) != 2 {
		t.Errorf("jl did not take the signed branch: r15 = %d", c.Reg(15))
	}
}

func TestPushPopCallRet(t *testing.T) {
	c := run(t, `
 mov #0x1234, r4
 push r4
 clr r4
 pop r5
 call #sub
 jmp done
sub:
 mov #0xCAFE, r6
 ret
done:
`+halt)
	if c.Reg(5) != 0x1234 {
		t.Errorf("push/pop: r5 = %#x", c.Reg(5))
	}
	if c.Reg(6) != 0xCAFE {
		t.Errorf("call/ret: r6 = %#x", c.Reg(6))
	}
}

func TestShiftsAndRotates(t *testing.T) {
	c := run(t, `
 mov #0x8001, r4
 clrc
 rrc r4            ; 0x4000, C=1
 mov #0x8000, r5
 rra r5            ; arithmetic: 0xC000
 mov #0x1234, r6
 swpb r6           ; 0x3412
 mov #0x0080, r7
 sxt r7            ; 0xFF80
 mov #1, r8
 rla r8            ; 2
`+halt)
	if c.Reg(4) != 0x4000 {
		t.Errorf("rrc: %#x", c.Reg(4))
	}
	if c.Reg(5) != 0xC000 {
		t.Errorf("rra: %#x", c.Reg(5))
	}
	if c.Reg(6) != 0x3412 {
		t.Errorf("swpb: %#x", c.Reg(6))
	}
	if c.Reg(7) != 0xFF80 {
		t.Errorf("sxt: %#x", c.Reg(7))
	}
	if c.Reg(8) != 2 {
		t.Errorf("rla: %#x", c.Reg(8))
	}
}

func TestConstantGenerators(t *testing.T) {
	// Constants 0,1,2,4,8,-1 use the constant generators and take no
	// extension word: the whole program below assembles to one word per
	// instruction (plus the final bis which uses #0x10 — a real
	// immediate).
	src := `
 mov #0, r4
 mov #1, r5
 mov #2, r6
 mov #4, r7
 mov #8, r8
 mov #-1, r9
`
	prog, err := Assemble(src + halt)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Words) != 6+2 {
		t.Errorf("program is %d words, want 8 (CG immediates must be one word)", len(prog.Words))
	}
	c := run(t, src+halt)
	want := []uint16{0, 1, 2, 4, 8, 0xFFFF}
	for i, w := range want {
		if c.Reg(4+i) != w {
			t.Errorf("r%d = %#x, want %#x", 4+i, c.Reg(4+i), w)
		}
	}
}

func TestCycleCounts(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"mov r4, r5", 1},
		{"mov #0x1234, r5", 2},
		{"mov @r4, r5", 2},
		{"mov @r4+, r5", 2},
		{"mov 2(r4), r5", 3},
		{"mov r4, 2(r5)", 4},
		{"mov 2(r4), 2(r5)", 6},
		{"jmp next\nnext: nop", 3}, // jump (2) + nop (1)
		{"push r4", 3},
	}
	for _, tc := range cases {
		prog, err := Assemble(tc.src + halt)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		c := New()
		c.LoadImage(prog.Origin, prog.Words)
		c.SetReg(PC, prog.Origin)
		c.SetReg(SP, 0x2400)
		c.SetReg(4, 0x2300)
		c.SetReg(5, 0x2310)
		// Execute only the instructions before the halt sequence.
		steps := strings.Count(strings.TrimSpace(tc.src), "\n") + 1
		for i := 0; i < steps; i++ {
			if _, err := c.Step(); err != nil {
				t.Fatalf("%q: %v", tc.src, err)
			}
		}
		if c.Cycles() != tc.want {
			t.Errorf("%q: %d cycles, want %d", tc.src, c.Cycles(), tc.want)
		}
	}
}

func TestDadd(t *testing.T) {
	c := run(t, `
 clrc
 mov #0x0199, r4
 dadd #0x0001, r4
`+halt)
	if c.Reg(4) != 0x0200 {
		t.Errorf("dadd: %#x, want 0x0200 (BCD)", c.Reg(4))
	}
}

func TestHaltViaCPUOff(t *testing.T) {
	c := run(t, halt)
	if !c.Halted() {
		t.Error("CPUOFF did not halt")
	}
	if _, err := c.Step(); err == nil {
		t.Error("step after halt succeeded")
	}
}

func TestMultiplierPeripheral(t *testing.T) {
	c := New()
	mul := &Multiplier{}
	if err := c.MapPeripheral(0x0130, 0x10, mul); err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(`
 mov #1234, &0x0130  ; MPY
 mov #5678, &0x0138  ; OP2 triggers
 mov &0x013A, r4     ; RESLO
 mov &0x013C, r5     ; RESHI
` + halt)
	if err != nil {
		t.Fatal(err)
	}
	c.LoadImage(prog.Origin, prog.Words)
	c.SetReg(PC, prog.Origin)
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	want := uint32(1234 * 5678)
	got := uint32(c.Reg(4)) | uint32(c.Reg(5))<<16
	if got != want {
		t.Errorf("multiplier: %d, want %d", got, want)
	}
}

func TestMultiplierSigned(t *testing.T) {
	mul := &Multiplier{}
	mul.WriteWord(MulMPYS, 0xFFFE) // -2
	mul.WriteWord(MulOP2, 3)
	res := int32(uint32(mul.ReadWord(MulRESLO)) | uint32(mul.ReadWord(MulRESHI))<<16)
	if res != -6 {
		t.Errorf("signed multiply: %d, want -6", res)
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"frobnicate r4",
		"mov r4",
		"mov r4, @r5",        // indirect destination is illegal
		"jmp nowhere",        // undefined label
		"dup: nop\ndup: nop", // duplicate label
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func TestWordDirectiveAndLabels(t *testing.T) {
	prog, err := Assemble(`
 .org 0x5000
table: .word 0x0102, 0x0304
entry: mov #table, r4
 mov @r4+, r5
 mov @r4, r6
` + halt)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Origin != 0x5000 {
		t.Errorf("origin = %#x", prog.Origin)
	}
	c := New()
	c.LoadImage(prog.Origin, prog.Words)
	c.SetReg(PC, prog.Entry("entry"))
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.Reg(5) != 0x0102 || c.Reg(6) != 0x0304 {
		t.Errorf("table reads: %#x %#x", c.Reg(5), c.Reg(6))
	}
}

func TestPeripheralAlignmentValidation(t *testing.T) {
	c := New()
	if err := c.MapPeripheral(0x0131, 2, &Multiplier{}); err == nil {
		t.Error("odd base accepted")
	}
	if err := c.MapPeripheral(0x0130, 0, &Multiplier{}); err == nil {
		t.Error("zero size accepted")
	}
}
