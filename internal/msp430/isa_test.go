package msp430

import "testing"

// This file exercises the corners of the instruction set that the
// evaluation firmware leans on: multi-word arithmetic flag chains, byte
// read-modify-write on memory, signed/unsigned comparison branches, and
// the subtler flag semantics.

func TestSubcBorrowChain(t *testing.T) {
	// 32-bit subtraction 0x00020000 − 0x00000001 = 0x0001FFFF using
	// SUB/SUBC: the low subtract borrows, SUBC must honour it.
	c := run(t, `
 clr r4            ; low of A
 mov #2, r5        ; high of A
 sub #1, r4
 subc #0, r5
`+halt)
	if c.Reg(4) != 0xFFFF || c.Reg(5) != 1 {
		t.Errorf("result = %#x:%#x, want 1:0xFFFF", c.Reg(5), c.Reg(4))
	}
}

func TestCmpCarrySemantics(t *testing.T) {
	// MSP430 CMP sets C when no borrow occurs (dst >= src, unsigned).
	c := run(t, `
 mov #5, r4
 cmp #5, r4        ; equal: C set, Z set
`+halt)
	if !c.flag(FlagC) || !c.flag(FlagZ) {
		t.Error("equal compare must set C and Z")
	}
	c = run(t, `
 mov #4, r4
 cmp #5, r4        ; dst < src: borrow, C clear
`+halt)
	if c.flag(FlagC) {
		t.Error("borrowing compare must clear C")
	}
}

func TestSubOverflowFlag(t *testing.T) {
	// 0x8000 − 1 overflows signed (−32768 − 1).
	c := run(t, `
 mov #0x8000, r4
 sub #1, r4
`+halt)
	if !c.flag(FlagV) {
		t.Error("V clear after signed overflow in SUB")
	}
	if c.Reg(4) != 0x7FFF {
		t.Errorf("result %#x", c.Reg(4))
	}
}

func TestByteRMWOnMemory(t *testing.T) {
	// add.b to a memory byte must not clobber the neighbouring byte.
	c := run(t, `
 mov #0x1234, &0x2200
 mov #0x2200, r5
 add.b #1, 0(r5)
 mov &0x2200, r6
`+halt)
	if c.Reg(6) != 0x1235 {
		t.Errorf("memory word = %#x, want 0x1235", c.Reg(6))
	}
}

func TestByteOpsClearHighByteInRegister(t *testing.T) {
	c := run(t, `
 mov #0xFFFF, r4
 add.b #1, r4      ; byte result 0x00, carry set, high byte cleared
`+halt)
	if c.Reg(4) != 0 {
		t.Errorf("r4 = %#x, want 0", c.Reg(4))
	}
	if !c.flag(FlagC) || !c.flag(FlagZ) {
		t.Error("byte add must set C and Z here")
	}
}

func TestBitInstructionLeavesDst(t *testing.T) {
	c := run(t, `
 mov #0xF0F0, r4
 bit #0x0F0F, r4   ; result zero, Z set, dst untouched
`+halt)
	if c.Reg(4) != 0xF0F0 {
		t.Error("BIT modified its destination")
	}
	if !c.flag(FlagZ) {
		t.Error("BIT did not set Z on zero intersection")
	}
	if c.flag(FlagC) {
		t.Error("BIT must clear C when the result is zero (C = ~Z)")
	}
}

func TestAndSetsCarryNotZero(t *testing.T) {
	c := run(t, `
 mov #0x00F0, r4
 and #0x0010, r4
`+halt)
	if c.Reg(4) != 0x0010 {
		t.Errorf("and result %#x", c.Reg(4))
	}
	if !c.flag(FlagC) {
		t.Error("AND with nonzero result must set C")
	}
}

func TestXorOverflowWhenBothNegative(t *testing.T) {
	c := run(t, `
 mov #0x8001, r4
 xor #0x8010, r4
`+halt)
	if !c.flag(FlagV) {
		t.Error("XOR of two negative operands must set V")
	}
	if c.Reg(4) != 0x0011 {
		t.Errorf("xor result %#x", c.Reg(4))
	}
}

func TestRRCRotatesThroughCarry(t *testing.T) {
	c := run(t, `
 setc
 mov #0x0000, r4
 rrc r4            ; carry rotates into the MSB
`+halt)
	if c.Reg(4) != 0x8000 {
		t.Errorf("rrc = %#x, want 0x8000", c.Reg(4))
	}
}

func TestJGEvsJC(t *testing.T) {
	// Signed: 0x8000 (−32768) < 1, so JGE must not take; unsigned: C is
	// set (no borrow: 0x8000 >= 1), so JC takes.
	c := run(t, `
 mov #0x8000, r4
 cmp #1, r4
 jge signed_ge
 mov #1, r14
 jmp next
signed_ge:
 mov #2, r14
next:
 cmp #1, r4
 jc unsigned_ge
 mov #1, r15
 jmp done
unsigned_ge:
 mov #2, r15
done:
`+halt)
	if c.Reg(14) != 1 {
		t.Errorf("signed branch wrong: r14 = %d", c.Reg(14))
	}
	if c.Reg(15) != 2 {
		t.Errorf("unsigned branch wrong: r15 = %d", c.Reg(15))
	}
}

func TestPushAutoincrementSP(t *testing.T) {
	c := run(t, `
 mov #0x1111, r4
 mov #0x2222, r5
 push r4
 push r5
 pop r6
 pop r7
`+halt)
	if c.Reg(6) != 0x2222 || c.Reg(7) != 0x1111 {
		t.Errorf("stack order wrong: %#x %#x", c.Reg(6), c.Reg(7))
	}
	if c.Reg(SP) != 0x2400 {
		t.Errorf("SP = %#x after balanced push/pop", c.Reg(SP))
	}
}

func TestCallIndirect(t *testing.T) {
	c := run(t, `
 mov #target, r10
 call r10
 jmp done
target:
 mov #0xFEED, r4
 ret
done:
`+halt)
	if c.Reg(4) != 0xFEED {
		t.Errorf("indirect call failed: r4 = %#x", c.Reg(4))
	}
}

func TestNestedCalls(t *testing.T) {
	c := run(t, `
 call #outer
 jmp done
outer:
 call #inner
 add #1, r4
 ret
inner:
 mov #10, r4
 ret
done:
`+halt)
	if c.Reg(4) != 11 {
		t.Errorf("nested calls: r4 = %d, want 11", c.Reg(4))
	}
}

func TestSymbolicImmediateLabels(t *testing.T) {
	// #label immediates resolve to the label's address.
	prog, err := Assemble(`
 .org 0x5000
data: .word 0xABCD
entry:
 mov #data, r4
 mov @r4, r5
` + halt)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.LoadImage(prog.Origin, prog.Words)
	c.SetReg(PC, prog.Entry("entry"))
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Reg(5) != 0xABCD {
		t.Errorf("r5 = %#x", c.Reg(5))
	}
}

func TestRETI(t *testing.T) {
	// Hand-build an interrupt frame: push PC then SR, RETI must restore
	// both.
	c := New()
	prog, err := Assemble(`
 .org 0x4400
entry:
 mov #0x2400, r1
 push #after       ; return PC
 push #0x0003      ; saved SR (C and Z set)
 reti
 mov #0xBAD, r15   ; skipped
after:
 mov #0x600D, r14
 bis #0x10, sr
`)
	if err != nil {
		t.Fatal(err)
	}
	c.LoadImage(prog.Origin, prog.Words)
	c.SetReg(PC, prog.Entry("entry"))
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Reg(14) != 0x600D || c.Reg(15) == 0xBAD {
		t.Errorf("RETI did not return correctly: r14=%#x r15=%#x", c.Reg(14), c.Reg(15))
	}
}

func TestIllegalOpcodeReported(t *testing.T) {
	c := New()
	c.WriteWord(0x4400, 0x0000) // opcode 0 is illegal
	c.SetReg(PC, 0x4400)
	if _, err := c.Step(); err == nil {
		t.Error("illegal opcode executed without error")
	}
}

func TestSwpbByteOrder(t *testing.T) {
	c := run(t, `
 mov #0xBEEF, r4
 swpb r4
`+halt)
	if c.Reg(4) != 0xEFBE {
		t.Errorf("swpb = %#x", c.Reg(4))
	}
}

func TestNegativeIndexedAddressing(t *testing.T) {
	c := run(t, `
 mov #0x1234, &0x2200
 mov #0x2202, r5
 mov -2(r5), r6
`+halt)
	if c.Reg(6) != 0x1234 {
		t.Errorf("negative index read %#x", c.Reg(6))
	}
}

func TestAutoincrementByteMode(t *testing.T) {
	// @Rn+ in byte mode advances by 1, not 2.
	c := run(t, `
 mov #0x2211, &0x2200
 mov #0x2200, r5
 mov.b @r5+, r6
 mov.b @r5+, r7
`+halt)
	if c.Reg(6) != 0x11 || c.Reg(7) != 0x22 {
		t.Errorf("byte autoincrement read %#x %#x", c.Reg(6), c.Reg(7))
	}
	if c.Reg(5) != 0x2202 {
		t.Errorf("r5 = %#x after two byte reads", c.Reg(5))
	}
}
