package rv32

import (
	"fmt"
	"strconv"
	"strings"
)

// A small two-pass RV32 assembler covering the subset the evaluation
// firmware needs: labels, the base integer instructions, MUL/MULHU, the
// li/mv/j/ret/nop pseudo-instructions and the .org/.word directives.

// Program is an assembled image.
type Program struct {
	Origin uint32
	Words  []uint32
	Labels map[string]uint32
}

// Entry returns a label's address (or the origin).
func (p *Program) Entry(label string) uint32 {
	if a, ok := p.Labels[label]; ok {
		return a
	}
	return p.Origin
}

type inst struct {
	line  int
	label string
	mnem  string
	ops   []string
	addr  uint32
	size  int // words
}

var regAliases = map[string]int{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
	"a6": 16, "a7": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
	"s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
	"t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "x") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 32 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("rv32: bad register %q", s)
}

func parseImm(s string, labels map[string]uint32) (int32, error) {
	s = strings.TrimSpace(s)
	neg := strings.HasPrefix(s, "-")
	body := strings.TrimPrefix(s, "-")
	var v int64
	var err error
	if strings.HasPrefix(strings.ToLower(body), "0x") {
		v, err = strconv.ParseInt(body[2:], 16, 64)
	} else if body != "" && body[0] >= '0' && body[0] <= '9' {
		v, err = strconv.ParseInt(body, 10, 64)
	} else {
		if labels == nil {
			return 0, fmt.Errorf("rv32: label %q not allowed here", s)
		}
		a, ok := labels[strings.ToLower(body)]
		if !ok {
			return 0, fmt.Errorf("rv32: undefined label %q", body)
		}
		v = int64(a)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return int32(v), nil
}

// parseMem parses "off(reg)" operands.
func parseMem(s string, labels map[string]uint32) (off int32, reg int, err error) {
	i := strings.Index(s, "(")
	j := strings.LastIndex(s, ")")
	if i < 0 || j < i {
		return 0, 0, fmt.Errorf("rv32: bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:i])
	if offStr == "" {
		offStr = "0"
	}
	off, err = parseImm(offStr, labels)
	if err != nil {
		return 0, 0, err
	}
	reg, err = parseReg(s[i+1 : j])
	return off, reg, err
}

// Assemble translates source into a Program. One instruction per line;
// `li` with a large constant expands to LUI+ADDI (always two words for
// non-zero-upper constants, one word otherwise — sizing is deterministic).
func Assemble(src string) (*Program, error) {
	var insts []inst
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		in := inst{line: lineNo + 1}
		if i := strings.IndexByte(line, ':'); i >= 0 && !strings.ContainsAny(line[:i], " \t(") {
			in.label = strings.ToLower(strings.TrimSpace(line[:i]))
			line = strings.TrimSpace(line[i+1:])
		}
		if line != "" {
			fields := strings.SplitN(line, " ", 2)
			in.mnem = strings.ToLower(fields[0])
			if len(fields) > 1 {
				for _, o := range strings.Split(fields[1], ",") {
					in.ops = append(in.ops, strings.TrimSpace(o))
				}
			}
		}
		insts = append(insts, in)
	}

	// Pass 1: sizes and labels.
	labels := make(map[string]uint32)
	origin := uint32(0x1000)
	originSet := false
	addr := origin
	for i := range insts {
		in := &insts[i]
		switch in.mnem {
		case ".org":
			v, err := parseImm(in.ops[0], nil)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", in.line, err)
			}
			addr = uint32(v)
			if !originSet {
				origin = addr
				originSet = true
			}
		case ".word":
			in.size = len(in.ops)
		case "":
			in.size = 0
		case "li":
			// li expands to LUI+ADDI when the constant needs the upper
			// bits, else a single ADDI. Size depends only on the
			// operand's text: numeric literals size by value; label
			// operands always take the two-word form (label addresses
			// exceed the 12-bit immediate range).
			if len(in.ops) != 2 {
				return nil, fmt.Errorf("line %d: li needs 2 operands", in.line)
			}
			if v, err := parseImm(in.ops[1], nil); err == nil {
				if v >= -2048 && v < 2048 {
					in.size = 1
				} else {
					in.size = 2
				}
			} else {
				in.size = 2
			}
		default:
			in.size = 1
		}
		if in.label != "" {
			if _, dup := labels[in.label]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", in.line, in.label)
			}
			labels[in.label] = addr
		}
		in.addr = addr
		addr += uint32(4 * in.size)
	}

	// Pass 2: encode.
	var words []uint32
	cur := origin
	emit := func(in *inst, ws ...uint32) {
		for cur < in.addr {
			words = append(words, 0)
			cur += 4
		}
		words = append(words, ws...)
		cur += uint32(4 * len(ws))
	}
	for i := range insts {
		in := &insts[i]
		ws, err := encode(in, labels)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", in.line, err)
		}
		if len(ws) > 0 {
			emit(in, ws...)
		}
	}
	return &Program{Origin: origin, Words: words, Labels: labels}, nil
}

func encR(funct7 uint32, rs2, rs1 int, funct3 uint32, rd int, opcode uint32) uint32 {
	return funct7<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | funct3<<12 | uint32(rd)<<7 | opcode
}

func encI(imm int32, rs1 int, funct3 uint32, rd int, opcode uint32) (uint32, error) {
	if imm < -2048 || imm > 2047 {
		return 0, fmt.Errorf("rv32: I-immediate %d out of range", imm)
	}
	return uint32(imm)&0xFFF<<20 | uint32(rs1)<<15 | funct3<<12 | uint32(rd)<<7 | opcode, nil
}

func encS(imm int32, rs2, rs1 int, funct3 uint32) (uint32, error) {
	if imm < -2048 || imm > 2047 {
		return 0, fmt.Errorf("rv32: S-immediate %d out of range", imm)
	}
	u := uint32(imm) & 0xFFF
	return u>>5<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | funct3<<12 | (u&0x1F)<<7 | 0x23, nil
}

func encB(imm int32, rs2, rs1 int, funct3 uint32) (uint32, error) {
	if imm < -4096 || imm > 4095 || imm%2 != 0 {
		return 0, fmt.Errorf("rv32: branch offset %d out of range", imm)
	}
	u := uint32(imm)
	return (u>>12&1)<<31 | (u>>5&0x3F)<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 |
		funct3<<12 | (u>>1&0xF)<<8 | (u>>11&1)<<7 | 0x63, nil
}

func encJ(imm int32, rd int) (uint32, error) {
	if imm < -(1<<20) || imm >= 1<<20 || imm%2 != 0 {
		return 0, fmt.Errorf("rv32: jump offset %d out of range", imm)
	}
	u := uint32(imm)
	return (u>>20&1)<<31 | (u>>1&0x3FF)<<21 | (u>>11&1)<<20 | (u>>12&0xFF)<<12 |
		uint32(rd)<<7 | 0x6F, nil
}

var rOps = map[string][3]uint32{ // funct7, funct3, opcode(0x33)
	"add": {0, 0, 0x33}, "sub": {0x20, 0, 0x33}, "sll": {0, 1, 0x33},
	"slt": {0, 2, 0x33}, "sltu": {0, 3, 0x33}, "xor": {0, 4, 0x33},
	"srl": {0, 5, 0x33}, "sra": {0x20, 5, 0x33}, "or": {0, 6, 0x33},
	"and": {0, 7, 0x33}, "mul": {1, 0, 0x33}, "mulhu": {1, 3, 0x33},
}

var iOps = map[string]uint32{ // funct3 for opcode 0x13
	"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7,
}

var branchOps = map[string]uint32{
	"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7,
}

func encode(in *inst, labels map[string]uint32) ([]uint32, error) {
	switch in.mnem {
	case "", ".org":
		return nil, nil
	case ".word":
		var ws []uint32
		for _, o := range in.ops {
			v, err := parseImm(o, labels)
			if err != nil {
				return nil, err
			}
			ws = append(ws, uint32(v))
		}
		return ws, nil
	case "nop":
		return []uint32{0x00000013}, nil // addi x0, x0, 0
	case "ebreak":
		return []uint32{0x00100073}, nil
	case "mv":
		rd, err := parseReg(in.ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := parseReg(in.ops[1])
		if err != nil {
			return nil, err
		}
		w, _ := encI(0, rs, 0, rd, 0x13)
		return []uint32{w}, nil
	case "li":
		rd, err := parseReg(in.ops[0])
		if err != nil {
			return nil, err
		}
		v, err := parseImm(in.ops[1], labels)
		if err != nil {
			return nil, err
		}
		// The sizing pass reserved two words for label operands even if
		// the resolved value would fit an ADDI; emit the two-word form
		// whenever two words were reserved to keep addresses stable.
		if in.size == 1 {
			w, _ := encI(v, 0, 0, rd, 0x13)
			return []uint32{w}, nil
		}
		upper := (uint32(v) + 0x800) & 0xFFFFF000
		lower := int32(uint32(v) - upper)
		lui := upper | uint32(rd)<<7 | 0x37
		addi, _ := encI(lower, rd, 0, rd, 0x13)
		return []uint32{lui, addi}, nil
	case "j":
		target, err := parseImm(in.ops[0], labels)
		if err != nil {
			return nil, err
		}
		w, err := encJ(target-int32(in.addr), 0)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	case "jal":
		rd, err := parseReg(in.ops[0])
		if err != nil {
			return nil, err
		}
		target, err := parseImm(in.ops[1], labels)
		if err != nil {
			return nil, err
		}
		w, err := encJ(target-int32(in.addr), rd)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	case "jalr":
		rd, err := parseReg(in.ops[0])
		if err != nil {
			return nil, err
		}
		off, rs, err := parseMem(in.ops[1], labels)
		if err != nil {
			return nil, err
		}
		w, err := encI(off, rs, 0, rd, 0x67)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	case "ret":
		w, _ := encI(0, 1, 0, 0, 0x67) // jalr x0, 0(ra)
		return []uint32{w}, nil
	case "lw", "lhu", "lbu":
		rd, err := parseReg(in.ops[0])
		if err != nil {
			return nil, err
		}
		off, rs, err := parseMem(in.ops[1], labels)
		if err != nil {
			return nil, err
		}
		f3 := map[string]uint32{"lw": 2, "lhu": 5, "lbu": 4}[in.mnem]
		w, err := encI(off, rs, f3, rd, 0x03)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	case "sw":
		rs2, err := parseReg(in.ops[0])
		if err != nil {
			return nil, err
		}
		off, rs1, err := parseMem(in.ops[1], labels)
		if err != nil {
			return nil, err
		}
		w, err := encS(off, rs2, rs1, 2)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	case "slli", "srli", "srai":
		rd, err := parseReg(in.ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := parseReg(in.ops[1])
		if err != nil {
			return nil, err
		}
		sh, err := parseImm(in.ops[2], nil)
		if err != nil || sh < 0 || sh > 31 {
			return nil, fmt.Errorf("rv32: bad shift amount %q", in.ops[2])
		}
		f3 := uint32(1)
		f7 := uint32(0)
		if in.mnem != "slli" {
			f3 = 5
			if in.mnem == "srai" {
				f7 = 0x20
			}
		}
		return []uint32{encR(f7, int(sh), rs, f3, rd, 0x13)}, nil
	}
	if f3, ok := iOps[in.mnem]; ok {
		rd, err := parseReg(in.ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := parseReg(in.ops[1])
		if err != nil {
			return nil, err
		}
		imm, err := parseImm(in.ops[2], nil)
		if err != nil {
			return nil, err
		}
		w, err := encI(imm, rs, f3, rd, 0x13)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}
	if spec, ok := rOps[in.mnem]; ok {
		rd, err := parseReg(in.ops[0])
		if err != nil {
			return nil, err
		}
		rs1, err := parseReg(in.ops[1])
		if err != nil {
			return nil, err
		}
		rs2, err := parseReg(in.ops[2])
		if err != nil {
			return nil, err
		}
		return []uint32{encR(spec[0], rs2, rs1, spec[1], rd, spec[2])}, nil
	}
	if f3, ok := branchOps[in.mnem]; ok {
		rs1, err := parseReg(in.ops[0])
		if err != nil {
			return nil, err
		}
		rs2, err := parseReg(in.ops[1])
		if err != nil {
			return nil, err
		}
		target, err := parseImm(in.ops[2], labels)
		if err != nil {
			return nil, err
		}
		w, err := encB(target-int32(in.addr), rs2, rs1, f3)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}
	return nil, fmt.Errorf("rv32: unknown mnemonic %q", in.mnem)
}
