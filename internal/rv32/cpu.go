// Package rv32 implements a compact RV32IM-subset CPU — a stand-in for the
// 32-bit open-core processors the paper's future work proposes evaluating
// the software routines on ("testing the software implementations on
// different types of micro-controllers and open-core processors"). The
// same evaluation firmware, regenerated for this core by
// internal/firmware, quantifies the paper's expectation that "on 32-bit or
// 64-bit platforms, considerably lower latency could be achieved".
//
// Supported instructions: the RV32I base integer set (LUI, AUIPC, JAL,
// JALR, branches, loads/stores, ALU immediate/register) plus MUL from the
// M extension. The cycle model is a simple in-order core: 1 cycle per
// instruction, +1 for loads and taken branches/jumps, +2 for MUL.
package rv32

import "fmt"

// CPU is one RV32 hart with a small word-addressed memory and a peripheral
// bus compatible with the testing-block port.
type CPU struct {
	regs   [32]uint32
	pc     uint32
	mem    []byte
	periph []mapping
	cycles int64
	halted bool
}

// Peripheral is a word-addressed device (32-bit bus; the testing-block
// port's 16-bit words are zero-extended).
type Peripheral interface {
	ReadWord(addr uint32) uint32
	WriteWord(addr uint32, v uint32)
}

type mapping struct {
	base, size uint32
	dev        Peripheral
}

// MemSize is the RAM size in bytes.
const MemSize = 1 << 20

// New returns a CPU with zeroed registers and memory.
func New() *CPU { return &CPU{mem: make([]byte, MemSize)} }

// MapPeripheral attaches a device at [base, base+size).
func (c *CPU) MapPeripheral(base, size uint32, dev Peripheral) error {
	if base%4 != 0 || size%4 != 0 || size == 0 {
		return fmt.Errorf("rv32: peripheral window %#x+%#x not word-aligned", base, size)
	}
	c.periph = append(c.periph, mapping{base: base, size: size, dev: dev})
	return nil
}

func (c *CPU) findPeriph(addr uint32) (Peripheral, uint32, bool) {
	for _, m := range c.periph {
		if addr >= m.base && addr < m.base+m.size {
			return m.dev, addr - m.base, true
		}
	}
	return nil, 0, false
}

// ReadWord reads a 32-bit word (addr must be 4-aligned for RAM).
func (c *CPU) ReadWord(addr uint32) uint32 {
	if dev, off, ok := c.findPeriph(addr); ok {
		return dev.ReadWord(off)
	}
	a := addr % MemSize
	return uint32(c.mem[a]) | uint32(c.mem[a+1])<<8 | uint32(c.mem[a+2])<<16 | uint32(c.mem[a+3])<<24
}

// WriteWord writes a 32-bit word.
func (c *CPU) WriteWord(addr uint32, v uint32) {
	if dev, off, ok := c.findPeriph(addr); ok {
		dev.WriteWord(off, v)
		return
	}
	a := addr % MemSize
	c.mem[a] = byte(v)
	c.mem[a+1] = byte(v >> 8)
	c.mem[a+2] = byte(v >> 16)
	c.mem[a+3] = byte(v >> 24)
}

// Reg returns register x<r> (x0 always reads 0).
func (c *CPU) Reg(r int) uint32 {
	if r == 0 {
		return 0
	}
	return c.regs[r]
}

// SetReg writes register x<r> (writes to x0 are discarded).
func (c *CPU) SetReg(r int, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}

// PC returns the program counter.
func (c *CPU) PC() uint32 { return c.pc }

// SetPC sets the program counter.
func (c *CPU) SetPC(v uint32) { c.pc = v &^ 3 }

// Cycles returns consumed cycles.
func (c *CPU) Cycles() int64 { return c.cycles }

// Halted reports whether the core has executed EBREAK (the firmware's
// "done" signal).
func (c *CPU) Halted() bool { return c.halted }

// LoadImage copies words into memory starting at addr.
func (c *CPU) LoadImage(addr uint32, words []uint32) {
	for i, w := range words {
		c.WriteWord(addr+uint32(4*i), w)
	}
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.halted {
		return fmt.Errorf("rv32: halted")
	}
	inst := c.ReadWord(c.pc)
	nextPC := c.pc + 4
	cyc := 1

	opcode := inst & 0x7F
	rd := int(inst >> 7 & 0x1F)
	funct3 := inst >> 12 & 0x7
	rs1 := int(inst >> 15 & 0x1F)
	rs2 := int(inst >> 20 & 0x1F)
	funct7 := inst >> 25

	immI := int32(inst) >> 20
	immS := int32(inst&0xFE000000)>>20 | int32(inst>>7&0x1F)
	immB := int32(inst&0x80000000)>>19 | int32(inst&0x80)<<4 |
		int32(inst>>20&0x7E0) | int32(inst>>7&0x1E)
	immU := int32(inst & 0xFFFFF000)
	immJ := int32(inst&0x80000000)>>11 | int32(inst&0xFF000) |
		int32(inst>>9&0x800) | int32(inst>>20&0x7FE)

	a := c.Reg(rs1)
	b := c.Reg(rs2)

	switch opcode {
	case 0x37: // LUI
		c.SetReg(rd, uint32(immU))
	case 0x17: // AUIPC
		c.SetReg(rd, c.pc+uint32(immU))
	case 0x6F: // JAL
		c.SetReg(rd, nextPC)
		nextPC = c.pc + uint32(immJ)
		cyc = 2
	case 0x67: // JALR
		c.SetReg(rd, nextPC)
		nextPC = (a + uint32(immI)) &^ 1
		cyc = 2
	case 0x63: // branches
		take := false
		switch funct3 {
		case 0:
			take = a == b
		case 1:
			take = a != b
		case 4:
			take = int32(a) < int32(b)
		case 5:
			take = int32(a) >= int32(b)
		case 6:
			take = a < b
		case 7:
			take = a >= b
		default:
			return fmt.Errorf("rv32: bad branch funct3 %d at %#x", funct3, c.pc)
		}
		if take {
			nextPC = c.pc + uint32(immB)
			cyc = 2
		}
	case 0x03: // loads
		addr := a + uint32(immI)
		cyc = 2
		switch funct3 {
		case 2: // LW
			c.SetReg(rd, c.ReadWord(addr))
		case 4: // LBU
			w := c.ReadWord(addr &^ 3)
			c.SetReg(rd, w>>(8*(addr%4))&0xFF)
		case 5: // LHU
			w := c.ReadWord(addr &^ 3)
			c.SetReg(rd, w>>(8*(addr%4))&0xFFFF)
		default:
			return fmt.Errorf("rv32: unsupported load funct3 %d at %#x", funct3, c.pc)
		}
	case 0x23: // stores
		addr := a + uint32(immS)
		switch funct3 {
		case 2: // SW
			c.WriteWord(addr, b)
		default:
			return fmt.Errorf("rv32: unsupported store funct3 %d at %#x", funct3, c.pc)
		}
	case 0x13: // ALU immediate
		switch funct3 {
		case 0: // ADDI
			c.SetReg(rd, a+uint32(immI))
		case 2: // SLTI
			if int32(a) < immI {
				c.SetReg(rd, 1)
			} else {
				c.SetReg(rd, 0)
			}
		case 3: // SLTIU
			if a < uint32(immI) {
				c.SetReg(rd, 1)
			} else {
				c.SetReg(rd, 0)
			}
		case 4: // XORI
			c.SetReg(rd, a^uint32(immI))
		case 6: // ORI
			c.SetReg(rd, a|uint32(immI))
		case 7: // ANDI
			c.SetReg(rd, a&uint32(immI))
		case 1: // SLLI
			c.SetReg(rd, a<<(inst>>20&0x1F))
		case 5:
			sh := inst >> 20 & 0x1F
			if funct7&0x20 != 0 { // SRAI
				c.SetReg(rd, uint32(int32(a)>>sh))
			} else { // SRLI
				c.SetReg(rd, a>>sh)
			}
		}
	case 0x33: // ALU register
		if funct7 == 1 { // M extension
			switch funct3 {
			case 0: // MUL
				c.SetReg(rd, a*b)
				cyc = 3
			case 3: // MULHU
				c.SetReg(rd, uint32(uint64(a)*uint64(b)>>32))
				cyc = 3
			default:
				return fmt.Errorf("rv32: unsupported M funct3 %d at %#x", funct3, c.pc)
			}
		} else {
			switch funct3 {
			case 0:
				if funct7&0x20 != 0 {
					c.SetReg(rd, a-b)
				} else {
					c.SetReg(rd, a+b)
				}
			case 1: // SLL
				c.SetReg(rd, a<<(b&0x1F))
			case 2: // SLT
				if int32(a) < int32(b) {
					c.SetReg(rd, 1)
				} else {
					c.SetReg(rd, 0)
				}
			case 3: // SLTU
				if a < b {
					c.SetReg(rd, 1)
				} else {
					c.SetReg(rd, 0)
				}
			case 4:
				c.SetReg(rd, a^b)
			case 5:
				if funct7&0x20 != 0 { // SRA
					c.SetReg(rd, uint32(int32(a)>>(b&0x1F)))
				} else {
					c.SetReg(rd, a>>(b&0x1F))
				}
			case 6:
				c.SetReg(rd, a|b)
			case 7:
				c.SetReg(rd, a&b)
			}
		}
	case 0x73: // SYSTEM: EBREAK halts
		if inst == 0x00100073 {
			c.halted = true
		} else {
			return fmt.Errorf("rv32: unsupported system instruction %#x at %#x", inst, c.pc)
		}
	default:
		return fmt.Errorf("rv32: illegal instruction %#08x at %#x", inst, c.pc)
	}

	c.pc = nextPC
	c.cycles += int64(cyc)
	return nil
}

// Run executes until EBREAK or maxSteps.
func (c *CPU) Run(maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		if c.halted {
			return nil
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	if !c.halted {
		return fmt.Errorf("rv32: did not halt within %d steps", maxSteps)
	}
	return nil
}
