package rv32

import "testing"

func run(t *testing.T, src string) *CPU {
	t.Helper()
	prog, err := Assemble(src + "\n ebreak\n")
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New()
	c.LoadImage(prog.Origin, prog.Words)
	c.SetPC(prog.Origin)
	c.SetReg(2, 0x8000) // sp
	if err := c.Run(100000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestLiSmallAndLarge(t *testing.T) {
	c := run(t, `
 li t0, 42
 li t1, -7
 li t2, 0x12345
 li t3, 0xFFFF8000
`)
	if c.Reg(5) != 42 {
		t.Errorf("t0 = %d", c.Reg(5))
	}
	if c.Reg(6) != 0xFFFFFFF9 {
		t.Errorf("t1 = %#x", c.Reg(6))
	}
	if c.Reg(7) != 0x12345 {
		t.Errorf("t2 = %#x", c.Reg(7))
	}
	if c.Reg(28) != 0xFFFF8000 {
		t.Errorf("t3 = %#x", c.Reg(28))
	}
}

func TestArithmetic(t *testing.T) {
	c := run(t, `
 li a0, 100
 li a1, 42
 add a2, a0, a1
 sub a3, a0, a1
 mul a4, a0, a1
 xor a5, a0, a1
`)
	if c.Reg(12) != 142 || c.Reg(13) != 58 || c.Reg(14) != 4200 {
		t.Errorf("arith: %d %d %d", c.Reg(12), c.Reg(13), c.Reg(14))
	}
	if c.Reg(15) != 100^42 {
		t.Errorf("xor: %d", c.Reg(15))
	}
}

func TestMulhu(t *testing.T) {
	c := run(t, `
 li a0, 0x10000
 li a1, 0x10000
 mulhu a2, a0, a1
 mul a3, a0, a1
`)
	if c.Reg(12) != 1 || c.Reg(13) != 0 {
		t.Errorf("0x10000² = %#x:%#x, want 1:0", c.Reg(12), c.Reg(13))
	}
}

func TestShifts(t *testing.T) {
	c := run(t, `
 li a0, 0x80000000
 srli a1, a0, 4
 srai a2, a0, 4
 li a3, 3
 slli a4, a3, 10
`)
	if c.Reg(11) != 0x08000000 {
		t.Errorf("srli: %#x", c.Reg(11))
	}
	if c.Reg(12) != 0xF8000000 {
		t.Errorf("srai: %#x", c.Reg(12))
	}
	if c.Reg(14) != 3<<10 {
		t.Errorf("slli: %#x", c.Reg(14))
	}
}

func TestLoadStore(t *testing.T) {
	c := run(t, `
 li t0, 0x2000
 li t1, 0xDEADBEEF
 sw t1, 0(t0)
 lw t2, 0(t0)
 lhu t3, 0(t0)
 lbu t4, 3(t0)
`)
	if c.Reg(7) != 0xDEADBEEF {
		t.Errorf("lw: %#x", c.Reg(7))
	}
	if c.Reg(28) != 0xBEEF {
		t.Errorf("lhu: %#x", c.Reg(28))
	}
	if c.Reg(29) != 0xDE {
		t.Errorf("lbu: %#x", c.Reg(29))
	}
}

func TestLoopSum(t *testing.T) {
	c := run(t, `
 li a0, 0
 li a1, 10
loop:
 add a0, a0, a1
 addi a1, a1, -1
 bne a1, zero, loop
`)
	if c.Reg(10) != 55 {
		t.Errorf("sum = %d", c.Reg(10))
	}
}

func TestSignedUnsignedBranches(t *testing.T) {
	c := run(t, `
 li a0, -1
 li a1, 1
 blt a0, a1, signed_ok
 li a2, 0
 j next
signed_ok:
 li a2, 1
next:
 bltu a0, a1, unsigned_lt
 li a3, 1
 j done
unsigned_lt:
 li a3, 0
done:
`)
	if c.Reg(12) != 1 {
		t.Error("blt treated -1 as ≥ 1")
	}
	if c.Reg(13) != 1 {
		t.Error("bltu treated 0xFFFFFFFF as < 1")
	}
}

func TestCallRet(t *testing.T) {
	c := run(t, `
 jal ra, sub
 j done
sub:
 li a0, 77
 ret
done:
 addi a0, a0, 1
`)
	if c.Reg(10) != 78 {
		t.Errorf("call/ret: a0 = %d", c.Reg(10))
	}
}

func TestX0AlwaysZero(t *testing.T) {
	c := run(t, `
 addi zero, zero, 5
 add a0, zero, zero
`)
	if c.Reg(10) != 0 || c.Reg(0) != 0 {
		t.Error("x0 is writable")
	}
}

func TestCycleModel(t *testing.T) {
	prog, err := Assemble(`
 addi a0, zero, 1   ; 1 cycle
 lw a1, 0(zero)     ; 2 cycles
 mul a2, a0, a0     ; 3 cycles
 beq zero, zero, t  ; taken: 2 cycles
t: ebreak
`)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.LoadImage(prog.Origin, prog.Words)
	c.SetPC(prog.Origin)
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	// 1 + 2 + 3 + 2 + 1 (ebreak) = 9.
	if c.Cycles() != 9 {
		t.Errorf("cycles = %d, want 9", c.Cycles())
	}
}

func TestPeripheralAccess(t *testing.T) {
	c := New()
	dev := &stubDev{}
	if err := c.MapPeripheral(0x40000, 0x100, dev); err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(`
 li t0, 0x40000
 lw a0, 4(t0)
 sw a0, 8(t0)
 ebreak
`)
	if err != nil {
		t.Fatal(err)
	}
	c.LoadImage(prog.Origin, prog.Words)
	c.SetPC(prog.Origin)
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if dev.wroteAddr != 8 || dev.wroteVal != 0x1234 {
		t.Errorf("peripheral write: addr=%d val=%#x", dev.wroteAddr, dev.wroteVal)
	}
}

type stubDev struct {
	wroteAddr uint32
	wroteVal  uint32
}

func (d *stubDev) ReadWord(addr uint32) uint32 { return 0x1234 }
func (d *stubDev) WriteWord(addr, v uint32)    { d.wroteAddr, d.wroteVal = addr, v }

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"frobnicate a0",
		"addi a0, a1, 5000",   // I-imm out of range
		"beq a0, a1, nowhere", // undefined label
		"lw a0, a1",           // bad memory operand
		"slli a0, a1, 99",     // bad shift
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func TestIllegalInstruction(t *testing.T) {
	c := New()
	c.WriteWord(0x1000, 0xFFFFFFFF)
	c.SetPC(0x1000)
	if err := c.Step(); err == nil {
		t.Error("illegal instruction executed")
	}
}

func TestWordDirective(t *testing.T) {
	prog, err := Assemble(`
 .org 0x2000
tbl: .word 0x11, 0x22
entry:
 li t0, 0x2000
 lw a0, 0(t0)
 lw a1, 4(t0)
 ebreak
`)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.LoadImage(prog.Origin, prog.Words)
	c.SetPC(prog.Entry("entry"))
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Reg(10) != 0x11 || c.Reg(11) != 0x22 {
		t.Errorf("table reads: %#x %#x", c.Reg(10), c.Reg(11))
	}
}

func TestSetLessThan(t *testing.T) {
	c := run(t, `
 li a0, -5
 li a1, 3
 slt a2, a0, a1    # signed: -5 < 3 -> 1
 sltu a3, a0, a1   # unsigned: big < 3 -> 0
 slti a4, a0, 0    # -5 < 0 -> 1
 sltiu a5, a1, 10  # 3 < 10 -> 1
`)
	if c.Reg(12) != 1 || c.Reg(13) != 0 || c.Reg(14) != 1 || c.Reg(15) != 1 {
		t.Errorf("slt family: %d %d %d %d", c.Reg(12), c.Reg(13), c.Reg(14), c.Reg(15))
	}
}

func TestLogicalImmediates(t *testing.T) {
	c := run(t, `
 li a0, 0xFF
 andi a1, a0, 0x0F
 ori a2, a0, 0x700
 xori a3, a0, 0xFF
`)
	if c.Reg(11) != 0x0F || c.Reg(12) != 0x7FF || c.Reg(13) != 0 {
		t.Errorf("logic imm: %#x %#x %#x", c.Reg(11), c.Reg(12), c.Reg(13))
	}
}

func TestRegisterLogicAndShifts(t *testing.T) {
	c := run(t, `
 li a0, 0xF0F0
 li a1, 0x0FF0
 and a2, a0, a1
 or a3, a0, a1
 li a4, 4
 sll a5, a1, a4
 srl a6, a0, a4
 li a7, -16
 sra s2, a7, a4
 sltu s3, a1, a0
 slt s4, a7, a1
`)
	if c.Reg(12) != 0x00F0 || c.Reg(13) != 0xFFF0 {
		t.Errorf("and/or: %#x %#x", c.Reg(12), c.Reg(13))
	}
	if c.Reg(15) != 0xFF00 || c.Reg(16) != 0x0F0F {
		t.Errorf("sll/srl: %#x %#x", c.Reg(15), c.Reg(16))
	}
	if c.Reg(18) != 0xFFFFFFFF {
		t.Errorf("sra: %#x", c.Reg(18))
	}
	if c.Reg(19) != 1 || c.Reg(20) != 1 {
		t.Errorf("sltu/slt reg: %d %d", c.Reg(19), c.Reg(20))
	}
}

func TestMoreBranches(t *testing.T) {
	c := run(t, `
 li a0, 7
 li a1, 7
 beq a0, a1, eq
 li s2, 0
 j n1
eq:
 li s2, 1
n1:
 li a2, 9
 bge a2, a0, ge
 li s3, 0
 j n2
ge:
 li s3, 1
n2:
 bgeu a0, a2, geu
 li s4, 1
 j n3
geu:
 li s4, 0
n3:
`)
	if c.Reg(18) != 1 || c.Reg(19) != 1 || c.Reg(20) != 1 {
		t.Errorf("branches: %d %d %d", c.Reg(18), c.Reg(19), c.Reg(20))
	}
}

func TestAuipcEncoding(t *testing.T) {
	// AUIPC via raw .word: auipc x10, 0x1 at 0x1000 → a0 = 0x1000 + 0x1000.
	prog, err := Assemble(`
 .org 0x1000
 .word 0x00001517
 ebreak
`)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.LoadImage(prog.Origin, prog.Words)
	c.SetPC(prog.Origin)
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Reg(10) != 0x2000 {
		t.Errorf("auipc: %#x, want 0x2000", c.Reg(10))
	}
}

func TestJalrClearsLSB(t *testing.T) {
	c := run(t, `
 li t0, target
 addi t0, t0, 1    # odd target: JALR must clear bit 0
 jalr ra, 0(t0)
 j done
target:
 li a0, 5
 ret
done:
`)
	if c.Reg(10) != 5 {
		t.Errorf("jalr with odd target: a0 = %d", c.Reg(10))
	}
}

func TestStoreToPeripheralAndRAMBoundary(t *testing.T) {
	c := run(t, `
 li t0, 0x3000
 li t1, 0x11223344
 sw t1, 0(t0)
 lbu a0, 0(t0)
 lbu a1, 1(t0)
 lbu a2, 2(t0)
 lhu a3, 2(t0)
`)
	if c.Reg(10) != 0x44 || c.Reg(11) != 0x33 || c.Reg(12) != 0x22 {
		t.Errorf("lbu: %#x %#x %#x", c.Reg(10), c.Reg(11), c.Reg(12))
	}
	if c.Reg(13) != 0x1122 {
		t.Errorf("lhu: %#x", c.Reg(13))
	}
}

func TestUnsupportedInstructionErrors(t *testing.T) {
	// LB (funct3=0 load) is unsupported in this subset.
	c := New()
	c.WriteWord(0x1000, 0x00000003) // lb x0, 0(x0)
	c.SetPC(0x1000)
	if err := c.Step(); err == nil {
		t.Error("unsupported load accepted")
	}
	// SB (funct3=0 store).
	c2 := New()
	c2.WriteWord(0x1000, 0x00000023)
	c2.SetPC(0x1000)
	if err := c2.Step(); err == nil {
		t.Error("unsupported store accepted")
	}
	// Unsupported SYSTEM.
	c3 := New()
	c3.WriteWord(0x1000, 0x00000073) // ecall
	c3.SetPC(0x1000)
	if err := c3.Step(); err == nil {
		t.Error("ecall accepted")
	}
}

func TestPeripheralMapValidation(t *testing.T) {
	c := New()
	if err := c.MapPeripheral(0x40001, 4, &stubDev{}); err == nil {
		t.Error("odd base accepted")
	}
	if err := c.MapPeripheral(0x40000, 0, &stubDev{}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestBranchOffsetOutOfRange(t *testing.T) {
	// Build a source where the branch target is > 4 KiB away.
	src := "beq zero, zero, far\n"
	for i := 0; i < 1100; i++ {
		src += " nop\n"
	}
	src += "far: ebreak\n"
	if _, err := Assemble(src); err == nil {
		t.Error("out-of-range branch accepted")
	}
}
