// Package hwfast is a word-level functional model of the hardware testing
// block: it digests the TRNG stream 64 bits at a time and produces exactly
// the statistics the structural simulation (internal/hwsim driven by
// internal/hwblock) accumulates one clock at a time.
//
// The cycle-accurate netlist remains the golden reference; this model is
// the throughput engine. The two are proven bit-exact over the full
// register-file image by the differential equivalence suite (exhaustive
// structured corpora at n=128, randomized streams and the
// FuzzFastPathEquivalence fuzz target at n=65536, one randomized pass at
// n=2^20 — all eight Table III design points).
//
// Word-level techniques, per engine:
//
//   - ones / cumulative sums (tests 1, 13): a 256-entry byte table carries
//     the walk delta and the intra-byte prefix extrema, so the ±1 random
//     walk and its S_min/S_max registers advance eight clocks per lookup.
//   - runs (test 3): transitions inside a word are popcount(w XOR w>>1);
//     only the seam bit between words is handled individually.
//   - block frequency (test 2): per-block ones counts are popcounts of
//     block-aligned sub-masks (every block length is a power of two).
//   - longest run of ones (test 4): chunk merging — leading/trailing run
//     lengths come from trailing/leading-zero counts of the complement,
//     the interior maximum from run-length erosion (x &= x>>1).
//   - template tests (7, 8): an m-lane AND network builds a per-word match
//     bitmap (bit t set iff the m-bit window ending at t equals the
//     template); validity masking, the non-overlapping hold-off scan and
//     the saturating per-block counts then touch only the set bits.
//   - serial / approximate entropy (11, 12): a branch-light sliding-window
//     loop increments the three pattern banks directly, with the same
//     fill gating and cyclic wrap-around feed as the hardware.
//
//trnglint:deterministic
package hwfast

import (
	"fmt"

	"repro/internal/nist"
)

// State is the functional model of one testing-block design. Feed it
// exactly N bits with ClockWord (or Clock); read the accumulated raw
// statistics through the accessors. All counters mirror — at every bit
// boundary — the values the structural engines would hold after the same
// prefix of the stream.
type State struct {
	n    int
	bits int
	done bool

	// external marks the word-parallelizable engines (walk/cusum, runs,
	// block frequency, longest run) as externally maintained: ClockWord
	// still validates, advances the bit position and runs the residual
	// per-stream engines (templates, serial), but skips the four sliceable
	// engines — a bit-sliced lane group (internal/hwslice) advances them
	// for 64 streams at once and hands the state back via LoadWordStats.
	// The flag is a mode, not state: Reset preserves it.
	external bool

	// cumulative-sums walk (tests 1, 3, 13): current value and extrema.
	s, sMin, sMax int64

	// runs (test 3)
	hasRuns bool
	runs    uint64
	prev    byte

	// block frequency (test 2)
	hasBF  bool
	bfM    int
	bfFill int // bits into the current block
	bfEps  uint64
	bfBank []uint64
	bfCur  int

	// longest run of ones (test 4)
	hasLR      bool
	lrM        int
	lrLo, lrHi int
	lrPos      int // bits into the current block
	lrRun      int // length of the ones run ending at the last bit
	lrBlkMax   int
	lrClasses  []uint64

	// shared m-bit window context for the template tests: the last m-1
	// bits before the current word, chronological (oldest at bit 0).
	winM int
	tail uint64

	// non-overlapping template (test 7)
	hasNO      bool
	noTpl      uint64
	noBlockLen int
	noNBlocks  int
	noPos      int // bits into the current block
	noNext     int // first in-block position allowed to match (hold-off)
	noW        uint64
	noBank     []uint64
	noCur      int

	// overlapping template (test 8)
	hasOV      bool
	ovBlockLen int
	ovK        int
	ovPos      int
	ovOcc      int
	ovClasses  []uint64

	// serial / approximate entropy (tests 11, 12)
	hasSer    bool
	serM      int
	serFill   int
	serWin    uint64
	serHead   uint64
	serNu     [3][]uint64 // widths m, m-1, m-2
	serSynced bool        // narrower banks up to date (see serialSync)
	serCyclic bool        // wrap-around feed applied; marginals are exact
}

// New builds the functional model for a design of n bits implementing the
// given SP800-22 test subset with parameters p — the same inputs
// hwblock.New derives its engines from.
func New(n int, tests []int, p nist.Params) (*State, error) {
	if n < 8 {
		return nil, fmt.Errorf("hwfast: sequence length %d too small", n)
	}
	has := func(id int) bool {
		for _, t := range tests {
			if t == id {
				return true
			}
		}
		return false
	}
	st := &State{n: n, hasRuns: has(3)}
	if has(2) {
		if p.BlockFrequencyM < 1 || n%p.BlockFrequencyM != 0 {
			return nil, fmt.Errorf("hwfast: block frequency M=%d does not divide n=%d", p.BlockFrequencyM, n)
		}
		st.hasBF = true
		st.bfM = p.BlockFrequencyM
		st.bfBank = make([]uint64, n/p.BlockFrequencyM)
	}
	if has(4) {
		lo, hi, err := nist.LongestRunClassBounds(p.LongestRunM)
		if err != nil {
			return nil, fmt.Errorf("hwfast: %w", err)
		}
		st.hasLR = true
		st.lrM = p.LongestRunM
		st.lrLo, st.lrHi = lo, hi
		st.lrClasses = make([]uint64, hi-lo+1)
	}
	if has(7) || has(8) {
		st.winM = p.TemplateM
		if st.winM < 1 || st.winM > 9 {
			return nil, fmt.Errorf("hwfast: template length %d out of range", st.winM)
		}
	}
	if has(7) {
		st.hasNO = true
		st.noTpl = uint64(p.TemplateB)
		st.noNBlocks = p.NonOverlappingN
		st.noBlockLen = n / p.NonOverlappingN
		st.noBank = make([]uint64, p.NonOverlappingN)
	}
	if has(8) {
		st.hasOV = true
		st.ovBlockLen = p.OverlappingM
		st.ovK = 5
		st.ovClasses = make([]uint64, st.ovK+1)
	}
	if has(11) || has(12) {
		if p.SerialM < 3 || p.SerialM > 16 {
			return nil, fmt.Errorf("hwfast: serial pattern length %d out of range", p.SerialM)
		}
		st.hasSer = true
		st.serM = p.SerialM
		for i, w := range []int{p.SerialM, p.SerialM - 1, p.SerialM - 2} {
			st.serNu[i] = make([]uint64, 1<<uint(w))
		}
	}
	return st, nil
}

// N returns the sequence length.
func (st *State) N() int { return st.n }

// BitsSeen reports how many bits have been ingested since reset.
func (st *State) BitsSeen() int { return st.bits }

// Done reports whether a full N-bit sequence has been absorbed (including
// the end-of-sequence wrap-around feed of the serial test).
func (st *State) Done() bool { return st.done }

// Walk returns the cumulative-sums state: the current walk value S and the
// running extrema (the S_FINAL/S_MIN/S_MAX registers before offset-binary
// encoding).
func (st *State) Walk() (final, min, max int64) { return st.s, st.sMin, st.sMax }

// Runs returns the runs counter (test 3).
func (st *State) Runs() uint64 { return st.runs }

// BlockFreqBank returns the per-block ones counts ε_1..ε_N (test 2).
// The slice is live; callers must not modify it.
func (st *State) BlockFreqBank() []uint64 { return st.bfBank }

// LongestRunClasses returns the longest-run class counters ν (test 4).
func (st *State) LongestRunClasses() []uint64 { return st.lrClasses }

// NonOverlapBank returns the per-block template occurrence counts W_i
// (test 7).
func (st *State) NonOverlapBank() []uint64 { return st.noBank }

// OverlapClasses returns the overlapping-template class counters ν_0..ν_5
// (test 8).
func (st *State) OverlapClasses() []uint64 { return st.ovClasses }

// SerialCounts returns the pattern counter bank for width index i
// (0 → m bits, 1 → m-1, 2 → m-2). The narrower banks are maintained
// lazily; reading any of them brings all three up to date.
func (st *State) SerialCounts(i int) []uint64 {
	st.serialSync()
	return st.serNu[i]
}

// Clock ingests a single bit — the per-bit convenience entry point;
// ClockWord is the throughput path.
func (st *State) Clock(bit byte) error { return st.ClockWord(uint64(bit&1), 1) }

// SetExternal selects whether the sliceable engines (walk/cusum, runs,
// block frequency, longest run) are maintained externally; see the field
// comment. Enabling it mid-sequence leaves the already-accumulated internal
// state frozen, so callers normally switch at a sequence boundary and
// return via LoadWordStats (which clears the flag).
func (st *State) SetExternal(on bool) { st.external = on }

// External reports whether the sliceable engines are externally maintained.
func (st *State) External() bool { return st.external }

// WordStats is the transferable state of the four word-parallelizable
// engines at an arbitrary bit position — everything a bit-sliced lane group
// must hand back for this model to resume exact per-bit ingest, and
// everything this model exports for a differential comparison. Fill
// positions (block offsets) are not part of the transfer: they are derived
// from Bits, because every block length divides the sequence position
// stream ("block detection" — block boundaries are bits of the global
// counter).
type WordStats struct {
	// Bits is the absolute bit position the statistics correspond to.
	Bits int
	// S, SMin and SMax are the cumulative-sums walk value and extrema.
	S, SMin, SMax int64
	// Runs is the runs counter; Prev is the previous (latest) bit, which
	// seeds the next seam comparison.
	Runs uint64
	Prev byte
	// BFEps is the ones count of the in-flight block-frequency block;
	// BFBank holds the completed blocks' counts.
	BFEps  uint64
	BFBank []uint64
	// LRRun is the length of the ones run ending at the last bit, LRBlkMax
	// the longest run seen in the in-flight block, LRClasses the completed
	// blocks' class counters.
	LRRun, LRBlkMax int
	LRClasses       []uint64
}

// ExportWordStats fills ws with the sliceable-engine state at the current
// bit position. Bank slices are resized in place (allocation-free once ws
// has warmed up to the design's bank sizes).
func (st *State) ExportWordStats(ws *WordStats) {
	ws.Bits = st.bits
	ws.S, ws.SMin, ws.SMax = st.s, st.sMin, st.sMax
	ws.Runs, ws.Prev = st.runs, st.prev
	ws.BFEps = st.bfEps
	ws.BFBank = append(ws.BFBank[:0], st.bfBank...)
	ws.LRRun, ws.LRBlkMax = st.lrRun, st.lrBlkMax
	ws.LRClasses = append(ws.LRClasses[:0], st.lrClasses...)
}

// Residual reports whether the design has per-stream-order engines that
// keep running in external mode (templates, serial). A residual-free
// external model is fully idle between hand-backs, so nothing at all needs
// to be clocked through it mid-sequence.
func (st *State) Residual() bool { return st.hasNO || st.hasOV || st.hasSer }

// LoadWordStats restores the sliceable-engine state from ws and returns the
// model to internal ingest (clearing the external flag): the next ClockWord
// continues exactly as if every bit had been ingested internally. ws.Bits
// must equal the model's bit position — in external mode the position kept
// advancing, only the four engines stood still — and the bank lengths must
// match the design. Fill positions are rederived from Bits.
//
// One exception: an external model with no residual engines has nothing to
// clock between hand-backs, so its driver may skip ClockWord entirely and
// let the hand-back fast-forward the position — ws.Bits may then lie ahead
// of the model's, anywhere short of the sequence end.
func (st *State) LoadWordStats(ws *WordStats) error {
	if ws.Bits != st.bits {
		if !st.external || st.Residual() || ws.Bits < st.bits || ws.Bits >= st.n {
			return fmt.Errorf("hwfast: word stats are for bit %d, model is at bit %d", ws.Bits, st.bits)
		}
		st.bits = ws.Bits
	}
	st.s, st.sMin, st.sMax = ws.S, ws.SMin, ws.SMax
	if st.hasRuns {
		st.runs, st.prev = ws.Runs, ws.Prev
	}
	if st.hasBF {
		if len(ws.BFBank) != len(st.bfBank) {
			return fmt.Errorf("hwfast: block-frequency bank has %d blocks, design wants %d", len(ws.BFBank), len(st.bfBank))
		}
		copy(st.bfBank, ws.BFBank)
		st.bfEps = ws.BFEps
		st.bfFill = st.bits % st.bfM
		st.bfCur = st.bits / st.bfM
	}
	if st.hasLR {
		if len(ws.LRClasses) != len(st.lrClasses) {
			return fmt.Errorf("hwfast: longest-run classes have %d entries, design wants %d", len(ws.LRClasses), len(st.lrClasses))
		}
		copy(st.lrClasses, ws.LRClasses)
		st.lrRun, st.lrBlkMax = ws.LRRun, ws.LRBlkMax
		st.lrPos = st.bits % st.lrM
	}
	st.external = false
	return nil
}

// Reset returns the model to its power-on state so the next sequence can
// begin. Allocated banks are retained and zeroed.
func (st *State) Reset() {
	st.bits, st.done = 0, false
	st.s, st.sMin, st.sMax = 0, 0, 0
	st.runs, st.prev = 0, 0
	st.bfFill, st.bfEps, st.bfCur = 0, 0, 0
	zero(st.bfBank)
	st.lrPos, st.lrRun, st.lrBlkMax = 0, 0, 0
	zero(st.lrClasses)
	st.tail = 0
	st.noPos, st.noNext, st.noW, st.noCur = 0, 0, 0, 0
	zero(st.noBank)
	st.ovPos, st.ovOcc = 0, 0
	zero(st.ovClasses)
	st.serFill, st.serWin, st.serHead = 0, 0, 0
	st.serSynced, st.serCyclic = false, false
	for i := range st.serNu {
		zero(st.serNu[i])
	}
}

func zero(s []uint64) {
	for i := range s {
		s[i] = 0
	}
}
