package hwfast

import (
	"fmt"
	"math/bits"
)

// walkEntry carries the effect of eight clocks of the ±1 random walk: the
// net displacement and the extrema of the intra-byte prefix sums. The bits
// of the index are chronological, LSB first (the bitstream packing order).
type walkEntry struct{ delta, min, max int8 }

var walkTab = func() [256]walkEntry {
	var t [256]walkEntry
	for b := 0; b < 256; b++ {
		s, mn, mx := 0, 0, 0
		for i := 0; i < 8; i++ {
			if b>>uint(i)&1 == 1 {
				s++
			} else {
				s--
			}
			if s < mn {
				mn = s
			}
			if s > mx {
				mx = s
			}
		}
		t[b] = walkEntry{delta: int8(s), min: int8(mn), max: int8(mx)}
	}
	return t
}()

// lowMask returns a mask of the low n bits (n in [0, 64]).
func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// ClockWord ingests nbits bits (1..64) in one call. Bit i of w is the i-th
// bit chronologically — the packing order of bitstream.Sequence, so a
// sequence word feeds straight through. Feeding more bits than remain in
// the sequence is an error, mirroring the hardware's one-sequence-per-reset
// contract.
//
//trnglint:hotpath
func (st *State) ClockWord(w uint64, nbits int) error {
	if st.done {
		return fmt.Errorf("hwfast: sequence complete; Reset before feeding more bits") //trnglint:alloc argument-validation error path, never taken at line rate
	}
	if nbits < 1 || nbits > 64 {
		return fmt.Errorf("hwfast: word size %d out of range [1,64]", nbits) //trnglint:alloc argument-validation error path, never taken at line rate
	}
	if rem := st.n - st.bits; nbits > rem {
		return fmt.Errorf("hwfast: %d bits exceed the %d remaining in the sequence", nbits, rem) //trnglint:alloc argument-validation error path, never taken at line rate
	}
	v := w & lowMask(nbits)

	// In external (bit-sliced assist) mode the four sliceable engines are
	// advanced by the lane group; only the residual per-stream-order
	// engines below run here.
	if !st.external {
		st.ingestWalk(v, nbits)
		if st.hasRuns {
			st.ingestRuns(v, nbits)
		}
		if st.hasBF {
			st.ingestBlockFreq(v, nbits)
		}
		if st.hasLR {
			st.ingestLongestRun(v, nbits)
		}
	}
	if st.hasNO || st.hasOV {
		st.ingestTemplates(v, nbits)
		st.updateTail(v, nbits)
	}
	if st.hasSer {
		st.ingestSerial(v, nbits)
	}

	st.bits += nbits
	if st.bits == st.n {
		st.finalize()
	}
	return nil
}

// ingestWalk advances the cumulative-sums walk and its extrema, one table
// lookup per byte, per-bit only for a trailing partial byte.
func (st *State) ingestWalk(v uint64, nbits int) {
	i := 0
	for ; i+8 <= nbits; i += 8 {
		e := &walkTab[byte(v>>uint(i))]
		if m := st.s + int64(e.min); m < st.sMin {
			st.sMin = m
		}
		if m := st.s + int64(e.max); m > st.sMax {
			st.sMax = m
		}
		st.s += int64(e.delta)
	}
	for ; i < nbits; i++ {
		if v>>uint(i)&1 == 1 {
			st.s++
		} else {
			st.s--
		}
		if st.s < st.sMin {
			st.sMin = st.s
		}
		if st.s > st.sMax {
			st.sMax = st.s
		}
	}
}

// ingestRuns counts runs: one seam comparison against the previous word's
// last bit, then a popcount of the intra-word transition map.
func (st *State) ingestRuns(v uint64, nbits int) {
	if st.bits == 0 || st.prev != byte(v&1) {
		st.runs++
	}
	if nbits > 1 {
		st.runs += uint64(bits.OnesCount64((v ^ (v >> 1)) & lowMask(nbits-1)))
	}
	st.prev = byte(v >> uint(nbits-1) & 1)
}

// ingestBlockFreq accumulates per-block ones counts by popcounting
// block-aligned sub-masks of the word.
func (st *State) ingestBlockFreq(v uint64, nbits int) {
	off := 0
	for off < nbits {
		take := nbits - off
		if rem := st.bfM - st.bfFill; take > rem {
			take = rem
		}
		st.bfEps += uint64(bits.OnesCount64(v >> uint(off) & lowMask(take)))
		st.bfFill += take
		if st.bfFill == st.bfM {
			if st.bfCur < len(st.bfBank) {
				st.bfBank[st.bfCur] = st.bfEps
				st.bfCur++
			}
			st.bfEps, st.bfFill = 0, 0
		}
		off += take
	}
}

// ingestLongestRun merges word-sized chunks into the per-block longest
// ones-run tracker: leading/trailing run lengths from complement zero
// counts, interior maximum by run-length erosion. Like the hardware's run
// counter, the run tracking restarts at every block boundary.
func (st *State) ingestLongestRun(v uint64, nbits int) {
	off := 0
	for off < nbits {
		take := nbits - off
		if rem := st.lrM - st.lrPos; take > rem {
			take = rem
		}
		seg := v >> uint(off) & lowMask(take)
		if lead := bits.TrailingZeros64(^seg); lead >= take {
			// Chunk is all ones: the current run extends across it.
			st.lrRun += take
		} else {
			if r := st.lrRun + lead; r > st.lrBlkMax {
				st.lrBlkMax = r
			}
			r := 0
			for x := seg; x != 0; x &= x >> 1 {
				r++
			}
			if r > st.lrBlkMax {
				st.lrBlkMax = r
			}
			st.lrRun = bits.LeadingZeros64(^(seg << uint(64-take)))
		}
		if st.lrRun > st.lrBlkMax {
			st.lrBlkMax = st.lrRun
		}
		st.lrPos += take
		if st.lrPos == st.lrM {
			class := 0
			switch longest := st.lrBlkMax; {
			case longest <= st.lrLo:
				class = 0
			case longest >= st.lrHi:
				class = st.lrHi - st.lrLo
			default:
				class = longest - st.lrLo
			}
			st.lrClasses[class]++
			st.lrBlkMax, st.lrRun, st.lrPos = 0, 0, 0
		}
		off += take
	}
}

// ingestTemplates builds the per-word match bitmaps for both template
// tests with an m-lane AND network, then applies the per-block scan rules
// to the (rare) set bits. Lane k holds, at bit t, the stream bit from k
// clocks ago; bits older than the word come from the tail context.
func (st *State) ingestTemplates(v uint64, nbits int) {
	m := st.winM
	mmNO := ^uint64(0) // windows equal to the fixed template
	mmOV := ^uint64(0) // windows equal to all ones
	for k := 0; k < m; k++ {
		lane := v<<uint(k) | st.tail>>uint(m-1-k)
		if st.noTpl>>uint(k)&1 == 1 {
			mmNO &= lane
		} else {
			mmNO &^= lane
		}
		mmOV &= lane
	}
	valid := lowMask(nbits)
	if st.hasNO {
		st.scanNonOverlap(mmNO&valid, nbits)
	}
	if st.hasOV {
		st.scanOverlap(mmOV&valid, nbits)
	}
}

// scanNonOverlap applies block validity and the non-overlapping hold-off
// to the match bitmap. A match ending at in-block position p counts only
// if the whole window lies inside the block (p ≥ m-1) and no counted match
// ended within the previous m-1 bits.
func (st *State) scanNonOverlap(mm uint64, nbits int) {
	off := 0
	for off < nbits {
		take := nbits - off
		if rem := st.noBlockLen - st.noPos; take > rem {
			take = rem
		}
		seg := mm >> uint(off) & lowMask(take)
		if inv := st.winM - 1 - st.noPos; inv > 0 {
			seg &^= lowMask(inv)
		}
		for s := seg; s != 0; s &= s - 1 {
			if p := st.noPos + bits.TrailingZeros64(s); p >= st.noNext {
				st.noW++
				st.noNext = p + st.winM
			}
		}
		st.noPos += take
		if st.noPos == st.noBlockLen {
			if st.noCur < st.noNBlocks {
				st.noBank[st.noCur] = st.noW
				st.noCur++
			}
			st.noW, st.noPos, st.noNext = 0, 0, 0
		}
		off += take
	}
}

// scanOverlap applies block validity to the all-ones match bitmap and
// accumulates the per-block occurrence count, saturating at K.
func (st *State) scanOverlap(mm uint64, nbits int) {
	off := 0
	for off < nbits {
		take := nbits - off
		if rem := st.ovBlockLen - st.ovPos; take > rem {
			take = rem
		}
		seg := mm >> uint(off) & lowMask(take)
		if inv := st.winM - 1 - st.ovPos; inv > 0 {
			seg &^= lowMask(inv)
		}
		if c := bits.OnesCount64(seg); c > 0 {
			if st.ovOcc += c; st.ovOcc > st.ovK {
				st.ovOcc = st.ovK
			}
		}
		st.ovPos += take
		if st.ovPos == st.ovBlockLen {
			st.ovClasses[st.ovOcc]++
			st.ovOcc, st.ovPos = 0, 0
		}
		off += take
	}
}

// updateTail slides the m-1 bit window context past the ingested word.
func (st *State) updateTail(v uint64, nbits int) {
	mw := st.winM - 1
	if mw <= 0 {
		return
	}
	if nbits >= mw {
		st.tail = v >> uint(nbits-mw) & lowMask(mw)
	} else {
		st.tail = (st.tail | v<<uint(mw)) >> uint(nbits) & lowMask(mw)
	}
}

// ingestSerial runs the sliding-window pattern counter. Only the m-bit
// bank is maintained per bit; the (m-1)- and (m-2)-bit banks are exact
// marginals of it and are reconstructed lazily by serialSync, so steady
// state is one masked increment per bit. The branches on serFill only
// fire for the first m bits of a sequence.
func (st *State) ingestSerial(v uint64, nbits int) {
	m := st.serM
	maskM := lowMask(m)
	nu0 := st.serNu[0]
	j := 0
	if st.serFill < m {
		// Warm-up: capture the sequence head for the cyclic wrap-around
		// and gate the bank on window fill, exactly as the hardware does.
		headMask := lowMask(m - 1)
		for ; j < nbits && st.serFill < m; j++ {
			bit := v >> uint(j) & 1
			if st.serFill < m-1 {
				st.serHead = (st.serHead<<1 | bit) & headMask
			}
			st.serFill++
			st.serWin = st.serWin<<1 | bit
			if st.serFill >= m {
				nu0[st.serWin&maskM]++
			}
		}
	}
	win := st.serWin
	for ; j < nbits; j++ {
		win = win<<1 | v>>uint(j)&1
		nu0[win&maskM]++
	}
	st.serWin = win
	st.serSynced = false
}

// serialSync rebuilds the (m-1)- and (m-2)-bit pattern banks from the
// m-bit bank. A width-(m-1) window ending at bit i is the low m-1 bits of
// the width-m window ending at i, so summing the m-bit bank over its top
// bit yields every (m-1)-bit count except the single window that ends at
// bit m-2 — before the m-bit bank has started counting. That window is
// exactly the captured sequence head, added back as a +1 correction
// (likewise one head window for the (m-2)-bit bank). After the cyclic
// wrap-around feed every bank holds exactly n windows and the marginals
// are exact with no correction.
func (st *State) serialSync() {
	if !st.hasSer || st.serSynced {
		return
	}
	m := st.serM
	nu0, nu1, nu2 := st.serNu[0], st.serNu[1], st.serNu[2]
	top0 := 1 << uint(m-1)
	for p := range nu1 {
		nu1[p] = nu0[p] + nu0[p|top0]
	}
	if !st.serCyclic && st.bits >= m-1 {
		nu1[st.serHead]++
	}
	top1 := 1 << uint(m-2)
	for q := range nu2 {
		nu2[q] = nu1[q] + nu1[q|top1]
	}
	if !st.serCyclic && st.bits >= m-2 {
		// The head register holds min(bits, m-1) bits; drop its newest
		// bit(s) to recover the width-(m-2) window ending at bit m-3.
		nu2[st.serHead>>uint(min(st.bits, m-1)-(m-2))]++
	}
	st.serSynced = true
}

// finalize runs the end-of-sequence fixups: the serial test's cyclic
// wrap-around feed. Only the m-bit bank is fed; the wrap makes every
// bank hold exactly n cyclic windows, so the narrower banks follow from
// marginalization alone (serialSync).
func (st *State) finalize() {
	if st.hasSer {
		m := st.serM
		maskM := lowMask(m)
		for j := 0; j < m-1; j++ {
			bit := st.serHead >> uint(m-2-j) & 1
			st.serWin = st.serWin<<1 | bit
			st.serNu[0][st.serWin&maskM]++
		}
		st.serCyclic = true
		st.serSynced = false
	}
	st.done = true
}
