package hwfast

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/nist"
)

// configsUnderTest mirrors the eight Table III design points without
// importing hwblock (which would cycle).
func configsUnderTest() []struct {
	name  string
	n     int
	tests []int
} {
	light := []int{1, 2, 3, 4, 13}
	return []struct {
		name  string
		n     int
		tests []int
	}{
		{"n128-light", 128, light},
		{"n128-medium", 128, []int{1, 2, 3, 4, 11, 12, 13}},
		{"n65536-light", 65536, light},
		{"n65536-medium", 65536, []int{1, 2, 3, 4, 7, 13}},
		{"n65536-high", 65536, []int{1, 2, 3, 4, 7, 8, 11, 12, 13}},
		{"n1m-light", 1 << 20, light},
		{"n1m-medium", 1 << 20, []int{1, 2, 3, 4, 7, 13}},
		{"n1m-high", 1 << 20, []int{1, 2, 3, 4, 7, 8, 11, 12, 13}},
	}
}

// feedWords pushes n bits of seeded random data as 64-bit words, returning
// the words for replay.
func sequenceWords(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	words := make([]uint64, n/64)
	for i := range words {
		words[i] = rng.Uint64()
	}
	return words
}

// TestExternalHandBack proves the external-mode contract end to end: a
// state that ran k words in external mode (sliceable engines frozen,
// residual engines live) resumes bit-exact internal ingest after
// LoadWordStats from a reference that ingested everything internally.
func TestExternalHandBack(t *testing.T) {
	for _, tc := range configsUnderTest() {
		n := tc.n
		if n > 65536 && testing.Short() {
			continue
		}
		words := sequenceWords(n, int64(n)+7)
		for _, handoff := range []int{1, n / 128, n/64 - 1} {
			if handoff < 1 {
				continue
			}
			ref, err := New(n, tc.tests, nist.RecommendedParams(n))
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			ext, err := New(n, tc.tests, nist.RecommendedParams(n))
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			ext.SetExternal(true)
			if !ext.External() {
				t.Fatalf("%s: External() not set", tc.name)
			}
			var ws WordStats
			for i, w := range words {
				if err := ref.ClockWord(w, 64); err != nil {
					t.Fatalf("%s: ref word %d: %v", tc.name, i, err)
				}
				if i < handoff {
					if err := ext.ClockWord(w, 64); err != nil {
						t.Fatalf("%s: ext word %d: %v", tc.name, i, err)
					}
					continue
				}
				if i == handoff {
					// Hand the sliceable state back (in the fleet this comes
					// from the lane group; here the reference plays its role,
					// which also proves Export/Load are mutually inverse).
					refAt, err := New(n, tc.tests, nist.RecommendedParams(n))
					if err != nil {
						t.Fatal(err)
					}
					for j := 0; j < handoff; j++ {
						if err := refAt.ClockWord(words[j], 64); err != nil {
							t.Fatal(err)
						}
					}
					refAt.ExportWordStats(&ws)
					if err := ext.LoadWordStats(&ws); err != nil {
						t.Fatalf("%s: LoadWordStats at word %d: %v", tc.name, handoff, err)
					}
					if ext.External() {
						t.Fatalf("%s: LoadWordStats left external mode set", tc.name)
					}
				}
				if err := ext.ClockWord(w, 64); err != nil {
					t.Fatalf("%s: ext word %d: %v", tc.name, i, err)
				}
			}
			if !ext.Done() || !ref.Done() {
				t.Fatalf("%s: sequence not done", tc.name)
			}
			var wsRef, wsExt WordStats
			ref.ExportWordStats(&wsRef)
			ext.ExportWordStats(&wsExt)
			if !reflect.DeepEqual(wsRef, wsExt) {
				t.Fatalf("%s handoff %d: final sliceable state diverges:\nref: %+v\next: %+v",
					tc.name, handoff, wsRef, wsExt)
			}
			if hasTest(tc.tests, 11) || hasTest(tc.tests, 12) {
				for i := 0; i < 3; i++ {
					if !reflect.DeepEqual(ref.SerialCounts(i), ext.SerialCounts(i)) {
						t.Fatalf("%s handoff %d: serial bank %d diverges", tc.name, handoff, i)
					}
				}
			}
			if hasTest(tc.tests, 7) && !reflect.DeepEqual(ref.NonOverlapBank(), ext.NonOverlapBank()) {
				t.Fatalf("%s handoff %d: non-overlapping bank diverges", tc.name, handoff)
			}
			if hasTest(tc.tests, 8) && !reflect.DeepEqual(ref.OverlapClasses(), ext.OverlapClasses()) {
				t.Fatalf("%s handoff %d: overlapping classes diverge", tc.name, handoff)
			}
		}
	}
}

func hasTest(tests []int, id int) bool {
	for _, t := range tests {
		if t == id {
			return true
		}
	}
	return false
}

// TestExternalSkipsSliceableEngines pins that external mode really freezes
// the four sliceable engines while the bit position advances.
func TestExternalSkipsSliceableEngines(t *testing.T) {
	st, err := New(128, []int{1, 2, 3, 4, 13}, nist.RecommendedParams(128))
	if err != nil {
		t.Fatal(err)
	}
	st.SetExternal(true)
	if err := st.ClockWord(^uint64(0), 64); err != nil {
		t.Fatal(err)
	}
	if st.BitsSeen() != 64 {
		t.Fatalf("BitsSeen = %d, want 64", st.BitsSeen())
	}
	if s, mn, mx := st.Walk(); s != 0 || mn != 0 || mx != 0 {
		t.Fatalf("walk advanced in external mode: %d %d %d", s, mn, mx)
	}
	if st.Runs() != 0 {
		t.Fatalf("runs advanced in external mode: %d", st.Runs())
	}
}

// TestExternalSurvivesReset pins that Reset treats external as a mode, not
// state.
func TestExternalSurvivesReset(t *testing.T) {
	st, err := New(128, []int{1, 2, 3, 4, 13}, nist.RecommendedParams(128))
	if err != nil {
		t.Fatal(err)
	}
	st.SetExternal(true)
	st.Reset()
	if !st.External() {
		t.Fatal("Reset cleared external mode")
	}
}

func TestLoadWordStatsValidation(t *testing.T) {
	st, err := New(128, []int{1, 2, 3, 4, 13}, nist.RecommendedParams(128))
	if err != nil {
		t.Fatal(err)
	}
	var ws WordStats
	st.ExportWordStats(&ws)
	ws.Bits = 64
	if err := st.LoadWordStats(&ws); err == nil {
		t.Fatal("LoadWordStats accepted a bit-position mismatch")
	}
	st.ExportWordStats(&ws)
	ws.BFBank = ws.BFBank[:1]
	if err := st.LoadWordStats(&ws); err == nil {
		t.Fatal("LoadWordStats accepted a short block-frequency bank")
	}
	st.ExportWordStats(&ws)
	ws.LRClasses = append(ws.LRClasses, 0)
	if err := st.LoadWordStats(&ws); err == nil {
		t.Fatal("LoadWordStats accepted an oversized longest-run class bank")
	}
	st.ExportWordStats(&ws)
	if err := st.LoadWordStats(&ws); err != nil {
		t.Fatalf("round-trip LoadWordStats failed: %v", err)
	}
}
