// Differential equivalence suite: the word-level functional model
// (hwfast, wired as hwblock's fast ingest path) must present bit-exact
// register-file images against the cycle-accurate structural simulation —
// the golden reference — on every design variant, every stream, every
// word chunking, and at every bit boundary a read may occur.
package hwfast_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/hwblock"
)

// newPair instantiates the same design twice: one block on the fast path
// (the default) and one pinned to the cycle-accurate structural path.
func newPair(t testing.TB, cfg hwblock.Config) (fast, gold *hwblock.Block) {
	t.Helper()
	fast, err := hwblock.New(cfg)
	if err != nil {
		t.Fatalf("New(%s) fast: %v", cfg.Name, err)
	}
	if fast.Path() != hwblock.FastPath {
		t.Fatalf("New(%s): default path = %v, want fast", cfg.Name, fast.Path())
	}
	gold, err = hwblock.New(cfg)
	if err != nil {
		t.Fatalf("New(%s) gold: %v", cfg.Name, err)
	}
	if err := gold.SetPath(hwblock.CycleAccurate); err != nil {
		t.Fatalf("SetPath(%s): %v", cfg.Name, err)
	}
	return fast, gold
}

// compareImages fails the test if the two blocks' register files disagree
// anywhere, reporting the first mismatching named register.
func compareImages(t testing.TB, fast, gold *hwblock.Block, ctx string) {
	t.Helper()
	fi, gi := fast.RegFile().Image(), gold.RegFile().Image()
	if len(fi) != len(gi) {
		t.Fatalf("%s: image sizes differ: fast %d words, gold %d", ctx, len(fi), len(gi))
	}
	for addr := range fi {
		if fi[addr] != gi[addr] {
			name := fmt.Sprintf("addr %d", addr)
			for _, e := range gold.RegFile().Entries() {
				if addr >= e.Addr && addr < e.Addr+e.Words {
					name = fmt.Sprintf("%s word %d (addr %d)", e.Name, addr-e.Addr, addr)
					break
				}
			}
			t.Fatalf("%s: register mismatch at %s: fast %#04x, gold %#04x",
				ctx, name, fi[addr], gi[addr])
		}
	}
}

// feedChunked pushes the sequence into the block in words of at most chunk
// bits (chunk 0 means per-bit Clock calls through the pending buffer).
func feedChunked(t testing.TB, b *hwblock.Block, seq *bitstream.Sequence, chunk int) {
	t.Helper()
	if chunk == 0 {
		for i := 0; i < seq.Len(); i++ {
			if err := b.Clock(seq.Bit(i)); err != nil {
				t.Fatalf("Clock(bit %d): %v", i, err)
			}
		}
		return
	}
	r := bitstream.NewReader(seq)
	for fed := 0; fed < seq.Len(); {
		take := chunk
		if rem := seq.Len() - fed; take > rem {
			take = rem
		}
		w, got, err := r.ReadWord64(take)
		if err != nil || got != take {
			t.Fatalf("ReadWord64(%d) at bit %d: got %d bits, err %v", take, fed, got, err)
		}
		if err := b.ClockWord(w, got); err != nil {
			t.Fatalf("ClockWord at bit %d: %v", fed, err)
		}
		fed += got
	}
}

func randomSequence(n int, seed int64) *bitstream.Sequence {
	rng := rand.New(rand.NewSource(seed))
	s := bitstream.New(n)
	for i := 0; i < n; i += 64 {
		w := rng.Uint64()
		for j := 0; j < 64 && i+j < n; j++ {
			s.AppendBit(byte(w >> uint(j)))
		}
	}
	return s
}

// corpus128 is the structured stream corpus for the exhaustive n=128 pass:
// the degenerate extremes, every single-bit position, run ramps, and a
// batch of random streams.
func corpus128() map[string]*bitstream.Sequence {
	const n = 128
	out := make(map[string]*bitstream.Sequence)
	constant := func(bit byte) *bitstream.Sequence {
		s := bitstream.New(n)
		for i := 0; i < n; i++ {
			s.AppendBit(bit)
		}
		return s
	}
	out["zeros"] = constant(0)
	out["ones"] = constant(1)
	for phase := 0; phase < 2; phase++ {
		s := bitstream.New(n)
		for i := 0; i < n; i++ {
			s.AppendBit(byte((i + phase) & 1))
		}
		out[fmt.Sprintf("alternating-%d", phase)] = s
	}
	for pos := 0; pos < n; pos++ {
		s := bitstream.New(n)
		for i := 0; i < n; i++ {
			if i == pos {
				s.AppendBit(1)
			} else {
				s.AppendBit(0)
			}
		}
		out[fmt.Sprintf("one-at-%d", pos)] = s
	}
	// Run ramp: runs of growing length 1,2,3,... alternating value.
	ramp := bitstream.New(n)
	bit, run := byte(1), 1
	for ramp.Len() < n {
		for i := 0; i < run && ramp.Len() < n; i++ {
			ramp.AppendBit(bit)
		}
		bit ^= 1
		run++
	}
	out["run-ramp"] = ramp
	for seed := int64(1); seed <= 8; seed++ {
		out[fmt.Sprintf("random-%d", seed)] = randomSequence(n, seed)
	}
	return out
}

// TestEquivalenceExhaustiveN128 runs the full structured corpus through
// every n=128 design under every word chunking, comparing register-file
// images both mid-sequence (after an odd prefix, exercising the lazy
// publish) and at completion.
func TestEquivalenceExhaustiveN128(t *testing.T) {
	chunkings := []int{0, 1, 3, 7, 8, 13, 31, 64} // 0 = per-bit Clock
	streams := corpus128()
	for _, cfg := range hwblock.AllConfigs() {
		if cfg.N != 128 {
			continue
		}
		for name, seq := range streams {
			for _, chunk := range chunkings {
				fast, gold := newPair(t, cfg)
				ctx := fmt.Sprintf("%s/%s/chunk=%d", cfg.Name, name, chunk)

				// Prefix of 77 bits (odd, not word aligned), compare
				// mid-sequence, then finish the stream.
				const prefix = 77
				head, tail := seq.Slice(0, prefix), seq.Slice(prefix, seq.Len())
				feedChunked(t, fast, head, chunk)
				feedChunked(t, gold, head, 0)
				compareImages(t, fast, gold, ctx+"/mid")
				feedChunked(t, fast, tail, chunk)
				feedChunked(t, gold, tail, 0)
				compareImages(t, fast, gold, ctx+"/final")
				if !fast.Done() || !gold.Done() {
					t.Fatalf("%s: blocks not done after %d bits", ctx, seq.Len())
				}
			}
		}
	}
}

// TestEquivalenceRandomized65536 compares the two paths over random
// streams for the three n=65536 designs, driving the fast block through
// Run's word-read path.
func TestEquivalenceRandomized65536(t *testing.T) {
	seeds := []int64{11, 22, 33}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, cfg := range hwblock.AllConfigs() {
		if cfg.N != 65536 {
			continue
		}
		for _, seed := range seeds {
			seq := randomSequence(cfg.N, seed)
			fast, gold := newPair(t, cfg)
			if err := fast.Run(bitstream.NewReader(seq)); err != nil {
				t.Fatalf("%s: fast Run: %v", cfg.Name, err)
			}
			if err := gold.Run(bitstream.NewReader(seq)); err != nil {
				t.Fatalf("%s: gold Run: %v", cfg.Name, err)
			}
			compareImages(t, fast, gold, fmt.Sprintf("%s/seed=%d", cfg.Name, seed))
		}
	}
}

// TestEquivalenceRandomized1M runs one random stream through the largest
// design (n=2^20, high) on both paths.
func TestEquivalenceRandomized1M(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 2^20-bit structural simulation in -short mode")
	}
	cfg, err := hwblock.NewConfig(1<<20, hwblock.High)
	if err != nil {
		t.Fatal(err)
	}
	seq := randomSequence(cfg.N, 7)
	fast, gold := newPair(t, cfg)
	if err := fast.Run(bitstream.NewReader(seq)); err != nil {
		t.Fatalf("fast Run: %v", err)
	}
	if err := gold.Run(bitstream.NewReader(seq)); err != nil {
		t.Fatalf("gold Run: %v", err)
	}
	compareImages(t, fast, gold, cfg.Name)
}

// TestEquivalenceAcrossReset proves the fast path stays exact when the
// block is reused: two different sequences back to back through one pair
// of blocks, with a Reset between.
func TestEquivalenceAcrossReset(t *testing.T) {
	for _, cfg := range hwblock.AllConfigs() {
		if cfg.N != 128 {
			continue
		}
		fast, gold := newPair(t, cfg)
		for _, seed := range []int64{101, 102} {
			seq := randomSequence(cfg.N, seed)
			feedChunked(t, fast, seq, 64)
			feedChunked(t, gold, seq, 0)
			compareImages(t, fast, gold, fmt.Sprintf("%s/seed=%d", cfg.Name, seed))
			fast.Reset()
			gold.Reset()
			compareImages(t, fast, gold, fmt.Sprintf("%s/after-reset", cfg.Name))
		}
	}
}

// straddleConfig is a custom design exercising every engine class at a
// size where boundary placement is easy to reason about: n=256 with the
// runs, longest-run and both template tests active (block lengths 16/8/32
// bits, 9-bit template windows).
func straddleConfig(t testing.TB) hwblock.Config {
	t.Helper()
	cfg, err := hwblock.NewCustomConfig("straddle-n256", 256, []int{1, 2, 3, 4, 7, 8, 13})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestWordEdgeStraddle is the table-driven boundary test: runs, template
// matches and block boundaries placed to straddle (or abut) the 64-bit
// word edges of the ingest path, verified against the structural
// simulation under chunkings that put the straddle at different in-word
// offsets. The fixed template is 0b000000001 — eight zeros then a one.
func TestWordEdgeStraddle(t *testing.T) {
	const n = 256
	template := func(s []byte, end int) { // match window ends at bit `end`
		for i := 0; i < 8; i++ {
			s[end-8+i] = 0
		}
		s[end] = 1
	}
	onesRun := func(s []byte, from, length int) {
		for i := 0; i < length; i++ {
			s[from+i] = 1
		}
	}
	cases := []struct {
		name  string
		build func(s []byte)
	}{
		{"ones-run-straddles-64", func(s []byte) { onesRun(s, 60, 9) }},
		{"ones-run-ends-at-63", func(s []byte) { onesRun(s, 56, 8) }},
		{"ones-run-starts-at-64", func(s []byte) { onesRun(s, 64, 8) }},
		{"ones-run-straddles-128", func(s []byte) { onesRun(s, 120, 17) }},
		{"run-across-lr-block-boundary", func(s []byte) { onesRun(s, 5, 6) }}, // longest-run blocks are 8 bits
		{"template-ends-at-64", func(s []byte) { template(s, 64) }},
		{"template-ends-at-63", func(s []byte) { template(s, 63) }},
		{"template-straddles-64", func(s []byte) { template(s, 68) }},
		{"template-straddles-192", func(s []byte) { template(s, 197) }},
		{"template-at-no-block-boundary", func(s []byte) { template(s, 32) }}, // non-overlap blocks are 32 bits
		{"template-window-crosses-no-block", func(s []byte) { template(s, 36) }},
		{"adjacent-templates-holdoff", func(s []byte) { template(s, 72); template(s, 81) }},
		{"back-to-back-runs-at-edge", func(s []byte) {
			onesRun(s, 62, 2)
			s[64] = 0
			onesRun(s, 65, 3)
		}},
		{"alternating-around-edges", func(s []byte) {
			for i := 58; i < 70; i++ {
				s[i] = byte(i & 1)
			}
		}},
	}
	cfg := straddleConfig(t)
	chunkings := []int{0, 1, 9, 32, 64}
	for _, c := range cases {
		bitvals := make([]byte, n)
		c.build(bitvals)
		seq := bitstream.FromBits(bitvals)
		for _, chunk := range chunkings {
			fast, gold := newPair(t, cfg)
			feedChunked(t, fast, seq, chunk)
			feedChunked(t, gold, seq, 0)
			compareImages(t, fast, gold, fmt.Sprintf("%s/chunk=%d", c.name, chunk))
		}
	}
}

// FuzzFastPathEquivalence feeds fuzz-chosen streams and word chunkings
// through the fast and structural paths on designs covering every engine:
// both n=128 variants, the all-tests custom design, and the full n=65536
// high design. Register-file images must agree mid-sequence and at the
// end.
func FuzzFastPathEquivalence(f *testing.F) {
	f.Add([]byte{0x00}, uint8(1))
	f.Add([]byte{0xff, 0x0f, 0xf0}, uint8(64))
	f.Add([]byte{0xaa, 0x55, 0x01, 0x80, 0x3c}, uint8(9))
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x80}, uint8(13))

	configs := []hwblock.Config{}
	for _, cfg := range hwblock.AllConfigs() {
		if cfg.N == 128 {
			configs = append(configs, cfg)
		}
	}
	custom, err := hwblock.NewCustomConfig("fuzz-n1024", 1024, []int{1, 2, 3, 4, 7, 8, 11, 12, 13})
	if err != nil {
		f.Fatal(err)
	}
	configs = append(configs, custom)
	big, err := hwblock.NewConfig(65536, hwblock.High)
	if err != nil {
		f.Fatal(err)
	}
	configs = append(configs, big)

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		chunkN := int(chunk%64) + 1
		for _, cfg := range configs {
			// Tile the fuzz input out to N bits, MSB-first per byte.
			seq := bitstream.New(cfg.N)
			for i := 0; i < cfg.N; i++ {
				var b byte
				if len(data) > 0 {
					b = data[(i/8)%len(data)] >> uint(7-i%8) & 1
				}
				seq.AppendBit(b)
			}
			fast, gold := newPair(t, cfg)
			prefix := cfg.N/2 + 1
			head, tail := seq.Slice(0, prefix), seq.Slice(prefix, cfg.N)
			feedChunked(t, fast, head, chunkN)
			feedChunked(t, gold, head, 0)
			compareImages(t, fast, gold, cfg.Name+"/mid")
			feedChunked(t, fast, tail, chunkN)
			feedChunked(t, gold, tail, 0)
			compareImages(t, fast, gold, cfg.Name+"/final")
		}
	})
}
