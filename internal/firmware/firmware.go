// Package firmware generates and runs the MSP430 evaluation firmware: the
// software half of the paper's split, compiled to real (simulated) 16-bit
// machine code instead of the instruction-count model of internal/sweval.
// It exists for the paper's latency evaluation ("we utilize openMSP430 as
// the hardware platform to evaluate our design", Table IV): running the
// routine on the internal/msp430 core yields a cycle count comparable to
// the latency column of Table IV.
//
// The generator covers the light test set (tests 1, 2, 3, 4, 13 — the five
// quick-failure tests) for all three sequence lengths; the 2^20-bit design
// uses a 48-bit accumulator for the block-frequency sum (three-word
// arithmetic on the 16-bit core).
//
//trnglint:bus16
package firmware

import (
	"fmt"
	"strings"

	"repro/internal/hwblock"
	"repro/internal/msp430"
	"repro/internal/sweval"
)

// Memory map of the generated firmware.
const (
	// CodeBase is the load address of the routine.
	CodeBase = 0x4400
	// StackTop is the initial stack pointer.
	StackTop = 0x2400
	// ResultAddr receives the failure bitmap: bit 0 = test 1 failed,
	// bit 1 = test 2, bit 2 = test 3, bit 3 = test 4, bit 4 = test 13.
	ResultAddr = 0x0220
	// MulBase is the hardware multiplier peripheral base.
	MulBase = 0x0130
	// TBBase is the testing-block register-file window base.
	TBBase = 0x0180
)

// Failure bitmap bits.
const (
	FailMonobit    = 1 << 0
	FailBlockFreq  = 1 << 1
	FailRuns       = 1 << 2
	FailLongestRun = 1 << 3
	FailCusum      = 1 << 4
)

// generator carries codegen state.
type gen struct {
	b      strings.Builder
	labels int
	cfg    hwblock.Config
	rf     *hwblock.RegFile
}

func (g *gen) emit(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *gen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s_%d", prefix, g.labels)
}

// valueAddr returns the bus address of a register-file value and its word
// count.
func (g *gen) valueAddr(name string) (uint16, int, error) {
	e, ok := g.rf.Lookup(name)
	if !ok {
		return 0, 0, fmt.Errorf("firmware: no register %q", name)
	}
	return TBBase + uint16(2*e.Addr), e.Words, nil
}

// load32 emits code loading a register-file value into a lo:hi register
// pair.
func (g *gen) load32(name, lo, hi string) error {
	addr, words, err := g.valueAddr(name)
	if err != nil {
		return err
	}
	g.emit(" mov &0x%04X, %s", addr, lo)
	if words == 2 {
		g.emit(" mov &0x%04X, %s", addr+2, hi)
	} else {
		g.emit(" clr %s", hi)
	}
	return nil
}

// gt32 emits an unsigned 32-bit "if lo:hi > c jump to target".
func (g *gen) gt32(lo, hi string, c int64, target string) {
	below := g.label("le")
	cLo := uint16(c)
	cHi := uint16(c >> 16)
	g.emit(" cmp #0x%04X, %s", cHi, hi)
	g.emit(" jlo %s", below) // hi < cHi → not greater
	g.emit(" jne %s", target)
	g.emit(" cmp #0x%04X, %s", cLo, lo)
	g.emit(" jlo %s", below)
	g.emit(" jeq %s", below)
	g.emit(" jmp %s", target)
	g.emit("%s:", below)
}

// gt48 emits an unsigned 48-bit "if lo:mid:hi > c jump to target".
func (g *gen) gt48(lo, mid, hi string, c int64, target string) {
	below := g.label("le")
	cLo := uint16(c)
	cMid := uint16(c >> 16)
	cHi := uint16(c >> 32)
	g.emit(" cmp #0x%04X, %s", cHi, hi)
	g.emit(" jlo %s", below)
	g.emit(" jne %s", target)
	g.emit(" cmp #0x%04X, %s", cMid, mid)
	g.emit(" jlo %s", below)
	g.emit(" jne %s", target)
	g.emit(" cmp #0x%04X, %s", cLo, lo)
	g.emit(" jlo %s", below)
	g.emit(" jeq %s", below)
	g.emit(" jmp %s", target)
	g.emit("%s:", below)
}

// Generate produces the evaluation routine's assembly source for a light
// (or richer — extra tests are ignored) design configuration with the
// given critical values baked in as constants.
func Generate(cfg hwblock.Config, cv *sweval.CriticalValues, rf *hwblock.RegFile) (string, error) {
	c := cv.Constants()
	g := &gen{cfg: cfg, rf: rf}
	n := int64(cfg.N)

	// Sanity for the 32-bit longest-run accumulation (see lr loop).
	maxNu := int64(cfg.N / cfg.Params.LongestRunM)
	var maxQ int64
	for _, q := range c.LongestRunQ16 {
		if q > maxQ {
			maxQ = q
		}
	}
	if (maxNu*maxNu>>16)*maxQ >= 1<<16 {
		return "", fmt.Errorf("firmware: longest-run product exceeds 32-bit accumulation")
	}
	if maxQ >= 1<<16 {
		return "", fmt.Errorf("firmware: longest-run Q16 constant exceeds 16 bits")
	}

	g.emit(" .org 0x%04X", CodeBase)
	g.emit("entry:")
	g.emit(" clr r12 ; failure bitmap")

	// ---- Test 1: monobit. |S| = |S_raw − n| > C1 → fail.
	if err := g.load32("S_FINAL", "r6", "r7"); err != nil {
		return "", err
	}
	g.emit(" sub #0x%04X, r6", uint16(n))
	g.emit(" subc #0x%04X, r7", uint16(n>>16))
	g.emit(" call #abs32")
	// Stash |S| for the runs test.
	g.emit(" mov r6, &0x2300")
	g.emit(" mov r7, &0x2302")
	fail1 := g.label("fail1")
	done1 := g.label("done1")
	g.gt32("r6", "r7", c.MonobitSMax, fail1)
	g.emit(" jmp %s", done1)
	g.emit("%s:", fail1)
	g.emit(" bis #%d, r12", FailMonobit)
	g.emit("%s:", done1)

	// ---- Test 2: block frequency. D = Σ(2ε−M)², fail iff D > BFMAX.
	// For M ≤ 32768 the deviation fits the signed 16×16 multiplier and D
	// fits 32 bits; for M = 65536 (the 2^20 design) the deviation is
	// 17-bit and D needs a 48-bit accumulator — but |2ε−M| ≤ 2^16 with
	// the top value only at ε ∈ {0, M}, so the square decomposes as
	// dL² + [dH]·2^32 with dL the low 16 bits.
	if cfg.Has(2) {
		eps0, words, err := g.valueAddr("BF_EPS_0")
		if err != nil {
			return "", err
		}
		nBlocks := cfg.N / cfg.Params.BlockFrequencyM
		bigM := cfg.Params.BlockFrequencyM
		fail2 := g.label("fail2")
		done2 := g.label("done2")
		switch {
		case words == 1 && bigM <= 32768:
			g.emit(" mov #0x%04X, r10 ; &BF_EPS_0", eps0)
			g.emit(" mov #%d, r13", nBlocks)
			g.emit(" clr r8")
			g.emit(" clr r9")
			loop := g.label("bf")
			g.emit("%s:", loop)
			g.emit(" mov @r10+, r4")
			g.emit(" rla r4 ; 2ε")
			g.emit(" sub #%d, r4 ; − M", bigM)
			g.emit(" mov r4, &0x%04X ; MPYS", MulBase+msp430.MulMPYS)
			g.emit(" mov r4, &0x%04X ; OP2 (dev²)", MulBase+msp430.MulOP2)
			g.emit(" add &0x%04X, r8", MulBase+msp430.MulRESLO)
			g.emit(" addc &0x%04X, r9", MulBase+msp430.MulRESHI)
			g.emit(" dec r13")
			g.emit(" jnz %s", loop)
			g.gt32("r8", "r9", c.BlockFreqMax, fail2)
		case words == 2 && bigM == 65536:
			g.emit(" mov #0x%04X, r10 ; &BF_EPS_0", eps0)
			g.emit(" mov #%d, r13", nBlocks)
			g.emit(" clr r8  ; acc low")
			g.emit(" clr r9  ; acc mid")
			g.emit(" clr r11 ; acc high")
			loop := g.label("bf20")
			noDH := g.label("bfnodh")
			g.emit("%s:", loop)
			g.emit(" mov @r10+, r4 ; ε lo")
			g.emit(" mov @r10+, r5 ; ε hi")
			g.emit(" rla r4 ; 2ε (32-bit shift)")
			g.emit(" rlc r5")
			g.emit(" sub #0, r4 ; − 65536")
			g.emit(" subc #1, r5")
			g.emit(" mov r4, r6")
			g.emit(" mov r5, r7")
			g.emit(" call #abs32 ; |dev| = r7:r6, r7 is 0 or 1")
			g.emit(" mov r6, &0x%04X ; MPY (dL)", MulBase+msp430.MulMPY)
			g.emit(" mov r6, &0x%04X ; OP2 (dL²)", MulBase+msp430.MulOP2)
			g.emit(" add &0x%04X, r8", MulBase+msp430.MulRESLO)
			g.emit(" addc &0x%04X, r9", MulBase+msp430.MulRESHI)
			g.emit(" addc #0, r11")
			g.emit(" tst r7")
			g.emit(" jz %s", noDH)
			// |dev| = 2^16 exactly implies dL = 0: dev² = 2^32.
			g.emit(" add #1, r11")
			g.emit("%s:", noDH)
			g.emit(" dec r13")
			g.emit(" jnz %s", loop)
			g.gt48("r8", "r9", "r11", c.BlockFreqMax, fail2)
		default:
			return "", fmt.Errorf("firmware: unsupported block-frequency geometry (M=%d, %d words)", bigM, words)
		}
		g.emit(" jmp %s", done2)
		g.emit("%s:", fail2)
		g.emit(" bis #%d, r12", FailBlockFreq)
		g.emit("%s:", done2)
	}

	// ---- Test 3: runs, interval-table method. The table rows live in
	// ROM after the code (label rtab).
	if cfg.Has(3) {
		g.emit(" mov &0x2300, r6 ; |S|")
		g.emit(" mov &0x2302, r7")
		fail3 := g.label("fail3")
		done3 := g.label("done3")
		// Precondition: |S| ≥ pre ⟺ |S| > pre − 1.
		g.gt32("r6", "r7", c.RunsPreSAbs-1, fail3)
		if err := g.load32("N_RUNS", "r4", "r5"); err != nil {
			return "", err
		}
		g.emit(" mov #rtab, r10")
		rowLoop := g.label("row")
		rowSkip := g.label("skip")
		rowHit := g.label("hit")
		checkHi := g.label("chkhi")
		g.emit("%s:", rowLoop)
		g.emit(" mov @r10+, r8 ; sMax lo")
		g.emit(" mov @r10+, r9 ; sMax hi")
		// |S| ≤ sMax → hit.
		g.emit(" cmp r9, r7")
		g.emit(" jlo %s", rowHit)
		g.emit(" jne %s", rowSkip)
		g.emit(" cmp r8, r6")
		g.emit(" jlo %s", rowHit)
		g.emit(" jeq %s", rowHit)
		g.emit("%s:", rowSkip)
		g.emit(" add #8, r10 ; skip vLo/vHi")
		g.emit(" jmp %s", rowLoop)
		g.emit("%s:", rowHit)
		// V < vLo → fail.
		g.emit(" mov @r10+, r8 ; vLo lo")
		g.emit(" mov @r10+, r9 ; vLo hi")
		g.emit(" cmp r9, r5")
		g.emit(" jlo %s", fail3)
		g.emit(" jne %s", checkHi)
		g.emit(" cmp r8, r4")
		g.emit(" jlo %s", fail3)
		g.emit("%s:", checkHi)
		// V > vHi → fail.
		g.emit(" mov @r10+, r8 ; vHi lo")
		g.emit(" mov @r10+, r9 ; vHi hi")
		g.emit(" cmp r5, r9 ; vHi_hi − V_hi")
		g.emit(" jlo %s", fail3)
		g.emit(" jne %s", done3)
		g.emit(" cmp r4, r8")
		g.emit(" jlo %s", fail3)
		g.emit(" jmp %s", done3)
		g.emit("%s:", fail3)
		g.emit(" bis #%d, r12", FailRuns)
		g.emit("%s:", done3)
	}

	// ---- Test 4: longest run. Σ ν²·Q16 > LRMAX → fail.
	if cfg.Has(4) {
		nu0, words, err := g.valueAddr("LR_NU_0")
		if err != nil {
			return "", err
		}
		if words != 1 {
			return "", fmt.Errorf("firmware: expected 1-word class counts")
		}
		g.emit(" mov #0x%04X, r10 ; &LR_NU_0", nu0)
		g.emit(" mov #qtab, r11")
		g.emit(" mov #%d, r13", len(c.LongestRunQ16))
		g.emit(" clr r8")
		g.emit(" clr r9")
		loop := g.label("lr")
		g.emit("%s:", loop)
		g.emit(" mov @r10+, r4 ; ν")
		g.emit(" mov r4, &0x%04X ; MPY", MulBase+msp430.MulMPY)
		g.emit(" mov r4, &0x%04X ; OP2 (ν²)", MulBase+msp430.MulOP2)
		g.emit(" mov &0x%04X, r4 ; ν² lo", MulBase+msp430.MulRESLO)
		g.emit(" mov &0x%04X, r5 ; ν² hi", MulBase+msp430.MulRESHI)
		g.emit(" mov @r11+, r6 ; Q16")
		g.emit(" mov r4, &0x%04X", MulBase+msp430.MulMPY)
		g.emit(" mov r6, &0x%04X ; ν²lo × Q", MulBase+msp430.MulOP2)
		g.emit(" add &0x%04X, r8", MulBase+msp430.MulRESLO)
		g.emit(" addc &0x%04X, r9", MulBase+msp430.MulRESHI)
		g.emit(" mov r5, &0x%04X", MulBase+msp430.MulMPY)
		g.emit(" mov r6, &0x%04X ; ν²hi × Q", MulBase+msp430.MulOP2)
		g.emit(" add &0x%04X, r9 ; contribution << 16", MulBase+msp430.MulRESLO)
		g.emit(" dec r13")
		g.emit(" jnz %s", loop)
		fail4 := g.label("fail4")
		done4 := g.label("done4")
		g.gt32("r8", "r9", c.LongestRunMax, fail4)
		g.emit(" jmp %s", done4)
		g.emit("%s:", fail4)
		g.emit(" bis #%d, r12", FailLongestRun)
		g.emit("%s:", done4)
	}

	// ---- Test 13: cusum. Both excursions computed from the raw offset
	// values (all operands non-negative).
	fail13 := g.label("fail13")
	done13 := g.label("done13")
	// zf = max(S_max_raw − n, n − S_min_raw).
	if err := g.load32("S_MAX", "r6", "r7"); err != nil {
		return "", err
	}
	g.emit(" sub #0x%04X, r6", uint16(n))
	g.emit(" subc #0x%04X, r7", uint16(n>>16))
	if err := g.load32("S_MIN", "r4", "r5"); err != nil {
		return "", err
	}
	g.emit(" mov #0x%04X, r8", uint16(n))
	g.emit(" mov #0x%04X, r9", uint16(n>>16))
	g.emit(" sub r4, r8")
	g.emit(" subc r5, r9")
	g.emit(" call #maxu32")
	g.gt32("r6", "r7", c.CusumZMin-1, fail13)
	// zb = max(S_fin_raw − S_min_raw, S_max_raw − S_fin_raw).
	if err := g.load32("S_FINAL", "r6", "r7"); err != nil {
		return "", err
	}
	sminAddr, sminWords, err := g.valueAddr("S_MIN")
	if err != nil {
		return "", err
	}
	g.emit(" sub &0x%04X, r6", sminAddr)
	if sminWords == 2 {
		g.emit(" subc &0x%04X, r7", sminAddr+2)
	} else {
		g.emit(" subc #0, r7")
	}
	if err := g.load32("S_MAX", "r8", "r9"); err != nil {
		return "", err
	}
	sfinAddr, sfinWords, err := g.valueAddr("S_FINAL")
	if err != nil {
		return "", err
	}
	g.emit(" sub &0x%04X, r8", sfinAddr)
	if sfinWords == 2 {
		g.emit(" subc &0x%04X, r9", sfinAddr+2)
	} else {
		g.emit(" subc #0, r9")
	}
	g.emit(" call #maxu32")
	g.gt32("r6", "r7", c.CusumZMin-1, fail13)
	g.emit(" jmp %s", done13)
	g.emit("%s:", fail13)
	g.emit(" bis #%d, r12", FailCusum)
	g.emit("%s:", done13)

	// Publish the bitmap and halt.
	g.emit(" mov r12, &0x%04X", ResultAddr)
	g.emit(" bis #0x10, sr ; CPUOFF")

	// Subroutines.
	g.emit("abs32:")
	g.emit(" tst r7")
	g.emit(" jge abs_ret")
	g.emit(" inv r6")
	g.emit(" inv r7")
	g.emit(" add #1, r6")
	g.emit(" addc #0, r7")
	g.emit("abs_ret: ret")

	g.emit("maxu32: ; r6:r7 = maxu(r6:r7, r8:r9)")
	g.emit(" cmp r9, r7")
	g.emit(" jlo max_take")
	g.emit(" jne max_ret")
	g.emit(" cmp r8, r6")
	g.emit(" jhs max_ret")
	g.emit("max_take:")
	g.emit(" mov r8, r6")
	g.emit(" mov r9, r7")
	g.emit("max_ret: ret")

	// Constant tables.
	if cfg.Has(3) {
		g.emit("rtab:")
		for _, row := range c.RunsRows {
			vLo := row.VLo
			if vLo < 0 {
				vLo = 0
			}
			g.emit(" .word 0x%04X, 0x%04X, 0x%04X, 0x%04X, 0x%04X, 0x%04X",
				uint16(row.SAbsMax), uint16(row.SAbsMax>>16),
				uint16(vLo), uint16(vLo>>16),
				uint16(row.VHi), uint16(row.VHi>>16))
		}
	}
	if cfg.Has(4) {
		g.emit("qtab:")
		for _, q := range c.LongestRunQ16 {
			g.emit(" .word 0x%04X", uint16(q))
		}
	}
	return g.b.String(), nil
}

// Result is the outcome of one firmware run.
type Result struct {
	// FailBitmap is the failure bitmap the routine wrote to ResultAddr.
	FailBitmap uint16
	// Cycles is the cycle count of the evaluation routine.
	Cycles int64
	// Instructions is the retired instruction count.
	Instructions int64
}

// Pass reports whether all five tests accepted.
func (r Result) Pass() bool { return r.FailBitmap == 0 }

// Run assembles the routine for the block's design, attaches the block's
// register file and a hardware multiplier to a fresh CPU, executes to halt,
// and returns the verdict bitmap plus the cycle count — the quantity the
// paper's Table IV latency row measures.
func Run(b *hwblock.Block, cv *sweval.CriticalValues) (Result, string, error) {
	src, err := Generate(b.Config(), cv, b.RegFile())
	if err != nil {
		return Result{}, "", err
	}
	prog, err := msp430.Assemble(src)
	if err != nil {
		return Result{}, src, fmt.Errorf("firmware: assembly failed: %w", err)
	}
	cpu := msp430.New()
	if err := cpu.MapPeripheral(MulBase, 0x10, &msp430.Multiplier{}); err != nil {
		return Result{}, src, err
	}
	port := msp430.NewTestingBlockPort(b.RegFile())
	if err := cpu.MapPeripheral(TBBase, (port.WindowSize()+1)&^1, port); err != nil {
		return Result{}, src, err
	}
	cpu.LoadImage(prog.Origin, prog.Words)
	cpu.SetReg(msp430.PC, prog.Entry("entry"))
	cpu.SetReg(msp430.SP, StackTop)
	steps := 0
	for !cpu.Halted() {
		if _, err := cpu.Step(); err != nil {
			return Result{}, src, err
		}
		steps++
		if steps > 1_000_000 {
			return Result{}, src, fmt.Errorf("firmware: runaway execution")
		}
	}
	return Result{
		FailBitmap:   cpu.ReadWord(ResultAddr),
		Cycles:       cpu.Cycles(),
		Instructions: int64(steps),
	}, src, nil
}
