package firmware

import (
	"testing"

	"repro/internal/hwblock"
	"repro/internal/sweval"
	"repro/internal/trng"
)

func TestRV32MatchesMSP430Verdicts(t *testing.T) {
	// The same counters evaluated by both cores must agree bit-for-bit
	// on the failure bitmap.
	for seed := int64(0); seed < 12; seed++ {
		var src trng.Source
		switch seed % 3 {
		case 0:
			src = trng.NewIdeal(seed)
		case 1:
			src = trng.NewBiased(0.5+0.004*float64(seed), seed)
		default:
			src = trng.NewMarkov(0.5+0.02*float64(seed%5), seed)
		}
		b, cv := setup(t, 65536, hwblock.Light, src)
		msp, _, err := Run(b, cv)
		if err != nil {
			t.Fatalf("seed %d msp430: %v", seed, err)
		}
		rv, asmSrc, err := RunRV32(b, cv)
		if err != nil {
			t.Fatalf("seed %d rv32: %v\n%s", seed, err, asmSrc)
		}
		if msp.FailBitmap != rv.FailBitmap {
			t.Errorf("seed %d: msp430 bitmap %#06b != rv32 bitmap %#06b",
				seed, msp.FailBitmap, rv.FailBitmap)
		}
	}
}

func TestRV32ConsiderablyLowerLatency(t *testing.T) {
	// The paper: "on 32-bit or 64-bit platforms, considerably lower
	// latency could be achieved". Measured: ~40 % fewer cycles — the
	// 32-bit registers eliminate the multi-word arithmetic, but the
	// register-file bus is still 16 bits wide, so wide counters still
	// cost two loads each (the bus, not the ALU, becomes the limit).
	b, cv := setup(t, 65536, hwblock.Light, trng.NewIdeal(42))
	msp, _, err := Run(b, cv)
	if err != nil {
		t.Fatal(err)
	}
	rv, _, err := RunRV32(b, cv)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("latency: msp430 %d cycles (%d instr) vs rv32 %d cycles (%d instr)",
		msp.Cycles, msp.Instructions, rv.Cycles, rv.Instructions)
	if float64(rv.Cycles) >= 0.8*float64(msp.Cycles) {
		t.Errorf("rv32 latency %d not at least 20%% below msp430's %d", rv.Cycles, msp.Cycles)
	}
}

func TestRV32LargestDesign(t *testing.T) {
	// n = 2^20: single-register arithmetic on RV32 even for the widest
	// counters; verdicts must match the cost-model evaluator.
	b, cv := setup(t, 1<<20, hwblock.Light, trng.NewBiased(0.504, 9))
	rv, asmSrc, err := RunRV32(b, cv)
	if err != nil {
		t.Fatalf("%v\n%s", err, asmSrc)
	}
	rep, err := sweval.NewEvaluator(cv).Evaluate(b)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]uint16{1: FailMonobit, 2: FailBlockFreq, 3: FailRuns, 4: FailLongestRun, 13: FailCusum}
	for _, v := range rep.Verdicts {
		bit := want[v.TestID]
		fwFailed := rv.FailBitmap&bit != 0
		if fwFailed == v.Pass {
			t.Errorf("test %d: rv32 failed=%v, evaluator pass=%v", v.TestID, fwFailed, v.Pass)
		}
	}
}

func TestRV32StuckSourceAllZeros(t *testing.T) {
	// The dev = −M corner of the 64-bit accumulator.
	b, cv := setup(t, 1<<20, hwblock.Light, trng.NewStuckAt(0))
	rv, _, err := RunRV32(b, cv)
	if err != nil {
		t.Fatal(err)
	}
	for _, bit := range []uint16{FailMonobit, FailBlockFreq, FailRuns, FailCusum} {
		if rv.FailBitmap&bit == 0 {
			t.Errorf("all-zeros: bit %#x not set (bitmap %#06b)", bit, rv.FailBitmap)
		}
	}
}

// TestRV32FullNineTestDesign runs the complete nine-test evaluation on the
// RV32 core against the n=65536 high design and cross-checks every verdict
// with the cost-model evaluator.
func TestRV32FullNineTestDesign(t *testing.T) {
	bits := map[int]uint16{
		1: FailMonobit, 2: FailBlockFreq, 3: FailRuns, 4: FailLongestRun,
		7: FailNonOverlap, 8: FailOverlap, 11: FailSerial, 12: FailApEn,
		13: FailCusum,
	}
	for seed := int64(0); seed < 10; seed++ {
		var src trng.Source
		switch seed % 4 {
		case 0:
			src = trng.NewIdeal(seed)
		case 1:
			src = trng.NewBiased(0.5+0.003*float64(seed), seed)
		case 2:
			src = trng.NewMarkov(0.5+0.015*float64(seed%6), seed)
		default:
			src = trng.NewRingOscillator(100.37, 0.3+0.1*float64(seed%4), seed)
		}
		b, cv := setup(t, 65536, hwblock.High, src)
		rv, asmSrc, err := RunRV32(b, cv)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, asmSrc)
		}
		rep, err := sweval.NewEvaluator(cv).Evaluate(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Verdicts {
			fwFailed := rv.FailBitmap&bits[v.TestID] != 0
			if fwFailed == v.Pass {
				t.Errorf("seed %d test %d: rv32 failed=%v, evaluator pass=%v",
					seed, v.TestID, fwFailed, v.Pass)
			}
		}
	}
}

// TestRV32FullSetDegenerateInputs drives the nine-test firmware through the
// corners: all-ones (serial counters concentrated, 64-bit accumulators at
// their extremes) and alternating bits.
func TestRV32FullSetDegenerateInputs(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  trng.Source
	}{
		{"all-ones", trng.NewStuckAt(1)},
		{"alternating", trng.NewMarkov(0, 1)}, // always flips
	} {
		b, cv := setup(t, 65536, hwblock.High, tc.src)
		rv, asmSrc, err := RunRV32(b, cv)
		if err != nil {
			t.Fatalf("%s: %v\n%s", tc.name, err, asmSrc)
		}
		rep, err := sweval.NewEvaluator(cv).Evaluate(b)
		if err != nil {
			t.Fatal(err)
		}
		bits := map[int]uint16{
			1: FailMonobit, 2: FailBlockFreq, 3: FailRuns, 4: FailLongestRun,
			7: FailNonOverlap, 8: FailOverlap, 11: FailSerial, 12: FailApEn,
			13: FailCusum,
		}
		for _, v := range rep.Verdicts {
			fwFailed := rv.FailBitmap&bits[v.TestID] != 0
			if fwFailed == v.Pass {
				t.Errorf("%s test %d: rv32 failed=%v, evaluator pass=%v",
					tc.name, v.TestID, fwFailed, v.Pass)
			}
		}
		if rv.FailBitmap == 0 {
			t.Errorf("%s: nothing failed", tc.name)
		}
	}
}
