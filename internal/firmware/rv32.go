package firmware

import (
	"fmt"
	"strings"

	"repro/internal/hwblock"
	"repro/internal/rv32"
	"repro/internal/sweval"
)

// This file generates the evaluation routine for the RV32 open core — the
// paper's future-work target ("testing the software implementations on
// different types of micro-controllers and open-core processors"). The
// register-file bus stays 16 bits wide (a hardware property), but every
// assembled value fits one 32-bit register, so the routine needs no
// multi-word arithmetic except the 64-bit accumulators for the
// sum-of-squares statistics (mul/mulhu pairs).

// RV32 memory map.
const (
	// RV32CodeBase is the load address.
	RV32CodeBase = 0x1000
	// RV32TBBase is the testing-block window: word w of the register
	// file appears zero-extended at RV32TBBase + 4·w.
	RV32TBBase = 0x40000
	// RV32ResultAddr receives the failure bitmap (same bit layout as the
	// MSP430 firmware).
	RV32ResultAddr = 0x50000
)

// rvGen carries RV32 codegen state.
type rvGen struct {
	b      strings.Builder
	labels int
	rf     *hwblock.RegFile
}

func (g *rvGen) emit(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *rvGen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s_%d", prefix, g.labels)
}

// loadVal emits code loading a register-file value into reg, via one or two
// 16-bit bus reads. s1 must hold RV32TBBase.
func (g *rvGen) loadVal(name, reg string) error {
	e, ok := g.rf.Lookup(name)
	if !ok {
		return fmt.Errorf("firmware: no register %q", name)
	}
	g.emit(" lw %s, %d(s1)", reg, 4*e.Addr)
	if e.Words == 2 {
		g.emit(" lw t6, %d(s1)", 4*(e.Addr+1))
		g.emit(" slli t6, t6, 16")
		g.emit(" or %s, %s, t6", reg, reg)
	}
	return nil
}

// li emits a load-immediate of a possibly-wide constant.
func (g *rvGen) li(reg string, v int64) {
	g.emit(" li %s, %d", reg, int32(v))
}

// gt64 emits "if (hi:lo) > c, jump to target" for a 64-bit accumulator in
// two registers.
func (g *rvGen) gt64(lo, hi string, c int64, target string) {
	below := g.label("le")
	cLo := int64(uint32(c))
	cHi := c >> 32
	g.li("t5", cHi)
	g.emit(" bltu %s, t5, %s", hi, below)
	g.emit(" bne %s, t5, %s", hi, target)
	g.li("t5", cLo)
	g.emit(" bgeu t5, %s, %s", lo, below)
	g.emit(" j %s", target)
	g.emit("%s:", below)
}

// GenerateRV32 produces the light-set evaluation routine for the RV32 core.
func GenerateRV32(cfg hwblock.Config, cv *sweval.CriticalValues, rf *hwblock.RegFile) (string, error) {
	c := cv.Constants()
	g := &rvGen{rf: rf}
	n := int64(cfg.N)

	g.emit(" .org 0x%X", RV32CodeBase)
	g.emit("entry:")
	g.emit(" li s1, 0x%X", RV32TBBase)
	g.emit(" li s0, 0 # failure bitmap")

	// ---- Test 1 + stash |S| for test 3.
	if err := g.loadVal("S_FINAL", "a0"); err != nil {
		return "", err
	}
	g.li("a1", n)
	g.emit(" sub a0, a0, a1 # S")
	pos := g.label("pos")
	g.emit(" bge a0, zero, %s", pos)
	g.emit(" sub a0, zero, a0")
	g.emit("%s:", pos)
	g.emit(" mv s2, a0 # |S|")
	t1ok := g.label("t1ok")
	g.li("a1", c.MonobitSMax)
	g.emit(" bgeu a1, a0, %s", t1ok)
	g.emit(" ori s0, s0, %d", FailMonobit)
	g.emit("%s:", t1ok)

	// ---- Test 2: D = Σ(2ε−M)² with a 64-bit accumulator.
	if cfg.Has(2) {
		e, ok := rf.Lookup("BF_EPS_0")
		if !ok {
			return "", fmt.Errorf("firmware: no BF_EPS_0")
		}
		nBlocks := cfg.N / cfg.Params.BlockFrequencyM
		loop := g.label("bf")
		done2 := g.label("done2")
		fail2 := g.label("fail2")
		g.emit(" li t0, %d # block counter", nBlocks)
		g.emit(" li t1, %d # &BF_EPS_0 offset", 4*e.Addr)
		g.emit(" add t1, t1, s1")
		g.emit(" li s4, 0 # acc lo")
		g.emit(" li s5, 0 # acc hi")
		g.emit("%s:", loop)
		g.emit(" lw a0, 0(t1)")
		if e.Words == 2 {
			g.emit(" lw t6, 4(t1)")
			g.emit(" slli t6, t6, 16")
			g.emit(" or a0, a0, t6")
			g.emit(" addi t1, t1, 8")
		} else {
			g.emit(" addi t1, t1, 4")
		}
		g.emit(" slli a0, a0, 1 # 2ε")
		g.li("a1", int64(cfg.Params.BlockFrequencyM))
		g.emit(" sub a0, a0, a1 # dev")
		devPos := g.label("devpos")
		g.emit(" bge a0, zero, %s", devPos)
		g.emit(" sub a0, zero, a0")
		g.emit("%s:", devPos)
		g.emit(" mul a2, a0, a0 # dev² lo")
		g.emit(" mulhu a3, a0, a0 # dev² hi")
		g.emit(" add s4, s4, a2")
		g.emit(" sltu a4, s4, a2 # carry")
		g.emit(" add s5, s5, a3")
		g.emit(" add s5, s5, a4")
		g.emit(" addi t0, t0, -1")
		g.emit(" bne t0, zero, %s", loop)
		g.gt64("s4", "s5", c.BlockFreqMax, fail2)
		g.emit(" j %s", done2)
		g.emit("%s:", fail2)
		g.emit(" ori s0, s0, %d", FailBlockFreq)
		g.emit("%s:", done2)
	}

	// ---- Test 3: runs, interval table (rows are single 32-bit words).
	if cfg.Has(3) {
		fail3 := g.label("fail3")
		done3 := g.label("done3")
		rowLoop := g.label("row")
		rowSkip := g.label("skip")
		rowHit := g.label("hit")
		// Precondition: |S| ≥ pre → fail.
		g.li("a1", c.RunsPreSAbs)
		g.emit(" bgeu s2, a1, %s", fail3)
		if err := g.loadVal("N_RUNS", "a0"); err != nil {
			return "", err
		}
		g.emit(" li t1, rtab32")
		g.emit("%s:", rowLoop)
		g.emit(" lw a2, 0(t1) # sAbsMax")
		g.emit(" bgeu a2, s2, %s", rowHit)
		g.emit("%s:", rowSkip)
		g.emit(" addi t1, t1, 12")
		g.emit(" j %s", rowLoop)
		g.emit("%s:", rowHit)
		g.emit(" lw a2, 4(t1) # vLo")
		g.emit(" bltu a0, a2, %s", fail3)
		g.emit(" lw a2, 8(t1) # vHi")
		g.emit(" bltu a2, a0, %s", fail3)
		g.emit(" j %s", done3)
		g.emit("%s:", fail3)
		g.emit(" ori s0, s0, %d", FailRuns)
		g.emit("%s:", done3)
	}

	// ---- Test 4: Σν²·Q16 with a 64-bit accumulator.
	if cfg.Has(4) {
		e, ok := rf.Lookup("LR_NU_0")
		if !ok {
			return "", fmt.Errorf("firmware: no LR_NU_0")
		}
		if e.Words != 1 {
			return "", fmt.Errorf("firmware: expected 1-word class counts")
		}
		loop := g.label("lr")
		done4 := g.label("done4")
		fail4 := g.label("fail4")
		g.emit(" li t0, %d", len(c.LongestRunQ16))
		g.emit(" li t1, %d", 4*e.Addr)
		g.emit(" add t1, t1, s1")
		g.emit(" li t2, qtab32")
		g.emit(" li s4, 0")
		g.emit(" li s5, 0")
		g.emit("%s:", loop)
		g.emit(" lw a0, 0(t1)")
		g.emit(" addi t1, t1, 4")
		g.emit(" mul a0, a0, a0 # ν² (≤ 2^20, exact in 32 bits)")
		g.emit(" lw a1, 0(t2)")
		g.emit(" addi t2, t2, 4")
		g.emit(" mul a2, a0, a1 # ν²·Q lo")
		g.emit(" mulhu a3, a0, a1")
		g.emit(" add s4, s4, a2")
		g.emit(" sltu a4, s4, a2")
		g.emit(" add s5, s5, a3")
		g.emit(" add s5, s5, a4")
		g.emit(" addi t0, t0, -1")
		g.emit(" bne t0, zero, %s", loop)
		g.gt64("s4", "s5", c.LongestRunMax, fail4)
		g.emit(" j %s", done4)
		g.emit("%s:", fail4)
		g.emit(" ori s0, s0, %d", FailLongestRun)
		g.emit("%s:", done4)
	}

	// ---- Test 7: non-overlapping templates.
	if cfg.Has(7) {
		if err := g.genNonOverlap(cfg, c); err != nil {
			return "", err
		}
	}

	// ---- Test 8: overlapping templates (same Σν²·Q16 shape as test 4).
	if cfg.Has(8) {
		if err := g.genClassChi("OV_NU_0", c.OverlapQ16, c.OverlapMax, "ovtab32", FailOverlap); err != nil {
			return "", err
		}
	}

	// ---- Test 11: serial, with 64-bit ψ² accumulators.
	if cfg.Has(11) {
		if err := g.genSerial(cfg, c); err != nil {
			return "", err
		}
	}

	// ---- Test 12: approximate entropy via the PWL table.
	if cfg.Has(12) {
		logN := 0
		for 1<<uint(logN) < cfg.N {
			logN++
		}
		if err := g.genApEn(cfg, c, logN); err != nil {
			return "", err
		}
	}

	// ---- Test 13: cusum on the raw offset values.
	fail13 := g.label("fail13")
	done13 := g.label("done13")
	if err := g.loadVal("S_MAX", "a0"); err != nil {
		return "", err
	}
	g.li("a1", n)
	g.emit(" sub a0, a0, a1 # S_max")
	if err := g.loadVal("S_MIN", "a2"); err != nil {
		return "", err
	}
	g.emit(" sub a2, a1, a2 # n − S_min_raw = −S_min")
	zf := g.label("zf")
	g.emit(" bgeu a0, a2, %s", zf)
	g.emit(" mv a0, a2")
	g.emit("%s:", zf)
	g.li("a1", c.CusumZMin)
	g.emit(" bgeu a0, a1, %s", fail13)
	// Backward: max(S_fin_raw − S_min_raw, S_max_raw − S_fin_raw).
	if err := g.loadVal("S_FINAL", "a0"); err != nil {
		return "", err
	}
	if err := g.loadVal("S_MIN", "a2"); err != nil {
		return "", err
	}
	g.emit(" sub a3, a0, a2 # S_fin − S_min")
	if err := g.loadVal("S_MAX", "a2"); err != nil {
		return "", err
	}
	g.emit(" sub a0, a2, a0 # S_max − S_fin")
	zb := g.label("zb")
	g.emit(" bgeu a3, a0, %s", zb)
	g.emit(" mv a3, a0")
	g.emit("%s:", zb)
	g.li("a1", c.CusumZMin)
	g.emit(" bgeu a3, a1, %s", fail13)
	g.emit(" j %s", done13)
	g.emit("%s:", fail13)
	g.emit(" ori s0, s0, %d", FailCusum)
	g.emit("%s:", done13)

	// Publish and halt.
	g.emit(" li t0, 0x%X", RV32ResultAddr)
	g.emit(" sw s0, 0(t0)")
	g.emit(" ebreak")

	// Constant tables.
	if cfg.Has(3) {
		g.emit("rtab32:")
		for _, row := range c.RunsRows {
			vLo := row.VLo
			if vLo < 0 {
				vLo = 0
			}
			g.emit(" .word %d, %d, %d", row.SAbsMax, vLo, row.VHi)
		}
	}
	if cfg.Has(4) {
		g.emit("qtab32:")
		for _, q := range c.LongestRunQ16 {
			g.emit(" .word %d", q)
		}
	}
	if cfg.Has(8) {
		g.emit("ovtab32:")
		for _, q := range c.OverlapQ16 {
			g.emit(" .word %d", q)
		}
	}
	if cfg.Has(12) {
		g.emitPWLTable(c.PWL)
	}
	return g.b.String(), nil
}

// rv32TBPort adapts the register file to the RV32 bus: 16-bit word w at
// byte offset 4·w, zero-extended.
type rv32TBPort struct {
	rf *hwblock.RegFile
}

func (p *rv32TBPort) ReadWord(addr uint32) uint32 {
	return uint32(p.rf.ReadWord(int(addr / 4)))
}

func (p *rv32TBPort) WriteWord(addr uint32, v uint32) {}

// rv32RAMWindow gives the result address backing store.
type rv32RAMWindow struct{ word uint32 }

func (w *rv32RAMWindow) ReadWord(addr uint32) uint32 { return w.word }
func (w *rv32RAMWindow) WriteWord(addr, v uint32)    { w.word = v }

// RunRV32 generates, assembles and executes the RV32 evaluation routine
// against the block's register file.
func RunRV32(b *hwblock.Block, cv *sweval.CriticalValues) (Result, string, error) {
	src, err := GenerateRV32(b.Config(), cv, b.RegFile())
	if err != nil {
		return Result{}, "", err
	}
	prog, err := rv32.Assemble(src)
	if err != nil {
		return Result{}, src, fmt.Errorf("firmware: rv32 assembly failed: %w", err)
	}
	cpu := rv32.New()
	port := &rv32TBPort{rf: b.RegFile()}
	window := uint32(4 * b.RegFile().Words())
	if err := cpu.MapPeripheral(RV32TBBase, (window+3)&^3, port); err != nil {
		return Result{}, src, err
	}
	result := &rv32RAMWindow{}
	if err := cpu.MapPeripheral(RV32ResultAddr, 4, result); err != nil {
		return Result{}, src, err
	}
	cpu.LoadImage(prog.Origin, prog.Words)
	cpu.SetPC(prog.Entry("entry"))
	steps := 0
	for !cpu.Halted() {
		if err := cpu.Step(); err != nil {
			return Result{}, src, err
		}
		steps++
		if steps > 1_000_000 {
			return Result{}, src, fmt.Errorf("firmware: rv32 runaway execution")
		}
	}
	return Result{
		FailBitmap:   uint16(result.word),
		Cycles:       cpu.Cycles(),
		Instructions: int64(steps),
	}, src, nil
}
