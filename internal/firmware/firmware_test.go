package firmware

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/hwblock"
	"repro/internal/sweval"
	"repro/internal/trng"
)

func setup(t *testing.T, n int, v hwblock.Variant, src trng.Source) (*hwblock.Block, *sweval.CriticalValues) {
	t.Helper()
	cfg, err := hwblock.NewConfig(n, v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hwblock.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := trng.Read(src, cfg.N)
	if err := b.Run(bitstream.NewReader(s)); err != nil {
		t.Fatal(err)
	}
	cv, err := sweval.NewCriticalValues(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return b, cv
}

func TestFirmwarePassesIdealSource(t *testing.T) {
	b, cv := setup(t, 65536, hwblock.Light, trng.NewIdeal(1))
	res, src, err := Run(b, cv)
	if err != nil {
		t.Fatalf("%v\nsource:\n%s", err, src)
	}
	if !res.Pass() {
		t.Errorf("ideal source failed with bitmap %#06b", res.FailBitmap)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Error("no cycles counted")
	}
	t.Logf("evaluation latency: %d cycles, %d instructions", res.Cycles, res.Instructions)
}

func TestFirmwareDetectsStuckSource(t *testing.T) {
	b, cv := setup(t, 65536, hwblock.Light, trng.NewStuckAt(1))
	res, _, err := Run(b, cv)
	if err != nil {
		t.Fatal(err)
	}
	for _, bit := range []uint16{FailMonobit, FailRuns, FailCusum} {
		if res.FailBitmap&bit == 0 {
			t.Errorf("stuck source: bit %#x not set (bitmap %#06b)", bit, res.FailBitmap)
		}
	}
}

func TestFirmwareDetectsBias(t *testing.T) {
	b, cv := setup(t, 65536, hwblock.Light, trng.NewBiased(0.55, 2))
	res, _, err := Run(b, cv)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailBitmap&FailMonobit == 0 {
		t.Errorf("biased source: monobit bit not set (bitmap %#06b)", res.FailBitmap)
	}
}

// TestFirmwareMatchesCostModelEvaluator is the cross-validation between the
// two software implementations: the cycle-accurate firmware and the
// instruction-cost-model evaluator must produce the same verdict for the
// five light tests on the same hardware counters.
func TestFirmwareMatchesCostModelEvaluator(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		var src trng.Source
		switch seed % 4 {
		case 0:
			src = trng.NewIdeal(seed)
		case 1:
			src = trng.NewBiased(0.5+0.005*float64(seed%8), seed)
		case 2:
			src = trng.NewMarkov(0.5+0.01*float64(seed%10), seed)
		default:
			src = trng.NewRingOscillator(100.37, 0.4, seed)
		}
		b, cv := setup(t, 65536, hwblock.Light, src)
		res, asmSrc, err := Run(b, cv)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := sweval.NewEvaluator(cv).Evaluate(b)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]uint16{1: FailMonobit, 2: FailBlockFreq, 3: FailRuns, 4: FailLongestRun, 13: FailCusum}
		for _, v := range rep.Verdicts {
			bit := want[v.TestID]
			fwFailed := res.FailBitmap&bit != 0
			if fwFailed == v.Pass { // mismatch: firmware failed XOR evaluator passed
				t.Errorf("seed %d test %d: firmware failed=%v, evaluator pass=%v\n%s",
					seed, v.TestID, fwFailed, v.Pass, asmSrc)
			}
		}
	}
}

func TestFirmwareSmallDesign(t *testing.T) {
	b, cv := setup(t, 128, hwblock.Light, trng.NewIdeal(3))
	res, src, err := Run(b, cv)
	if err != nil {
		t.Fatalf("%v\nsource:\n%s", err, src)
	}
	rep, err := sweval.NewEvaluator(cv).Evaluate(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass() != rep.Pass() {
		t.Errorf("n=128: firmware pass=%v, evaluator pass=%v (bitmap %#06b, failed %v)",
			res.Pass(), rep.Pass(), res.FailBitmap, rep.Failed())
	}
}

func TestFirmwareLargestDesign(t *testing.T) {
	// The 2^20 design exercises the 48-bit accumulator path of the
	// block-frequency routine. The firmware verdict must agree with the
	// cost-model evaluator on healthy and defective counters.
	for seed := int64(0); seed < 4; seed++ {
		var src trng.Source = trng.NewIdeal(seed)
		if seed%2 == 1 {
			src = trng.NewBiased(0.502+0.002*float64(seed), seed)
		}
		b, cv := setup(t, 1<<20, hwblock.Light, src)
		res, asmSrc, err := Run(b, cv)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, asmSrc)
		}
		rep, err := sweval.NewEvaluator(cv).Evaluate(b)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]uint16{1: FailMonobit, 2: FailBlockFreq, 3: FailRuns, 4: FailLongestRun, 13: FailCusum}
		for _, v := range rep.Verdicts {
			bit := want[v.TestID]
			fwFailed := res.FailBitmap&bit != 0
			if fwFailed == v.Pass {
				t.Errorf("seed %d test %d: firmware failed=%v, evaluator pass=%v",
					seed, v.TestID, fwFailed, v.Pass)
			}
		}
	}
}

func TestFirmwareLargestDesignBlockFreqEdge(t *testing.T) {
	// All-zeros input drives every ε to 0: |2ε − M| = 2^16 exactly in
	// every block — the dL = 0, dH = 1 corner of the 48-bit square.
	b, cv := setup(t, 1<<20, hwblock.Light, trng.NewStuckAt(0))
	res, _, err := Run(b, cv)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailBitmap&FailBlockFreq == 0 {
		t.Errorf("block-frequency did not fail on all-zeros (bitmap %#06b)", res.FailBitmap)
	}
	rep, err := sweval.NewEvaluator(cv).Evaluate(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Verdicts {
		if v.TestID == 2 && v.Pass {
			t.Error("evaluator disagrees: test 2 passed all-zeros")
		}
	}
}

func TestFirmwareLatencyIsStable(t *testing.T) {
	// The routine's latency must not depend on the data (modulo the few
	// branch directions): two ideal sequences should be within a handful
	// of cycles of each other, and well inside the paper's magnitude
	// (thousands of cycles, vs 21 cycles for the all-hardware design of
	// [13] — Table IV).
	b1, cv := setup(t, 65536, hwblock.Light, trng.NewIdeal(10))
	r1, _, err := Run(b1, cv)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := setup(t, 65536, hwblock.Light, trng.NewIdeal(11))
	r2, _, err := Run(b2, cv)
	if err != nil {
		t.Fatal(err)
	}
	diff := r1.Cycles - r2.Cycles
	if diff < 0 {
		diff = -diff
	}
	if diff > 200 {
		t.Errorf("latency varies too much: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
	if r1.Cycles < 100 || r1.Cycles > 20000 {
		t.Errorf("latency %d cycles outside plausible band", r1.Cycles)
	}
}

func TestGenerateEmitsTables(t *testing.T) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := sweval.NewCriticalValues(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hwblock.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Generate(cfg, cv, b.RegFile())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rtab:", "qtab:", "abs32:", "maxu32:", "CPUOFF"} {
		if !contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
