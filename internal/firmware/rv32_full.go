package firmware

import (
	"fmt"

	"repro/internal/hwblock"
	"repro/internal/sweval"
)

// This file extends the RV32 evaluation routine to the full nine-test set
// of the high designs: the template tests (7, 8), the serial test (11)
// with 64-bit accumulators, and the approximate-entropy test (12) with the
// 32-segment PWL x·log(x) evaluated in Q16 fixed point — the complete
// software half of the paper running as machine code on the 32-bit open
// core.

// Extra failure bits for the full set (the light bits are defined in
// firmware.go).
const (
	FailNonOverlap = 1 << 5
	FailOverlap    = 1 << 6
	FailSerial     = 1 << 7
	FailApEn       = 1 << 8
)

// rv32 scratch RAM for 64-bit intermediates (A_m, A_{m−1}, A_{m−2}).
const rv32Scratch = 0x3000

// add64 emits acc(s4:s5) += (a2 lo, a3 hi).
func (g *rvGen) add64() {
	g.emit(" add s4, s4, a2")
	g.emit(" sltu a4, s4, a2")
	g.emit(" add s5, s5, a3")
	g.emit(" add s5, s5, a4")
}

// shl64 emits a k-bit left shift of the (lo, hi) register pair (0 < k < 32).
func (g *rvGen) shl64(lo, hi string, k int) {
	g.emit(" slli %s, %s, %d", hi, hi, k)
	g.emit(" srli t5, %s, %d", lo, 32-k)
	g.emit(" or %s, %s, t5", hi, hi)
	g.emit(" slli %s, %s, %d", lo, lo, k)
}

// sub64 emits (aLo,aHi) −= (bLo,bHi).
func (g *rvGen) sub64(aLo, aHi, bLo, bHi string) {
	g.emit(" sltu t5, %s, %s # borrow", aLo, bLo)
	g.emit(" sub %s, %s, %s", aLo, aLo, bLo)
	g.emit(" sub %s, %s, %s", aHi, aHi, bHi)
	g.emit(" sub %s, %s, t5", aHi, aHi)
}

// sumSquares64 emits a loop accumulating Σ value² over `count` consecutive
// register-file values of `words` bus words each, starting at word address
// `addr`, into s4:s5.
func (g *rvGen) sumSquares64(addr, words, count int) {
	loop := g.label("ssq")
	g.emit(" li t0, %d", count)
	g.emit(" li t1, %d", 4*addr)
	g.emit(" add t1, t1, s1")
	g.emit(" li s4, 0")
	g.emit(" li s5, 0")
	g.emit("%s:", loop)
	g.emit(" lw a0, 0(t1)")
	if words == 2 {
		g.emit(" lw t6, 4(t1)")
		g.emit(" slli t6, t6, 16")
		g.emit(" or a0, a0, t6")
		g.emit(" addi t1, t1, 8")
	} else {
		g.emit(" addi t1, t1, 4")
	}
	g.emit(" mul a2, a0, a0")
	g.emit(" mulhu a3, a0, a0")
	g.add64()
	g.emit(" addi t0, t0, -1")
	g.emit(" bne t0, zero, %s", loop)
}

// genNonOverlap emits test 7: D = Σ(2^m·W − (M−m+1))² with a 64-bit
// accumulator.
func (g *rvGen) genNonOverlap(cfg hwblock.Config, c sweval.EmbeddedConstants) error {
	e, ok := g.rf.Lookup("NO_W_0")
	if !ok {
		return fmt.Errorf("firmware: no NO_W_0")
	}
	m := cfg.Params.TemplateM
	blockLen := cfg.N / cfg.Params.NonOverlappingN
	muScaled := int64(blockLen - m + 1)
	loop := g.label("no")
	fail := g.label("fail7")
	done := g.label("done7")
	g.emit(" li t0, %d", cfg.Params.NonOverlappingN)
	g.emit(" li t1, %d", 4*e.Addr)
	g.emit(" add t1, t1, s1")
	g.emit(" li s4, 0")
	g.emit(" li s5, 0")
	g.emit("%s:", loop)
	g.emit(" lw a0, 0(t1)")
	if e.Words == 2 {
		g.emit(" lw t6, 4(t1)")
		g.emit(" slli t6, t6, 16")
		g.emit(" or a0, a0, t6")
		g.emit(" addi t1, t1, 8")
	} else {
		g.emit(" addi t1, t1, 4")
	}
	g.emit(" slli a0, a0, %d # 2^m·W", m)
	g.li("a1", muScaled)
	g.emit(" sub a0, a0, a1 # dev")
	pos := g.label("no_pos")
	g.emit(" bge a0, zero, %s", pos)
	g.emit(" sub a0, zero, a0")
	g.emit("%s:", pos)
	g.emit(" mul a2, a0, a0")
	g.emit(" mulhu a3, a0, a0")
	g.add64()
	g.emit(" addi t0, t0, -1")
	g.emit(" bne t0, zero, %s", loop)
	g.gt64("s4", "s5", c.NonOvMax, fail)
	g.emit(" j %s", done)
	g.emit("%s:", fail)
	g.emit(" ori s0, s0, %d", FailNonOverlap)
	g.emit("%s:", done)
	return nil
}

// genClassChi emits the Σν²·Q16 pattern (tests 4 and 8 share it); used
// here for test 8 with its own table label and fail bit.
func (g *rvGen) genClassChi(firstEntry string, qs []int64, max int64, tabLabel string, failBit int) error {
	e, ok := g.rf.Lookup(firstEntry)
	if !ok {
		return fmt.Errorf("firmware: no %s", firstEntry)
	}
	if e.Words != 1 {
		return fmt.Errorf("firmware: expected 1-word class counts at %s", firstEntry)
	}
	loop := g.label("cc")
	fail := g.label("ccfail")
	done := g.label("ccdone")
	g.emit(" li t0, %d", len(qs))
	g.emit(" li t1, %d", 4*e.Addr)
	g.emit(" add t1, t1, s1")
	g.emit(" li t2, %s", tabLabel)
	g.emit(" li s4, 0")
	g.emit(" li s5, 0")
	g.emit("%s:", loop)
	g.emit(" lw a0, 0(t1)")
	g.emit(" addi t1, t1, 4")
	g.emit(" mul a0, a0, a0")
	g.emit(" lw a1, 0(t2)")
	g.emit(" addi t2, t2, 4")
	g.emit(" mul a2, a0, a1")
	g.emit(" mulhu a3, a0, a1")
	g.add64()
	g.emit(" addi t0, t0, -1")
	g.emit(" bne t0, zero, %s", loop)
	g.gt64("s4", "s5", max, fail)
	g.emit(" j %s", done)
	g.emit("%s:", fail)
	g.emit(" ori s0, s0, %d", failBit)
	g.emit("%s:", done)
	return nil
}

// genSerial emits test 11: the 64-bit forms of n·∇ψ² and n·∇²ψ².
func (g *rvGen) genSerial(cfg hwblock.Config, c sweval.EmbeddedConstants) error {
	m := cfg.Params.SerialM
	// Bank start addresses: the counters were registered contiguously
	// per width, m first.
	type bank struct {
		addr, words, count int
		scratch            int // scratch byte offset for the 64-bit A
	}
	var banks []bank
	for i, w := range []int{m, m - 1, m - 2} {
		name := fmt.Sprintf("SERIAL_NU%d_%0*b", w, w, 0)
		e, ok := g.rf.Lookup(name)
		if !ok {
			return fmt.Errorf("firmware: no %s", name)
		}
		banks = append(banks, bank{addr: e.Addr, words: e.Words, count: 1 << uint(w), scratch: 8 * i})
	}
	// Compute and stash A_m, A_{m−1}, A_{m−2}.
	g.emit(" li s6, 0x%X # scratch", rv32Scratch)
	for _, b := range banks {
		g.sumSquares64(b.addr, b.words, b.count)
		g.emit(" sw s4, %d(s6)", b.scratch)
		g.emit(" sw s5, %d(s6)", b.scratch+4)
	}
	fail := g.label("fail11")
	done := g.label("done11")
	// X1 = (A_m << m) − (A_{m−1} << (m−1)).
	g.emit(" lw s4, 0(s6)")
	g.emit(" lw s5, 4(s6)")
	g.shl64("s4", "s5", m)
	g.emit(" lw a0, 8(s6)")
	g.emit(" lw a1, 12(s6)")
	g.shl64("a0", "a1", m-1)
	g.sub64("s4", "s5", "a0", "a1")
	g.gt64("s4", "s5", c.SerialMax1, fail)
	// X2 = (A_m << m) + (A_{m−2} << (m−2)) − (A_{m−1} << m).
	g.emit(" lw s4, 0(s6)")
	g.emit(" lw s5, 4(s6)")
	g.shl64("s4", "s5", m)
	g.emit(" lw a2, 16(s6)")
	g.emit(" lw a3, 20(s6)")
	g.shl64("a2", "a3", m-2)
	g.add64()
	g.emit(" lw a0, 8(s6)")
	g.emit(" lw a1, 12(s6)")
	g.shl64("a0", "a1", m)
	g.sub64("s4", "s5", "a0", "a1")
	g.gt64("s4", "s5", c.SerialMax2, fail)
	g.emit(" j %s", done)
	g.emit("%s:", fail)
	g.emit(" ori s0, s0, %d", FailSerial)
	g.emit("%s:", done)
	return nil
}

// genApEn emits test 12: φ_w = Σ PWL(ν/n) in Q16 over the serial banks of
// widths m and m−1, then the apen < threshold comparison. The PWL table
// rows are (|slope|, signFlag, intercept), all Q16.
//
// Rounding note: the cost-model evaluator floor-shifts the signed product
// (arithmetic >>16) while this routine truncates the magnitude before
// negating (ceil for negative products) — each term may differ by one Q16
// ulp. With up to 24 terms the φ discrepancy stays below 24/2^16, two
// orders of magnitude inside the ApEn threshold's compensation margin, so
// verdicts never diverge (covered by the cross-check tests).
func (g *rvGen) genApEn(cfg hwblock.Config, c sweval.EmbeddedConstants, logN int) error {
	m := cfg.Params.SerialM
	fail := g.label("fail12")
	done := g.label("done12")
	// φ accumulates in s6 (width m−1 bank) then s7 (width m bank).
	for i, w := range []int{m - 1, m} {
		name := fmt.Sprintf("SERIAL_NU%d_%0*b", w, w, 0)
		e, ok := g.rf.Lookup(name)
		if !ok {
			return fmt.Errorf("firmware: no %s", name)
		}
		phiReg := "s6"
		if i == 1 {
			phiReg = "s7"
		}
		loop := g.label("phi")
		skip := g.label("phiskip")
		noclamp := g.label("noclamp")
		g.emit(" li t0, %d", 1<<uint(w))
		g.emit(" li t1, %d", 4*e.Addr)
		g.emit(" add t1, t1, s1")
		g.emit(" li %s, 0", phiReg)
		g.emit("%s:", loop)
		g.emit(" lw a0, 0(t1)")
		if e.Words == 2 {
			g.emit(" lw t6, 4(t1)")
			g.emit(" slli t6, t6, 16")
			g.emit(" or a0, a0, t6")
			g.emit(" addi t1, t1, 8")
		} else {
			g.emit(" addi t1, t1, 4")
		}
		g.emit(" beq a0, zero, %s", skip)
		// xQ16 = ν scaled by 2^(16 − logN).
		switch {
		case logN > 16:
			g.emit(" srli a0, a0, %d", logN-16)
		case logN < 16:
			g.emit(" slli a0, a0, %d", 16-logN)
		}
		// Segment index, clamped to 31.
		g.emit(" srli a1, a0, 11")
		g.emit(" li t5, 31")
		g.emit(" bgeu t5, a1, %s", noclamp)
		g.emit(" mv a1, t5")
		g.emit("%s:", noclamp)
		// Row address: pwltab + 12·seg.
		g.emit(" slli a2, a1, 3")
		g.emit(" slli a1, a1, 2")
		g.emit(" add a1, a1, a2")
		g.emit(" li a2, pwltab")
		g.emit(" add a1, a1, a2")
		g.emit(" lw a2, 0(a1) # |slope| Q16")
		g.emit(" lw a3, 4(a1) # sign flag")
		g.emit(" lw a4, 8(a1) # intercept Q16 (signed)")
		// p = (|slope|·x) >> 16, using mul/mulhu.
		g.emit(" mul a5, a2, a0")
		g.emit(" mulhu a2, a2, a0")
		g.emit(" srli a5, a5, 16")
		g.emit(" slli a2, a2, 16")
		g.emit(" or a5, a5, a2")
		neg := g.label("nneg")
		g.emit(" beq a3, zero, %s", neg)
		g.emit(" sub a5, zero, a5")
		g.emit("%s:", neg)
		g.emit(" add a5, a5, a4 # term")
		g.emit(" add %s, %s, a5", phiReg, phiReg)
		g.emit("%s:", skip)
		g.emit(" addi t0, t0, -1")
		g.emit(" bne t0, zero, %s", loop)
	}
	// apen = φ_{m−1} − φ_m; fail iff apen < apenMin (signed).
	g.emit(" sub a0, s6, s7")
	g.li("a1", c.ApEnMinQ16)
	g.emit(" blt a0, a1, %s", fail)
	g.emit(" j %s", done)
	g.emit("%s:", fail)
	g.emit(" ori s0, s0, %d", FailApEn)
	g.emit("%s:", done)
	return nil
}

// emitPWLTable writes the 32-row (|slope|, sign, intercept) table.
func (g *rvGen) emitPWLTable(rows []sweval.PWLRow) {
	g.emit("pwltab:")
	for _, r := range rows {
		sign := 0
		abs := r.SlopeQ16
		if abs < 0 {
			sign = 1
			abs = -abs
		}
		g.emit(" .word %d, %d, %d", abs, sign, r.InterceptQ16)
	}
}
