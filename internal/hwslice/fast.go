package hwslice

import (
	"math/bits"

	"repro/internal/hwfast"
)

// fastGroup is the tile-rate engine behind Group for designs whose block
// lengths are tile-aligned (n, BlockFrequencyM and LongestRunM all
// multiples of 64, n ≤ 2^20) — every standard design of 65536 bits and up.
// It computes the same four sliceable statistics as the generic per-step
// engine, but entirely horizontally: one pass over the 64 lane-major
// words per tile, with no per-bit state transitions at all.
//
//   - The cumulative-sums walk is per-lane, per-tile. The reflected walk
//     obeys the Lindley recursion: over any 64-bit span the floor hits
//     (new extrema) are drops = max(0, M − d₀), where d₀ is the distance
//     to the extremum at tile start and M the span's maximum prefix
//     deficit, and the end distance is d₀ + S + drops (S the net sum).
//     M, its excess twin E and S come from an 8-bit lookup table folded
//     over the word's bytes; a lane at distance ≥ 64 on both sides skips
//     even that and takes the linear update d ± (2·ones − 64).
//   - Runs and block frequency have no cross-bit state: per-lane
//     transition counts and ones counts are single POPCNTs.
//   - Longest run keeps a carried open-run length per lane and tests
//     whole words: the carried run closed by the word's leading ones
//     competes first, then a word-parallel doubling test (y &= y<<s
//     marks run ends of length ≥ c) asks only whether some internal
//     run beats the current maximum — exact length is recovered by
//     further doubling only on the rare new-maximum event. Completed
//     blocks classify scalar per lane into per-class counters, so no
//     per-block bank exists and extraction is O(1) in the block count.
//
// Inactive lanes are not masked out: a stale slot updates independently
// and is never read (ExtractLane is only called for attached lanes), and
// every bound below holds for arbitrary bit patterns — d and the drops
// counters grow at most n per sequence, run lengths are capped by lrM —
// so stale lanes can neither overflow a counter nor perturb a live one.
// Rollover clears them.
type fastGroup struct {
	n int

	// cumulative-sums walk: distances to the extrema plus monotone
	// extrema counters, one scalar per lane.
	dMin  [64]uint32 // s − sMin; ≤ 2n
	dMax  [64]uint32 // sMax − s; ≤ 2n
	drops [64]uint32 // −sMin; ≤ n
	rises [64]uint32 // sMax; ≤ n

	hasRuns bool
	runs    [64]uint32 // per-lane runs counter
	prevT   uint64     // previous tile's last-bit mask (seam + ws.Prev)

	hasBF  bool
	bfM    int
	bfEps  [64]uint32 // ones in the in-flight block
	bfBank []uint32   // completed blocks × 64 lanes
	bfCur  int        // completed blocks this sequence
	nBFBlk int

	hasLR      bool
	lrM        int
	lrLo, lrHi int
	lrMax      [64]uint32     // longest ones run in the in-flight block
	lrRun      [64]uint32     // ones run ending at the last absorbed bit
	lrCls      [64 * 8]uint32 // per-lane × class completed-block counts
}

// walkTab maps a byte (eight chronological bits, LSB first) to its walk
// summary: bits 16.. hold the maximum prefix excess E, bits 8..15 the
// maximum prefix deficit M, bits 0..7 the net sum S offset by 8. Folding
// it over a word's bytes gives the word's extrema:
// M_word = max_k(M_k − S_{<k}), E_word = max_k(E_k + S_{<k}).
var walkTab [256]uint32

func init() {
	for b := 0; b < 256; b++ {
		s, m, e := 0, 0, 0
		for i := 0; i < 8; i++ {
			if b>>uint(i)&1 == 1 {
				s++
			} else {
				s--
			}
			if -s > m {
				m = -s
			}
			if s > e {
				e = s
			}
		}
		walkTab[b] = uint32(e<<16 | m<<8 | (s + 8))
	}
}

// newFast reports whether the design can run on the tile-rate engine and
// builds it if so. The gates are structural: tile-aligned block lengths
// let block boundaries coincide with tile boundaries, and n ≤ 2^20 keeps
// every counter within its fixed-width budget.
func newFast(n int, hasRuns, hasBF bool, bfM int, hasLR bool, lrM, lrLo, lrHi int) *fastGroup {
	if n > 1<<20 {
		return nil
	}
	if hasBF && bfM%64 != 0 {
		return nil
	}
	if hasLR && lrM%64 != 0 {
		return nil
	}
	f := &fastGroup{n: n, hasRuns: hasRuns}
	if hasBF {
		f.hasBF = true
		f.bfM = bfM
		f.nBFBlk = n / bfM
		f.bfBank = make([]uint32, f.nBFBlk*64)
	}
	if hasLR {
		f.hasLR = true
		f.lrM = lrM
		f.lrLo, f.lrHi = lrLo, lrHi
	}
	return f
}

// absorbBurst advances every lane by len(tiles)·64 bits. tiles[j][l]
// carries lane l's j-th next 64 chronological bits; off is the bit offset
// of the first tile within the sequence (a multiple of 64). The burst is
// split only at block-frequency boundaries (blocks of many tiles, so the
// split is rare and chunks stay long); longest-run blocks can be as short
// as two tiles, so their boundary work happens inline in the chunk loop —
// splitting on them would chop every burst down to nothing.
func (f *fastGroup) absorbBurst(tiles [][64]uint64, off int) {
	for len(tiles) > 0 {
		c := len(tiles)
		if f.hasBF {
			if room := (f.bfM - off%f.bfM) / 64; room < c {
				c = room
			}
		}
		f.absorbChunk(tiles[:c], off)
		off += 64 * c
		if f.hasBF && off%f.bfM == 0 {
			base := f.bfCur * 64
			copy(f.bfBank[base:base+64], f.bfEps[:])
			for l := range f.bfEps {
				f.bfEps[l] = 0
			}
			f.bfCur++
		}
		tiles = tiles[c:]
	}
}

// absorbChunk is the burst hot loop: tile-outer, lane-inner, unrolled
// two tiles per pass so each lane's counters load and store once per
// word pair instead of once per word — that halves the L1 read/write
// traffic on the counter arrays, which profiling showed was the largest
// cost after the popcounts themselves. The full lane-outer transpose
// (hoisting counters across the whole chunk) was tried and measured
// slower — the widened loop spilled registers — so the pair is the
// sweet spot. The per-word statistic updates are identical to the
// per-bit engine; the differential suite against hwfast holds them to
// bit-exactness.
func (f *fastGroup) absorbChunk(tiles [][64]uint64, off int) {
	hasRuns, hasBF, hasLR := f.hasRuns, f.hasBF, f.hasLR
	first := uint64(0)
	if off == 0 {
		first = 1 // every lane counts its opening run at bit zero
	}
	// Longest-run block boundaries are tile-aligned and common to all
	// lanes, so one countdown serves the whole chunk: when it hits zero
	// every lane's block maximum classifies into its class counter and
	// the trackers rearm — runs restart at block boundaries, exactly
	// like the hardware engine.
	lrTiles, cnt := 0, 0
	lo, hi := f.lrLo, f.lrHi
	if hasLR {
		lrTiles = f.lrM / 64
		cnt = lrTiles - (off/64)%lrTiles
	}
	prev := f.prevT
	j := 0
	for ; j+1 < len(tiles); j += 2 {
		ta, tb := &tiles[j], &tiles[j+1]
		// Advance the block countdown for both tiles up front: the
		// boundaries are common to all lanes, so the lane loop only
		// needs two flags saying whether a block closes after the
		// first and/or the second word.
		b0, b1 := false, false
		if hasLR {
			cnt--
			if cnt == 0 {
				b0, cnt = true, lrTiles
			}
			cnt--
			if cnt == 0 {
				b1, cnt = true, lrTiles
			}
		}
		var pt uint64
		for l := 0; l < 64; l++ {
			w0, w1 := ta[l], tb[l]
			runsv := f.runs[l]
			bf := f.bfEps[l]
			r := int(f.lrRun[l])
			m := int(f.lrMax[l])
			d, x := int(f.dMin[l]), int(f.dMax[l])

			// ---- first word of the pair ----
			{
				w := w0
				pc := int(bits.OnesCount64(w))
				if hasRuns {
					tr := (w ^ (w<<1 | prev>>uint(l)&1)) | first
					runsv += uint32(bits.OnesCount64(tr))
				}
				if hasBF {
					bf += uint32(pc)
				}
				if hasLR {
					nw := ^w
					lead := bits.TrailingZeros64(nw)
					m = max(m, r+lead) // the carried-in run, closed inside w (or spanning it)
					if lead == 64 {
						r += 64
					} else {
						// Internal runs only matter if one beats m. Test run ≥ m+1
						// with the doubling identity f(c+s) = f(c) & f(c)<<s (s ≤ c),
						// where f(c) marks end positions of runs ≥ c; on the rare
						// new-maximum event, keep doubling by 1 to the exact length.
						if m < 64 {
							y := w
							for c := 1; c < m+1; {
								s := min(c, m+1-c)
								y &= y << uint(s)
								if y == 0 {
									// No run of length ≥ c+s at all — the test
									// cannot recover, so skip the remaining
									// doublings (typical random words die here
									// within three iterations).
									break
								}
								c += s
							}
							if y != 0 {
								m++
								for {
									y &= y << 1
									if y == 0 {
										break
									}
									m++
								}
							}
						}
						// The trailing open run is an internal suffix run, so it
						// never exceeds the (now exact) maximum.
						r = bits.LeadingZeros64(nw)
					}
					if b0 {
						c := min(max(m, lo), hi) - lo
						f.lrCls[l<<3|c]++
						m, r = 0, 0
					}
				}
				s := 2*pc - 64
				if d >= 64 && x >= 64 {
					// Far on both sides: the walk cannot reach either extremum
					// within 64 steps, so the floors never engage and the update
					// is linear in the net sum 2·ones − 64.
					d += s
					x -= s
				} else {
					t0 := int(walkTab[w&0xff])
					t1 := int(walkTab[w>>8&0xff])
					t2 := int(walkTab[w>>16&0xff])
					t3 := int(walkTab[w>>24&0xff])
					t4 := int(walkTab[w>>32&0xff])
					t5 := int(walkTab[w>>40&0xff])
					t6 := int(walkTab[w>>48&0xff])
					t7 := int(walkTab[w>>56])
					s0 := t0&0xff - 8
					s2 := t2&0xff - 8
					s4 := t4&0xff - 8
					s6 := t6&0xff - 8
					s01 := s0 + t1&0xff - 8
					s23 := s2 + t3&0xff - 8
					s45 := s4 + t5&0xff - 8
					s03 := s01 + s23
					if d < 64 {
						m01 := max(t0>>8&0xff, t1>>8&0xff-s0)
						m23 := max(t2>>8&0xff, t3>>8&0xff-s2)
						m45 := max(t4>>8&0xff, t5>>8&0xff-s4)
						m67 := max(t6>>8&0xff, t7>>8&0xff-s6)
						mw := max(max(m01, m23-s01), max(m45, m67-s45)-s03)
						dr := max(0, mw-d)
						f.drops[l] += uint32(dr)
						d += dr
					}
					if x < 64 {
						e01 := max(t1>>16+s0, t0>>16)
						e23 := max(t3>>16+s2, t2>>16)
						e45 := max(t5>>16+s4, t4>>16)
						e67 := max(t7>>16+s6, t6>>16)
						e := max(max(e23+s01, e01), max(e67+s45, e45)+s03)
						ri := max(0, e-x)
						f.rises[l] += uint32(ri)
						x += ri
					}
					d += s
					x -= s
				}
			}

			// ---- second word of the pair ----
			{
				w := w1
				pc := int(bits.OnesCount64(w))
				if hasRuns {
					tr := w ^ (w<<1 | w0>>63)
					runsv += uint32(bits.OnesCount64(tr))
				}
				if hasBF {
					bf += uint32(pc)
				}
				if hasLR {
					nw := ^w
					lead := bits.TrailingZeros64(nw)
					m = max(m, r+lead)
					if lead == 64 {
						r += 64
					} else {
						if m < 64 {
							y := w
							for c := 1; c < m+1; {
								s := min(c, m+1-c)
								y &= y << uint(s)
								if y == 0 {
									break
								}
								c += s
							}
							if y != 0 {
								m++
								for {
									y &= y << 1
									if y == 0 {
										break
									}
									m++
								}
							}
						}
						r = bits.LeadingZeros64(nw)
					}
					if b1 {
						c := min(max(m, lo), hi) - lo
						f.lrCls[l<<3|c]++
						m, r = 0, 0
					}
				}
				s := 2*pc - 64
				if d >= 64 && x >= 64 {
					d += s
					x -= s
				} else {
					t0 := int(walkTab[w&0xff])
					t1 := int(walkTab[w>>8&0xff])
					t2 := int(walkTab[w>>16&0xff])
					t3 := int(walkTab[w>>24&0xff])
					t4 := int(walkTab[w>>32&0xff])
					t5 := int(walkTab[w>>40&0xff])
					t6 := int(walkTab[w>>48&0xff])
					t7 := int(walkTab[w>>56])
					s0 := t0&0xff - 8
					s2 := t2&0xff - 8
					s4 := t4&0xff - 8
					s6 := t6&0xff - 8
					s01 := s0 + t1&0xff - 8
					s23 := s2 + t3&0xff - 8
					s45 := s4 + t5&0xff - 8
					s03 := s01 + s23
					if d < 64 {
						m01 := max(t0>>8&0xff, t1>>8&0xff-s0)
						m23 := max(t2>>8&0xff, t3>>8&0xff-s2)
						m45 := max(t4>>8&0xff, t5>>8&0xff-s4)
						m67 := max(t6>>8&0xff, t7>>8&0xff-s6)
						mw := max(max(m01, m23-s01), max(m45, m67-s45)-s03)
						dr := max(0, mw-d)
						f.drops[l] += uint32(dr)
						d += dr
					}
					if x < 64 {
						e01 := max(t1>>16+s0, t0>>16)
						e23 := max(t3>>16+s2, t2>>16)
						e45 := max(t5>>16+s4, t4>>16)
						e67 := max(t7>>16+s6, t6>>16)
						e := max(max(e23+s01, e01), max(e67+s45, e45)+s03)
						ri := max(0, e-x)
						f.rises[l] += uint32(ri)
						x += ri
					}
					d += s
					x -= s
				}
			}

			f.runs[l] = runsv
			f.bfEps[l] = bf
			f.lrRun[l], f.lrMax[l] = uint32(r), uint32(m)
			f.dMin[l], f.dMax[l] = uint32(d), uint32(x)
			pt |= w1 >> 63 << uint(l)
		}
		prev = pt
		first = 0
	}
	// Odd tail: at most one tile left; same per-word updates, counters
	// touched directly.
	for ; j < len(tiles); j++ {
		lanes := &tiles[j]
		var pt uint64
		for l := 0; l < 64; l++ {
			w := lanes[l]
			pc := int(bits.OnesCount64(w))
			if hasRuns {
				tr := (w ^ (w<<1 | prev>>uint(l)&1)) | first
				f.runs[l] += uint32(bits.OnesCount64(tr))
			}
			if hasBF {
				f.bfEps[l] += uint32(pc)
			}
			if hasLR {
				nw := ^w
				lead := bits.TrailingZeros64(nw)
				r := int(f.lrRun[l])
				m := int(f.lrMax[l])
				m = max(m, r+lead)
				if lead == 64 {
					r += 64
				} else {
					if m < 64 {
						y := w
						for c := 1; c < m+1; {
							s := min(c, m+1-c)
							y &= y << uint(s)
							if y == 0 {
								break
							}
							c += s
						}
						if y != 0 {
							m++
							for {
								y &= y << 1
								if y == 0 {
									break
								}
								m++
							}
						}
					}
					r = bits.LeadingZeros64(nw)
				}
				f.lrRun[l], f.lrMax[l] = uint32(r), uint32(m)
			}
			s := 2*pc - 64
			d, x := int(f.dMin[l]), int(f.dMax[l])
			if d < 64 || x < 64 {
				t0 := int(walkTab[w&0xff])
				t1 := int(walkTab[w>>8&0xff])
				t2 := int(walkTab[w>>16&0xff])
				t3 := int(walkTab[w>>24&0xff])
				t4 := int(walkTab[w>>32&0xff])
				t5 := int(walkTab[w>>40&0xff])
				t6 := int(walkTab[w>>48&0xff])
				t7 := int(walkTab[w>>56])
				s0 := t0&0xff - 8
				s2 := t2&0xff - 8
				s4 := t4&0xff - 8
				s6 := t6&0xff - 8
				s01 := s0 + t1&0xff - 8
				s23 := s2 + t3&0xff - 8
				s45 := s4 + t5&0xff - 8
				s03 := s01 + s23
				if d < 64 {
					m01 := max(t0>>8&0xff, t1>>8&0xff-s0)
					m23 := max(t2>>8&0xff, t3>>8&0xff-s2)
					m45 := max(t4>>8&0xff, t5>>8&0xff-s4)
					m67 := max(t6>>8&0xff, t7>>8&0xff-s6)
					mw := max(max(m01, m23-s01), max(m45, m67-s45)-s03)
					dr := max(0, mw-d)
					f.drops[l] += uint32(dr)
					d += dr
				}
				if x < 64 {
					e01 := max(t1>>16+s0, t0>>16)
					e23 := max(t3>>16+s2, t2>>16)
					e45 := max(t5>>16+s4, t4>>16)
					e67 := max(t7>>16+s6, t6>>16)
					e := max(max(e23+s01, e01), max(e67+s45, e45)+s03)
					ri := max(0, e-x)
					f.rises[l] += uint32(ri)
					x += ri
				}
			}
			f.dMin[l] = uint32(d + s)
			f.dMax[l] = uint32(x - s)
			pt |= w >> 63 << uint(l)
		}
		prev = pt
		first = 0
		if hasLR {
			cnt--
			if cnt == 0 {
				for l := 0; l < 64; l++ {
					c := min(max(int(f.lrMax[l]), lo), hi) - lo
					f.lrCls[l<<3|c]++
					f.lrMax[l], f.lrRun[l] = 0, 0
				}
				cnt = lrTiles
			}
		}
	}
	f.prevT = prev
}

// extractLane mirrors Group.ExtractLane for the fast engine.
func (f *fastGroup) extractLane(lane, off int, ws *hwfast.WordStats) {
	ws.Bits = off
	drops := int64(f.drops[lane])
	ws.S = int64(f.dMin[lane]) - drops
	ws.SMin = -drops
	ws.SMax = int64(f.rises[lane])

	ws.Runs, ws.Prev = 0, 0
	if f.hasRuns {
		ws.Runs = uint64(f.runs[lane])
		if off > 0 {
			ws.Prev = byte(f.prevT >> uint(lane) & 1)
		}
	}

	ws.BFEps = 0
	ws.BFBank = ws.BFBank[:0]
	if f.hasBF {
		ws.BFEps = uint64(f.bfEps[lane])
		for b := 0; b < f.nBFBlk; b++ {
			var v uint64
			if b < f.bfCur {
				v = uint64(f.bfBank[b*64+lane])
			}
			ws.BFBank = append(ws.BFBank, v) //trnglint:alloc recycled WordStats backing reaches steady-state capacity after the first extraction
		}
	}

	ws.LRRun, ws.LRBlkMax = 0, 0
	ws.LRClasses = ws.LRClasses[:0]
	if f.hasLR {
		ws.LRBlkMax = int(f.lrMax[lane])
		ws.LRRun = int(f.lrRun[lane])
		for c := 0; c <= f.lrHi-f.lrLo; c++ {
			ws.LRClasses = append(ws.LRClasses, uint64(f.lrCls[lane<<3|c])) //trnglint:alloc recycled WordStats backing reaches steady-state capacity after the first extraction
		}
	}
}

// rollover clears every counter (including stale detached-lane state) for
// the next sequence.
func (f *fastGroup) rollover() {
	for l := 0; l < 64; l++ {
		f.dMin[l], f.dMax[l] = 0, 0
		f.drops[l], f.rises[l] = 0, 0
	}
	if f.hasRuns {
		for l := range f.runs {
			f.runs[l] = 0
		}
	}
	f.prevT = 0
	if f.hasBF {
		for l := range f.bfEps {
			f.bfEps[l] = 0
		}
		for i := range f.bfBank[:f.bfCur*64] {
			f.bfBank[i] = 0
		}
		f.bfCur = 0
	}
	if f.hasLR {
		for l := range f.lrMax {
			f.lrMax[l] = 0
			f.lrRun[l] = 0
		}
		for i := range f.lrCls {
			f.lrCls[i] = 0
		}
	}
}
