package hwslice_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/hwfast"
	"repro/internal/hwslice"
	"repro/internal/nist"
)

// variants mirrors the eight Table III design points (hwblock.AllConfigs)
// without depending on hwblock's naming.
var variants = []struct {
	name  string
	n     int
	tests []int
}{
	{"n128-light", 128, []int{1, 2, 3, 4, 13}},
	{"n128-medium", 128, []int{1, 2, 3, 4, 11, 12, 13}},
	{"n65536-light", 65536, []int{1, 2, 3, 4, 13}},
	{"n65536-medium", 65536, []int{1, 2, 3, 4, 7, 13}},
	{"n65536-high", 65536, []int{1, 2, 3, 4, 7, 8, 11, 12, 13}},
	{"n1m-light", 1 << 20, []int{1, 2, 3, 4, 13}},
	{"n1m-medium", 1 << 20, []int{1, 2, 3, 4, 7, 13}},
	{"n1m-high", 1 << 20, []int{1, 2, 3, 4, 7, 8, 11, 12, 13}},
}

// newPair builds a lane group and 64 shadow hwfast models for one variant.
func newPair(t *testing.T, n int, tests []int) (*hwslice.Group, [64]*hwfast.State) {
	t.Helper()
	g, err := hwslice.New(n, tests, nist.RecommendedParams(n))
	if err != nil {
		t.Fatal(err)
	}
	var shadows [64]*hwfast.State
	for l := range shadows {
		st, err := hwfast.New(n, tests, nist.RecommendedParams(n))
		if err != nil {
			t.Fatal(err)
		}
		shadows[l] = st
	}
	return g, shadows
}

// absorb transposes one lane-major tile into the group and feeds the same
// words to the attached lanes' shadows.
func absorb(t *testing.T, g *hwslice.Group, shadows *[64]*hwfast.State, tile *[64]uint64) {
	t.Helper()
	active := g.Active()
	for l := 0; l < 64; l++ {
		if active>>uint(l)&1 == 0 {
			continue
		}
		if err := shadows[l].ClockWord(tile[l], 64); err != nil {
			t.Fatalf("shadow lane %d: %v", l, err)
		}
	}
	if err := g.AbsorbTile(tile); err != nil {
		t.Fatalf("AbsorbTile: %v", err)
	}
}

func compareLane(t *testing.T, g *hwslice.Group, sh *hwfast.State, lane int, ctx string) {
	t.Helper()
	var wsG, wsS hwfast.WordStats
	g.ExtractLane(lane, &wsG)
	sh.ExportWordStats(&wsS)
	if !reflect.DeepEqual(wsG, wsS) {
		t.Fatalf("%s lane %d: sliced state diverges from hwfast:\nslice: %+v\nfast:  %+v",
			ctx, lane, wsG, wsS)
	}
}

// TestGroupMatchesHWFastPerTile is the core differential proof: 64 random
// streams per variant, extracted state compared against per-lane internal
// hwfast ingest at every tile boundary (full-density for the small
// designs, sampled lanes plus periodic full sweeps for the megabit ones).
func TestGroupMatchesHWFastPerTile(t *testing.T) {
	for _, tc := range variants {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.n > 65536 && testing.Short() {
				t.Skip("megabit variant skipped in -short")
			}
			g, shadows := newPair(t, tc.n, tc.tests)
			for l := 0; l < 64; l++ {
				if err := g.Attach(l); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(int64(tc.n) + int64(len(tc.tests))))
			tiles := tc.n / 64
			full := tc.n <= 65536
			for k := 0; k < tiles; k++ {
				var tile [64]uint64
				for l := range tile {
					tile[l] = rng.Uint64()
				}
				absorb(t, g, &shadows, &tile)
				if full || k%256 == 255 || k == tiles-1 {
					for l := 0; l < 64; l++ {
						compareLane(t, g, shadows[l], l, tc.name)
					}
				} else {
					compareLane(t, g, shadows[k%64], k%64, tc.name)
				}
			}
			if g.Off() != tc.n {
				t.Fatalf("group off = %d, want %d", g.Off(), tc.n)
			}
		})
	}
}

// TestGroupStructuredPatterns sweeps run- and boundary-heavy inputs: every
// repeated byte value, single set bits, saturated and alternating words —
// the cases that stress the carry-save underflow paths and the longest-run
// block seams.
func TestGroupStructuredPatterns(t *testing.T) {
	patterns := make([]uint64, 0, 256+64+4)
	for b := 0; b < 256; b++ {
		w := uint64(b)
		w |= w << 8
		w |= w << 16
		w |= w << 32
		patterns = append(patterns, w)
	}
	for i := 0; i < 64; i++ {
		patterns = append(patterns, 1<<uint(i))
	}
	patterns = append(patterns, 0, ^uint64(0), 0xAAAAAAAAAAAAAAAA, 0x5555555555555555)

	for _, tc := range variants[:2] { // the n=128 designs: 2 tiles, exhaustive density
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for start := 0; start < len(patterns); start += 64 {
				g, shadows := newPair(t, tc.n, tc.tests)
				for l := 0; l < 64; l++ {
					if err := g.Attach(l); err != nil {
						t.Fatal(err)
					}
				}
				for k := 0; k < tc.n/64; k++ {
					var tile [64]uint64
					for l := range tile {
						p := patterns[(start+l)%len(patterns)]
						if k%2 == 1 {
							p = ^p // flip alternate tiles to cross seams both ways
						}
						tile[l] = p
					}
					absorb(t, g, &shadows, &tile)
					for l := 0; l < 64; l++ {
						compareLane(t, g, shadows[l], l, tc.name)
					}
				}
			}
		})
	}
}

// TestGroupLaneEviction detaches lanes mid-sequence and proves both sides
// of the contract: the evicted lane's extracted state matches its shadow at
// the detach point, and the surviving 63 lanes are undisturbed through the
// end of the sequence. A rollover then reattaches the evicted lanes and
// runs a second sequence to prove stale counter bits were cleared.
func TestGroupLaneEviction(t *testing.T) {
	tc := variants[4] // n65536-high
	if testing.Short() {
		tc = variants[1] // n128-medium
	}
	g, shadows := newPair(t, tc.n, tc.tests)
	for l := 0; l < 64; l++ {
		if err := g.Attach(l); err != nil {
			t.Fatal(err)
		}
	}
	tiles := tc.n / 64
	evictAt := map[int]int{ // lane -> tile boundary after which it leaves
		7:  0,
		11: 1,
		63: tiles / 2,
		0:  tiles - 1,
	}
	rng := rand.New(rand.NewSource(99))
	for k := 0; k < tiles; k++ {
		var tile [64]uint64
		for l := range tile {
			tile[l] = rng.Uint64()
		}
		absorb(t, g, &shadows, &tile)
		for lane, at := range evictAt {
			if at != k {
				continue
			}
			compareLane(t, g, shadows[lane], lane, "pre-eviction")
			g.Detach(lane)
		}
	}
	for l := 0; l < 64; l++ {
		if _, evicted := evictAt[l]; evicted {
			continue
		}
		compareLane(t, g, shadows[l], l, "survivor")
	}
	if g.Lanes() != 64-len(evictAt) {
		t.Fatalf("Lanes() = %d, want %d", g.Lanes(), 64-len(evictAt))
	}

	// Second sequence: rollover, reattach, everything must start clean.
	g.Rollover()
	for lane := range evictAt {
		if err := g.Attach(lane); err != nil {
			t.Fatalf("reattach lane %d: %v", lane, err)
		}
	}
	for l := range shadows {
		shadows[l].Reset()
	}
	for k := 0; k < tiles; k++ {
		var tile [64]uint64
		for l := range tile {
			tile[l] = rng.Uint64()
		}
		absorb(t, g, &shadows, &tile)
	}
	for l := 0; l < 64; l++ {
		compareLane(t, g, shadows[l], l, "post-rollover")
	}
}

// TestGroupHandBackToHWFast is the end-to-end lazy-de-transposition proof
// at the model level: a stream whose sliceable engines ran in the lane
// group (residual engines live on its own external-mode hwfast) must
// finish with state identical to pure internal ingest — including the
// template and serial banks the group never touches.
func TestGroupHandBackToHWFast(t *testing.T) {
	for _, tc := range variants {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.n > 65536 && testing.Short() {
				t.Skip("megabit variant skipped in -short")
			}
			p := nist.RecommendedParams(tc.n)
			tiles := tc.n / 64
			for _, handoff := range []int{1, tiles / 2, tiles - 1} {
				if handoff < 1 {
					continue
				}
				g, err := hwslice.New(tc.n, tc.tests, p)
				if err != nil {
					t.Fatal(err)
				}
				lane := 37
				if err := g.Attach(lane); err != nil {
					t.Fatal(err)
				}
				ref, err := hwfast.New(tc.n, tc.tests, p)
				if err != nil {
					t.Fatal(err)
				}
				ext, err := hwfast.New(tc.n, tc.tests, p)
				if err != nil {
					t.Fatal(err)
				}
				ext.SetExternal(true)
				rng := rand.New(rand.NewSource(int64(tc.n) ^ int64(handoff)))
				var ws hwfast.WordStats
				for k := 0; k < tiles; k++ {
					w := rng.Uint64()
					if err := ref.ClockWord(w, 64); err != nil {
						t.Fatal(err)
					}
					if k == handoff {
						g.ExtractLane(lane, &ws)
						if err := ext.LoadWordStats(&ws); err != nil {
							t.Fatalf("%s handoff %d: %v", tc.name, handoff, err)
						}
					}
					if err := ext.ClockWord(w, 64); err != nil {
						t.Fatal(err)
					}
					if k < handoff {
						var tile [64]uint64
						tile[lane] = w
						if err := g.AbsorbTile(&tile); err != nil {
							t.Fatal(err)
						}
					}
				}
				var wsRef, wsExt hwfast.WordStats
				ref.ExportWordStats(&wsRef)
				ext.ExportWordStats(&wsExt)
				if !reflect.DeepEqual(wsRef, wsExt) {
					t.Fatalf("%s handoff %d: final state diverges:\nref: %+v\next: %+v",
						tc.name, handoff, wsRef, wsExt)
				}
				if has(tc.tests, 11) || has(tc.tests, 12) {
					for i := 0; i < 3; i++ {
						if !reflect.DeepEqual(ref.SerialCounts(i), ext.SerialCounts(i)) {
							t.Fatalf("%s handoff %d: serial bank %d diverges", tc.name, handoff, i)
						}
					}
				}
				if has(tc.tests, 7) && !reflect.DeepEqual(ref.NonOverlapBank(), ext.NonOverlapBank()) {
					t.Fatalf("%s handoff %d: non-overlapping bank diverges", tc.name, handoff)
				}
				if has(tc.tests, 8) && !reflect.DeepEqual(ref.OverlapClasses(), ext.OverlapClasses()) {
					t.Fatalf("%s handoff %d: overlapping classes diverge", tc.name, handoff)
				}
			}
		})
	}
}

func has(tests []int, id int) bool {
	for _, t := range tests {
		if t == id {
			return true
		}
	}
	return false
}

func TestGroupValidation(t *testing.T) {
	p := nist.RecommendedParams(128)
	if _, err := hwslice.New(100, []int{1}, p); err == nil {
		t.Fatal("accepted n not a multiple of 64")
	}
	if _, err := hwslice.New(0, []int{1}, p); err == nil {
		t.Fatal("accepted n = 0")
	}
	g, err := hwslice.New(128, []int{1, 2, 3, 4, 13}, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(64); err == nil {
		t.Fatal("accepted lane 64")
	}
	if err := g.Attach(-1); err == nil {
		t.Fatal("accepted lane -1")
	}
	if err := g.Attach(5); err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(5); err == nil {
		t.Fatal("accepted duplicate lane")
	}
	var tile [64]uint64
	if err := g.AbsorbTile(&tile); err != nil {
		t.Fatal(err)
	}
	if err := g.Attach(6); err == nil {
		t.Fatal("accepted mid-sequence attach")
	}
	if err := g.AbsorbTile(&tile); err != nil {
		t.Fatal(err)
	}
	if err := g.AbsorbTile(&tile); err == nil {
		t.Fatal("accepted tile past sequence end")
	}
	g.Reset()
	if g.Off() != 0 || g.Active() != 0 || g.Lanes() != 0 {
		t.Fatal("Reset left state behind")
	}
	if err := g.Attach(6); err != nil {
		t.Fatalf("attach after Reset: %v", err)
	}
}

// FuzzSliceEquivalence drives a ragged lane population over an n=128
// design from fuzz-chosen bytes and cross-checks every attached lane
// against internal hwfast ingest at both tile boundaries.
func FuzzSliceEquivalence(f *testing.F) {
	f.Add(uint8(0), uint64(0xFFFFFFFFFFFFFFFF), int64(1))
	f.Add(uint8(1), uint64(0x8000000000000001), int64(2))
	f.Add(uint8(1), uint64(0), int64(3))
	f.Fuzz(func(t *testing.T, variant uint8, laneMask uint64, seed int64) {
		tc := variants[int(variant)%2]
		if laneMask == 0 {
			laneMask = 1
		}
		g, err := hwslice.New(tc.n, tc.tests, nist.RecommendedParams(tc.n))
		if err != nil {
			t.Fatal(err)
		}
		var shadows [64]*hwfast.State
		for l := 0; l < 64; l++ {
			if laneMask>>uint(l)&1 == 0 {
				continue
			}
			if err := g.Attach(l); err != nil {
				t.Fatal(err)
			}
			st, err := hwfast.New(tc.n, tc.tests, nist.RecommendedParams(tc.n))
			if err != nil {
				t.Fatal(err)
			}
			shadows[l] = st
		}
		rng := rand.New(rand.NewSource(seed))
		var ws1, ws2 hwfast.WordStats
		for k := 0; k < tc.n/64; k++ {
			var tile [64]uint64
			for l := range tile {
				tile[l] = rng.Uint64()
			}
			for l := 0; l < 64; l++ {
				if shadows[l] == nil {
					continue
				}
				if err := shadows[l].ClockWord(tile[l], 64); err != nil {
					t.Fatal(err)
				}
			}
			if err := g.AbsorbTile(&tile); err != nil {
				t.Fatal(err)
			}
			for l := 0; l < 64; l++ {
				if shadows[l] == nil {
					continue
				}
				g.ExtractLane(l, &ws1)
				shadows[l].ExportWordStats(&ws2)
				if !reflect.DeepEqual(ws1, ws2) {
					t.Fatalf("tile %d lane %d: %+v != %+v", k, l, ws1, ws2)
				}
			}
		}
	})
}
