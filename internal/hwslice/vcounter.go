package hwslice

import "math/bits"

// vcounter is a carry-save "vertical" counter bank: 64 independent
// unsigned counters, one per bit lane, stored transposed — planes[p] holds
// bit p of every lane's count. One add or saturating decrement advances all
// 64 lanes in O(carry-chain) word operations, which is what makes the
// frequency, runs, cusum and longest-run statistics word-parallel across
// streams. Every bit column ripples independently, so lanes never
// interfere: evicting a stream from a lane group freezes its column
// without touching the other 63.
type vcounter struct {
	planes []uint64
	// top is a high-water mark: planes[top:] are known zero, so decrements
	// and copies stop early. It only grows (or resets with zero).
	top int
}

// newVCounter sizes the bank for counts in [0, maxValue]. Exceeding
// maxValue is a sizing bug and panics on the plane index — the engines size
// every counter from the design parameters, so the bound is structural.
func newVCounter(maxValue int) vcounter {
	return vcounter{planes: make([]uint64, bits.Len(uint(maxValue)))}
}

// add increments the counters of the lanes in mask.
func (c *vcounter) add(mask uint64) {
	i := 0
	for mask != 0 {
		carry := c.planes[i] & mask
		c.planes[i] ^= mask
		mask = carry
		i++
	}
	if i > c.top {
		c.top = i
	}
}

// decFloor decrements the counters of the lanes in mask, saturating at
// zero, and returns the mask of lanes that were already zero (the
// "underflow" lanes, left at zero). The borrow ripples optimistically: a
// lane at zero flips every plane bit on the way through and its surviving
// borrow identifies it, after which the wrapped bits are cleared.
func (c *vcounter) decFloor(mask uint64) (under uint64) {
	borrow := mask
	for i := 0; i < c.top && borrow != 0; i++ {
		next := borrow &^ c.planes[i]
		c.planes[i] ^= borrow
		borrow = next
	}
	if borrow != 0 {
		for i := 0; i < c.top; i++ {
			c.planes[i] &^= borrow
		}
	}
	return borrow
}

// loadMasked copies src's count into c for the lanes in mask, leaving the
// other lanes untouched. Both counters must be sized identically (the
// longest-run engine pairs run and block-max counters of the same width).
func (c *vcounter) loadMasked(src *vcounter, mask uint64) {
	n := c.top
	if src.top > n {
		n = src.top
	}
	for p := 0; p < n; p++ {
		c.planes[p] = c.planes[p]&^mask | src.planes[p]&mask
	}
	if src.top > c.top {
		c.top = src.top
	}
}

// get reads one lane's count.
func (c *vcounter) get(lane int) uint64 {
	var v uint64
	for p := 0; p < c.top; p++ {
		v |= c.planes[p] >> uint(lane) & 1 << uint(p)
	}
	return v
}

// zero clears every lane.
func (c *vcounter) zero() {
	for p := 0; p < c.top; p++ {
		c.planes[p] = 0
	}
	c.top = 0
}
