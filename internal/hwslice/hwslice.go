// Package hwslice is the bit-sliced (transposed) ingest engine: it advances
// the four word-parallelizable statistics of up to 64 streams at once by
// operating on 64-bit tiles — lane-major words in, one transpose
// (bitstream.Transpose64) inside, vertical carry-save arithmetic over the
// time-major form where word t of a tile carries bit t of every lane.
//
// The sliceable subset is exactly the engines hwfast can freeze in external
// mode: the cumulative-sums walk with its extrema (tests 1, 3, 13 inputs),
// the runs counter (test 3), block frequency (test 2) and longest run of
// ones (test 4). Two engines implement it behind one Group API:
//
//   - The generic engine (this file) reformulates each statistic over
//     carry-save vertical counters (vcounter), stepping bit by bit:
//     the walk keeps non-negative distances dMin = s−sMin and dMax = sMax−s
//     whose saturating-decrement underflow masks feed the monotone extrema
//     counters; runs adds per-step transition masks; block frequency and
//     longest run copy plane snapshots into per-block banks at block
//     boundaries. It handles every tile-granular design, including block
//     lengths that straddle tile boundaries.
//   - The fast engine (fast.go) is selected by New when the design's block
//     lengths are tile-aligned (n, BlockFrequencyM, LongestRunM all
//     multiples of 64 and n ≤ 2^20 — every standard design of 65536 bits
//     and up). It hoists per-bit work to per-tile work: carry-save ones
//     accumulation, a near/far lane split for the walk, horizontal
//     POPCNT-based runs and block frequency, and vertical threshold
//     classification for longest run. Same statistics, same extraction
//     format, an order of magnitude less work per bit.
//
// The residual per-stream engines (templates, serial) are NOT computed
// here: callers keep the original lane-major words and feed them to each
// stream's own hwfast model in external mode ("lazy de-transposition" —
// transposed words are never reconstructed). ExtractLane hands a lane's
// sliceable state back as hwfast.WordStats, bit-exact with what internal
// ingest of the same prefix would hold, so a stream can leave the group at
// any tile boundary and resume serially.
//
// hwslice is pure word arithmetic over caller-supplied tiles — no clocks,
// no randomness, no map iteration — and carries the repository's
// determinism contract. It deliberately does not carry //trnglint:bus16:
// it models no MSP430-visible registers; the 16-bit bus discipline applies
// to the structural simulator and firmware layers it is differentially
// tested against, not to this host-side engine.
//
//trnglint:deterministic
package hwslice

import (
	"fmt"
	"math/bits"

	"repro/internal/bitstream"
	"repro/internal/hwfast"
	"repro/internal/nist"
)

// Group advances the sliceable statistics of up to 64 streams over one
// shared design (n bits, test subset, parameters). Lanes attach at a
// sequence boundary (offset zero) and may detach at any tile boundary;
// detached lanes' stale counter bits are inert — every vertical counter
// column ripples independently — and are cleared at the next Rollover.
type Group struct {
	n      int
	off    int    // bits absorbed in the current sequence (multiple of 64)
	active uint64 // mask of attached lanes

	f *fastGroup // tile-rate engine; nil means the generic path below

	tw  [64]uint64    // time-major scratch for the generic path
	one [1][64]uint64 // single-tile burst scratch for the fast path

	// cumulative-sums walk (always present, like hwfast's ingestWalk):
	// distances to the extrema plus monotone extrema counters.
	dMin, dMax         vcounter // s−sMin, sMax−s
	minDrops, maxRises vcounter // −sMin, sMax

	hasRuns bool
	runs    vcounter
	prevT   uint64 // previous step's lane bits (seam for transition masks)

	hasBF    bool
	bfM      int
	bfPlanes int
	bfEps    vcounter
	bfBank   []uint64 // n/bfM completed blocks × bfPlanes planes
	bfCur    int      // completed blocks this sequence
	bfFill   int      // bits into the current block

	hasLR      bool
	lrM        int
	lrLo, lrHi int
	lrPlanes   int
	lrMax      vcounter // m: longest ones run in the in-flight block
	lrDiff     vcounter // m − r, r = ones run ending at the last bit
	lrBank     []uint64 // n/lrM completed blocks × lrPlanes planes
	lrCur      int
	lrPos      int
}

// New builds a lane group for a design of n bits implementing the given
// SP800-22 test subset with parameters p — the same inputs hwfast.New
// takes, restricted to tile granularity (n must be a multiple of 64).
func New(n int, tests []int, p nist.Params) (*Group, error) {
	if n < 64 || n%64 != 0 {
		return nil, fmt.Errorf("hwslice: sequence length %d is not a positive multiple of 64", n)
	}
	has := func(id int) bool {
		for _, t := range tests {
			if t == id {
				return true
			}
		}
		return false
	}
	g := &Group{n: n, hasRuns: has(3)}
	var lrLo, lrHi int
	if has(2) {
		if p.BlockFrequencyM < 1 || n%p.BlockFrequencyM != 0 {
			return nil, fmt.Errorf("hwslice: block frequency M=%d does not divide n=%d", p.BlockFrequencyM, n)
		}
		g.hasBF = true
		g.bfM = p.BlockFrequencyM
	}
	if has(4) {
		lo, hi, err := nist.LongestRunClassBounds(p.LongestRunM)
		if err != nil {
			return nil, fmt.Errorf("hwslice: %w", err)
		}
		if p.LongestRunM < 1 || n%p.LongestRunM != 0 {
			return nil, fmt.Errorf("hwslice: longest-run M=%d does not divide n=%d", p.LongestRunM, n)
		}
		g.hasLR = true
		g.lrM = p.LongestRunM
		lrLo, lrHi = lo, hi
		g.lrLo, g.lrHi = lo, hi
	}

	if f := newFast(n, g.hasRuns, g.hasBF, g.bfM, g.hasLR, g.lrM, lrLo, lrHi); f != nil {
		g.f = f
		return g, nil
	}

	g.dMin = newVCounter(2 * n)
	g.dMax = newVCounter(2 * n)
	g.minDrops = newVCounter(n)
	g.maxRises = newVCounter(n)
	if g.hasRuns {
		g.runs = newVCounter(n)
	}
	if g.hasBF {
		g.bfPlanes = bits.Len(uint(g.bfM))
		g.bfEps = newVCounter(g.bfM)
		g.bfBank = make([]uint64, n/g.bfM*g.bfPlanes)
	}
	if g.hasLR {
		g.lrPlanes = bits.Len(uint(g.lrM))
		g.lrMax = newVCounter(g.lrM)
		g.lrDiff = newVCounter(g.lrM)
		g.lrBank = make([]uint64, n/g.lrM*g.lrPlanes)
	}
	return g, nil
}

// N returns the design's sequence length in bits.
//
//trnglint:hotpath
func (g *Group) N() int { return g.n }

// Off returns the bit offset into the current sequence (a tile multiple).
//
//trnglint:hotpath
func (g *Group) Off() int { return g.off }

// Active returns the mask of attached lanes.
func (g *Group) Active() uint64 { return g.active }

// Lanes returns the number of attached lanes.
func (g *Group) Lanes() int { return bits.OnesCount64(g.active) }

// Attach claims a lane for a new stream. Lanes join only at a sequence
// boundary — mid-sequence the counters already encode a prefix the
// newcomer never produced.
func (g *Group) Attach(lane int) error {
	if lane < 0 || lane > 63 {
		return fmt.Errorf("hwslice: lane %d out of range", lane)
	}
	if g.off != 0 {
		return fmt.Errorf("hwslice: lane %d cannot attach at bit offset %d", lane, g.off)
	}
	if g.active>>uint(lane)&1 != 0 {
		return fmt.Errorf("hwslice: lane %d already attached", lane)
	}
	g.active |= 1 << uint(lane)
	return nil
}

// Detach releases a lane at any tile boundary. The lane's counter bits go
// stale but stay inert until Rollover clears them; callers wanting the
// lane's final statistics must ExtractLane before detaching.
func (g *Group) Detach(lane int) {
	g.active &^= 1 << uint(lane)
}

// AbsorbTile advances every attached lane by 64 bits. lanes is lane-major:
// lanes[l] carries lane l's next 64 chronological bits, LSB first — the
// words exactly as each stream produced them. The engine transposes
// internally; inactive lanes' bits are ignored.
//
//trnglint:hotpath
func (g *Group) AbsorbTile(lanes *[64]uint64) error {
	if g.off+64 > g.n {
		return fmt.Errorf("hwslice: tile overruns sequence (%d of %d bits)", g.off, g.n) //trnglint:alloc argument-validation error path, never taken at line rate
	}
	if g.f != nil {
		g.one[0] = *lanes
		g.f.absorbBurst(g.one[:], g.off)
		g.off += 64
		return nil
	}
	g.tw = *lanes
	bitstream.Transpose64(&g.tw)
	tw := &g.tw
	a := g.active
	for t := 0; t < 64; t++ {
		w := tw[t] & a
		z := ^tw[t] & a

		// Walk: ones raise dMin and erode dMax (underflow = new maximum),
		// zeros mirror. The four counters partition by bit value, so the
		// in-step order is immaterial.
		g.dMin.add(w)
		g.maxRises.add(g.dMax.decFloor(w))
		g.dMax.add(z)
		g.minDrops.add(g.dMin.decFloor(z))

		if g.hasRuns {
			if g.off == 0 && t == 0 {
				g.runs.add(a)
			} else {
				g.runs.add((tw[t] ^ g.prevT) & a)
			}
			g.prevT = tw[t]
		}

		if g.hasBF {
			g.bfEps.add(w)
			g.bfFill++
			if g.bfFill == g.bfM {
				base := g.bfCur * g.bfPlanes
				for p := 0; p < g.bfPlanes; p++ {
					var v uint64
					if p < g.bfEps.top {
						v = g.bfEps.planes[p]
					}
					g.bfBank[base+p] = v
				}
				g.bfEps.zero()
				g.bfCur++
				g.bfFill = 0
			}
		}

		if g.hasLR {
			// One-bit: r++. diff==0 means r was already the block max, so
			// the underflow mask is exactly the set of lanes whose maximum
			// grows. Zero-bit: r drops to zero, diff returns to m.
			g.lrMax.add(g.lrDiff.decFloor(w))
			g.lrDiff.loadMasked(&g.lrMax, z)
			g.lrPos++
			if g.lrPos == g.lrM {
				base := g.lrCur * g.lrPlanes
				for p := 0; p < g.lrPlanes; p++ {
					var v uint64
					if p < g.lrMax.top {
						v = g.lrMax.planes[p]
					}
					g.lrBank[base+p] = v
				}
				g.lrMax.zero()
				g.lrDiff.zero()
				g.lrCur++
				g.lrPos = 0
			}
		}
	}
	g.off += 64
	return nil
}

// AbsorbTiles absorbs a burst of consecutive tiles in one call —
// equivalent to calling AbsorbTile on each in order, but the fast engine
// runs the burst lane-outer, keeping every lane's counters in registers
// across the whole burst instead of reloading them once per tile. Callers
// that buffer more than one tile per lane (the fleet's lane groups) get
// most of the engine's throughput headroom from this entry point.
//
//trnglint:hotpath
func (g *Group) AbsorbTiles(tiles [][64]uint64) error {
	if g.off+64*len(tiles) > g.n {
		return fmt.Errorf("hwslice: burst of %d tiles overruns sequence (%d of %d bits)", len(tiles), g.off, g.n) //trnglint:alloc argument-validation error path, never taken at line rate
	}
	if g.f != nil {
		g.f.absorbBurst(tiles, g.off)
		g.off += 64 * len(tiles)
		return nil
	}
	for i := range tiles {
		if err := g.AbsorbTile(&tiles[i]); err != nil {
			return err
		}
	}
	return nil
}

// ExtractLane fills ws with one lane's sliceable-engine state at the
// current offset, in exactly the form hwfast.ExportWordStats would produce
// after internal ingest of the same bits — ready for
// hwfast.LoadWordStats. Bank slices are resized in place.
//
//trnglint:hotpath
func (g *Group) ExtractLane(lane int, ws *hwfast.WordStats) {
	if g.f != nil {
		g.f.extractLane(lane, g.off, ws)
		return
	}
	ws.Bits = g.off
	drops := int64(g.minDrops.get(lane))
	ws.S = int64(g.dMin.get(lane)) - drops
	ws.SMin = -drops
	ws.SMax = int64(g.maxRises.get(lane))

	ws.Runs, ws.Prev = 0, 0
	if g.hasRuns {
		ws.Runs = g.runs.get(lane)
		if g.off > 0 {
			ws.Prev = byte(g.prevT >> uint(lane) & 1)
		}
	}

	ws.BFEps = 0
	ws.BFBank = ws.BFBank[:0]
	if g.hasBF {
		ws.BFEps = g.bfEps.get(lane)
		nBlocks := g.n / g.bfM
		for b := 0; b < nBlocks; b++ {
			var v uint64
			if b < g.bfCur {
				base := b * g.bfPlanes
				for p := 0; p < g.bfPlanes; p++ {
					v |= g.bfBank[base+p] >> uint(lane) & 1 << uint(p)
				}
			}
			ws.BFBank = append(ws.BFBank, v) //trnglint:alloc recycled WordStats backing reaches steady-state capacity after the first extraction
		}
	}

	ws.LRRun, ws.LRBlkMax = 0, 0
	ws.LRClasses = ws.LRClasses[:0]
	if g.hasLR {
		m := int(g.lrMax.get(lane))
		ws.LRBlkMax = m
		ws.LRRun = m - int(g.lrDiff.get(lane))
		for c := 0; c <= g.lrHi-g.lrLo; c++ {
			ws.LRClasses = append(ws.LRClasses, 0) //trnglint:alloc recycled WordStats backing reaches steady-state capacity after the first extraction
		}
		for b := 0; b < g.lrCur; b++ {
			base := b * g.lrPlanes
			longest := 0
			for p := 0; p < g.lrPlanes; p++ {
				longest |= int(g.lrBank[base+p]>>uint(lane)&1) << uint(p)
			}
			class := 0
			switch {
			case longest <= g.lrLo:
				class = 0
			case longest >= g.lrHi:
				class = g.lrHi - g.lrLo
			default:
				class = longest - g.lrLo
			}
			ws.LRClasses[class]++
		}
	}
}

// Rollover rearms the group for the next sequence: every counter is
// cleared (including any stale bits left by mid-sequence detaches) and the
// offset returns to zero. Attached lanes stay attached. Call it after the
// final tile of a sequence has been absorbed and every lane extracted.
//
//trnglint:hotpath
func (g *Group) Rollover() {
	g.off = 0
	if g.f != nil {
		g.f.rollover()
		return
	}
	g.dMin.zero()
	g.dMax.zero()
	g.minDrops.zero()
	g.maxRises.zero()
	if g.hasRuns {
		g.runs.zero()
		g.prevT = 0
	}
	if g.hasBF {
		g.bfEps.zero()
		g.bfCur, g.bfFill = 0, 0
	}
	if g.hasLR {
		g.lrMax.zero()
		g.lrDiff.zero()
		g.lrCur, g.lrPos = 0, 0
	}
}

// Reset is Rollover plus detaching every lane — the state a recycled group
// must be in before adopting new streams.
func (g *Group) Reset() {
	g.Rollover()
	g.active = 0
}
