// Package online turns the platform's fixed-window per-sequence verdicts
// into continuous qualification: sliding-window variants of the
// word-parallelizable test statistics (frequency, block frequency, runs,
// longest run of ones, cumulative sums) that update with O(1) amortized
// work per bit, fold into one exponentially-decayed per-stream anomaly
// score, and report the bit position at which a drifting source was
// detected.
//
// # Relation to the fixed-window engines
//
// A Tracker maintains, over the last Window bits of a stream, exactly the
// raw statistics internal/hwfast accumulates over one N-bit sequence:
//
//   - ones count (test 1, frequency) — additive over the window.
//   - runs counter (test 3) — window-interior transitions + 1, the same
//     transitions+1 identity the hardware runs counter implements.
//   - block-frequency bank (test 2) — the last Window/M completed M-bit
//     blocks' ones counts, folded into Σ(2ε−M)².
//   - longest-run classes (test 4) — class counters over the last
//     Window/M completed M-bit blocks, run tracking restarting at block
//     boundaries exactly as in hardware.
//   - cumulative-sums extrema (test 13) — the window-relative random-walk
//     range, anchored at 0 on the window's first bit like a fresh
//     sequence's S_MIN/S_MAX registers.
//
// The differential contract, proven by this package's test suite across
// all eight Table III design points: with Window = N and the tracker fed
// the same bits as the monitor, every one of these statistics equals the
// corresponding hwfast register image at every sequence boundary. Between
// boundaries the window spans two sequences — that is the point: defects
// that straddle a boundary are visible immediately instead of after the
// next full sequence.
//
// # Mechanics
//
// Ingest is chunked: bits accumulate into 64-bit chunks, and each
// completed chunk contributes a constant-size summary (ones, interior
// transitions, boundary bits, walk delta and intra-chunk prefix extrema
// from an 8-entry-per-chunk byte-table pass) to a ring of Window/64
// summaries. Window ones and transitions update additively on chunk
// append/evict; block statistics slide at block granularity through their
// own rings; the window walk extrema come from monotonic deques over
// per-chunk extrema candidates, so even the 2^20-bit designs pay O(1)
// amortized per chunk rather than a window rescan.
//
// # Scoring and detection
//
// Once the window is full, every chunk commit converts the five
// statistics to approximate standard scores under the ideal-source null
// (see DESIGN.md §6.3 for the formulas and constants), takes the worst
// absolute score as the instantaneous anomaly, and folds it into an
// exponentially-weighted moving average with half-life HalfLifeBits. The
// tracker latches an alarm — recording DetectedAt, the absolute bit
// position — after the score holds at or above Threshold for Confirm
// consecutive chunk commits. Latching is one-way until Reset, mirroring
// the supervisor's AlarmPolicy contract.
//
// The package is marked //trnglint:deterministic: a Tracker's entire
// state, scores included, is a pure function of the bits pushed since
// Reset, which is what lets the fleet's replay harness reproduce any
// stream's anomaly trajectory bit-for-bit.
//
//trnglint:deterministic
package online
