package online

import "math"

// Standardization constants for the cumulative-sums range statistic: for
// an ideal ±1 walk over W steps, R = (S_MAX − S_MIN)/√W converges to the
// range of a standard Brownian motion on [0,1], whose mean is √(8/π) and
// whose variance is 4·ln2 − 8/π. The normal approximation is crude in
// the tails but monotone in R, which is all a ranked anomaly score needs;
// DESIGN.md §6.3 derives both constants.
var (
	cusumMean = math.Sqrt(8 / math.Pi)
	cusumSD   = math.Sqrt(4*math.Ln2 - 8/math.Pi)
)

// updateScore converts the window statistics to standard scores, folds
// the worst into the EWMA anomaly score, and runs the latch logic. Called
// on every chunk commit once the window is full.
func (t *Tracker) updateScore() {
	w := float64(t.cfg.Window)

	// Test 1 (frequency): ones ~ Binomial(W, ½), so 2·ones − W has mean 0
	// and variance W.
	t.scores.Freq = float64(2*t.ones-int64(t.cfg.Window)) / math.Sqrt(w)

	// Test 13 (cumulative sums): window-relative walk range against the
	// Brownian-range null.
	_, mn, mx := t.WindowWalk()
	r := float64(mx-mn) / math.Sqrt(w)
	t.scores.Cusum = (r - cusumMean) / cusumSD

	worst := math.Abs(t.scores.Freq)
	if a := math.Abs(t.scores.Cusum); a > worst {
		worst = a
	}

	// Test 3 (runs): interior transitions ~ Binomial(W−1, ½).
	if t.hasRuns {
		t.scores.Runs = float64(2*t.trans-int64(t.cfg.Window-1)) / math.Sqrt(w-1)
		if a := math.Abs(t.scores.Runs); a > worst {
			worst = a
		}
	}

	// Test 2 (block frequency): Σ(2ε−M)²/M ~ χ² with one degree of
	// freedom per block; standardize by the χ² mean k and SD √(2k).
	if t.hasBF {
		chi := float64(t.bfD) / float64(t.bfM)
		t.scores.BlockFreq = (chi - t.bfBlocks) / math.Sqrt(2*t.bfBlocks)
		if a := math.Abs(t.scores.BlockFreq); a > worst {
			worst = a
		}
	}

	// Test 4 (longest run): Pearson χ² of the window class counters
	// against k·π, standardized by its df mean and √(2·df) SD.
	if t.hasLR {
		k := float64(t.lrCount)
		chi := 0.0
		for i, c := range t.lrClasses {
			e := k * t.lrProbs[i]
			d := float64(c) - e
			chi += d * d / e
		}
		t.scores.LongestRun = (chi - t.lrDF) / math.Sqrt(2*t.lrDF)
		if a := math.Abs(t.scores.LongestRun); a > worst {
			worst = a
		}
	}

	t.instant = worst
	t.score = t.decay*t.score + (1-t.decay)*worst

	if t.score >= t.cfg.Threshold {
		t.streak++
		if t.streak >= t.cfg.Confirm && !t.alarmed {
			t.alarmed = true
			t.detectedAt = t.bits
		}
	} else {
		t.streak = 0
	}
}
