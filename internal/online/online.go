package online

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/hwblock"
	"repro/internal/nist"
)

// chunkBits is the commit granularity: bits accumulate into chunks of
// this size, and all window bookkeeping (ring summaries, extrema deques,
// scoring) advances one chunk at a time. 64 matches the ingest word width
// of the fast path, so a full-width word commits exactly one chunk.
const chunkBits = 64

// Config tunes a Tracker. The zero value of every field selects a
// default derived from the design, so Config{} is a valid configuration.
type Config struct {
	// Window is the sliding-window length in bits. It must be a positive
	// multiple of 64 and of every enabled block length. 0 selects the
	// design's sequence length N, which is what makes the window
	// statistics land exactly on the fixed-window register image at
	// sequence boundaries.
	Window int
	// HalfLifeBits is the anomaly-score EWMA half-life: a score
	// contribution decays by half every HalfLifeBits ingested bits.
	// 0 selects 4×Window.
	HalfLifeBits int
	// Threshold is the score level that arms detection. 0 selects 4.0 —
	// roughly a 4σ worst-statistic excursion sustained for about a
	// half-life.
	Threshold float64
	// Confirm is how many consecutive chunk commits the score must hold
	// at or above Threshold before the alarm latches; it suppresses
	// single-chunk spikes. 0 selects 2.
	Confirm int
}

// withDefaults resolves zero fields against sequence length n.
func (c Config) withDefaults(n int) Config {
	if c.Window == 0 {
		c.Window = n
	}
	if c.HalfLifeBits == 0 {
		c.HalfLifeBits = 4 * c.Window
	}
	if c.Threshold == 0 {
		c.Threshold = 4.0
	}
	if c.Confirm == 0 {
		c.Confirm = 2
	}
	return c
}

// Scores holds the per-test standard scores from the latest scored chunk
// commit. Tests the design does not implement are NaN.
type Scores struct {
	// Freq is the frequency (monobit) z-score of the window ones count.
	Freq float64
	// BlockFreq is the normalized block-frequency χ² excess.
	BlockFreq float64
	// Runs is the z-score of the window-interior transition count.
	Runs float64
	// LongestRun is the normalized longest-run-class χ² excess.
	LongestRun float64
	// Cusum is the z-score of the window-relative random-walk range.
	Cusum float64
}

// chunkMeta is one committed chunk's constant-size window summary.
type chunkMeta struct {
	// pre is the global walk value before the chunk's first bit; cmin and
	// cmax are the global-walk prefix extrema across the chunk (pre
	// included, so chunk boundaries are always candidates).
	pre, cmin, cmax int64
	// ones and trans are the chunk's ones count and interior transition
	// count; first and last are its boundary bits, used for the seam
	// transition between adjacent chunks.
	ones, trans uint16
	first, last byte
}

// walkEntry carries eight clocks of the ±1 walk: net displacement and the
// intra-byte prefix extrema (0 included). Index bits are chronological,
// LSB first — the same table the word-level functional model uses.
type walkEntry struct{ delta, min, max int8 }

var walkTab = func() [256]walkEntry {
	var t [256]walkEntry
	for b := 0; b < 256; b++ {
		s, mn, mx := 0, 0, 0
		for i := 0; i < 8; i++ {
			if b>>uint(i)&1 == 1 {
				s++
			} else {
				s--
			}
			if s < mn {
				mn = s
			}
			if s > mx {
				mx = s
			}
		}
		t[b] = walkEntry{delta: int8(s), min: int8(mn), max: int8(mx)}
	}
	return t
}()

// minDeque is a monotonically increasing deque over (chunk sequence
// number, candidate value) pairs: the front always holds the window
// minimum among the candidates pushed and not yet expired. Maxima reuse
// it with negated values. Backed by a ring sized to the window's chunk
// count, so steady state allocates nothing.
type minDeque struct {
	seq  []int64
	val  []int64
	head int
	n    int
}

func (d *minDeque) reset() { d.head, d.n = 0, 0 }

// push appends a candidate, discarding dominated entries from the back.
func (d *minDeque) push(seq, val int64) {
	for d.n > 0 {
		b := (d.head + d.n - 1) % len(d.val)
		if d.val[b] < val {
			break
		}
		d.n--
	}
	i := (d.head + d.n) % len(d.val)
	d.seq[i], d.val[i] = seq, val
	d.n++
}

// expire drops front entries whose chunk has left the window.
func (d *minDeque) expire(oldest int64) {
	for d.n > 0 && d.seq[d.head] < oldest {
		d.head = (d.head + 1) % len(d.val)
		d.n--
	}
}

func (d *minDeque) front() int64 { return d.val[d.head] }

// Tracker is the streaming anomaly detector for one bit stream. It is
// not safe for concurrent use; in the fleet each stream's tracker lives
// on the stream's shard, exactly like its monitor. Feed bits with Push;
// read the trajectory with Score, Instant and ZScores; detection state
// with Alarmed and DetectedAt.
type Tracker struct {
	cfg   Config
	decay float64 // EWMA carry-over per chunk commit

	hasBF, hasLR, hasRuns bool

	// in-flight chunk accumulator.
	cur     uint64
	curBits int
	bits    int64 // total bits pushed since Reset

	// global random walk (never reset by the window; extrema are taken
	// window-relative, so only differences matter).
	walk     int64
	chunkSeq int64 // committed chunks since Reset

	// chunk summary ring: meta[head..head+count) are the window's chunks,
	// oldest first.
	meta  []chunkMeta
	head  int
	count int

	ones  int64 // window ones
	trans int64 // window-interior transitions (seams included)

	minDq, maxDq minDeque

	// block frequency: in-flight block plus a ring of the last
	// Window/bfM completed blocks' ones counts, folded into bfD = Σ(2ε−M)².
	bfM      int
	bfEps    uint64
	bfFill   int
	bfRing   []uint32
	bfHead   int
	bfCount  int
	bfD      int64
	bfBlocks float64 // float64(len(bfRing)), cached for scoring

	// longest run of ones: in-flight block tracker (identical semantics
	// to the hardware: runs restart at block boundaries) plus a ring of
	// class indices and the window class counters.
	lrM        int
	lrLo, lrHi int
	lrRun      int
	lrBlkMax   int
	lrPos      int
	lrRing     []uint8
	lrHead     int
	lrCount    int
	lrClasses  []uint64
	lrProbs    []float64 // null class probabilities, scaled at scoring
	lrDF       float64   // degrees of freedom, cached

	// scoring and detection.
	scores     Scores
	instant    float64
	score      float64
	streak     int
	alarmed    bool
	detectedAt int64
}

// New builds a Tracker for the given design, resolving cfg's zero fields
// against it. The enabled window statistics follow the design's test
// subset: frequency and cusum always run (they need only the walk), runs,
// block frequency and longest run only when the design implements tests
// 3, 2 and 4 respectively.
func New(design hwblock.Config, cfg Config) (*Tracker, error) {
	cfg = cfg.withDefaults(design.N)
	if cfg.Window < chunkBits || cfg.Window%chunkBits != 0 {
		return nil, fmt.Errorf("online: window %d is not a positive multiple of %d", cfg.Window, chunkBits)
	}
	if cfg.HalfLifeBits < chunkBits {
		return nil, fmt.Errorf("online: half-life %d shorter than one chunk (%d bits)", cfg.HalfLifeBits, chunkBits)
	}
	if cfg.Confirm < 1 {
		return nil, fmt.Errorf("online: confirm count %d must be at least 1", cfg.Confirm)
	}
	if cfg.Threshold <= 0 || math.IsNaN(cfg.Threshold) {
		return nil, fmt.Errorf("online: threshold %v must be positive", cfg.Threshold)
	}
	k := cfg.Window / chunkBits
	t := &Tracker{
		cfg:     cfg,
		decay:   math.Exp2(-float64(chunkBits) / float64(cfg.HalfLifeBits)),
		hasRuns: design.Has(3),
		meta:    make([]chunkMeta, k),
		minDq:   minDeque{seq: make([]int64, k), val: make([]int64, k)},
		maxDq:   minDeque{seq: make([]int64, k), val: make([]int64, k)},
	}
	if design.Has(2) {
		m := design.Params.BlockFrequencyM
		if m < 1 || cfg.Window%m != 0 {
			return nil, fmt.Errorf("online: block frequency M=%d does not divide window %d", m, cfg.Window)
		}
		t.hasBF = true
		t.bfM = m
		t.bfRing = make([]uint32, cfg.Window/m)
		t.bfBlocks = float64(cfg.Window / m)
	}
	if design.Has(4) {
		m := design.Params.LongestRunM
		lo, hi, err := nist.LongestRunClassBounds(m)
		if err != nil {
			return nil, fmt.Errorf("online: %w", err)
		}
		if cfg.Window%m != 0 {
			return nil, fmt.Errorf("online: longest run M=%d does not divide window %d", m, cfg.Window)
		}
		probs, err := nist.LongestRunClassProbs(m, lo, hi)
		if err != nil {
			return nil, fmt.Errorf("online: %w", err)
		}
		t.hasLR = true
		t.lrM = m
		t.lrLo, t.lrHi = lo, hi
		t.lrRing = make([]uint8, cfg.Window/m)
		t.lrClasses = make([]uint64, hi-lo+1)
		t.lrProbs = probs
		t.lrDF = float64(hi - lo)
	}
	t.Reset()
	return t, nil
}

// Window returns the resolved sliding-window length in bits.
func (t *Tracker) Window() int { return t.cfg.Window }

// ConfigUsed returns the fully resolved configuration (defaults applied).
func (t *Tracker) ConfigUsed() Config { return t.cfg }

// BitsSeen returns the total bits pushed since Reset.
func (t *Tracker) BitsSeen() int64 { return t.bits }

// Primed reports whether a full window has been ingested; scores are not
// produced (and the alarm cannot latch) before that.
func (t *Tracker) Primed() bool {
	return t.count == len(t.meta) && t.bits >= int64(t.cfg.Window)
}

// Score returns the exponentially-decayed anomaly score. It is 0 until
// the window first fills.
func (t *Tracker) Score() float64 { return t.score }

// Instant returns the most recent instantaneous anomaly — the worst
// absolute standard score across the enabled statistics at the last
// scored chunk commit.
func (t *Tracker) Instant() float64 { return t.instant }

// ZScores returns the per-test standard scores from the last scored
// chunk commit. Disabled tests are NaN.
func (t *Tracker) ZScores() Scores { return t.scores }

// Alarmed reports whether the anomaly alarm has latched since Reset.
func (t *Tracker) Alarmed() bool { return t.alarmed }

// DetectedAt returns the absolute bit position (BitsSeen at the latching
// chunk commit) at which the alarm latched, or -1 if it has not.
func (t *Tracker) DetectedAt() int64 {
	if !t.alarmed {
		return -1
	}
	return t.detectedAt
}

// Reset returns the tracker to its initial state, retaining allocations.
// The configuration (and therefore the resolved window) is preserved.
func (t *Tracker) Reset() {
	t.cur, t.curBits, t.bits = 0, 0, 0
	t.walk, t.chunkSeq = 0, 0
	t.head, t.count = 0, 0
	t.ones, t.trans = 0, 0
	t.minDq.reset()
	t.maxDq.reset()
	t.bfEps, t.bfFill = 0, 0
	t.bfHead, t.bfCount, t.bfD = 0, 0, 0
	t.lrRun, t.lrBlkMax, t.lrPos = 0, 0, 0
	t.lrHead, t.lrCount = 0, 0
	for i := range t.lrClasses {
		t.lrClasses[i] = 0
	}
	t.scores = Scores{Freq: math.NaN(), BlockFreq: math.NaN(), Runs: math.NaN(), LongestRun: math.NaN(), Cusum: math.NaN()}
	t.instant, t.score = 0, 0
	t.streak = 0
	t.alarmed, t.detectedAt = false, -1
}

// Push ingests nbits bits (1..64). Bit i of w is the i-th bit
// chronologically — the packing order of bitstream.Sequence and of
// hwfast.ClockWord, so monitor feed words pass straight through.
//
//trnglint:hotpath
func (t *Tracker) Push(w uint64, nbits int) {
	if nbits < 1 || nbits > 64 {
		panic(fmt.Sprintf("online: word size %d out of range [1,64]", nbits)) //trnglint:alloc argument-validation panic, never taken at line rate
	}
	v := w & lowMask(nbits)
	// Segments are chunk-aligned so the block engines are never ahead of
	// the window position when a mid-word commit scores the window.
	off := 0
	for off < nbits {
		take := nbits - off
		if rem := chunkBits - t.curBits; take > rem {
			take = rem
		}
		seg := v >> uint(off) & lowMask(take)
		if t.hasBF {
			t.ingestBF(seg, take)
		}
		if t.hasLR {
			t.ingestLR(seg, take)
		}
		t.cur |= seg << uint(t.curBits)
		t.curBits += take
		t.bits += int64(take)
		if t.curBits == chunkBits {
			t.commit()
			t.cur, t.curBits = 0, 0
		}
		off += take
	}
}

// commit folds the completed in-flight chunk into the window and, once
// the window is full, advances the anomaly score.
func (t *Tracker) commit() {
	v := t.cur
	// Chunk walk summary: one byte-table lookup per 8 bits, extrema over
	// every intra-chunk prefix (chunk start included — boundary values
	// belong to the previous chunk or to the window anchor, so keeping
	// them as candidates is always correct).
	var s, mn, mx int64
	for i := 0; i < chunkBits; i += 8 {
		e := &walkTab[byte(v>>uint(i))]
		if m := s + int64(e.min); m < mn {
			mn = m
		}
		if m := s + int64(e.max); m > mx {
			mx = m
		}
		s += int64(e.delta)
	}
	pre := t.walk
	t.walk += s

	// Evict the oldest chunk when the ring is full: its counts leave the
	// window, as does its seam transition into its (still resident)
	// successor.
	k := len(t.meta)
	if t.count == k {
		old := &t.meta[t.head]
		t.ones -= int64(old.ones)
		t.trans -= int64(old.trans)
		if t.count > 1 {
			next := &t.meta[(t.head+1)%k]
			if old.last != next.first {
				t.trans--
			}
		}
		t.head = (t.head + 1) % k
		t.count--
	}

	// Append the new chunk.
	idx := (t.head + t.count) % k
	m := &t.meta[idx]
	m.pre, m.cmin, m.cmax = pre, pre+mn, pre+mx
	m.ones = uint16(bits.OnesCount64(v))
	m.trans = uint16(bits.OnesCount64((v ^ (v >> 1)) & lowMask(chunkBits-1)))
	m.first = byte(v & 1)
	m.last = byte(v >> (chunkBits - 1))
	if t.count > 0 {
		prev := &t.meta[(idx+k-1)%k]
		if prev.last != m.first {
			t.trans++
		}
	}
	t.ones += int64(m.ones)
	t.trans += int64(m.trans)
	t.count++

	seq := t.chunkSeq
	t.chunkSeq++
	// Expire before push: the deque then never holds more than the
	// window's chunk count, which is exactly its ring capacity.
	oldest := t.chunkSeq - int64(t.count)
	t.minDq.expire(oldest)
	t.maxDq.expire(oldest)
	t.minDq.push(seq, m.cmin)
	t.maxDq.push(seq, -m.cmax)

	if t.count == k {
		t.updateScore()
	}
}

// ingestBF mirrors the hardware block-frequency engine per word, pushing
// each completed block's ones count into the sliding block ring.
func (t *Tracker) ingestBF(v uint64, nbits int) {
	off := 0
	for off < nbits {
		take := nbits - off
		if rem := t.bfM - t.bfFill; take > rem {
			take = rem
		}
		t.bfEps += uint64(bits.OnesCount64(v >> uint(off) & lowMask(take)))
		t.bfFill += take
		if t.bfFill == t.bfM {
			t.pushBFBlock(uint32(t.bfEps))
			t.bfEps, t.bfFill = 0, 0
		}
		off += take
	}
}

// pushBFBlock slides the block ring and the Σ(2ε−M)² aggregate.
func (t *Tracker) pushBFBlock(eps uint32) {
	n := len(t.bfRing)
	if t.bfCount == n {
		d := 2*int64(t.bfRing[t.bfHead]) - int64(t.bfM)
		t.bfD -= d * d
		t.bfHead = (t.bfHead + 1) % n
		t.bfCount--
	}
	t.bfRing[(t.bfHead+t.bfCount)%n] = eps
	d := 2*int64(eps) - int64(t.bfM)
	t.bfD += d * d
	t.bfCount++
}

// ingestLR mirrors the hardware longest-run engine per word (chunk
// merging, block-boundary restarts), pushing each completed block's
// class into the sliding class ring.
func (t *Tracker) ingestLR(v uint64, nbits int) {
	off := 0
	for off < nbits {
		take := nbits - off
		if rem := t.lrM - t.lrPos; take > rem {
			take = rem
		}
		seg := v >> uint(off) & lowMask(take)
		if lead := bits.TrailingZeros64(^seg); lead >= take {
			t.lrRun += take
		} else {
			if r := t.lrRun + lead; r > t.lrBlkMax {
				t.lrBlkMax = r
			}
			r := 0
			for x := seg; x != 0; x &= x >> 1 {
				r++
			}
			if r > t.lrBlkMax {
				t.lrBlkMax = r
			}
			t.lrRun = bits.LeadingZeros64(^(seg << uint(64-take)))
		}
		if t.lrRun > t.lrBlkMax {
			t.lrBlkMax = t.lrRun
		}
		t.lrPos += take
		if t.lrPos == t.lrM {
			class := 0
			switch longest := t.lrBlkMax; {
			case longest <= t.lrLo:
				class = 0
			case longest >= t.lrHi:
				class = t.lrHi - t.lrLo
			default:
				class = longest - t.lrLo
			}
			t.pushLRBlock(uint8(class))
			t.lrBlkMax, t.lrRun, t.lrPos = 0, 0, 0
		}
		off += take
	}
}

// pushLRBlock slides the class ring and the window class counters.
func (t *Tracker) pushLRBlock(class uint8) {
	n := len(t.lrRing)
	if t.lrCount == n {
		t.lrClasses[t.lrRing[t.lrHead]]--
		t.lrHead = (t.lrHead + 1) % n
		t.lrCount--
	}
	t.lrRing[(t.lrHead+t.lrCount)%n] = class
	t.lrClasses[class]++
	t.lrCount++
}

// WindowOnes returns the ones count over the current window.
func (t *Tracker) WindowOnes() int64 { return t.ones }

// WindowRuns returns the runs count over the current window: interior
// transitions + 1, the hardware runs-counter identity applied to the
// window as if it were a fresh sequence. 0 before any chunk commits.
func (t *Tracker) WindowRuns() int64 {
	if t.count == 0 {
		return 0
	}
	return t.trans + 1
}

// WindowWalk returns the window-relative cumulative-sums state: the final
// walk value and the extrema, all anchored at 0 on the window's first
// bit — the same convention as a fresh sequence's S/S_MIN/S_MAX.
func (t *Tracker) WindowWalk() (final, min, max int64) {
	if t.count == 0 {
		return 0, 0, 0
	}
	base := t.meta[t.head].pre
	final = t.walk - base
	min = 0
	if v := t.minDq.front() - base; v < 0 {
		min = v
	}
	max = 0
	if v := -t.maxDq.front() - base; v > 0 {
		max = v
	}
	return final, min, max
}

// BlockFreqD returns Σ(2ε−M)² over the window's completed
// block-frequency blocks, or -1 when the design has no test 2.
func (t *Tracker) BlockFreqD() int64 {
	if !t.hasBF {
		return -1
	}
	return t.bfD
}

// LongestRunClasses appends the window longest-run class counters to dst
// and returns it; nil when the design has no test 4.
func (t *Tracker) LongestRunClasses(dst []uint64) []uint64 {
	if !t.hasLR {
		return nil
	}
	return append(dst, t.lrClasses...)
}

// lowMask returns a mask of the low n bits (n in [0, 64]).
func lowMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}
