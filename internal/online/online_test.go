package online

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hwblock"
	"repro/internal/hwfast"
	"repro/internal/trng"
)

// zooSources builds the defect-zoo corpus the differential suite runs
// over: one healthy source plus every defect class internal/trng models.
func zooSources(seed int64) map[string]trng.Source {
	ro := trng.NewRingOscillator(3.01, 0.08, seed+4)
	ro.Lock(0.005)
	return map[string]trng.Source{
		"ideal":     trng.NewIdeal(seed),
		"biased":    trng.NewBiased(0.58, seed+1),
		"markov":    trng.NewMarkov(0.72, seed+2),
		"stuck":     trng.NewStuckAt(1),
		"locked-ro": ro,
		"drift":     trng.NewDrift(0.5, 0.9, 1<<16, seed+5),
		"erratic":   trng.NewErratic(trng.NewIdeal(seed+6), 997),
		"burst":     trng.NewBurst(trng.NewIdeal(seed+7), trng.NewBiased(0.95, seed+8), 0.01, 256, seed+9),
		"switch":    trng.NewSwitchAt(trng.NewIdeal(seed+10), trng.NewStuckAt(0), 1<<14),
	}
}

// readBit draws one bit, treating transient faults as a retry exactly
// like the monitor's retry loop would.
func readBit(t *testing.T, src trng.Source) byte {
	t.Helper()
	for {
		b, err := src.ReadBit()
		if err == nil {
			return b
		}
	}
}

// feedBoth pushes the same nbits-bit word into the tracker and the
// fixed-window model.
func feedBoth(t *testing.T, tr *Tracker, st *hwfast.State, w uint64, nbits int) {
	t.Helper()
	tr.Push(w, nbits)
	if err := st.ClockWord(w, nbits); err != nil {
		t.Fatalf("ClockWord: %v", err)
	}
}

// checkBoundary compares every window statistic against the fixed-window
// register image at a sequence boundary.
func checkBoundary(t *testing.T, tag string, cfg hwblock.Config, tr *Tracker, st *hwfast.State) {
	t.Helper()
	final, mn, mx := st.Walk()
	wf, wmn, wmx := tr.WindowWalk()
	if wf != final || wmn != mn || wmx != mx {
		t.Fatalf("%s: walk: window (%d,%d,%d) != fixed (%d,%d,%d)", tag, wf, wmn, wmx, final, mn, mx)
	}
	ones := (final + int64(cfg.N)) / 2
	if tr.WindowOnes() != ones {
		t.Fatalf("%s: ones: window %d != fixed %d", tag, tr.WindowOnes(), ones)
	}
	if cfg.Has(3) && tr.WindowRuns() != int64(st.Runs()) {
		t.Fatalf("%s: runs: window %d != fixed %d", tag, tr.WindowRuns(), st.Runs())
	}
	if cfg.Has(2) {
		var d int64
		m := int64(cfg.Params.BlockFrequencyM)
		for _, eps := range st.BlockFreqBank() {
			dd := 2*int64(eps) - m
			d += dd * dd
		}
		if tr.BlockFreqD() != d {
			t.Fatalf("%s: block-freq: window d=%d != fixed d=%d", tag, tr.BlockFreqD(), d)
		}
	}
	if cfg.Has(4) {
		want := st.LongestRunClasses()
		got := tr.LongestRunClasses(nil)
		if len(got) != len(want) {
			t.Fatalf("%s: longest-run: class count %d != %d", tag, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: longest-run class %d: window %d != fixed %d", tag, i, got[i], want[i])
			}
		}
	}
}

// TestDifferentialAllVariants proves the streaming statistics land
// exactly on the fixed-window register image at every sequence boundary,
// for all eight design points and the whole defect zoo, under ragged
// word sizes that exercise chunk-seam and block-seam handling.
func TestDifferentialAllVariants(t *testing.T) {
	for _, cfg := range hwblock.AllConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			seqs := 3
			if cfg.N >= 1<<20 {
				if testing.Short() {
					t.Skip("short mode: skip 2^20-bit designs")
				}
				seqs = 2
			}
			for name, src := range zooSources(0x5eed ^ int64(cfg.N)) {
				tr, err := New(cfg, Config{})
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				rng := rand.New(rand.NewSource(int64(cfg.N) + int64(len(name))))
				for s := 0; s < seqs; s++ {
					st, err := hwfast.New(cfg.N, cfg.Tests, cfg.Params)
					if err != nil {
						t.Fatalf("hwfast.New: %v", err)
					}
					fed := 0
					for fed < cfg.N {
						// Ragged word widths, biased toward full words so
						// the big designs stay fast.
						nb := 64
						if rng.Intn(4) == 0 {
							nb = 1 + rng.Intn(64)
						}
						if rem := cfg.N - fed; nb > rem {
							nb = rem
						}
						var w uint64
						for i := 0; i < nb; i++ {
							w |= uint64(readBit(t, src)) << uint(i)
						}
						feedBoth(t, tr, st, w, nb)
						fed += nb
					}
					checkBoundary(t, cfg.Name+"/"+name, cfg, tr, st)
				}
			}
		})
	}
}

// TestWindowSlides proves the statistics really are windowed: after a
// stuck-at tail longer than the window, the window statistics must equal
// those of a fresh fixed-window run over the tail alone, even though the
// tracker also saw the healthy prefix.
func TestWindowSlides(t *testing.T) {
	cfg, err := hwblock.NewConfig(128, hwblock.Medium)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(cfg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy prefix, deliberately not window-aligned at the defect onset.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 128+40; i++ {
		tr.Push(uint64(rng.Int63())&1, 1)
	}
	// Stuck tail: push until the total is window-aligned again and the
	// window holds only stuck bits.
	tail := 2*128 + 24 // 40+24 = 64 realigns the chunk phase
	for i := 0; i < tail; i++ {
		tr.Push(1, 1)
	}
	st, err := hwfast.New(cfg.N, cfg.Tests, cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.N; i++ {
		if err := st.Clock(1); err != nil {
			t.Fatal(err)
		}
	}
	checkBoundary(t, "stuck-tail", cfg, tr, st)
}

// TestTrackerResetReuse proves Reset returns the tracker to a state
// bit-identical to a freshly built one.
func TestTrackerResetReuse(t *testing.T) {
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(cfg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a.Push(uint64(rng.Int63()), 64)
	}
	a.Reset()
	rng2 := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		w := uint64(rng2.Int63())
		a.Push(w, 61)
		b.Push(w, 61)
	}
	if a.Score() != b.Score() || a.Instant() != b.Instant() ||
		a.WindowOnes() != b.WindowOnes() || a.WindowRuns() != b.WindowRuns() {
		t.Fatalf("reset tracker diverged: score %v vs %v", a.Score(), b.Score())
	}
	af, amn, amx := a.WindowWalk()
	bf, bmn, bmx := b.WindowWalk()
	if af != bf || amn != bmn || amx != bmx {
		t.Fatalf("reset tracker walk diverged")
	}
}

// TestDetectionLatches proves a healthy-then-defective stream latches the
// alarm after the defect onset and records a plausible detection bit,
// while a healthy stream at the same length does not alarm.
func TestDetectionLatches(t *testing.T) {
	cfg, err := hwblock.NewConfig(128, hwblock.Medium)
	if err != nil {
		t.Fatal(err)
	}
	onset := int64(4 * 128)
	total := int64(64 * 128)

	run := func(src trng.Source) *Tracker {
		tr, err := New(cfg, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < total; i++ {
			tr.Push(uint64(readBit(t, src)), 1)
		}
		return tr
	}

	bad := run(trng.NewSwitchAt(trng.NewIdeal(21), trng.NewStuckAt(0), int(onset)))
	if !bad.Alarmed() {
		t.Fatalf("stuck-at defect not detected within %d bits (score %v)", total, bad.Score())
	}
	if at := bad.DetectedAt(); at <= onset || at > total {
		t.Fatalf("detection bit %d outside (%d, %d]", at, onset, total)
	}

	good := run(trng.NewIdeal(22))
	if good.Alarmed() {
		t.Fatalf("ideal source alarmed at bit %d (score %v)", good.DetectedAt(), good.Score())
	}
	if good.DetectedAt() != -1 {
		t.Fatalf("unalarmed tracker reports DetectedAt %d", good.DetectedAt())
	}
}

// TestDecayBoundaries pins the EWMA edge cases: no scoring before the
// window fills, a latch requires Confirm consecutive over-threshold
// commits, and the decay constant matches the configured half-life.
func TestDecayBoundaries(t *testing.T) {
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("no-score-before-primed", func(t *testing.T) {
		tr, err := New(cfg, Config{})
		if err != nil {
			t.Fatal(err)
		}
		// One bit short of a full window: all-ones, wildly anomalous.
		for i := 0; i < 127; i++ {
			tr.Push(1, 1)
		}
		if tr.Primed() {
			t.Fatal("primed before a full window")
		}
		if tr.Score() != 0 || tr.Alarmed() {
			t.Fatalf("scored before primed: score %v alarmed %v", tr.Score(), tr.Alarmed())
		}
		if !math.IsNaN(tr.ZScores().Freq) {
			t.Fatal("z-scores populated before primed")
		}
		tr.Push(1, 1)
		if !tr.Primed() || tr.Score() == 0 {
			t.Fatal("window fill did not trigger scoring")
		}
	})

	t.Run("confirm-count", func(t *testing.T) {
		// Confirm=3 on a stuck stream: the alarm must latch exactly at
		// the third over-threshold commit, never the first.
		tr, err := New(cfg, Config{Confirm: 3, Threshold: 2})
		if err != nil {
			t.Fatal(err)
		}
		commits := 0
		var crossed int
		for i := 0; i < 128*8; i += 64 {
			tr.Push(^uint64(0), 64)
			commits++
			if crossed == 0 && tr.Score() >= 2 {
				crossed = commits
			}
			if tr.Alarmed() {
				break
			}
		}
		if !tr.Alarmed() {
			t.Fatal("stuck stream never latched")
		}
		latchCommit := int(tr.DetectedAt() / 64)
		if latchCommit != crossed+2 {
			t.Fatalf("latched at commit %d, want %d (threshold first crossed at %d, confirm 3)",
				latchCommit, crossed+2, crossed)
		}
	})

	t.Run("half-life", func(t *testing.T) {
		tr, err := New(cfg, Config{HalfLifeBits: 256})
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp2(-64.0 / 256.0)
		if tr.decay != want {
			t.Fatalf("decay %v, want %v", tr.decay, want)
		}
		// After exactly one half-life of further commits, a frozen
		// instantaneous anomaly's old mass has halved.
		tr2, err := New(cfg, Config{HalfLifeBits: 128})
		if err != nil {
			t.Fatal(err)
		}
		d := tr2.decay
		if got := d * d; math.Abs(got-0.5) > 1e-12 {
			t.Fatalf("two 64-bit commits decay to %v, want 0.5", got)
		}
	})
}

// TestConfigValidation pins the constructor's rejection surface.
func TestConfigValidation(t *testing.T) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Medium)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Window: 100},           // not a chunk multiple
		{Window: -64},           // negative
		{Window: 4096},          // not a multiple of BF M=8192
		{HalfLifeBits: 32},      // shorter than a chunk
		{Confirm: -1},           // negative confirm
		{Threshold: math.NaN()}, // NaN threshold
		{Threshold: -1},         // negative threshold
	}
	for i, c := range bad {
		if _, err := New(cfg, c); err == nil {
			t.Fatalf("config %d (%+v) unexpectedly accepted", i, c)
		}
	}
	// A window of several sequences is legal when block lengths divide it.
	tr, err := New(cfg, Config{Window: 3 * 65536})
	if err != nil {
		t.Fatalf("multi-sequence window rejected: %v", err)
	}
	if tr.Window() != 3*65536 {
		t.Fatalf("window %d", tr.Window())
	}
}

// BenchmarkTrackerPush measures the steady-state per-word cost of the
// full five-statistic tracker at the paper's middle design point.
func BenchmarkTrackerPush(b *testing.B) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Medium)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := New(cfg, Config{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	words := make([]uint64, 4096)
	for i := range words {
		words[i] = rng.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Push(words[i&4095], 64)
	}
}
