package design

import (
	"fmt"
	"testing"

	"repro/internal/hwblock"
)

// TestAllExtractsEightDesigns: the shipped set extracts cleanly and the
// model agrees with the live block it came from.
func TestAllExtractsEightDesigns(t *testing.T) {
	designs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) != 8 {
		t.Fatalf("got %d designs, want 8", len(designs))
	}
	for _, d := range designs {
		if len(d.Prims) == 0 || len(d.Regs) == 0 {
			t.Errorf("%s: empty extraction (%d prims, %d regs)", d.Name, len(d.Prims), len(d.Regs))
		}
		if d.Netlist == nil {
			t.Errorf("%s: live netlist not attached", d.Name)
		}
		if d.MuxWords != d.Words {
			t.Errorf("%s: mux words %d != register-file words %d", d.Name, d.MuxWords, d.Words)
		}
		if d.Words+d.FreeWords() != 1<<AddressBits {
			t.Errorf("%s: words %d + free %d != %d", d.Name, d.Words, d.FreeWords(), 1<<AddressBits)
		}
	}
}

// TestModelMatchesRegFile: the extracted Regs are the register file's
// entries, field for field — the property that makes the model safe to
// share between REGISTERS.md generation and designlint.
func TestModelMatchesRegFile(t *testing.T) {
	cfg, err := hwblock.NewConfig(65536, hwblock.Medium)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hwblock.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	entries := b.RegFile().Entries()
	if len(d.Regs) != len(entries) {
		t.Fatalf("%d model regs vs %d entries", len(d.Regs), len(entries))
	}
	for i, e := range entries {
		r := d.Regs[i]
		if r.Name != e.Name || r.TestID != e.TestID || r.Addr != e.Addr ||
			r.Width != e.Width || r.Words != e.Words {
			t.Errorf("reg %d: model %+v != entry %+v", i, r, e)
		}
	}
	if len(d.Prims) != len(b.Netlist().Primitives()) {
		t.Errorf("%d model prims vs %d primitives", len(d.Prims), len(b.Netlist().Primitives()))
	}
}

// TestFromBlockChecksAddressSpace: extraction refuses a register file
// that outgrew the 7-bit address space, so regmapdoc-style consumers that
// never run designlint cannot render an overflowing map.
func TestFromBlockChecksAddressSpace(t *testing.T) {
	cfg, err := hwblock.NewConfig(128, hwblock.Light)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hwblock.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rf := b.RegFile()
	for i := 0; rf.Words() <= 1<<AddressBits; i++ {
		rf.Add(fmt.Sprintf("PAD_%d", i), 0, hwblock.WordBits, func() uint64 { return 0 })
	}
	if _, err := FromBlock(b); err == nil {
		t.Fatal("FromBlock accepted a register file exceeding the address space")
	}
}

// TestCloneDetaches: mutations of a clone never reach the original.
func TestCloneDetaches(t *testing.T) {
	designs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	d := designs[0]
	c := d.Clone()
	if c.Netlist != nil {
		t.Error("clone kept the live netlist")
	}
	c.Prims[0].Width = 999
	c.Regs[0].Addr = 999
	c.Tests[0] = 999
	if d.Prims[0].Width == 999 || d.Regs[0].Addr == 999 || d.Tests[0] == 999 {
		t.Error("clone aliases the original model")
	}
}
